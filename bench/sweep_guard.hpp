// Shared sweep-service guard for the micro benches (micro_ldpc, micro_noc,
// micro_runtime): one definition so all three BENCH_*.json records pin the
// same three invariants of util/sweep against their harness's spec:
//
//   * shard identity  — the merge of a {2, 4}-way stride split is
//     bit-identical (scenario, outcome, and every record word) to the
//     single-shard run;
//   * resume identity — a run killed at a checkpoint boundary, resumed,
//     and merged from its segments is bit-identical to a run that never
//     crashed;
//   * conservation    — every merge resolves each enumerated scenario as
//     exactly one of completed/failed/skipped, and a completed resume
//     leaves nothing skipped.
//
// A violated invariant fails the bench binary (nonzero exit), the same
// contract as the engine bit-exactness guards.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/sweep.hpp"

namespace renoc::bench {

struct ServiceGuardResult {
  std::int64_t scenarios = 0;
  std::int64_t resumed = 0;  ///< records recovered from checkpoints on resume
  bool shard_identity = true;
  bool resume_identity = true;
  bool conserved = true;

  bool ok() const { return shard_identity && resume_identity && conserved; }
};

inline bool records_equal(const std::vector<sweep::ScenarioRecord>& a,
                          const std::vector<sweep::ScenarioRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].scenario != b[i].scenario || a[i].outcome != b[i].outcome ||
        a[i].words != b[i].words)
      return false;
  }
  return true;
}

/// Runs the guard against `spec`. `ckpt_dir` is a scratch directory for
/// the kill/resume leg (removed before and after).
inline ServiceGuardResult run_service_guard(const sweep::SweepSpec& spec,
                                            const std::string& ckpt_dir) {
  namespace fs = std::filesystem;
  ServiceGuardResult r;
  r.scenarios = spec.enumerated;

  // Baseline: one shard, no checkpointing.
  const std::vector<sweep::ScenarioRecord> baseline =
      sweep::run_sweep_shard(spec, sweep::ShardRunOptions{}).records;

  // Shard identity: any N-way stride split merges to the same bits.
  for (const int shards : {2, 4}) {
    std::vector<std::vector<sweep::ScenarioRecord>> parts;
    for (int s = 0; s < shards; ++s) {
      sweep::ShardRunOptions opt;
      opt.shard = sweep::Shard{s, shards};
      parts.push_back(sweep::run_sweep_shard(spec, opt).records);
    }
    const sweep::MergeResult merged =
        sweep::merge_shard_records(spec.enumerated, parts);
    r.conserved = r.conserved && merged.counts.conserved() &&
                  merged.counts.skipped == 0;
    if (!records_equal(baseline, merged.records)) r.shard_identity = false;
  }

  // Resume identity: kill mid-run at a checkpoint boundary (stop_after
  // abandons the run with no tail flush, exactly as a SIGKILL would),
  // rerun, and merge from the segment store.
  fs::remove_all(ckpt_dir);
  sweep::ShardRunOptions killed;
  killed.checkpoint.directory = ckpt_dir;
  killed.checkpoint.tag = "guard";
  // Period sized so the killed half-run has flushed at least one segment —
  // the resume leg must actually recover records, not start from zero.
  killed.checkpoint.every =
      static_cast<int>(std::max<std::int64_t>(1, spec.enumerated / 4));
  killed.stop_after = spec.enumerated / 2;
  sweep::run_sweep_shard(spec, killed);

  sweep::ShardRunOptions resume = killed;
  resume.stop_after = -1;
  r.resumed = sweep::run_sweep_shard(spec, resume).resumed;

  const sweep::MergeResult merged =
      sweep::merge_checkpoints(spec, killed.checkpoint, 1);
  r.conserved = r.conserved && merged.counts.conserved() &&
                merged.counts.skipped == 0;
  if (!records_equal(baseline, merged.records)) r.resume_identity = false;
  fs::remove_all(ckpt_dir);
  return r;
}

/// The "sweep_service" block of a BENCH_*.json record (shared so all
/// three micro benches emit the same shape).
inline void write_service_guard_json(JsonWriter& json,
                                     const ServiceGuardResult& r) {
  json.key("sweep_service").begin_object();
  json.key("scenarios").integer(r.scenarios);
  json.key("resumed").integer(r.resumed);
  json.key("shard_identity").boolean(r.shard_identity);
  json.key("resume_identity").boolean(r.resume_identity);
  json.key("conserved").boolean(r.conserved);
  json.end_object();
}

}  // namespace renoc::bench
