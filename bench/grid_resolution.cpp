// Ablation: thermal-model resolution (block model vs refined grid).
//
// The paper's experiments (and ours) use HotSpot's block-level model —
// one thermal node per PE. This bench subdivides every tile into
// refine x refine sub-blocks and reruns the key comparisons to show the
// conclusions are resolution-robust:
//   1. baseline peak temperature of configuration A's calibrated power
//      map at refine = 1..4 (with solver cost), and
//   2. the Figure-1 orbit-average reductions for rotation and X-Y shift
//      at refine = 1 vs refine = 3 — the scheme ordering must not change.
#include <chrono>
#include <iostream>

#include "core/experiment.hpp"
#include "power/power_map.hpp"
#include "thermal/grid_refine.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

double orbit_avg_peak(const RefinedThermalModel& model,
                      const std::vector<double>& tile_power,
                      MigrationScheme scheme, const GridDim& dim) {
  const auto orbit = orbit_permutations(transform_of(scheme), dim);
  std::vector<std::vector<double>> maps;
  for (const auto& perm : orbit)
    maps.push_back(apply_permutation(tile_power, perm));
  return model.peak_tile_temperature(average_maps(maps));
}

int run() {
  ExperimentDriver driver(config_A());
  driver.prepare();
  const GridDim dim = driver.chip().config.dim;
  const HotSpotParams params = driver.chip().config.hotspot;

  Table res({"Refine", "Die nodes", "Total nodes", "Base peak (C)",
             "Rot reduction (C)", "X-Y Shift reduction (C)",
             "Solve (ms)"});
  res.set_title(
      "Thermal resolution ablation, configuration A (orbit-average "
      "steady peaks)");

  for (int refine : {1, 2, 3, 4}) {
    const auto t0 = std::chrono::steady_clock::now();
    RefinedThermalModel model(dim, date05_tile_area(), params, refine);
    const double base = model.peak_tile_temperature(driver.base_power());
    const double rot =
        base - orbit_avg_peak(model, driver.base_power(),
                              MigrationScheme::kRotation, dim);
    const double shift =
        base - orbit_avg_peak(model, driver.base_power(),
                              MigrationScheme::kShiftXY, dim);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    res.add_row({std::to_string(refine),
                 std::to_string(model.fine_dim().node_count()),
                 std::to_string(model.network().node_count()),
                 Table::num(base), Table::num(rot), Table::num(shift),
                 Table::num(ms, 1)});
  }
  res.print(std::cout);
  std::cout << "\nThe block model (refine=1) and the refined grids must "
               "agree on the scheme ordering\nand closely on the "
               "magnitudes; sub-block resolution only sharpens intra-tile "
               "gradients.\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
