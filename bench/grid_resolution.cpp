// Ablation: thermal-model resolution (block model vs refined grid).
//
// The paper's experiments (and ours) use HotSpot's block-level model —
// one thermal node per PE. This bench subdivides every tile into
// refine x refine sub-blocks and reruns the key comparisons to show the
// conclusions are resolution-robust:
//   1. baseline peak temperature of configuration A's calibrated power
//      map at each refinement (with solver cost), and
//   2. the Figure-1 orbit-average reductions for rotation and X-Y shift
//      across refinements — the scheme ordering must not change.
//
// The grid itself runs through the threaded engine harness
// (run_experiment_sweep: jitter 0, scale 1, the driver's measured power
// map), which also reports the full migrating co-simulation peak per
// cell. An explicit RefinedThermalModel per refinement cross-checks the
// engine's steady peaks and provides the solver timing.
//
// Timing note: this bench used to start its timer before the
// RefinedThermalModel constructor, so "Solve (ms)" mostly measured grid
// construction + first factorization. The model is now built (and its
// factorization warmed) outside the timed region; the timed region is
// the three steady solves alone, through the cached sparse path — the
// cost that actually recurs in a sweep.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_resolution.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>

#include "core/experiment.hpp"
#include "core/experiment_sweep.hpp"
#include "power/power_map.hpp"
#include "thermal/grid_refine.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "paper_bench.hpp"

namespace renoc {
namespace {

double orbit_avg_peak(const RefinedThermalModel& model,
                      const std::vector<double>& tile_power,
                      MigrationScheme scheme, const GridDim& dim) {
  const auto orbit = orbit_permutations(transform_of(scheme), dim);
  std::vector<std::vector<double>> maps;
  for (const auto& perm : orbit)
    maps.push_back(apply_permutation(tile_power, perm));
  return model.peak_tile_temperature(average_maps(maps));
}

int run(const bench::PaperArgs& args) {
  const ChipConfig chip_cfg =
      args.smoke ? bench::smoke_scaled(config_A()) : config_A();
  ExperimentDriver driver(chip_cfg);
  driver.prepare();
  const GridDim dim = driver.chip().config.dim;
  const HotSpotParams params = driver.chip().config.hotspot;

  const std::vector<int> refines =
      args.smoke ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4};

  // The {scheme x refine} grid through the threaded engine harness, on
  // the driver's calibrated workload map (deterministic: jitter 0).
  ExperimentSweepConfig sweep;
  sweep.dim = dim;
  sweep.hotspot = params;
  sweep.schemes = {MigrationScheme::kRotation, MigrationScheme::kShiftXY};
  sweep.periods_s = {driver.default_period_s()};
  sweep.refines = refines;
  sweep.base_tile_power = driver.base_power();
  sweep.power_jitter = 0.0;
  sweep.migration_energy_j = 0.0;
  sweep.threads =
      std::max(1u, std::thread::hardware_concurrency());
  const std::vector<ExperimentSweepPoint> points = run_experiment_sweep(sweep);
  // scenarios() order is scheme-major: rotation at each refine, then
  // X-Y shift at each refine.
  const std::size_t n_ref = refines.size();
  RENOC_CHECK(points.size() == 2 * n_ref);

  Table res({"Refine", "Die nodes", "Base peak (C)", "Rot reduction (C)",
             "X-Y Shift reduction (C)", "Rot co-sim (C)",
             "X-Y Shift co-sim (C)", "Solve (ms)"});
  res.set_title(
      "Thermal resolution ablation, configuration A (orbit-average "
      "steady peaks + migrating co-simulation)");

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("grid_resolution");
  json.key("smoke").boolean(args.smoke);
  json.key("config").string(chip_cfg.name);
  json.key("rows").begin_array();

  for (std::size_t r = 0; r < n_ref; ++r) {
    const int refine = refines[r];
    const ExperimentSweepPoint& rot_pt = points[r];
    const ExperimentSweepPoint& shift_pt = points[n_ref + r];
    RENOC_CHECK(rot_pt.scenario.refine == refine &&
                shift_pt.scenario.refine == refine);

    const double base = rot_pt.static_peak_c;
    const double rot = base - rot_pt.steady_peak_of_avg_c;
    const double shift = base - shift_pt.steady_peak_of_avg_c;

    // Cross-check against an explicit refined model (the seed path), and
    // time the recurring cost: three steady solves through the cached
    // factorization. Construction and the factorizing first solve stay
    // outside the timed region.
    RefinedThermalModel model(dim, date05_tile_area(), params, refine);
    const double base_direct =
        model.peak_tile_temperature(driver.base_power());  // factors (warm-up)
    const auto t0 = std::chrono::steady_clock::now();
    const double rot_direct =
        base_direct - orbit_avg_peak(model, driver.base_power(),
                                     MigrationScheme::kRotation, dim);
    const double shift_direct =
        base_direct - orbit_avg_peak(model, driver.base_power(),
                                     MigrationScheme::kShiftXY, dim);
    const double base_again =
        model.peak_tile_temperature(driver.base_power());
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    RENOC_CHECK(base_again == base_direct);
    RENOC_CHECK_MSG(std::fabs(base_direct - base) < 1e-6 &&
                        std::fabs(rot_direct - rot) < 1e-6 &&
                        std::fabs(shift_direct - shift) < 1e-6,
                    "engine sweep diverged from the direct refined model");

    res.add_row({std::to_string(refine),
                 std::to_string(rot_pt.fine_nodes),
                 Table::num(base), Table::num(rot), Table::num(shift),
                 Table::num(rot_pt.reduction_c),
                 Table::num(shift_pt.reduction_c),
                 Table::num(ms, 2)});

    json.begin_object();
    json.key("refine").integer(refine);
    json.key("die_nodes").integer(rot_pt.fine_nodes);
    json.key("base_peak_c").real(base);
    json.key("rot_reduction_c").real(rot);
    json.key("shift_reduction_c").real(shift);
    json.key("rot_cosim_reduction_c").real(rot_pt.reduction_c);
    json.key("shift_cosim_reduction_c").real(shift_pt.reduction_c);
    json.key("orbit_rot").integer(rot_pt.orbit_length);
    json.key("orbit_shift").integer(shift_pt.orbit_length);
    json.key("solve_ms").real(ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  res.print(std::cout);
  std::cout << "\nThe block model (refine=1) and the refined grids must "
               "agree on the scheme ordering\nand closely on the "
               "magnitudes; sub-block resolution only sharpens intra-tile "
               "gradients.\nwrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc = renoc::bench::parse_paper_args(
          argc, argv, "PAPER_resolution.json", args))
    return rc;
  return renoc::run(args);
}
