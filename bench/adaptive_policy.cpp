// Extension bench: adaptive migration-function selection vs the fixed
// Figure-1 schemes.
//
// The paper closes by noting the migration unit can change its function
// at runtime. This bench quantifies what that buys: for each chip
// configuration it simulates a long run of migration periods where a
// policy picks the transform before every period — either by
// model-predictive lookahead (predictive-peak) or from temperature
// sensors (coolest-history) — and compares the settled peak temperature
// against the best fixed scheme from Figure 1.
#include <iostream>
#include <map>

#include "core/adaptive_policy.hpp"
#include "core/experiment.hpp"
#include "core/migration_controller.hpp"
#include "core/thermal_runtime.hpp"
#include "ldpc/noc_decoder.hpp"
#include "power/power_map.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

struct AdaptiveRun {
  double settled_peak_c = 0.0;
  std::map<TransformKind, int> choices;
};

/// Simulates `periods` migration periods under `policy`, tracking the
/// accumulated placement permutation and integrating the thermal RC
/// network through each period. Migration energy per event uses the
/// per-transform maps measured on the real fabric (passed in).
AdaptiveRun run_adaptive(
    const ExperimentDriver& driver, AdaptivePolicy& policy,
    const std::map<TransformKind, std::vector<double>>& energy_maps,
    double period_s, int periods) {
  const RcNetwork& net = driver.thermal_network();
  const GridDim dim = driver.chip().config.dim;

  const int steps_per_period = 50;
  TransientSolver transient(net, period_s / steps_per_period);
  transient.set_state_to_steady(driver.base_power());

  std::vector<int> accumulated = identity_permutation(dim.node_count());
  AdaptiveRun result;
  double settled_peak = 0.0;

  for (int p = 0; p < periods; ++p) {
    // Physical power map of the current placement.
    const std::vector<double> power =
        apply_permutation(driver.base_power(), accumulated);

    const Transform chosen = policy.choose(power, transient.state());
    ++result.choices[chosen.kind];
    accumulated =
        compose_permutations(accumulated, chosen.permutation(dim));
    const std::vector<double> new_power =
        apply_permutation(driver.base_power(), accumulated);

    // Integrate the period; deposit the migration energy in the first
    // step (identity choices cost nothing).
    double period_peak = 0.0;
    for (int s = 0; s < steps_per_period; ++s) {
      if (s == 0 && chosen.kind != TransformKind::kIdentity) {
        auto it = energy_maps.find(chosen.kind);
        RENOC_CHECK(it != energy_maps.end());
        std::vector<double> spiked = new_power;
        for (std::size_t i = 0; i < spiked.size(); ++i)
          spiked[i] += it->second[i] / transient.dt();
        transient.step_die_power(spiked);
      } else {
        transient.step_die_power(new_power);
      }
      period_peak = std::max(
          period_peak, net.ambient() + net.peak_die_rise(transient.state()));
    }
    // Report the max over the last fifth of the run: the start state is
    // the *static* steady state, whose hot-tile excess needs several die
    // time constants (~30-40 periods) to decay.
    if (p >= periods - periods / 5)
      settled_peak = std::max(settled_peak, period_peak);
  }
  result.settled_peak_c = settled_peak;
  return result;
}

int run() {
  Table t({"Config", "Best fixed (scheme)", "Best fixed peak (C)",
           "Orbit-avg (C)", "Predictive (C)", "Sensor (C)",
           "Orbit-avg picks", "Predictive migrations"});
  t.set_title("Adaptive migration-function selection vs fixed schemes "
              "(150 periods, settled peak)");

  for (const ChipConfig& cfg : all_configs()) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    const double period = driver.default_period_s();

    // Best fixed scheme at this period, plus per-transform energy maps.
    double best_fixed = 1e300;
    MigrationScheme best_scheme = MigrationScheme::kNone;
    std::map<TransformKind, std::vector<double>> energy_maps;
    for (MigrationScheme scheme : figure1_schemes()) {
      const SchemeEvaluation ev = driver.evaluate_scheme(scheme, period);
      if (ev.peak_temp_c < best_fixed) {
        best_fixed = ev.peak_temp_c;
        best_scheme = scheme;
      }
      // Measure one migration's energy map for this transform on a fresh
      // fabric (for the adaptive run's spikes).
      Fabric fabric(cfg.noc);
      NocLdpcDecoder decoder(fabric, driver.chip().code,
                             driver.chip().partition,
                             driver.baseline_placement(), cfg.ldpc_params);
      std::vector<int> words(
          static_cast<std::size_t>(decoder.cluster_count()));
      for (int c = 0; c < decoder.cluster_count(); ++c)
        words[static_cast<std::size_t>(c)] = decoder.migration_state_words(c);
      MigrationController controller(fabric, transform_of(scheme));
      std::vector<int> placement = driver.baseline_placement();
      controller.migrate(placement, words);
      const EnergyModel energy(cfg.energy);
      std::vector<double> e_map(static_cast<std::size_t>(fabric.node_count()));
      for (int tile = 0; tile < fabric.node_count(); ++tile)
        e_map[static_cast<std::size_t>(tile)] =
            driver.calibration_scale() *
            energy.tile_dynamic_energy(fabric.stats().tile(tile));
      energy_maps[transform_of(scheme).kind] = std::move(e_map);
    }

    AdaptivePolicy orbit(driver.thermal_network(), cfg.dim,
                         AdaptiveObjective::kOrbitAverage, period);
    AdaptivePolicy predictive(driver.thermal_network(), cfg.dim,
                              AdaptiveObjective::kPredictivePeak, period);
    AdaptivePolicy sensor(driver.thermal_network(), cfg.dim,
                          AdaptiveObjective::kCoolestHistory, period);
    const AdaptiveRun o = run_adaptive(driver, orbit, energy_maps, period, 150);
    const AdaptiveRun g =
        run_adaptive(driver, predictive, energy_maps, period, 150);
    const AdaptiveRun s = run_adaptive(driver, sensor, energy_maps, period, 150);

    std::string picks;
    for (const auto& [kind, count] : o.choices)
      picks += std::string(to_string(kind)) + ":" + std::to_string(count) + " ";
    int predictive_migrations = 0;
    for (const auto& [kind, count] : g.choices)
      if (kind != TransformKind::kIdentity) predictive_migrations += count;

    t.add_row({cfg.name, to_string(best_scheme), Table::num(best_fixed),
               Table::num(o.settled_peak_c), Table::num(g.settled_peak_c),
               Table::num(s.settled_peak_c), picks,
               std::to_string(predictive_migrations) + "/150"});
  }
  t.print(std::cout);
  std::cout << "\nOrbit-average selection lands on (or near) the best fixed "
               "scheme per chip with no offline\nanalysis. The reactive "
               "policies (predictive lookahead, sensors) typically *beat* "
               "the best\nfixed scheme while migrating in only a fraction "
               "of the periods — they move exactly when\nthe thermal state "
               "makes it profitable.\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
