// Extension bench: adaptive migration-function selection vs the fixed
// Figure-1 schemes.
//
// The paper closes by noting the migration unit can change its function
// at runtime. This bench quantifies what that buys: for each chip
// configuration it simulates a long run of migration periods where a
// policy picks the transform before every period — either by
// model-predictive lookahead (predictive-peak) or from temperature
// sensors (coolest-history) — and compares the settled peak temperature
// against the best fixed scheme from Figure 1.
//
// The fixed-scheme baseline is one ExperimentDriver::scheme_study; the
// per-transform migration-energy spikes come straight from the driver's
// fabric-measured maps (migration_energy_map), and the closed-loop run
// itself is the library's run_adaptive_simulation.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_adaptive.json.
#include <algorithm>
#include <iostream>
#include <map>

#include "core/adaptive_policy.hpp"
#include "core/experiment.hpp"
#include "paper_bench.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run(const bench::PaperArgs& args) {
  const int periods = args.smoke ? 40 : 150;

  Table t({"Config", "Best fixed (scheme)", "Best fixed peak (C)",
           "Orbit-avg (C)", "Predictive (C)", "Sensor (C)",
           "Orbit-avg picks", "Predictive migrations"});
  t.set_title("Adaptive migration-function selection vs fixed schemes (" +
              std::to_string(periods) + " periods, settled peak)");

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("adaptive_policy");
  json.key("smoke").boolean(args.smoke);
  json.key("periods").integer(periods);
  json.key("configs").begin_array();

  for (const ChipConfig& cfg : bench::paper_configs(args.smoke)) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    const double period = driver.default_period_s();

    // Best fixed scheme at this period (one study over Figure 1), plus
    // the fabric-measured per-transform energy maps for the adaptive
    // runs' migration spikes.
    const std::vector<SchemeEvaluation> evals =
        driver.scheme_study(figure1_schemes());
    const SchemeEvaluation& best = *std::min_element(
        evals.begin(), evals.end(),
        [](const SchemeEvaluation& a, const SchemeEvaluation& b) {
          return a.peak_temp_c < b.peak_temp_c;
        });
    std::map<TransformKind, std::vector<double>> energy_maps;
    for (MigrationScheme scheme : figure1_schemes())
      energy_maps[transform_of(scheme).kind] =
          driver.migration_energy_map(scheme);

    AdaptivePolicy orbit(driver.thermal_network(), cfg.dim,
                         AdaptiveObjective::kOrbitAverage, period);
    AdaptivePolicy predictive(driver.thermal_network(), cfg.dim,
                              AdaptiveObjective::kPredictivePeak, period);
    AdaptivePolicy sensor(driver.thermal_network(), cfg.dim,
                          AdaptiveObjective::kCoolestHistory, period);
    AdaptiveSimConfig sim;
    sim.period_s = period;
    sim.periods = periods;
    const RcNetwork& net = driver.thermal_network();
    const AdaptiveSimResult o = run_adaptive_simulation(
        net, cfg.dim, orbit, driver.base_power(), energy_maps, sim);
    const AdaptiveSimResult g = run_adaptive_simulation(
        net, cfg.dim, predictive, driver.base_power(), energy_maps, sim);
    const AdaptiveSimResult s = run_adaptive_simulation(
        net, cfg.dim, sensor, driver.base_power(), energy_maps, sim);

    std::string picks;
    for (const auto& [kind, count] : o.choices)
      picks += std::string(to_string(kind)) + ":" + std::to_string(count) + " ";

    t.add_row({cfg.name, to_string(best.scheme), Table::num(best.peak_temp_c),
               Table::num(o.settled_peak_c), Table::num(g.settled_peak_c),
               Table::num(s.settled_peak_c), picks,
               std::to_string(g.migrations) + "/" + std::to_string(periods)});

    json.begin_object();
    json.key("name").string(cfg.name);
    json.key("best_fixed_scheme").string(to_string(best.scheme));
    json.key("best_fixed_peak_c").real(best.peak_temp_c);
    json.key("orbit_avg_peak_c").real(o.settled_peak_c);
    json.key("predictive_peak_c").real(g.settled_peak_c);
    json.key("sensor_peak_c").real(s.settled_peak_c);
    json.key("orbit_avg_migrations").integer(o.migrations);
    json.key("predictive_migrations").integer(g.migrations);
    json.key("sensor_migrations").integer(s.migrations);
    json.key("orbit_avg_choices").begin_object();
    for (const auto& [kind, count] : o.choices)
      json.key(to_string(kind)).integer(count);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  t.print(std::cout);
  std::cout << "\nOrbit-average selection lands on (or near) the best fixed "
               "scheme per chip with no offline\nanalysis. The reactive "
               "policies (predictive lookahead, sensors) typically *beat* "
               "the best\nfixed scheme while migrating in only a fraction "
               "of the periods — they move exactly when\nthe thermal state "
               "makes it profitable.\nwrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc = renoc::bench::parse_paper_args(
          argc, argv, "PAPER_adaptive.json", args))
    return rc;
  return renoc::run(args);
}
