// The paper's motivating comparison: migration vs chip-wide DTM.
//
// The introduction argues that conventional thermal management (dynamic
// clock disabling, frequency scaling) "stop[s] or shut[s] down the entire
// chip", paying a chip-wide performance cost to fix a *local* problem.
// This bench makes that argument quantitative: for each configuration it
// takes the peak temperature the best migration scheme achieves (one
// scheme_study call over the Figure-1 schemes), then tunes the stop-go
// and DVFS baselines to hit (approximately) the same peak, and compares
// throughput:
//
//   migration:  ~1-2% halt overhead, peak flattened spatially
//   stop-go:    duty-cycles the whole chip until the peak obeys the trip
//   DVFS:       runs the whole chip slower in proportion to the excess
//
// Because the baselines scale power globally, their throughput cost is
// roughly (T_peak,static - T_target) / (T_peak,static - T_ambient-ish) —
// an order of magnitude worse than migration for the same thermal relief.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_dtm.json.
#include <algorithm>
#include <iostream>

#include "core/dtm_baselines.hpp"
#include "core/experiment.hpp"
#include "paper_bench.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run(const bench::PaperArgs& args) {
  Table t({"Config", "Static peak (C)", "Target (C)", "Best scheme",
           "Migration cost", "Stop-go peak (C)", "Stop-go cost",
           "DVFS peak (C)", "DVFS cost"});
  t.set_title(
      "Equal-peak comparison: runtime reconfiguration vs chip-wide DTM");

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("dtm_comparison");
  json.key("smoke").boolean(args.smoke);
  json.key("configs").begin_array();

  for (const ChipConfig& cfg : bench::paper_configs(args.smoke)) {
    ExperimentDriver driver(cfg);
    driver.prepare();

    // Best migration scheme at the default (one-block) period: the lowest
    // peak out of one study over the Figure-1 schemes. No sentinel seed —
    // min_element over the study results.
    const std::vector<SchemeEvaluation> evals =
        driver.scheme_study(figure1_schemes());
    const SchemeEvaluation& best = *std::min_element(
        evals.begin(), evals.end(),
        [](const SchemeEvaluation& a, const SchemeEvaluation& b) {
          return a.peak_temp_c < b.peak_temp_c;
        });
    const double target = best.peak_temp_c;
    const double period = driver.default_period_s();
    const int periods = args.smoke ? 120 : 400;

    // Stop-go with the trip at the target peak.
    const StopGoController stop_go(driver.thermal_network(), target,
                                   /*hysteresis_c=*/1.0);
    const DtmRunResult sg = stop_go.run(driver.base_power(), period, periods);

    // DVFS with the setpoint a shade below the target (proportional
    // control settles slightly above its setpoint).
    const DvfsController dvfs(driver.thermal_network(), target - 1.0,
                              /*gain=*/0.25);
    const DtmRunResult dv = dvfs.run(driver.base_power(), period, periods);

    t.add_row({cfg.name, Table::num(driver.base_peak_temp_c()),
               Table::num(target), to_string(best.scheme),
               Table::num(best.throughput_penalty * 100, 2) + "%",
               Table::num(sg.peak_temp_c),
               Table::num((1.0 - sg.throughput_fraction) * 100, 1) + "%",
               Table::num(dv.peak_temp_c),
               Table::num((1.0 - dv.throughput_fraction) * 100, 1) + "%"});

    json.begin_object();
    json.key("name").string(cfg.name);
    json.key("static_peak_c").real(driver.base_peak_temp_c());
    json.key("target_c").real(target);
    json.key("best_scheme").string(to_string(best.scheme));
    json.key("migration_penalty").real(best.throughput_penalty);
    json.key("periods").integer(periods);
    json.key("stop_go").begin_object();
    json.key("peak_c").real(sg.peak_temp_c);
    json.key("mean_c").real(sg.mean_temp_c);
    json.key("throughput").real(sg.throughput_fraction);
    json.key("throttle_events").integer(sg.throttle_events);
    json.end_object();
    json.key("dvfs").begin_object();
    json.key("peak_c").real(dv.peak_temp_c);
    json.key("mean_c").real(dv.mean_temp_c);
    json.key("throughput").real(dv.throughput_fraction);
    json.key("throttle_events").integer(dv.throttle_events);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  t.print(std::cout);
  std::cout << "\nMigration reaches the same peak for a few percent of "
               "throughput; chip-wide throttling\npays an order of "
               "magnitude more — the paper's core motivation, quantified.\n"
               "wrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc =
          renoc::bench::parse_paper_args(argc, argv, "PAPER_dtm.json", args))
    return rc;
  return renoc::run(args);
}
