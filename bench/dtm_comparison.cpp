// The paper's motivating comparison: migration vs chip-wide DTM.
//
// The introduction argues that conventional thermal management (dynamic
// clock disabling, frequency scaling) "stop[s] or shut[s] down the entire
// chip", paying a chip-wide performance cost to fix a *local* problem.
// This bench makes that argument quantitative: for each configuration it
// takes the peak temperature the best migration scheme achieves, then
// tunes the stop-go and DVFS baselines to hit (approximately) the same
// peak, and compares throughput:
//
//   migration:  ~1-2% halt overhead, peak flattened spatially
//   stop-go:    duty-cycles the whole chip until the peak obeys the trip
//   DVFS:       runs the whole chip slower in proportion to the excess
//
// Because the baselines scale power globally, their throughput cost is
// roughly (T_peak,static - T_target) / (T_peak,static - T_ambient-ish) —
// an order of magnitude worse than migration for the same thermal relief.
#include <iostream>

#include "core/dtm_baselines.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run() {
  Table t({"Config", "Static peak (C)", "Target (C)", "Best scheme",
           "Migration cost", "Stop-go peak (C)", "Stop-go cost",
           "DVFS peak (C)", "DVFS cost"});
  t.set_title(
      "Equal-peak comparison: runtime reconfiguration vs chip-wide DTM");

  for (const ChipConfig& cfg : all_configs()) {
    ExperimentDriver driver(cfg);
    driver.prepare();

    // Best migration scheme at the default (one-block) period.
    SchemeEvaluation best;
    best.peak_temp_c = 1e300;
    for (MigrationScheme scheme : figure1_schemes()) {
      const SchemeEvaluation ev = driver.evaluate_scheme(scheme);
      if (ev.peak_temp_c < best.peak_temp_c) best = ev;
    }
    const double target = best.peak_temp_c;
    const double period = driver.default_period_s();
    const int periods = 400;

    // Stop-go with the trip at the target peak.
    const StopGoController stop_go(driver.thermal_network(), target,
                                   /*hysteresis_c=*/1.0);
    const DtmRunResult sg = stop_go.run(driver.base_power(), period, periods);

    // DVFS with the setpoint a shade below the target (proportional
    // control settles slightly above its setpoint).
    const DvfsController dvfs(driver.thermal_network(), target - 1.0,
                              /*gain=*/0.25);
    const DtmRunResult dv = dvfs.run(driver.base_power(), period, periods);

    t.add_row({cfg.name, Table::num(driver.base_peak_temp_c()),
               Table::num(target), to_string(best.scheme),
               Table::num(best.throughput_penalty * 100, 2) + "%",
               Table::num(sg.peak_temp_c),
               Table::num((1.0 - sg.throughput_fraction) * 100, 1) + "%",
               Table::num(dv.peak_temp_c),
               Table::num((1.0 - dv.throughput_fraction) * 100, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nMigration reaches the same peak for a few percent of "
               "throughput; chip-wide throttling\npays an order of "
               "magnitude more — the paper's core motivation, quantified.\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
