// NoC characterization: latency-load curves for the classic synthetic
// patterns.
//
// Not a paper artifact, but the standard validation any NoC simulator must
// pass: average packet latency stays near the zero-load bound at light
// injection, then grows sharply past saturation, with pattern-dependent
// saturation points (hotspot saturates first, neighbor traffic last).
// These curves document the fabric the LDPC experiments run on.
#include <iostream>

#include "noc/fabric.hpp"
#include "noc/traffic.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

double mean_latency(TrafficPattern pattern, double rate, int side) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  Fabric fabric(cfg);
  TrafficGenerator gen(fabric, pattern, rate, 4, Rng(42), /*hotspot=*/0);
  gen.run(6000);
  fabric.drain(2'000'000);
  return fabric.stats().packet_latency().mean();
}

int run() {
  const std::vector<TrafficPattern> patterns = {
      TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
      TrafficPattern::kBitComplement, TrafficPattern::kNeighbor,
      TrafficPattern::kHotspot};
  const std::vector<double> rates = {0.02, 0.05, 0.10, 0.20, 0.35};

  for (int side : {4, 8}) {
    Table t({"Pattern", "0.02", "0.05", "0.10", "0.20", "0.35"});
    t.set_title("Mean packet latency (cycles) vs injection rate "
                "(flits/node/cycle), " +
                std::to_string(side) + "x" + std::to_string(side) + " mesh");
    for (TrafficPattern p : patterns) {
      std::vector<std::string> row{to_string(p)};
      for (double rate : rates)
        row.push_back(Table::num(mean_latency(p, rate, side), 1));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: flat near zero load, sharp growth past "
               "saturation; hotspot\nsaturates earliest, neighbor traffic "
               "latest.\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
