// NoC characterization: latency-load curves for the classic synthetic
// patterns.
//
// Not a paper artifact, but the standard validation any NoC simulator must
// pass: average packet latency stays near the zero-load bound at light
// injection, then grows sharply past saturation, with pattern-dependent
// saturation points (hotspot saturates first, neighbor traffic last).
// These curves document the fabric the LDPC experiments run on.
//
// The whole {pattern x mesh x rate} grid runs through the threaded
// engine harness (run_noc_sweep) — thread-count-invariant results, one
// RNG stream per scenario, warm-up/measure/drain methodology.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_noc.json.
#include <algorithm>
#include <iostream>
#include <thread>

#include "noc/sweep_harness.hpp"
#include "paper_bench.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run(const bench::PaperArgs& args) {
  SweepConfig sweep;
  sweep.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
                    TrafficPattern::kBitComplement, TrafficPattern::kNeighbor,
                    TrafficPattern::kHotspot};
  sweep.mesh_sides = args.smoke ? std::vector<int>{4, 8}
                                : std::vector<int>{4, 8};
  sweep.injection_rates = {0.02, 0.05, 0.10, 0.20, 0.35};
  if (args.smoke) {
    sweep.warmup_cycles = 200;
    sweep.measure_cycles = 800;
  } else {
    sweep.warmup_cycles = 500;
    sweep.measure_cycles = 6000;
  }
  sweep.threads = std::max(1u, std::thread::hardware_concurrency());
  sweep.seed = 42;
  const std::vector<SweepPoint> points = run_noc_sweep(sweep);

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("noc_characterization");
  json.key("smoke").boolean(args.smoke);
  json.key("points").begin_array();
  for (const SweepPoint& pt : points) {
    json.begin_object();
    json.key("pattern").string(to_string(pt.scenario.pattern));
    json.key("mesh").integer(pt.scenario.dim.width);
    json.key("injection_rate").real(pt.scenario.injection_rate);
    json.key("avg_latency_cycles").real(pt.avg_latency_cycles);
    json.key("max_latency_cycles").real(pt.max_latency_cycles);
    json.key("offered_flit_rate").real(pt.offered_flit_rate);
    json.key("injected_flit_rate").real(pt.injected_flit_rate);
    json.key("accepted_flit_rate").real(pt.accepted_flit_rate);
    json.key("messages_sent").uinteger(pt.messages_sent);
    json.key("messages_received").uinteger(pt.messages_received);
    json.key("packets_delivered").uinteger(pt.packets_delivered);
    json.key("flits_delivered").uinteger(pt.flits_delivered);
    // Delivery-guarantee counters: all zero on this pristine sweep (the
    // grid has no fault axes), pinned in the golden so a zero-fault run
    // that drops, retries, or reroutes is caught as a value change.
    json.key("packets_retried").uinteger(pt.packets_retried);
    json.key("packets_dropped").uinteger(pt.packets_dropped);
    json.key("packets_unreachable").uinteger(pt.packets_unreachable);
    json.key("duplicates_suppressed").uinteger(pt.duplicates_suppressed);
    json.key("route_epochs").integer(pt.route_epochs);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  // points are pattern-major, then mesh side, then rate: rebuild the
  // per-mesh latency tables from the flat grid.
  const std::size_t n_rates = sweep.injection_rates.size();
  const std::size_t n_sides = sweep.mesh_sides.size();
  for (std::size_t side_i = 0; side_i < n_sides; ++side_i) {
    const int side = sweep.mesh_sides[side_i];
    Table t({"Pattern", "0.02", "0.05", "0.10", "0.20", "0.35"});
    t.set_title("Mean packet latency (cycles) vs injection rate "
                "(flits/node/cycle), " +
                std::to_string(side) + "x" + std::to_string(side) + " mesh");
    for (std::size_t p = 0; p < sweep.patterns.size(); ++p) {
      std::vector<std::string> row{to_string(sweep.patterns[p])};
      for (std::size_t r = 0; r < n_rates; ++r) {
        const SweepPoint& pt =
            points[(p * n_sides + side_i) * n_rates + r];
        row.push_back(Table::num(pt.avg_latency_cycles, 1));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: flat near zero load, sharp growth past "
               "saturation; hotspot\nsaturates earliest, neighbor traffic "
               "latest.\nwrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc =
          renoc::bench::parse_paper_args(argc, argv, "PAPER_noc.json", args))
    return rc;
  return renoc::run(args);
}
