// Shared plumbing for the eight paper benches (the figure/table
// reproductions): command-line contract, smoke scaling, and the config
// roster each mode runs.
//
// Every paper bench accepts
//
//   --smoke        shrink the workload to the test suite's fast_config
//                  scale (seconds, CI-friendly) — the mode the goldens
//                  under goldens/ are pinned at;
//   --json PATH    where to write the machine-readable record
//                  (default PAPER_<figure>.json in the working dir).
//
// The JSON schema convention the golden differ relies on: timing fields
// are named "ms"/"*_ms" (skipped in comparisons), counts are emitted as
// integer tokens (compared exactly), temperatures and other reals are
// tolerance-checked. See src/util/json.hpp.
#pragma once

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/chip_config.hpp"

namespace renoc::bench {

struct PaperArgs {
  bool smoke = false;
  std::string json_path;
};

/// Parses --smoke / --json PATH (in any order). Returns 0 on success and
/// fills `out`; returns 2 (and prints usage) on an unknown flag or a
/// missing --json operand.
inline int parse_paper_args(int argc, char** argv,
                            std::string_view default_json, PaperArgs& out) {
  out.smoke = false;
  out.json_path = std::string(default_json);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      out.smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      out.json_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json PATH]\n";
      return 2;
    }
  }
  return 0;
}

/// The fast_config scaling the test suite uses (tests/system_test.cpp):
/// a shorter code, fewer decode iterations, and a lighter placer anneal.
/// Calibration still targets the paper's base peak, so temperatures stay
/// in the paper's regime; only the workload measurement shrinks.
inline ChipConfig smoke_scaled(ChipConfig cfg) {
  cfg.workload.code_n = cfg.dim.width == 4 ? 510 : 600;
  cfg.ldpc_params.iterations = 4;
  cfg.placer.iterations = 4000;
  return cfg;
}

/// The configuration roster: all five chips in full mode; one even-mesh
/// (A, 4x4) and one odd-mesh (C, 5x5) chip at fast_config scale in smoke
/// mode — odd meshes exercise the rotation/mirror fixed-point path.
inline std::vector<ChipConfig> paper_configs(bool smoke) {
  if (!smoke) return all_configs();
  return {smoke_scaled(config_A()), smoke_scaled(config_C())};
}

}  // namespace renoc::bench
