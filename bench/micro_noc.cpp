// Microbenchmarks for the cycle-accurate NoC simulator: raw step cost on
// idle and loaded meshes, end-to-end message cost, and synthetic traffic
// throughput. These gate the wall-clock cost of the paper experiments
// (one LDPC block is ~55k fabric cycles).
#include <benchmark/benchmark.h>

#include "noc/fabric.hpp"
#include "noc/traffic.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

NocConfig mesh(int side) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  return cfg;
}

void BM_FabricStepIdle(benchmark::State& state) {
  Fabric fabric(mesh(static_cast<int>(state.range(0))));
  for (auto _ : state) fabric.step();
  state.SetItemsProcessed(state.iterations());
}

void BM_FabricStepLoaded(benchmark::State& state) {
  Fabric fabric(mesh(static_cast<int>(state.range(0))));
  TrafficGenerator gen(fabric, TrafficPattern::kUniformRandom, 0.2, 4,
                       Rng(7));
  for (auto _ : state) gen.step();
  state.SetItemsProcessed(state.iterations());
}

void BM_MessageEndToEnd(benchmark::State& state) {
  Fabric fabric(mesh(5));
  for (auto _ : state) {
    Message m;
    m.src = 0;
    m.dst = 24;
    m.payload.assign(static_cast<std::size_t>(state.range(0)), 1);
    fabric.send(m);
    fabric.drain();
    benchmark::DoNotOptimize(fabric.try_receive(24));
  }
}

void BM_SaturatedHotspotDrain(benchmark::State& state) {
  for (auto _ : state) {
    Fabric fabric(mesh(4));
    for (int s = 1; s < 16; ++s) {
      Message m;
      m.src = s;
      m.dst = 0;
      m.payload.assign(8, 0);
      fabric.send(m);
    }
    fabric.drain();
    for (int i = 0; i < 15; ++i) benchmark::DoNotOptimize(fabric.try_receive(0));
  }
}

BENCHMARK(BM_FabricStepIdle)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_FabricStepLoaded)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_MessageEndToEnd)->Arg(1)->Arg(16)->Arg(128);
BENCHMARK(BM_SaturatedHotspotDrain);

}  // namespace
}  // namespace renoc

BENCHMARK_MAIN();
