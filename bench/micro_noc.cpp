// Before/after harness for the flat SoA NoC fabric engine.
//
// Drives the seed engine (noc/reference_fabric: per-Router deque FIFOs,
// unordered_map reassembly) and the flat engine (noc/fabric: one flit
// arena, flat credit/wormhole/round-robin arrays, pooled payload buffers)
// with byte-identical send schedules, and checks bit-exactness of the
// delivery stream (order, contents, cycle of arrival), the final cycle
// count, and every NocStats counter while timing both. It also counts
// steady-state heap allocations of the flat traffic loop and cross-checks
// the scenario-sweep harness across thread counts. Guards fail the binary
// (nonzero exit), so wiring `--smoke` into CI makes divergence from the
// seed semantics a build break instead of a silent regression.
//
// Results are also written as machine-readable JSON (BENCH_noc.json by
// default) so CI can archive them per commit.
//
// Usage: bench_micro_noc [--smoke] [--json <path>]
//   --smoke   tiny meshes and budgets; used by CI and scripts/check.sh so
//             this target can never silently rot.
//   --json    output path for the JSON record (default BENCH_noc.json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "noc/fabric.hpp"
#include "noc/fault_model.hpp"
#include "util/json.hpp"
#include "noc/reference_fabric.hpp"
#include "noc/routing.hpp"
#include "noc/sweep_harness.hpp"
#include "noc/traffic.hpp"
#include "sweep_guard.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

// Steady-state allocations are counted by util/alloc_guard (referencing it
// links the interposed operator new/delete into this binary).
#include "util/alloc_guard.hpp"

namespace renoc {
namespace {

using bench::time_ms;  // mix64 comes from util/rng.hpp

/// Everything observable about one driven simulation. Two engines are
/// bit-identical iff their DriveRecords compare equal.
struct DriveRecord {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t delivery_hash = 0;  ///< (cycle, node, src, tag, payload...)
  std::uint64_t final_cycle = 0;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  std::uint64_t lat_count = 0;
  double lat_mean = 0.0;
  double lat_min = 0.0;
  double lat_max = 0.0;
  std::uint64_t tile_hash = 0;  ///< every TileActivity counter, in order

  bool operator==(const DriveRecord&) const = default;
};

/// Uniform-random Bernoulli load: the send schedule depends only on the
/// private Rng (never on fabric responses), so seed and flat engines given
/// the same seed see byte-identical traffic.
template <class FabricT>
DriveRecord drive_uniform(FabricT& fabric, int cycles, double rate,
                          int words, std::uint64_t seed) {
  Rng rng(seed);
  const int n = fabric.node_count();
  const double p = rate / words;
  DriveRecord rec;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto note_delivery = [&](int node, const Message& m) {
    h = mix64(h ^ fabric.now());
    h = mix64(h ^ static_cast<std::uint64_t>(node));
    h = mix64(h ^ static_cast<std::uint64_t>(m.src));
    h = mix64(h ^ m.tag);
    for (std::uint64_t w : m.payload) h = mix64(h ^ w);
    ++rec.received;
  };
  for (int c = 0; c < cycles; ++c) {
    for (int src = 0; src < n; ++src) {
      if (!rng.next_bool(p)) continue;
      int dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (dst >= src) ++dst;
      Message m;
      m.src = src;
      m.dst = dst;
      m.tag = rec.sent;
      m.payload.assign(static_cast<std::size_t>(words),
                       static_cast<std::uint64_t>(src) * 1000u +
                           static_cast<std::uint64_t>(c));
      fabric.send(m);
      ++rec.sent;
    }
    fabric.step();
    for (int node = 0; node < n; ++node)
      while (auto got = fabric.try_receive(node)) note_delivery(node, *got);
  }
  int guard = 0;
  while (!fabric.idle()) {
    fabric.step();
    for (int node = 0; node < n; ++node)
      while (auto got = fabric.try_receive(node)) note_delivery(node, *got);
    RENOC_CHECK_MSG(++guard < 2'000'000, "bench drive failed to drain");
  }
  rec.delivery_hash = h;
  rec.final_cycle = fabric.now();

  const NetworkStats& st = fabric.stats();
  rec.packets = st.packets_delivered();
  rec.flits = st.flits_delivered();
  rec.lat_count = st.packet_latency().count();
  rec.lat_mean = st.packet_latency().mean();
  rec.lat_min = st.packet_latency().min();
  rec.lat_max = st.packet_latency().max();
  std::uint64_t th = 0x100001b3ULL;
  for (int t = 0; t < n; ++t) {
    const TileActivity& a = st.tile(t);
    for (std::uint64_t v : {a.buffer_writes, a.buffer_reads,
                            a.crossbar_traversals, a.arbitrations,
                            a.link_flits, a.injected_flits, a.ejected_flits,
                            a.pe_compute_ops, a.pe_state_words})
      th = mix64(th ^ v);
  }
  rec.tile_hash = th;
  return rec;
}

/// All-to-one long-message contention: maximal wormhole blocking and
/// credit churn on the hotspot column.
template <class FabricT>
DriveRecord drive_hotspot(FabricT& fabric, int rounds, int words) {
  const int n = fabric.node_count();
  DriveRecord rec;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 1; s < n; ++s) {
      Message m;
      m.src = s;
      m.dst = 0;
      m.tag = rec.sent;
      m.payload.assign(static_cast<std::size_t>(words),
                       static_cast<std::uint64_t>(s * 37 + r));
      fabric.send(m);
      ++rec.sent;
    }
  }
  int guard = 0;
  while (!fabric.idle()) {
    fabric.step();
    while (auto got = fabric.try_receive(0)) {
      h = mix64(h ^ fabric.now());
      h = mix64(h ^ got->tag);
      h = mix64(h ^ got->payload.front());
      ++rec.received;
    }
    RENOC_CHECK_MSG(++guard < 2'000'000, "hotspot drive failed to drain");
  }
  rec.delivery_hash = h;
  rec.final_cycle = fabric.now();
  rec.packets = fabric.stats().packets_delivered();
  rec.flits = fabric.stats().flits_delivered();
  rec.lat_count = fabric.stats().packet_latency().count();
  rec.lat_mean = fabric.stats().packet_latency().mean();
  rec.lat_min = fabric.stats().packet_latency().min();
  rec.lat_max = fabric.stats().packet_latency().max();
  return rec;
}

NocConfig mesh(int side, int depth = 4) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  cfg.buffer_depth = depth;
  return cfg;
}

/// A fabric with `msgs_per_node` uniform-random messages backlogged at
/// every NI: stepping it exercises a continuously loaded mesh with no
/// traffic-driver code inside the timed region.
template <class FabricT>
FabricT make_backlogged(int side, int msgs_per_node, int words,
                        std::uint64_t seed) {
  FabricT fabric(mesh(side));
  Rng rng(seed);
  const int n = fabric.node_count();
  for (int i = 0; i < msgs_per_node; ++i)
    for (int src = 0; src < n; ++src) {
      int dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (dst >= src) ++dst;
      Message m;
      m.src = src;
      m.dst = dst;
      m.tag = static_cast<std::uint64_t>(i);
      m.payload.assign(static_cast<std::size_t>(words),
                       static_cast<std::uint64_t>(src));
      fabric.send(m);
    }
  return fabric;
}

/// Best-of-N wall time of `cycles` steps on a freshly backlogged fabric —
/// setup is rebuilt per rep and excluded from the measurement.
template <class FabricT>
double time_backlogged_run_ms(double budget_ms, int side, int msgs_per_node,
                              int words, int cycles) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double spent = 0.0;
  int reps = 0;
  while (reps < 2 || spent < budget_ms) {
    FabricT fabric = make_backlogged<FabricT>(side, msgs_per_node, words, 5);
    const auto t0 = clock::now();
    fabric.run(cycles);
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
    spent += ms;
    ++reps;
  }
  return best;
}

struct CompareRow {
  std::string scenario;
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  bool bit_exact = false;
};

struct RateRow {
  int side = 0;
  double rate = 0.0;
  int words = 0;
  double seed_ms = 0.0;
  double flat_ms = 0.0;
  double seed_cps = 0.0;  ///< simulated fabric cycles per wall-clock second
  double flat_cps = 0.0;
  double speedup = 0.0;
};

struct WantScanRow {
  simd::Tier tier = simd::Tier::kScalar;
  double ms = 0.0;  ///< one full-mesh want[] prepass over all port mirrors
  double speedup = 0.0;  // vs the scalar tier
  bool exact = true;     ///< agrees with the inline scalar computation
};

/// Times the arbitration want[]-prepass kernel through every compiled SIMD
/// tier on synthetic head-flit mirrors of a side x side mesh (the arrays
/// Fabric::step() feeds it), checking exact agreement with the fabric's
/// inline scalar computation — including unreachable routes and the zeroed
/// pad lanes, which must scan as "wants nothing" (-1).
std::vector<WantScanRow> run_want_scan_rows(int side, double budget_ms) {
  const int nodes = side * side;
  const int ports = nodes * kDirectionCount;
  const int padded = (ports + 7) / 8 * 8;
  AlignedVec<int> fifo_size, head_dst, route_base, want;
  AlignedVec<std::uint8_t> head_is_head;
  fifo_size.assign(static_cast<std::size_t>(padded), 0);
  head_dst.assign(static_cast<std::size_t>(padded), 0);
  route_base.assign(static_cast<std::size_t>(padded), 0);
  want.assign(static_cast<std::size_t>(padded), 0);
  head_is_head.assign(static_cast<std::size_t>(padded), 0);
  std::vector<std::uint8_t> table(
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes) + 4,
      0);
  Rng rng(31);
  for (std::size_t i = 0; i + 4 < table.size(); ++i) {
    const std::uint64_t roll = rng.next_below(8);
    table[i] =
        roll == 7 ? kUnreachableRoute : static_cast<std::uint8_t>(roll % 5);
  }
  for (int f = 0; f < ports; ++f) {
    const std::size_t fz = static_cast<std::size_t>(f);
    fifo_size[fz] = static_cast<int>(rng.next_below(3));
    head_is_head[fz] = static_cast<std::uint8_t>(rng.next_below(2));
    head_dst[fz] =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
    route_base[fz] = (f / kDirectionCount) * nodes;
  }

  std::vector<int> expect(static_cast<std::size_t>(padded), -1);
  for (int f = 0; f < ports; ++f) {
    const std::size_t fz = static_cast<std::size_t>(f);
    if (fifo_size[fz] > 0 && head_is_head[fz] != 0) {
      const std::uint8_t out =
          table[static_cast<std::size_t>(route_base[fz] + head_dst[fz])];
      expect[fz] = out == kUnreachableRoute ? -1 : static_cast<int>(out);
    }
  }

  std::vector<WantScanRow> rows;
  for (int t = 0; t < simd::kTierCount; ++t) {
    const simd::KernelTable* kt =
        simd::kernel_table(static_cast<simd::Tier>(t));
    if (kt == nullptr) continue;
    WantScanRow row;
    row.tier = kt->tier;
    row.ms = time_ms(budget_ms, [&] {
      kt->noc_want_scan(fifo_size.data(), head_is_head.data(),
                        head_dst.data(), route_base.data(), table.data(),
                        padded, want.data());
    });
    row.speedup = rows.empty() ? 1.0 : rows[0].ms / row.ms;
    for (int f = 0; f < padded && row.exact; ++f)
      if (want[static_cast<std::size_t>(f)] !=
          expect[static_cast<std::size_t>(f)])
        row.exact = false;
    rows.push_back(row);
  }
  return rows;
}

struct SweepGuard {
  int scenarios = 0;
  bool deterministic = true;
  std::vector<std::pair<int, double>> thread_ms;
};

bool points_equal(const std::vector<SweepPoint>& a,
                  const std::vector<SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SweepPoint& x = a[i];
    const SweepPoint& y = b[i];
    if (x.messages_sent != y.messages_sent ||
        x.messages_received != y.messages_received ||
        x.messages_skipped != y.messages_skipped ||
        x.packets_delivered != y.packets_delivered ||
        x.flits_delivered != y.flits_delivered || x.cycles != y.cycles ||
        x.avg_latency_cycles != y.avg_latency_cycles ||
        x.max_latency_cycles != y.max_latency_cycles ||
        x.packets_retried != y.packets_retried ||
        x.packets_dropped != y.packets_dropped ||
        x.packets_unreachable != y.packets_unreachable ||
        x.duplicates_suppressed != y.duplicates_suppressed ||
        x.route_epochs != y.route_epochs)
      return false;
  }
  return true;
}

/// Degraded-fabric CI guards: packet conservation under faults, zero
/// steady-state allocations with an active fault plan, and thread-count
/// invariance of the fault-axis sweep.
struct DegradedGuard {
  bool conservation = true;
  long long steady_allocs = 0;
  int fault_scenarios = 0;
  bool fault_sweep_deterministic = true;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t retried = 0;
  std::uint64_t duplicates = 0;
  int route_epochs = 0;
};

void write_json(const std::string& path, bool smoke,
                const std::vector<CompareRow>& compares,
                const std::vector<RateRow>& rates,
                const std::vector<WantScanRow>& want_scan,
                long long steady_allocs, const SweepGuard& sweep,
                const DegradedGuard& degraded,
                const bench::ServiceGuardResult& service) {
  AtomicFile out(path);
  JsonWriter json(out.stream());
  json.begin_object();
  json.key("bench").string("micro_noc");
  json.key("smoke").boolean(smoke);
  json.key("engine_compare").begin_array();
  for (const CompareRow& r : compares) {
    json.begin_object();
    json.key("scenario").string(r.scenario);
    json.key("cycles").uinteger(r.cycles);
    json.key("packets").uinteger(r.packets);
    json.key("bit_exact").boolean(r.bit_exact);
    json.end_object();
  }
  json.end_array();
  json.key("step_rate").begin_array();
  for (const RateRow& r : rates) {
    json.begin_object();
    json.key("mesh").integer(r.side);
    json.key("rate").real(r.rate, 2);
    json.key("words").integer(r.words);
    json.key("seed_ms").real(r.seed_ms);
    json.key("flat_ms").real(r.flat_ms);
    json.key("seed_cycles_per_sec").real(r.seed_cps, 0);
    json.key("flat_cycles_per_sec").real(r.flat_cps, 0);
    json.key("speedup").real(r.speedup, 3);
    json.end_object();
  }
  json.end_array();
  json.key("want_scan").begin_object();
  json.key("active_tier").string(simd::active_tier_name());
  json.key("tiers").begin_array();
  for (const WantScanRow& r : want_scan) {
    json.begin_object();
    json.key("tier").string(simd::tier_name(r.tier));
    json.key("ms").real(r.ms);
    json.key("speedup").real(r.speedup, 3);
    json.key("exact").boolean(r.exact);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("steady_state_allocs").integer(steady_allocs);
  json.key("sweep_determinism").begin_object();
  json.key("scenarios").integer(sweep.scenarios);
  json.key("deterministic").boolean(sweep.deterministic);
  json.key("threads").begin_array();
  for (const auto& [threads, ms] : sweep.thread_ms) {
    json.begin_object();
    json.key("threads").integer(threads);
    json.key("ms").real(ms, 3);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("degraded_fabric").begin_object();
  json.key("conservation").boolean(degraded.conservation);
  json.key("steady_state_allocs").integer(degraded.steady_allocs);
  json.key("fault_scenarios").integer(degraded.fault_scenarios);
  json.key("fault_sweep_deterministic")
      .boolean(degraded.fault_sweep_deterministic);
  json.key("packets_delivered").uinteger(degraded.delivered);
  json.key("packets_dropped").uinteger(degraded.dropped);
  json.key("packets_unreachable").uinteger(degraded.unreachable);
  json.key("packets_retried").uinteger(degraded.retried);
  json.key("duplicates_suppressed").uinteger(degraded.duplicates);
  json.key("route_epochs").integer(degraded.route_epochs);
  json.end_object();
  bench::write_service_guard_json(json, service);
  json.end_object();
  out.commit();
  std::printf("\nwrote %s\n", path.c_str());
}

int run(bool smoke, const std::string& json_path) {
  const std::vector<int> sides = smoke ? std::vector<int>{4}
                                       : std::vector<int>{4, 8};
  const int compare_cycles = smoke ? 400 : 2000;
  const double budget_ms = smoke ? 15.0 : 400.0;
  bool ok = true;

  // --- Bit-exactness: seed vs flat on identical schedules ---------------
  Table cmp_table({"scenario", "cycles", "packets", "bit-exact"});
  cmp_table.set_title(
      std::string("Seed (deque/map) vs flat (arena) engine on identical "
                  "send schedules") +
      (smoke ? " [smoke]" : ""));
  std::vector<CompareRow> compares;
  auto add_compare = [&](const std::string& name, const DriveRecord& ref,
                         const DriveRecord& flat) {
    CompareRow row;
    row.scenario = name;
    row.cycles = ref.final_cycle;
    row.packets = ref.packets;
    row.bit_exact = ref == flat;
    compares.push_back(row);
    cmp_table.add_row({row.scenario, std::to_string(row.cycles),
                       std::to_string(row.packets),
                       row.bit_exact ? "yes" : "NO"});
    ok = ok && row.bit_exact;
  };
  for (int side : sides)
    for (double rate : {0.10, 0.30}) {
      ReferenceFabric ref(mesh(side));
      Fabric flat(mesh(side));
      const auto a = drive_uniform(ref, compare_cycles, rate, 4, 42);
      const auto b = drive_uniform(flat, compare_cycles, rate, 4, 42);
      add_compare("uniform-" + std::to_string(side) + "x" +
                      std::to_string(side) + "-r" + Table::num(rate, 2),
                  a, b);
    }
  for (int depth : {1, 4}) {
    ReferenceFabric ref(mesh(4, depth));
    Fabric flat(mesh(4, depth));
    const auto a = drive_hotspot(ref, smoke ? 4 : 12, 16);
    const auto b = drive_hotspot(flat, smoke ? 4 : 12, 16);
    add_compare("hotspot-4x4-d" + std::to_string(depth), a, b);
  }
  cmp_table.print(std::cout);

  // --- Step-rate: simulated cycles per second, seed vs flat -------------
  // Every NI starts with a deep uniform backlog and only fabric.run() is
  // inside the timed region, so this is the cost of step() itself on a
  // continuously loaded mesh (the acceptance number for the flat engine).
  Table rate_table({"mesh", "msgs/node", "words", "cycles", "seed ms",
                    "flat ms", "seed Mcyc/s", "flat Mcyc/s", "speedup"});
  rate_table.set_title(
      "Loaded-mesh step rate: pure fabric.run() on a backlogged mesh, "
      "best-of-N");
  std::vector<RateRow> rate_rows;
  for (int side : sides) {
    RateRow row;
    row.side = side;
    row.words = 4;
    const int msgs_per_node = smoke ? 20 : 60;
    row.rate = 1.0;  // NIs saturate: one flit injected per node per cycle
    // Run for 3/4 of the backlog's drain time so the mesh stays loaded
    // through the whole timed region (verified below).
    Fabric probe =
        make_backlogged<Fabric>(side, msgs_per_node, row.words, 5);
    const int drain_cycles = probe.drain();
    const int cycles = std::max(50, drain_cycles * 3 / 4);
    {
      Fabric check =
          make_backlogged<Fabric>(side, msgs_per_node, row.words, 5);
      check.run(cycles);
      RENOC_CHECK_MSG(!check.idle(),
                      "timed region outlived the backlog — raise msgs/node");
    }
    row.seed_ms = time_backlogged_run_ms<ReferenceFabric>(
        budget_ms, side, msgs_per_node, row.words, cycles);
    row.flat_ms = time_backlogged_run_ms<Fabric>(
        budget_ms, side, msgs_per_node, row.words, cycles);
    row.seed_cps = static_cast<double>(cycles) / (row.seed_ms / 1e3);
    row.flat_cps = static_cast<double>(cycles) / (row.flat_ms / 1e3);
    row.speedup = row.seed_ms / row.flat_ms;
    rate_rows.push_back(row);
    rate_table.add_row(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(msgs_per_node), std::to_string(row.words),
         std::to_string(cycles), Table::num(row.seed_ms, 3),
         Table::num(row.flat_ms, 3), Table::num(row.seed_cps / 1e6, 2),
         Table::num(row.flat_cps / 1e6, 2), Table::num(row.speedup, 2)});
  }
  rate_table.print(std::cout);

  // --- Arbitration want-scan kernel, per SIMD tier ----------------------
  const std::vector<WantScanRow> want_rows =
      run_want_scan_rows(smoke ? 8 : 16, budget_ms);
  Table want_table({"tier", "scan ms", "speedup", "exact"});
  want_table.set_title(
      std::string("Arbitration want[]-prepass over all port mirrors (") +
      (smoke ? "8x8" : "16x16") +
      " mesh), every compiled SIMD tier; active tier: " +
      simd::active_tier_name());
  for (const WantScanRow& r : want_rows) {
    want_table.add_row({simd::tier_name(r.tier), Table::num(r.ms, 5),
                        Table::num(r.speedup, 2), r.exact ? "yes" : "NO"});
    ok = ok && r.exact;
  }
  want_table.print(std::cout);

  // --- Steady-state allocation guard ------------------------------------
  // Deterministic periodic load (every node sends a 4-word message to its
  // east neighbor every 6 cycles, all deliveries recycled): demand on the
  // payload pool and every ring is exactly periodic, so one warm-up period
  // reaches every high-water mark and the measured window must perform
  // ZERO heap allocations. A stochastic load would merely make this
  // probabilistic — extreme-value queue tails keep finding new maxima.
  long long steady_allocs = 0;
  {
    Fabric fabric(mesh(smoke ? 4 : 8));
    const int n = fabric.node_count();
    const GridDim dim = fabric.config().dim;
    auto pump = [&](int cycles) {
      for (int c = 0; c < cycles; ++c) {
        if (c % 6 == 0) {
          for (int src = 0; src < n; ++src) {
            const GridCoord co = index_to_coord(src, dim);
            Message m = fabric.acquire_message();
            m.src = src;
            m.dst = coord_to_index({(co.x + 1) % dim.width, co.y}, dim);
            m.tag = static_cast<std::uint64_t>(c);
            m.payload.assign(4, 0xa5a5a5a5ULL);
            fabric.send(std::move(m));
          }
        }
        fabric.step();
        for (int node = 0; node < n; ++node)
          while (auto msg = fabric.try_receive(node))
            fabric.recycle(std::move(*msg));
      }
    };
    pump(smoke ? 240 : 600);  // warm-up: pool, rings, staging at high water
    const AllocGuard guard;
    pump(smoke ? 240 : 600);
    steady_allocs = guard.count();
  }
  std::printf(
      "steady-state allocations over the measured step window: %lld%s\n",
      steady_allocs,
      alloc_guard::instrumented() ? "" : " (uninstrumented: not checked)");
  ok = ok && (steady_allocs == 0 || !alloc_guard::instrumented());

  // --- Sweep-harness thread determinism ----------------------------------
  SweepConfig scfg;
  scfg.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
                   TrafficPattern::kBitReverse};
  scfg.mesh_sides = {4};
  scfg.injection_rates = {0.05, 0.25};
  scfg.message_words = {2, 8};
  scfg.warmup_cycles = smoke ? 100 : 300;
  scfg.measure_cycles = smoke ? 300 : 1500;
  scfg.seed = 99;
  SweepGuard sweep;
  sweep.scenarios = static_cast<int>(scfg.scenarios().size());
  std::vector<SweepPoint> baseline;
  for (int threads : {1, 2, 4}) {
    scfg.threads = threads;
    std::vector<SweepPoint> pts;
    const double ms =
        time_ms(smoke ? 1.0 : 50.0, [&] { pts = run_noc_sweep(scfg); });
    sweep.thread_ms.emplace_back(threads, ms);
    if (threads == 1)
      baseline = pts;
    else if (!points_equal(baseline, pts))
      sweep.deterministic = false;
  }
  Table sweep_table({"threads", "sweep ms", "deterministic"});
  sweep_table.set_title(
      "Scenario sweep (" + std::to_string(sweep.scenarios) +
      " scenarios): results must not depend on thread count");
  for (const auto& [threads, ms] : sweep.thread_ms)
    sweep_table.add_row({std::to_string(threads), Table::num(ms, 2),
                         sweep.deterministic ? "yes" : "NO"});
  sweep_table.print(std::cout);
  ok = ok && sweep.deterministic;

  // --- Degraded-fabric guards --------------------------------------------
  DegradedGuard degraded;

  // (a) Packet conservation under every fault kind: every message send()
  // accepts resolves as exactly one of delivered / dropped / unreachable
  // once the fabric drains. A packet lost without a drop record breaks the
  // count and fails the bench.
  {
    int plan_index = 0;
    for (FaultKind kind :
         {FaultKind::kLinkDead, FaultKind::kRouterDead, FaultKind::kLinkFlaky}) {
      Fabric fabric(mesh(smoke ? 4 : 6));
      DeliveryGuardConfig g;
      g.timeout_cycles = 256;
      fabric.configure_delivery_guard(g);
      FaultSpec spec;
      spec.kind = kind;
      spec.count = kind == FaultKind::kRouterDead ? 2 : 3;
      spec.onset_min = 100;
      spec.onset_max = 600;
      fabric.install_fault_plan(
          make_fault_plan(fabric.config().dim, spec,
                          fault_scenario_rng(7, plan_index++)));
      const DriveRecord rec =
          drive_uniform(fabric, smoke ? 900 : 1500, 0.05, 4, 1234);
      const NetworkStats& st = fabric.stats();
      degraded.conservation =
          degraded.conservation &&
          st.packets_delivered() + st.packets_dropped() +
                  st.packets_unreachable() ==
              rec.sent;
      degraded.delivered += st.packets_delivered();
      degraded.dropped += st.packets_dropped();
      degraded.unreachable += st.packets_unreachable();
      degraded.retried += st.packets_retried();
      degraded.duplicates += st.duplicates_suppressed();
      degraded.route_epochs += fabric.route_epoch();
    }
  }

  // (b) Steady-state allocation guard with an active fault plan: all fault
  // events land during warm-up, so the measured window steps a degraded
  // fabric (adaptive tables, delivery guard, tracked sends) that must be
  // allocation-free just like the pristine engine. The send period is slow
  // enough that stop-and-wait never backs the NI queues up.
  {
    Fabric fabric(mesh(4));
    fabric.configure_delivery_guard(DeliveryGuardConfig{});
    FaultSpec spec;
    spec.kind = FaultKind::kLinkDead;
    spec.count = 2;
    spec.onset_min = 50;
    spec.onset_max = 150;
    fabric.install_fault_plan(
        make_fault_plan(fabric.config().dim, spec, fault_scenario_rng(11, 0)));
    const int n = fabric.node_count();
    const GridDim dim = fabric.config().dim;
    auto pump = [&](int cycles) {
      for (int c = 0; c < cycles; ++c) {
        if (c % 64 == 0) {
          for (int src = 0; src < n; ++src) {
            const GridCoord co = index_to_coord(src, dim);
            Message m = fabric.acquire_message();
            m.src = src;
            m.dst = coord_to_index({(co.x + 1) % dim.width, co.y}, dim);
            m.tag = static_cast<std::uint64_t>(c);
            m.payload.assign(4, 0x5a5a5a5aULL);
            fabric.send(std::move(m));
          }
        }
        fabric.step();
        for (int node = 0; node < n; ++node)
          while (auto msg = fabric.try_receive(node))
            fabric.recycle(std::move(*msg));
      }
    };
    pump(1600);  // warm-up: every fault applied, retries settled, rings warm
    const AllocGuard guard;
    pump(512);
    degraded.steady_allocs = guard.count();
  }

  // (c) Fault-axis sweep: bit-identical results for any thread count, with
  // the degraded axes exercising plan installation and the delivery guard.
  {
    SweepConfig fcfg;
    fcfg.mesh_sides = {4};
    fcfg.injection_rates = {0.05};
    fcfg.message_words = {4};
    fcfg.fault_counts = {0, 2};
    fcfg.fault_kinds = {FaultKind::kLinkDead, FaultKind::kLinkFlaky};
    fcfg.retry_budgets = {kGuardDisabled, 2};
    fcfg.warmup_cycles = smoke ? 100 : 300;
    fcfg.measure_cycles = smoke ? 300 : 1000;
    fcfg.seed = 1307;
    degraded.fault_scenarios = static_cast<int>(fcfg.scenarios().size());
    std::vector<SweepPoint> fault_baseline;
    for (int threads : {1, 2, 4}) {
      fcfg.threads = threads;
      const std::vector<SweepPoint> pts = run_noc_sweep(fcfg);
      if (threads == 1)
        fault_baseline = pts;
      else if (!points_equal(fault_baseline, pts))
        degraded.fault_sweep_deterministic = false;
    }
  }

  std::printf(
      "degraded fabric: conservation %s, steady-state allocs %lld%s, "
      "fault sweep (%d scenarios) %s\n",
      degraded.conservation ? "holds" : "BROKEN", degraded.steady_allocs,
      alloc_guard::instrumented() ? "" : " (uninstrumented: not checked)",
      degraded.fault_scenarios,
      degraded.fault_sweep_deterministic ? "deterministic" : "NONDETERMINISTIC");
  ok = ok && degraded.conservation && degraded.fault_sweep_deterministic &&
       (degraded.steady_allocs == 0 || !alloc_guard::instrumented());

  // --- Sweep service guards ---------------------------------------------
  // The NoC sweep through util/sweep: shard splits and a kill/resume cycle
  // must merge to the exact points the direct sweep produced.
  SweepConfig svc_cfg;
  svc_cfg.patterns = {TrafficPattern::kUniformRandom,
                      TrafficPattern::kTranspose};
  svc_cfg.mesh_sides = {4};
  svc_cfg.injection_rates = {0.05, 0.15, 0.25};
  svc_cfg.message_words = {4};
  svc_cfg.fault_counts = {0, 2};
  svc_cfg.retry_budgets = {3};
  svc_cfg.warmup_cycles = smoke ? 100 : 300;
  svc_cfg.measure_cycles = smoke ? 300 : 1000;
  svc_cfg.seed = 99;
  const sweep::SweepSpec svc_spec = make_noc_sweep_spec(svc_cfg);
  const bench::ServiceGuardResult service =
      bench::run_service_guard(svc_spec, "bench_noc_sweep_ckpt");
  Table service_table(
      {"scenarios", "resumed", "shard identity", "resume identity",
       "conserved"});
  service_table.set_title(
      "Sweep service (NoC spec): shard merges and checkpoint resume must "
      "be bit-identical to the direct run");
  service_table.add_row({std::to_string(service.scenarios),
                         std::to_string(service.resumed),
                         service.shard_identity ? "yes" : "NO",
                         service.resume_identity ? "yes" : "NO",
                         service.conserved ? "yes" : "NO"});
  service_table.print(std::cout);
  ok = ok && service.ok();

  write_json(json_path, smoke, compares, rate_rows, want_rows, steady_allocs,
             sweep, degraded, service);

  if (!ok) {
    std::cerr << "FAIL: flat fabric diverged from the seed reference, "
                 "a SIMD want-scan tier disagreed with the scalar prepass, "
                 "allocated in steady state, lost a packet without a drop "
                 "record, a sweep depended on thread count, or the sweep "
                 "service broke shard/resume identity\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_noc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  return renoc::run(smoke, json_path);
}
