// Microbenchmarks for the LDPC stack: code construction, encoding, the
// golden decoder, and a full cycle-accurate NoC block decode (the unit of
// work behind every power-map measurement in the paper pipeline).
#include <benchmark/benchmark.h>

#include "core/transform.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "noc/fabric.hpp"

namespace renoc {
namespace {

struct Bench {
  LdpcCode code;
  LdpcEncoder encoder;
  std::vector<std::int16_t> llrs;

  explicit Bench(int n)
      : code([&] {
          Rng rng(3);
          return LdpcCode::make_regular(n, 3, 6, rng);
        }()),
        encoder(code) {
    Rng rng(5);
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    AwgnChannel channel(2.5, 0.5, rng.split());
    llrs = quantize_llrs(channel.transmit(encoder.encode(data)));
  }
};

void BM_CodeConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(LdpcCode::make_regular(n, 3, 6, rng));
  }
}

void BM_EncoderSetup(benchmark::State& state) {
  Rng rng(3);
  const LdpcCode code =
      LdpcCode::make_regular(static_cast<int>(state.range(0)), 3, 6, rng);
  for (auto _ : state) {
    LdpcEncoder enc(code);
    benchmark::DoNotOptimize(&enc);
  }
}

void BM_Encode(benchmark::State& state) {
  Bench b(static_cast<int>(state.range(0)));
  Rng rng(7);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(b.encoder.k()));
  for (auto& bit : data) bit = static_cast<std::uint8_t>(rng.next_below(2));
  for (auto _ : state) benchmark::DoNotOptimize(b.encoder.encode(data));
}

void BM_GoldenDecode(benchmark::State& state) {
  Bench b(static_cast<int>(state.range(0)));
  const MinSumDecoder decoder(b.code, 10);
  for (auto _ : state) benchmark::DoNotOptimize(decoder.decode(b.llrs));
}

void BM_NocBlockDecode(benchmark::State& state) {
  Bench b(510);
  NocConfig cfg;
  cfg.dim = GridDim{4, 4};
  Fabric fabric(cfg);
  LdpcNocParams params;
  params.iterations = static_cast<int>(state.range(0));
  NocLdpcDecoder decoder(fabric, b.code, make_striped_partition(b.code, 16),
                         identity_permutation(16), params);
  for (auto _ : state)
    benchmark::DoNotOptimize(decoder.decode_block(b.llrs));
}

BENCHMARK(BM_CodeConstruction)->Arg(510)->Arg(2046);
BENCHMARK(BM_EncoderSetup)->Arg(510)->Arg(2046);
BENCHMARK(BM_Encode)->Arg(510)->Arg(2046);
BENCHMARK(BM_GoldenDecode)->Arg(510)->Arg(2046);
BENCHMARK(BM_NocBlockDecode)->Arg(4)->Arg(10);

}  // namespace
}  // namespace renoc

BENCHMARK_MAIN();
