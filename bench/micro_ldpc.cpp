// Before/after harness for the flat LDPC decode engine.
//
// Times the seed (pointer-chasing, copy-in/copy-out) decode loop against
// the flat CSR engine on the same blocks, checks bit-exactness of every
// DecodeResult field while doing so, counts steady-state heap allocations
// of the flat path, and scales the Monte-Carlo BER harness across threads
// with a determinism cross-check. Guards fail the binary (nonzero exit), so
// wiring `--smoke` into CI makes divergence from the golden semantics a
// build break instead of a silent regression.
//
// Results are also written as machine-readable JSON (BENCH_ldpc.json by
// default) so CI can archive them per commit.
//
// Usage: bench_micro_ldpc [--smoke] [--json <path>]
//   --smoke   tiny sizes and budgets; used by CI and scripts/check.sh so
//             this target can never silently rot.
//   --json    output path for the JSON record (default BENCH_ldpc.json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "core/transform.hpp"
#include "sweep_guard.hpp"
#include "util/json.hpp"
#include "ldpc/ber_harness.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "ldpc/reference_decoder.hpp"
#include "noc/fabric.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

// Steady-state allocations are counted by util/alloc_guard (referencing it
// links the interposed operator new/delete into this binary).
#include "util/alloc_guard.hpp"

namespace renoc {
namespace {

using bench::time_ms;

struct CodeFixture {
  LdpcCode code;
  LdpcEncoder encoder;
  std::vector<std::int16_t> llrs;  // one quantized noisy block at 2.5 dB

  explicit CodeFixture(int n)
      : code([&] {
          Rng rng(3);
          return LdpcCode::make_regular(n, 3, 6, rng);
        }()),
        encoder(code) {
    Rng rng(5);
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    AwgnChannel channel(2.5, 0.5, rng.split());
    llrs = quantize_llrs(channel.transmit(encoder.encode(data)));
  }
};

bool results_equal(const DecodeResult& a, const DecodeResult& b) {
  return a.hard_bits == b.hard_bits && a.syndrome_ok == b.syndrome_ok &&
         a.iterations_run == b.iterations_run;
}

struct GoldenRow {
  int n = 0;
  double ref_ms = 0.0;
  double flat_ms = 0.0;
  double speedup = 0.0;
  long long steady_allocs = 0;
  bool bit_exact = true;
};

/// Times seed-vs-flat decode and verifies bit-exactness over a batch of
/// noisy blocks (several seeds, early-exit on and off).
GoldenRow run_golden_row(int n, int iterations, double budget_ms) {
  const CodeFixture f(n);
  GoldenRow row;
  row.n = n;

  row.ref_ms = time_ms(budget_ms, [&] {
    (void)reference_minsum_decode(f.code, iterations, false, f.llrs);
  });
  const MinSumDecoder flat(f.code, iterations);
  DecodeResult result;
  row.flat_ms =
      time_ms(budget_ms, [&] { flat.decode_into(f.llrs, result); });
  row.speedup = row.ref_ms / row.flat_ms;

  // Steady-state allocation count of the flat path (after warm-up above).
  const AllocGuard guard;
  for (int i = 0; i < 32; ++i) flat.decode_into(f.llrs, result);
  row.steady_allocs = guard.count();

  // Bit-exactness sweep: fresh noisy blocks, both early-exit modes.
  for (std::uint64_t seed = 11; seed < 16 && row.bit_exact; ++seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> data(static_cast<std::size_t>(f.encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    AwgnChannel channel(2.0, 0.5, rng.split());
    const auto llrs = quantize_llrs(channel.transmit(f.encoder.encode(data)));
    for (bool early_exit : {false, true}) {
      const MinSumDecoder dec(f.code, iterations, early_exit);
      if (!results_equal(
              reference_minsum_decode(f.code, iterations, early_exit, llrs),
              dec.decode(llrs)))
        row.bit_exact = false;
    }
  }
  return row;
}

struct BatchTierRow {
  simd::Tier tier = simd::Tier::kScalar;
  double scalar_ms_per_cw = 0.0;  ///< sequential MinSumDecoder baseline
  double batch_ms_per_cw = 0.0;   ///< batch-of-8 through this tier's table
  double speedup = 0.0;
  long long steady_allocs = 0;
  bool bit_exact = true;
};

/// Times the batched multi-codeword decoder through every compiled SIMD
/// tier against the sequential scalar engine on the same eight blocks, and
/// sweeps batch sizes and early-exit modes demanding every per-lane
/// DecodeResult field match the scalar decode bit for bit.
std::vector<BatchTierRow> run_batch_rows(int n, int iterations,
                                         double budget_ms) {
  const CodeFixture f(n);
  constexpr int kBatch = 8;
  std::vector<std::vector<std::int16_t>> blocks;
  std::vector<const std::int16_t*> ptrs;
  for (int b = 0; b < kBatch; ++b) {
    Rng rng(40 + static_cast<std::uint64_t>(b));
    std::vector<std::uint8_t> data(static_cast<std::size_t>(f.encoder.k()));
    for (auto& bit : data) bit = static_cast<std::uint8_t>(rng.next_below(2));
    AwgnChannel channel(1.5 + 0.25 * b, 0.5, rng.split());
    blocks.push_back(quantize_llrs(channel.transmit(f.encoder.encode(data))));
    ptrs.push_back(blocks.back().data());
  }

  const MinSumDecoder scalar(f.code, iterations, true);
  DecodeResult scalar_result;
  const double scalar_ms = time_ms(budget_ms, [&] {
    for (int b = 0; b < kBatch; ++b)
      scalar.decode_into(blocks[static_cast<std::size_t>(b)], scalar_result);
  });

  std::vector<BatchTierRow> rows;
  for (int t = 0; t < simd::kTierCount; ++t) {
    const simd::KernelTable* table =
        simd::kernel_table(static_cast<simd::Tier>(t));
    if (table == nullptr) continue;
    BatchTierRow row;
    row.tier = table->tier;
    row.scalar_ms_per_cw = scalar_ms / kBatch;

    const MinSumBatchDecoder batched(f.code, iterations, true, kBatch, table);
    std::vector<DecodeResult> results(kBatch);
    row.batch_ms_per_cw =
        time_ms(budget_ms, [&] {
          batched.decode_batch_into(ptrs.data(), kBatch, results.data());
        }) /
        kBatch;
    row.speedup = row.scalar_ms_per_cw / row.batch_ms_per_cw;

    {
      const AllocGuard guard;
      for (int i = 0; i < 32; ++i)
        batched.decode_batch_into(ptrs.data(), kBatch, results.data());
      row.steady_allocs = guard.count();
    }

    for (const bool early : {false, true}) {
      const MinSumDecoder oracle(f.code, iterations, early);
      const MinSumBatchDecoder dec(f.code, iterations, early, kBatch, table);
      for (const int batch : {1, 3, kBatch}) {
        dec.decode_batch_into(ptrs.data(), batch, results.data());
        for (int b = 0; b < batch; ++b)
          if (!results_equal(
                  results[static_cast<std::size_t>(b)],
                  oracle.decode(blocks[static_cast<std::size_t>(b)])))
            row.bit_exact = false;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

struct NocRow {
  int iterations = 0;
  double ms = 0.0;
  bool matches_golden = true;
};

NocRow run_noc_row(int iterations, double budget_ms) {
  CodeFixture f(510);
  NocConfig cfg;
  cfg.dim = GridDim{4, 4};
  Fabric fabric(cfg);
  LdpcNocParams params;
  params.iterations = iterations;
  NocLdpcDecoder decoder(fabric, f.code, make_striped_partition(f.code, 16),
                         identity_permutation(16), params);

  NocRow row;
  row.iterations = iterations;
  row.ms = time_ms(budget_ms, [&] { (void)decoder.decode_block(f.llrs); });
  const MinSumDecoder golden(f.code, iterations);
  row.matches_golden =
      decoder.decode_block(f.llrs).hard_bits == golden.decode(f.llrs).hard_bits;
  return row;
}

struct BerScalingRow {
  int threads = 0;
  double ms = 0.0;
  double speedup = 1.0;  // vs single thread
};

struct BerScaling {
  std::vector<BerScalingRow> rows;
  bool deterministic = true;
  std::int64_t blocks = 0;
  std::int64_t bit_errors = 0;
};

bool points_equal(const std::vector<BerPoint>& a,
                  const std::vector<BerPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].blocks != b[i].blocks || a[i].bits != b[i].bits ||
        a[i].bit_errors != b[i].bit_errors ||
        a[i].block_errors != b[i].block_errors ||
        a[i].iterations_total != b[i].iterations_total)
      return false;
  return true;
}

struct BerBatchRow {
  int batch = 0;
  double ms = 0.0;
};

struct BerBatch {
  std::vector<BerBatchRow> rows;
  bool deterministic = true;  ///< counts identical across batch widths
};

/// Runs the sweep at batch widths 1/4/8 (two threads, so batches race the
/// job cursor) and checks the counts are identical — the batch decoder is
/// a pure throughput knob, never a semantic one.
BerBatch run_ber_batch(const CodeFixture& f, BerConfig cfg,
                       double budget_ms) {
  cfg.threads = 2;
  BerBatch out;
  std::vector<BerPoint> baseline;
  for (const int batch : {1, 4, 8}) {
    cfg.batch_size = batch;
    std::vector<BerPoint> pts;
    BerBatchRow row;
    row.batch = batch;
    row.ms = time_ms(budget_ms,
                     [&] { pts = run_ber_sweep(f.code, f.encoder, cfg); });
    if (batch == 1) {
      baseline = pts;
    } else if (!points_equal(baseline, pts)) {
      out.deterministic = false;
    }
    out.rows.push_back(row);
  }
  return out;
}

BerScaling run_ber_scaling(const CodeFixture& f, BerConfig cfg,
                           double budget_ms) {
  BerScaling scaling;
  std::vector<BerPoint> baseline;
  for (int threads : {1, 2, 4}) {
    cfg.threads = threads;
    std::vector<BerPoint> pts;
    BerScalingRow row;
    row.threads = threads;
    row.ms = time_ms(budget_ms,
                     [&] { pts = run_ber_sweep(f.code, f.encoder, cfg); });
    if (threads == 1) {
      baseline = pts;
      for (const BerPoint& p : pts) {
        scaling.blocks += p.blocks;
        scaling.bit_errors += p.bit_errors;
      }
    } else if (!points_equal(baseline, pts)) {
      scaling.deterministic = false;
    }
    row.speedup = scaling.rows.empty() ? 1.0 : scaling.rows[0].ms / row.ms;
    scaling.rows.push_back(row);
  }
  return scaling;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<GoldenRow>& golden,
                const std::vector<BatchTierRow>& batch, const NocRow& noc,
                const BerScaling& ber, const BerBatch& ber_batch,
                const BerConfig& ber_cfg,
                const bench::ServiceGuardResult& service) {
  AtomicFile out(path);
  JsonWriter json(out.stream());
  json.begin_object();
  json.key("bench").string("micro_ldpc");
  json.key("smoke").boolean(smoke);
  json.key("golden_decode").begin_array();
  for (const GoldenRow& r : golden) {
    json.begin_object();
    json.key("n").integer(r.n);
    json.key("iterations").integer(10);
    json.key("ref_ms").real(r.ref_ms);
    json.key("flat_ms").real(r.flat_ms);
    json.key("speedup").real(r.speedup, 3);
    json.key("steady_state_allocs").integer(r.steady_allocs);
    json.key("bit_exact").boolean(r.bit_exact);
    json.end_object();
  }
  json.end_array();
  json.key("batch_decode").begin_object();
  json.key("active_tier").string(simd::active_tier_name());
  json.key("tiers").begin_array();
  for (const BatchTierRow& r : batch) {
    json.begin_object();
    json.key("tier").string(simd::tier_name(r.tier));
    json.key("scalar_ms_per_cw").real(r.scalar_ms_per_cw);
    json.key("batch_ms_per_cw").real(r.batch_ms_per_cw);
    json.key("speedup").real(r.speedup, 3);
    json.key("steady_state_allocs").integer(r.steady_allocs);
    json.key("bit_exact").boolean(r.bit_exact);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("ber_batch_widths").begin_object();
  json.key("deterministic").boolean(ber_batch.deterministic);
  json.key("widths").begin_array();
  for (const BerBatchRow& r : ber_batch.rows) {
    json.begin_object();
    json.key("batch_size").integer(r.batch);
    json.key("ms").real(r.ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("noc_block_decode").begin_object();
  json.key("n").integer(510);
  json.key("clusters").integer(16);
  json.key("iterations").integer(noc.iterations);
  json.key("ms").real(noc.ms);
  json.key("matches_golden").boolean(noc.matches_golden);
  json.end_object();
  json.key("ber_sweep").begin_object();
  json.key("points").integer(static_cast<int>(ber_cfg.ebn0_db.size()));
  json.key("blocks_per_point").integer(ber_cfg.blocks_per_point);
  json.key("iterations").integer(ber_cfg.iterations);
  json.key("blocks").integer(static_cast<long long>(ber.blocks));
  json.key("bit_errors").integer(static_cast<long long>(ber.bit_errors));
  json.key("deterministic").boolean(ber.deterministic);
  json.key("threads").begin_array();
  for (const BerScalingRow& r : ber.rows) {
    json.begin_object();
    json.key("threads").integer(r.threads);
    json.key("ms").real(r.ms);
    json.key("speedup").real(r.speedup, 3);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  bench::write_service_guard_json(json, service);
  json.end_object();
  out.commit();
  std::printf("\nwrote %s\n", path.c_str());
}

int run(bool smoke, const std::string& json_path) {
  const std::vector<int> sizes =
      smoke ? std::vector<int>{510} : std::vector<int>{510, 2046};
  const double budget_ms = smoke ? 10.0 : 300.0;

  // --- Golden decode: seed loop vs flat engine -------------------------
  Table golden_table({"n", "edges", "seed ms", "flat ms", "speedup",
                      "steady allocs", "bit-exact"});
  golden_table.set_title(
      std::string("Golden min-sum decode, 10 iterations: seed "
                  "(copy-in/copy-out) vs flat CSR engine, best-of-N") +
      (smoke ? " [smoke]" : ""));
  std::vector<GoldenRow> golden_rows;
  bool ok = true;
  for (int n : sizes) {
    const GoldenRow r = run_golden_row(n, 10, budget_ms);
    golden_rows.push_back(r);
    golden_table.add_row({std::to_string(r.n), std::to_string(n * 3),
                          Table::num(r.ref_ms, 4), Table::num(r.flat_ms, 4),
                          Table::num(r.speedup, 2),
                          std::to_string(r.steady_allocs),
                          r.bit_exact ? "yes" : "NO"});
    ok = ok && r.bit_exact &&
         (r.steady_allocs == 0 || !alloc_guard::instrumented());
  }
  golden_table.print(std::cout);

  // --- Batched multi-codeword decode, per SIMD tier --------------------
  const std::vector<BatchTierRow> batch_rows =
      run_batch_rows(sizes.front(), 10, budget_ms);
  Table batch_table({"tier", "scalar ms/cw", "batch ms/cw", "speedup",
                     "steady allocs", "bit-exact"});
  batch_table.set_title(
      std::string("Batched decode (8 codewords/pass) vs sequential scalar, "
                  "every compiled SIMD tier; active tier: ") +
      simd::active_tier_name() + (smoke ? " [smoke]" : ""));
  for (const BatchTierRow& r : batch_rows) {
    batch_table.add_row({simd::tier_name(r.tier),
                         Table::num(r.scalar_ms_per_cw, 4),
                         Table::num(r.batch_ms_per_cw, 4),
                         Table::num(r.speedup, 2),
                         std::to_string(r.steady_allocs),
                         r.bit_exact ? "yes" : "NO"});
    ok = ok && r.bit_exact &&
         (r.steady_allocs == 0 || !alloc_guard::instrumented());
  }
  batch_table.print(std::cout);

  // --- NoC block decode -------------------------------------------------
  const NocRow noc = run_noc_row(smoke ? 2 : 8, budget_ms);
  Table noc_table({"n", "clusters", "iterations", "block ms", "== golden"});
  noc_table.set_title("Cycle-accurate NoC block decode (4x4 mesh)");
  noc_table.add_row({"510", "16", std::to_string(noc.iterations),
                     Table::num(noc.ms, 3),
                     noc.matches_golden ? "yes" : "NO"});
  noc_table.print(std::cout);
  ok = ok && noc.matches_golden;

  // --- BER harness thread scaling --------------------------------------
  const CodeFixture f(510);
  BerConfig cfg;
  cfg.ebn0_db = smoke ? std::vector<double>{2.0}
                      : std::vector<double>{1.0, 2.0};
  cfg.blocks_per_point = smoke ? 16 : 128;
  cfg.iterations = smoke ? 4 : 10;
  cfg.early_exit = true;
  cfg.seed = 99;
  const BerScaling ber = run_ber_scaling(f, cfg, smoke ? 1.0 : 50.0);
  Table ber_table({"threads", "sweep ms", "speedup", "deterministic"});
  ber_table.set_title(
      "Monte-Carlo BER sweep (n=510, " +
      std::to_string(cfg.ebn0_db.size()) + " points x " +
      std::to_string(cfg.blocks_per_point) +
      " blocks): thread scaling; counts must not depend on thread count");
  for (const BerScalingRow& r : ber.rows)
    ber_table.add_row({std::to_string(r.threads), Table::num(r.ms, 2),
                       Table::num(r.speedup, 2),
                       ber.deterministic ? "yes" : "NO"});
  ber_table.print(std::cout);
  ok = ok && ber.deterministic;

  // --- BER batch-width indifference ------------------------------------
  const BerBatch ber_batch = run_ber_batch(f, cfg, smoke ? 1.0 : 50.0);
  Table batch_width_table({"batch", "sweep ms", "deterministic"});
  batch_width_table.set_title(
      "Monte-Carlo BER sweep, 2 threads: batch-width scaling; counts must "
      "not depend on batch size");
  for (const BerBatchRow& r : ber_batch.rows)
    batch_width_table.add_row({std::to_string(r.batch), Table::num(r.ms, 2),
                               ber_batch.deterministic ? "yes" : "NO"});
  batch_width_table.print(std::cout);
  ok = ok && ber_batch.deterministic;

  // --- Sweep service guards ---------------------------------------------
  // The BER sweep through util/sweep: shard splits and a kill/resume cycle
  // must merge to the exact counts the direct sweep produced.
  BerConfig svc_cfg = cfg;
  svc_cfg.blocks_per_point = smoke ? 8 : 24;
  const sweep::SweepSpec svc_spec =
      make_ber_sweep_spec(f.code, f.encoder, svc_cfg);
  const bench::ServiceGuardResult service =
      bench::run_service_guard(svc_spec, "bench_ldpc_sweep_ckpt");
  Table service_table(
      {"scenarios", "resumed", "shard identity", "resume identity",
       "conserved"});
  service_table.set_title(
      "Sweep service (BER spec): shard merges and checkpoint resume must "
      "be bit-identical to the direct run");
  service_table.add_row({std::to_string(service.scenarios),
                         std::to_string(service.resumed),
                         service.shard_identity ? "yes" : "NO",
                         service.resume_identity ? "yes" : "NO",
                         service.conserved ? "yes" : "NO"});
  service_table.print(std::cout);
  ok = ok && service.ok();

  write_json(json_path, smoke, golden_rows, batch_rows, noc, ber, ber_batch,
             cfg, service);

  if (!ok) {
    std::cerr << "FAIL: flat or batched decode diverged from the golden "
                 "semantics, allocated in steady state, the BER sweep "
                 "depended on thread count or batch width, or the sweep "
                 "service broke shard/resume identity\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_ldpc.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  return renoc::run(smoke, json_path);
}
