// Ablation: congestion-free phased migration vs naive all-at-once.
//
// Section 2.2 claims phased, link-disjoint state movement gives
// deterministic (real-time-friendly) migration latency. This bench
// executes both strategies on live fabrics for every scheme and mesh:
//   * phased     — the MigrationController (link-disjoint phases with
//                  barriers between phases)
//   * all-at-once — inject every state packet simultaneously and let the
//                  routers fight it out
// and reports transfer cycles, the analytic per-phase bound, and whether
// each strategy's latency is run-to-run deterministic. All-at-once can be
// faster on light meshes (no barriers) but its latency depends on
// arbitration interleavings across the whole transfer, which is exactly
// what the paper's real-time argument rules out; phased latency must also
// stay within the analytic bound.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_phases.json.
// Every cycle/flit count here is deterministic, so the golden pins them
// exactly.
#include <iostream>

#include "core/migration_controller.hpp"
#include "core/phase_scheduler.hpp"
#include "core/transform.hpp"
#include "noc/fabric.hpp"
#include "paper_bench.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

struct NaiveResult {
  Cycle cycles = 0;
};

NaiveResult naive_migration(const GridDim& dim, const Transform& t,
                            int state_words) {
  NocConfig cfg;
  cfg.dim = dim;
  Fabric fabric(cfg);
  const std::vector<int> perm = t.permutation(dim);
  const Cycle start = fabric.now();
  for (int i = 0; i < dim.node_count(); ++i) {
    if (perm[static_cast<std::size_t>(i)] == i) continue;
    Message msg;
    msg.src = i;
    msg.dst = perm[static_cast<std::size_t>(i)];
    msg.tag = 0x8000000000000000ULL;
    msg.payload.assign(static_cast<std::size_t>(state_words), 0xabcdULL);
    fabric.send(msg);
  }
  fabric.drain();
  NaiveResult r;
  r.cycles = fabric.now() - start;
  return r;
}

int run(const bench::PaperArgs& args) {
  Table t({"Mesh", "Scheme", "State flits", "Phases", "Phased (cyc)",
           "Analytic bound", "Naive (cyc)", "Phased det.", "Naive det."});
  t.set_title("Congestion-free phased migration vs naive all-at-once");

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("migration_phases");
  json.key("smoke").boolean(args.smoke);
  json.key("rows").begin_array();

  const int state_words = 128;
  const std::vector<int> sides =
      args.smoke ? std::vector<int>{4, 5} : std::vector<int>{4, 5, 8};
  for (int side : sides) {
    const GridDim dim{side, side};
    for (MigrationScheme scheme : figure1_schemes()) {
      const Transform transform = transform_of(scheme);

      auto phased_once = [&] {
        NocConfig cfg;
        cfg.dim = dim;
        Fabric fabric(cfg);
        MigrationController controller(fabric, transform);
        std::vector<int> placement =
            identity_permutation(dim.node_count());
        const std::vector<int> words(
            static_cast<std::size_t>(dim.node_count()), state_words);
        return controller.migrate(placement, words);
      };
      const MigrationReport rep1 = phased_once();
      const MigrationReport rep2 = phased_once();
      const bool phased_deterministic =
          rep1.transfer_cycles == rep2.transfer_cycles;

      const NaiveResult naive1 = naive_migration(dim, transform, state_words);
      const NaiveResult naive2 = naive_migration(dim, transform, state_words);
      const bool naive_deterministic = naive1.cycles == naive2.cycles;

      // Analytic bound: sum of per-phase bounds.
      std::vector<MigrationMove> moves;
      const auto perm = transform.permutation(dim);
      for (int i = 0; i < dim.node_count(); ++i)
        moves.push_back({i, perm[static_cast<std::size_t>(i)], state_words});
      int bound = 0;
      for (const MigrationPhase& phase : schedule_phases(moves, dim))
        bound += phase_duration_cycles(phase, dim);

      t.add_row({std::to_string(side) + "x" + std::to_string(side),
                 to_string(scheme), std::to_string(rep1.state_flits),
                 std::to_string(rep1.phases),
                 std::to_string(rep1.transfer_cycles),
                 std::to_string(bound), std::to_string(naive1.cycles),
                 phased_deterministic ? "yes" : "NO",
                 naive_deterministic ? "yes" : "NO"});

      json.begin_object();
      json.key("mesh").integer(side);
      json.key("scheme").string(to_string(scheme));
      json.key("state_flits").uinteger(rep1.state_flits);
      json.key("phases").integer(rep1.phases);
      json.key("phased_cycles").uinteger(rep1.transfer_cycles);
      json.key("analytic_bound_cycles").integer(bound);
      json.key("naive_cycles").uinteger(naive1.cycles);
      json.key("phased_deterministic").boolean(phased_deterministic);
      json.key("naive_deterministic").boolean(naive_deterministic);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  t.print(std::cout);
  std::cout << "\nPhased latency must never exceed the analytic bound — "
               "that is the deterministic-migration-time property the "
               "paper needs for real-time systems.\nwrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc = renoc::bench::parse_paper_args(argc, argv,
                                                    "PAPER_phases.json", args))
    return rc;
  return renoc::run(args);
}
