// Dense-vs-sparse microbenchmark for the thermal solver.
//
// Sweeps the refinement factor of a 4x4-tile die (node count = 48 *
// refine^2 + 10) and times, for the same RC network, the dense LU path
// against the sparse LDL^T path:
// factorization of G, steady solves, and backward-Euler transient steps —
// the inner loops of the periodic co-simulation and the grid-resolution
// ablation. Every row also cross-checks that the two backends agree to
// 1e-8 on a steady solve, so a broken sparse path fails the binary instead
// of printing fast nonsense.
//
// Usage: bench_micro_thermal [--smoke]
//   --smoke   tiny sizes and budgets; used by CI and scripts/check.sh so
//             this target can never silently rot.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/sparse.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

/// Network of a 4x4-tile die subdivided refine x refine per tile (the same
/// construction as RefinedThermalModel): node count grows as 48 * refine^2
/// + 10 while the die keeps fitting the package.
RcNetwork net_for(int refine) {
  const int side = 4 * refine;
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side},
                          date05_tile_area() /
                              (static_cast<double>(refine) * refine)),
      date05_hotspot_params());
}

using bench::time_ms;

struct RowResult {
  bool agree = true;
  double speedup = 0.0;  // dense / sparse, factor + solve
};

RowResult run_row(Table& table, int refine, double budget_ms) {
  const RcNetwork net = net_for(refine);
  const int n = net.node_count();
  std::vector<double> power(static_cast<std::size_t>(net.die_count()), 2.0);
  power[0] = 9.0;

  const double dense_factor = time_ms(budget_ms, [&] {
    SteadyStateSolver s(net, SolverBackend::kDense);
    (void)s;
  });
  const double sparse_factor = time_ms(budget_ms, [&] {
    SteadyStateSolver s(net, SolverBackend::kSparse);
    (void)s;
  });

  const SteadyStateSolver dense(net, SolverBackend::kDense);
  const SteadyStateSolver sparse(net, SolverBackend::kSparse);
  const double dense_solve =
      time_ms(budget_ms, [&] { dense.solve_die_power(power); });
  const double sparse_solve =
      time_ms(budget_ms, [&] { sparse.solve_die_power(power); });

  TransientSolver dense_tr(net, 2e-6, SolverBackend::kDense);
  TransientSolver sparse_tr(net, 2e-6, SolverBackend::kSparse);
  const std::vector<double> full = net.expand_die_power(power);
  const double dense_step = time_ms(budget_ms, [&] { dense_tr.step(full); });
  const double sparse_step =
      time_ms(budget_ms, [&] { sparse_tr.step(full); });

  RowResult r;
  const std::vector<double> rise_d = dense.solve_die_power(power);
  const std::vector<double> rise_s = sparse.solve_die_power(power);
  for (std::size_t i = 0; i < rise_d.size(); ++i)
    if (std::fabs(rise_d[i] - rise_s[i]) > 1e-8) r.agree = false;
  r.speedup = (dense_factor + dense_solve) / (sparse_factor + sparse_solve);

  const SparseLdlt ldlt(net.conductance_sparse());
  table.add_row({std::to_string(refine), std::to_string(4 * refine),
                 std::to_string(n),
                 std::to_string(net.conductance_sparse().nnz()),
                 std::to_string(ldlt.factor_nnz()),
                 Table::num(dense_factor, 3), Table::num(sparse_factor, 3),
                 Table::num(dense_solve, 4), Table::num(sparse_solve, 4),
                 Table::num(dense_step, 4), Table::num(sparse_step, 4),
                 Table::num(r.speedup, 1), r.agree ? "yes" : "NO"});
  return r;
}

int run(bool smoke) {
  const std::vector<int> refines =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3, 4, 6, 8};
  const double budget_ms = smoke ? 5.0 : 200.0;

  Table table({"refine", "side", "nodes", "nnz(G)", "nnz(L)", "LU fact ms",
               "LDLt fact ms", "LU solve ms", "LDLt solve ms", "LU step ms",
               "LDLt step ms", "speedup", "agree<=1e-8"});
  table.set_title(
      std::string("Thermal solve: dense LU vs sparse LDLt (4x4 tiles "
                  "subdivided refine x refine; speedup = dense factor+solve "
                  "over sparse)") +
      (smoke ? " [smoke]" : ""));

  bool all_agree = true;
  for (int refine : refines) {
    const RowResult r = run_row(table, refine, budget_ms);
    all_agree = all_agree && r.agree;
  }
  table.print(std::cout);

  if (!all_agree) {
    std::cerr << "FAIL: dense and sparse solvers disagree beyond 1e-8\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return renoc::run(smoke);
}
