// Dense-vs-sparse microbenchmark for the thermal solver.
//
// Sweeps the refinement factor of a 4x4-tile die (node count = 48 *
// refine^2 + 10) and times, for the same RC network, the dense LU path
// against the sparse LDL^T path:
// factorization of G, steady solves, and backward-Euler transient steps —
// the inner loops of the periodic co-simulation and the grid-resolution
// ablation. Every row also cross-checks that the two backends agree to
// 1e-8 on a steady solve, so a broken sparse path fails the binary instead
// of printing fast nonsense.
//
// Results are also written as machine-readable JSON (BENCH_thermal.json
// by default, shared util/json emitter) so CI can archive them per commit
// alongside the other BENCH_*.json records.
//
// Usage: bench_micro_thermal [--smoke] [--json <path>]
//   --smoke   tiny sizes and budgets; used by CI and scripts/check.sh so
//             this target can never silently rot.
//   --json    output path for the JSON record (default BENCH_thermal.json).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/alloc_guard.hpp"
#include "util/json.hpp"
#include "util/sparse.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

/// Network of a 4x4-tile die subdivided refine x refine per tile (the same
/// construction as RefinedThermalModel): node count grows as 48 * refine^2
/// + 10 while the die keeps fitting the package.
RcNetwork net_for(int refine) {
  const int side = 4 * refine;
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side},
                          date05_tile_area() /
                              (static_cast<double>(refine) * refine)),
      date05_hotspot_params());
}

using bench::time_ms;

struct RowResult {
  int refine = 0;
  int nodes = 0;
  int nnz_g = 0;
  int nnz_l = 0;
  double dense_factor_ms = 0.0;
  double sparse_factor_ms = 0.0;
  double dense_solve_ms = 0.0;
  double sparse_solve_ms = 0.0;
  double dense_step_ms = 0.0;
  double sparse_step_ms = 0.0;
  bool agree = true;
  double speedup = 0.0;  // dense / sparse, factor + solve
  long long steady_allocs = 0;  // warmed solve_die_power_into + step
};

RowResult run_row(Table& table, int refine, double budget_ms) {
  const RcNetwork net = net_for(refine);
  RowResult r;
  r.refine = refine;
  r.nodes = net.node_count();
  std::vector<double> power(static_cast<std::size_t>(net.die_count()), 2.0);
  power[0] = 9.0;

  r.dense_factor_ms = time_ms(budget_ms, [&] {
    SteadyStateSolver s(net, SolverBackend::kDense);
    (void)s;
  });
  r.sparse_factor_ms = time_ms(budget_ms, [&] {
    SteadyStateSolver s(net, SolverBackend::kSparse);
    (void)s;
  });

  const SteadyStateSolver dense(net, SolverBackend::kDense);
  const SteadyStateSolver sparse(net, SolverBackend::kSparse);
  r.dense_solve_ms =
      time_ms(budget_ms, [&] { dense.solve_die_power(power); });
  r.sparse_solve_ms =
      time_ms(budget_ms, [&] { sparse.solve_die_power(power); });

  TransientSolver dense_tr(net, 2e-6, SolverBackend::kDense);
  TransientSolver sparse_tr(net, 2e-6, SolverBackend::kSparse);
  const std::vector<double> full = net.expand_die_power(power);
  r.dense_step_ms = time_ms(budget_ms, [&] { dense_tr.step(full); });
  r.sparse_step_ms = time_ms(budget_ms, [&] { sparse_tr.step(full); });

  const std::vector<double> rise_d = dense.solve_die_power(power);
  const std::vector<double> rise_s = sparse.solve_die_power(power);
  for (std::size_t i = 0; i < rise_d.size(); ++i)
    if (std::fabs(rise_d[i] - rise_s[i]) > 1e-8) r.agree = false;
  r.speedup = (r.dense_factor_ms + r.dense_solve_ms) /
              (r.sparse_factor_ms + r.sparse_solve_ms);

  // Steady-state allocation guard over the warmed allocation-free solve
  // paths (the value-returning solve_die_power above legitimately
  // allocates its result vector; the engines run on the _into/step forms).
  {
    std::vector<double> rise;
    sparse.solve_die_power_into(power, rise);  // warm-up sizes the buffer
    const AllocGuard guard;
    for (int i = 0; i < 8; ++i) {
      sparse.solve_die_power_into(power, rise);
      sparse_tr.step(full);
    }
    r.steady_allocs = guard.count();
  }

  const SparseLdlt ldlt(net.conductance_sparse());
  r.nnz_g = net.conductance_sparse().nnz();
  r.nnz_l = ldlt.factor_nnz();
  table.add_row({std::to_string(refine), std::to_string(4 * refine),
                 std::to_string(r.nodes), std::to_string(r.nnz_g),
                 std::to_string(r.nnz_l),
                 Table::num(r.dense_factor_ms, 3),
                 Table::num(r.sparse_factor_ms, 3),
                 Table::num(r.dense_solve_ms, 4),
                 Table::num(r.sparse_solve_ms, 4),
                 Table::num(r.dense_step_ms, 4),
                 Table::num(r.sparse_step_ms, 4),
                 Table::num(r.speedup, 1), r.agree ? "yes" : "NO"});
  return r;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<RowResult>& rows) {
  AtomicFile out(path);
  JsonWriter json(out.stream());
  json.begin_object();
  json.key("bench").string("micro_thermal");
  json.key("smoke").boolean(smoke);
  json.key("rows").begin_array();
  for (const RowResult& r : rows) {
    json.begin_object();
    json.key("refine").integer(r.refine);
    json.key("nodes").integer(r.nodes);
    json.key("nnz_g").integer(r.nnz_g);
    json.key("nnz_l").integer(r.nnz_l);
    json.key("dense_factor_ms").real(r.dense_factor_ms);
    json.key("sparse_factor_ms").real(r.sparse_factor_ms);
    json.key("dense_solve_ms").real(r.dense_solve_ms);
    json.key("sparse_solve_ms").real(r.sparse_solve_ms);
    json.key("dense_step_ms").real(r.dense_step_ms);
    json.key("sparse_step_ms").real(r.sparse_step_ms);
    json.key("speedup").real(r.speedup, 3);
    json.key("steady_state_allocs").integer(r.steady_allocs);
    json.key("agree_1e8").boolean(r.agree);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out.commit();
  std::printf("\nwrote %s\n", path.c_str());
}

int run(bool smoke, const std::string& json_path) {
  const std::vector<int> refines =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3, 4, 6, 8};
  const double budget_ms = smoke ? 5.0 : 200.0;

  Table table({"refine", "side", "nodes", "nnz(G)", "nnz(L)", "LU fact ms",
               "LDLt fact ms", "LU solve ms", "LDLt solve ms", "LU step ms",
               "LDLt step ms", "speedup", "agree<=1e-8"});
  table.set_title(
      std::string("Thermal solve: dense LU vs sparse LDLt (4x4 tiles "
                  "subdivided refine x refine; speedup = dense factor+solve "
                  "over sparse)") +
      (smoke ? " [smoke]" : ""));

  std::vector<RowResult> rows;
  bool all_agree = true;
  bool alloc_free = true;
  for (int refine : refines) {
    rows.push_back(run_row(table, refine, budget_ms));
    all_agree = all_agree && rows.back().agree;
    alloc_free = alloc_free && (rows.back().steady_allocs == 0 ||
                                !alloc_guard::instrumented());
  }
  table.print(std::cout);
  write_json(json_path, smoke, rows);

  if (!all_agree) {
    std::cerr << "FAIL: dense and sparse solvers disagree beyond 1e-8\n";
    return 1;
  }
  if (!alloc_free) {
    std::cerr << "FAIL: warmed sparse solve_die_power_into/step allocated "
                 "in steady state\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_thermal.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  return renoc::run(smoke, json_path);
}
