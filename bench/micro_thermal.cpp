// Microbenchmarks for the thermal solver: network assembly, LU
// factorization, steady solve, and backward-Euler stepping — the inner
// loops of the periodic co-simulation (a Figure-1 cell integrates a few
// thousand transient steps).
#include <benchmark/benchmark.h>

#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {
namespace {

RcNetwork net_for(int side) {
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side}, date05_tile_area()),
      date05_hotspot_params());
}

void BM_BuildNetwork(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const Floorplan fp =
      make_grid_floorplan(GridDim{side, side}, date05_tile_area());
  const HotSpotParams params = date05_hotspot_params();
  for (auto _ : state) benchmark::DoNotOptimize(build_rc_network(fp, params));
}

void BM_SteadySolverSetup(benchmark::State& state) {
  const RcNetwork net = net_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SteadyStateSolver solver(net);
    benchmark::DoNotOptimize(&solver);
  }
}

void BM_SteadySolve(benchmark::State& state) {
  const RcNetwork net = net_for(static_cast<int>(state.range(0)));
  SteadyStateSolver solver(net);
  std::vector<double> power(static_cast<std::size_t>(net.die_count()), 2.0);
  power[0] = 9.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(solver.solve_die_power(power));
}

void BM_TransientStep(benchmark::State& state) {
  const RcNetwork net = net_for(static_cast<int>(state.range(0)));
  TransientSolver transient(net, 2e-6);
  std::vector<double> power(static_cast<std::size_t>(net.die_count()), 2.0);
  const std::vector<double> full = net.expand_die_power(power);
  for (auto _ : state) transient.step(full);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_BuildNetwork)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_SteadySolverSetup)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_SteadySolve)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_TransientStep)->Arg(4)->Arg(5)->Arg(8);

}  // namespace
}  // namespace renoc

BENCHMARK_MAIN();
