// Table 1 of the paper: the transformation functions
//
//                  New X Coordinate   New Y Coordinate
//   Rotation       N-1-Y              X
//   X Mirroring    N-1-X              Y
//   X Translation  X + Offset         Y
//
// Prints the table, verifies the implementation against the closed-form
// row formulas exhaustively for N in {4, 5, 8}, and then microbenchmarks
// the migration unit the paper argues is "small, fast, and low power":
// per-address transformation cost, accumulated-map composition, and the
// I/O ingress/egress rewrites.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "core/migration_unit.hpp"
#include "core/transform.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

void print_and_verify_table1() {
  Table t({"Function", "New X Coordinate", "New Y Coordinate"});
  t.set_title("Table 1 — Transformation Functions");
  t.add_row({"Rotation", "N-1-Y", "X"});
  t.add_row({"X Mirroring", "N-1-X", "Y"});
  t.add_row({"X Translation", "X + Offset", "Y"});
  t.print(std::cout);

  // Exhaustive check of the implementation against the closed forms.
  int checked = 0;
  for (int n : {4, 5, 8}) {
    const GridDim dim{n, n};
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        const GridCoord c{x, y};
        const GridCoord rot =
            Transform{TransformKind::kRotation, 0}.apply(c, dim);
        RENOC_CHECK(rot.x == n - 1 - y && rot.y == x);
        const GridCoord mir =
            Transform{TransformKind::kMirrorX, 0}.apply(c, dim);
        RENOC_CHECK(mir.x == n - 1 - x && mir.y == y);
        for (int offset : {1, 2, 3}) {
          const GridCoord sh =
              Transform{TransformKind::kShiftX, offset}.apply(c, dim);
          RENOC_CHECK(sh.x == (x + offset) % n && sh.y == y);
          ++checked;
        }
        checked += 2;
      }
    }
  }
  std::printf("\nverified Table 1 formulas on %d coordinate cases "
              "(N in {4,5,8})\n\n",
              checked);
}

// "only 3-bit operands are required to address up to 64 PEs, resulting in
// fast operation" — the software equivalent is a handful of adds.
void BM_TransformApply(benchmark::State& state) {
  const GridDim dim{8, 8};
  const Transform t{static_cast<TransformKind>(state.range(0)), 1};
  int i = 0;
  for (auto _ : state) {
    const GridCoord c{i & 7, (i >> 3) & 7};
    benchmark::DoNotOptimize(t.apply(c, dim));
    ++i;
  }
}

void BM_PermutationBuild(benchmark::State& state) {
  const GridDim dim{static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0))};
  const Transform t{TransformKind::kRotation, 0};
  for (auto _ : state) benchmark::DoNotOptimize(t.permutation(dim));
}

void BM_TranslatorCompose(benchmark::State& state) {
  const GridDim dim{8, 8};
  AddressTranslator tr(dim);
  const Transform t{TransformKind::kRotation, 0};
  for (auto _ : state) {
    tr.apply(t);
    benchmark::DoNotOptimize(tr.map().data());
  }
}

void BM_IngressRewrite(benchmark::State& state) {
  const GridDim dim{8, 8};
  AddressTranslator tr(dim);
  tr.apply(Transform{TransformKind::kShiftXY, 1});
  Message msg;
  int i = 0;
  for (auto _ : state) {
    msg.dst = i++ & 63;
    tr.rewrite_ingress(msg);
    benchmark::DoNotOptimize(msg.dst);
  }
}

BENCHMARK(BM_TransformApply)
    ->Arg(static_cast<int>(TransformKind::kRotation))
    ->Arg(static_cast<int>(TransformKind::kMirrorX))
    ->Arg(static_cast<int>(TransformKind::kShiftX));
BENCHMARK(BM_PermutationBuild)->Arg(4)->Arg(5)->Arg(8);
BENCHMARK(BM_TranslatorCompose);
BENCHMARK(BM_IngressRewrite);

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::print_and_verify_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
