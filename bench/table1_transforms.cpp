// Table 1 of the paper: the transformation functions
//
//                  New X Coordinate   New Y Coordinate
//   Rotation       N-1-Y              X
//   X Mirroring    N-1-X              Y
//   X Translation  X + Offset         Y
//
// Prints the table, verifies the implementation against the closed-form
// row formulas exhaustively for N in {4, 5, 8}, and then microbenchmarks
// the migration unit the paper argues is "small, fast, and low power":
// per-address transformation cost, accumulated-map composition, and the
// I/O ingress/egress rewrites. Self-timing via bench_timing.hpp (the same
// methodology as the micro benches) — no external benchmark framework.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_table1.json.
// Timing fields carry the _ms suffix, so the golden diff checks only the
// formula-verification counts and the table text.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "core/migration_unit.hpp"
#include "core/transform.hpp"
#include "paper_bench.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

// Keeps the measured loops from being optimized away.
volatile long long g_sink = 0;

int print_and_verify_table1() {
  Table t({"Function", "New X Coordinate", "New Y Coordinate"});
  t.set_title("Table 1 — Transformation Functions");
  t.add_row({"Rotation", "N-1-Y", "X"});
  t.add_row({"X Mirroring", "N-1-X", "Y"});
  t.add_row({"X Translation", "X + Offset", "Y"});
  t.print(std::cout);

  // Exhaustive check of the implementation against the closed forms.
  int checked = 0;
  for (int n : {4, 5, 8}) {
    const GridDim dim{n, n};
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        const GridCoord c{x, y};
        const GridCoord rot =
            Transform{TransformKind::kRotation, 0}.apply(c, dim);
        RENOC_CHECK(rot.x == n - 1 - y && rot.y == x);
        const GridCoord mir =
            Transform{TransformKind::kMirrorX, 0}.apply(c, dim);
        RENOC_CHECK(mir.x == n - 1 - x && mir.y == y);
        for (int offset : {1, 2, 3}) {
          const GridCoord sh =
              Transform{TransformKind::kShiftX, offset}.apply(c, dim);
          RENOC_CHECK(sh.x == (x + offset) % n && sh.y == y);
          ++checked;
        }
        checked += 2;
      }
    }
  }
  std::printf("\nverified Table 1 formulas on %d coordinate cases "
              "(N in {4,5,8})\n\n",
              checked);
  return checked;
}

struct MicroRow {
  std::string name;
  long long ops = 0;
  double batch_ms = 0.0;
};

// "only 3-bit operands are required to address up to 64 PEs, resulting in
// fast operation" — the software equivalent is a handful of adds.
MicroRow time_transform_apply(TransformKind kind, double budget_ms) {
  const GridDim dim{8, 8};
  const Transform t{kind, 1};
  constexpr long long kOps = 1 << 16;
  MicroRow row{std::string("apply/") + to_string(kind), kOps, 0.0};
  row.batch_ms = bench::time_ms(budget_ms, [&] {
    long long acc = 0;
    for (long long i = 0; i < kOps; ++i) {
      const GridCoord c{static_cast<int>(i) & 7,
                        (static_cast<int>(i) >> 3) & 7};
      const GridCoord out = t.apply(c, dim);
      acc += out.x + out.y;
    }
    g_sink = acc;
  });
  return row;
}

MicroRow time_permutation_build(int n, double budget_ms) {
  const GridDim dim{n, n};
  const Transform t{TransformKind::kRotation, 0};
  constexpr long long kOps = 1 << 10;
  MicroRow row{"permutation/N=" + std::to_string(n), kOps, 0.0};
  row.batch_ms = bench::time_ms(budget_ms, [&] {
    long long acc = 0;
    for (long long i = 0; i < kOps; ++i) acc += t.permutation(dim).back();
    g_sink = acc;
  });
  return row;
}

MicroRow time_translator_compose(double budget_ms) {
  const GridDim dim{8, 8};
  AddressTranslator tr(dim);
  const Transform t{TransformKind::kRotation, 0};
  constexpr long long kOps = 1 << 12;
  MicroRow row{"translator-compose", kOps, 0.0};
  row.batch_ms = bench::time_ms(budget_ms, [&] {
    long long acc = 0;
    for (long long i = 0; i < kOps; ++i) {
      tr.apply(t);
      acc += tr.map().back();
    }
    g_sink = acc;
  });
  return row;
}

MicroRow time_ingress_rewrite(double budget_ms) {
  const GridDim dim{8, 8};
  AddressTranslator tr(dim);
  tr.apply(Transform{TransformKind::kShiftXY, 1});
  constexpr long long kOps = 1 << 16;
  MicroRow row{"ingress-rewrite", kOps, 0.0};
  row.batch_ms = bench::time_ms(budget_ms, [&] {
    Message msg;
    long long acc = 0;
    for (long long i = 0; i < kOps; ++i) {
      msg.dst = static_cast<int>(i) & 63;
      tr.rewrite_ingress(msg);
      acc += msg.dst;
    }
    g_sink = acc;
  });
  return row;
}

int run(const bench::PaperArgs& args) {
  const int checked = print_and_verify_table1();

  const double budget_ms = args.smoke ? 20.0 : 200.0;
  std::vector<MicroRow> rows;
  for (TransformKind kind : {TransformKind::kRotation, TransformKind::kMirrorX,
                             TransformKind::kShiftX})
    rows.push_back(time_transform_apply(kind, budget_ms));
  for (int n : {4, 5, 8}) rows.push_back(time_permutation_build(n, budget_ms));
  rows.push_back(time_translator_compose(budget_ms));
  rows.push_back(time_ingress_rewrite(budget_ms));

  Table micro({"Operation", "Ops/batch", "Batch (ms)", "ns/op"});
  micro.set_title("Migration-unit microbenchmarks (best-of-N batches)");
  for (const MicroRow& r : rows)
    micro.add_row({r.name, std::to_string(r.ops), Table::num(r.batch_ms, 3),
                   Table::num(r.batch_ms * 1e6 / static_cast<double>(r.ops),
                              2)});
  micro.print(std::cout);

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("table1_transforms");
  json.key("smoke").boolean(args.smoke);
  json.key("verified_cases").integer(checked);
  json.key("rows").begin_array();
  for (const char* name : {"Rotation", "X Mirroring", "X Translation"})
    json.string(name);
  json.end_array();
  json.key("micro").begin_array();
  for (const MicroRow& r : rows) {
    json.begin_object();
    json.key("name").string(r.name);
    json.key("ops").integer(r.ops);
    json.key("batch_ms").real(r.batch_ms);
    json.key("per_op_ms").real(r.batch_ms / static_cast<double>(r.ops));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();
  std::cout << "\nwrote " << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc = renoc::bench::parse_paper_args(argc, argv,
                                                    "PAPER_table1.json", args))
    return rc;
  return renoc::run(args);
}
