// Figure 1 of the paper: "Reduction in Peak Temps".
//
// For every chip configuration (A..E, x-axis labels carrying the base
// peak temperature) and every migration scheme (Rot, X Mirror, X-Y Mirror,
// Right Shift, X-Y Shift), runs the full pipeline — thermally-aware
// placement, cycle-accurate decode, power extraction, calibrated thermal
// co-simulation with measured migration timing/energy — and prints the
// reduction in peak temperature, plus the summary statistics quoted in
// Section 3 (per-scheme averages, rotation's energy penalty on E, the
// throughput cost at the default period).
#include <iostream>
#include <map>

#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run() {
  const std::vector<MigrationScheme> schemes = figure1_schemes();

  Table fig1({"Config (base C)", "Rot", "X Mirror", "X-Y Mirror",
              "Right Shift", "X-Y Shift"});
  fig1.set_title(
      "Figure 1 — Reduction in peak temperature (C) by migration scheme");
  Table detail({"Config", "Scheme", "Peak (C)", "Reduction (C)",
                "Mean temp (C)", "Ripple (C)", "t_mig (us)",
                "Throughput penalty", "Phases", "Orbit"});
  detail.set_title("Per-scheme detail (period aligned to LDPC blocks)");

  std::map<MigrationScheme, RunningStats> reduction_stats;
  std::map<MigrationScheme, RunningStats> mean_temp_delta;

  for (const ChipConfig& cfg : all_configs()) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    std::cout << "config " << cfg.name << ": base peak "
              << Table::num(driver.base_peak_temp_c()) << " C, block "
              << Table::num(driver.block_seconds() * 1e6, 1)
              << " us, period "
              << Table::num(driver.default_period_s() * 1e6, 1)
              << " us, total power "
              << Table::num(driver.total_power_w(), 1)
              << " W, calibration x"
              << Table::num(driver.calibration_scale(), 1) << "\n";

    std::vector<std::string> row{cfg.name + " (" +
                                 Table::num(cfg.paper_base_peak_c) + ")"};
    const SchemeEvaluation none =
        driver.evaluate_scheme(MigrationScheme::kNone);
    for (MigrationScheme scheme : schemes) {
      const SchemeEvaluation ev = driver.evaluate_scheme(scheme);
      row.push_back(Table::num(ev.reduction_c));
      reduction_stats[scheme].add(ev.reduction_c);
      mean_temp_delta[scheme].add(ev.mean_temp_c - none.mean_temp_c);
      detail.add_row({cfg.name, to_string(scheme),
                      Table::num(ev.peak_temp_c),
                      Table::num(ev.reduction_c),
                      Table::num(ev.mean_temp_c),
                      Table::num(ev.ripple_c, 3),
                      Table::num(ev.migration_s * 1e6, 2),
                      Table::num(ev.throughput_penalty * 100, 2) + "%",
                      std::to_string(ev.phases),
                      std::to_string(ev.orbit_length)});
    }
    fig1.add_row(std::move(row));
  }

  std::cout << "\n";
  fig1.print(std::cout);
  std::cout << "\n";
  detail.print(std::cout);

  Table averages({"Scheme", "Avg reduction (C)", "Min", "Max",
                  "Avg mean-temp delta (C)"});
  averages.set_title(
      "Section 3 summary — average reduction across configurations "
      "(paper: X-Y Shift 4.62, Rot 4.15; rotation heats the chip by ~0.3 C "
      "through reconfiguration energy)");
  for (MigrationScheme scheme : schemes) {
    const RunningStats& s = reduction_stats[scheme];
    averages.add_row({to_string(scheme), Table::num(s.mean()),
                      Table::num(s.min()), Table::num(s.max()),
                      Table::num(mean_temp_delta[scheme].mean(), 3)});
  }
  std::cout << "\n";
  averages.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
