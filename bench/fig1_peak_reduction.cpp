// Figure 1 of the paper: "Reduction in Peak Temps".
//
// For every chip configuration (A..E, x-axis labels carrying the base
// peak temperature) and every migration scheme (Rot, X Mirror, X-Y Mirror,
// Right Shift, X-Y Shift), runs the full pipeline through one
// ExperimentDriver::scheme_study — thermally-aware placement,
// cycle-accurate decode, power extraction, calibrated thermal
// co-simulation with measured migration timing/energy — and prints the
// reduction in peak temperature, plus the summary statistics quoted in
// Section 3 (per-scheme averages, rotation's energy penalty on E, the
// throughput cost at the default period).
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_fig1.json.
#include <iostream>
#include <map>

#include "core/experiment.hpp"
#include "paper_bench.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run(const bench::PaperArgs& args) {
  const std::vector<MigrationScheme> schemes = figure1_schemes();
  std::vector<MigrationScheme> study{MigrationScheme::kNone};
  study.insert(study.end(), schemes.begin(), schemes.end());

  Table fig1({"Config (base C)", "Rot", "X Mirror", "X-Y Mirror",
              "Right Shift", "X-Y Shift"});
  fig1.set_title(
      "Figure 1 — Reduction in peak temperature (C) by migration scheme");
  Table detail({"Config", "Scheme", "Peak (C)", "Reduction (C)",
                "Mean temp (C)", "Ripple (C)", "t_mig (us)",
                "Throughput penalty", "Phases", "Orbit"});
  detail.set_title("Per-scheme detail (period aligned to LDPC blocks)");

  std::map<MigrationScheme, RunningStats> reduction_stats;
  std::map<MigrationScheme, RunningStats> mean_temp_delta;

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("fig1_peak_reduction");
  json.key("smoke").boolean(args.smoke);
  json.key("configs").begin_array();

  for (const ChipConfig& cfg : bench::paper_configs(args.smoke)) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    std::cout << "config " << cfg.name << ": base peak "
              << Table::num(driver.base_peak_temp_c()) << " C, block "
              << Table::num(driver.block_seconds() * 1e6, 1)
              << " us, period "
              << Table::num(driver.default_period_s() * 1e6, 1)
              << " us, total power "
              << Table::num(driver.total_power_w(), 1)
              << " W, calibration x"
              << Table::num(driver.calibration_scale(), 1) << "\n";

    // One study call: kNone plus the five schemes at the default period,
    // sharing the migration and runtime caches.
    const std::vector<SchemeEvaluation> evals = driver.scheme_study(study);
    const SchemeEvaluation& none = evals.front();

    json.begin_object();
    json.key("name").string(cfg.name);
    json.key("base_peak_c").real(driver.base_peak_temp_c());
    json.key("paper_base_peak_c").real(cfg.paper_base_peak_c);
    json.key("block_us").real(driver.block_seconds() * 1e6);
    json.key("period_us").real(driver.default_period_s() * 1e6);
    json.key("total_power_w").real(driver.total_power_w());
    json.key("calibration_scale").real(driver.calibration_scale());
    json.key("schemes").begin_array();

    std::vector<std::string> row{cfg.name + " (" +
                                 Table::num(cfg.paper_base_peak_c) + ")"};
    for (std::size_t i = 1; i < evals.size(); ++i) {
      const SchemeEvaluation& ev = evals[i];
      row.push_back(Table::num(ev.reduction_c));
      reduction_stats[ev.scheme].add(ev.reduction_c);
      mean_temp_delta[ev.scheme].add(ev.mean_temp_c - none.mean_temp_c);
      detail.add_row({cfg.name, to_string(ev.scheme),
                      Table::num(ev.peak_temp_c),
                      Table::num(ev.reduction_c),
                      Table::num(ev.mean_temp_c),
                      Table::num(ev.ripple_c, 3),
                      Table::num(ev.migration_s * 1e6, 2),
                      Table::num(ev.throughput_penalty * 100, 2) + "%",
                      std::to_string(ev.phases),
                      std::to_string(ev.orbit_length)});
      json.begin_object();
      json.key("scheme").string(to_string(ev.scheme));
      json.key("peak_c").real(ev.peak_temp_c);
      json.key("reduction_c").real(ev.reduction_c);
      json.key("mean_c").real(ev.mean_temp_c);
      json.key("ripple_c").real(ev.ripple_c);
      json.key("migration_us").real(ev.migration_s * 1e6);
      json.key("throughput_penalty").real(ev.throughput_penalty);
      json.key("migration_energy_j").real(ev.migration_energy_j);
      json.key("phases").integer(ev.phases);
      json.key("state_flits").uinteger(ev.state_flits);
      json.key("orbit").integer(ev.orbit_length);
      json.key("converged").boolean(ev.thermal_converged);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    fig1.add_row(std::move(row));
  }
  json.end_array();

  std::cout << "\n";
  fig1.print(std::cout);
  std::cout << "\n";
  detail.print(std::cout);

  Table averages({"Scheme", "Avg reduction (C)", "Min", "Max",
                  "Avg mean-temp delta (C)"});
  averages.set_title(
      "Section 3 summary — average reduction across configurations "
      "(paper: X-Y Shift 4.62, Rot 4.15; rotation heats the chip by ~0.3 C "
      "through reconfiguration energy)");
  json.key("averages").begin_array();
  for (MigrationScheme scheme : schemes) {
    const RunningStats& s = reduction_stats[scheme];
    averages.add_row({to_string(scheme), Table::num(s.mean()),
                      Table::num(s.min()), Table::num(s.max()),
                      Table::num(mean_temp_delta[scheme].mean(), 3)});
    json.begin_object();
    json.key("scheme").string(to_string(scheme));
    json.key("avg_reduction_c").real(s.mean());
    json.key("min_reduction_c").real(s.min());
    json.key("max_reduction_c").real(s.max());
    json.key("avg_mean_temp_delta_c").real(mean_temp_delta[scheme].mean());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file.commit();
  std::cout << "\n";
  averages.print(std::cout);
  std::cout << "\nwrote " << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc =
          renoc::bench::parse_paper_args(argc, argv, "PAPER_fig1.json", args))
    return rc;
  return renoc::run(args);
}
