// Section 3's migration-period study (in-text table).
//
// "All of the above simulations were performed with a migration period of
//  109 microseconds, resulting in an overall throughput reduction of 1.6%.
//  ... For a reconfiguration period of 437.2 microseconds, the overall
//  performance penalty drops to less than 0.4%, and the peak temperatures
//  rise less than a tenth of a degree ... Further, we can increase the
//  period ... to 874.4 microseconds and reduce the throughput penalty to
//  less than 0.2% without significant impact on peak temperature."
//
// The sweep runs every configuration at periods of 1, 4, and 8 decoded
// blocks (the paper aligns migration with LDPC block completion), using
// the X-Y Shift scheme (the paper's best performer) and rotation (its
// costliest migration), and reports the throughput penalty both from the
// analytic halt model and from actually streaming blocks through the
// ReconfigurableLdpcSystem with interleaved migrations.
#include <iostream>

#include "core/experiment.hpp"
#include "core/reconfigurable_system.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

int run() {
  Table sweep({"Config", "Scheme", "Blocks/period", "Period (us)",
               "Peak (C)", "Peak vs 1-block (C)", "t_mig (us)",
               "Penalty (model)", "Penalty (streamed)"});
  sweep.set_title(
      "Section 3 period sweep — paper: 109.3 us -> 1.6%; 437.2 us -> <0.4%, "
      "peak +<0.1 C; 874.4 us -> <0.2%");

  for (const ChipConfig& cfg : all_configs()) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    for (MigrationScheme scheme :
         {MigrationScheme::kShiftXY, MigrationScheme::kRotation}) {
      double peak_at_one_block = 0.0;
      for (int blocks_per_period : {1, 4, 8}) {
        const double period = blocks_per_period * driver.block_seconds();
        const SchemeEvaluation ev = driver.evaluate_scheme(scheme, period);
        if (blocks_per_period == 1) peak_at_one_block = ev.peak_temp_c;

        // Stream real blocks through the full system to measure the
        // penalty end to end. Timing is deterministic, so the per-period
        // penalty is exactly t_mig / (t_mig + blocks-per-period block
        // times), extracted from one migration and its surrounding blocks.
        ReconfigurableLdpcSystem migrating(cfg, scheme);
        const StreamResult with_mig =
            migrating.run_stream(2 * blocks_per_period, blocks_per_period);
        RENOC_CHECK(with_mig.all_blocks_match_golden);
        RENOC_CHECK(with_mig.migrations == 1);
        const double mig_cycles =
            static_cast<double>(with_mig.migration_cycles);
        const double period_cycles =
            static_cast<double>(blocks_per_period) *
            static_cast<double>(migrating.block_cycles());
        const double streamed_penalty =
            mig_cycles / (mig_cycles + period_cycles);

        sweep.add_row({cfg.name, to_string(scheme),
                       std::to_string(blocks_per_period),
                       Table::num(period * 1e6, 1),
                       Table::num(ev.peak_temp_c),
                       Table::num(ev.peak_temp_c - peak_at_one_block, 3),
                       Table::num(ev.migration_s * 1e6, 2),
                       Table::num(ev.throughput_penalty * 100, 2) + "%",
                       Table::num(streamed_penalty * 100, 2) + "%"});
      }
    }
  }
  sweep.print(std::cout);
  std::cout << "\nNote: peak-vs-1-block shows how little the peak grows as "
               "the period stretches 8x,\nthe paper's argument for cheap "
               "infrequent migration.\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
