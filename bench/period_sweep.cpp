// Section 3's migration-period study (in-text table).
//
// "All of the above simulations were performed with a migration period of
//  109 microseconds, resulting in an overall throughput reduction of 1.6%.
//  ... For a reconfiguration period of 437.2 microseconds, the overall
//  performance penalty drops to less than 0.4%, and the peak temperatures
//  rise less than a tenth of a degree ... Further, we can increase the
//  period ... to 874.4 microseconds and reduce the throughput penalty to
//  less than 0.2% without significant impact on peak temperature."
//
// The sweep runs every configuration at periods of 1, 4, and 8 decoded
// blocks (the paper aligns migration with LDPC block completion) through
// one ExperimentDriver::scheme_study over the X-Y Shift scheme (the
// paper's best performer) and rotation (its costliest migration), and
// reports the throughput penalty both from the analytic halt model and
// from actually streaming blocks through the ReconfigurableLdpcSystem
// with interleaved migrations.
//
// --smoke / --json: see bench/paper_bench.hpp; emits PAPER_period.json.
#include <iostream>
#include <iterator>

#include "core/experiment.hpp"
#include "core/reconfigurable_system.hpp"
#include "paper_bench.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

constexpr int kBlocksPerPeriod[] = {1, 4, 8};

int run(const bench::PaperArgs& args) {
  Table sweep({"Config", "Scheme", "Blocks/period", "Period (us)",
               "Peak (C)", "Peak vs 1-block (C)", "t_mig (us)",
               "Penalty (model)", "Penalty (streamed)"});
  sweep.set_title(
      "Section 3 period sweep — paper: 109.3 us -> 1.6%; 437.2 us -> <0.4%, "
      "peak +<0.1 C; 874.4 us -> <0.2%");

  AtomicFile json_file(args.json_path);
  JsonWriter json(json_file.stream());
  json.begin_object();
  json.key("bench").string("period_sweep");
  json.key("smoke").boolean(args.smoke);
  json.key("rows").begin_array();

  for (const ChipConfig& cfg : bench::paper_configs(args.smoke)) {
    ExperimentDriver driver(cfg);
    driver.prepare();
    std::vector<double> periods;
    for (int blocks : kBlocksPerPeriod)
      periods.push_back(blocks * driver.block_seconds());

    // One study call: both schemes at all three periods, scheme-major, so
    // each scheme's orbit is simulated once and each period factored once.
    const std::vector<SchemeEvaluation> evals = driver.scheme_study(
        {MigrationScheme::kShiftXY, MigrationScheme::kRotation}, periods);

    for (std::size_t i = 0; i < evals.size(); ++i) {
      const SchemeEvaluation& ev = evals[i];
      const int blocks_per_period = kBlocksPerPeriod[i % std::size(periods)];
      const double peak_at_one_block =
          evals[i - i % std::size(periods)].peak_temp_c;

      // Stream real blocks through the full system to measure the
      // penalty end to end. Timing is deterministic, so the per-period
      // penalty is exactly t_mig / (t_mig + blocks-per-period block
      // times), extracted from one migration and its surrounding blocks.
      ReconfigurableLdpcSystem migrating(cfg, ev.scheme);
      const StreamResult with_mig =
          migrating.run_stream(2 * blocks_per_period, blocks_per_period);
      RENOC_CHECK(with_mig.all_blocks_match_golden);
      RENOC_CHECK(with_mig.migrations == 1);
      const double mig_cycles =
          static_cast<double>(with_mig.migration_cycles);
      const double period_cycles =
          static_cast<double>(blocks_per_period) *
          static_cast<double>(migrating.block_cycles());
      const double streamed_penalty =
          mig_cycles / (mig_cycles + period_cycles);

      sweep.add_row({cfg.name, to_string(ev.scheme),
                     std::to_string(blocks_per_period),
                     Table::num(ev.period_s * 1e6, 1),
                     Table::num(ev.peak_temp_c),
                     Table::num(ev.peak_temp_c - peak_at_one_block, 3),
                     Table::num(ev.migration_s * 1e6, 2),
                     Table::num(ev.throughput_penalty * 100, 2) + "%",
                     Table::num(streamed_penalty * 100, 2) + "%"});

      json.begin_object();
      json.key("config").string(cfg.name);
      json.key("scheme").string(to_string(ev.scheme));
      json.key("blocks_per_period").integer(blocks_per_period);
      json.key("period_us").real(ev.period_s * 1e6);
      json.key("peak_c").real(ev.peak_temp_c);
      json.key("peak_vs_one_block_c").real(ev.peak_temp_c -
                                           peak_at_one_block);
      json.key("migration_us").real(ev.migration_s * 1e6);
      json.key("penalty_model").real(ev.throughput_penalty);
      json.key("penalty_streamed").real(streamed_penalty);
      json.key("migration_cycles").uinteger(with_mig.migration_cycles);
      json.key("block_cycles").uinteger(migrating.block_cycles());
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  json_file.commit();

  sweep.print(std::cout);
  std::cout << "\nNote: peak-vs-1-block shows how little the peak grows as "
               "the period stretches 8x,\nthe paper's argument for cheap "
               "infrequent migration.\nwrote "
            << args.json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  renoc::bench::PaperArgs args;
  if (const int rc = renoc::bench::parse_paper_args(argc, argv,
                                                    "PAPER_period.json", args))
    return rc;
  return renoc::run(args);
}
