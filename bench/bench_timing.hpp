// Shared timing helper for the self-timing before/after benches
// (micro_thermal, micro_ldpc). One definition so both BENCH_*.json records
// are measured with the same methodology.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>

namespace renoc::bench {

/// Best-of-N wall time of op() in milliseconds: repeats until the budget is
/// spent (at least twice), reporting the fastest run.
inline double time_ms(double budget_ms, const std::function<void()>& op) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  double spent = 0.0;
  int reps = 0;
  while (reps < 2 || spent < budget_ms) {
    const auto t0 = clock::now();
    op();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
    spent += ms;
    ++reps;
  }
  return best;
}

}  // namespace renoc::bench
