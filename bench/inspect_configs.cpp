// Diagnostic report for the five chip configurations: placement grids,
// calibrated power maps, and baseline temperature fields. Not a paper
// artifact by itself, but the evidence behind the workload design recorded
// in DESIGN.md (hot row in every configuration; configuration E's central
// hotspot), and the provenance for the calibration scales quoted in
// EXPERIMENTS.md.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "power/power_map.hpp"

namespace renoc {
namespace {

void print_grid(const char* title, const GridDim& dim,
                const std::vector<double>& values) {
  std::printf("%s\n", title);
  for (int y = dim.height - 1; y >= 0; --y) {
    std::printf("  y=%d |", y);
    for (int x = 0; x < dim.width; ++x)
      std::printf(" %7.2f",
                  values[static_cast<std::size_t>(y * dim.width + x)]);
    std::printf("\n");
  }
}

void print_placement(const GridDim& dim, const std::vector<int>& placement) {
  // Show which cluster sits on each tile.
  std::vector<int> cluster_on_tile(
      static_cast<std::size_t>(dim.node_count()), -1);
  for (std::size_t c = 0; c < placement.size(); ++c)
    cluster_on_tile[static_cast<std::size_t>(placement[c])] =
        static_cast<int>(c);
  std::printf("thermally-aware placement (cluster id on each tile)\n");
  for (int y = dim.height - 1; y >= 0; --y) {
    std::printf("  y=%d |", y);
    for (int x = 0; x < dim.width; ++x)
      std::printf(" %4d",
                  cluster_on_tile[static_cast<std::size_t>(y * dim.width + x)]);
    std::printf("\n");
  }
}

void inspect(const ChipConfig& cfg) {
  std::printf("==== configuration %s (%dx%d, n=%d, paper base %.2f C) ====\n",
              cfg.name.c_str(), cfg.dim.width, cfg.dim.height,
              cfg.workload.code_n, cfg.paper_base_peak_c);
  ExperimentDriver driver(cfg);
  driver.prepare();

  std::printf("block: %llu cycles = %.2f us; total power %.1f W; "
              "calibration scale %.3f\n",
              static_cast<unsigned long long>(driver.block_cycles()),
              driver.block_seconds() * 1e6, driver.total_power_w(),
              driver.calibration_scale());
  print_placement(cfg.dim, driver.baseline_placement());
  print_grid("calibrated power map (W per tile)", cfg.dim,
             driver.base_power());
  print_grid("baseline die temperature (C)", cfg.dim,
             driver.baseline_die_temps());

  // Row power totals: the paper's "warm band" evidence.
  std::printf("row power totals (W):");
  for (int y = 0; y < cfg.dim.height; ++y) {
    double row = 0;
    for (int x = 0; x < cfg.dim.width; ++x)
      row += driver.base_power()[static_cast<std::size_t>(
          y * cfg.dim.width + x)];
    std::printf(" y%d=%.1f", y, row);
  }
  std::printf("\n\n");
}

}  // namespace
}  // namespace renoc

int main() {
  for (const renoc::ChipConfig& cfg : renoc::all_configs())
    renoc::inspect(cfg);
  return 0;
}
