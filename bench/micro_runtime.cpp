// Before/after harness for the orbit co-simulation engine.
//
// Times the seed scalar orbit integration (core/reference_runtime) against
// the streamed engine (core/thermal_runtime) on the same migration
// scenarios, checking per-field agreement (<= 1e-10, exact on the
// integer/bool fields) while doing so; counts steady-state heap
// allocations of a warmed engine run(); times the multi-RHS adaptive
// lookahead against the per-candidate scalar path with a bit-match check;
// and scales the experiment sweep across threads with a determinism +
// replay cross-check. Guards fail the binary (nonzero exit), so wiring
// `--smoke` into CI makes divergence from the reference semantics a build
// break instead of a silent regression.
//
// Results are also written as machine-readable JSON (BENCH_runtime.json
// by default) so CI can archive them per commit.
//
// Usage: bench_micro_runtime [--smoke] [--json <path>]
//   --smoke   tiny sizes and budgets; used by CI and scripts/check.sh so
//             this target can never silently rot.
//   --json    output path for the JSON record (default BENCH_runtime.json).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "core/adaptive_policy.hpp"
#include "sweep_guard.hpp"
#include "util/json.hpp"
#include "core/experiment_sweep.hpp"
#include "core/reference_runtime.hpp"
#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/simd.hpp"
#include "util/sparse.hpp"
#include "util/table.hpp"

// Steady-state allocations are counted by util/alloc_guard (referencing it
// links the interposed operator new/delete into this binary).
#include "util/alloc_guard.hpp"

namespace renoc {
namespace {

using bench::time_ms;

/// Network of a 4x4-tile die subdivided refine x refine per tile (the
/// same construction as RefinedThermalModel): node count grows as
/// 48 * refine^2 + 10.
RcNetwork net_for(int refine) {
  const int side = 4 * refine;
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side},
                          date05_tile_area() /
                              (static_cast<double>(refine) * refine)),
      date05_hotspot_params());
}

/// Per-field agreement between an engine and a reference run.
bool results_agree(const ThermalRunResult& a, const ThermalRunResult& b,
                   double tol) {
  return std::fabs(a.peak_temp_c - b.peak_temp_c) <= tol &&
         std::fabs(a.mean_temp_c - b.mean_temp_c) <= tol &&
         std::fabs(a.ripple_c - b.ripple_c) <= tol &&
         std::fabs(a.steady_peak_of_avg_c - b.steady_peak_of_avg_c) <= tol &&
         a.orbits_run == b.orbits_run && a.converged == b.converged;
}

struct CosimRow {
  int refine = 0;
  int nodes = 0;
  int nnz_rcm = 0;   // factor fill under the default RCM ordering
  int nnz_md = 0;    // ... under the engine's minimum-degree ordering
  double ref_ms = 0.0;
  double engine_ms = 0.0;
  double speedup = 0.0;
  int orbits = 0;
  long long steady_allocs = 0;
  bool agree = true;
};

CosimRow run_cosim_row(int refine, double budget_ms) {
  const RcNetwork net = net_for(refine);
  const int side = 4 * refine;
  const double tiles = static_cast<double>(refine) * refine;
  std::vector<double> power(static_cast<std::size_t>(net.die_count()),
                            2.0 / tiles);
  power[0] = 9.0 / tiles;
  const auto orbit = orbit_permutations(
      Transform{TransformKind::kRotation, 0}, GridDim{side, side});
  // Uniform migration energy so the spiked-power path is exercised too.
  const std::vector<std::vector<double>> energy(
      orbit.size(),
      std::vector<double>(static_cast<std::size_t>(net.die_count()),
                          200e-6 / net.die_count()));

  CosimRow row;
  row.refine = refine;
  row.nodes = net.node_count();
  {
    const std::vector<double> cd(
        static_cast<std::size_t>(net.node_count()), 1.0);
    const SparseMatrix step = net.conductance_sparse().plus_diagonal(cd);
    row.nnz_rcm = SparseLdlt(step).factor_nnz();
    row.nnz_md = SparseLdlt(step, minimum_degree_ordering(step)).factor_nnz();
  }

  const ThermalRunOptions opt;
  const MigrationThermalRuntime engine(net, opt);
  const ReferenceThermalRuntime reference(net, opt);

  const ThermalRunResult re = engine.run(power, orbit, energy);
  const ThermalRunResult rr = reference.run(power, orbit, energy);
  row.orbits = re.orbits_run;
  row.agree = results_agree(re, rr, 1e-10);
  // The free-running (no-energy) scenario must agree too.
  row.agree = row.agree && results_agree(engine.run(power, orbit, {}),
                                         reference.run(power, orbit, {}),
                                         1e-10);

  row.engine_ms =
      time_ms(budget_ms, [&] { (void)engine.run(power, orbit, energy); });
  row.ref_ms =
      time_ms(budget_ms, [&] { (void)reference.run(power, orbit, energy); });
  row.speedup = row.ref_ms / row.engine_ms;

  // Steady-state allocation count of the warmed engine.
  const AllocGuard guard;
  for (int i = 0; i < 4; ++i) (void)engine.run(power, orbit, energy);
  row.steady_allocs = guard.count();
  return row;
}

struct PolicyRow {
  int nodes = 0;
  int candidates = 0;
  double scalar_ms = 0.0;
  double batch_ms = 0.0;
  double speedup = 0.0;
  bool bit_match = true;
};

PolicyRow run_policy_row(int refine, double budget_ms) {
  const RcNetwork net = net_for(refine);
  const int side = 4 * refine;
  const GridDim dim{side, side};
  AdaptivePolicy policy(net, dim, AdaptiveObjective::kPredictivePeak,
                        109.3e-6);
  std::vector<double> power(static_cast<std::size_t>(dim.node_count()), 1.0);
  power[static_cast<std::size_t>(dim.node_count() / 3)] = 6.0;
  const SteadyStateSolver steady(net);
  const std::vector<double> state = steady.solve_die_power(power);

  PolicyRow row;
  row.nodes = net.node_count();
  row.candidates = static_cast<int>(policy.candidates().size());

  std::vector<double> scalar_scores(policy.candidates().size());
  row.scalar_ms = time_ms(budget_ms, [&] {
    for (std::size_t j = 0; j < policy.candidates().size(); ++j)
      scalar_scores[j] =
          policy.predicted_peak(policy.candidates()[j], power, state);
  });
  std::vector<double> batch_scores;
  row.batch_ms = time_ms(budget_ms, [&] {
    batch_scores = policy.candidate_scores(power, state);
  });
  row.speedup = row.scalar_ms / row.batch_ms;
  row.bit_match = batch_scores.size() == scalar_scores.size();
  for (std::size_t j = 0; row.bit_match && j < batch_scores.size(); ++j)
    if (batch_scores[j] != scalar_scores[j]) row.bit_match = false;
  return row;
}

struct SolveTierRow {
  simd::Tier tier = simd::Tier::kScalar;
  double multi_ms = 0.0;     ///< blocked 8-RHS solve through this tier
  double permuted_ms = 0.0;  ///< streamed permuted solve through this tier
  double multi_speedup = 0.0;     // vs the scalar tier
  double permuted_speedup = 0.0;  // vs the scalar tier
  bool bit_exact = true;
};

/// Times the two triangular-sweep kernels through every compiled SIMD tier
/// on the co-sim engine's own factorization (minimum-degree ordering) and
/// checks each tier's output is bit-identical to the scalar tier — the
/// contract that keeps the engine's 1e-10 reference agreement intact no
/// matter which tier dispatch picks.
std::vector<SolveTierRow> run_solve_tiers(int refine, double budget_ms) {
  const RcNetwork net = net_for(refine);
  const std::vector<double> cd(static_cast<std::size_t>(net.node_count()),
                               1.0);
  const SparseMatrix step = net.conductance_sparse().plus_diagonal(cd);
  const SparseLdlt chol(step, minimum_degree_ordering(step));
  const int n = chol.n();
  constexpr int kRhs = 8;

  Rng rng(2024);
  std::vector<double> block(static_cast<std::size_t>(n * kRhs));
  std::vector<double> stream(static_cast<std::size_t>(n));
  for (double& v : block) v = rng.next_double() * 4.0 - 2.0;
  for (double& v : stream) v = rng.next_double() * 4.0 - 2.0;

  std::vector<double> golden_block, golden_stream;
  std::vector<SolveTierRow> rows;
  for (int t = 0; t < simd::kTierCount; ++t) {
    const simd::KernelTable* table =
        simd::kernel_table(static_cast<simd::Tier>(t));
    if (table == nullptr) continue;
    SolveTierRow row;
    row.tier = table->tier;

    std::vector<double> x;
    row.multi_ms = time_ms(budget_ms, [&] {
      x = block;
      chol.solve_multi_with(*table, x, kRhs);
    });
    std::vector<double> y;
    row.permuted_ms = time_ms(budget_ms, [&] {
      y = stream;
      chol.solve_permuted_in_place_with(*table, y.data());
    });

    if (rows.empty()) {  // the scalar tier anchors both goldens
      golden_block = x;
      golden_stream = y;
    }
    row.multi_speedup = rows.empty() ? 1.0 : rows[0].multi_ms / row.multi_ms;
    row.permuted_speedup =
        rows.empty() ? 1.0 : rows[0].permuted_ms / row.permuted_ms;
    row.bit_exact = x == golden_block && y == golden_stream;
    rows.push_back(row);
  }
  return rows;
}

struct SweepScalingRow {
  int threads = 0;
  double ms = 0.0;
};

struct SweepScaling {
  std::vector<SweepScalingRow> rows;
  int scenarios = 0;
  bool deterministic = true;
  bool replay_ok = true;
};

bool points_equal(const ExperimentSweepPoint& a,
                  const ExperimentSweepPoint& b) {
  return a.scenario_index == b.scenario_index &&
         a.orbit_length == b.orbit_length && a.fine_nodes == b.fine_nodes &&
         a.static_peak_c == b.static_peak_c &&
         a.peak_temp_c == b.peak_temp_c &&
         a.reduction_c == b.reduction_c &&
         a.mean_temp_c == b.mean_temp_c && a.ripple_c == b.ripple_c &&
         a.steady_peak_of_avg_c == b.steady_peak_of_avg_c &&
         a.orbits_run == b.orbits_run && a.converged == b.converged;
}

SweepScaling run_sweep_scaling(bool smoke, double budget_ms) {
  ExperimentSweepConfig cfg;
  cfg.schemes = smoke ? std::vector<MigrationScheme>{
                            MigrationScheme::kRotation}
                      : std::vector<MigrationScheme>{
                            MigrationScheme::kRotation,
                            MigrationScheme::kShiftXY};
  cfg.periods_s = smoke ? std::vector<double>{109.3e-6}
                        : std::vector<double>{54.65e-6, 109.3e-6};
  cfg.power_scales = {1.0, 1.5};
  cfg.refines = {1, 2};
  cfg.power_jitter = 0.25;
  cfg.migration_energy_j = 50e-6;
  cfg.seed = 1234;

  SweepScaling scaling;
  std::vector<ExperimentSweepPoint> baseline;
  for (const int threads : {1, 2, 4}) {
    cfg.threads = threads;
    std::vector<ExperimentSweepPoint> pts;
    SweepScalingRow row;
    row.threads = threads;
    row.ms = time_ms(budget_ms, [&] { pts = run_experiment_sweep(cfg); });
    if (threads == 1) {
      baseline = pts;
      scaling.scenarios = static_cast<int>(pts.size());
    } else {
      if (pts.size() != baseline.size()) scaling.deterministic = false;
      for (std::size_t i = 0;
           scaling.deterministic && i < baseline.size(); ++i)
        if (!points_equal(baseline[i], pts[i]))
          scaling.deterministic = false;
    }
    scaling.rows.push_back(row);
  }
  // O(1) replay: any cell reproduces its sweep point exactly.
  const auto grid = cfg.scenarios();
  const int probe = static_cast<int>(grid.size()) / 2;
  scaling.replay_ok = points_equal(
      baseline[static_cast<std::size_t>(probe)],
      run_experiment_scenario(grid[static_cast<std::size_t>(probe)], cfg,
                              probe));
  return scaling;
}

void write_json(const std::string& path, bool smoke,
                const std::vector<CosimRow>& cosim,
                const std::vector<SolveTierRow>& solve,
                const PolicyRow& policy, const SweepScaling& sweep,
                const bench::ServiceGuardResult& service) {
  AtomicFile out(path);
  JsonWriter json(out.stream());
  json.begin_object();
  json.key("bench").string("micro_runtime");
  json.key("smoke").boolean(smoke);
  json.key("cosim").begin_array();
  for (const CosimRow& r : cosim) {
    json.begin_object();
    json.key("refine").integer(r.refine);
    json.key("nodes").integer(r.nodes);
    json.key("nnz_rcm").integer(r.nnz_rcm);
    json.key("nnz_md").integer(r.nnz_md);
    json.key("ref_ms").real(r.ref_ms);
    json.key("engine_ms").real(r.engine_ms);
    json.key("speedup").real(r.speedup, 3);
    json.key("orbits").integer(r.orbits);
    json.key("steady_state_allocs").integer(r.steady_allocs);
    json.key("agree_1e10").boolean(r.agree);
    json.end_object();
  }
  json.end_array();
  json.key("ldlt_kernels").begin_object();
  json.key("active_tier").string(simd::active_tier_name());
  json.key("tiers").begin_array();
  for (const SolveTierRow& r : solve) {
    json.begin_object();
    json.key("tier").string(simd::tier_name(r.tier));
    json.key("solve_multi_ms").real(r.multi_ms);
    json.key("solve_multi_speedup").real(r.multi_speedup, 3);
    json.key("permuted_solve_ms").real(r.permuted_ms);
    json.key("permuted_solve_speedup").real(r.permuted_speedup, 3);
    json.key("bit_exact").boolean(r.bit_exact);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.key("policy_lookahead").begin_object();
  json.key("nodes").integer(policy.nodes);
  json.key("candidates").integer(policy.candidates);
  json.key("scalar_ms").real(policy.scalar_ms);
  json.key("batch_ms").real(policy.batch_ms);
  json.key("speedup").real(policy.speedup, 3);
  json.key("bit_match").boolean(policy.bit_match);
  json.end_object();
  json.key("experiment_sweep").begin_object();
  json.key("scenarios").integer(sweep.scenarios);
  json.key("deterministic").boolean(sweep.deterministic);
  json.key("replay_ok").boolean(sweep.replay_ok);
  json.key("threads").begin_array();
  for (const SweepScalingRow& r : sweep.rows) {
    json.begin_object();
    json.key("threads").integer(r.threads);
    json.key("ms").real(r.ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  bench::write_service_guard_json(json, service);
  json.end_object();
  out.commit();
  std::printf("\nwrote %s\n", path.c_str());
}

int run(bool smoke, const std::string& json_path) {
  const std::vector<int> refines =
      smoke ? std::vector<int>{2} : std::vector<int>{2, 4, 6};
  const double budget_ms = smoke ? 1.0 : 400.0;

  // --- Orbit co-simulation: reference scalar loop vs streamed engine ---
  Table cosim_table({"refine", "nodes", "nnz rcm", "nnz md", "seed ms",
                     "engine ms", "speedup", "orbits", "steady allocs",
                     "agree<=1e-10"});
  cosim_table.set_title(
      std::string("Orbit co-simulation (4x4 tiles subdivided refine x "
                  "refine, rotation orbit + migration energy): seed scalar "
                  "loop vs streamed engine, best-of-N") +
      (smoke ? " [smoke]" : ""));
  std::vector<CosimRow> cosim_rows;
  bool ok = true;
  for (const int refine : refines) {
    const CosimRow r = run_cosim_row(refine, budget_ms);
    cosim_rows.push_back(r);
    cosim_table.add_row(
        {std::to_string(r.refine), std::to_string(r.nodes),
         std::to_string(r.nnz_rcm), std::to_string(r.nnz_md),
         Table::num(r.ref_ms, 2), Table::num(r.engine_ms, 2),
         Table::num(r.speedup, 2), std::to_string(r.orbits),
         std::to_string(r.steady_allocs), r.agree ? "yes" : "NO"});
    ok = ok && r.agree &&
         (r.steady_allocs == 0 || !alloc_guard::instrumented());
  }
  cosim_table.print(std::cout);

  // --- Triangular-sweep kernels, per SIMD tier --------------------------
  const std::vector<SolveTierRow> solve_rows =
      run_solve_tiers(refines.front(), budget_ms);
  Table solve_table({"tier", "multi ms", "speedup", "permuted ms", "speedup",
                     "bit-exact"});
  solve_table.set_title(
      std::string("LDL^T triangular sweeps (8-RHS block + streamed "
                  "permuted), every compiled SIMD tier; active tier: ") +
      simd::active_tier_name() + (smoke ? " [smoke]" : ""));
  for (const SolveTierRow& r : solve_rows) {
    solve_table.add_row({simd::tier_name(r.tier), Table::num(r.multi_ms, 4),
                         Table::num(r.multi_speedup, 2),
                         Table::num(r.permuted_ms, 4),
                         Table::num(r.permuted_speedup, 2),
                         r.bit_exact ? "yes" : "NO"});
    ok = ok && r.bit_exact;
  }
  solve_table.print(std::cout);

  // --- Adaptive lookahead: per-candidate scalar vs multi-RHS batch ------
  const PolicyRow policy = run_policy_row(smoke ? 2 : 4, budget_ms);
  Table policy_table({"nodes", "candidates", "scalar ms", "batch ms",
                      "speedup", "bit-match"});
  policy_table.set_title(
      "Predictive lookahead, one choose() round: k scalar integrations vs "
      "one multi-RHS batch");
  policy_table.add_row(
      {std::to_string(policy.nodes), std::to_string(policy.candidates),
       Table::num(policy.scalar_ms, 3), Table::num(policy.batch_ms, 3),
       Table::num(policy.speedup, 2), policy.bit_match ? "yes" : "NO"});
  policy_table.print(std::cout);
  ok = ok && policy.bit_match;

  // --- Experiment sweep thread scaling ----------------------------------
  const SweepScaling sweep = run_sweep_scaling(smoke, smoke ? 1.0 : 100.0);
  Table sweep_table({"threads", "sweep ms", "deterministic", "replay"});
  sweep_table.set_title(
      "Experiment sweep (" + std::to_string(sweep.scenarios) +
      " scenarios): thread scaling; results must not depend on thread "
      "count");
  for (const SweepScalingRow& r : sweep.rows)
    sweep_table.add_row({std::to_string(r.threads), Table::num(r.ms, 2),
                         sweep.deterministic ? "yes" : "NO",
                         sweep.replay_ok ? "yes" : "NO"});
  sweep_table.print(std::cout);
  ok = ok && sweep.deterministic && sweep.replay_ok;

  // --- Sweep service guards ---------------------------------------------
  // The experiment sweep through util/sweep: shard splits and a
  // kill/resume cycle must merge to the exact points the direct run
  // produced.
  ExperimentSweepConfig svc_cfg;
  svc_cfg.schemes = {MigrationScheme::kNone, MigrationScheme::kRotation};
  svc_cfg.periods_s = {109.3e-6};
  svc_cfg.power_scales = {1.0, 1.25};
  svc_cfg.refines = {1};
  svc_cfg.thermal.min_orbits = 1;
  svc_cfg.thermal.max_orbits = smoke ? 2 : 4;
  svc_cfg.thermal.tol_c = 0.5;
  svc_cfg.seed = 1234;
  const sweep::SweepSpec svc_spec = make_experiment_sweep_spec(svc_cfg);
  const bench::ServiceGuardResult service =
      bench::run_service_guard(svc_spec, "bench_runtime_sweep_ckpt");
  Table service_table(
      {"scenarios", "resumed", "shard identity", "resume identity",
       "conserved"});
  service_table.set_title(
      "Sweep service (experiment spec): shard merges and checkpoint "
      "resume must be bit-identical to the direct run");
  service_table.add_row({std::to_string(service.scenarios),
                         std::to_string(service.resumed),
                         service.shard_identity ? "yes" : "NO",
                         service.resume_identity ? "yes" : "NO",
                         service.conserved ? "yes" : "NO"});
  service_table.print(std::cout);
  ok = ok && service.ok();

  write_json(json_path, smoke, cosim_rows, solve_rows, policy, sweep,
             service);

  if (!ok) {
    std::cerr << "FAIL: engine diverged from the reference runtime, "
                 "allocated in steady state, a SIMD tier's triangular sweep "
                 "was not bit-identical to scalar, batched lookahead scores "
                 "drifted, the experiment sweep depended on thread count, "
                 "or the sweep service broke shard/resume identity\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_runtime.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  return renoc::run(smoke, json_path);
}
