#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run ctest in Debug and
# Release with warnings-as-errors, benches, and examples all enabled.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

for config in Debug Release; do
  build_dir="${repo_root}/build-check-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRENOC_WERROR=ON \
    -DRENOC_BUILD_BENCH=ON \
    -DRENOC_BUILD_EXAMPLES=ON \
    "$@"
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

echo "All checks passed."
