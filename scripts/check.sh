#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run ctest in Debug and
# Release with warnings-as-errors, benches, and examples all enabled, then
# smoke-run the dense-vs-sparse thermal bench and the seed-vs-flat LDPC and
# NoC benches so the bench targets cannot silently rot. Each BENCH_*.json
# regression guard exits nonzero when its fast path diverges from the
# golden reference (bit-exactness, steady-state allocations, thread
# determinism), and `set -e` turns any such exit into a check failure.
# Usage: scripts/check.sh [--skip-bench-smoke] [extra cmake args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

bench_smoke=1
if [[ "${1:-}" == "--skip-bench-smoke" ]]; then
  bench_smoke=0
  shift
fi

for config in Debug Release; do
  build_dir="${repo_root}/build-check-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRENOC_WERROR=ON \
    -DRENOC_BUILD_BENCH=ON \
    -DRENOC_BUILD_EXAMPLES=ON \
    "$@"
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [[ "${bench_smoke}" == 1 ]]; then
    echo "== ${config}: bench smoke (micro_thermal) =="
    "${build_dir}/bench/bench_micro_thermal" --smoke
    echo "== ${config}: bench smoke (micro_ldpc) =="
    "${build_dir}/bench/bench_micro_ldpc" --smoke \
      --json "${build_dir}/BENCH_ldpc.json"
    echo "== ${config}: bench smoke (micro_noc) =="
    "${build_dir}/bench/bench_micro_noc" --smoke \
      --json "${build_dir}/BENCH_noc.json"
    echo "== ${config}: bench smoke (micro_runtime) =="
    "${build_dir}/bench/bench_micro_runtime" --smoke \
      --json "${build_dir}/BENCH_runtime.json"
  fi
done

echo "All checks passed."
