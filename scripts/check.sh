#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run ctest in Debug and
# Release with warnings-as-errors, benches, and examples all enabled, then
# smoke-run the dense-vs-sparse thermal bench and the seed-vs-flat LDPC and
# NoC benches so the bench targets cannot silently rot. Each BENCH_*.json
# regression guard exits nonzero when its fast path diverges from the
# golden reference (bit-exactness, steady-state allocations, thread
# determinism), and `set -e` turns any such exit into a check failure.
# micro_noc's smoke additionally covers the degraded-fabric guards: packet
# conservation under every fault kind, allocation-free stepping with an
# active fault plan, and thread-count invariance of the fault-axis sweep.
# The Release pass additionally regenerates every PAPER_*.json figure/table
# record in --smoke mode and diffs it against the pinned golden under
# goldens/ with renoc_golden_diff (integer fields exact, temperatures
# tolerance-checked, *_ms timing skipped).
# The Release pass also runs renoc_lint over the tree (repo invariants:
# hot-region allocations, raw randomness, ring-buffer modulo, engine hash
# maps, route-table rebuilds in hot regions, non-atomic artifact writes,
# untagged deferred-work markers — see tools/lint_core.hpp) and a
# sweep-resume smoke: the renoc_sweep driver runs the NoC smoke sweep
# uninterrupted, then sharded with an injected mid-run crash (supervisor
# retries the dead shard and resumes from its checkpoint segments), and
# renoc_golden_diff must find the two artifacts identical outside the
# run-specific "driver" block.
# Usage: scripts/check.sh [--skip-bench-smoke] [--sanitize=<kind>]
#                         [extra cmake args...]
# (flags may appear in any argument position)
# --sanitize=<kind> replaces the Debug+Release matrix with one
# RelWithDebInfo pass instrumented via RENOC_SANITIZE=<kind> (address,
# undefined, thread, or a '+'-joined combo) — the same configuration the
# CI sanitizer jobs run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

bench_smoke=1
sanitize=""
cmake_args=()
for arg in "$@"; do
  case "${arg}" in
    --skip-bench-smoke) bench_smoke=0 ;;
    --sanitize=*) sanitize="${arg#--sanitize=}" ;;
    *) cmake_args+=("${arg}") ;;
  esac
done

# name:binary:golden triplets for the paper-results pipeline.
paper_benches=(
  "fig1:bench_fig1_peak_reduction:PAPER_fig1.json"
  "table1:bench_table1_transforms:PAPER_table1.json"
  "dtm:bench_dtm_comparison:PAPER_dtm.json"
  "period:bench_period_sweep:PAPER_period.json"
  "phases:bench_migration_phases:PAPER_phases.json"
  "resolution:bench_grid_resolution:PAPER_resolution.json"
  "adaptive:bench_adaptive_policy:PAPER_adaptive.json"
  "noc:bench_noc_characterization:PAPER_noc.json"
)

if [[ -n "${sanitize}" ]]; then
  build_dir="${repo_root}/build-check-san-${sanitize//+/-}"
  echo "== sanitize(${sanitize}): configure =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRENOC_SANITIZE="${sanitize}" \
    -DRENOC_WERROR=ON \
    -DRENOC_BUILD_BENCH=ON \
    -DRENOC_BUILD_EXAMPLES=ON \
    ${cmake_args[@]+"${cmake_args[@]}"}
  echo "== sanitize(${sanitize}): build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== sanitize(${sanitize}): ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [[ "${bench_smoke}" == 1 ]]; then
    for bench in micro_thermal micro_ldpc micro_noc micro_runtime; do
      echo "== sanitize(${sanitize}): bench smoke (${bench}) =="
      "${build_dir}/bench/bench_${bench}" --smoke \
        --json "${build_dir}/BENCH_${bench#micro_}.json"
    done
  fi
  echo "All sanitized checks passed (${sanitize})."
  exit 0
fi

for config in Debug Release; do
  build_dir="${repo_root}/build-check-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "== ${config}: configure =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${config}" \
    -DRENOC_WERROR=ON \
    -DRENOC_BUILD_BENCH=ON \
    -DRENOC_BUILD_EXAMPLES=ON \
    ${cmake_args[@]+"${cmake_args[@]}"}
  echo "== ${config}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${config}: ctest =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [[ "${config}" == "Release" ]]; then
    echo "== ${config}: renoc_lint =="
    "${build_dir}/tools/renoc_lint" --root "${repo_root}" \
      --report "${build_dir}/lint-report.txt"
  fi
  if [[ "${bench_smoke}" == 1 ]]; then
    echo "== ${config}: bench smoke (micro_thermal) =="
    "${build_dir}/bench/bench_micro_thermal" --smoke \
      --json "${build_dir}/BENCH_thermal.json"
    echo "== ${config}: bench smoke (micro_ldpc) =="
    "${build_dir}/bench/bench_micro_ldpc" --smoke \
      --json "${build_dir}/BENCH_ldpc.json"
    echo "== ${config}: bench smoke (micro_noc) =="
    "${build_dir}/bench/bench_micro_noc" --smoke \
      --json "${build_dir}/BENCH_noc.json"
    echo "== ${config}: bench smoke (micro_runtime) =="
    "${build_dir}/bench/bench_micro_runtime" --smoke \
      --json "${build_dir}/BENCH_runtime.json"
  fi
  if [[ "${bench_smoke}" == 1 && "${config}" == "Release" ]]; then
    echo "== ${config}: sweep-resume smoke (crash, retry, resume, diff) =="
    rm -rf "${build_dir}/ckpt-check-baseline" "${build_dir}/ckpt-check-crash"
    "${build_dir}/tools/renoc_sweep" --harness noc --preset smoke \
      --shards 1 --ckpt-dir "${build_dir}/ckpt-check-baseline" \
      --out "${build_dir}/SWEEP_noc_baseline.json"
    "${build_dir}/tools/renoc_sweep" --harness noc --preset smoke \
      --shards 4 --checkpoint-every 2 --inject-crash 1:1 \
      --ckpt-dir "${build_dir}/ckpt-check-crash" \
      --out "${build_dir}/SWEEP_noc_crashed.json"
    "${build_dir}/tools/renoc_golden_diff" --skip driver \
      "${build_dir}/SWEEP_noc_baseline.json" \
      "${build_dir}/SWEEP_noc_crashed.json"
    echo "== ${config}: paper figures (smoke) vs goldens/ =="
    for entry in "${paper_benches[@]}"; do
      name="${entry%%:*}"
      rest="${entry#*:}"
      binary="${rest%%:*}"
      golden="${rest#*:}"
      echo "-- paper bench: ${name} --"
      "${build_dir}/bench/${binary}" --smoke \
        --json "${build_dir}/${golden}" > /dev/null
      "${build_dir}/tools/renoc_golden_diff" \
        "${repo_root}/goldens/${golden}" "${build_dir}/${golden}"
    done
  fi
done

echo "All checks passed."
