// Hotspot study: where does the heat go when the workload moves?
//
// A deeper tour of the library for thermal work: prints the temperature
// field of a chip configuration as an ASCII heat map, shows the
// orbit-averaged field under each migration scheme, and demonstrates the
// odd-mesh fixed-point effect the paper describes (the central PE that
// rotation and mirroring cannot cool). Run with a configuration name:
//
//   ./build/examples/hotspot_study        # defaults to E
//   ./build/examples/hotspot_study A
//
// The evaluation sections run through the library's sweep machinery
// rather than hand-rolled loops: the scheme comparison uses
// ExperimentDriver::scheme_study (cached migration measurements shared
// across periods) and the scheme x period x refinement grid uses the
// threaded experiment sweep harness seeded with the driver's measured
// power map.
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_sweep.hpp"
#include "core/thermal_runtime.hpp"
#include "power/power_map.hpp"
#include "thermal/solver.hpp"

namespace renoc {
namespace {

void print_heat_map(const char* title, const GridDim& dim,
                    const std::vector<double>& temps) {
  // Five brightness buckets between the min and max of this map.
  double lo = temps[0], hi = temps[0];
  for (double t : temps) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  static const char* kShades[] = {" .", " o", " O", " #", " @"};
  std::printf("%s  [%.2f .. %.2f C]\n", title, lo, hi);
  for (int y = dim.height - 1; y >= 0; --y) {
    std::printf("   ");
    for (int x = 0; x < dim.width; ++x) {
      const double t = temps[static_cast<std::size_t>(y * dim.width + x)];
      const int bucket =
          hi > lo ? std::min(4, static_cast<int>((t - lo) / (hi - lo) * 5))
                  : 0;
      std::printf("%s", kShades[bucket]);
    }
    std::printf("   ");
    for (int x = 0; x < dim.width; ++x)
      std::printf(" %6.2f",
                  temps[static_cast<std::size_t>(y * dim.width + x)]);
    std::printf("\n");
  }
}

int run(const std::string& name) {
  ExperimentDriver driver(config_by_name(name));
  driver.prepare();
  const GridDim dim = driver.chip().config.dim;

  std::printf("=== configuration %s ===\n", name.c_str());
  print_heat_map("baseline (static thermally-aware placement)", dim,
                 driver.baseline_die_temps());

  // Orbit-averaged steady fields per scheme: what the die settles to when
  // migration time-shares the workload across tiles.
  SteadyStateSolver steady(driver.thermal_network());
  for (MigrationScheme scheme : figure1_schemes()) {
    const Transform t = transform_of(scheme);
    const auto orbit = orbit_permutations(t, dim);
    std::vector<std::vector<double>> maps;
    for (const auto& perm : orbit)
      maps.push_back(apply_permutation(driver.base_power(), perm));
    const std::vector<double> avg = average_maps(maps);
    const std::vector<double> rise = steady.solve_die_power(avg);
    std::vector<double> temps(static_cast<std::size_t>(dim.node_count()));
    for (int i = 0; i < dim.node_count(); ++i)
      temps[static_cast<std::size_t>(i)] =
          driver.thermal_network().ambient() +
          rise[static_cast<std::size_t>(i)];
    std::printf("\n");
    print_heat_map(to_string(scheme), dim, temps);

    const auto fixed = t.fixed_points(dim);
    if (!fixed.empty()) {
      std::printf("   fixed points:");
      for (const GridCoord& c : fixed) std::printf(" %s", to_string(c).c_str());
      std::printf("  <- tiles this scheme can never cool\n");
    }
  }

  std::printf("\nfull evaluation (migration energy + ripple included):\n");
  for (const SchemeEvaluation& ev : driver.scheme_study(figure1_schemes())) {
    std::printf("  %-12s peak %.2f C  reduction %+.2f C  cost %.2f%%\n",
                to_string(ev.scheme), ev.peak_temp_c, ev.reduction_c,
                ev.throughput_penalty * 100);
  }

  // Scheme x period x refinement grid over the measured workload map,
  // spread over worker threads by the experiment sweep harness (results
  // are thread-count-invariant; any cell can be replayed in isolation
  // with run_experiment_scenario).
  ExperimentSweepConfig scfg;
  scfg.dim = dim;
  scfg.schemes = figure1_schemes();
  scfg.periods_s = {driver.default_period_s(), 4 * driver.default_period_s()};
  scfg.refines = {1, 2};
  scfg.base_tile_power = driver.base_power();
  scfg.power_jitter = 0.0;  // the measured map, unperturbed
  scfg.migration_energy_j = 0.0;
  scfg.threads = 4;
  std::printf(
      "\nsweep: scheme x {1x, 4x} period x {1, 2} refine "
      "(%d scenarios, %d threads)\n",
      static_cast<int>(scfg.scenarios().size()), scfg.threads);
  std::printf("  %-12s %9s %7s %9s %10s %8s\n", "scheme", "period us",
              "refine", "peak C", "reduction", "ripple");
  for (const ExperimentSweepPoint& pt : run_experiment_sweep(scfg)) {
    std::printf("  %-12s %9.1f %7d %9.2f %+10.2f %8.3f\n",
                to_string(pt.scenario.scheme), pt.scenario.period_s * 1e6,
                pt.scenario.refine, pt.peak_temp_c, pt.reduction_c,
                pt.ripple_c);
  }
  return 0;
}

}  // namespace
}  // namespace renoc

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "E";
  return renoc::run(name);
}
