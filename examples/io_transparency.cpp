// I/O transparency: the outside world never notices a migration.
//
// Section 2.3: "By including a migration unit at the I/O interface, the
// migration operation is totally transparent to the outside world." This
// example plays the role of an external host talking to PEs on the chip
// while the workload migrates underneath:
//
//   1. the host sends a request to *logical* PE L through the migration
//      unit, which rewrites the destination to the current physical tile;
//   2. the PE replies; the migration unit rewrites the source back to L;
//   3. migrations happen between exchanges — the host's view never
//      changes, even after an arbitrary history of transforms.
#include <cstdio>
#include <vector>

#include "core/migration_controller.hpp"
#include "core/migration_unit.hpp"
#include "noc/fabric.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// The host addresses this logical PE throughout.
constexpr int kLogicalTarget = 6;
constexpr std::uint64_t kRequestTag = 0x10;
constexpr std::uint64_t kReplyTag = 0x11;

// One request/reply exchange through the migration unit. The "application"
// on each tile echoes requests back to the edge tile 0, which models the
// chip's I/O port.
std::uint64_t exchange(Fabric& fabric, const AddressTranslator& mig_unit,
                       std::uint64_t payload) {
  Message request;
  request.src = 0;  // the I/O port tile
  request.dst = kLogicalTarget;  // logical address, as the host knows it
  request.tag = kRequestTag;
  request.payload = {payload};
  mig_unit.rewrite_ingress(request);  // -> physical tile

  fabric.send(request);
  fabric.drain();

  // The hosting PE consumes the request and replies to the I/O port.
  auto got = fabric.try_receive(request.dst);
  RENOC_CHECK(got.has_value() && got->tag == kRequestTag);
  Message reply;
  reply.src = request.dst;
  reply.dst = 0;
  reply.tag = kReplyTag;
  reply.payload = {got->payload[0] * 2 + 1};  // "work"
  fabric.send(reply);
  fabric.drain();

  auto back = fabric.try_receive(0);
  RENOC_CHECK(back.has_value() && back->tag == kReplyTag);
  mig_unit.rewrite_egress(*back);  // physical source -> logical source
  RENOC_CHECK_MSG(back->src == kLogicalTarget,
                  "egress rewrite must restore the logical address");
  return back->payload[0];
}

int run() {
  NocConfig cfg;
  cfg.dim = GridDim{4, 4};
  Fabric fabric(cfg);

  // A migration history mixing all of Table 1's functions, applied live.
  const std::vector<Transform> history = {
      {TransformKind::kRotation, 0}, {TransformKind::kShiftX, 1},
      {TransformKind::kMirrorXY, 0}, {TransformKind::kShiftXY, 1},
      {TransformKind::kRotation, 0}, {TransformKind::kMirrorX, 0},
  };

  // All controllers share one fabric; each migration event uses the
  // transform of the step. We keep one translator (inside the last
  // controller used) — to keep a single accumulated map we drive one
  // controller per transform kind but hand them a shared placement and
  // verify against a manually composed translator.
  AddressTranslator mig_unit(cfg.dim);
  std::vector<int> placement = identity_permutation(16);
  const std::vector<int> state_words(16, 48);

  std::printf("host exchanges with logical PE %d while the chip migrates\n",
              kLogicalTarget);
  std::uint64_t value = 1;
  for (std::size_t step = 0; step < history.size(); ++step) {
    const std::uint64_t result = exchange(fabric, mig_unit, value);
    const int physical = mig_unit.logical_to_physical(kLogicalTarget);
    std::printf("  step %zu: request to logical %d reached tile %2d, "
                "reply %llu (src seen by host: %d)\n",
                step, kLogicalTarget, physical,
                static_cast<unsigned long long>(result), kLogicalTarget);
    value = result;

    // Migrate with this step's transform: real state transfer over the
    // same fabric, then compose the migration unit.
    MigrationController controller(fabric, history[step]);
    controller.migrate(placement, state_words);
    mig_unit.apply(history[step]);
  }

  // After the full history the logical view is still intact.
  const std::uint64_t final_result = exchange(fabric, mig_unit, value);
  std::printf("after %zu migrations: logical PE %d now lives on tile %d; "
              "final reply %llu\n",
              history.size(), kLogicalTarget,
              mig_unit.logical_to_physical(kLogicalTarget),
              static_cast<unsigned long long>(final_result));
  std::printf("the host never saw a physical address change.\n");
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
