// Quickstart: hotspot prevention in ~60 lines.
//
// Builds the paper's 4x4 LDPC test chip (configuration A), measures its
// baseline thermal profile, then turns on rotational runtime
// reconfiguration and prints how much cooler the hottest PE runs and what
// that costs in throughput. This is the whole DATE'05 story in one
// program; see hotspot_study.cpp for the full design-space version.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace renoc;

  // 1. The paper's 4x4 test chip: LDPC decoder mapped over a NoC with a
  //    thermally-aware baseline placement, calibrated to the published
  //    85.44 C baseline peak.
  ExperimentDriver driver(config_A());
  driver.prepare();

  std::printf("chip A: %d PEs, one LDPC block every %.1f us, %.1f W\n",
              driver.chip().config.dim.node_count(),
              driver.block_seconds() * 1e6, driver.total_power_w());
  std::printf("static (thermally-aware) placement peak: %.2f C\n",
              driver.base_peak_temp_c());

  // 2. Runtime reconfiguration: every LDPC block boundary (~109 us),
  //    rotate the whole workload 90 degrees. State moves over the mesh in
  //    congestion-free phases; an I/O-side migration unit keeps external
  //    addressing unchanged.
  const SchemeEvaluation rot =
      driver.evaluate_scheme(MigrationScheme::kRotation);
  std::printf("\nwith rotation every %.1f us:\n", rot.period_s * 1e6);
  std::printf("  peak temperature  %.2f C  (reduction %.2f C)\n",
              rot.peak_temp_c, rot.reduction_c);
  std::printf("  migration halt    %.2f us in %d congestion-free phases\n",
              rot.migration_s * 1e6, rot.phases);
  std::printf("  throughput cost   %.2f%%\n",
              rot.throughput_penalty * 100);

  // 3. The paper's best-average scheme: X-Y shift (no fixed points, so it
  //    works on odd meshes too).
  const SchemeEvaluation shift =
      driver.evaluate_scheme(MigrationScheme::kShiftXY);
  std::printf("\nwith X-Y shift: peak %.2f C (reduction %.2f C) at %.2f%% "
              "throughput cost\n",
              shift.peak_temp_c, shift.reduction_c,
              shift.throughput_penalty * 100);
  return 0;
}
