// Decode quality is untouched by migration: a BER sweep with and without
// runtime reconfiguration.
//
// The functional half of the paper's claim: migration moves state between
// PEs mid-stream, yet every block must decode exactly as a monolithic
// decoder would. This example sweeps Eb/N0, decoding a batch of noisy
// blocks on (a) the golden software decoder, (b) the NoC decoder with no
// migration, and (c) the NoC decoder migrating after every block — and
// shows identical bit-error counts for all three, while also reporting
// decoded throughput with and without migration.
#include <cstdio>
#include <vector>

#include "core/chip_config.hpp"
#include "core/migration_controller.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "noc/fabric.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

int run() {
  // A small chip so the sweep stays quick: 4x4 mesh, n=510 code.
  Rng code_rng(7);
  const LdpcCode code = LdpcCode::make_regular(510, 3, 6, code_rng);
  const LdpcEncoder encoder(code);
  const Partition partition = make_striped_partition(code, 16);
  LdpcNocParams params;
  params.iterations = 8;
  const MinSumDecoder golden(code, params.iterations);

  const int blocks_per_point = 6;
  const double rate =
      static_cast<double>(encoder.k()) / static_cast<double>(encoder.n());

  std::printf("Eb/N0   golden-BER   noc-BER     noc+mig-BER  blocks  "
              "cycles/blk  cycles/blk+mig\n");
  for (double ebn0 : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    Rng rng(1000 + static_cast<std::uint64_t>(ebn0 * 10));

    Fabric fabric_plain({GridDim{4, 4}});
    NocLdpcDecoder plain(fabric_plain, code, partition,
                         identity_permutation(16), params);

    Fabric fabric_mig({GridDim{4, 4}});
    NocLdpcDecoder migrating(fabric_mig, code, partition,
                             identity_permutation(16), params);
    MigrationController controller(fabric_mig,
                                   transform_of(MigrationScheme::kShiftXY));
    std::vector<int> placement = identity_permutation(16);
    std::vector<int> state_words(16);
    for (int c = 0; c < 16; ++c)
      state_words[static_cast<std::size_t>(c)] =
          migrating.migration_state_words(c);

    long golden_errs = 0, plain_errs = 0, mig_errs = 0, bits = 0;
    Cycle plain_cycles = 0;
    Cycle mig_cycles_with_halt = 0;
    for (int b = 0; b < blocks_per_point; ++b) {
      std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
      for (auto& bit : data)
        bit = static_cast<std::uint8_t>(rng.next_below(2));
      const auto cw = encoder.encode(data);
      AwgnChannel channel(ebn0, rate, rng.split());
      const auto llrs = quantize_llrs(channel.transmit(cw));

      const DecodeResult g = golden.decode(llrs);
      const NocDecodeResult p = plain.decode_block(llrs);
      const Cycle mig_start = fabric_mig.now();
      const NocDecodeResult m = migrating.decode_block(llrs);
      // Migrate after every block in the migrating system.
      controller.migrate(placement, state_words);
      migrating.set_placement(placement);
      mig_cycles_with_halt += fabric_mig.now() - mig_start;
      plain_cycles += p.cycles;

      RENOC_CHECK_MSG(p.hard_bits == g.hard_bits,
                      "NoC decoder diverged from golden");
      RENOC_CHECK_MSG(m.hard_bits == g.hard_bits,
                      "migrating decoder diverged from golden");
      for (std::size_t i = 0; i < cw.size(); ++i) {
        golden_errs += g.hard_bits[i] != cw[i];
        plain_errs += p.hard_bits[i] != cw[i];
        mig_errs += m.hard_bits[i] != cw[i];
      }
      bits += code.n();
    }
    const double total_bits = static_cast<double>(bits);
    std::printf("%5.1f   %.3e   %.3e   %.3e    %d      %llu       %llu\n",
                ebn0, static_cast<double>(golden_errs) / total_bits,
                static_cast<double>(plain_errs) / total_bits,
                static_cast<double>(mig_errs) / total_bits, blocks_per_point,
                static_cast<unsigned long long>(plain_cycles /
                                                blocks_per_point),
                static_cast<unsigned long long>(mig_cycles_with_halt /
                                                blocks_per_point));
  }
  std::printf("\nall three BER columns are identical by construction — "
              "migration never changes decode results.\n");
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
