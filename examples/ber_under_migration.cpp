// Decode quality is untouched by migration: a BER sweep with and without
// runtime reconfiguration.
//
// The functional half of the paper's claim: migration moves state between
// PEs mid-stream, yet every block must decode exactly as a monolithic
// decoder would. The sweep itself runs on the multithreaded Monte-Carlo
// harness (run_ber_sweep, 4 workers); ber_block_rng() then regenerates the
// exact blocks the harness measured so the NoC decoder — plain and
// migrating after every block — can re-decode them and prove identical
// error counts, while also reporting decoded throughput with and without
// migration.
#include <cstdio>
#include <vector>

#include "core/chip_config.hpp"
#include "core/migration_controller.hpp"
#include "ldpc/ber_harness.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "noc/fabric.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

int run() {
  // A small chip so the sweep stays quick: 4x4 mesh, n=510 code.
  Rng code_rng(7);
  const LdpcCode code = LdpcCode::make_regular(510, 3, 6, code_rng);
  const LdpcEncoder encoder(code);
  const Partition partition = make_striped_partition(code, 16);
  LdpcNocParams params;
  params.iterations = 8;

  BerConfig cfg;
  cfg.ebn0_db = {0.0, 1.0, 2.0, 3.0, 4.0};
  cfg.blocks_per_point = 6;
  cfg.iterations = params.iterations;
  // The NoC decoder always runs the full iteration budget, so the golden
  // sweep must too for the per-block comparison below to be exact.
  cfg.early_exit = false;
  cfg.threads = 4;
  cfg.seed = 2026;
  const std::vector<BerPoint> sweep = run_ber_sweep(code, encoder, cfg);

  const double rate =
      static_cast<double>(encoder.k()) / static_cast<double>(encoder.n());

  std::printf("Eb/N0   golden-BER   noc-BER     noc+mig-BER  blocks  "
              "cycles/blk  cycles/blk+mig\n");
  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const BerPoint& pt = sweep[p];

    Fabric fabric_plain({GridDim{4, 4}});
    NocLdpcDecoder plain(fabric_plain, code, partition,
                         identity_permutation(16), params);

    Fabric fabric_mig({GridDim{4, 4}});
    NocLdpcDecoder migrating(fabric_mig, code, partition,
                             identity_permutation(16), params);
    MigrationController controller(fabric_mig,
                                   transform_of(MigrationScheme::kShiftXY));
    std::vector<int> placement = identity_permutation(16);
    std::vector<int> state_words(16);
    for (int c = 0; c < 16; ++c)
      state_words[static_cast<std::size_t>(c)] =
          migrating.migration_state_words(c);

    // Re-decode the harness's exact blocks on the NoC: ber_block_rng
    // replays the per-block RNG stream of (seed, point, block), so the
    // codewords and noise here are bit-identical to what the 4-thread
    // sweep above measured.
    long plain_errs = 0, mig_errs = 0;
    Cycle plain_cycles = 0;
    Cycle mig_cycles_with_halt = 0;
    for (int b = 0; b < cfg.blocks_per_point; ++b) {
      Rng rng = ber_block_rng(cfg.seed, static_cast<int>(p), b);
      std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
      for (auto& bit : data)
        bit = static_cast<std::uint8_t>(rng.next_below(2));
      const auto cw = encoder.encode(data);
      AwgnChannel channel(pt.ebn0_db, rate, rng.split());
      const auto llrs = quantize_llrs(channel.transmit(cw));

      const NocDecodeResult pr = plain.decode_block(llrs);
      const Cycle mig_start = fabric_mig.now();
      const NocDecodeResult m = migrating.decode_block(llrs);
      // Migrate after every block in the migrating system.
      controller.migrate(placement, state_words);
      migrating.set_placement(placement);
      mig_cycles_with_halt += fabric_mig.now() - mig_start;
      plain_cycles += pr.cycles;

      RENOC_CHECK_MSG(m.hard_bits == pr.hard_bits,
                      "migrating decoder diverged from plain NoC decoder");
      for (std::size_t i = 0; i < cw.size(); ++i) {
        plain_errs += pr.hard_bits[i] != cw[i];
        mig_errs += m.hard_bits[i] != cw[i];
      }
    }
    // The NoC decode of the replayed blocks must reproduce the golden
    // sweep's error count exactly — the distributed decoder is
    // bit-identical, and the harness's counts are thread-count-invariant.
    RENOC_CHECK_MSG(plain_errs == pt.bit_errors,
                    "NoC error count diverged from the golden sweep");

    const double total_bits = static_cast<double>(pt.bits);
    std::printf("%5.1f   %.3e   %.3e   %.3e    %lld      %llu       %llu\n",
                pt.ebn0_db,
                static_cast<double>(pt.bit_errors) / total_bits,
                static_cast<double>(plain_errs) / total_bits,
                static_cast<double>(mig_errs) / total_bits,
                static_cast<long long>(pt.blocks),
                static_cast<unsigned long long>(
                    plain_cycles / static_cast<Cycle>(cfg.blocks_per_point)),
                static_cast<unsigned long long>(
                    mig_cycles_with_halt /
                    static_cast<Cycle>(cfg.blocks_per_point)));
  }
  std::printf("\nall three BER columns are identical by construction — "
              "migration never changes decode results, and the threaded "
              "sweep never changes counts.\n");
  return 0;
}

}  // namespace
}  // namespace renoc

int main() { return renoc::run(); }
