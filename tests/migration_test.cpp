// Tests for the migration machinery: the I/O address translator
// (transparency), the congestion-free phase scheduler (disjointness,
// coverage, determinism), and the migration controller on a live fabric.
#include <gtest/gtest.h>

#include <set>

#include "core/migration_controller.hpp"
#include "core/migration_unit.hpp"
#include "core/phase_scheduler.hpp"
#include "core/transform.hpp"
#include "noc/fabric.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

NocConfig mesh(int side) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  return cfg;
}

// ---------------------------------------------------------------- unit --

TEST(AddressTranslatorTest, IdentityInitially) {
  const AddressTranslator tr(GridDim{4, 4});
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(tr.logical_to_physical(i), i);
    EXPECT_EQ(tr.physical_to_logical(i), i);
  }
}

TEST(AddressTranslatorTest, TracksAccumulatedTransforms) {
  const GridDim dim{4, 4};
  AddressTranslator tr(dim);
  const Transform rot{TransformKind::kRotation, 0};
  tr.apply(rot);
  // Workload of logical tile (x,y) is now at rot(x,y).
  for (int i = 0; i < 16; ++i) {
    const GridCoord logical = index_to_coord(i, dim);
    const GridCoord physical = rot.apply(logical, dim);
    EXPECT_EQ(tr.logical_to_physical(i), coord_to_index(physical, dim));
  }
  // Inverse maps agree.
  for (int p = 0; p < 16; ++p)
    EXPECT_EQ(tr.logical_to_physical(tr.physical_to_logical(p)), p);
}

TEST(AddressTranslatorTest, FourRotationsRoundTrip) {
  AddressTranslator tr(GridDim{5, 5});
  const Transform rot{TransformKind::kRotation, 0};
  for (int k = 0; k < 4; ++k) tr.apply(rot);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(tr.logical_to_physical(i), i);
  EXPECT_EQ(tr.migrations_applied(), 4);
  tr.reset();
  EXPECT_EQ(tr.migrations_applied(), 0);
}

TEST(AddressTranslatorTest, MixedTransformHistory) {
  // Migration functions can change at runtime (Section 2.3); the unit must
  // compose arbitrary histories correctly.
  const GridDim dim{4, 4};
  AddressTranslator tr(dim);
  const Transform rot{TransformKind::kRotation, 0};
  const Transform shift{TransformKind::kShiftX, 1};
  const Transform mir{TransformKind::kMirrorXY, 0};
  tr.apply(rot);
  tr.apply(shift);
  tr.apply(mir);
  for (int i = 0; i < 16; ++i) {
    GridCoord c = index_to_coord(i, dim);
    c = rot.apply(c, dim);
    c = shift.apply(c, dim);
    c = mir.apply(c, dim);
    EXPECT_EQ(tr.logical_to_physical(i), coord_to_index(c, dim));
  }
}

TEST(AddressTranslatorTest, MessageRewrites) {
  AddressTranslator tr(GridDim{4, 4});
  tr.apply(Transform{TransformKind::kShiftX, 1});
  Message in;
  in.src = 99;  // external host id, untouched
  in.dst = 0;   // logical PE 0 now lives at tile 1
  tr.rewrite_ingress(in);
  EXPECT_EQ(in.dst, 1);
  Message out;
  out.src = 1;  // physical tile 1 hosts logical PE 0
  out.dst = 99;
  tr.rewrite_egress(out);
  EXPECT_EQ(out.src, 0);
}

// ----------------------------------------------------------- scheduler --

std::vector<MigrationMove> moves_for(const Transform& t, const GridDim& dim,
                                     int words) {
  const std::vector<int> perm = t.permutation(dim);
  std::vector<MigrationMove> moves;
  for (int i = 0; i < dim.node_count(); ++i)
    moves.push_back({i, perm[static_cast<std::size_t>(i)], words});
  return moves;
}

class PhaseSchedulerTest
    : public ::testing::TestWithParam<std::pair<TransformKind, int>> {};

TEST_P(PhaseSchedulerTest, PhasesAreDisjointAndCoverAllMoves) {
  const auto [kind, side] = GetParam();
  const GridDim dim{side, side};
  const Transform t{kind, 1};
  const auto moves = moves_for(t, dim, 32);
  const auto phases = schedule_phases(moves, dim);

  std::multiset<std::pair<int, int>> scheduled;
  for (const MigrationPhase& phase : phases) {
    EXPECT_TRUE(phase_is_link_disjoint(phase, dim));
    EXPECT_FALSE(phase.moves.empty());
    for (const MigrationMove& mv : phase.moves)
      scheduled.insert({mv.src_tile, mv.dst_tile});
  }
  // Every non-fixed-point move appears exactly once.
  int expected = 0;
  for (const MigrationMove& mv : moves)
    if (mv.src_tile != mv.dst_tile) ++expected;
  EXPECT_EQ(static_cast<int>(scheduled.size()), expected);
  for (const MigrationMove& mv : moves) {
    if (mv.src_tile == mv.dst_tile) continue;
    EXPECT_EQ(scheduled.count({mv.src_tile, mv.dst_tile}), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TransformsAndSizes, PhaseSchedulerTest,
    ::testing::Values(std::pair{TransformKind::kRotation, 4},
                      std::pair{TransformKind::kRotation, 5},
                      std::pair{TransformKind::kMirrorX, 4},
                      std::pair{TransformKind::kMirrorX, 5},
                      std::pair{TransformKind::kMirrorXY, 5},
                      std::pair{TransformKind::kShiftX, 4},
                      std::pair{TransformKind::kShiftX, 5},
                      std::pair{TransformKind::kShiftXY, 5},
                      std::pair{TransformKind::kShiftXY, 6}));

TEST(PhaseSchedulerTest, ShiftNeedsOnePhase) {
  // A unit right-shift's paths are row-internal single hops except the
  // wrap-around move, whose long return path shares row links — so the
  // scheduler needs exactly two phases per row pattern.
  const GridDim dim{4, 4};
  const auto moves =
      moves_for(Transform{TransformKind::kShiftX, 1}, dim, 8);
  const auto phases = schedule_phases(moves, dim);
  EXPECT_LE(phases.size(), 2u);
}

TEST(PhaseSchedulerTest, SelfMovesDropped) {
  const GridDim dim{5, 5};
  const auto moves =
      moves_for(Transform{TransformKind::kMirrorXY, 0}, dim, 8);
  const auto phases = schedule_phases(moves, dim);
  for (const auto& phase : phases)
    for (const auto& mv : phase.moves)
      EXPECT_NE(mv.src_tile, mv.dst_tile);  // center PE stays put
}

TEST(PhaseSchedulerTest, DeterministicSchedules) {
  const GridDim dim{5, 5};
  const auto moves = moves_for(Transform{TransformKind::kRotation, 0}, dim, 16);
  const auto a = schedule_phases(moves, dim);
  const auto b = schedule_phases(moves, dim);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].moves.size(), b[i].moves.size());
    for (std::size_t j = 0; j < a[i].moves.size(); ++j) {
      EXPECT_EQ(a[i].moves[j].src_tile, b[i].moves[j].src_tile);
      EXPECT_EQ(a[i].moves[j].dst_tile, b[i].moves[j].dst_tile);
    }
  }
}

TEST(PhaseSchedulerTest, DurationBoundGrowsWithStateSize) {
  const GridDim dim{4, 4};
  const auto small =
      schedule_phases(moves_for(Transform{TransformKind::kRotation, 0}, dim, 8),
                      dim);
  const auto large =
      schedule_phases(moves_for(Transform{TransformKind::kRotation, 0}, dim, 64),
                      dim);
  EXPECT_GT(phase_duration_cycles(large[0], dim),
            phase_duration_cycles(small[0], dim));
}

// ----------------------------------------------------------- controller --

TEST(MigrationControllerTest, MovesStateAndUpdatesPlacement) {
  Fabric fabric(mesh(4));
  MigrationController controller(fabric,
                                 Transform{TransformKind::kRotation, 0});
  std::vector<int> placement = identity_permutation(16);
  const std::vector<int> words(16, 24);
  const MigrationReport rep = controller.migrate(placement, words);

  EXPECT_EQ(rep.moves, 16);
  EXPECT_EQ(rep.state_flits, 16u * 24u);
  EXPECT_GT(rep.phases, 0);
  EXPECT_GT(rep.total_cycles, 0u);
  // Placement now equals the rotation permutation.
  const auto perm =
      Transform{TransformKind::kRotation, 0}.permutation(GridDim{4, 4});
  EXPECT_EQ(placement, perm);
  // Translator agrees.
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(controller.translator().logical_to_physical(i),
              perm[static_cast<std::size_t>(i)]);
  // Fabric is clean afterwards and injection re-enabled.
  EXPECT_TRUE(fabric.idle());
  for (int n = 0; n < 16; ++n) EXPECT_TRUE(fabric.injection_enabled(n));
}

TEST(MigrationControllerTest, DeterministicMigrationTime) {
  // "This congestion-free operation allows for deterministic migration
  // times" — identical migrations must take identical cycle counts.
  auto run_once = [] {
    Fabric fabric(mesh(5));
    MigrationController controller(fabric,
                                   Transform{TransformKind::kShiftXY, 1});
    std::vector<int> placement = identity_permutation(25);
    const std::vector<int> words(25, 40);
    return controller.migrate(placement, words).total_cycles;
  };
  const Cycle a = run_once();
  const Cycle b = run_once();
  EXPECT_EQ(a, b);
}

TEST(MigrationControllerTest, SimulatedTimeWithinAnalyticBound) {
  Fabric fabric(mesh(4));
  const Transform t{TransformKind::kRotation, 0};
  MigrationController controller(fabric, t);
  std::vector<int> placement = identity_permutation(16);
  const int words = 32;
  const std::vector<int> words_v(16, words);

  std::vector<MigrationMove> moves;
  const auto perm = t.permutation(GridDim{4, 4});
  for (int i = 0; i < 16; ++i)
    moves.push_back({i, perm[static_cast<std::size_t>(i)], words});
  const auto phases = schedule_phases(moves, GridDim{4, 4});
  int bound = 0;
  for (const auto& phase : phases)
    bound += phase_duration_cycles(phase, GridDim{4, 4});

  const MigrationReport rep = controller.migrate(placement, words_v);
  EXPECT_LE(rep.transfer_cycles, static_cast<Cycle>(bound))
      << "congestion-free phases must meet their analytic bound";
}

TEST(MigrationControllerTest, MirrorTwiceRestoresPlacement) {
  Fabric fabric(mesh(5));
  MigrationController controller(fabric,
                                 Transform{TransformKind::kMirrorXY, 0});
  std::vector<int> placement = identity_permutation(25);
  const std::vector<int> words(25, 16);
  controller.migrate(placement, words);
  EXPECT_NE(placement, identity_permutation(25));
  controller.migrate(placement, words);
  EXPECT_EQ(placement, identity_permutation(25));
}

TEST(MigrationControllerTest, CountsConversionActivity) {
  Fabric fabric(mesh(4));
  MigrationController controller(fabric,
                                 Transform{TransformKind::kShiftX, 1});
  std::vector<int> placement = identity_permutation(16);
  const std::vector<int> words(16, 10);
  controller.migrate(placement, words);
  std::uint64_t conversions = 0;
  for (int t = 0; t < 16; ++t)
    conversions += fabric.stats().tile(t).pe_state_words;
  EXPECT_EQ(conversions, 160u);
}

}  // namespace
}  // namespace renoc
