// Tests for the thermally-aware simulated-annealing placer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "mapping/placer.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

struct Env {
  Floorplan fp;
  RcNetwork net;
  SteadyStateSolver solver;
  GridDim dim;

  explicit Env(int side)
      : fp(make_grid_floorplan(GridDim{side, side}, date05_tile_area())),
        net(build_rc_network(fp, date05_hotspot_params())),
        solver(net),
        dim{side, side} {}
};

std::vector<std::vector<std::uint64_t>> no_traffic(int k) {
  return std::vector<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(k),
      std::vector<std::uint64_t>(static_cast<std::size_t>(k), 0));
}

TEST(PlacerTest, PlacementIsInjective) {
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 3000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(16, 1.0);
  power[0] = 6.0;
  power[1] = 6.0;
  const PlacementResult res = placer.place(power, no_traffic(16));
  std::set<int> tiles(res.placement.begin(), res.placement.end());
  EXPECT_EQ(tiles.size(), res.placement.size());
  for (int t : res.placement) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 16);
  }
}

TEST(PlacerTest, SeparatesTwoHotClusters) {
  // Two hot clusters placed adjacently at identity must end up apart.
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 8000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(16, 0.5);
  power[0] = 8.0;
  power[1] = 8.0;
  const PlacementResult res = placer.place(power, no_traffic(16));
  const GridCoord a = index_to_coord(res.placement[0], env.dim);
  const GridCoord b = index_to_coord(res.placement[1], env.dim);
  EXPECT_GE(manhattan(a, b), 2);
  // And the peak temperature beats the identity placement.
  const double identity_peak = placer.peak_temperature_of(
      identity_permutation(16), power);
  EXPECT_LT(res.peak_temperature, identity_peak);
}

TEST(PlacerTest, NeverWorseThanIdentityStart) {
  // SA keeps the best-seen placement, so the result cannot be worse than
  // the identity it starts from.
  Env env(5);
  PlacerOptions opt;
  opt.iterations = 2000;
  opt.seed = 7;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  Rng rng(3);
  std::vector<double> power(25);
  for (auto& p : power) p = 0.5 + 4.0 * rng.next_double();
  const double identity_cost =
      placer.cost_of(identity_permutation(25), power, no_traffic(25));
  const PlacementResult res = placer.place(power, no_traffic(25));
  EXPECT_LE(res.cost, identity_cost + 1e-9);
}

TEST(PlacerTest, DeterministicForSeed) {
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 2000;
  opt.seed = 42;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(16, 1.0);
  power[5] = 9.0;
  const auto a = placer.place(power, no_traffic(16));
  const auto b = placer.place(power, no_traffic(16));
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(PlacerTest, CommWeightPullsChattyClustersTogether) {
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 12000;
  opt.comm_weight = 0.05;  // strong communication pressure
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  // Uniform power so only traffic matters.
  std::vector<double> power(16, 1.0);
  auto traffic = no_traffic(16);
  traffic[2][11] = traffic[11][2] = 10000;
  const PlacementResult res = placer.place(power, traffic);
  const GridCoord a = index_to_coord(res.placement[2], env.dim);
  const GridCoord b = index_to_coord(res.placement[11], env.dim);
  EXPECT_EQ(manhattan(a, b), 1);
}

TEST(PlacerTest, HotClusterMovesOffCenterWithoutTraffic) {
  // With a single dominant cluster and no communication, the thermally
  // best home is away from the die center (corners couple to cooler
  // neighbors... actually corners have fewer hot neighbours and more
  // boundary; verify the placer strictly improves peak temperature and
  // does not leave the hot cluster at the center).
  Env env(5);
  PlacerOptions opt;
  opt.iterations = 10000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(25, 1.2);
  power[12] = 10.0;  // start at the center tile
  const PlacementResult res = placer.place(power, no_traffic(25));
  EXPECT_NE(res.placement[12], 12);
}

TEST(PlacerTest, ZeroIterationsReturnsIdentity) {
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 0;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(16, 1.0);
  const PlacementResult res = placer.place(power, no_traffic(16));
  EXPECT_EQ(res.placement, identity_permutation(16));
}

TEST(PlacerTest, FewerClustersThanTiles) {
  Env env(4);
  PlacerOptions opt;
  opt.iterations = 3000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(10, 2.0);
  power[0] = 7.0;
  const PlacementResult res = placer.place(power, no_traffic(10));
  EXPECT_EQ(res.placement.size(), 10u);
  std::set<int> tiles(res.placement.begin(), res.placement.end());
  EXPECT_EQ(tiles.size(), 10u);
}

TEST(PlacerTest, BeatsRandomSearchBaseline) {
  // SA must at least match the best of an equal-budget random search —
  // the standard sanity bar for any annealer.
  Env env(4);
  Rng rng(71);
  std::vector<double> power(16);
  for (auto& p : power) p = 0.5 + 5.0 * rng.next_double();

  PlacerOptions opt;
  opt.iterations = 4000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  const PlacementResult sa = placer.place(power, no_traffic(16));

  double best_random = 1e300;
  std::vector<int> perm(16);
  for (int i = 0; i < 16; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int trial = 0; trial < 4000; ++trial) {
    for (int i = 15; i > 0; --i) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    best_random = std::min(
        best_random, placer.peak_temperature_of(perm, power));
  }
  EXPECT_LE(sa.peak_temperature, best_random + 0.05);
}

TEST(PlacerTest, PinsRespectedUnderPressure) {
  // Pin the hottest cluster to the center — the worst thermal spot — and
  // verify the annealer still leaves it there.
  Env env(5);
  PlacerOptions opt;
  opt.iterations = 5000;
  ThermalAwarePlacer placer(env.solver, env.dim, opt);
  std::vector<double> power(25, 1.0);
  power[3] = 9.0;
  const int center = coord_to_index({2, 2}, env.dim);
  const PlacementResult res =
      placer.place(power, no_traffic(25), {{3, center}});
  EXPECT_EQ(res.placement[3], center);
  // Everyone else still occupies distinct tiles.
  std::set<int> tiles(res.placement.begin(), res.placement.end());
  EXPECT_EQ(tiles.size(), res.placement.size());
}

TEST(PlacerTest, ConflictingPinsRejected) {
  Env env(4);
  ThermalAwarePlacer placer(env.solver, env.dim, PlacerOptions{});
  std::vector<double> power(16, 1.0);
  EXPECT_THROW(placer.place(power, no_traffic(16), {{0, 3}, {1, 3}}),
               CheckError);
  EXPECT_THROW(placer.place(power, no_traffic(16), {{0, 3}, {0, 5}}),
               CheckError);
  EXPECT_THROW(placer.place(power, no_traffic(16), {{0, 99}}), CheckError);
}

TEST(PlacerTest, MismatchedInputsRejected) {
  Env env(4);
  ThermalAwarePlacer placer(env.solver, env.dim, PlacerOptions{});
  std::vector<double> power(20, 1.0);  // more clusters than tiles
  EXPECT_THROW(placer.place(power, no_traffic(20)), CheckError);
}

}  // namespace
}  // namespace renoc
