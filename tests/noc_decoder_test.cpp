// Tests for the NoC-distributed LDPC decoder: bit-identity with the golden
// decoder (the central functional invariant), timing determinism,
// placement independence of results, and activity accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "core/transform.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

struct TestBench {
  LdpcCode code;
  std::vector<std::int16_t> llrs;
};

TestBench make_bench(int n = 240, std::uint64_t seed = 3, double ebn0 = 3.0) {
  Rng rng(seed);
  TestBench tb{LdpcCode::make_regular(n, 3, 6, rng), {}};
  LdpcEncoder encoder(tb.code);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  AwgnChannel channel(ebn0, 0.5, rng.split());
  tb.llrs = quantize_llrs(channel.transmit(encoder.encode(data)));
  return tb;
}

NocConfig mesh(int side) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  return cfg;
}

TEST(NocDecoderTest, MatchesGoldenBitExactly) {
  const TestBench tb = make_bench();
  LdpcNocParams params;
  params.iterations = 8;
  const MinSumDecoder golden(tb.code, params.iterations);
  const DecodeResult gold = golden.decode(tb.llrs);

  Fabric fabric(mesh(4));
  NocLdpcDecoder decoder(fabric, tb.code,
                         make_striped_partition(tb.code, 16),
                         identity_permutation(16), params);
  const NocDecodeResult res = decoder.decode_block(tb.llrs);
  EXPECT_EQ(res.hard_bits, gold.hard_bits);
  EXPECT_EQ(res.syndrome_ok, gold.syndrome_ok);
  EXPECT_GT(res.cycles, 0u);
}

// The invariant must hold across partitions, mesh sizes, noise levels, and
// iteration counts.
struct EquivCase {
  int side;
  int clusters;
  int iterations;
  double ebn0;
  int partition_kind;  // 0 striped, 1 interleaved, 2 weighted
};

class NocDecoderEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(NocDecoderEquivalence, DistributedEqualsGolden) {
  const EquivCase& pc = GetParam();
  const TestBench tb = make_bench(240, 7, pc.ebn0);
  Partition partition;
  switch (pc.partition_kind) {
    case 0:
      partition = make_striped_partition(tb.code, pc.clusters);
      break;
    case 1:
      partition = make_interleaved_partition(tb.code, pc.clusters);
      break;
    default: {
      std::vector<double> w(static_cast<std::size_t>(pc.clusters), 1.0);
      w[0] = 3.0;
      w[static_cast<std::size_t>(pc.clusters - 1)] = 0.25;
      partition = make_weighted_partition(tb.code, w, w);
    }
  }
  LdpcNocParams params;
  params.iterations = pc.iterations;
  const MinSumDecoder golden(tb.code, params.iterations);
  const DecodeResult gold = golden.decode(tb.llrs);

  Fabric fabric(mesh(pc.side));
  NocLdpcDecoder decoder(fabric, tb.code, partition,
                         identity_permutation(pc.clusters), params);
  const NocDecodeResult res = decoder.decode_block(tb.llrs);
  EXPECT_EQ(res.hard_bits, gold.hard_bits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocDecoderEquivalence,
    ::testing::Values(EquivCase{4, 16, 5, 2.0, 0},
                      EquivCase{4, 16, 10, 0.0, 1},
                      EquivCase{4, 16, 6, 4.0, 2},
                      EquivCase{5, 25, 5, 2.0, 0},
                      EquivCase{5, 25, 8, 1.0, 1},
                      EquivCase{5, 20, 6, 2.0, 0},   // fewer clusters than
                      EquivCase{4, 10, 6, 2.0, 2})); // tiles

TEST(NocDecoderTest, PlacementDoesNotChangeFunction) {
  const TestBench tb = make_bench();
  LdpcNocParams params;
  params.iterations = 6;
  const Partition partition = make_striped_partition(tb.code, 16);

  Fabric f1(mesh(4));
  NocLdpcDecoder d1(f1, tb.code, partition, identity_permutation(16),
                    params);
  const auto r1 = d1.decode_block(tb.llrs);

  // A rotated placement.
  const Transform rot{TransformKind::kRotation, 0};
  const std::vector<int> rotated = rot.permutation(GridDim{4, 4});
  Fabric f2(mesh(4));
  NocLdpcDecoder d2(f2, tb.code, partition, rotated, params);
  const auto r2 = d2.decode_block(tb.llrs);

  EXPECT_EQ(r1.hard_bits, r2.hard_bits);
}

TEST(NocDecoderTest, BlockTimingIsDeterministicAndValueIndependent) {
  const TestBench a = make_bench(240, 7, 2.0);
  const TestBench b = make_bench(240, 7, -2.0);  // different noise level
  LdpcNocParams params;
  params.iterations = 6;
  const Partition partition = make_striped_partition(a.code, 16);

  Fabric f(mesh(4));
  NocLdpcDecoder decoder(f, a.code, partition, identity_permutation(16),
                         params);
  const Cycle c1 = decoder.decode_block(a.llrs).cycles;
  const Cycle c2 = decoder.decode_block(a.llrs).cycles;
  const Cycle c3 = decoder.decode_block(b.llrs).cycles;
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1, c3) << "timing must not depend on message values";
}

TEST(NocDecoderTest, ComputeOpsLandOnPlacedTiles) {
  const TestBench tb = make_bench();
  LdpcNocParams params;
  params.iterations = 4;
  std::vector<double> w(16, 1.0);
  w[3] = 5.0;  // cluster 3 does much more work
  const Partition partition = make_weighted_partition(tb.code, w, w);

  // Place cluster 3 on tile 9 and verify the ops show up there.
  std::vector<int> placement = identity_permutation(16);
  std::swap(placement[3], placement[9]);
  Fabric fabric(mesh(4));
  NocLdpcDecoder decoder(fabric, tb.code, partition, placement, params);
  decoder.decode_block(tb.llrs);
  const auto& stats = fabric.stats();
  EXPECT_GT(stats.tile(9).pe_compute_ops, stats.tile(0).pe_compute_ops * 3);
}

TEST(NocDecoderTest, TotalComputeOpsMatchAnalytic) {
  const TestBench tb = make_bench();
  LdpcNocParams params;
  params.iterations = 5;
  const Partition partition = make_striped_partition(tb.code, 16);
  Fabric fabric(mesh(4));
  NocLdpcDecoder decoder(fabric, tb.code, partition,
                         identity_permutation(16), params);
  decoder.decode_block(tb.llrs);
  std::uint64_t total = 0;
  for (int t = 0; t < 16; ++t) total += fabric.stats().tile(t).pe_compute_ops;
  // Per iteration: E VN ops + E CN ops; final phase: E more VN-side ops.
  const std::uint64_t e = static_cast<std::uint64_t>(tb.code.edge_count());
  EXPECT_EQ(total, e * (2 * 5 + 1));
}

TEST(NocDecoderTest, FabricIsIdleBetweenBlocks) {
  const TestBench tb = make_bench();
  LdpcNocParams params;
  params.iterations = 3;
  Fabric fabric(mesh(4));
  NocLdpcDecoder decoder(fabric, tb.code,
                         make_striped_partition(tb.code, 16),
                         identity_permutation(16), params);
  decoder.decode_block(tb.llrs);
  EXPECT_TRUE(fabric.idle());
  // And a second block works from that state.
  EXPECT_NO_THROW(decoder.decode_block(tb.llrs));
}

TEST(NocDecoderTest, MigrationStateWordsScaleWithClusterSize) {
  const TestBench tb = make_bench();
  std::vector<double> w(16, 1.0);
  w[0] = 4.0;
  const Partition partition = make_weighted_partition(tb.code, w, w);
  Fabric fabric(mesh(4));
  NocLdpcDecoder decoder(fabric, tb.code, partition,
                         identity_permutation(16), LdpcNocParams{});
  EXPECT_GT(decoder.migration_state_words(0),
            decoder.migration_state_words(1));
  // Every cluster needs at least the config block.
  for (int c = 0; c < 16; ++c)
    EXPECT_GE(decoder.migration_state_words(c), 16);
}

TEST(NocDecoderTest, RejectsBadPlacements) {
  const TestBench tb = make_bench();
  const Partition partition = make_striped_partition(tb.code, 16);
  Fabric fabric(mesh(4));
  // Duplicate tile.
  std::vector<int> placement = identity_permutation(16);
  placement[1] = 0;
  EXPECT_THROW(NocLdpcDecoder(fabric, tb.code, partition, placement,
                              LdpcNocParams{}),
               CheckError);
  // Out-of-range tile.
  placement = identity_permutation(16);
  placement[2] = 99;
  EXPECT_THROW(NocLdpcDecoder(fabric, tb.code, partition, placement,
                              LdpcNocParams{}),
               CheckError);
}

}  // namespace
}  // namespace renoc
