// Bit-exactness suite for the flat CSR decode engine.
//
// The flat kernels (var-major message storage, edge-indexed gathers,
// fixed-degree unrolled sweeps) must reproduce the seed message-passing
// semantics exactly — every DecodeResult field, on every code shape. The
// seed loops are preserved verbatim in reference_decoder.{hpp,cpp}; this
// suite sweeps regular and irregular codes, min-sum and sum-product,
// early-exit on and off, and the degenerate degree-1-check path, comparing
// the production decoders against those oracles block by block. The CSR
// layout itself (offsets/edge ids/neighbors/check_var_slots) is pinned by
// structural invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ldpc/channel.hpp"
#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/reference_decoder.hpp"
#include "ldpc/sum_product.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

LdpcCode regular_code(int n = 240, std::uint64_t seed = 3) {
  Rng rng(seed);
  return LdpcCode::make_regular(n, 3, 6, rng);
}

LdpcCode irregular_code(std::uint64_t seed = 9) {
  // Mixed degrees 1..4 so no fixed-degree fast path applies on either side.
  std::vector<int> degrees;
  for (int v = 0; v < 120; ++v) degrees.push_back(1 + v % 4);
  Rng rng(seed);
  return LdpcCode::make_irregular(degrees, 5, rng);
}

/// A tiny irregular code whose construction forces a degree-1 check:
/// 3 sockets over m=2 checks striped s%m gives check 1 a single edge.
LdpcCode degree_one_check_code() {
  Rng rng(17);
  return LdpcCode::make_irregular({1, 1, 1}, 2, rng);
}

std::vector<std::int16_t> noisy_block(const LdpcCode& code, double ebn0_db,
                                      std::uint64_t seed) {
  const LdpcEncoder encoder(code);
  Rng rng(seed);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  AwgnChannel channel(ebn0_db, 0.5, rng.split());
  return quantize_llrs(channel.transmit(encoder.encode(data)));
}

void expect_results_equal(const DecodeResult& flat, const DecodeResult& ref,
                          const char* what) {
  EXPECT_EQ(flat.hard_bits, ref.hard_bits) << what;
  EXPECT_EQ(flat.syndrome_ok, ref.syndrome_ok) << what;
  EXPECT_EQ(flat.iterations_run, ref.iterations_run) << what;
}

// --- CSR layout invariants -------------------------------------------------

TEST(FlatLayoutTest, OffsetsPartitionEdgeArrays) {
  for (const LdpcCode& code : {regular_code(), irregular_code()}) {
    ASSERT_EQ(code.var_offsets().size(),
              static_cast<std::size_t>(code.n()) + 1);
    ASSERT_EQ(code.check_offsets().size(),
              static_cast<std::size_t>(code.m()) + 1);
    EXPECT_EQ(code.var_offsets().front(), 0);
    EXPECT_EQ(code.var_offsets().back(), code.edge_count());
    EXPECT_EQ(code.check_offsets().front(), 0);
    EXPECT_EQ(code.check_offsets().back(), code.edge_count());
    for (int v = 0; v < code.n(); ++v)
      EXPECT_LE(code.var_offsets()[static_cast<std::size_t>(v)],
                code.var_offsets()[static_cast<std::size_t>(v) + 1]);
  }
}

TEST(FlatLayoutTest, EdgeViewMatchesRawArrays) {
  const LdpcCode code = irregular_code();
  for (int v = 0; v < code.n(); ++v) {
    const EdgeView view = code.var_edges(v);
    const int begin = code.var_offsets()[static_cast<std::size_t>(v)];
    ASSERT_EQ(static_cast<int>(view.size()),
              code.var_offsets()[static_cast<std::size_t>(v) + 1] - begin);
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_EQ(view[i].other,
                code.var_neighbors()[static_cast<std::size_t>(begin) + i]);
      EXPECT_EQ(view[i].edge,
                code.var_edge_ids()[static_cast<std::size_t>(begin) + i]);
    }
  }
}

TEST(FlatLayoutTest, CheckVarSlotsInvertVarEdgeIds) {
  for (const LdpcCode& code : {regular_code(), irregular_code()}) {
    // Position p of the check-major traversal and slot check_var_slots[p]
    // of the var-major traversal must name the same global edge.
    ASSERT_EQ(code.check_var_slots().size(),
              static_cast<std::size_t>(code.edge_count()));
    for (int p = 0; p < code.edge_count(); ++p) {
      const int slot = code.check_var_slots()[static_cast<std::size_t>(p)];
      ASSERT_GE(slot, 0);
      ASSERT_LT(slot, code.edge_count());
      EXPECT_EQ(code.var_edge_ids()[static_cast<std::size_t>(slot)],
                code.check_edge_ids()[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(FlatLayoutTest, NarrowSlotsMatchWideSlots) {
  const LdpcCode code = regular_code();
  ASSERT_EQ(code.check_var_slots16().size(),
            static_cast<std::size_t>(code.edge_count()));
  for (int p = 0; p < code.edge_count(); ++p)
    EXPECT_EQ(static_cast<int>(
                  code.check_var_slots16()[static_cast<std::size_t>(p)]),
              code.check_var_slots()[static_cast<std::size_t>(p)]);
}

TEST(FlatLayoutTest, UniformDegreeDetection) {
  EXPECT_EQ(regular_code().uniform_var_degree(), 3);
  EXPECT_EQ(regular_code().uniform_check_degree(), 6);
  EXPECT_EQ(irregular_code().uniform_var_degree(), 0);
}

// --- Min-sum bit-exactness -------------------------------------------------

TEST(FlatMinSumTest, RegularCodeMatchesSeedAllModes) {
  const LdpcCode code = regular_code();
  for (double ebn0 : {0.5, 2.0, 4.0}) {
    for (std::uint64_t seed = 21; seed < 26; ++seed) {
      const auto llrs = noisy_block(code, ebn0, seed);
      for (bool early_exit : {false, true}) {
        const MinSumDecoder flat(code, 10, early_exit);
        expect_results_equal(
            flat.decode(llrs),
            reference_minsum_decode(code, 10, early_exit, llrs),
            "regular min-sum");
      }
    }
  }
}

TEST(FlatMinSumTest, IrregularCodeTakesGenericPathAndMatches) {
  const LdpcCode code = irregular_code();
  ASSERT_EQ(code.uniform_var_degree(), 0);  // variable sweeps go generic
  for (std::uint64_t seed = 31; seed < 36; ++seed) {
    const auto llrs = noisy_block(code, 1.5, seed);
    for (bool early_exit : {false, true}) {
      const MinSumDecoder flat(code, 8, early_exit);
      expect_results_equal(
          flat.decode(llrs),
          reference_minsum_decode(code, 8, early_exit, llrs),
          "irregular min-sum");
    }
  }
}

TEST(FlatMinSumTest, DegreeOneCheckMatchesSeed) {
  const LdpcCode code = degree_one_check_code();
  int min_deg = code.check_degree(0);
  for (int c = 1; c < code.m(); ++c)
    min_deg = std::min(min_deg, code.check_degree(c));
  ASSERT_EQ(min_deg, 1);  // the degenerate kernel path is actually hit
  // Hand-built LLR patterns: the code is too small for the channel helper.
  const std::vector<std::vector<std::int16_t>> patterns = {
      {50, -3, 7}, {-1, -1, -1}, {127, -127, 0}, {0, 0, 0}, {-12, 90, -4}};
  for (const auto& llrs : patterns) {
    for (bool early_exit : {false, true}) {
      const MinSumDecoder flat(code, 5, early_exit);
      expect_results_equal(
          flat.decode(llrs),
          reference_minsum_decode(code, 5, early_exit, llrs),
          "degree-1 check min-sum");
    }
  }
}

TEST(FlatMinSumTest, WorkspaceReuseIsStateless) {
  // Decoding B after A must give the same result as decoding B fresh —
  // the per-decoder workspace carries no state across calls.
  const LdpcCode code = regular_code();
  const auto a = noisy_block(code, 1.0, 41);
  const auto b = noisy_block(code, 3.0, 42);
  const MinSumDecoder decoder(code, 10, true);
  DecodeResult reused;
  decoder.decode_into(a, reused);
  decoder.decode_into(b, reused);
  const MinSumDecoder fresh(code, 10, true);
  expect_results_equal(reused, fresh.decode(b), "workspace reuse");
}

// --- Sum-product bit-exactness ---------------------------------------------

TEST(FlatSumProductTest, MatchesSeedOnRegularAndIrregular) {
  for (const LdpcCode& code : {regular_code(120), irregular_code()}) {
    const LdpcEncoder encoder(code);
    for (std::uint64_t seed = 51; seed < 54; ++seed) {
      Rng rng(seed);
      std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
      for (auto& bit : data)
        bit = static_cast<std::uint8_t>(rng.next_below(2));
      AwgnChannel channel(1.5, 0.5, rng.split());
      const std::vector<double> llrs = channel.transmit(encoder.encode(data));
      for (bool early_exit : {false, true}) {
        const SumProductDecoder flat(code, 8, early_exit);
        expect_results_equal(
            flat.decode(llrs),
            reference_sum_product_decode(code, 8, early_exit, llrs),
            "sum-product");
      }
    }
  }
}

}  // namespace
}  // namespace renoc
