// Tests for LDPC code construction, encoding, the channel, the fixed-point
// min-sum kernels, the golden decoder, and partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ldpc/channel.hpp"
#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "ldpc/minsum.hpp"
#include "ldpc/partition.hpp"
#include "ldpc/sum_product.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

LdpcCode small_code(std::uint64_t seed = 3) {
  Rng rng(seed);
  return LdpcCode::make_regular(240, 3, 6, rng);
}

TEST(CodeTest, RegularDegrees) {
  const LdpcCode code = small_code();
  EXPECT_EQ(code.n(), 240);
  EXPECT_EQ(code.m(), 120);
  EXPECT_EQ(code.edge_count(), 720);
  for (int v = 0; v < code.n(); ++v) EXPECT_EQ(code.var_degree(v), 3);
  for (int c = 0; c < code.m(); ++c) EXPECT_EQ(code.check_degree(c), 6);
}

TEST(CodeTest, EdgeIdsConsistentBetweenViews) {
  const LdpcCode code = small_code();
  // Each edge id appears exactly once on the check side and once on the
  // var side, linking the same (check, var) pair.
  std::vector<std::pair<int, int>> by_edge(
      static_cast<std::size_t>(code.edge_count()), {-1, -1});
  for (int c = 0; c < code.m(); ++c)
    for (const TannerEdge& e : code.check_edges(c)) {
      EXPECT_EQ(by_edge[static_cast<std::size_t>(e.edge)].first, -1);
      by_edge[static_cast<std::size_t>(e.edge)] = {c, e.other};
    }
  for (int v = 0; v < code.n(); ++v)
    for (const TannerEdge& e : code.var_edges(v)) {
      EXPECT_EQ(by_edge[static_cast<std::size_t>(e.edge)].first, e.other);
      EXPECT_EQ(by_edge[static_cast<std::size_t>(e.edge)].second, v);
    }
}

TEST(CodeTest, InvalidParamsRejected) {
  Rng rng(1);
  EXPECT_THROW(LdpcCode::make_regular(100, 3, 6, rng), CheckError);  // 100%6
  EXPECT_THROW(LdpcCode::make_regular(240, 1, 6, rng), CheckError);  // wc<2
  EXPECT_THROW(LdpcCode::make_regular(240, 6, 3, rng), CheckError);  // wr<=wc
}

TEST(CodeTest, AllZeroIsCodeword) {
  const LdpcCode code = small_code();
  EXPECT_TRUE(code.is_codeword(std::vector<std::uint8_t>(240, 0)));
}

TEST(CodeTest, SingleBitFlipViolatesItsChecks) {
  const LdpcCode code = small_code();
  std::vector<std::uint8_t> bits(240, 0);
  bits[17] = 1;
  EXPECT_EQ(code.syndrome_weight(bits), code.var_degree(17));
}

TEST(EncoderTest, EncodedWordsAreCodewords) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  EXPECT_GE(encoder.k(), code.n() - code.m());
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    const auto cw = encoder.encode(data);
    EXPECT_TRUE(code.is_codeword(cw)) << "trial " << trial;
    EXPECT_EQ(encoder.extract_data(cw), data);
  }
}

TEST(EncoderTest, EncodingIsLinear) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  Rng rng(6);
  std::vector<std::uint8_t> a(static_cast<std::size_t>(encoder.k()));
  std::vector<std::uint8_t> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(rng.next_below(2));
    b[i] = static_cast<std::uint8_t>(rng.next_below(2));
  }
  std::vector<std::uint8_t> ab(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) ab[i] = a[i] ^ b[i];
  const auto ca = encoder.encode(a);
  const auto cb = encoder.encode(b);
  const auto cab = encoder.encode(ab);
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(cab[i], ca[i] ^ cb[i]);
}

TEST(ChannelTest, NoiselessLimitPreservesSigns) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()), 1);
  const auto cw = encoder.encode(data);
  AwgnChannel channel(30.0, 0.5, Rng(8));  // essentially noise-free
  const auto llrs = channel.transmit(cw);
  for (std::size_t i = 0; i < cw.size(); ++i) {
    if (cw[i])
      EXPECT_LT(llrs[i], 0.0);
    else
      EXPECT_GT(llrs[i], 0.0);
  }
}

TEST(ChannelTest, SigmaMatchesEbn0) {
  AwgnChannel ch(0.0, 0.5, Rng(1));
  EXPECT_NEAR(ch.sigma(), 1.0, 1e-12);  // sigma^2 = 1/(2*0.5*1) = 1
}

TEST(QuantizeTest, RoundsAndSaturates) {
  const auto q = quantize_llrs({0.0, 1.0, -1.06, 100.0, -100.0}, 3, 127);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 8);
  EXPECT_EQ(q[2], -8);  // -1.06*8 = -8.48 -> rounds to -8
  EXPECT_EQ(q[3], 127);
  EXPECT_EQ(q[4], -127);
}

TEST(MinSumTest, SatAddSaturates) {
  EXPECT_EQ(minsum::sat_add(120, 30), 127);
  EXPECT_EQ(minsum::sat_add(-120, -30), -127);
  EXPECT_EQ(minsum::sat_add(5, -3), 2);
}

TEST(MinSumTest, NormalizeThreeQuarters) {
  EXPECT_EQ(minsum::normalize(8), 6);
  EXPECT_EQ(minsum::normalize(-8), -6);
  EXPECT_EQ(minsum::normalize(0), 0);
  EXPECT_EQ(minsum::normalize(1), 0);  // (3*1)>>2 = 0
}

TEST(MinSumTest, VarUpdateExtrinsic) {
  std::vector<std::int16_t> out;
  minsum::var_update(10, {5, -3, 2}, out);
  // total = 14; q_e = total - r_e
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 17);
  EXPECT_EQ(out[2], 12);
}

TEST(MinSumTest, CheckUpdateSignsAndMins) {
  std::vector<std::int16_t> out;
  minsum::check_update({10, -6, 4}, out);
  // overall sign = -, magnitudes: min1=4 (idx 2), min2=6
  // r_0 = norm(sign(-/+)=- * 4) = -3
  EXPECT_EQ(out[0], -3);
  // r_1 = norm(sign(-/-)=+ * 4) = +3
  EXPECT_EQ(out[1], 3);
  // r_2 = norm(sign(-/+)=- * min2=6) = -4
  EXPECT_EQ(out[2], -4);
}

TEST(MinSumTest, CheckUpdateAllPositive) {
  std::vector<std::int16_t> out;
  minsum::check_update({7, 9, 9}, out);
  EXPECT_EQ(out[0], minsum::normalize(9));
  EXPECT_EQ(out[1], minsum::normalize(7));
  EXPECT_EQ(out[2], minsum::normalize(7));
}

TEST(MinSumTest, PosteriorSums) {
  EXPECT_EQ(minsum::var_posterior(5, {1, -2, 3}), 7);
  EXPECT_EQ(minsum::var_posterior(-5, {}), -5);
}

TEST(DecoderTest, NoiselessDecodesExactly) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  Rng rng(12);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  const auto cw = encoder.encode(data);
  AwgnChannel channel(12.0, 0.5, Rng(13));
  const auto llrs = quantize_llrs(channel.transmit(cw));
  const MinSumDecoder decoder(code, 10);
  const DecodeResult res = decoder.decode(llrs);
  EXPECT_TRUE(res.syndrome_ok);
  EXPECT_EQ(res.hard_bits, cw);
}

TEST(DecoderTest, CorrectsModerateNoise) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  Rng rng(21);
  int successes = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    const auto cw = encoder.encode(data);
    AwgnChannel channel(4.0, 0.5, rng.split());
    const auto llrs = quantize_llrs(channel.transmit(cw));
    const MinSumDecoder decoder(code, 25);
    const DecodeResult res = decoder.decode(llrs);
    if (res.syndrome_ok && res.hard_bits == cw) ++successes;
  }
  EXPECT_GE(successes, trials - 2);  // 4 dB is comfortable for rate 1/2
}

TEST(DecoderTest, BerImprovesWithSnr) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  auto bit_errors_at = [&](double ebn0) {
    Rng rng(31);
    int errors = 0;
    for (int t = 0; t < 10; ++t) {
      std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
      const auto cw = encoder.encode(data);
      AwgnChannel channel(ebn0, 0.5, rng.split());
      const auto llrs = quantize_llrs(channel.transmit(cw));
      const MinSumDecoder decoder(code, 20);
      const DecodeResult res = decoder.decode(llrs);
      for (std::size_t i = 0; i < cw.size(); ++i)
        errors += res.hard_bits[i] != cw[i];
    }
    return errors;
  };
  const int low_snr = bit_errors_at(0.0);
  const int high_snr = bit_errors_at(5.0);
  EXPECT_LT(high_snr, low_snr);
  EXPECT_EQ(high_snr, 0);
}

TEST(DecoderTest, EarlyExitStopsSooner) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()), 0);
  const auto cw = encoder.encode(data);
  AwgnChannel channel(8.0, 0.5, Rng(41));
  const auto llrs = quantize_llrs(channel.transmit(cw));
  const MinSumDecoder eager(code, 30, /*early_exit=*/true);
  const DecodeResult res = eager.decode(llrs);
  EXPECT_TRUE(res.syndrome_ok);
  EXPECT_LT(res.iterations_run, 30);
}

TEST(IrregularCodeTest, DegreesMatchRequest) {
  Rng rng(9);
  std::vector<int> degrees(120, 3);
  for (int i = 0; i < 30; ++i) degrees[static_cast<std::size_t>(i)] = 5;
  const LdpcCode code = LdpcCode::make_irregular(degrees, 6, rng);
  EXPECT_EQ(code.n(), 120);
  for (int v = 0; v < code.n(); ++v)
    EXPECT_EQ(code.var_degree(v), degrees[static_cast<std::size_t>(v)]);
  // Edge totals and check degrees are consistent.
  int total = 0;
  for (int c = 0; c < code.m(); ++c) total += code.check_degree(c);
  EXPECT_EQ(total, code.edge_count());
  EXPECT_EQ(total, 120 * 3 + 30 * 2);
}

TEST(IrregularCodeTest, NoDuplicateEdges) {
  Rng rng(11);
  std::vector<int> degrees(90, 3);
  degrees[0] = 7;
  const LdpcCode code = LdpcCode::make_irregular(degrees, 5, rng);
  for (int c = 0; c < code.m(); ++c) {
    std::vector<int> vars;
    for (const TannerEdge& e : code.check_edges(c)) vars.push_back(e.other);
    std::sort(vars.begin(), vars.end());
    EXPECT_TRUE(std::adjacent_find(vars.begin(), vars.end()) == vars.end())
        << "duplicate edge at check " << c;
  }
}

TEST(IrregularCodeTest, DecodesThroughFullStack) {
  Rng rng(13);
  std::vector<int> degrees(240, 3);
  for (int i = 0; i < 40; ++i) degrees[static_cast<std::size_t>(i)] = 4;
  const LdpcCode code = LdpcCode::make_irregular(degrees, 6, rng);
  const LdpcEncoder encoder(code);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  const auto cw = encoder.encode(data);
  EXPECT_TRUE(code.is_codeword(cw));
  AwgnChannel channel(6.0, 0.5, rng.split());
  const auto llrs = quantize_llrs(channel.transmit(cw));
  const MinSumDecoder decoder(code, 20);
  const DecodeResult res = decoder.decode(llrs);
  EXPECT_EQ(res.hard_bits, cw);
}

TEST(IrregularCodeTest, BadInputsRejected) {
  Rng rng(1);
  EXPECT_THROW(LdpcCode::make_irregular({}, 6, rng), CheckError);
  EXPECT_THROW(LdpcCode::make_irregular({3, 0, 3}, 6, rng), CheckError);
  EXPECT_THROW(LdpcCode::make_irregular({3, 3}, 1, rng), CheckError);
}

TEST(SumProductTest, NoiselessDecodesExactly) {
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  Rng rng(17);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  const auto cw = encoder.encode(data);
  AwgnChannel channel(12.0, 0.5, rng.split());
  const SumProductDecoder decoder(code, 30);
  const DecodeResult res = decoder.decode(channel.transmit(cw));
  EXPECT_TRUE(res.syndrome_ok);
  EXPECT_EQ(res.hard_bits, cw);
  EXPECT_LT(res.iterations_run, 30);  // early exit fired
}

TEST(SumProductTest, AtLeastAsStrongAsMinSum) {
  // Sum-product with exact tanh combining and unquantized inputs must not
  // lose to quantized normalized min-sum over a batch of noisy blocks.
  const LdpcCode code = small_code();
  const LdpcEncoder encoder(code);
  Rng rng(23);
  int sp_block_ok = 0, ms_block_ok = 0;
  for (int t = 0; t < 12; ++t) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
    const auto cw = encoder.encode(data);
    AwgnChannel channel(2.5, 0.5, rng.split());
    const auto soft = channel.transmit(cw);
    const SumProductDecoder sp(code, 25);
    const MinSumDecoder ms(code, 25);
    if (sp.decode(soft).hard_bits == cw) ++sp_block_ok;
    if (ms.decode(quantize_llrs(soft)).hard_bits == cw) ++ms_block_ok;
  }
  EXPECT_GE(sp_block_ok, ms_block_ok);
  EXPECT_GT(sp_block_ok, 6);  // and it actually decodes at 2.5 dB
}

TEST(SumProductTest, ExtremeLlrsStayFinite) {
  const LdpcCode code = small_code();
  const SumProductDecoder decoder(code, 10);
  std::vector<double> llrs(240, 1000.0);  // absurdly confident inputs
  llrs[0] = -1000.0;
  const DecodeResult res = decoder.decode(llrs);
  EXPECT_EQ(res.hard_bits.size(), 240u);
  // No NaN poisoning: every decision is a valid bit.
  for (auto b : res.hard_bits) EXPECT_LE(b, 1);
}

TEST(ApportionTest, SumsExactlyAndFollowsWeights) {
  const auto counts = apportion(100, {1.0, 1.0, 2.0});
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 100);
  EXPECT_EQ(counts[2], 50);
  EXPECT_EQ(counts[0], 25);
  // Degenerate cases.
  EXPECT_EQ(apportion(0, {1.0, 2.0}), (std::vector<int>{0, 0}));
  EXPECT_THROW(apportion(10, {0.0, 0.0}), CheckError);
  EXPECT_THROW(apportion(10, {-1.0, 2.0}), CheckError);
}

TEST(ApportionTest, LargestRemainderDistribution) {
  // 10 over weights {1,1,1} -> 4/3/3 (first index wins the tie).
  const auto counts = apportion(10, {1.0, 1.0, 1.0});
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10);
  EXPECT_EQ(counts[0], 4);
}

TEST(PartitionTest, StripedCoversEverything) {
  const LdpcCode code = small_code();
  const Partition p = make_striped_partition(code, 16);
  p.validate(code);
  std::vector<int> vn_count(16, 0);
  for (int o : p.vn_owner) ++vn_count[static_cast<std::size_t>(o)];
  for (int c : vn_count) EXPECT_EQ(c, 240 / 16);
}

TEST(PartitionTest, WeightedSkewsSizes) {
  const LdpcCode code = small_code();
  std::vector<double> w(16, 1.0);
  w[0] = 4.0;
  const Partition p = make_weighted_partition(code, w, w);
  std::vector<int> vn_count(16, 0);
  for (int o : p.vn_owner) ++vn_count[static_cast<std::size_t>(o)];
  EXPECT_GT(vn_count[0], 2 * vn_count[1]);
}

TEST(PartitionTest, EdgeOpsMatchDegreesTotals) {
  const LdpcCode code = small_code();
  const Partition p = make_striped_partition(code, 8);
  const auto ops = cluster_edge_ops(code, p);
  const std::uint64_t total =
      std::accumulate(ops.begin(), ops.end(), std::uint64_t{0});
  // VN side contributes E edges, CN side contributes E edges.
  EXPECT_EQ(total, 2ull * static_cast<std::uint64_t>(code.edge_count()));
}

TEST(PartitionTest, TrafficSymmetricAndSelfFree) {
  const LdpcCode code = small_code();
  const Partition p = make_interleaved_partition(code, 6);
  const auto traffic = cluster_traffic(code, p);
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    EXPECT_EQ(traffic[i][i], 0u);
    for (std::size_t j = 0; j < traffic.size(); ++j)
      EXPECT_EQ(traffic[i][j], traffic[j][i]);
  }
}

TEST(PartitionTest, InterleavedMaximizesCut) {
  // Scattering nodes round-robin produces at least as much cross-cluster
  // traffic as contiguous striping.
  const LdpcCode code = small_code();
  auto total = [&](const Partition& p) {
    std::uint64_t sum = 0;
    for (const auto& row : cluster_traffic(code, p))
      for (std::uint64_t v : row) sum += v;
    return sum;
  };
  EXPECT_GE(total(make_interleaved_partition(code, 8)),
            total(make_striped_partition(code, 8)));
}

}  // namespace
}  // namespace renoc
