// Tests for the chip-wide DTM baselines (stop-go clock disabling and
// proportional DVFS) used in the motivation comparison.
#include <gtest/gtest.h>

#include "core/dtm_baselines.hpp"
#include "floorplan/floorplan.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

struct Env {
  Floorplan fp;
  RcNetwork net;

  Env()
      : fp(make_grid_floorplan(GridDim{4, 4}, date05_tile_area())),
        net(build_rc_network(fp, date05_hotspot_params())) {}

  double static_peak(const std::vector<double>& power) const {
    SteadyStateSolver solver(net);
    return solver.peak_die_temperature(power);
  }
};

std::vector<double> hot_map() {
  std::vector<double> power(16, 2.5);
  power[5] = 7.0;
  return power;
}

constexpr double kPeriod = 110e-6;

TEST(StopGoTest, TripAboveStaticPeakNeverThrottles) {
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const StopGoController ctrl(env.net, peak + 5.0, 1.0);
  const DtmRunResult r = ctrl.run(power, kPeriod, 200);
  EXPECT_EQ(r.throttle_events, 0);
  EXPECT_DOUBLE_EQ(r.throughput_fraction, 1.0);
  EXPECT_NEAR(r.peak_temp_c, peak, 0.1);
}

TEST(StopGoTest, EnforcesTripPoint) {
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const double trip = peak - 4.0;
  const StopGoController ctrl(env.net, trip, 1.0);
  const DtmRunResult r = ctrl.run(power, kPeriod, 2000);
  EXPECT_GT(r.throttle_events, 0);
  // Settled peak hovers at the trip (plus one control period of overshoot).
  EXPECT_LT(r.peak_temp_c, trip + 1.0);
  // And the chip paid for it with lost uptime.
  EXPECT_LT(r.throughput_fraction, 1.0);
  EXPECT_GT(r.throughput_fraction, 0.05);
}

TEST(StopGoTest, LowerTripCostsMoreThroughput) {
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const StopGoController mild(env.net, peak - 2.0, 1.0);
  const StopGoController harsh(env.net, peak - 6.0, 1.0);
  const double mild_tp =
      mild.run(power, kPeriod, 2000).throughput_fraction;
  const double harsh_tp =
      harsh.run(power, kPeriod, 2000).throughput_fraction;
  EXPECT_LT(harsh_tp, mild_tp);
}

TEST(DvfsTest, SetpointAboveStaticPeakRunsFullSpeed) {
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const DvfsController ctrl(env.net, peak + 5.0, 0.25);
  const DtmRunResult r = ctrl.run(power, kPeriod, 200);
  EXPECT_DOUBLE_EQ(r.throughput_fraction, 1.0);
}

TEST(DvfsTest, ConvergesNearSetpoint) {
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const double setpoint = peak - 5.0;
  const DvfsController ctrl(env.net, setpoint, 0.25);
  const DtmRunResult r = ctrl.run(power, kPeriod, 3000);
  // Proportional control settles a little above the setpoint but far
  // below the unthrottled peak.
  EXPECT_LT(r.peak_temp_c, peak - 2.0);
  EXPECT_LT(r.throughput_fraction, 1.0);
}

TEST(DvfsTest, GlobalThrottlingIsExpensive) {
  // The headline physics: cooling a local hotspot by ~10% of its rise via
  // global throttling costs roughly that fraction of total throughput —
  // orders of magnitude above migration's ~1.6%.
  Env env;
  const auto power = hot_map();
  const double peak = env.static_peak(power);
  const DvfsController ctrl(env.net, peak - 4.0, 0.25);
  const DtmRunResult r = ctrl.run(power, kPeriod, 3000);
  EXPECT_GT(1.0 - r.throughput_fraction, 0.05);
}

bool results_identical(const DtmRunResult& a, const DtmRunResult& b) {
  return a.peak_temp_c == b.peak_temp_c && a.mean_temp_c == b.mean_temp_c &&
         a.throughput_fraction == b.throughput_fraction &&
         a.throttle_events == b.throttle_events;
}

// Regression for the refactorize-per-call fix: the controllers now cache
// the steady factorization for the controller lifetime and the transient
// factorization per distinct period (detail::DtmIntegrator). Repeated and
// mixed-period run() calls through the warm caches must stay bit-identical
// to a fresh controller's — the cache may only skip work, never change
// arithmetic.
TEST(DtmCacheTest, RepeatedAndMixedPeriodRunsBitIdenticalToFresh) {
  Env env;
  const auto power = hot_map();
  const double trip = env.static_peak(power) - 4.0;

  const StopGoController warm_sg(env.net, trip, 1.0);
  const DtmRunResult sg_first = warm_sg.run(power, kPeriod, 300);
  const DtmRunResult sg_other = warm_sg.run(power, 2 * kPeriod, 300);
  const DtmRunResult sg_back = warm_sg.run(power, kPeriod, 300);

  EXPECT_TRUE(results_identical(sg_first, sg_back));
  EXPECT_TRUE(results_identical(
      sg_first, StopGoController(env.net, trip, 1.0).run(power, kPeriod, 300)));
  EXPECT_TRUE(results_identical(
      sg_other,
      StopGoController(env.net, trip, 1.0).run(power, 2 * kPeriod, 300)));

  const DvfsController warm_dv(env.net, trip, 0.25);
  const DtmRunResult dv_first = warm_dv.run(power, kPeriod, 300);
  const DtmRunResult dv_other = warm_dv.run(power, 2 * kPeriod, 300);
  const DtmRunResult dv_back = warm_dv.run(power, kPeriod, 300);

  EXPECT_TRUE(results_identical(dv_first, dv_back));
  EXPECT_TRUE(results_identical(
      dv_first, DvfsController(env.net, trip, 0.25).run(power, kPeriod, 300)));
  EXPECT_TRUE(results_identical(
      dv_other,
      DvfsController(env.net, trip, 0.25).run(power, 2 * kPeriod, 300)));
}

TEST(DtmValidationTest, BadParamsRejected) {
  Env env;
  EXPECT_THROW(StopGoController(env.net, 30.0, 1.0), CheckError);  // < amb
  EXPECT_THROW(StopGoController(env.net, 80.0, 0.0), CheckError);
  EXPECT_THROW(DvfsController(env.net, 80.0, 0.0), CheckError);
  EXPECT_THROW(DvfsController(env.net, 80.0, 0.2, 0.0), CheckError);
  const StopGoController ok(env.net, 80.0, 1.0);
  EXPECT_THROW(ok.run(hot_map(), -1.0, 100), CheckError);
  EXPECT_THROW(ok.run(hot_map(), kPeriod, 2), CheckError);
}

}  // namespace
}  // namespace renoc
