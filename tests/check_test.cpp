// Edge-case coverage for util/check.hpp: nested RENOC_CHECK_MSG streaming,
// exact exception message format, and release-mode (NDEBUG) behavior.
//
// This TU deliberately defines NDEBUG before any include: RENOC_CHECK is
// documented as always active, so the macros must keep throwing in exactly
// the configuration where assert() compiles away.
#ifndef NDEBUG
#define NDEBUG 1
#endif

#include <gtest/gtest.h>

#include <cassert>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace renoc {
namespace {

// A helper whose body runs a (passing) RENOC_CHECK_MSG. Called from inside
// another RENOC_CHECK_MSG's streamed message, it exercises macro hygiene:
// the inner expansion's ostringstream must not collide with the outer one.
std::string describe(int v) {
  RENOC_CHECK_MSG(v >= 0, "describe() needs v >= 0, got " << v);
  std::ostringstream os;
  os << "v=" << v;
  return os.str();
}

TEST(CheckNdebugTest, ChecksFireWithNdebugDefined) {
#ifndef NDEBUG
  FAIL() << "this TU must compile with NDEBUG defined";
#endif
  EXPECT_THROW(RENOC_CHECK(false), CheckError);
  EXPECT_THROW(RENOC_CHECK_MSG(false, "still active"), CheckError);
}

TEST(CheckNdebugTest, AssertIsCompiledOutButChecksAreNot) {
  // Under NDEBUG, assert(false) is a no-op; reaching the next line proves it.
  assert(false);
  EXPECT_THROW(RENOC_CHECK(1 == 2), CheckError);
}

TEST(CheckMessageTest, FormatIsStable) {
  // Tools and tests parse these messages; pin the exact layout:
  //   RENOC_CHECK failed: (<expr>) at <file>:<line>
  try {
    RENOC_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    std::ostringstream expected;
    expected << "RENOC_CHECK failed: (2 + 2 == 5) at " << __FILE__ << ":";
    EXPECT_EQ(std::string(e.what()).rfind(expected.str(), 0), 0u)
        << "got: " << e.what();
  }
}

TEST(CheckMessageTest, MessageVariantAppendsDashSeparatedText) {
  try {
    RENOC_CHECK_MSG(false, "ctx " << 7 << '/' << 2.5);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("RENOC_CHECK failed: (false) at "), std::string::npos)
        << what;
    // The streamed message is appended after an em-dash separator.
    EXPECT_NE(what.find(" \xe2\x80\x94 ctx 7/2.5"), std::string::npos) << what;
  }
}

TEST(CheckMessageTest, EmptyStreamedMessageOmitsSeparator) {
  try {
    RENOC_CHECK_MSG(false, "");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_EQ(std::string(e.what()).find("\xe2\x80\x94"), std::string::npos)
        << e.what();
  }
}

TEST(CheckNestingTest, PassingNestedCheckInsideStreamedMessage) {
  // The message expression itself calls a function that runs its own
  // RENOC_CHECK_MSG; the inner check passes and the outer one fires.
  try {
    RENOC_CHECK_MSG(false, "outer " << describe(3) << " tail");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("outer v=3 tail"), std::string::npos) << what;
  }
}

TEST(CheckNestingTest, FailingNestedCheckWinsOverOuter) {
  // When evaluating the outer message triggers a failing inner check, the
  // inner CheckError must propagate with the inner diagnostic intact.
  try {
    RENOC_CHECK_MSG(false, "outer-marker " << describe(-1));
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("describe() needs v >= 0, got -1"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("outer-marker"), std::string::npos) << what;
  }
}

TEST(CheckNestingTest, LexicallyNestedChecksDoNotCollide) {
  // Two RENOC_CHECK_MSG expansions in the same scope chain: the inner
  // do-while introduces its own scope, so the hygiene variable may shadow
  // but must not misbind.
  int outer_evals = 0;
  auto run = [&](bool inner_ok) {
    RENOC_CHECK_MSG(
        [&] {
          ++outer_evals;
          RENOC_CHECK_MSG(inner_ok, "inner gate");
          return true;
        }(),
        "outer gate");
  };
  EXPECT_NO_THROW(run(true));
  EXPECT_THROW(run(false), CheckError);
  EXPECT_EQ(outer_evals, 2);
}

TEST(CheckErrorTest, IsALogicError) {
  try {
    RENOC_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("RENOC_CHECK failed"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace renoc
