// Link-coverage smoke test: instantiates one object from each of the eight
// src/ modules (core, floorplan, ldpc, mapping, noc, power, thermal, util),
// touching at least one out-of-line symbol per module so that any future
// break in a module's compilation or linkage fails this suite immediately.
#include <gtest/gtest.h>

#include "core/chip_config.hpp"
#include "floorplan/floorplan.hpp"
#include "ldpc/code.hpp"
#include "mapping/placer.hpp"
#include "noc/stats.hpp"
#include "power/energy_model.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

TEST(SmokeBuildTest, OneObjectFromEveryModuleLinks) {
  // util
  Rng rng(7);
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  EXPECT_EQ(m.rows(), 2u);

  // floorplan
  const GridDim dim{2, 2};
  const Floorplan fp = make_grid_floorplan(dim, date05_tile_area());
  EXPECT_EQ(fp.block_count(), 4);

  // thermal
  const HotSpotParams hotspot = date05_hotspot_params();
  const RcNetwork net = build_rc_network(fp, hotspot);
  const SteadyStateSolver solver(net);
  EXPECT_GT(net.node_count(), fp.block_count());

  // mapping
  PlacerOptions placer_options;
  placer_options.iterations = 1;
  const ThermalAwarePlacer placer(solver, dim, placer_options);
  (void)placer;

  // ldpc
  const LdpcCode code = LdpcCode::make_regular(12, 2, 3, rng);
  EXPECT_EQ(code.n(), 12);
  EXPECT_EQ(code.m(), 8);

  // noc
  NetworkStats stats(dim.node_count());
  stats.tile(0).buffer_writes += 1;
  EXPECT_EQ(stats.total().buffer_writes, 1u);

  // power
  const EnergyModel energy((EnergyParams()));
  EXPECT_GT(energy.params().e_link, 0.0);

  // core
  const ChipConfig cfg = config_A();
  EXPECT_FALSE(cfg.name.empty());
}

}  // namespace
}  // namespace renoc
