// Tests for adaptive migration-function selection (the paper's runtime
// function-switching extension).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/adaptive_policy.hpp"
#include "floorplan/floorplan.hpp"
#include "power/power_map.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

constexpr double kPeriod = 109.3e-6;

struct Env {
  Floorplan fp;
  RcNetwork net;
  GridDim dim;

  explicit Env(int side)
      : fp(make_grid_floorplan(GridDim{side, side}, date05_tile_area())),
        net(build_rc_network(fp, date05_hotspot_params())),
        dim{side, side} {}

  /// Steady-state rise vector for a die power map.
  std::vector<double> steady_state(const std::vector<double>& power) const {
    SteadyStateSolver solver(net);
    return solver.solve_die_power(power);
  }
};

TEST(AdaptivePolicyTest, CandidateSetIncludesIdentityAndSchemes) {
  Env env(4);
  const AdaptivePolicy policy(env.net, env.dim,
                              AdaptiveObjective::kPredictivePeak, kPeriod);
  // identity + the five Figure-1 transforms.
  EXPECT_EQ(policy.candidates().size(), 6u);
}

TEST(AdaptivePolicyTest, RotationDroppedOnNonSquare) {
  const Floorplan fp = make_grid_floorplan(GridDim{4, 2}, 4e-6);
  const RcNetwork net = build_rc_network(fp, date05_hotspot_params());
  const AdaptivePolicy policy(net, GridDim{4, 2},
                              AdaptiveObjective::kPredictivePeak, kPeriod);
  for (const Transform& t : policy.candidates())
    EXPECT_NE(t.kind, TransformKind::kRotation);
}

TEST(AdaptivePolicyTest, UniformPowerPrefersNoMove) {
  // With a perfectly uniform map every transform predicts the same peak;
  // identity is listed first and wins ties — no pointless migrations.
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kPredictivePeak, kPeriod);
  const std::vector<double> uniform(16, 3.0);
  const Transform t = policy.choose(uniform, env.steady_state(uniform));
  EXPECT_EQ(t.kind, TransformKind::kIdentity);
}

TEST(AdaptivePolicyTest, PredictiveMovesEdgeHotspot) {
  // One hot edge tile at its steady state: staying keeps it hot, so the
  // policy must choose a transform that relocates it.
  Env env(5);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kPredictivePeak, kPeriod);
  std::vector<double> power(25, 1.0);
  const int hot = coord_to_index({1, 2}, env.dim);
  power[static_cast<std::size_t>(hot)] = 8.0;
  const std::vector<double> state = env.steady_state(power);

  const Transform t = policy.choose(power, state);
  EXPECT_NE(t.kind, TransformKind::kIdentity);
  const auto perm = t.permutation(env.dim);
  EXPECT_NE(perm[static_cast<std::size_t>(hot)], hot)
      << "chosen transform must move the hotspot";
  // And its predicted peak beats staying put.
  EXPECT_LT(policy.predicted_peak(t, power, state),
            policy.predicted_peak(Transform{TransformKind::kIdentity, 0},
                                  power, state));
}

TEST(AdaptivePolicyTest, PredictiveAvoidsRotationForCenterHotspot) {
  // A central hotspot on an odd mesh: rotation/mirror leave it in place,
  // so the predictive policy must pick a translation.
  Env env(5);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kPredictivePeak, kPeriod);
  std::vector<double> power(25, 1.0);
  power[12] = 8.0;  // center
  const Transform t = policy.choose(power, env.steady_state(power));
  EXPECT_TRUE(t.kind == TransformKind::kShiftX ||
              t.kind == TransformKind::kShiftXY)
      << "got " << to_string(t.kind);
}

TEST(AdaptivePolicyTest, OrbitAverageNeverPicksIdentityOnImbalance) {
  // Identity's orbit-average is the static map — the worst possible score
  // whenever any transform can average the imbalance away.
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kOrbitAverage, kPeriod);
  std::vector<double> power(16, 1.0);
  power[coord_to_index({0, 0}, env.dim)] = 6.0;
  const Transform t = policy.choose(power, env.steady_state(power));
  EXPECT_NE(t.kind, TransformKind::kIdentity);
}

TEST(AdaptivePolicyTest, OrbitAverageAvoidsFixedPointSchemesOnCenterHotspot) {
  // Center hotspot on 5x5: rotation/mirror orbits leave the center's
  // power untouched, so the orbit-average objective must pick a
  // translation (the paper's odd-mesh result, discovered at runtime).
  Env env(5);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kOrbitAverage, kPeriod);
  std::vector<double> power(25, 1.0);
  power[12] = 8.0;
  const Transform t = policy.choose(power, env.steady_state(power));
  EXPECT_TRUE(t.kind == TransformKind::kShiftX ||
              t.kind == TransformKind::kShiftXY)
      << "got " << to_string(t.kind);
}

TEST(AdaptivePolicyTest, OrbitAverageIsStableAcrossOrbitSteps) {
  // Once a transform is chosen, re-evaluating from any placement along
  // its orbit must keep choosing the same transform (the policy behaves
  // like the fixed scheme it selected).
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kOrbitAverage, kPeriod);
  std::vector<double> base(16, 1.0);
  for (int x = 0; x < 4; ++x)
    base[static_cast<std::size_t>(coord_to_index({x, 0}, env.dim))] = 4.0;
  const auto state = env.steady_state(base);
  const Transform first = policy.choose(base, state);
  ASSERT_NE(first.kind, TransformKind::kIdentity);
  std::vector<int> acc = identity_permutation(16);
  for (int step = 0; step < 4; ++step) {
    acc = compose_permutations(acc, first.permutation(env.dim));
    const auto power = apply_permutation(base, acc);
    const Transform again = policy.choose(power, env.steady_state(power));
    EXPECT_EQ(again.kind, first.kind) << "at orbit step " << step;
  }
}

TEST(AdaptivePolicyTest, SensorObjectiveSendsPowerToColdTiles) {
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kCoolestHistory, kPeriod);
  // Hot top row in both power and temperature; the policy should flip or
  // rotate the workload toward the cold bottom.
  std::vector<double> power(16, 1.0);
  for (int x = 0; x < 4; ++x)
    power[static_cast<std::size_t>(coord_to_index({x, 3}, env.dim))] = 5.0;
  const std::vector<double> state = env.steady_state(power);

  const Transform t = policy.choose(power, state);
  const auto moved = apply_permutation(power, t.permutation(env.dim));
  double before = 0.0, after = 0.0;
  for (int i = 0; i < 16; ++i) {
    before += power[static_cast<std::size_t>(i)] *
              state[static_cast<std::size_t>(i)];
    after += moved[static_cast<std::size_t>(i)] *
             state[static_cast<std::size_t>(i)];
  }
  EXPECT_LT(after, before);
}

TEST(AdaptivePolicyTest, CustomCandidates) {
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kPredictivePeak, kPeriod);
  policy.set_candidates({Transform{TransformKind::kMirrorY, 0}});
  std::vector<double> power(16, 1.0);
  power[0] = 4.0;
  EXPECT_EQ(policy.choose(power, env.steady_state(power)).kind,
            TransformKind::kMirrorY);
  EXPECT_THROW(policy.set_candidates({}), CheckError);
}

TEST(AdaptivePolicyTest, BatchedScoresBitMatchScalarLookahead) {
  // candidate_scores evaluates every candidate's lookahead trajectory as
  // one multi-RHS batch; each score must equal the scalar predicted_peak
  // bit for bit. Side 4 exercises the dense LU backend (58 nodes), side 5
  // the sparse LDL^T (85 nodes).
  for (const int side : {4, 5}) {
    Env env(side);
    AdaptivePolicy policy(env.net, env.dim,
                          AdaptiveObjective::kPredictivePeak, kPeriod);
    std::vector<double> power(
        static_cast<std::size_t>(side * side), 1.0);
    power[static_cast<std::size_t>(side + 1)] = 8.0;
    const std::vector<double> state = env.steady_state(power);

    const std::vector<double> batch = policy.candidate_scores(power, state);
    ASSERT_EQ(batch.size(), policy.candidates().size());
    for (std::size_t j = 0; j < policy.candidates().size(); ++j)
      EXPECT_EQ(batch[j],
                policy.predicted_peak(policy.candidates()[j], power, state))
          << "side " << side << " candidate " << j;

    // choose() is the argmin of the same scores.
    const Transform chosen = policy.choose(power, state);
    std::size_t best = 0;
    for (std::size_t j = 1; j < batch.size(); ++j)
      if (batch[j] < batch[best]) best = j;
    EXPECT_EQ(chosen.kind, policy.candidates()[best].kind) << "side " << side;
  }
}

TEST(AdaptivePolicyTest, CandidateScoresCoverAllObjectives) {
  Env env(4);
  std::vector<double> power(16, 1.0);
  power[3] = 5.0;
  const std::vector<double> state = env.steady_state(power);
  for (const AdaptiveObjective objective :
       {AdaptiveObjective::kPredictivePeak,
        AdaptiveObjective::kCoolestHistory,
        AdaptiveObjective::kOrbitAverage}) {
    AdaptivePolicy policy(env.net, env.dim, objective, kPeriod);
    const std::vector<double> scores = policy.candidate_scores(power, state);
    ASSERT_EQ(scores.size(), policy.candidates().size())
        << to_string(objective);
    // Scores are finite and choose() picks their first minimum.
    const Transform chosen = policy.choose(power, state);
    std::size_t best = 0;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      EXPECT_TRUE(std::isfinite(scores[j])) << to_string(objective);
      if (scores[j] < scores[best]) best = j;
    }
    EXPECT_EQ(chosen.kind, policy.candidates()[best].kind)
        << to_string(objective);
  }
}

TEST(AdaptivePolicyTest, InputValidation) {
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim,
                        AdaptiveObjective::kPredictivePeak, kPeriod);
  const std::vector<double> power(16, 1.0);
  EXPECT_THROW(policy.choose(std::vector<double>(9, 1.0),
                             env.steady_state(power)),
               CheckError);
  EXPECT_THROW(policy.choose(power, std::vector<double>(5, 0.0)),
               CheckError);
  EXPECT_THROW(AdaptivePolicy(env.net, env.dim,
                              AdaptiveObjective::kPredictivePeak, -1.0),
               CheckError);
}

TEST(AdaptiveSimulationTest, DeterministicAndMigratesOnImbalance) {
  // The library closed-loop run (run_adaptive_simulation, extracted from
  // the adaptive bench): bit-identical across repeated runs, and a hot
  // corner under the orbit-average objective must trigger migrations that
  // beat the static steady peak.
  Env env(4);
  std::vector<double> power(16, 2.0);
  power[0] = 7.0;

  std::map<TransformKind, std::vector<double>> energy_maps;
  for (MigrationScheme s : figure1_schemes())
    energy_maps[transform_of(s).kind] = std::vector<double>(16, 1e-7);

  AdaptiveSimConfig cfg;
  cfg.period_s = kPeriod;
  cfg.periods = 40;

  AdaptivePolicy p1(env.net, env.dim, AdaptiveObjective::kOrbitAverage,
                    kPeriod);
  AdaptivePolicy p2(env.net, env.dim, AdaptiveObjective::kOrbitAverage,
                    kPeriod);
  const AdaptiveSimResult r1 =
      run_adaptive_simulation(env.net, env.dim, p1, power, energy_maps, cfg);
  const AdaptiveSimResult r2 =
      run_adaptive_simulation(env.net, env.dim, p2, power, energy_maps, cfg);

  EXPECT_EQ(r1.settled_peak_c, r2.settled_peak_c);
  EXPECT_EQ(r1.choices, r2.choices);
  EXPECT_EQ(r1.migrations, r2.migrations);
  EXPECT_GT(r1.migrations, 0);

  SteadyStateSolver steady(env.net);
  EXPECT_LT(r1.settled_peak_c, steady.peak_die_temperature(power));

  int counted = 0;
  for (const auto& [kind, count] : r1.choices) counted += count;
  EXPECT_EQ(counted, cfg.periods);
}

TEST(AdaptiveSimulationTest, InputValidation) {
  Env env(4);
  AdaptivePolicy policy(env.net, env.dim, AdaptiveObjective::kOrbitAverage,
                        kPeriod);
  const std::vector<double> power(16, 2.0);
  AdaptiveSimConfig bad;
  bad.period_s = 0.0;
  EXPECT_THROW(
      run_adaptive_simulation(env.net, env.dim, policy, power, {}, bad),
      CheckError);
  bad.period_s = kPeriod;
  bad.periods = 2;
  EXPECT_THROW(
      run_adaptive_simulation(env.net, env.dim, policy, power, {}, bad),
      CheckError);
}

}  // namespace
}  // namespace renoc
