// Tests for grid coordinates and physical floorplans.
#include <gtest/gtest.h>

#include <cmath>

#include "floorplan/floorplan.hpp"
#include "floorplan/grid.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace renoc {
namespace {

TEST(GridTest, IndexRoundTrip) {
  const GridDim dim{4, 5};
  for (int i = 0; i < dim.node_count(); ++i) {
    const GridCoord c = index_to_coord(i, dim);
    EXPECT_EQ(coord_to_index(c, dim), i);
  }
}

TEST(GridTest, RowMajorConvention) {
  const GridDim dim{4, 4};
  EXPECT_EQ(coord_to_index({0, 0}, dim), 0);
  EXPECT_EQ(coord_to_index({3, 0}, dim), 3);
  EXPECT_EQ(coord_to_index({0, 1}, dim), 4);
  EXPECT_EQ(coord_to_index({3, 3}, dim), 15);
}

TEST(GridTest, OutOfBoundsChecked) {
  const GridDim dim{3, 3};
  EXPECT_THROW(coord_to_index({3, 0}, dim), CheckError);
  EXPECT_THROW(coord_to_index({0, -1}, dim), CheckError);
  EXPECT_THROW(index_to_coord(9, dim), CheckError);
  EXPECT_FALSE(in_bounds({-1, 0}, dim));
  EXPECT_TRUE(in_bounds({2, 2}, dim));
}

TEST(GridTest, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
  EXPECT_EQ(manhattan({3, 1}, {1, 3}), 4);
}

TEST(FloorplanTest, GridFloorplanGeometry) {
  const GridDim dim{4, 4};
  const Floorplan fp = make_grid_floorplan(dim, date05_tile_area());
  EXPECT_EQ(fp.block_count(), 16);
  // Every tile has the paper's 4.36 mm^2 area.
  for (int i = 0; i < fp.block_count(); ++i)
    EXPECT_NEAR(fp.block(i).area(), units::mm2(4.36), 1e-12);
  // Die is gap-free: total block area equals the bounding box.
  EXPECT_NEAR(fp.total_block_area(), fp.die_area(), 1e-10);
  // 4x4 of 4.36mm^2 tiles -> ~8.35 mm on a side.
  EXPECT_NEAR(fp.die_width(), 4 * std::sqrt(units::mm2(4.36)), 1e-9);
}

TEST(FloorplanTest, GridAdjacencyCount) {
  // A WxH grid has W*(H-1) horizontal-edge and (W-1)*H vertical-edge
  // adjacencies.
  const GridDim dim{4, 5};
  const Floorplan fp = make_grid_floorplan(dim, 1e-6);
  const int expected = 4 * 4 + 3 * 5;
  EXPECT_EQ(static_cast<int>(fp.adjacencies().size()), expected);
}

TEST(FloorplanTest, AdjacencySharedLengthIsTileSide) {
  const GridDim dim{3, 3};
  const double area = 4e-6;
  const Floorplan fp = make_grid_floorplan(dim, area);
  const double side = std::sqrt(area);
  for (const Adjacency& adj : fp.adjacencies()) {
    EXPECT_NEAR(adj.shared_len, side, 1e-12);
    EXPECT_LT(adj.a, adj.b);
  }
}

TEST(FloorplanTest, AdjacencyMatchesMeshNeighbours) {
  const GridDim dim{4, 4};
  const Floorplan fp = make_grid_floorplan(dim, 1e-6);
  for (const Adjacency& adj : fp.adjacencies()) {
    const GridCoord a = index_to_coord(adj.a, dim);
    const GridCoord b = index_to_coord(adj.b, dim);
    EXPECT_EQ(manhattan(a, b), 1)
        << "blocks " << adj.a << "," << adj.b << " are not mesh neighbours";
    // horizontal flag means side-by-side in x.
    EXPECT_EQ(adj.horizontal, a.y == b.y);
  }
}

TEST(FloorplanTest, RejectsEmptyAndDegenerate) {
  EXPECT_THROW(Floorplan({}), CheckError);
  EXPECT_THROW(Floorplan({Block{"z", 0, 0, 0.0, 1.0}}), CheckError);
}

TEST(FloorplanTest, CustomNonUniformPlan) {
  // An L-shaped two-block plan: 2x1 next to 1x1 sharing a 1m edge.
  std::vector<Block> blocks{{"big", 0, 0, 1, 2}, {"small", 1, 0, 1, 1}};
  const Floorplan fp{std::move(blocks)};
  ASSERT_EQ(fp.adjacencies().size(), 1u);
  EXPECT_NEAR(fp.adjacencies()[0].shared_len, 1.0, 1e-12);
  EXPECT_TRUE(fp.adjacencies()[0].horizontal);
  EXPECT_NEAR(fp.die_width(), 2.0, 1e-12);
  EXPECT_NEAR(fp.die_height(), 2.0, 1e-12);
}

}  // namespace
}  // namespace renoc
