// Tests for the Table-1 transformation functions and permutation algebra:
// exact formula checks, bijectivity across mesh sizes, group orders, fixed
// points (the odd-mesh center), and composition/inversion identities.
#include <gtest/gtest.h>

#include <set>

#include "core/transform.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

TEST(TransformTest, Table1RotationFormula) {
  // Table 1: Rotation -> (N-1-Y, X).
  const GridDim dim{4, 4};
  const Transform rot{TransformKind::kRotation, 0};
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y) {
      const GridCoord out = rot.apply({x, y}, dim);
      EXPECT_EQ(out.x, 3 - y);
      EXPECT_EQ(out.y, x);
    }
}

TEST(TransformTest, Table1MirrorFormula) {
  // Table 1: X Mirroring -> (N-1-X, Y).
  const GridDim dim{5, 5};
  const Transform mir{TransformKind::kMirrorX, 0};
  for (int x = 0; x < 5; ++x)
    for (int y = 0; y < 5; ++y) {
      const GridCoord out = mir.apply({x, y}, dim);
      EXPECT_EQ(out.x, 4 - x);
      EXPECT_EQ(out.y, y);
    }
}

TEST(TransformTest, Table1TranslationFormula) {
  // Table 1: X Translation -> (X + Offset, Y), modulo the mesh width.
  const GridDim dim{4, 4};
  const Transform shift{TransformKind::kShiftX, 1};
  EXPECT_EQ(shift.apply({0, 2}, dim), (GridCoord{1, 2}));
  EXPECT_EQ(shift.apply({3, 2}, dim), (GridCoord{0, 2}));
  const Transform shift3{TransformKind::kShiftX, 3};
  EXPECT_EQ(shift3.apply({2, 1}, dim), (GridCoord{1, 1}));
}

TEST(TransformTest, RotationRequiresSquare) {
  const Transform rot{TransformKind::kRotation, 0};
  EXPECT_THROW(rot.apply({0, 0}, GridDim{4, 5}), CheckError);
  EXPECT_NO_THROW(rot.apply({0, 0}, GridDim{5, 5}));
}

struct KindCase {
  TransformKind kind;
  int offset;
  int side;
  int expected_order;
};

class TransformOrderTest : public ::testing::TestWithParam<KindCase> {};

TEST_P(TransformOrderTest, BijectionAndGroupOrder) {
  const KindCase& tc = GetParam();
  const GridDim dim{tc.side, tc.side};
  const Transform t{tc.kind, tc.offset};

  // Bijectivity: permutation covers every tile exactly once.
  const std::vector<int> perm = t.permutation(dim);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(static_cast<int>(seen.size()), dim.node_count());

  // Group order.
  EXPECT_EQ(orbit_length(t, dim), tc.expected_order);

  // Orbit permutations: first is identity, all distinct.
  const auto orbit = orbit_permutations(t, dim);
  EXPECT_EQ(static_cast<int>(orbit.size()), tc.expected_order);
  EXPECT_EQ(orbit[0], identity_permutation(dim.node_count()));
  std::set<std::vector<int>> distinct(orbit.begin(), orbit.end());
  EXPECT_EQ(distinct.size(), orbit.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TransformOrderTest,
    ::testing::Values(
        KindCase{TransformKind::kIdentity, 0, 4, 1},
        KindCase{TransformKind::kRotation, 0, 4, 4},
        KindCase{TransformKind::kRotation, 0, 5, 4},
        KindCase{TransformKind::kRotation, 0, 6, 4},
        KindCase{TransformKind::kMirrorX, 0, 4, 2},
        KindCase{TransformKind::kMirrorX, 0, 5, 2},
        KindCase{TransformKind::kMirrorY, 0, 5, 2},
        KindCase{TransformKind::kMirrorXY, 0, 4, 2},
        KindCase{TransformKind::kMirrorXY, 0, 5, 2},
        KindCase{TransformKind::kShiftX, 1, 4, 4},
        KindCase{TransformKind::kShiftX, 1, 5, 5},
        KindCase{TransformKind::kShiftX, 2, 4, 2},   // gcd shortening
        KindCase{TransformKind::kShiftX, 2, 5, 5},
        KindCase{TransformKind::kShiftXY, 1, 4, 4},
        KindCase{TransformKind::kShiftXY, 1, 5, 5},
        KindCase{TransformKind::kShiftXY, 1, 6, 6}));

TEST(TransformTest, FixedPointsEvenMeshNoneOddMeshCenter) {
  // The paper: "In the odd-dimensioned test cases, both the rotational and
  // mirroring migration functions ignore the central PE."
  const Transform rot{TransformKind::kRotation, 0};
  const Transform mxy{TransformKind::kMirrorXY, 0};
  EXPECT_TRUE(rot.fixed_points(GridDim{4, 4}).empty());
  EXPECT_TRUE(mxy.fixed_points(GridDim{4, 4}).empty());

  const auto rot5 = rot.fixed_points(GridDim{5, 5});
  ASSERT_EQ(rot5.size(), 1u);
  EXPECT_EQ(rot5[0], (GridCoord{2, 2}));
  const auto mxy5 = mxy.fixed_points(GridDim{5, 5});
  ASSERT_EQ(mxy5.size(), 1u);
  EXPECT_EQ(mxy5[0], (GridCoord{2, 2}));

  // X mirror fixes the whole center column on odd meshes.
  const Transform mx{TransformKind::kMirrorX, 0};
  EXPECT_EQ(mx.fixed_points(GridDim{5, 5}).size(), 5u);
  // Translations have no fixed points — the reason they win on odd meshes.
  const Transform sx{TransformKind::kShiftX, 1};
  EXPECT_TRUE(sx.fixed_points(GridDim{5, 5}).empty());
  const Transform sxy{TransformKind::kShiftXY, 1};
  EXPECT_TRUE(sxy.fixed_points(GridDim{5, 5}).empty());
}

TEST(TransformTest, RightShiftPreservesRowMembership) {
  // The mechanism behind right-shift's poor Figure-1 showing: it permutes
  // within rows, so per-row power totals can never change.
  const GridDim dim{5, 5};
  const Transform sx{TransformKind::kShiftX, 1};
  const std::vector<int> perm = sx.permutation(dim);
  for (int i = 0; i < dim.node_count(); ++i) {
    EXPECT_EQ(index_to_coord(perm[static_cast<std::size_t>(i)], dim).y,
              index_to_coord(i, dim).y);
  }
}

TEST(TransformTest, ComposeAndInvert) {
  const GridDim dim{4, 4};
  const Transform rot{TransformKind::kRotation, 0};
  const std::vector<int> p = rot.permutation(dim);
  const std::vector<int> inv = invert_permutation(p);
  EXPECT_EQ(compose_permutations(p, inv), identity_permutation(16));
  EXPECT_EQ(compose_permutations(inv, p), identity_permutation(16));
  // Rotation composed four times is the identity.
  std::vector<int> acc = identity_permutation(16);
  for (int i = 0; i < 4; ++i) acc = compose_permutations(acc, p);
  EXPECT_EQ(acc, identity_permutation(16));
}

TEST(TransformTest, MirrorXySquaredIsIdentityEverywhere) {
  for (int side = 2; side <= 7; ++side) {
    const GridDim dim{side, side};
    const Transform mxy{TransformKind::kMirrorXY, 0};
    const auto p = mxy.permutation(dim);
    EXPECT_EQ(compose_permutations(p, p),
              identity_permutation(dim.node_count()))
        << "side " << side;
  }
}

TEST(TransformTest, RotationOfRotationIsMirrorXY) {
  // R^2 = point reflection = XY mirror, a classic dihedral identity that
  // pins the rotation direction convention.
  const GridDim dim{5, 5};
  const auto r = Transform{TransformKind::kRotation, 0}.permutation(dim);
  const auto m = Transform{TransformKind::kMirrorXY, 0}.permutation(dim);
  EXPECT_EQ(compose_permutations(r, r), m);
}

TEST(SchemeTest, SchemeTransformsAndNames) {
  EXPECT_EQ(transform_of(MigrationScheme::kRotation).kind,
            TransformKind::kRotation);
  EXPECT_EQ(transform_of(MigrationScheme::kShiftRight).kind,
            TransformKind::kShiftX);
  EXPECT_EQ(transform_of(MigrationScheme::kShiftRight).offset, 1);
  EXPECT_EQ(figure1_schemes().size(), 5u);
  EXPECT_STREQ(to_string(MigrationScheme::kShiftXY), "X-Y Shift");
}

TEST(PermutationHelpersTest, IdentityProperties) {
  const auto id = identity_permutation(9);
  EXPECT_EQ(compose_permutations(id, id), id);
  EXPECT_EQ(invert_permutation(id), id);
}

}  // namespace
}  // namespace renoc
