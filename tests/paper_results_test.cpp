// Pins the paper-results pipeline at smoke scale: the Figure-1 peak
// reductions, the period-sweep throughput penalty (analytic halt model vs
// actually streaming blocks through the reconfigurable system), and the
// resolution ablation's scheme ordering. These are the headline numbers
// the PAPER_*.json goldens freeze; the test keeps them anchored to the
// engine layer itself so a golden refresh that silently changes the
// physics cannot pass unnoticed.
//
// The pinned constants are the smoke-scale values (code_n 510/600,
// 4 LDPC iterations, 4000 placer iterations) — the same scaling
// bench/paper_bench.hpp uses for --smoke runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/chip_config.hpp"
#include "core/experiment.hpp"
#include "core/experiment_sweep.hpp"
#include "core/reconfigurable_system.hpp"

namespace renoc {
namespace {

// Mirror of bench::smoke_scaled (bench/paper_bench.hpp): the smoke-mode
// scaling every paper bench applies.
ChipConfig smoke_scaled(ChipConfig cfg) {
  cfg.workload.code_n = cfg.dim.width == 4 ? 510 : 600;
  cfg.ldpc_params.iterations = 4;
  cfg.placer.iterations = 4000;
  return cfg;
}

TEST(PaperResultsTest, Figure1SmokeReductionsPinned) {
  // Configuration A (4x4): rotation is the strongest scheme at smoke
  // scale, X-Y shift close behind at less than half the throughput cost.
  {
    ExperimentDriver driver(smoke_scaled(config_A()));
    driver.prepare();
    const std::vector<SchemeEvaluation> evals = driver.scheme_study(
        {MigrationScheme::kRotation, MigrationScheme::kShiftXY});
    ASSERT_EQ(evals.size(), 2u);
    const SchemeEvaluation& rot = evals[0];
    const SchemeEvaluation& shift = evals[1];

    EXPECT_NEAR(driver.base_peak_temp_c(), 85.44, 0.05);
    EXPECT_NEAR(rot.reduction_c, 5.43, 0.05);
    EXPECT_NEAR(shift.reduction_c, 4.56, 0.05);
    EXPECT_GT(rot.reduction_c, shift.reduction_c);
    // Rotation's four-phase migration costs roughly twice the shift's.
    EXPECT_NEAR(rot.throughput_penalty, 0.0100, 0.001);
    EXPECT_NEAR(shift.throughput_penalty, 0.0046, 0.001);
    EXPECT_TRUE(rot.thermal_converged);
    EXPECT_TRUE(shift.thermal_converged);
  }

  // Configuration C (5x5, odd mesh): X-Y shift leads.
  {
    ExperimentDriver driver(smoke_scaled(config_C()));
    driver.prepare();
    const std::vector<SchemeEvaluation> evals =
        driver.scheme_study({MigrationScheme::kShiftXY});
    ASSERT_EQ(evals.size(), 1u);
    EXPECT_NEAR(driver.base_peak_temp_c(), 75.17, 0.05);
    EXPECT_NEAR(evals[0].reduction_c, 4.47, 0.05);
  }
}

TEST(PaperResultsTest, PeriodSweepStreamedPenaltyMatchesModel) {
  // The analytic halt model (t_mig / (t_mig + period)) must agree with
  // the penalty measured by streaming real blocks through the
  // ReconfigurableLdpcSystem with interleaved migrations, and the
  // penalty must fall roughly as 1/period.
  const ChipConfig cfg = smoke_scaled(config_A());
  ExperimentDriver driver(cfg);
  driver.prepare();

  const int blocks_per_period[] = {1, 4, 8};
  std::vector<double> periods;
  for (int blocks : blocks_per_period)
    periods.push_back(blocks * driver.block_seconds());
  const std::vector<SchemeEvaluation> evals =
      driver.scheme_study({MigrationScheme::kRotation}, periods);
  ASSERT_EQ(evals.size(), 3u);

  for (std::size_t i = 0; i < evals.size(); ++i) {
    const int bpp = blocks_per_period[i];
    ReconfigurableLdpcSystem migrating(cfg, MigrationScheme::kRotation);
    const StreamResult res = migrating.run_stream(2 * bpp, bpp);
    ASSERT_TRUE(res.all_blocks_match_golden);
    ASSERT_EQ(res.migrations, 1);
    const double mig = static_cast<double>(res.migration_cycles);
    const double period =
        static_cast<double>(bpp) *
        static_cast<double>(migrating.block_cycles());
    const double streamed = mig / (mig + period);

    // The model abstracts pipeline edge effects; agreement is within a
    // few percent relative (exact for the measured smoke configs at the
    // shift scheme, <1% for rotation).
    EXPECT_NEAR(evals[i].throughput_penalty, streamed,
                0.05 * streamed)
        << "blocks/period = " << bpp;
  }
  // 8x the period cuts the penalty by close to 8x.
  EXPECT_GT(evals[0].throughput_penalty, 4.0 * evals[2].throughput_penalty);
  EXPECT_NEAR(evals[0].throughput_penalty, 0.161, 0.005);
}

TEST(PaperResultsTest, ResolutionAblationPreservesSchemeOrdering) {
  // The Figure-1 conclusion must be resolution-robust: refining the
  // thermal grid (one node per tile -> refine^2 sub-blocks) may shave
  // the magnitudes but must not reorder the schemes.
  ExperimentDriver driver(smoke_scaled(config_A()));
  driver.prepare();

  ExperimentSweepConfig sweep;
  sweep.dim = driver.chip().config.dim;
  sweep.hotspot = driver.chip().config.hotspot;
  sweep.schemes = {MigrationScheme::kRotation, MigrationScheme::kShiftXY};
  sweep.periods_s = {driver.default_period_s()};
  sweep.refines = {1, 2, 3};
  sweep.base_tile_power = driver.base_power();
  sweep.power_jitter = 0.0;
  sweep.migration_energy_j = 0.0;
  sweep.threads = 2;
  const std::vector<ExperimentSweepPoint> points = run_experiment_sweep(sweep);
  ASSERT_EQ(points.size(), 6u);

  // refine=1 is the block model: the engine's static peak must match the
  // driver's bit-for-bit path to ~solver tolerance.
  EXPECT_NEAR(points[0].static_peak_c, driver.base_peak_temp_c(), 1e-6);

  double prev_base = 1e9;
  for (std::size_t r = 0; r < 3; ++r) {
    const ExperimentSweepPoint& rot = points[r];
    const ExperimentSweepPoint& shift = points[3 + r];
    ASSERT_EQ(rot.scenario.refine, shift.scenario.refine);
    const double base = rot.static_peak_c;
    const double rot_red = base - rot.steady_peak_of_avg_c;
    const double shift_red = base - shift.steady_peak_of_avg_c;

    EXPECT_GT(rot_red, 0.0);
    EXPECT_GT(shift_red, 0.0);
    // Rotation leads X-Y shift at every resolution for configuration A.
    EXPECT_GT(rot_red, shift_red) << "refine = " << rot.scenario.refine;
    // Sub-block resolution sharpens gradients: the reported peak of the
    // averaged map can only drop as refinement localizes the hotspot.
    EXPECT_LT(base, prev_base);
    prev_base = base;
  }

  // Pin the block-model magnitudes (refine=1).
  EXPECT_NEAR(points[0].static_peak_c - points[0].steady_peak_of_avg_c, 5.67,
              0.05);
  EXPECT_NEAR(points[3].static_peak_c - points[3].steady_peak_of_avg_c, 4.87,
              0.05);
}

}  // namespace
}  // namespace renoc
