// Tests for the threaded experiment sweep harness: thread-count
// bit-invariance, the O(1) single-scenario replay contract, scenario
// enumeration, bookkeeping, and config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/experiment_sweep.hpp"
#include "core/transform.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

/// Small but representative grid: two schemes (one with a fixed point on
/// odd meshes, one without), two periods, two scales, two refinements.
ExperimentSweepConfig small_config() {
  ExperimentSweepConfig cfg;
  cfg.dim = GridDim{4, 4};
  cfg.schemes = {MigrationScheme::kNone, MigrationScheme::kRotation,
                 MigrationScheme::kShiftXY};
  cfg.periods_s = {54.65e-6, 109.3e-6};
  cfg.power_scales = {1.0, 1.4};
  cfg.refines = {1, 2};
  cfg.power_jitter = 0.3;
  cfg.migration_energy_j = 40e-6;
  cfg.seed = 77;
  // Keep runs short: the determinism contract does not depend on how far
  // the orbit iteration converges.
  cfg.thermal.min_orbits = 1;
  cfg.thermal.max_orbits = 3;
  cfg.thermal.tol_c = 0.5;
  return cfg;
}

bool points_identical(const ExperimentSweepPoint& a,
                      const ExperimentSweepPoint& b) {
  return a.scenario_index == b.scenario_index &&
         a.scenario.scheme == b.scenario.scheme &&
         a.scenario.period_s == b.scenario.period_s &&
         a.scenario.power_scale == b.scenario.power_scale &&
         a.scenario.refine == b.scenario.refine &&
         a.orbit_length == b.orbit_length && a.fine_nodes == b.fine_nodes &&
         a.static_peak_c == b.static_peak_c &&
         a.peak_temp_c == b.peak_temp_c &&
         a.reduction_c == b.reduction_c &&
         a.mean_temp_c == b.mean_temp_c && a.ripple_c == b.ripple_c &&
         a.steady_peak_of_avg_c == b.steady_peak_of_avg_c &&
         a.orbits_run == b.orbits_run && a.converged == b.converged;
}

TEST(ExperimentSweepTest, ScenarioEnumerationOrder) {
  ExperimentSweepConfig cfg = small_config();
  const auto grid = cfg.scenarios();
  ASSERT_EQ(grid.size(), 3u * 2u * 2u * 2u);
  // Scheme-major, then period, power scale, refinement.
  EXPECT_EQ(grid[0].scheme, MigrationScheme::kNone);
  EXPECT_EQ(grid[0].refine, 1);
  EXPECT_EQ(grid[1].refine, 2);
  EXPECT_EQ(grid[2].power_scale, 1.4);
  EXPECT_DOUBLE_EQ(grid[4].period_s, 109.3e-6);
  EXPECT_EQ(grid[8].scheme, MigrationScheme::kRotation);
}

TEST(ExperimentSweepTest, ThreadCountInvariance) {
  // 1/2/4/7 workers must produce bit-identical result vectors: RNG
  // streams are derived from (seed, scenario), never from workers.
  ExperimentSweepConfig cfg = small_config();
  cfg.threads = 1;
  const auto baseline = run_experiment_sweep(cfg);
  ASSERT_EQ(baseline.size(), cfg.scenarios().size());
  for (const int threads : {2, 4, 7}) {
    cfg.threads = threads;
    const auto pts = run_experiment_sweep(cfg);
    ASSERT_EQ(pts.size(), baseline.size()) << threads << " threads";
    for (std::size_t i = 0; i < pts.size(); ++i)
      EXPECT_TRUE(points_identical(baseline[i], pts[i]))
          << threads << " threads, scenario " << i;
  }
}

TEST(ExperimentSweepTest, ReplayContractReproducesAnyCell) {
  ExperimentSweepConfig cfg = small_config();
  cfg.threads = 2;
  const auto pts = run_experiment_sweep(cfg);
  const auto grid = cfg.scenarios();
  // O(1) replay: every probed cell reproduces its sweep point without
  // running the grid before it.
  for (const std::size_t i :
       {std::size_t{0}, grid.size() / 2, grid.size() - 1}) {
    const ExperimentSweepPoint replayed =
        run_experiment_scenario(grid[i], cfg, static_cast<int>(i));
    EXPECT_TRUE(points_identical(pts[i], replayed)) << "cell " << i;
  }
  // And the power-map replay helper regenerates the exact map.
  const auto map_a = experiment_scenario_power(cfg, grid[3], 3);
  const auto map_b = experiment_scenario_power(cfg, grid[3], 3);
  EXPECT_EQ(map_a, map_b);
  // Different scenarios draw different jitter.
  const auto map_c = experiment_scenario_power(cfg, grid[5], 5);
  EXPECT_NE(map_a, map_c);
}

TEST(ExperimentSweepTest, BookkeepingInvariants) {
  ExperimentSweepConfig cfg = small_config();
  cfg.threads = 2;
  const auto pts = run_experiment_sweep(cfg);
  for (const ExperimentSweepPoint& pt : pts) {
    EXPECT_EQ(pt.fine_nodes,
              16 * pt.scenario.refine * pt.scenario.refine);
    EXPECT_NEAR(pt.reduction_c, pt.static_peak_c - pt.peak_temp_c, 1e-12);
    EXPECT_TRUE(std::isfinite(pt.peak_temp_c));
    if (pt.scenario.scheme == MigrationScheme::kNone) {
      // Static scenarios: the migrating run is the static run.
      EXPECT_EQ(pt.orbit_length, 1);
      EXPECT_DOUBLE_EQ(pt.reduction_c, 0.0);
      EXPECT_EQ(pt.orbits_run, 0);
    } else {
      EXPECT_GT(pt.orbit_length, 1);
      EXPECT_GT(pt.orbits_run, 0);
    }
  }
  // Scaling power up scales peaks up (same scheme/period/refine).
  const auto grid = cfg.scenarios();
  for (std::size_t i = 0; i + 2 < grid.size(); ++i) {
    if (grid[i].scheme == grid[i + 2].scheme &&
        grid[i].period_s == grid[i + 2].period_s &&
        grid[i].refine == grid[i + 2].refine &&
        grid[i].power_scale < grid[i + 2].power_scale) {
      EXPECT_LT(pts[i].peak_temp_c, pts[i + 2].peak_temp_c)
          << "scenario " << i;
    }
  }
}

TEST(ExperimentSweepTest, StatelessRngDerivation) {
  // Same (seed, index) -> same stream; different coordinates -> different
  // streams (the O(1) replay property's foundation).
  Rng a = experiment_scenario_rng(9, 4);
  Rng b = experiment_scenario_rng(9, 4);
  Rng c = experiment_scenario_rng(9, 5);
  Rng d = experiment_scenario_rng(10, 4);
  const std::uint64_t va = a.next_u64();
  EXPECT_EQ(va, b.next_u64());
  EXPECT_NE(va, c.next_u64());
  EXPECT_NE(va, d.next_u64());
  EXPECT_THROW(experiment_scenario_rng(9, -1), CheckError);
}

TEST(ExperimentSweepTest, BaseMapOverridesSynthetic) {
  ExperimentSweepConfig cfg = small_config();
  cfg.schemes = {MigrationScheme::kNone};
  cfg.periods_s = {109.3e-6};
  cfg.power_scales = {1.0};
  cfg.refines = {1};
  cfg.power_jitter = 0.0;  // deterministic map: exactly the base map
  cfg.base_tile_power.assign(16, 1.0);
  cfg.base_tile_power[5] = 9.0;
  const auto power = experiment_scenario_power(cfg, cfg.scenarios()[0], 0);
  EXPECT_EQ(power, cfg.base_tile_power);
  const auto pts = run_experiment_sweep(cfg);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].peak_temp_c, cfg.hotspot.ambient);
}

TEST(ExperimentSweepTest, ConfigValidation) {
  const auto expect_invalid = [](ExperimentSweepConfig cfg) {
    EXPECT_THROW(cfg.validate(), CheckError);
  };
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.schemes.clear();
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.dim = GridDim{4, 3};  // rotation not closed on non-square meshes
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.periods_s = {1e-6};  // below thermal.dt_s
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.power_scales = {0.0};
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.refines = {0};
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.power_jitter = 1.0;
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.base_tile_power.assign(9, 1.0);  // wrong tile count
    expect_invalid(cfg);
  }
  {
    ExperimentSweepConfig cfg = small_config();
    cfg.threads = 0;
    expect_invalid(cfg);
  }
  EXPECT_NO_THROW(small_config().validate());
}

}  // namespace
}  // namespace renoc