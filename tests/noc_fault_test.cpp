// Tests for the degraded-fabric NoC: deterministic fault plans, the
// west-first adaptive route tables, the NI delivery guarantees (timeout +
// bounded retry, duplicate suppression, unreachable refusal), graceful
// migration abort, and the fault axes of the sweep harness (thread-count
// invariance, O(1) replay).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/migration_controller.hpp"
#include "core/transform.hpp"
#include "noc/fabric.hpp"
#include "noc/fault_model.hpp"
#include "noc/routing.hpp"
#include "noc/sweep_harness.hpp"
#include "util/alloc_guard.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

#define RENOC_REQUIRE_INSTRUMENTED()                                     \
  do {                                                                   \
    if (!alloc_guard::instrumented())                                    \
      GTEST_SKIP() << "RENOC_ALLOC_GUARD is off: operator new/delete "   \
                      "are not interposed, so allocation counts would "  \
                      "be vacuous";                                      \
  } while (0)

NocConfig mesh(int side) {
  NocConfig cfg;
  cfg.dim = GridDim{side, side};
  return cfg;
}

bool events_equal(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.cycle == b.cycle && a.node == b.node &&
         a.port == b.port;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  return a.events.size() == b.events.size() &&
         std::equal(a.events.begin(), a.events.end(), b.events.begin(),
                    events_equal);
}

// --- Fault plans -----------------------------------------------------------

TEST(FaultPlanTest, SameSeedAndIndexReplaysBitIdentically) {
  const GridDim dim{4, 4};
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDead;
  spec.count = 4;
  spec.onset_min = 10;
  spec.onset_max = 500;
  spec.validate(dim);
  const FaultPlan a = make_fault_plan(dim, spec, fault_scenario_rng(9, 3));
  const FaultPlan b = make_fault_plan(dim, spec, fault_scenario_rng(9, 3));
  EXPECT_TRUE(plans_equal(a, b));
  // A different scenario index is a different stream, hence a different
  // plan (collision odds over 4 victims x 491 cycles are negligible).
  const FaultPlan c = make_fault_plan(dim, spec, fault_scenario_rng(9, 4));
  EXPECT_FALSE(plans_equal(a, c));
}

TEST(FaultPlanTest, LinkPlanHasDistinctInBoundsSortedVictims) {
  const GridDim dim{4, 4};
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDead;
  spec.count = 5;
  spec.onset_min = 20;
  spec.onset_max = 300;
  const FaultPlan plan =
      make_fault_plan(dim, spec, fault_scenario_rng(13, 0));
  ASSERT_EQ(plan.events.size(), 5u);
  std::set<std::pair<int, int>> victims;
  Cycle prev = 0;
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(ev.kind, FaultEvent::Kind::kLinkDown);
    EXPECT_GE(ev.cycle, spec.onset_min);
    EXPECT_LE(ev.cycle, spec.onset_max);
    EXPECT_GE(ev.cycle, prev);  // sorted by cycle
    prev = ev.cycle;
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, dim.node_count());
    EXPECT_GE(ev.port, 0);
    EXPECT_LT(ev.port, 4);
    EXPECT_TRUE(victims.insert({ev.node, ev.port}).second)
        << "victim sampled twice";
  }
  EXPECT_EQ(plan.last_event_cycle(), plan.events.back().cycle);
}

TEST(FaultPlanTest, FlakyLinksExpandIntoDownUpPairs) {
  const GridDim dim{4, 4};
  FaultSpec spec;
  spec.kind = FaultKind::kLinkFlaky;
  spec.count = 3;
  spec.onset_min = 50;
  spec.onset_max = 200;
  spec.flake_min = 30;
  spec.flake_max = 90;
  const FaultPlan plan =
      make_fault_plan(dim, spec, fault_scenario_rng(17, 2));
  ASSERT_EQ(plan.events.size(), 6u);
  std::vector<FaultEvent> downs;
  std::vector<FaultEvent> ups;
  for (const FaultEvent& ev : plan.events) {
    ASSERT_NE(ev.kind, FaultEvent::Kind::kRouterDown);
    (ev.kind == FaultEvent::Kind::kLinkDown ? downs : ups).push_back(ev);
  }
  ASSERT_EQ(downs.size(), 3u);
  ASSERT_EQ(ups.size(), 3u);
  for (const FaultEvent& down : downs) {
    const auto up = std::find_if(
        ups.begin(), ups.end(), [&down](const FaultEvent& ev) {
          return ev.node == down.node && ev.port == down.port;
        });
    ASSERT_NE(up, ups.end()) << "down event without a matching recovery";
    EXPECT_GT(up->cycle, down.cycle);
    EXPECT_GE(up->cycle - down.cycle, spec.flake_min);
    EXPECT_LE(up->cycle - down.cycle, spec.flake_max);
  }
}

TEST(FaultPlanTest, RouterPlanKillsDistinctRouters) {
  const GridDim dim{4, 4};
  FaultSpec spec;
  spec.kind = FaultKind::kRouterDead;
  spec.count = 3;
  const FaultPlan plan =
      make_fault_plan(dim, spec, fault_scenario_rng(23, 1));
  ASSERT_EQ(plan.events.size(), 3u);
  std::set<int> victims;
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(ev.kind, FaultEvent::Kind::kRouterDown);
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, dim.node_count());
    EXPECT_TRUE(victims.insert(ev.node).second);
  }
}

TEST(FaultPlanTest, FaultStreamIsSaltedAwayFromTrafficStream) {
  // The fault plan and the traffic of one sweep scenario derive from the
  // same (seed, index) pair; the salt keeps the streams distinct.
  for (int index : {0, 1, 7}) {
    Rng fault = fault_scenario_rng(42, index);
    Rng traffic = sweep_scenario_rng(42, index);
    EXPECT_NE(fault.next_u64(), traffic.next_u64());
  }
}

TEST(FaultPlanTest, ValidateIgnoresFlakeWindowForNonFlakyKinds) {
  // Dead-link/router specs may leave the (unused) flake fields zeroed;
  // only a flaky spec owns the flake-window invariant.
  const GridDim dim{4, 4};
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDead;
  spec.count = 2;
  spec.flake_min = 0;
  spec.flake_max = 0;
  EXPECT_NO_THROW(spec.validate(dim));
  spec.kind = FaultKind::kRouterDead;
  EXPECT_NO_THROW(spec.validate(dim));
  spec.kind = FaultKind::kLinkFlaky;
  EXPECT_THROW(spec.validate(dim), CheckError);
}

// --- West-first turn model -------------------------------------------------

TEST(WestFirstTest, TurnRules) {
  const Direction mesh_dirs[] = {Direction::kNorth, Direction::kSouth,
                                 Direction::kEast, Direction::kWest};
  for (Direction d : mesh_dirs) {
    EXPECT_TRUE(turn_allowed(Direction::kLocal, d));  // injection
    EXPECT_TRUE(turn_allowed(d, Direction::kLocal));  // ejection
    EXPECT_TRUE(turn_allowed(d, d));                  // going straight
    EXPECT_FALSE(turn_allowed(d, opposite(d)));       // 180-degree turn
  }
  // The two turns into west are the ones west-first forbids...
  EXPECT_FALSE(turn_allowed(Direction::kNorth, Direction::kWest));
  EXPECT_FALSE(turn_allowed(Direction::kSouth, Direction::kWest));
  // ...while turns out of west and into east stay legal.
  EXPECT_TRUE(turn_allowed(Direction::kWest, Direction::kNorth));
  EXPECT_TRUE(turn_allowed(Direction::kWest, Direction::kSouth));
  EXPECT_TRUE(turn_allowed(Direction::kNorth, Direction::kEast));
  EXPECT_TRUE(turn_allowed(Direction::kSouth, Direction::kEast));
}

// --- Adaptive route tables -------------------------------------------------

struct Topology {
  std::vector<std::uint8_t> link_up;
  std::vector<std::uint8_t> router_up;
};

Topology live_mesh(const GridDim& dim) {
  const int n = dim.node_count();
  Topology t;
  t.link_up.assign(static_cast<std::size_t>(n) * 4, 0);
  t.router_up.assign(static_cast<std::size_t>(n), 1);
  for (int i = 0; i < n; ++i) {
    const GridCoord c = index_to_coord(i, dim);
    for (int d = 0; d < 4; ++d) {
      const GridCoord nb = neighbor(c, static_cast<Direction>(d));
      if (nb.x >= 0 && nb.x < dim.width && nb.y >= 0 && nb.y < dim.height)
        t.link_up[static_cast<std::size_t>(i) * 4 +
                  static_cast<std::size_t>(d)] = 1;
    }
  }
  return t;
}

// Kills a router the way the fabric does: the node plus all eight adjacent
// unidirectional links (its own outputs and its neighbors' links toward it).
void kill_router(Topology& t, const GridDim& dim, int node) {
  t.router_up[static_cast<std::size_t>(node)] = 0;
  const GridCoord c = index_to_coord(node, dim);
  for (int d = 0; d < 4; ++d) {
    t.link_up[static_cast<std::size_t>(node) * 4 +
              static_cast<std::size_t>(d)] = 0;
    const GridCoord nb = neighbor(c, static_cast<Direction>(d));
    if (nb.x >= 0 && nb.x < dim.width && nb.y >= 0 && nb.y < dim.height) {
      const int u = coord_to_index(nb, dim);
      t.link_up[static_cast<std::size_t>(u) * 4 +
                static_cast<std::size_t>(static_cast<int>(
                    opposite(static_cast<Direction>(d))))] = 0;
    }
  }
}

// Follows the table from src to dst, asserting every step is a live,
// turn-legal move. Returns the hop count, or -1 if the table reports the
// pair unreachable at any point (never loops: the hop budget fails the
// test instead).
int walk_route(const GridDim& dim, const std::vector<std::uint8_t>& table,
               const Topology& topo, int src, int dst) {
  const int n = dim.node_count();
  int node = src;
  Direction moving = Direction::kLocal;
  for (int hops = 0; hops <= kDirectionCount * n; ++hops) {
    const int in = static_cast<int>(moving == Direction::kLocal
                                        ? Direction::kLocal
                                        : opposite(moving));
    const std::uint8_t out = table[static_cast<std::size_t>(
        (node * kDirectionCount + in) * n + dst)];
    if (out == kUnreachableRoute) return -1;
    const Direction od = static_cast<Direction>(out);
    EXPECT_TRUE(turn_allowed(moving, od))
        << "illegal turn at node " << node << " for dst " << dst;
    if (od == Direction::kLocal) {
      EXPECT_EQ(node, dst) << "route ejected at the wrong node";
      return hops;
    }
    EXPECT_NE(topo.link_up[static_cast<std::size_t>(node) * 4 +
                           static_cast<std::size_t>(out)],
              0)
        << "route crosses dead link " << node << " dir " << int(out);
    node = coord_to_index(neighbor(index_to_coord(node, dim), od), dim);
    EXPECT_NE(topo.router_up[static_cast<std::size_t>(node)], 0)
        << "route enters dead router " << node;
    moving = od;
  }
  ADD_FAILURE() << "route " << src << "->" << dst << " loops";
  return -2;
}

TEST(AdaptiveRouteTest, FullyLiveMeshRoutesEveryPairMinimally) {
  for (const GridDim dim : {GridDim{4, 4}, GridDim{3, 5}, GridDim{5, 3}}) {
    const Topology topo = live_mesh(dim);
    std::vector<std::uint8_t> table;
    build_adaptive_routes(dim, topo.link_up, topo.router_up, table);
    for (int src = 0; src < dim.node_count(); ++src)
      for (int dst = 0; dst < dim.node_count(); ++dst) {
        const GridCoord a = index_to_coord(src, dim);
        const GridCoord b = index_to_coord(dst, dim);
        const int manhattan = std::abs(a.x - b.x) + std::abs(a.y - b.y);
        // A minimal west-first path always exists on a live mesh (west
        // hops first, then a monotone staircase), so BFS matches XY.
        EXPECT_EQ(walk_route(dim, table, topo, src, dst), manhattan)
            << src << "->" << dst << " on " << dim.width << "x"
            << dim.height;
      }
  }
}

TEST(AdaptiveRouteTest, RoutesAroundADeadEastLink) {
  const GridDim dim{4, 4};
  Topology topo = live_mesh(dim);
  const int victim = coord_to_index({1, 0}, dim);
  topo.link_up[static_cast<std::size_t>(victim) * 4 +
               static_cast<std::size_t>(static_cast<int>(
                   Direction::kEast))] = 0;
  std::vector<std::uint8_t> table;
  build_adaptive_routes(dim, topo.link_up, topo.router_up, table);
  // Detours around a dead *east* link only need north/south-then-east
  // turns, all west-first-legal: every pair stays reachable, and
  // walk_route asserts no path crosses the dead link.
  for (int src = 0; src < dim.node_count(); ++src)
    for (int dst = 0; dst < dim.node_count(); ++dst)
      EXPECT_GE(walk_route(dim, table, topo, src, dst), 0)
          << src << "->" << dst;
}

TEST(AdaptiveRouteTest, WestCutIsMarkedUnreachableNotLooped) {
  // West-first routing takes all west hops first, so a node whose only
  // west exit dies genuinely cannot reach the column to its west: the
  // table must say so (kUnreachableRoute) instead of spinning packets.
  const GridDim dim{4, 4};
  Topology topo = live_mesh(dim);
  const int src = coord_to_index({1, 0}, dim);
  topo.link_up[static_cast<std::size_t>(src) * 4 +
               static_cast<std::size_t>(static_cast<int>(
                   Direction::kWest))] = 0;
  std::vector<std::uint8_t> table;
  build_adaptive_routes(dim, topo.link_up, topo.router_up, table);
  for (int y = 0; y < dim.height; ++y)
    EXPECT_EQ(walk_route(dim, table, topo, src,
                         coord_to_index({0, y}, dim)),
              -1)
        << "column-0 dst should be unreachable from (1,0)";
  // The rest of the mesh keeps its west link, so (1,1) still gets there.
  EXPECT_GE(walk_route(dim, table, topo, coord_to_index({1, 1}, dim),
                       coord_to_index({0, 0}, dim)),
            0);
  // And (1,0) still reaches everything in its own column and eastward.
  EXPECT_GE(walk_route(dim, table, topo, src, coord_to_index({3, 3}, dim)),
            0);
}

TEST(AdaptiveRouteTest, DeadRouterIsUnreachableAndUnroutableThrough) {
  const GridDim dim{4, 4};
  Topology topo = live_mesh(dim);
  const int dead = coord_to_index({1, 1}, dim);
  kill_router(topo, dim, dead);
  std::vector<std::uint8_t> table;
  build_adaptive_routes(dim, topo.link_up, topo.router_up, table);
  const int n = dim.node_count();
  for (int src = 0; src < n; ++src) {
    if (src == dead) continue;
    EXPECT_EQ(walk_route(dim, table, topo, src, dead), -1);
    // Rows seeded from a dead router never join the BFS: nothing routes
    // *from* it either.
    EXPECT_EQ(table[static_cast<std::size_t>(
                  (dead * kDirectionCount +
                   static_cast<int>(Direction::kLocal)) *
                      n +
                  src)],
              kUnreachableRoute);
  }
  // Every remaining pair either routes legally around the hole or is
  // honestly marked unreachable — walk_route fails the test on anything
  // else (loops, dead-link crossings, misrouted ejection).
  int reachable = 0;
  for (int src = 0; src < n; ++src)
    for (int dst = 0; dst < n; ++dst) {
      if (src == dead || dst == dead) continue;
      if (walk_route(dim, table, topo, src, dst) >= 0) ++reachable;
    }
  // Paths that would need a west hop past the hole are lost to the turn
  // restriction (e.g. (2,1)->(0,1)), but the bulk of the mesh survives.
  EXPECT_EQ(walk_route(dim, table, topo, coord_to_index({2, 1}, dim),
                       coord_to_index({0, 1}, dim)),
            -1);
  EXPECT_GE(walk_route(dim, table, topo, 0, n - 1), 0);
  EXPECT_GT(reachable, (n - 1) * (n - 1) * 3 / 4);
}

// --- Delivery guarantees on a live fabric ----------------------------------

TEST(DegradedFabricTest, RetryRedeliversAfterAMidFlightLinkKill) {
  Fabric fabric(mesh(4));
  DeliveryGuardConfig guard;
  guard.timeout_cycles = 32;
  guard.ack_latency_cycles = 4;
  fabric.configure_delivery_guard(guard);
  // Kill node 0's east link while the packet's wormhole is crossing it.
  FaultPlan plan;
  plan.events.push_back(
      {FaultEvent::Kind::kLinkDown, 3, 0, static_cast<int>(Direction::kEast)});
  fabric.install_fault_plan(plan);

  Message m;
  m.src = 0;
  m.dst = 3;
  m.tag = 9;
  m.payload.assign(8, 0xAB);
  fabric.send(m);
  fabric.drain();

  EXPECT_EQ(fabric.route_epoch(), 1);
  EXPECT_FALSE(fabric.link_alive(0, static_cast<int>(Direction::kEast)));
  const NetworkStats& st = fabric.stats();
  EXPECT_EQ(st.packets_delivered(), 1u);
  EXPECT_GE(st.packets_retried(), 1u);
  EXPECT_EQ(st.packets_dropped(), 0u);
  EXPECT_EQ(st.packets_unreachable(), 0u);
  auto got = fabric.try_receive(3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 0);
  EXPECT_EQ(got->tag, 9u);
  EXPECT_EQ(got->payload, std::vector<std::uint64_t>(8, 0xAB));
  EXPECT_FALSE(fabric.try_receive(3).has_value());  // exactly once
}

TEST(DegradedFabricTest, RetransmitAckRaceIsSuppressedAsDuplicate) {
  // A timeout far shorter than the delivery-notice latency forces the
  // source to retransmit messages that were in fact delivered — the
  // at-least-once race. The (src, msg_seq) filter at reassembly must
  // collapse it back to exactly-once delivery.
  Fabric fabric(mesh(4));
  DeliveryGuardConfig guard;
  guard.timeout_cycles = 8;
  guard.ack_latency_cycles = 64;
  guard.retry_budget = 3;
  fabric.configure_delivery_guard(guard);

  Message m;
  m.src = 0;
  m.dst = 1;
  m.tag = 5;
  m.payload = {10, 11, 12, 13};
  fabric.send(m);
  fabric.drain();

  const NetworkStats& st = fabric.stats();
  EXPECT_EQ(st.packets_delivered(), 1u);
  EXPECT_GE(st.packets_retried(), 1u);
  EXPECT_GE(st.duplicates_suppressed(), 1u);
  EXPECT_EQ(st.packets_dropped(), 0u);
  EXPECT_EQ(st.packets_unreachable(), 0u);
  auto got = fabric.try_receive(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<std::uint64_t>{10, 11, 12, 13}));
  EXPECT_FALSE(fabric.try_receive(1).has_value())
      << "duplicate reached the workload";
}

TEST(DegradedFabricTest, UnreachableRefusedAndDeadSourceDropped) {
  Fabric fabric(mesh(4));
  FaultPlan plan;
  plan.events.push_back({FaultEvent::Kind::kRouterDown, 1, 5, 0});
  fabric.install_fault_plan(plan);
  fabric.run(4);

  EXPECT_EQ(fabric.route_epoch(), 1);
  EXPECT_FALSE(fabric.router_alive(5));
  EXPECT_FALSE(fabric.destination_reachable(0, 5));
  EXPECT_TRUE(fabric.destination_reachable(0, 15));

  // To a dead destination: accepted, then refused at admission and
  // reported unreachable — not spun on until the retry budget burns out.
  Message to_dead;
  to_dead.src = 0;
  to_dead.dst = 5;
  to_dead.payload = {1};
  fabric.send(to_dead);
  fabric.drain();
  const NetworkStats& st = fabric.stats();
  EXPECT_EQ(st.packets_unreachable(), 1u);
  EXPECT_EQ(st.packets_retried(), 0u);

  // From a dead source: refused outright with a drop record.
  Message from_dead;
  from_dead.src = 5;
  from_dead.dst = 0;
  from_dead.payload = {2};
  fabric.send(from_dead);
  EXPECT_EQ(st.packets_dropped(), 1u);
  fabric.drain();

  // Conservation: two sends, zero delivered, one drop, one unreachable.
  EXPECT_EQ(st.packets_delivered(), 0u);
  EXPECT_FALSE(fabric.try_receive(0).has_value());
  EXPECT_FALSE(fabric.try_receive(5).has_value());
}

TEST(DegradedFabricTest, SourceDeathAtAnyCycleConservesAccounting) {
  // Regression for a conservation-law double count: kill the source
  // router at every cycle offset around a single corner-to-corner send.
  // The hazardous window is the one where every flit of the tracked
  // attempt is in flight beyond the source — the purge resolves the dead
  // NI's tracker as dropped, so it must also doom those in-flight flits,
  // or the packet would ALSO eject at the destination and count
  // delivered, making delivered+dropped+unreachable exceed the one
  // accepted send.
  for (Cycle kill = 1; kill <= 48; ++kill) {
    Fabric fabric(mesh(4));
    DeliveryGuardConfig guard;
    guard.timeout_cycles = 32;
    guard.ack_latency_cycles = 4;
    fabric.configure_delivery_guard(guard);
    FaultPlan plan;
    plan.events.push_back({FaultEvent::Kind::kRouterDown, kill, 0, 0});
    fabric.install_fault_plan(plan);

    Message m;
    m.src = 0;
    m.dst = 15;
    m.tag = 3;
    m.payload.assign(6, 0xC0DE);
    fabric.send(m);
    fabric.drain();

    const NetworkStats& st = fabric.stats();
    EXPECT_EQ(st.packets_delivered() + st.packets_dropped() +
                  st.packets_unreachable(),
              1u)
        << "conservation violated with source killed at cycle " << kill;
    const bool received = fabric.try_receive(15).has_value();
    EXPECT_EQ(received, st.packets_delivered() == 1u)
        << "delivered counter disagrees with receipt at kill cycle "
        << kill;
  }
}

TEST(DegradedFabricTest, FlakyLinkRecoversWithItsOwnRouteEpoch) {
  Fabric fabric(mesh(4));
  const int node = coord_to_index({1, 0}, fabric.config().dim);
  FaultPlan plan;
  plan.events.push_back({FaultEvent::Kind::kLinkDown, 5, node,
                         static_cast<int>(Direction::kWest)});
  plan.events.push_back({FaultEvent::Kind::kLinkUp, 60, node,
                         static_cast<int>(Direction::kWest)});
  fabric.install_fault_plan(plan);

  fabric.run(10);
  EXPECT_EQ(fabric.route_epoch(), 1);
  EXPECT_FALSE(fabric.link_alive(node, static_cast<int>(Direction::kWest)));
  // With its only west exit down, (1,0) cannot reach column 0 under the
  // west-first restriction; the fabric reports that instead of trying.
  EXPECT_FALSE(fabric.destination_reachable(node, 0));

  fabric.run(60);
  EXPECT_EQ(fabric.route_epoch(), 2);
  EXPECT_TRUE(fabric.link_alive(node, static_cast<int>(Direction::kWest)));
  EXPECT_TRUE(fabric.destination_reachable(node, 0));

  Message m;
  m.src = node;
  m.dst = 0;
  m.payload = {7};
  fabric.send(m);
  fabric.drain();
  EXPECT_EQ(fabric.stats().packets_delivered(), 1u);
  auto got = fabric.try_receive(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, std::vector<std::uint64_t>{7});
}

TEST(DegradedFabricTest, WarmedStepIsAllocationFreeWithActiveFaultPlan) {
  RENOC_REQUIRE_INSTRUMENTED();
  Fabric fabric(mesh(4));
  fabric.configure_delivery_guard(DeliveryGuardConfig{});
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDead;
  spec.count = 2;
  spec.onset_min = 50;
  spec.onset_max = 150;
  fabric.install_fault_plan(
      make_fault_plan(fabric.config().dim, spec, fault_scenario_rng(11, 0)));
  const int n = fabric.node_count();
  const GridDim dim = fabric.config().dim;
  // Slow periodic east-neighbor traffic: stop-and-wait resolves each
  // message well inside the 64-cycle period, so queues stay bounded.
  auto pump = [&](int cycles) {
    for (int c = 0; c < cycles; ++c) {
      if (c % 64 == 0) {
        for (int src = 0; src < n; ++src) {
          const GridCoord co = index_to_coord(src, dim);
          Message m = fabric.acquire_message();
          m.src = src;
          m.dst = coord_to_index({(co.x + 1) % dim.width, co.y}, dim);
          m.payload.assign(4, 0x5a5aULL);
          fabric.send(std::move(m));
        }
      }
      fabric.step();
      for (int node = 0; node < n; ++node)
        while (auto msg = fabric.try_receive(node))
          fabric.recycle(std::move(*msg));
    }
  };
  pump(1600);  // all fault events, retries, and high-water marks behind us
  const AllocGuard guard;
  pump(512);
  EXPECT_EQ(guard.count(), 0)
      << "degraded-mode steady state must not allocate";
}

// --- Migration abort -------------------------------------------------------

TEST(MigrationAbortTest, LostStatePacketAbortsWithoutCommitting) {
  Fabric fabric(mesh(4));
  FaultPlan plan;
  plan.events.push_back({FaultEvent::Kind::kRouterDown, 1, 6, 0});
  fabric.install_fault_plan(plan);
  fabric.run(3);
  ASSERT_FALSE(fabric.router_alive(6));

  MigrationController controller(fabric,
                                 Transform{TransformKind::kRotation, 0});
  std::vector<int> placement = identity_permutation(16);
  const std::vector<int> before = placement;
  const std::vector<int> words(16, 8);
  const MigrationReport rep = controller.migrate(placement, words);

  EXPECT_TRUE(rep.aborted);
  EXPECT_GE(rep.aborted_phase, 0);
  // No commit: placement and the I/O translator keep the old map.
  EXPECT_EQ(placement, before);
  EXPECT_EQ(controller.migrations(), 0);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(controller.translator().logical_to_physical(i), i);
  // The fabric is drained and the workload can resume.
  EXPECT_TRUE(fabric.idle());
  for (int nidx = 0; nidx < 16; ++nidx)
    EXPECT_TRUE(fabric.injection_enabled(nidx));

  // Rescheduling is the caller's move; a second attempt must again abort
  // cleanly (the router is permanently dead), not throw or wedge.
  const MigrationReport rep2 = controller.migrate(placement, words);
  EXPECT_TRUE(rep2.aborted);
  EXPECT_EQ(placement, before);
}

// --- Sweep fault axes ------------------------------------------------------

bool points_equal(const SweepPoint& a, const SweepPoint& b) {
  return a.scenario_index == b.scenario_index &&
         a.messages_sent == b.messages_sent &&
         a.messages_received == b.messages_received &&
         a.messages_skipped == b.messages_skipped &&
         a.packets_delivered == b.packets_delivered &&
         a.flits_delivered == b.flits_delivered &&
         a.offered_flit_rate == b.offered_flit_rate &&
         a.injected_flit_rate == b.injected_flit_rate &&
         a.accepted_flit_rate == b.accepted_flit_rate &&
         a.avg_latency_cycles == b.avg_latency_cycles &&
         a.max_latency_cycles == b.max_latency_cycles &&
         a.cycles == b.cycles && a.packets_retried == b.packets_retried &&
         a.packets_dropped == b.packets_dropped &&
         a.packets_unreachable == b.packets_unreachable &&
         a.duplicates_suppressed == b.duplicates_suppressed &&
         a.route_epochs == b.route_epochs;
}

SweepConfig fault_sweep_config() {
  SweepConfig cfg;
  cfg.patterns = {TrafficPattern::kUniformRandom};
  cfg.mesh_sides = {4};
  cfg.injection_rates = {0.05};
  cfg.message_words = {4};
  cfg.fault_counts = {0, 2};
  cfg.fault_kinds = {FaultKind::kLinkDead, FaultKind::kRouterDead};
  cfg.retry_budgets = {kGuardDisabled, 2};
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 400;
  cfg.seed = 5;
  return cfg;
}

TEST(FaultSweepTest, BitIdenticalForAnyThreadCount) {
  SweepConfig cfg = fault_sweep_config();
  cfg.threads = 1;
  const std::vector<SweepPoint> baseline = run_noc_sweep(cfg);
  ASSERT_EQ(baseline.size(), 8u);
  for (int threads : {2, 4, 7}) {
    cfg.threads = threads;
    const std::vector<SweepPoint> points = run_noc_sweep(cfg);
    ASSERT_EQ(points.size(), baseline.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      EXPECT_TRUE(points_equal(points[i], baseline[i]))
          << "scenario " << i << " diverged at " << threads << " threads";
  }
}

TEST(FaultSweepTest, AnyFaultScenarioReplaysInIsolation) {
  SweepConfig cfg = fault_sweep_config();
  cfg.threads = 4;
  const std::vector<SweepPoint> sweep = run_noc_sweep(cfg);
  const std::vector<SweepScenario> grid = cfg.scenarios();
  ASSERT_EQ(grid.size(), sweep.size());
  // O(1) replay: any scenario — including its fault plan — reproduces
  // without simulating the grid before it.
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_TRUE(points_equal(
        run_noc_scenario(grid[static_cast<std::size_t>(i)], cfg,
                         static_cast<int>(i)),
        sweep[i]))
        << "scenario " << i << " failed to replay";
}

TEST(FaultSweepTest, DefaultAxesKeepTheLegacyGrid) {
  // A config that never mentions faults must enumerate the exact grid the
  // pre-fault harness did: same size, same order, pristine scenarios.
  SweepConfig cfg;
  cfg.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose};
  cfg.mesh_sides = {4};
  cfg.injection_rates = {0.05, 0.1};
  const std::vector<SweepScenario> grid = cfg.scenarios();
  ASSERT_EQ(grid.size(), 4u);
  for (const SweepScenario& sc : grid) {
    EXPECT_EQ(sc.fault_count, 0);
    EXPECT_EQ(sc.retry_budget, kGuardDisabled);
  }
  EXPECT_EQ(grid[0].pattern, TrafficPattern::kUniformRandom);
  EXPECT_EQ(grid[0].injection_rate, 0.05);
  EXPECT_EQ(grid[1].injection_rate, 0.1);
  EXPECT_EQ(grid[2].pattern, TrafficPattern::kTranspose);
}

TEST(FaultSweepTest, ValidateRejectsOversubscribedFaultAxis) {
  SweepConfig cfg = fault_sweep_config();
  cfg.fault_kinds = {FaultKind::kRouterDead};
  cfg.fault_counts = {0, 100};  // more routers than a 4x4 mesh has
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.fault_counts = {0, 2};
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace renoc
