// renoc_lint rule engine tests.
//
// Every rule is exercised both ways: a bad fixture that must fire (with
// the expected rule id and line) and a good fixture that must stay quiet.
// Fixtures are in-memory strings passed to lint_source() with synthetic
// repo-relative paths, so path-scoped rules (src-only, engine-dir-only,
// reference_* exemption) are covered without touching the filesystem;
// one lint_tree() test runs the real directory walk in a temp tree.
//
// All fixture text lives in raw string literals: when renoc_lint scans
// this file itself, string literals are blanked, so the deliberately bad
// snippets below cannot trip the real tree lint.
#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace renoc::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// --- split_source ----------------------------------------------------------

TEST(SplitSourceTest, PreservesLineStructure) {
  const std::string src = "int a; // note\n/* b\nlines */ int c;\n";
  const SplitSource split = split_source(src);
  EXPECT_EQ(split.code.size(), src.size());
  EXPECT_EQ(split.comments.size(), src.size());
  EXPECT_EQ(std::count(split.code.begin(), split.code.end(), '\n'), 3);
  EXPECT_EQ(std::count(split.comments.begin(), split.comments.end(), '\n'),
            3);
}

TEST(SplitSourceTest, RoutesCommentTextAndBlanksStrings) {
  const SplitSource split =
      split_source("x = \"new int\"; // grow here\nchar c = '%';\n");
  EXPECT_EQ(split.code.find("new"), std::string::npos);
  EXPECT_EQ(split.code.find("grow"), std::string::npos);
  EXPECT_NE(split.comments.find("grow here"), std::string::npos);
  EXPECT_EQ(split.code.find('%'), std::string::npos);
  EXPECT_NE(split.code.find("x ="), std::string::npos);
}

TEST(SplitSourceTest, HandlesRawStringsAndDigitSeparators) {
  const SplitSource split = split_source(
      "auto s = R\"(malloc( // not a comment)\";\nint n = 1'000'000;\n");
  EXPECT_EQ(split.code.find("malloc"), std::string::npos);
  EXPECT_EQ(split.comments.find("not a comment"), std::string::npos);
  EXPECT_NE(split.code.find("1'000'000"), std::string::npos);
}

// --- hot-alloc + hot-region ------------------------------------------------

TEST(HotAllocTest, FiresOnNewAndContainerGrowth) {
  const std::string src = R"cpp(void f(std::vector<int>& v) {
  // renoc-hot-begin
  int* p = new int[4];
  v.push_back(1);
  // renoc-hot-end
  v.push_back(2);
}
)cpp";
  const auto findings = lint_source("src/noc/hotpath.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "hot-alloc");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("new"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "hot-alloc");
  EXPECT_EQ(findings[1].line, 4);  // line 6's push_back is outside the region
}

TEST(HotAllocTest, IgnoresStringsCommentsAndIdentifierSubstrings) {
  const std::string src = R"cpp(void f(Thing& renewal) {
  // renoc-hot-begin
  log("calling new here");  // mentions malloc( too
  renewal.renew_all();
  int news_count = 0;
  // renoc-hot-end
}
)cpp";
  EXPECT_TRUE(lint_source("src/noc/hotpath.cpp", src).empty());
}

TEST(HotAllocTest, SuppressedOnlyWithJustification) {
  const std::string good = R"cpp(void f(std::vector<int>& v) {
  // renoc-hot-begin
  v.push_back(1);  // renoc-lint-allow(hot-alloc): capacity reserved in ctor
  // renoc-hot-end
}
)cpp";
  EXPECT_TRUE(lint_source("src/noc/hotpath.cpp", good).empty());

  const std::string bare = R"cpp(void f(std::vector<int>& v) {
  // renoc-hot-begin
  v.push_back(1);  // renoc-lint-allow(hot-alloc)
  // renoc-hot-end
}
)cpp";
  const auto findings = lint_source("src/noc/hotpath.cpp", bare);
  ASSERT_EQ(findings.size(), 2u);  // malformed marker AND unsuppressed rule
  EXPECT_EQ(findings[0].rule, "bad-allow");
  EXPECT_EQ(findings[1].rule, "hot-alloc");
}

TEST(HotAllocTest, StandaloneAllowCommentCoversTheNextLine) {
  const std::string good = R"cpp(void f(std::vector<int>& v) {
  // renoc-hot-begin
  // renoc-lint-allow(hot-alloc): capacity reserved in the constructor
  v.push_back(1);
  // renoc-hot-end
}
)cpp";
  EXPECT_TRUE(lint_source("src/noc/hotpath.cpp", good).empty());

  // Trailing a code line, the suppression does NOT leak onto the next one.
  const std::string leak = R"cpp(void f(std::vector<int>& v) {
  // renoc-hot-begin
  v.push_back(1);  // renoc-lint-allow(hot-alloc): reserved in ctor
  v.push_back(2);
  // renoc-hot-end
}
)cpp";
  const auto findings = lint_source("src/noc/hotpath.cpp", leak);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-alloc");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(HotRegionTest, ReportsUnbalancedMarkers) {
  const auto stray =
      lint_source("src/noc/a.cpp", "int x;\n// renoc-hot-end\n");
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0].rule, "hot-region");
  EXPECT_EQ(stray[0].line, 2);

  const auto open =
      lint_source("src/noc/a.cpp", "// renoc-hot-begin\nint x;\n");
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].rule, "hot-region");
  EXPECT_EQ(open[0].line, 1);

  const auto nested = lint_source(
      "src/noc/a.cpp",
      "// renoc-hot-begin\n// renoc-hot-begin\n// renoc-hot-end\n");
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_EQ(nested[0].rule, "hot-region");
  EXPECT_EQ(nested[0].line, 2);
}

TEST(HotRegionTest, UnknownRuleInAllowMarkerIsReported) {
  const auto findings = lint_source(
      "src/noc/a.cpp", "int x;  // renoc-lint-allow(no-such-rule): why\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bad-allow");
}

// --- raw-random ------------------------------------------------------------

TEST(RawRandomTest, FiresOnlyInSrcOutsideUtilRng) {
  const std::string src = R"cpp(int f() {
  std::srand(42);
  std::random_device rd;
  return rand() + static_cast<int>(time(nullptr));
}
)cpp";
  const auto findings = lint_source("src/core/experiment.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"raw-random", "raw-random",
                                      "raw-random"}));
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_EQ(findings[2].line, 4);

  EXPECT_TRUE(lint_source("bench/micro_x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/util/rng.cpp", src).empty());
}

TEST(RawRandomTest, WordBoundariesAvoidFalsePositives) {
  const std::string src = R"cpp(double g() {
  const double t = time_ms(budget, op);
  return strand(7) + lifetime(3);
}
)cpp";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// --- ring-modulo -----------------------------------------------------------

TEST(RingModuloTest, FiresOnCursorWrapByModulo) {
  const std::string src = R"cpp(void push() {
  head = (head + 1) % cap;
  slot = index % dim.width;
}
)cpp";
  const auto findings = lint_source("src/noc/ring.cpp", src);
  ASSERT_EQ(findings.size(), 1u);  // plain index arithmetic stays legal
  EXPECT_EQ(findings[0].rule, "ring-modulo");
  EXPECT_EQ(findings[0].line, 2);

  EXPECT_TRUE(lint_source("src/noc/reference_ring.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/ring_test.cpp", src).empty());
}

TEST(RingModuloTest, SuppressibleWithJustification) {
  const std::string src =
      "cold = (head + i) % cap;  "
      "// renoc-lint-allow(ring-modulo): one-off resize copy, not hot\n";
  EXPECT_TRUE(lint_source("src/noc/ring.cpp", src).empty());
}

// --- engine-unordered-map --------------------------------------------------

TEST(EngineUnorderedMapTest, BansHashMapsInFlatEngines) {
  const std::string src = "std::unordered_map<int, int> m;\n";
  const auto noc = lint_source("src/noc/fabric2.hpp", src);
  ASSERT_EQ(noc.size(), 1u);
  EXPECT_EQ(noc[0].rule, "engine-unordered-map");
  EXPECT_EQ(lint_source("src/ldpc/x.cpp", src).size(), 1u);

  EXPECT_TRUE(lint_source("src/thermal/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/noc/reference_fabric2.hpp", src).empty());
}

// --- atomic-artifact-write --------------------------------------------------

TEST(AtomicArtifactWriteTest, BansDirectOfstreamInArtifactProducers) {
  const std::string src = "std::ofstream out(args.json_path);\n";
  for (const char* path : {"src/core/experiment_sweep.cpp",
                           "bench/micro_ldpc.cpp", "examples/ber_sweep.cpp"}) {
    const auto findings = lint_source(path, src);
    ASSERT_EQ(findings.size(), 1u) << path;
    EXPECT_EQ(findings[0].rule, "atomic-artifact-write") << path;
    EXPECT_NE(findings[0].message.find("AtomicFile"), std::string::npos);
  }
}

TEST(AtomicArtifactWriteTest, QuietOutsideArtifactScopeAndInJsonImpl) {
  const std::string src = "std::ofstream out(path);\n";
  // tools and tests stage scratch files on purpose; util/json IS the
  // atomic writer, so the underlying ofstream lives there.
  EXPECT_TRUE(lint_source("tools/renoc_sweep.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/sweep_test.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/util/json.cpp", src).empty());
  // Mentions that are not the token (comments, strings, other words).
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// ofstream is banned here\n").empty());
  EXPECT_TRUE(
      lint_source("src/core/x.cpp", "log(\"std::ofstream\");\n").empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp", "int my_ofstream_id;\n").empty());
}

TEST(AtomicArtifactWriteTest, SuppressibleWithJustification) {
  const std::string src =
      "std::ofstream raw(dump_path);  "
      "// renoc-lint-allow(atomic-artifact-write): debug dump, not an "
      "artifact\n";
  EXPECT_TRUE(lint_source("bench/micro_noc.cpp", src).empty());
}

// --- route-rebuild ---------------------------------------------------------

TEST(RouteRebuildTest, FiresOnTableRebuildInsideHotRegions) {
  const std::string src = R"cpp(void step() {
  // renoc-hot-begin
  build_adaptive_routes(dim, link_up, router_up, table);
  purge_stranded_packets();
  // renoc-hot-end
  build_adaptive_routes(dim, link_up, router_up, table);
}
)cpp";
  const auto findings = lint_source("src/noc/fabric2.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "route-rebuild");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("build_adaptive_routes"),
            std::string::npos);
  EXPECT_EQ(findings[1].rule, "route-rebuild");
  EXPECT_EQ(findings[1].line, 4);  // line 6's call is in the cold path
}

TEST(RouteRebuildTest, IgnoresMentionsThatAreNotCalls) {
  // A comment, a string, or taking the function's name without calling it
  // must stay quiet even inside a hot region.
  const std::string src = R"cpp(void step() {
  // renoc-hot-begin
  // build_adaptive_routes runs per epoch, never here
  auto* fn = &Fabric::purge_stranded_packets;
  // renoc-hot-end
}
)cpp";
  EXPECT_TRUE(lint_source("src/noc/fabric2.cpp", src).empty());
}

TEST(RouteRebuildTest, SuppressibleWithJustification) {
  const std::string src = R"cpp(void step() {
  // renoc-hot-begin
  // renoc-lint-allow(route-rebuild): one-shot rebuild measured cold
  build_adaptive_routes(dim, link_up, router_up, table);
  // renoc-hot-end
}
)cpp";
  EXPECT_TRUE(lint_source("src/noc/fabric2.cpp", src).empty());
}

// --- simd-intrinsics -------------------------------------------------------

TEST(SimdIntrinsicsTest, BansRawIntrinsicsOutsideUtilSimd) {
  const std::string src = R"cpp(#include <immintrin.h>
__m256i v = _mm256_set1_epi32(1);
__m128d w;
auto x = _mm_add_pd(w, w);
)cpp";
  const auto findings = lint_source("src/ldpc/decoder.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"simd-intrinsics", "simd-intrinsics",
                                      "simd-intrinsics", "simd-intrinsics"}));
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("intrin.h"), std::string::npos);
  EXPECT_EQ(findings[1].line, 2);

  // The rule applies everywhere renoc_lint walks, not only src/.
  EXPECT_EQ(lint_source("bench/micro_ldpc.cpp", src).size(), 4u);
  EXPECT_EQ(lint_source("tests/simd_test.cpp", src).size(), 4u);

  // util/simd* is the sanctioned home: header, dispatch, and tier TUs.
  EXPECT_TRUE(lint_source("src/util/simd.hpp", src).empty());
  EXPECT_TRUE(lint_source("src/util/simd_avx2.cpp", src).empty());
}

TEST(SimdIntrinsicsTest, IgnoresMentionsThatAreNotIntrinsics) {
  const std::string src = R"cpp(// _mm256_add_epi32 is wrapped by lanes::I32
auto s = "_mm_add_pd in a string";
int comm_mm_total = 0;
double x86_intrin_help = 0;  // no include, no token
)cpp";
  EXPECT_TRUE(lint_source("src/ldpc/decoder.cpp", src).empty());
}

TEST(SimdIntrinsicsTest, SuppressibleWithJustification) {
  const std::string src =
      "__m256i v;  "
      "// renoc-lint-allow(simd-intrinsics): doc example, never compiled\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// --- todo-tag --------------------------------------------------------------

TEST(TodoTagTest, RequiresIssueTagOnDeferredWorkMarkers) {
  const auto untagged = lint_source(
      "src/core/x.cpp", "// TODO: make this faster\nint x;\n");
  ASSERT_EQ(untagged.size(), 1u);
  EXPECT_EQ(untagged[0].rule, "todo-tag");
  EXPECT_EQ(untagged[0].line, 1);

  const auto fixme =
      lint_source("bench/x.cpp", "/* FIXME sometime */\n");
  ASSERT_EQ(fixme.size(), 1u);
  EXPECT_EQ(fixme[0].rule, "todo-tag");

  EXPECT_TRUE(
      lint_source("src/core/x.cpp", "// TODO(#42): make this faster\n")
          .empty());
  EXPECT_TRUE(
      lint_source("src/core/x.cpp", "auto s = \"TODO later\";\n").empty());
}

// --- formatting + tree walk ------------------------------------------------

TEST(FormatTest, FindingFormatsAsGreppableLine) {
  const Finding f{"src/noc/a.cpp", 12, "hot-alloc", "msg"};
  EXPECT_EQ(format_finding(f), "src/noc/a.cpp:12: [hot-alloc] msg");
}

TEST(LintTreeTest, WalksFilesAndClassifiesByRelativePath) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "renoc_lint_tree_test";
  fs::create_directories(root / "src" / "noc");
  {
    std::ofstream out(root / "src" / "noc" / "bad.cpp");
    out << "std::unordered_map<int, int> m;\n";
  }
  {
    std::ofstream out(root / "src" / "noc" / "good.cpp");
    out << "int plain = 0;\n";
  }
  {
    std::ofstream out(root / "src" / "noc" / "ignored.txt");
    out << "std::unordered_map<int, int> m;\n";
  }
  const auto findings = lint_tree(root.string(), {"src", "missing_dir"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "engine-unordered-map");
  EXPECT_EQ(findings[0].file, "src/noc/bad.cpp");
  fs::remove_all(root);
}

}  // namespace
}  // namespace renoc::lint
