// util/sweep tests: the crash-safe sweep service's full contract.
//
// Four clusters:
//   * indexing/RNG/boilerplate — decode/encode round trips on every
//     harness's axis shape, enumeration-order equality with nested loops,
//     stream equality with the harness RNG helpers, and the pinned shared
//     validation messages all three harnesses now emit;
//   * sharding — stride partition properties and bit-identity of any
//     N-way merge with the single-shard run, for the toy spec and for all
//     three harness adapters;
//   * checkpointing — segment round trips, kill-at-every-boundary resume
//     (every stop point merges bit-identical to a straight-through run),
//     and the validation ladder: each defect class (truncated file,
//     flipped payload bit, wrong schema version, overlapping ranges,
//     stale config, wrong geometry, malformed record) is rejected with a
//     CheckError naming that defect;
//   * conservation — completed + failed + skipped == enumerated in every
//     merge, with failures captured and missing shards materialized as
//     skipped.
#include "util/sweep.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment_sweep.hpp"
#include "ldpc/ber_harness.hpp"
#include "noc/sweep_harness.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace renoc::sweep {
namespace {

namespace fs = std::filesystem;

// --- helpers ---------------------------------------------------------------

/// What a failing RENOC_CHECK said, or "" if `fn` did not throw.
template <typename Fn>
std::string check_message(Fn&& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

/// Deterministic toy spec: scenario i's record is the first `words` draws
/// of scenario_rng(salt, i). Cheap enough to run hundreds of times.
SweepSpec toy_spec(std::int64_t enumerated, int words = 3,
                   std::uint64_t salt = 42) {
  SweepSpec spec;
  spec.enumerated = enumerated;
  spec.record_words = words;
  DigestBuilder digest;
  digest.fold_string("toy").fold(salt).fold_int(enumerated).fold_int(words);
  spec.config_digest = digest.digest();
  spec.make_runner = [salt, words] {
    return [salt, words](std::int64_t scenario, std::uint64_t* out) {
      Rng rng = scenario_rng(salt, scenario);
      for (int k = 0; k < words; ++k) out[k] = rng.next_u64();
    };
  };
  return spec;
}

bool records_equal(const std::vector<ScenarioRecord>& a,
                   const std::vector<ScenarioRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].scenario != b[i].scenario || a[i].outcome != b[i].outcome ||
        a[i].words != b[i].words)
      return false;
  return true;
}

/// Scratch checkpoint directory, unique per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() /
             ("renoc_sweep_test_" + name + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  CheckpointConfig ckpt(int every = 2) const {
    CheckpointConfig c;
    c.directory = path.string();
    c.every = every;
    return c;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void spill(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// In-place text edit of a checkpoint file; fails the test if `from` is
/// absent.
void patch_file(const std::string& path, const std::string& from,
                const std::string& to) {
  std::string text = slurp(path);
  const std::size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos) << from << " not in " << path;
  text.replace(pos, from.size(), to);
  spill(path, text);
}

// --- scenario indexing -----------------------------------------------------

TEST(ScenarioIndexTest, RoundTripsOnEveryHarnessShape) {
  const std::vector<std::vector<std::int64_t>> shapes = {
      {3, 7},                    // ber: points x blocks
      {2, 2, 3, 1, 2, 1, 2},     // noc: 7 axes
      {4, 2, 3, 2},              // experiment: 4 axes
      {1},
      {1, 1, 1},
      {5},
  };
  std::vector<std::int64_t> digits;
  for (const auto& shape : shapes) {
    const std::int64_t total = axis_product(shape);
    for (std::int64_t i = 0; i < total; ++i) {
      decode_scenario_index(i, shape, digits);
      ASSERT_EQ(digits.size(), shape.size());
      for (std::size_t k = 0; k < shape.size(); ++k) {
        ASSERT_GE(digits[k], 0);
        ASSERT_LT(digits[k], shape[k]);
      }
      ASSERT_EQ(encode_scenario_index(digits, shape), i);
    }
  }
}

TEST(ScenarioIndexTest, MatchesNestedLoopOrder) {
  // The decoder's contract: index order IS nested-loop order with the
  // last axis fastest. Enumerate a 3-axis grid both ways.
  const std::vector<std::int64_t> shape = {2, 3, 4};
  std::vector<std::vector<std::int64_t>> by_loops;
  for (std::int64_t a = 0; a < 2; ++a)
    for (std::int64_t b = 0; b < 3; ++b)
      for (std::int64_t c = 0; c < 4; ++c) by_loops.push_back({a, b, c});
  std::vector<std::int64_t> digits;
  for (std::int64_t i = 0; i < axis_product(shape); ++i) {
    decode_scenario_index(i, shape, digits);
    EXPECT_EQ(digits, by_loops[static_cast<std::size_t>(i)]) << "index " << i;
  }
}

TEST(ScenarioIndexTest, RejectsOutOfRangeIndexAndDigits) {
  const std::vector<std::int64_t> shape = {2, 3};
  std::vector<std::int64_t> digits;
  EXPECT_THROW(decode_scenario_index(6, shape, digits), CheckError);
  EXPECT_THROW(decode_scenario_index(-1, shape, digits), CheckError);
  EXPECT_THROW(encode_scenario_index({2, 0}, shape), CheckError);
  EXPECT_THROW(axis_product({2, 0}), CheckError);
}

TEST(ScenarioIndexTest, HarnessGridsEnumerateInIndexOrder) {
  // noc: scenarios()[i] must be the decode of i over the 7-axis shape, in
  // the documented axis order.
  SweepConfig noc;
  noc.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose};
  noc.mesh_sides = {4, 8};
  noc.injection_rates = {0.05, 0.1, 0.2};
  noc.message_words = {2, 4};
  noc.fault_counts = {0, 2};
  noc.fault_kinds = {FaultKind::kLinkDead, FaultKind::kRouterDead};
  noc.retry_budgets = {kGuardDisabled, 3};
  const std::vector<SweepScenario> grid = noc.scenarios();
  const std::vector<std::int64_t> shape = {2, 2, 3, 2, 2, 2, 2};
  ASSERT_EQ(static_cast<std::int64_t>(grid.size()), axis_product(shape));
  std::vector<std::int64_t> d;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    decode_scenario_index(static_cast<std::int64_t>(i), shape, d);
    EXPECT_EQ(grid[i].pattern, noc.patterns[static_cast<std::size_t>(d[0])]);
    EXPECT_EQ(grid[i].dim.width,
              noc.mesh_sides[static_cast<std::size_t>(d[1])]);
    EXPECT_EQ(grid[i].injection_rate,
              noc.injection_rates[static_cast<std::size_t>(d[2])]);
    EXPECT_EQ(grid[i].message_words,
              noc.message_words[static_cast<std::size_t>(d[3])]);
    EXPECT_EQ(grid[i].fault_count,
              noc.fault_counts[static_cast<std::size_t>(d[4])]);
    EXPECT_EQ(grid[i].fault_kind,
              noc.fault_kinds[static_cast<std::size_t>(d[5])]);
    EXPECT_EQ(grid[i].retry_budget,
              noc.retry_budgets[static_cast<std::size_t>(d[6])]);
  }

  // experiment: same check over its 4-axis shape.
  ExperimentSweepConfig exp;
  exp.schemes = {MigrationScheme::kNone, MigrationScheme::kRotation};
  exp.periods_s = {54.65e-6, 109.3e-6};
  exp.power_scales = {1.0, 1.5};
  exp.refines = {1, 2};
  const std::vector<ExperimentScenario> egrid = exp.scenarios();
  const std::vector<std::int64_t> eshape = {2, 2, 2, 2};
  ASSERT_EQ(static_cast<std::int64_t>(egrid.size()), axis_product(eshape));
  for (std::size_t i = 0; i < egrid.size(); ++i) {
    decode_scenario_index(static_cast<std::int64_t>(i), eshape, d);
    EXPECT_EQ(egrid[i].scheme, exp.schemes[static_cast<std::size_t>(d[0])]);
    EXPECT_EQ(egrid[i].period_s,
              exp.periods_s[static_cast<std::size_t>(d[1])]);
    EXPECT_EQ(egrid[i].power_scale,
              exp.power_scales[static_cast<std::size_t>(d[2])]);
    EXPECT_EQ(egrid[i].refine, exp.refines[static_cast<std::size_t>(d[3])]);
  }
}

// --- RNG streams -----------------------------------------------------------

TEST(ScenarioRngTest, MatchesHarnessRngHelpers) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 0xDEADBEEFULL}) {
    for (const int i : {0, 1, 7, 1000}) {
      Rng shared = scenario_rng(seed, i);
      Rng noc = sweep_scenario_rng(seed, i);
      Rng exp = experiment_scenario_rng(seed, i);
      const std::uint64_t draw = shared.next_u64();
      EXPECT_EQ(draw, noc.next_u64());
      EXPECT_EQ(draw, exp.next_u64());
    }
  }
  // ber chains a second derivation for (point, block); the service's
  // scenario index folds the same two coordinates the same way.
  Rng direct = ber_block_rng(7, 3, 11);
  Rng chained(derive_stream_seed(derive_stream_seed(7, 3), 11));
  EXPECT_EQ(direct.next_u64(), chained.next_u64());
}

// --- shared validation boilerplate ----------------------------------------

TEST(ValidationTest, PinnedAxisMessagesAreIdenticalAcrossHarnesses) {
  // The hoisted helper gives all three harnesses the same message shape;
  // these strings are pinned — scripts may grep for them.
  BerConfig ber;
  ber.ebn0_db.clear();
  EXPECT_NE(check_message([&] { ber.validate(); })
                .find("sweep needs at least one Eb/N0"),
            std::string::npos);

  SweepConfig noc;
  noc.patterns.clear();
  EXPECT_NE(check_message([&] { noc.validate(); })
                .find("sweep needs at least one pattern"),
            std::string::npos);

  ExperimentSweepConfig exp;
  exp.schemes.clear();
  EXPECT_NE(check_message([&] { exp.validate(); })
                .find("sweep needs at least one scheme"),
            std::string::npos);

  // Thread clamp: same message, same value formatting, in all three.
  const std::string want = "sweep threads must be >= 1, got 0";
  BerConfig ber2;
  ber2.ebn0_db = {1.0};
  ber2.threads = 0;
  EXPECT_NE(check_message([&] { ber2.validate(); }).find(want),
            std::string::npos);
  SweepConfig noc2;
  noc2.threads = 0;
  EXPECT_NE(check_message([&] { noc2.validate(); }).find(want),
            std::string::npos);
  ExperimentSweepConfig exp2;
  exp2.threads = 0;
  EXPECT_NE(check_message([&] { exp2.validate(); }).find(want),
            std::string::npos);
}

TEST(ValidationTest, ClampWorkers) {
  EXPECT_EQ(clamp_workers(4, 100), 4);
  EXPECT_EQ(clamp_workers(4, 2), 2);
  EXPECT_EQ(clamp_workers(4, 0), 1);  // at least one worker spins up
  EXPECT_EQ(clamp_workers(1, 100), 1);
  EXPECT_THROW(clamp_workers(0, 10), CheckError);
}

// --- sharding --------------------------------------------------------------

TEST(ShardTest, StridePartitionIsExactAndAscending) {
  const std::int64_t enumerated = 23;
  for (const int count : {1, 2, 3, 4, 7}) {
    std::vector<int> owner(static_cast<std::size_t>(enumerated), -1);
    std::int64_t total = 0;
    for (int i = 0; i < count; ++i) {
      const Shard shard{i, count};
      shard.validate();
      const std::int64_t owned = shard.owned_count(enumerated);
      total += owned;
      std::int64_t prev = -1;
      for (std::int64_t pos = 0; pos < owned; ++pos) {
        const std::int64_t s = shard.owned_at(pos);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, enumerated);
        ASSERT_GT(s, prev);  // ascending
        prev = s;
        ASSERT_TRUE(shard.owns(s));
        ASSERT_EQ(owner[static_cast<std::size_t>(s)], -1);  // disjoint
        owner[static_cast<std::size_t>(s)] = i;
      }
    }
    EXPECT_EQ(total, enumerated);  // complete
  }
}

TEST(ShardTest, RejectsBadGeometry) {
  EXPECT_THROW((Shard{0, 0}.validate()), CheckError);
  EXPECT_THROW((Shard{-1, 2}.validate()), CheckError);
  EXPECT_THROW((Shard{2, 2}.validate()), CheckError);
}

TEST(ShardRunTest, AnySplitMergesToTheSingleShardRun) {
  const SweepSpec spec = toy_spec(17);
  const std::vector<ScenarioRecord> baseline =
      run_sweep_shard(spec, ShardRunOptions{}).records;
  ASSERT_EQ(baseline.size(), 17u);
  for (const int shards : {1, 2, 4}) {
    std::vector<std::vector<ScenarioRecord>> parts;
    for (int s = 0; s < shards; ++s) {
      ShardRunOptions opt;
      opt.shard = Shard{s, shards};
      parts.push_back(run_sweep_shard(spec, opt).records);
    }
    const MergeResult merged = merge_shard_records(spec.enumerated, parts);
    EXPECT_TRUE(merged.counts.conserved());
    EXPECT_EQ(merged.counts.skipped, 0);
    EXPECT_TRUE(records_equal(baseline, merged.records)) << shards;
  }
}

TEST(ShardRunTest, ThreadCountDoesNotChangeRecords) {
  const SweepSpec spec = toy_spec(11);
  const std::vector<ScenarioRecord> one =
      run_sweep_shard(spec, ShardRunOptions{}).records;
  ShardRunOptions four;
  four.threads = 4;
  EXPECT_TRUE(records_equal(one, run_sweep_shard(spec, four).records));
}

// --- harness adapters ------------------------------------------------------

TEST(HarnessAdapterTest, BerServiceRunEqualsDirectSweep) {
  Rng code_rng(3);
  const LdpcCode code = LdpcCode::make_regular(120, 3, 6, code_rng);
  const LdpcEncoder encoder(code);
  BerConfig cfg;
  cfg.ebn0_db = {1.0, 3.0};
  cfg.blocks_per_point = 5;
  cfg.iterations = 4;
  cfg.seed = 99;
  const std::vector<BerPoint> direct = run_ber_sweep(code, encoder, cfg);

  const SweepSpec spec = make_ber_sweep_spec(code, encoder, cfg);
  EXPECT_EQ(spec.enumerated, 10);
  std::vector<std::vector<ScenarioRecord>> parts;
  for (int s = 0; s < 2; ++s) {
    ShardRunOptions opt;
    opt.shard = Shard{s, 2};
    parts.push_back(run_sweep_shard(spec, opt).records);
  }
  const MergeResult merged = merge_shard_records(spec.enumerated, parts);
  const std::vector<BerPoint> service =
      ber_points_from_records(cfg, merged.records);
  ASSERT_EQ(service.size(), direct.size());
  for (std::size_t p = 0; p < direct.size(); ++p) {
    EXPECT_EQ(service[p].ebn0_db, direct[p].ebn0_db);
    EXPECT_EQ(service[p].blocks, direct[p].blocks);
    EXPECT_EQ(service[p].bits, direct[p].bits);
    EXPECT_EQ(service[p].bit_errors, direct[p].bit_errors);
    EXPECT_EQ(service[p].block_errors, direct[p].block_errors);
    EXPECT_EQ(service[p].iterations_total, direct[p].iterations_total);
  }
}

TEST(HarnessAdapterTest, NocServiceRunEqualsDirectSweep) {
  SweepConfig cfg;
  cfg.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose};
  cfg.injection_rates = {0.05, 0.2};
  cfg.fault_counts = {0, 2};
  cfg.retry_budgets = {3};
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 150;
  cfg.seed = 7;
  const std::vector<SweepPoint> direct = run_noc_sweep(cfg);
  const std::vector<SweepScenario> grid = cfg.scenarios();

  const SweepSpec spec = make_noc_sweep_spec(cfg);
  ASSERT_EQ(spec.enumerated, static_cast<std::int64_t>(direct.size()));
  std::vector<std::vector<ScenarioRecord>> parts;
  for (int s = 0; s < 4; ++s) {
    ShardRunOptions opt;
    opt.shard = Shard{s, 4};
    parts.push_back(run_sweep_shard(spec, opt).records);
  }
  const MergeResult merged = merge_shard_records(spec.enumerated, parts);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const SweepPoint got = noc_point_from_record(grid[i], merged.records[i]);
    const SweepPoint& want = direct[i];
    EXPECT_EQ(got.scenario_index, want.scenario_index);
    EXPECT_EQ(got.messages_sent, want.messages_sent);
    EXPECT_EQ(got.messages_received, want.messages_received);
    EXPECT_EQ(got.messages_skipped, want.messages_skipped);
    EXPECT_EQ(got.packets_delivered, want.packets_delivered);
    EXPECT_EQ(got.flits_delivered, want.flits_delivered);
    EXPECT_EQ(got.offered_flit_rate, want.offered_flit_rate);
    EXPECT_EQ(got.injected_flit_rate, want.injected_flit_rate);
    EXPECT_EQ(got.accepted_flit_rate, want.accepted_flit_rate);
    EXPECT_EQ(got.avg_latency_cycles, want.avg_latency_cycles);
    EXPECT_EQ(got.max_latency_cycles, want.max_latency_cycles);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.packets_retried, want.packets_retried);
    EXPECT_EQ(got.packets_dropped, want.packets_dropped);
    EXPECT_EQ(got.packets_unreachable, want.packets_unreachable);
    EXPECT_EQ(got.duplicates_suppressed, want.duplicates_suppressed);
    EXPECT_EQ(got.route_epochs, want.route_epochs);
  }
}

TEST(HarnessAdapterTest, ExperimentServiceRunEqualsDirectSweep) {
  ExperimentSweepConfig cfg;
  cfg.schemes = {MigrationScheme::kNone, MigrationScheme::kRotation};
  cfg.periods_s = {109.3e-6};
  cfg.power_scales = {1.0, 1.25};
  cfg.refines = {1};
  cfg.thermal.min_orbits = 1;
  cfg.thermal.max_orbits = 2;
  cfg.thermal.tol_c = 0.5;
  cfg.seed = 1234;
  const std::vector<ExperimentSweepPoint> direct = run_experiment_sweep(cfg);
  const std::vector<ExperimentScenario> grid = cfg.scenarios();

  const SweepSpec spec = make_experiment_sweep_spec(cfg);
  ASSERT_EQ(spec.enumerated, static_cast<std::int64_t>(direct.size()));
  std::vector<std::vector<ScenarioRecord>> parts;
  for (int s = 0; s < 2; ++s) {
    ShardRunOptions opt;
    opt.shard = Shard{s, 2};
    parts.push_back(run_sweep_shard(spec, opt).records);
  }
  const MergeResult merged = merge_shard_records(spec.enumerated, parts);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const ExperimentSweepPoint got =
        experiment_point_from_record(grid[i], merged.records[i]);
    const ExperimentSweepPoint& want = direct[i];
    EXPECT_EQ(got.scenario_index, want.scenario_index);
    EXPECT_EQ(got.orbit_length, want.orbit_length);
    EXPECT_EQ(got.fine_nodes, want.fine_nodes);
    EXPECT_EQ(got.static_peak_c, want.static_peak_c);
    EXPECT_EQ(got.peak_temp_c, want.peak_temp_c);
    EXPECT_EQ(got.reduction_c, want.reduction_c);
    EXPECT_EQ(got.mean_temp_c, want.mean_temp_c);
    EXPECT_EQ(got.ripple_c, want.ripple_c);
    EXPECT_EQ(got.steady_peak_of_avg_c, want.steady_peak_of_avg_c);
    EXPECT_EQ(got.orbits_run, want.orbits_run);
    EXPECT_EQ(got.converged, want.converged);
  }
}

// --- checkpointing ---------------------------------------------------------

TEST(CheckpointTest, SegmentsRoundTripAndResumeRunsNothing) {
  const SweepSpec spec = toy_spec(10);
  const ScratchDir dir("roundtrip");
  ShardRunOptions opt;
  opt.checkpoint = dir.ckpt(/*every=*/3);
  const ShardRunResult first = run_sweep_shard(spec, opt);
  EXPECT_EQ(first.resumed, 0);
  // 10 scenarios at period 3: three full segments plus the tail flush.
  EXPECT_EQ(first.segments_written, 4);

  int segments = 0;
  const std::vector<ScenarioRecord> loaded =
      load_shard_checkpoints(spec, opt.checkpoint, opt.shard, &segments);
  EXPECT_EQ(segments, 4);
  EXPECT_TRUE(records_equal(first.records, loaded));

  // A rerun over complete checkpoints re-enumerates nothing.
  const ShardRunResult again = run_sweep_shard(spec, opt);
  EXPECT_EQ(again.resumed, 10);
  EXPECT_EQ(again.segments_written, 0);
  EXPECT_TRUE(records_equal(first.records, again.records));
}

TEST(CheckpointTest, KillAtEveryBoundaryResumesToIdenticalBits) {
  const SweepSpec spec = toy_spec(12);
  const std::vector<ScenarioRecord> baseline =
      run_sweep_shard(spec, ShardRunOptions{}).records;
  // Kill after every possible number of completed scenarios (stop_after
  // abandons the run without the tail flush, exactly like a SIGKILL), then
  // resume to completion and demand bit-identity with the straight-through
  // run.
  for (std::int64_t stop = 0; stop <= 12; ++stop) {
    const ScratchDir dir("kill" + std::to_string(stop));
    ShardRunOptions killed;
    killed.checkpoint = dir.ckpt(/*every=*/2);
    killed.stop_after = stop;
    run_sweep_shard(spec, killed);

    ShardRunOptions resume;
    resume.checkpoint = killed.checkpoint;
    const ShardRunResult done = run_sweep_shard(spec, resume);
    EXPECT_EQ(done.resumed, (stop / 2) * 2) << stop;  // whole segments only
    EXPECT_TRUE(records_equal(baseline, done.records)) << stop;

    const MergeResult merged =
        merge_checkpoints(spec, resume.checkpoint, 1);
    EXPECT_TRUE(merged.counts.conserved());
    EXPECT_EQ(merged.counts.skipped, 0) << stop;
    EXPECT_TRUE(records_equal(baseline, merged.records)) << stop;
  }
}

TEST(CheckpointTest, ShardedKillAndResumeMergesToBaseline) {
  const SweepSpec spec = toy_spec(14);
  const std::vector<ScenarioRecord> baseline =
      run_sweep_shard(spec, ShardRunOptions{}).records;
  const ScratchDir dir("shardkill");
  // Shard 1 of 2 dies mid-run; shard 0 completes. The rerun of shard 1
  // resumes from its segments and the merge is bit-identical.
  ShardRunOptions s0;
  s0.shard = Shard{0, 2};
  s0.checkpoint = dir.ckpt();
  run_sweep_shard(spec, s0);
  ShardRunOptions s1 = s0;
  s1.shard = Shard{1, 2};
  s1.stop_after = 3;
  run_sweep_shard(spec, s1);
  s1.stop_after = -1;
  const ShardRunResult resumed = run_sweep_shard(spec, s1);
  EXPECT_EQ(resumed.resumed, 2);  // one full segment of the killed run

  const MergeResult merged = merge_checkpoints(spec, dir.ckpt(), 2);
  EXPECT_TRUE(merged.counts.conserved());
  EXPECT_EQ(merged.counts.skipped, 0);
  EXPECT_TRUE(records_equal(baseline, merged.records));
}

// --- the validation ladder -------------------------------------------------

/// Writes a complete two-segment checkpoint store for the toy spec and
/// returns the paths of segments 0 and 1.
struct CorruptFixture {
  SweepSpec spec = toy_spec(8);
  ScratchDir dir;
  std::string seg0;
  std::string seg1;

  explicit CorruptFixture(const std::string& name) : dir(name) {
    ShardRunOptions opt;
    opt.checkpoint = dir.ckpt(/*every=*/4);
    run_sweep_shard(spec, opt);
    seg0 = checkpoint_segment_path(opt.checkpoint, opt.shard, 0);
    seg1 = checkpoint_segment_path(opt.checkpoint, opt.shard, 1);
    EXPECT_TRUE(fs::exists(seg0));
    EXPECT_TRUE(fs::exists(seg1));
  }

  std::string load_error() {
    return check_message([&] {
      load_shard_checkpoints(spec, dir.ckpt(4), Shard{}, nullptr);
    });
  }
};

TEST(CheckpointDefectTest, TruncatedFileIsNamed) {
  CorruptFixture fx("truncated");
  const std::string text = slurp(fx.seg1);
  spill(fx.seg1, text.substr(0, text.size() / 2));
  EXPECT_NE(fx.load_error().find("truncated or malformed"),
            std::string::npos);
}

TEST(CheckpointDefectTest, FlippedPayloadBitIsNamed) {
  CorruptFixture fx("bitflip");
  // Flip one hex digit of the first record's payload to another valid
  // digit: the JSON stays well formed, only the checksum can notice.
  std::string text = slurp(fx.seg0);
  const std::size_t key = text.find("\"words\": \"");
  ASSERT_NE(key, std::string::npos);
  const std::size_t digit = key + std::string("\"words\": \"").size();
  text[digit] = text[digit] == '7' ? '8' : '7';
  spill(fx.seg0, text);
  EXPECT_NE(fx.load_error().find("payload checksum mismatch"),
            std::string::npos);
}

TEST(CheckpointDefectTest, WrongSchemaVersionIsNamed) {
  CorruptFixture fx("version");
  patch_file(fx.seg0, "\"version\": 1", "\"version\": 2");
  EXPECT_NE(fx.load_error().find("unsupported checkpoint schema or version"),
            std::string::npos);
}

TEST(CheckpointDefectTest, OverlappingRangesAreNamed) {
  CorruptFixture fx("overlap");
  // Segment 1 claims the same scenarios segment 0 already covered.
  fs::copy_file(fx.seg0, fx.seg1, fs::copy_options::overwrite_existing);
  EXPECT_NE(fx.load_error().find("overlapping scenario ranges"),
            std::string::npos);
}

TEST(CheckpointDefectTest, StaleConfigIsNamed) {
  CorruptFixture fx("stale");
  // Same files, different sweep config (a new salt changes the digest):
  // resuming must refuse, not silently merge results of the old config.
  fx.spec = toy_spec(8, 3, /*salt=*/43);
  EXPECT_NE(fx.load_error().find("config digest mismatch"),
            std::string::npos);
}

TEST(CheckpointDefectTest, WrongShardGeometryIsNamed) {
  CorruptFixture fx("geometry");
  // A 1-shard segment masquerading under a 2-shard path: the embedded
  // geometry gives it away.
  CheckpointConfig two = fx.dir.ckpt(4);
  fs::copy_file(fx.seg0, checkpoint_segment_path(two, Shard{0, 2}, 0),
                fs::copy_options::overwrite_existing);
  const std::string message = check_message([&] {
    load_shard_checkpoints(fx.spec, two, Shard{0, 2}, nullptr);
  });
  EXPECT_NE(message.find("shard geometry or record shape mismatch"),
            std::string::npos);
}

TEST(CheckpointDefectTest, MalformedRecordIsNamed) {
  CorruptFixture fx("record");
  patch_file(fx.seg0, "\"outcome\": \"completed\"",
             "\"outcome\": \"exploded\"");
  EXPECT_NE(fx.load_error().find("malformed checkpoint record"),
            std::string::npos);
}

// --- conservation and failure capture --------------------------------------

/// Toy spec whose runner throws on every third scenario.
SweepSpec faulty_spec(std::int64_t enumerated) {
  SweepSpec spec = toy_spec(enumerated, 2, /*salt=*/5);
  spec.make_runner = [] {
    return [](std::int64_t scenario, std::uint64_t* out) {
      RENOC_CHECK_MSG(scenario % 3 != 0, "scenario " << scenario << " died");
      Rng rng = scenario_rng(5, scenario);
      out[0] = rng.next_u64();
      out[1] = rng.next_u64();
    };
  };
  return spec;
}

TEST(ConservationTest, CapturedFailuresCountAsFailedNotSkipped) {
  const SweepSpec spec = faulty_spec(10);
  ShardRunOptions opt;
  opt.capture_failures = true;
  const ShardRunResult run = run_sweep_shard(spec, opt);
  const MergeResult merged = merge_shard_records(10, {run.records});
  EXPECT_TRUE(merged.counts.conserved());
  EXPECT_EQ(merged.counts.failed, 4);     // scenarios 0, 3, 6, 9
  EXPECT_EQ(merged.counts.completed, 6);
  EXPECT_EQ(merged.counts.skipped, 0);
  EXPECT_EQ(merged.incomplete,
            (std::vector<std::int64_t>{0, 3, 6, 9}));
  for (const ScenarioRecord& rec : merged.records) {
    if (rec.outcome == Outcome::kFailed) {
      EXPECT_TRUE(rec.words.empty());
    }
  }
}

TEST(ConservationTest, UncapturedFailureRethrows) {
  const SweepSpec spec = faulty_spec(10);
  EXPECT_THROW(run_sweep_shard(spec, ShardRunOptions{}), CheckError);
}

TEST(ConservationTest, MissingShardMaterializesAsSkipped) {
  const SweepSpec spec = toy_spec(9);
  ShardRunOptions opt;
  opt.shard = Shard{0, 3};
  const ShardRunResult only = run_sweep_shard(spec, opt);
  const MergeResult merged = merge_shard_records(9, {only.records});
  EXPECT_TRUE(merged.counts.conserved());
  EXPECT_EQ(merged.counts.completed, 3);  // scenarios 0, 3, 6
  EXPECT_EQ(merged.counts.skipped, 6);
  EXPECT_EQ(merged.incomplete,
            (std::vector<std::int64_t>{1, 2, 4, 5, 7, 8}));
}

TEST(ConservationTest, DuplicateScenarioIsAnOverlapError) {
  const SweepSpec spec = toy_spec(5);
  const std::vector<ScenarioRecord> records =
      run_sweep_shard(spec, ShardRunOptions{}).records;
  const std::string message = check_message(
      [&] { merge_shard_records(5, {records, records}); });
  EXPECT_NE(message.find("overlapping scenario ranges"), std::string::npos);
}

// --- atomic publication ----------------------------------------------------

TEST(AtomicWriteTest, PublishesWholeFilesAndLeavesNoTemp) {
  const ScratchDir dir("atomic");
  fs::create_directories(dir.path);
  const std::string path = (dir.path / "artifact.json").string();
  write_file_atomic(path, "first");
  EXPECT_EQ(slurp(path), "first");
  write_file_atomic(path, "second");  // atomic replace of an existing file
  EXPECT_EQ(slurp(path), "second");
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);  // no .tmp litter
}

TEST(AtomicWriteTest, UncommittedAtomicFileLeavesTargetUntouched) {
  const ScratchDir dir("uncommitted");
  fs::create_directories(dir.path);
  const std::string path = (dir.path / "artifact.json").string();
  write_file_atomic(path, "golden");
  {
    AtomicFile file(path);
    file.stream() << "half-written garbage";
    // No commit: destructor must discard, not publish.
  }
  EXPECT_EQ(slurp(path), "golden");
  AtomicFile file(path);
  file.stream() << "replacement";
  file.commit();
  EXPECT_EQ(slurp(path), "replacement");
  EXPECT_THROW(file.commit(), CheckError);  // commit is once
}

TEST(AtomicWriteTest, WriteJsonAtomicEmitsParseableDocument) {
  const ScratchDir dir("jsonatomic");
  fs::create_directories(dir.path);
  const std::string path = (dir.path / "doc.json").string();
  write_json_atomic(path, [](JsonWriter& w) {
    w.begin_object();
    w.key("answer").integer(42);
    w.end_object();
  });
  const JsonValue doc = parse_json_file(path);
  ASSERT_NE(doc.find("answer"), nullptr);
  EXPECT_EQ(doc.find("answer")->num_v, 42.0);
}

}  // namespace
}  // namespace renoc::sweep
