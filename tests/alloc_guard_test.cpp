// AllocGuard subsystem tests + the steady-state zero-allocation pins.
//
// The engine contract (PRs 3–5) is that every *warmed* hot path performs
// zero heap allocations: Fabric::step() under a periodic recycled load,
// MinSumDecoder::decode_into() with a reused result, a warmed
// MigrationThermalRuntime::run() on both solver backends, and the sparse
// steady/transient solve paths. The four micro benches used to be the only
// enforcement, at bench time, on one load shape each; these suites pin the
// same invariant in every CI configuration (Debug, Release, every
// sanitizer build) through util/alloc_guard.
//
// Linking this binary against the guard API pulls the interposed
// operator new/delete out of the renoc archive (see util/alloc_guard.hpp),
// so the measurements here are real allocation counts. When the
// RENOC_ALLOC_GUARD option is off the pins skip rather than vacuously pass.
#include "util/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "noc/fabric.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

#define RENOC_REQUIRE_INSTRUMENTED()                                     \
  do {                                                                   \
    if (!alloc_guard::instrumented())                                    \
      GTEST_SKIP() << "RENOC_ALLOC_GUARD is off: operator new/delete "   \
                      "are not interposed, so allocation counts would "  \
                      "be vacuous";                                      \
  } while (0)

// --- Guard mechanics -------------------------------------------------------

TEST(AllocGuardTest, CountsAndSizesAllocations) {
  RENOC_REQUIRE_INSTRUMENTED();
  const AllocGuard guard;
  {
    std::vector<char> v;
    v.reserve(1024);
  }
  EXPECT_GE(guard.count(), 1);
  EXPECT_GE(guard.bytes(), 1024);
}

TEST(AllocGuardTest, QuietScopeCountsZero) {
  RENOC_REQUIRE_INSTRUMENTED();
  std::vector<int> v(16, 7);
  const AllocGuard guard;
  long long sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 112);
  EXPECT_EQ(guard.count(), 0);
  EXPECT_EQ(guard.bytes(), 0);
  guard.check_zero("quiet scope");  // must not throw
}

TEST(AllocGuardTest, CheckZeroThrowsOnAllocation) {
  RENOC_REQUIRE_INSTRUMENTED();
  const AllocGuard guard;
  std::vector<char> v(64);
  EXPECT_THROW(guard.check_zero("allocating scope"), CheckError);
}

TEST(AllocGuardTest, TotalsAdvanceMonotonically) {
  RENOC_REQUIRE_INSTRUMENTED();
  const AllocTotals before = alloc_guard::totals();
  std::vector<char> v(128);
  const AllocTotals after = alloc_guard::totals();
  EXPECT_GT(after.count, before.count);
  EXPECT_GE(after.bytes - before.bytes, 128);
}

// --- Engine pins: warmed hot paths must not allocate -----------------------

// Same deterministic periodic load as bench/micro_noc's steady-state guard:
// every node sends a 4-word message east every 6 cycles and every delivery
// is recycled, so pool/ring/staging demand is exactly periodic and one
// warm-up period reaches every high-water mark.
TEST(EngineAllocTest, WarmedFabricStepLoopIsAllocationFree) {
  RENOC_REQUIRE_INSTRUMENTED();
  NocConfig cfg;
  cfg.dim = GridDim{4, 4};
  Fabric fabric(cfg);
  const int n = fabric.node_count();
  const GridDim dim = fabric.config().dim;
  auto pump = [&](int cycles) {
    for (int c = 0; c < cycles; ++c) {
      if (c % 6 == 0) {
        for (int src = 0; src < n; ++src) {
          const GridCoord co = index_to_coord(src, dim);
          Message m = fabric.acquire_message();
          m.src = src;
          m.dst = coord_to_index({(co.x + 1) % dim.width, co.y}, dim);
          m.tag = static_cast<std::uint64_t>(c);
          m.payload.assign(4, 0xa5a5a5a5ULL);
          fabric.send(std::move(m));
        }
      }
      fabric.step();
      for (int node = 0; node < n; ++node)
        while (auto msg = fabric.try_receive(node))
          fabric.recycle(std::move(*msg));
    }
  };
  pump(240);  // warm-up: pool, rings, staging at high water
  const AllocGuard guard;
  pump(240);
  guard.check_zero("warmed Fabric::step traffic loop");
  EXPECT_EQ(guard.count(), 0);
}

TEST(EngineAllocTest, WarmedDecodeIntoIsAllocationFree) {
  RENOC_REQUIRE_INSTRUMENTED();
  Rng code_rng(3);
  const LdpcCode code = LdpcCode::make_regular(510, 3, 6, code_rng);
  const LdpcEncoder encoder(code);
  Rng rng(5);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  AwgnChannel channel(2.5, 0.5, rng.split());
  const auto llrs = quantize_llrs(channel.transmit(encoder.encode(data)));

  for (const bool early_exit : {false, true}) {
    const MinSumDecoder decoder(code, 10, early_exit);
    DecodeResult result;
    decoder.decode_into(llrs, result);  // warm-up sizes hard_bits
    const AllocGuard guard;
    for (int i = 0; i < 8; ++i) decoder.decode_into(llrs, result);
    guard.check_zero(early_exit ? "warmed decode_into (early exit)"
                                : "warmed decode_into");
    EXPECT_EQ(guard.count(), 0);
  }
}

/// 4x4-tile die subdivided refine x refine (as RefinedThermalModel builds
/// it): refine=1 -> 58 nodes -> dense LU fallback; refine=2 -> 202 nodes
/// -> sparse minimum-degree engine. Both backends share the streaming loop
/// and both must hold the zero-allocation contract once warmed.
RcNetwork runtime_net(int refine) {
  const int side = 4 * refine;
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side},
                          date05_tile_area() /
                              (static_cast<double>(refine) * refine)),
      date05_hotspot_params());
}

TEST(EngineAllocTest, WarmedMigrationRuntimeRunIsAllocationFree) {
  RENOC_REQUIRE_INSTRUMENTED();
  for (const int refine : {1, 2}) {
    const RcNetwork net = runtime_net(refine);
    const int side = 4 * refine;
    const double tiles = static_cast<double>(refine) * refine;
    std::vector<double> power(static_cast<std::size_t>(net.die_count()),
                              2.0 / tiles);
    power[0] = 9.0 / tiles;
    const auto orbit = orbit_permutations(
        Transform{TransformKind::kRotation, 0}, GridDim{side, side});
    const std::vector<std::vector<double>> energy(
        orbit.size(),
        std::vector<double>(static_cast<std::size_t>(net.die_count()),
                            200e-6 / net.die_count()));

    const MigrationThermalRuntime engine(net, ThermalRunOptions{});
    (void)engine.run(power, orbit, energy);  // builds + warms the engine
    const AllocGuard guard;
    for (int i = 0; i < 3; ++i) (void)engine.run(power, orbit, energy);
    guard.check_zero(refine == 1
                         ? "warmed MigrationThermalRuntime::run (dense)"
                         : "warmed MigrationThermalRuntime::run (sparse)");
    EXPECT_EQ(guard.count(), 0);
  }
}

TEST(EngineAllocTest, WarmedSparseSolvePathsAreAllocationFree) {
  RENOC_REQUIRE_INSTRUMENTED();
  const RcNetwork net = runtime_net(2);
  std::vector<double> power(static_cast<std::size_t>(net.die_count()), 2.0);
  power[0] = 9.0;
  const SteadyStateSolver steady(net, SolverBackend::kSparse);
  TransientSolver transient(net, 2e-6, SolverBackend::kSparse);
  const std::vector<double> full = net.expand_die_power(power);

  std::vector<double> rise;
  steady.solve_die_power_into(power, rise);  // warm-up sizes the buffer
  transient.step(full);
  const AllocGuard guard;
  for (int i = 0; i < 8; ++i) {
    steady.solve_die_power_into(power, rise);
    transient.step(full);
  }
  guard.check_zero("warmed sparse solve_die_power_into/step");
  EXPECT_EQ(guard.count(), 0);
}

}  // namespace
}  // namespace renoc
