// Unit and property tests for the sparse module: CSR assembly, SpMV,
// the fill-reducing ordering, and the sparse LDL^T factorization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/sparse.hpp"

namespace renoc {
namespace {

// --- CSR assembly ------------------------------------------------------

TEST(SparseMatrixTest, TripletAssemblySumsDuplicates) {
  // The stamping idiom pushes the same coordinate several times.
  const std::vector<Triplet> trips{
      {0, 0, 1.0}, {0, 0, 2.5}, {1, 2, -1.0}, {0, 1, 4.0}, {1, 2, 0.5}};
  const SparseMatrix m = SparseMatrix::from_triplets(2, 3, trips);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);  // (0,0), (0,1), (1,2) after merging
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // unstored entry reads as zero
}

TEST(SparseMatrixTest, EmptyRowsAndMatrix) {
  const SparseMatrix empty = SparseMatrix::from_triplets(3, 3, {});
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_DOUBLE_EQ(empty.at(1, 1), 0.0);
  // Row 1 has no entries; row_ptr must still be monotone.
  const SparseMatrix m =
      SparseMatrix::from_triplets(3, 3, {{0, 0, 1.0}, {2, 2, 2.0}});
  EXPECT_EQ(m.row_ptr()[1], m.row_ptr()[2]);
  const std::vector<double> y = m.mul({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(SparseMatrixTest, OutOfRangeTripletRejected) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), CheckError);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, -1, 1.0}}), CheckError);
}

TEST(SparseMatrixTest, SpMVMatchesDenseOnRandomMatrix) {
  Rng rng(1234);
  const int n = 37;
  std::vector<Triplet> trips;
  const auto un = static_cast<std::uint64_t>(n);
  for (int k = 0; k < 300; ++k)
    trips.push_back({static_cast<int>(rng.next_below(un)),
                     static_cast<int>(rng.next_below(un)),
                     rng.next_double() * 2 - 1});
  const SparseMatrix m =
      SparseMatrix::from_triplets(n, n, trips);
  const Matrix dense = m.to_dense();
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double() * 10 - 5;
  const std::vector<double> ys = m.mul(x);
  const std::vector<double> yd = dense.mul(x);
  for (std::size_t i = 0; i < ys.size(); ++i)
    EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseMatrixTest, MulIntoReusesBuffer) {
  const SparseMatrix m =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  std::vector<double> y;
  m.mul_into({1.0, 1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  m.mul_into({2.0, 2.0}, y);  // stale contents must not leak through
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(SparseMatrixTest, PlusDiagonalAddsAndValidates) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 2.0}, {0, 1, -1.0}});
  const SparseMatrix shifted = m.plus_diagonal({10.0, 20.0});
  EXPECT_DOUBLE_EQ(shifted.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(shifted.at(1, 1), 22.0);
  EXPECT_DOUBLE_EQ(shifted.at(0, 1), -1.0);
  // A missing structural diagonal is a caller bug, not a silent no-op.
  const SparseMatrix no_diag =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_THROW(no_diag.plus_diagonal({1.0, 1.0}), CheckError);
}

TEST(SparseMatrixTest, SymmetryDetection) {
  const SparseMatrix sym = SparseMatrix::from_triplets(
      2, 2, {{0, 1, 3.0}, {1, 0, 3.0}, {0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_TRUE(sym.is_symmetric(1e-12));
  const SparseMatrix asym = SparseMatrix::from_triplets(
      2, 2, {{0, 1, 3.0}, {1, 0, 2.0}, {0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_FALSE(asym.is_symmetric(1e-12));
  EXPECT_TRUE(asym.is_symmetric(1.5));
}

// --- Ordering -----------------------------------------------------------

/// Grid Laplacian plus a hub node coupled to every grid node — the
/// structural skeleton of the RC networks (sink center = hub).
SparseMatrix grid_with_hub(int side) {
  const int n = side * side + 1;
  const int hub = side * side;
  std::vector<Triplet> trips;
  const auto stamp = [&](int a, int b) {
    trips.push_back({a, a, 1.0});
    trips.push_back({b, b, 1.0});
    trips.push_back({a, b, -1.0});
    trips.push_back({b, a, -1.0});
  };
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const int i = y * side + x;
      if (x + 1 < side) stamp(i, i + 1);
      if (y + 1 < side) stamp(i, i + side);
      stamp(i, hub);
    }
  }
  for (int i = 0; i < n; ++i) trips.push_back({i, i, 1.0});  // make it PD
  return SparseMatrix::from_triplets(n, n, trips);
}

TEST(OrderingTest, IsPermutationWithHubLast) {
  const SparseMatrix a = grid_with_hub(6);
  const std::vector<int> perm = bandwidth_reducing_ordering(a);
  ASSERT_EQ(perm.size(), 37u);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 37; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // The hub (degree 36) must be eliminated last.
  EXPECT_EQ(perm.back(), 36);
}

TEST(OrderingTest, HubLastBoundsFill) {
  // With the hub last, fill stays near the grid band; a natural ordering
  // that eliminates the hub early would couple everything to everything.
  const SparseMatrix a = grid_with_hub(8);
  const SparseLdlt chol(a);
  // Loose sanity bound: fill should be O(n * side), far below dense n^2/2.
  EXPECT_LT(chol.factor_nnz(), 65 * 65 / 4);
}

// --- LDL^T factorization ------------------------------------------------

TEST(SparseLdltTest, SolvesSmallSpdSystem) {
  // [4 1; 1 3] x = b, hand-checkable.
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  const SparseLdlt chol(a);
  const std::vector<double> x = chol.solve({1.0, 2.0});
  const std::vector<double> back = a.mul(x);
  EXPECT_NEAR(back[0], 1.0, 1e-12);
  EXPECT_NEAR(back[1], 2.0, 1e-12);
}

TEST(SparseLdltTest, SingularMatrixRejected) {
  // Rank-1 symmetric PSD matrix: pivot hits exactly zero.
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(SparseLdlt{a}, CheckError);
  // All-zero matrix.
  const SparseMatrix z = SparseMatrix::from_triplets(3, 3, {});
  EXPECT_THROW(SparseLdlt{z}, CheckError);
}

TEST(SparseLdltTest, IndefiniteMatrixRejected) {
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 1.0}});
  EXPECT_THROW(SparseLdlt{a}, CheckError);
}

TEST(SparseLdltTest, NonSquareAndBadPermRejected) {
  const SparseMatrix rect = SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(SparseLdlt{rect}, CheckError);
  const SparseMatrix ok =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(SparseLdlt(ok, {0, 0}), CheckError);   // not a permutation
  EXPECT_THROW(SparseLdlt(ok, {0, 1, 2}), CheckError);  // wrong size
}

TEST(SparseLdltTest, SolveInPlaceMatchesSolveRepeatedly) {
  const SparseMatrix a = grid_with_hub(4);
  const SparseLdlt chol(a);
  // The internal scratch is reused across calls; results must not drift.
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> b(17, 0.0);
    b[static_cast<std::size_t>(rep)] = 1.0 + rep;
    const std::vector<double> x = chol.solve(b);
    std::vector<double> y = b;
    chol.solve_in_place(y);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
  }
}

// Property sweep: random sparse SPD systems match the dense LU to high
// accuracy, with and without the default fill-reducing ordering.
class SparseLdltPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseLdltPropertyTest, MatchesDenseLuOnRandomSpdSystems) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 104729);
  // Random symmetric pattern, diagonally dominant values -> SPD.
  std::vector<Triplet> trips;
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  const auto un = static_cast<std::uint64_t>(n);
  for (int k = 0; k < 4 * n; ++k) {
    const int r = static_cast<int>(rng.next_below(un));
    const int c = static_cast<int>(rng.next_below(un));
    if (r == c) continue;
    const double v = rng.next_double() * 2 - 1;
    trips.push_back({r, c, v});
    trips.push_back({c, r, v});
    row_sum[static_cast<std::size_t>(r)] += std::fabs(v);
    row_sum[static_cast<std::size_t>(c)] += std::fabs(v);
  }
  for (int i = 0; i < n; ++i)
    trips.push_back({i, i, row_sum[static_cast<std::size_t>(i)] + 1.0});
  const SparseMatrix a = SparseMatrix::from_triplets(n, n, trips);

  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.next_double() * 10 - 5;
  const std::vector<double> b = a.mul(x_true);

  const LuFactorization lu(a.to_dense());
  const std::vector<double> x_lu = lu.solve(b);
  const SparseLdlt default_order(a);
  const std::vector<double> x_default = default_order.solve(b);
  std::vector<int> natural(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) natural[static_cast<std::size_t>(i)] = i;
  const SparseLdlt natural_order(a, natural);
  const std::vector<double> x_natural = natural_order.solve(b);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    EXPECT_NEAR(x_default[u], x_true[u], 1e-8);
    EXPECT_NEAR(x_natural[u], x_true[u], 1e-8);
    EXPECT_NEAR(x_default[u], x_lu[u], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLdltPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

// --- Minimum-degree ordering -------------------------------------------

TEST(OrderingTest, MinimumDegreeIsPermutation) {
  const SparseMatrix a = grid_with_hub(6);
  const std::vector<int> perm = minimum_degree_ordering(a);
  ASSERT_EQ(perm.size(), 37u);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 37; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // The hub has the largest degree by far and must go last.
  EXPECT_EQ(perm.back(), 36);
}

TEST(OrderingTest, MinimumDegreeReducesFillVersusRcm) {
  // On grid-plus-hub graphs (the shape of every refined RC network), the
  // minimum-degree ordering must beat the band-shaped RCM factor — this
  // fill gap is the engine's single largest speedup source, so a quality
  // regression here is a performance regression there.
  const SparseMatrix a = grid_with_hub(16);
  const SparseLdlt rcm(a);
  const SparseLdlt md(a, minimum_degree_ordering(a));
  EXPECT_LT(md.factor_nnz(), rcm.factor_nnz());
  // And it must still solve correctly.
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  b[3] = 2.0;
  const std::vector<double> x_rcm = rcm.solve(b);
  const std::vector<double> x_md = md.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i)
    EXPECT_NEAR(x_rcm[i], x_md[i], 1e-10);
}

TEST(OrderingTest, MinimumDegreeHandlesTinyMatrices) {
  const SparseMatrix one =
      SparseMatrix::from_triplets(1, 1, {{0, 0, 2.0}});
  EXPECT_EQ(minimum_degree_ordering(one), std::vector<int>{0});
  const SparseMatrix diag = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  const std::vector<int> perm = minimum_degree_ordering(diag);
  EXPECT_EQ(perm.size(), 3u);  // disconnected nodes, any order valid
  EXPECT_NO_THROW(SparseLdlt(diag, minimum_degree_ordering(diag)));
}

// --- Multi-RHS and streamed solves -------------------------------------

TEST(SparseLdltTest, SolveMultiBitMatchesIndependentSolves) {
  const SparseMatrix a = grid_with_hub(5);
  const SparseLdlt chol(a);
  const int n = a.rows();
  for (const int nrhs : {1, 3, 6}) {
    std::vector<double> block(static_cast<std::size_t>(n * nrhs));
    std::vector<std::vector<double>> columns(
        static_cast<std::size_t>(nrhs),
        std::vector<double>(static_cast<std::size_t>(n)));
    for (int j = 0; j < nrhs; ++j)
      for (int i = 0; i < n; ++i) {
        const double v = std::sin(0.7 * i + j) + 2.0;
        columns[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            v;
        block[static_cast<std::size_t>(i * nrhs + j)] = v;
      }
    chol.solve_multi(block, nrhs);
    for (int j = 0; j < nrhs; ++j) {
      const std::vector<double> x =
          chol.solve(columns[static_cast<std::size_t>(j)]);
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(block[static_cast<std::size_t>(i * nrhs + j)],
                  x[static_cast<std::size_t>(i)])
            << "nrhs=" << nrhs << " column " << j << " row " << i
            << " must be bit-identical to a lone solve";
    }
  }
}

TEST(SparseLdltTest, SolveMultiValidation) {
  const SparseMatrix a = grid_with_hub(4);
  const SparseLdlt chol(a);
  std::vector<double> wrong(static_cast<std::size_t>(a.rows() * 2 + 1));
  EXPECT_THROW(chol.solve_multi(wrong, 2), CheckError);
  std::vector<double> ok(static_cast<std::size_t>(a.rows()));
  EXPECT_THROW(chol.solve_multi(ok, 0), CheckError);
}

TEST(SparseLdltTest, SolvePermutedMatchesSolve) {
  const SparseMatrix a = grid_with_hub(6);
  for (const bool use_md : {false, true}) {
    const SparseLdlt chol =
        use_md ? SparseLdlt(a, minimum_degree_ordering(a)) : SparseLdlt(a);
    const int n = a.rows();
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] = std::cos(0.3 * i) + 1.5;
    const std::vector<double> x = chol.solve(b);
    // Feed the permuted RHS through the streamed kernel and un-permute.
    const std::vector<int>& perm = chol.permutation();
    std::vector<double> y(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k)
      y[static_cast<std::size_t>(k)] =
          b[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])];
    chol.solve_permuted_in_place(y.data());
    for (int k = 0; k < n; ++k)
      EXPECT_NEAR(y[static_cast<std::size_t>(k)],
                  x[static_cast<std::size_t>(perm[static_cast<std::size_t>(
                      k)])],
                  1e-10)
          << "streamed kernel must match solve() (md=" << use_md << ")";
  }
}

}  // namespace
}  // namespace renoc
