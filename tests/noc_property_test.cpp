// Parameterized property sweeps for the NoC fabric across mesh shapes,
// including non-square meshes the main experiments never exercise. These
// are the "would a downstream user trust this simulator" invariants:
// universal delivery, conservation, deterministic replay, and latency
// bounds, checked on every shape.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/phase_scheduler.hpp"
#include "core/transform.hpp"
#include "noc/fabric.hpp"
#include "noc/fault_model.hpp"
#include "noc/traffic.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

class MeshSweep : public ::testing::TestWithParam<GridDim> {
 protected:
  NocConfig config() const {
    NocConfig cfg;
    cfg.dim = GetParam();
    return cfg;
  }
};

TEST_P(MeshSweep, AllPairsDeliverWithCorrectPayload) {
  Fabric fabric(config());
  const int n = fabric.node_count();
  int sent = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      Message m;
      m.src = s;
      m.dst = d;
      m.tag = static_cast<std::uint64_t>(s) << 16 |
              static_cast<std::uint64_t>(d);
      m.payload = {static_cast<std::uint64_t>(s * 1000 + d)};
      fabric.send(m);
      ++sent;
    }
  }
  fabric.drain(2'000'000);
  int received = 0;
  for (int d = 0; d < n; ++d) {
    while (auto got = fabric.try_receive(d)) {
      EXPECT_EQ(got->dst, d);
      EXPECT_EQ(got->payload[0],
                static_cast<std::uint64_t>(got->src * 1000 + d));
      ++received;
    }
  }
  EXPECT_EQ(received, sent);
}

TEST_P(MeshSweep, RandomTrafficConservesFlits) {
  Fabric fabric(config());
  Rng rng(GetParam().width * 100 + GetParam().height);
  const int n = fabric.node_count();
  std::uint64_t flits = 0;
  for (int i = 0; i < 300; ++i) {
    Message m;
    m.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    m.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (m.src == m.dst) continue;
    m.payload.resize(1 + rng.next_below(9));
    flits += static_cast<std::uint64_t>(m.flit_count());
    fabric.send(m);
  }
  fabric.drain(2'000'000);
  const TileActivity total = fabric.stats().total();
  EXPECT_EQ(total.injected_flits, flits);
  EXPECT_EQ(total.ejected_flits, flits);
  EXPECT_EQ(total.buffer_reads, total.buffer_writes);
  EXPECT_TRUE(fabric.idle());
}

TEST_P(MeshSweep, ZeroLoadLatencyIsHopsPlusSerialization) {
  // A single flit packet on an empty mesh: latency must sit within a
  // small constant of the Manhattan distance.
  Fabric fabric(config());
  const GridDim dim = GetParam();
  const int src = 0;
  const int dst = dim.node_count() - 1;
  const int hops = manhattan(index_to_coord(src, dim),
                             index_to_coord(dst, dim));
  Message m;
  m.src = src;
  m.dst = dst;
  m.payload = {7};
  fabric.send(m);
  int cycles = 0;
  while (!fabric.try_receive(dst).has_value()) {
    fabric.step();
    ASSERT_LT(++cycles, 1000);
  }
  EXPECT_GE(cycles, hops + 2);
  EXPECT_LE(cycles, hops + 6);
}

TEST_P(MeshSweep, ReplayIsCycleExact) {
  auto run = [this] {
    Fabric fabric(config());
    TrafficGenerator gen(fabric, TrafficPattern::kUniformRandom, 0.15, 3,
                         Rng(99));
    gen.run(1500);
    const int cycles = fabric.drain(2'000'000);
    return std::tuple{cycles, fabric.stats().total().link_flits,
                      fabric.stats().packet_latency().mean()};
  };
  EXPECT_EQ(run(), run());
}

TEST_P(MeshSweep, ShiftMigrationSchedulesOnAnyShape) {
  // Translations are closed on any WxH mesh; the phase scheduler must
  // produce disjoint full-coverage phases there too.
  const GridDim dim = GetParam();
  const Transform t{TransformKind::kShiftX, 1};
  const auto perm = t.permutation(dim);
  std::vector<MigrationMove> moves;
  for (int i = 0; i < dim.node_count(); ++i)
    moves.push_back({i, perm[static_cast<std::size_t>(i)], 16});
  const auto phases = schedule_phases(moves, dim);
  int scheduled = 0;
  for (const auto& phase : phases) {
    EXPECT_TRUE(phase_is_link_disjoint(phase, dim));
    scheduled += static_cast<int>(phase.moves.size());
  }
  EXPECT_EQ(scheduled, dim.node_count());  // shift has no fixed points
}

TEST_P(MeshSweep, DegradedDeliveryAccountingIsConserved) {
  // The degraded-fabric conservation law: once the fabric drains, every
  // message send() accepted has resolved as exactly one of delivered /
  // dropped / unreachable — a packet lost to a fault without a record is
  // a bug, on every mesh shape and every fault kind.
  const GridDim dim = GetParam();
  Fabric fabric(config());
  DeliveryGuardConfig guard;
  guard.timeout_cycles = 128;
  guard.ack_latency_cycles = 16;
  guard.retry_budget = 2;
  fabric.configure_delivery_guard(guard);
  FaultSpec spec;
  spec.kind = static_cast<FaultKind>((dim.width + dim.height) % 3);
  spec.count = 2;
  spec.onset_min = 50;
  spec.onset_max = 600;
  spec.validate(dim);
  fabric.install_fault_plan(make_fault_plan(
      dim, spec, fault_scenario_rng(21, dim.width * 97 + dim.height)));

  Rng rng(0x5eedULL + static_cast<std::uint64_t>(dim.node_count()));
  const int n = fabric.node_count();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  auto collect = [&] {
    for (int node = 0; node < n; ++node)
      while (auto got = fabric.try_receive(node)) {
        ++received;
        fabric.recycle(std::move(*got));
      }
  };
  for (int cycle = 0; cycle < 900; ++cycle) {
    if (cycle % 3 == 0) {
      const int src = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      int dst = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (dst >= src) ++dst;
      Message m = fabric.acquire_message();
      m.src = src;
      m.dst = dst;
      m.payload.assign(4, static_cast<std::uint64_t>(cycle));
      fabric.send(std::move(m));
      ++sent;
    }
    fabric.step();
    collect();
  }
  fabric.drain(2'000'000);
  collect();

  const NetworkStats& st = fabric.stats();
  EXPECT_EQ(st.packets_delivered() + st.packets_dropped() +
                st.packets_unreachable(),
            sent)
      << "a packet was lost without a drop/unreachable record";
  EXPECT_EQ(st.packets_delivered(), received)
      << "delivered counter disagrees with messages handed to receivers";
  EXPECT_TRUE(fabric.idle());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshSweep,
    ::testing::Values(GridDim{2, 2}, GridDim{3, 3}, GridDim{4, 4},
                      GridDim{5, 5}, GridDim{3, 5}, GridDim{5, 3},
                      GridDim{6, 4}, GridDim{8, 8}),
    [](const ::testing::TestParamInfo<GridDim>& param_info) {
      return std::to_string(param_info.param.width) + "x" +
             std::to_string(param_info.param.height);
    });

// Buffer-depth sweep: the credit protocol must hold at any depth.
class BufferSweep : public ::testing::TestWithParam<int> {};

TEST_P(BufferSweep, CreditProtocolHoldsAtAnyDepth) {
  NocConfig cfg;
  cfg.dim = GridDim{4, 4};
  cfg.buffer_depth = GetParam();
  Fabric fabric(cfg);
  // Hotspot traffic maximizes contention and credit churn.
  for (int round = 0; round < 6; ++round) {
    for (int s = 1; s < 16; ++s) {
      Message m;
      m.src = s;
      m.dst = 0;
      m.payload.resize(6);
      fabric.send(m);
    }
  }
  // Any credit violation fires the FIFO-overflow check inside Router.
  EXPECT_NO_THROW(fabric.drain(1'000'000));
  int received = 0;
  while (fabric.try_receive(0)) ++received;
  EXPECT_EQ(received, 90);
}

INSTANTIATE_TEST_SUITE_P(Depths, BufferSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace renoc
