// Tests for the cycle-accurate NoC: routing, delivery, wormhole ordering,
// credit flow control, latency bounds, halting, and synthetic traffic.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "noc/fabric.hpp"
#include "noc/routing.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

NocConfig small_config(int w = 4, int h = 4) {
  NocConfig cfg;
  cfg.dim = GridDim{w, h};
  cfg.buffer_depth = 4;
  return cfg;
}

TEST(RoutingTest, XyRouteDirections) {
  EXPECT_EQ(xy_route({0, 0}, {2, 0}), Direction::kEast);
  EXPECT_EQ(xy_route({2, 0}, {0, 0}), Direction::kWest);
  // X corrected first, even when Y differs.
  EXPECT_EQ(xy_route({0, 0}, {2, 2}), Direction::kEast);
  EXPECT_EQ(xy_route({2, 0}, {2, 2}), Direction::kNorth);
  EXPECT_EQ(xy_route({2, 2}, {2, 0}), Direction::kSouth);
  EXPECT_EQ(xy_route({1, 1}, {1, 1}), Direction::kLocal);
}

TEST(RoutingTest, OppositeDirections) {
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
  EXPECT_THROW(opposite(Direction::kLocal), CheckError);
}

TEST(RoutingTest, OppositeIsAnInvolutionOnMeshDirections) {
  for (int d = 0; d < 4; ++d) {
    const Direction dir = static_cast<Direction>(d);
    EXPECT_EQ(opposite(opposite(dir)), dir);
  }
  EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
  EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
}

TEST(RoutingTest, XyPathIsMinimalAndXFirst) {
  const GridDim dim{4, 4};
  const auto path = xy_path({0, 0}, {2, 3}, dim);
  ASSERT_EQ(path.size(), 6u);  // 5 hops + start
  EXPECT_EQ(path.front(), coord_to_index({0, 0}, dim));
  EXPECT_EQ(path[1], coord_to_index({1, 0}, dim));
  EXPECT_EQ(path[2], coord_to_index({2, 0}, dim));
  EXPECT_EQ(path[3], coord_to_index({2, 1}, dim));
  EXPECT_EQ(path.back(), coord_to_index({2, 3}, dim));
}

TEST(RoutingTest, XyPathSourceEqualsDestination) {
  const GridDim dim{4, 4};
  const auto path = xy_path({2, 3}, {2, 3}, dim);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], coord_to_index({2, 3}, dim));
}

TEST(RoutingTest, XyPathOnDegenerateMeshes) {
  // 1xN column mesh: the walk is pure Y (no X to correct).
  const GridDim column{1, 5};
  const auto down = xy_path({0, 4}, {0, 1}, column);
  ASSERT_EQ(down.size(), 4u);
  for (std::size_t i = 0; i < down.size(); ++i)
    EXPECT_EQ(down[i], coord_to_index({0, 4 - static_cast<int>(i)}, column));
  // Nx1 row mesh: pure X.
  const GridDim row{6, 1};
  const auto east = xy_path({0, 0}, {5, 0}, row);
  ASSERT_EQ(east.size(), 6u);
  for (std::size_t i = 0; i < east.size(); ++i)
    EXPECT_EQ(east[i], coord_to_index({static_cast<int>(i), 0}, row));
}

TEST(RoutingTest, XyPathOnNonSquareMeshCorrectsXCompletelyFirst) {
  const GridDim wide{5, 2};
  const auto path = xy_path({4, 1}, {0, 0}, wide);
  const std::vector<int> expected = {
      coord_to_index({4, 1}, wide), coord_to_index({3, 1}, wide),
      coord_to_index({2, 1}, wide), coord_to_index({1, 1}, wide),
      coord_to_index({0, 1}, wide), coord_to_index({0, 0}, wide)};
  EXPECT_EQ(path, expected);
}

TEST(FabricTest, SingleMessageDelivered) {
  Fabric fabric(small_config());
  Message m;
  m.src = 0;
  m.dst = 15;
  m.tag = 77;
  m.payload = {1, 2, 3};
  fabric.send(m);
  fabric.drain();
  auto got = fabric.try_receive(15);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 0);
  EXPECT_EQ(got->dst, 15);
  EXPECT_EQ(got->tag, 77u);
  EXPECT_EQ(got->payload, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(fabric.try_receive(15).has_value());
}

TEST(FabricTest, EmptyPayloadBecomesOneWord) {
  Fabric fabric(small_config());
  Message m;
  m.src = 1;
  m.dst = 2;
  fabric.send(m);
  fabric.drain();
  auto got = fabric.try_receive(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 1u);
  EXPECT_EQ(got->payload[0], 0u);
}

TEST(FabricTest, LatencyLowerBoundOnEmptyMesh) {
  // hops + flits + constant; an uncontended packet cannot beat
  // injection(1) + hops + ejection(1).
  Fabric fabric(small_config());
  Message m;
  m.src = 0;
  m.dst = 15;  // 6 hops
  m.payload = {0};
  fabric.send(m);
  int cycles = 0;
  while (!fabric.try_receive(15).has_value()) {
    fabric.step();
    ++cycles;
    ASSERT_LT(cycles, 100);
  }
  EXPECT_GE(cycles, 8);   // 6 hops + inject + eject
  EXPECT_LE(cycles, 12);  // and it should be close to minimal
}

TEST(FabricTest, MessagesArriveInOrderPerPair) {
  Fabric fabric(small_config());
  for (std::uint64_t i = 0; i < 20; ++i) {
    Message m;
    m.src = 0;
    m.dst = 12;
    m.tag = i;
    m.payload = {i};
    fabric.send(m);
  }
  fabric.drain();
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto got = fabric.try_receive(12);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, i) << "wormhole must preserve per-pair order";
  }
}

TEST(FabricTest, LongPacketIntegrity) {
  // A packet much longer than any FIFO exercises wormhole continuation
  // and credit stalls.
  Fabric fabric(small_config());
  Message m;
  m.src = 3;
  m.dst = 12;
  m.payload.resize(200);
  for (std::size_t i = 0; i < m.payload.size(); ++i) m.payload[i] = i * i;
  fabric.send(m);
  fabric.drain();
  auto got = fabric.try_receive(12);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->payload.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(got->payload[i], i * i);
}

TEST(FabricTest, FlitConservation) {
  // Total ejected flits equals total injected flits after drain.
  Fabric fabric(small_config());
  Rng rng(5);
  int sent_flits = 0;
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.src = static_cast<int>(rng.next_below(16));
    m.dst = static_cast<int>(rng.next_below(16));
    if (m.dst == m.src) m.dst = (m.dst + 1) % 16;
    m.payload.resize(1 + rng.next_below(7));
    fabric.send(m);
    sent_flits += m.flit_count();
  }
  fabric.drain();
  const TileActivity total = fabric.stats().total();
  EXPECT_EQ(total.injected_flits, static_cast<std::uint64_t>(sent_flits));
  EXPECT_EQ(total.ejected_flits, static_cast<std::uint64_t>(sent_flits));
  EXPECT_EQ(fabric.stats().flits_delivered(),
            static_cast<std::uint64_t>(sent_flits));
  // Every buffered flit was eventually read back out.
  EXPECT_EQ(total.buffer_writes, total.buffer_reads);
}

TEST(FabricTest, AllPairsDeliver) {
  Fabric fabric(small_config(5, 5));
  int expected = 0;
  for (int s = 0; s < 25; ++s) {
    for (int d = 0; d < 25; ++d) {
      if (s == d) continue;
      Message m;
      m.src = s;
      m.dst = d;
      m.tag = static_cast<std::uint64_t>(s * 100 + d);
      m.payload = {static_cast<std::uint64_t>(s), static_cast<std::uint64_t>(d)};
      fabric.send(m);
      ++expected;
    }
  }
  fabric.drain(200000);
  int received = 0;
  for (int d = 0; d < 25; ++d) {
    while (auto got = fabric.try_receive(d)) {
      EXPECT_EQ(got->dst, d);
      EXPECT_EQ(got->payload[1], static_cast<std::uint64_t>(d));
      ++received;
    }
  }
  EXPECT_EQ(received, expected);
}

TEST(FabricTest, HaltedNodeDoesNotInject) {
  Fabric fabric(small_config());
  fabric.set_injection_enabled(0, false);
  Message m;
  m.src = 0;
  m.dst = 5;
  fabric.send(m);
  fabric.run(100);
  EXPECT_FALSE(fabric.try_receive(5).has_value());
  EXPECT_EQ(fabric.pending_send_count(0), 1);
  // Re-enabling releases the queued message.
  fabric.set_injection_enabled(0, true);
  fabric.drain();
  EXPECT_TRUE(fabric.try_receive(5).has_value());
}

TEST(FabricTest, HaltedNodeStillEjects) {
  Fabric fabric(small_config());
  fabric.set_injection_enabled(9, false);
  Message m;
  m.src = 0;
  m.dst = 9;
  fabric.send(m);
  fabric.drain();
  EXPECT_TRUE(fabric.try_receive(9).has_value());
}

TEST(FabricTest, IdleReflectsState) {
  Fabric fabric(small_config());
  EXPECT_TRUE(fabric.idle());
  Message m;
  m.src = 0;
  m.dst = 1;
  fabric.send(m);
  EXPECT_FALSE(fabric.idle());
  fabric.drain();
  // Delivered-but-unread messages do not count as in-flight.
  EXPECT_TRUE(fabric.idle());
}

TEST(FabricTest, DeterministicAcrossRuns) {
  auto run = [] {
    Fabric fabric(small_config());
    Rng rng(123);
    for (int i = 0; i < 200; ++i) {
      Message m;
      m.src = static_cast<int>(rng.next_below(16));
      m.dst = static_cast<int>(rng.next_below(16));
      if (m.dst == m.src) m.dst = (m.dst + 3) % 16;
      m.payload.resize(1 + rng.next_below(5));
      fabric.send(m);
    }
    const int cycles = fabric.drain();
    return std::make_pair(cycles, fabric.stats().total().link_flits);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FabricTest, BadAddressesRejected) {
  Fabric fabric(small_config());
  Message m;
  m.src = -1;
  m.dst = 3;
  EXPECT_THROW(fabric.send(m), CheckError);
  m.src = 3;
  m.dst = 16;
  EXPECT_THROW(fabric.send(m), CheckError);
  EXPECT_THROW(fabric.try_receive(16), CheckError);
}

TEST(FabricTest, MeshMustBeAtLeast2x2) {
  NocConfig cfg;
  cfg.dim = GridDim{1, 4};
  EXPECT_THROW(Fabric{cfg}, CheckError);
}

TEST(FabricTest, SaturationDrainsEventually) {
  // Heavy all-to-one traffic (worst case contention) still drains, and the
  // hotspot's ejection counts match.
  Fabric fabric(small_config());
  for (int round = 0; round < 10; ++round) {
    for (int s = 1; s < 16; ++s) {
      Message m;
      m.src = s;
      m.dst = 0;
      m.payload.resize(4);
      fabric.send(m);
    }
  }
  fabric.drain(100000);
  int received = 0;
  while (fabric.try_receive(0)) ++received;
  EXPECT_EQ(received, 150);
  EXPECT_EQ(fabric.stats().tile(0).ejected_flits, 150u * 4u);
}

class TrafficPatternTest : public ::testing::TestWithParam<TrafficPattern> {};

TEST_P(TrafficPatternTest, GeneratorConservesMessages) {
  Fabric fabric(small_config());
  TrafficGenerator gen(fabric, GetParam(), 0.1, 2, Rng(42), 5);
  gen.run(2000);
  fabric.drain(100000);
  for (int n = 0; n < fabric.node_count(); ++n)
    while (fabric.try_receive(n)) {
    }
  // After the drain every sent message was received (generator counts its
  // own receipts during run; the rest were picked up above).
  EXPECT_GT(gen.messages_sent(), 100u);
  EXPECT_EQ(fabric.stats().packets_delivered(), gen.messages_sent());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TrafficPatternTest,
    ::testing::Values(TrafficPattern::kUniformRandom,
                      TrafficPattern::kTranspose,
                      TrafficPattern::kBitComplement,
                      TrafficPattern::kHotspot, TrafficPattern::kNeighbor));

TEST(TrafficTest, LatencyGrowsWithLoad) {
  auto mean_latency = [](double rate) {
    Fabric fabric(small_config());
    TrafficGenerator gen(fabric, TrafficPattern::kUniformRandom, rate, 2,
                         Rng(7));
    gen.run(5000);
    fabric.drain(100000);
    return fabric.stats().packet_latency().mean();
  };
  const double low = mean_latency(0.02);
  const double high = mean_latency(0.35);
  EXPECT_GT(high, low);
}

}  // namespace
}  // namespace renoc
