// Scalar-vs-SIMD agreement suite for the util/simd kernel layer.
//
// Every compiled tier (scalar always; SSE2/AVX2 when the build and CPU
// provide them) is exercised in one binary through the explicit-table
// hooks: MinSumBatchDecoder's kernels parameter, SparseLdlt's
// solve_*_with, and direct KernelTable calls for the NoC want-scan. The
// contract under test is bit-exactness — the vector kernels replicate the
// scalar engines' op order, so there is no tolerance anywhere. Dispatch
// plumbing (tier names, env-override clamping) is pinned too; the ctest
// registrations add RENOC_SIMD_TIER-forced instances of this suite so the
// env path runs in every config.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ldpc/channel.hpp"
#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "noc/arb_kernels.hpp"
#include "noc/routing.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/sparse.hpp"

namespace renoc {
namespace {

std::vector<const simd::KernelTable*> compiled_tables() {
  std::vector<const simd::KernelTable*> tables;
  for (int t = 0; t < simd::kTierCount; ++t)
    if (const simd::KernelTable* table =
            simd::kernel_table(static_cast<simd::Tier>(t)))
      tables.push_back(table);
  return tables;
}

// --- Dispatch plumbing ------------------------------------------------------

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (int t = 0; t < simd::kTierCount; ++t) {
    const simd::Tier tier = static_cast<simd::Tier>(t);
    simd::Tier parsed = simd::Tier::kAvx2;
    ASSERT_TRUE(simd::parse_tier(simd::tier_name(tier), parsed));
    EXPECT_EQ(parsed, tier);
  }
  simd::Tier out = simd::Tier::kScalar;
  EXPECT_FALSE(simd::parse_tier(nullptr, out));
  EXPECT_FALSE(simd::parse_tier("", out));
  EXPECT_FALSE(simd::parse_tier("AVX2", out));
  EXPECT_FALSE(simd::parse_tier("avx512", out));
}

TEST(SimdDispatch, ScalarTierAlwaysAvailable) {
  const simd::KernelTable* scalar = simd::kernel_table(simd::Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->tier, simd::Tier::kScalar);
  EXPECT_NE(scalar->ldpc_batch_vn, nullptr);
  EXPECT_NE(scalar->ldlt_solve_multi, nullptr);
  EXPECT_NE(scalar->noc_want_scan, nullptr);
}

TEST(SimdDispatch, ActiveTierIsCompiledAndHonorsEnvClamp) {
  const simd::KernelTable& active = simd::kernels();
  EXPECT_EQ(&active, simd::kernel_table(active.tier))
      << "active table must be the compiled table of its tier";
  EXPECT_EQ(std::string(simd::active_tier_name()),
            std::string(simd::tier_name(active.tier)));
  // When the ctest env-forced variants set RENOC_SIMD_TIER to a parsable
  // tier, the override clamps downward: the active tier never exceeds it.
  simd::Tier requested = simd::Tier::kScalar;
  if (simd::parse_tier(std::getenv("RENOC_SIMD_TIER"), requested)) {
    EXPECT_LE(static_cast<int>(simd::active_tier()),
              static_cast<int>(requested));
  }
}

// --- AlignedVec -------------------------------------------------------------

TEST(AlignedVec, AlignmentSizesAndZeroTail) {
  AlignedVec<std::int32_t> v;
  v.assign(13, 7);
  EXPECT_EQ(v.size(), 13u);
  EXPECT_EQ(v.padded_size(), 16u);  // 64 bytes / 4 = 16-element blocks
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  for (std::size_t i = 0; i < 13; ++i) EXPECT_EQ(v[i], 7);
  for (std::size_t i = 13; i < v.padded_size(); ++i) EXPECT_EQ(v.data()[i], 0);

  // Tail stays zero after a smaller re-assign (kernels read whole groups).
  v.assign(3, -1);
  EXPECT_EQ(v.padded_size(), 16u);
  for (std::size_t i = 3; i < v.padded_size(); ++i) EXPECT_EQ(v.data()[i], 0);

  AlignedVec<double> d;
  d.resize(9);
  EXPECT_EQ(d.padded_size(), 16u);  // 64 / 8 = 8-element blocks
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % 64, 0u);
  for (std::size_t i = 0; i < d.padded_size(); ++i) EXPECT_EQ(d.data()[i], 0.0);
}

// --- Batched LDPC decode ----------------------------------------------------

std::vector<std::int16_t> noisy_block(const LdpcCode& code, double ebn0_db,
                                      std::uint64_t seed) {
  const LdpcEncoder encoder(code);
  Rng rng(seed);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(2));
  AwgnChannel channel(ebn0_db, 0.5, rng.split());
  return quantize_llrs(channel.transmit(encoder.encode(data)));
}

/// Decodes `batch` noisy blocks with the scalar decoder and with the batch
/// decoder on `table`, demanding every DecodeResult field match per lane.
void expect_batch_matches_scalar(const LdpcCode& code,
                                 const simd::KernelTable* table, int batch,
                                 int max_batch, int iterations,
                                 bool early_exit, std::uint64_t seed) {
  const MinSumDecoder scalar(code, iterations, early_exit);
  const MinSumBatchDecoder batched(code, iterations, early_exit, max_batch,
                                   table);
  std::vector<std::vector<std::int16_t>> llrs;
  std::vector<const std::int16_t*> ptrs;
  for (int b = 0; b < batch; ++b) {
    llrs.push_back(noisy_block(code, 1.0 + 0.5 * b, seed + 101 * static_cast<std::uint64_t>(b)));
    ptrs.push_back(llrs.back().data());
  }
  std::vector<DecodeResult> got(static_cast<std::size_t>(batch));
  batched.decode_batch_into(ptrs.data(), batch, got.data());
  for (int b = 0; b < batch; ++b) {
    const DecodeResult want = scalar.decode(llrs[static_cast<std::size_t>(b)]);
    const DecodeResult& lane = got[static_cast<std::size_t>(b)];
    SCOPED_TRACE("tier " + std::string(simd::tier_name(table->tier)) +
                 " lane " + std::to_string(b) + "/" + std::to_string(batch) +
                 (early_exit ? " early" : " fixed"));
    EXPECT_EQ(lane.hard_bits, want.hard_bits);
    EXPECT_EQ(lane.syndrome_ok, want.syndrome_ok);
    EXPECT_EQ(lane.iterations_run, want.iterations_run);
  }
}

TEST(SimdBatchDecode, RegularCodeEveryTierBatchAndEarlyMode) {
  Rng rng(3);
  const LdpcCode code = LdpcCode::make_regular(240, 3, 6, rng);
  for (const simd::KernelTable* table : compiled_tables())
    for (const bool early : {false, true})
      for (const int batch : {1, 2, 3, 5, 8})
        expect_batch_matches_scalar(code, table, batch, 8, 8, early,
                                    1000 + static_cast<std::uint64_t>(batch));
}

TEST(SimdBatchDecode, CheckDegreeSweep) {
  // Regular codes with check degrees 4..8 (var degree 2..3): exercises the
  // two-min tracking at every unrolled degree the scalar engine dispatches.
  struct Shape {
    int n, wc, wr;
  };
  for (const Shape s : {Shape{240, 2, 4}, Shape{240, 3, 5}, Shape{240, 3, 6},
                        Shape{280, 3, 7}, Shape{240, 3, 8}}) {
    Rng rng(11);
    const LdpcCode code = LdpcCode::make_regular(s.n, s.wc, s.wr, rng);
    for (const simd::KernelTable* table : compiled_tables())
      expect_batch_matches_scalar(code, table, 8, 8, 6, true,
                                  static_cast<std::uint64_t>(s.wr));
  }
}

TEST(SimdBatchDecode, IrregularAndDegreeOneCheck) {
  // Mixed var degrees 1..8 hit the generic (offset-driven) kernels; the
  // {1,1,1}/wr=2 code forces a degree-1 check (empty extrinsic min).
  std::vector<int> degrees;
  for (int v = 0; v < 128; ++v) degrees.push_back(1 + v % 8);
  Rng rng(9);
  const LdpcCode irregular = LdpcCode::make_irregular(degrees, 6, rng);
  Rng rng2(17);
  const LdpcCode deg1 = LdpcCode::make_irregular({1, 1, 1}, 2, rng2);
  for (const simd::KernelTable* table : compiled_tables()) {
    for (const bool early : {false, true}) {
      expect_batch_matches_scalar(irregular, table, 7, 8, 8, early, 5);
      expect_batch_matches_scalar(deg1, table, 3, 4, 4, early, 6);
    }
  }
}

TEST(SimdBatchDecode, WideBatchWithRemainderLanes) {
  // max_batch 12 -> stride 16: two lane groups at every width, with the
  // last group half phantom. Batch 9 leaves live-lane remainders too.
  Rng rng(3);
  const LdpcCode code = LdpcCode::make_regular(96, 3, 6, rng);
  for (const simd::KernelTable* table : compiled_tables())
    expect_batch_matches_scalar(code, table, 9, 12, 10, true, 77);
}

TEST(SimdBatchDecode, ActiveTierDefaultTable) {
  // nullptr kernels = simd::kernels(): the production configuration.
  Rng rng(3);
  const LdpcCode code = LdpcCode::make_regular(240, 3, 6, rng);
  const MinSumBatchDecoder batched(code, 8, true, 4);
  EXPECT_EQ(batched.tier(), simd::active_tier());
  expect_batch_matches_scalar(code, &simd::kernels(), 4, 4, 8, true, 42);
}

// --- Multi-RHS and permuted LDL^T solves ------------------------------------

/// A small SPD matrix shaped like the thermal grids: 2-D Laplacian plus a
/// hub row coupling to every node (the sink pattern that stresses fill).
SparseMatrix grid_spd_matrix(int side) {
  const int n = side * side + 1;
  const int hub = n - 1;
  std::vector<Triplet> t;
  const auto idx = [side](int r, int c) { return r * side + c; };
  for (int r = 0; r < side; ++r)
    for (int c = 0; c < side; ++c) {
      const int v = idx(r, c);
      double diag = 5.0;
      if (r > 0) t.push_back({v, idx(r - 1, c), -1.0});
      if (r + 1 < side) t.push_back({v, idx(r + 1, c), -1.0});
      if (c > 0) t.push_back({v, idx(r, c - 1), -1.0});
      if (c + 1 < side) t.push_back({v, idx(r, c + 1), -1.0});
      t.push_back({v, hub, -0.5});
      t.push_back({hub, v, -0.5});
      t.push_back({v, v, diag});
    }
  t.push_back({hub, hub, 1.0 + 0.5 * side * side});
  return SparseMatrix::from_triplets(n, n, t);
}

TEST(SimdLdlt, SolveMultiColumnsBitIdenticalToLoneSolves) {
  const SparseMatrix a = grid_spd_matrix(7);
  const SparseLdlt chol(a);
  const int n = chol.n();
  Rng rng(1234);
  for (int nrhs = 1; nrhs <= 9; ++nrhs) {
    // Column j of the block is a lone RHS; every tier must reproduce the
    // scalar solve_in_place result bit for bit.
    std::vector<std::vector<double>> lone(static_cast<std::size_t>(nrhs));
    std::vector<double> block(static_cast<std::size_t>(n * nrhs));
    for (int j = 0; j < nrhs; ++j) {
      auto& col = lone[static_cast<std::size_t>(j)];
      col.resize(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        col[static_cast<std::size_t>(i)] =
            rng.next_double() * 2.0 - 0.5;
        block[static_cast<std::size_t>(i * nrhs + j)] =
            col[static_cast<std::size_t>(i)];
      }
      chol.solve_in_place(col);
    }
    for (const simd::KernelTable* table : compiled_tables()) {
      std::vector<double> x = block;
      chol.solve_multi_with(*table, x, nrhs);
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < nrhs; ++j)
          ASSERT_EQ(x[static_cast<std::size_t>(i * nrhs + j)],
                    lone[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(i)])
              << "tier " << simd::tier_name(table->tier) << " nrhs " << nrhs
              << " entry (" << i << "," << j << ")";
    }
  }
}

TEST(SimdLdlt, PermutedSolveBitIdenticalAcrossTiers) {
  const SparseMatrix a = grid_spd_matrix(9);
  const SparseLdlt chol(a, minimum_degree_ordering(a));
  const int n = chol.n();
  Rng rng(77);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) v = rng.next_double() * 10.0 - 5.0;

  const simd::KernelTable* scalar = simd::kernel_table(simd::Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::vector<double> want = rhs;
  chol.solve_permuted_in_place_with(*scalar, want.data());

  for (const simd::KernelTable* table : compiled_tables()) {
    std::vector<double> got = rhs;
    chol.solve_permuted_in_place_with(*table, got.data());
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(got[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)])
          << "tier " << simd::tier_name(table->tier) << " row " << i;
  }
}

// --- NoC want-scan ----------------------------------------------------------

TEST(SimdWantScan, MatchesScalarReferenceEveryTier) {
  // Synthetic mirrors for an 8x8 mesh (320 ports, already lane-aligned)
  // plus a 13-node case that needs pad lanes. Routes include unreachable
  // (0xFF) entries; the scalar reference below is the fabric's inline
  // computation verbatim.
  for (const int nodes : {64, 13}) {
    const int ports = nodes * kDirectionCount;
    const int padded = (ports + 7) / 8 * 8;
    AlignedVec<int> fifo_size, head_dst, route_base, want;
    AlignedVec<std::uint8_t> head_is_head;
    fifo_size.assign(static_cast<std::size_t>(padded), 0);
    head_dst.assign(static_cast<std::size_t>(padded), 0);
    route_base.assign(static_cast<std::size_t>(padded), 0);
    want.assign(static_cast<std::size_t>(padded), 0);
    head_is_head.assign(static_cast<std::size_t>(padded), 0);
    std::vector<std::uint8_t> table(
        static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes) + 4,
        0);
    Rng rng(static_cast<std::uint64_t>(nodes));
    for (std::size_t i = 0; i + 4 < table.size(); ++i) {
      const std::uint64_t roll = rng.next_below(6);
      table[i] = roll == 5 ? kUnreachableRoute
                           : static_cast<std::uint8_t>(roll);
    }
    for (int f = 0; f < ports; ++f) {
      fifo_size[static_cast<std::size_t>(f)] =
          static_cast<int>(rng.next_below(3));
      head_is_head[static_cast<std::size_t>(f)] =
          static_cast<std::uint8_t>(rng.next_below(2));
      head_dst[static_cast<std::size_t>(f)] =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
      route_base[static_cast<std::size_t>(f)] =
          (f / kDirectionCount) * nodes;
    }

    std::vector<int> expect(static_cast<std::size_t>(padded), -1);
    for (int f = 0; f < ports; ++f) {
      const std::size_t fz = static_cast<std::size_t>(f);
      if (fifo_size[fz] > 0 && head_is_head[fz] != 0) {
        const std::uint8_t out = table[static_cast<std::size_t>(
            route_base[fz] + head_dst[fz])];
        expect[fz] = out == kUnreachableRoute ? -1 : static_cast<int>(out);
      }
    }

    for (const simd::KernelTable* kt : compiled_tables()) {
      kt->noc_want_scan(fifo_size.data(), head_is_head.data(),
                        head_dst.data(), route_base.data(), table.data(),
                        padded, want.data());
      for (int f = 0; f < padded; ++f)
        ASSERT_EQ(want[static_cast<std::size_t>(f)],
                  expect[static_cast<std::size_t>(f)])
            << "tier " << simd::tier_name(kt->tier) << " nodes " << nodes
            << " port " << f;
    }
  }
}

}  // namespace
}  // namespace renoc
