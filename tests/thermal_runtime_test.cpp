// Tests for the migration thermal co-simulation: consistency with steady
// state, orbit-average behaviour, ripple magnitude, and migration-energy
// accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/reference_runtime.hpp"
#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "power/power_map.hpp"
#include "thermal/grid_refine.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

RcNetwork make_net(int side) {
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side}, date05_tile_area()),
      date05_hotspot_params());
}

std::vector<double> hot_corner_map(int side, double hot, double cool) {
  std::vector<double> p(static_cast<std::size_t>(side * side), cool);
  p[0] = hot;  // tile (0,0)
  return p;
}

TEST(ThermalRuntimeTest, StaticCaseEqualsSteadyState) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  const auto power = hot_corner_map(4, 9.0, 1.0);
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const ThermalRunResult r =
      runtime.run(power, {identity_permutation(16)}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.peak_temp_c, steady.peak_die_temperature(power), 1e-9);
  EXPECT_DOUBLE_EQ(r.ripple_c, 0.0);
}

TEST(ThermalRuntimeTest, MigrationReducesPeakForCornerHotspot) {
  // A rotating corner hotspot time-shares four corners; the peak must drop
  // substantially versus static, and approach the steady state of the
  // orbit-averaged map from above.
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  const auto power = hot_corner_map(4, 9.0, 1.0);
  const double static_peak = steady.peak_die_temperature(power);

  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const ThermalRunResult r = runtime.run(power, orbit, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.peak_temp_c, static_peak - 1.0);
  EXPECT_GE(r.peak_temp_c, r.steady_peak_of_avg_c - 1e-6);
  // The ripple at a 109 us period is small but nonzero.
  EXPECT_GT(r.ripple_c, 0.0);
  EXPECT_LT(r.ripple_c, 2.0);
}

TEST(ThermalRuntimeTest, ShorterPeriodsTrackAverageMoreTightly) {
  const RcNetwork net = make_net(4);
  const auto power = hot_corner_map(4, 8.0, 1.0);
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  auto peak_at = [&](double period) {
    ThermalRunOptions opt;
    opt.period_s = period;
    opt.dt_s = period / 50;
    MigrationThermalRuntime runtime(net, opt);
    return runtime.run(power, orbit, {});
  };
  const ThermalRunResult fast = peak_at(109.3e-6);
  const ThermalRunResult slow = peak_at(874.4e-6);
  // Longer periods let the hotspot develop further between migrations.
  EXPECT_GE(slow.peak_temp_c, fast.peak_temp_c - 1e-6);
  EXPECT_GT(slow.ripple_c, fast.ripple_c);
  // The gap stays bounded (this synthetic hotspot is far more extreme
  // than the calibrated configurations, where the paper-scale sub-0.1 C
  // behaviour is checked by the period-sweep bench).
  EXPECT_LT(slow.peak_temp_c - fast.peak_temp_c, 3.0);
}

TEST(ThermalRuntimeTest, MigrationEnergyRaisesTemperature) {
  const RcNetwork net = make_net(4);
  const auto power = hot_corner_map(4, 6.0, 1.0);
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});

  const ThermalRunResult free_run = runtime.run(power, orbit, {});
  // 200 uJ deposited per migration, uniformly.
  std::vector<std::vector<double>> energy(
      orbit.size(), std::vector<double>(16, 200e-6 / 16));
  const ThermalRunResult priced = runtime.run(power, orbit, energy);
  EXPECT_GT(priced.peak_temp_c, free_run.peak_temp_c);
  EXPECT_GT(priced.mean_temp_c, free_run.mean_temp_c);
  // Sanity: the mean rise roughly matches energy/period spread over the
  // whole chip through the package resistance (order of magnitude only).
  const double extra_w = 200e-6 / ThermalRunOptions{}.period_s;
  EXPECT_LT(priced.mean_temp_c - free_run.mean_temp_c, extra_w * 2.0);
}

TEST(ThermalRuntimeTest, RightShiftCannotFixRowImbalance) {
  // One hot row: right-shift's orbit-average equals the original map
  // row-wise, so the peak barely moves; XY-shift spreads across rows.
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  std::vector<double> power(16, 1.0);
  for (int x = 0; x < 4; ++x)
    power[static_cast<std::size_t>(coord_to_index({x, 0}, GridDim{4, 4}))] =
        5.0;
  const double static_peak = steady.peak_die_temperature(power);

  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto shift_x =
      orbit_permutations(Transform{TransformKind::kShiftX, 1}, GridDim{4, 4});
  const auto shift_xy =
      orbit_permutations(Transform{TransformKind::kShiftXY, 1}, GridDim{4, 4});
  const ThermalRunResult rx = runtime.run(power, shift_x, {});
  const ThermalRunResult rxy = runtime.run(power, shift_xy, {});

  const double dx = static_peak - rx.peak_temp_c;
  const double dxy = static_peak - rxy.peak_temp_c;
  EXPECT_LT(dx, 0.6);        // uniform hot row: nothing to gain in-row
  EXPECT_GT(dxy, 2.0 * dx);  // spreading across rows wins
}

TEST(ThermalRuntimeTest, CenterHotspotImmuneToRotation) {
  // The paper's configuration-E mechanism on a 5x5: rotation fixes the
  // center, so a central hotspot sees no benefit — and with migration
  // energy the peak goes *above* static.
  const RcNetwork net = make_net(5);
  SteadyStateSolver steady(net);
  std::vector<double> power(25, 1.0);
  power[12] = 7.0;  // center
  const double static_peak = steady.peak_die_temperature(power);

  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto rot =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{5, 5});
  const ThermalRunResult free_run = runtime.run(power, rot, {});
  EXPECT_NEAR(free_run.peak_temp_c, static_peak, 0.2);

  std::vector<std::vector<double>> energy(
      rot.size(), std::vector<double>(25, 400e-6 / 25));
  const ThermalRunResult priced = runtime.run(power, rot, energy);
  EXPECT_GT(priced.peak_temp_c, static_peak);

  // XY shift moves the center hotspot and wins despite equal energy.
  const auto sxy =
      orbit_permutations(Transform{TransformKind::kShiftXY, 1}, GridDim{5, 5});
  std::vector<std::vector<double>> energy_xy(
      sxy.size(), std::vector<double>(25, 400e-6 / 25));
  const ThermalRunResult shifted = runtime.run(power, sxy, energy_xy);
  EXPECT_LT(shifted.peak_temp_c, static_peak - 1.0);
}

TEST(ThermalRuntimeTest, InputValidation) {
  const RcNetwork net = make_net(4);
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kMirrorX, 0}, GridDim{4, 4});
  // Wrong power size.
  EXPECT_THROW(runtime.run(std::vector<double>(9, 1.0), orbit, {}),
               CheckError);
  // Wrong number of energy maps.
  EXPECT_THROW(runtime.run(std::vector<double>(16, 1.0), orbit,
                           {std::vector<double>(16, 0.0)}),
               CheckError);
  // Bad options.
  ThermalRunOptions bad;
  bad.period_s = -1;
  EXPECT_THROW(MigrationThermalRuntime(net, bad), CheckError);
}

// --- Engine vs reference oracle ----------------------------------------

void expect_agreement(const ThermalRunResult& engine,
                      const ThermalRunResult& reference, double tol,
                      const std::string& label) {
  EXPECT_NEAR(engine.peak_temp_c, reference.peak_temp_c, tol) << label;
  EXPECT_NEAR(engine.mean_temp_c, reference.mean_temp_c, tol) << label;
  EXPECT_NEAR(engine.ripple_c, reference.ripple_c, tol) << label;
  EXPECT_NEAR(engine.steady_peak_of_avg_c, reference.steady_peak_of_avg_c,
              tol)
      << label;
  EXPECT_EQ(engine.orbits_run, reference.orbits_run) << label;
  EXPECT_EQ(engine.converged, reference.converged) << label;
}

TEST(ThermalRuntimeTest, EngineMatchesReferenceAcrossScenarios) {
  // The streamed engine must agree with the preserved scalar path to
  // <= 1e-10 per field across schemes, periods, and both solver backends
  // (side 4 = dense LU at 58 nodes, side 6 = sparse LDL^T at 118 nodes),
  // with and without migration energy.
  for (const int side : {4, 6}) {
    const RcNetwork net = make_net(side);
    const int tiles = side * side;
    std::vector<double> power(static_cast<std::size_t>(tiles), 1.0);
    power[0] = 7.0;
    power[static_cast<std::size_t>(tiles / 2)] = 4.0;
    for (const TransformKind kind :
         {TransformKind::kRotation, TransformKind::kShiftXY}) {
      const auto orbit =
          orbit_permutations(Transform{kind, 1}, GridDim{side, side});
      for (const double period : {109.3e-6, 874.4e-6}) {
        ThermalRunOptions opt;
        opt.period_s = period;
        const MigrationThermalRuntime engine(net, opt);
        const ReferenceThermalRuntime reference(net, opt);
        const std::string label =
            "side " + std::to_string(side) + " kind " +
            std::string(to_string(kind)) + " period " +
            std::to_string(period);

        expect_agreement(engine.run(power, orbit, {}),
                         reference.run(power, orbit, {}), 1e-10, label);

        const std::vector<std::vector<double>> energy(
            orbit.size(),
            std::vector<double>(static_cast<std::size_t>(tiles),
                                150e-6 / tiles));
        expect_agreement(engine.run(power, orbit, energy),
                         reference.run(power, orbit, energy), 1e-10,
                         label + " +energy");
      }
    }
  }
}

TEST(ThermalRuntimeTest, EngineMatchesReferenceOnRefinedNetwork) {
  // Refine >= 2 exercises the sparse streamed path on the grid shapes the
  // sweep harness runs (fine nodes = 16 * refine^2).
  const GridDim dim{4, 4};
  for (const int refine : {2, 3}) {
    const RefinedThermalModel model(dim, date05_tile_area(),
                                    date05_hotspot_params(), refine);
    const int fine = model.fine_dim().node_count();
    std::vector<double> tile_power(16, 1.0);
    tile_power[5] = 6.0;
    const std::vector<double> power = model.refine_power(tile_power);
    const auto orbit = orbit_permutations(
        Transform{TransformKind::kRotation, 0}, model.fine_dim());
    (void)fine;
    ThermalRunOptions opt;
    const MigrationThermalRuntime engine(model.network(), opt);
    const ReferenceThermalRuntime reference(model.network(), opt);
    expect_agreement(engine.run(power, orbit, {}),
                     reference.run(power, orbit, {}), 1e-10,
                     "refine " + std::to_string(refine));
  }
}

TEST(ThermalRuntimeTest, StaticCaseBitMatchesReference) {
  // The static shortcut shares the steady solver code path exactly.
  const RcNetwork net = make_net(5);
  const auto power = hot_corner_map(5, 9.0, 1.0);
  const MigrationThermalRuntime engine(net, ThermalRunOptions{});
  const ReferenceThermalRuntime reference(net, ThermalRunOptions{});
  const auto orbit =
      std::vector<std::vector<int>>{identity_permutation(25)};
  const ThermalRunResult re = engine.run(power, orbit, {});
  const ThermalRunResult rr = reference.run(power, orbit, {});
  EXPECT_EQ(re.peak_temp_c, rr.peak_temp_c);
  EXPECT_EQ(re.mean_temp_c, rr.mean_temp_c);
  EXPECT_EQ(re.steady_peak_of_avg_c, rr.steady_peak_of_avg_c);
  EXPECT_EQ(re.orbits_run, 0);
  EXPECT_TRUE(re.converged);
}

TEST(ThermalRuntimeTest, WorkspacesAreStateless) {
  // Two runtimes with interleaved run() calls — and a runtime whose runs
  // alternate between two different problems — must reproduce the results
  // of fresh runtimes exactly: the persistent workspaces carry no state
  // between runs.
  const RcNetwork net = make_net(6);
  const auto power_a = hot_corner_map(6, 8.0, 1.0);
  std::vector<double> power_b(36, 1.0);
  power_b[21] = 6.0;
  const auto orbit_rot =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{6, 6});
  const auto orbit_shift =
      orbit_permutations(Transform{TransformKind::kShiftXY, 1}, GridDim{6, 6});

  ThermalRunOptions opt;
  const MigrationThermalRuntime fresh_a(net, opt);
  const MigrationThermalRuntime fresh_b(net, opt);
  const ThermalRunResult ra = fresh_a.run(power_a, orbit_rot, {});
  const ThermalRunResult rb = fresh_b.run(power_b, orbit_shift, {});

  const MigrationThermalRuntime shared(net, opt);
  const MigrationThermalRuntime other(net, opt);
  for (int rep = 0; rep < 2; ++rep) {
    // Interleave two problems through one runtime (workspace reuse with
    // different orbits/maps) and a second runtime in between.
    const ThermalRunResult a = shared.run(power_a, orbit_rot, {});
    const ThermalRunResult o = other.run(power_a, orbit_rot, {});
    const ThermalRunResult b = shared.run(power_b, orbit_shift, {});
    EXPECT_EQ(a.peak_temp_c, ra.peak_temp_c) << "rep " << rep;
    EXPECT_EQ(a.mean_temp_c, ra.mean_temp_c) << "rep " << rep;
    EXPECT_EQ(a.ripple_c, ra.ripple_c) << "rep " << rep;
    EXPECT_EQ(o.peak_temp_c, ra.peak_temp_c) << "rep " << rep;
    EXPECT_EQ(b.peak_temp_c, rb.peak_temp_c) << "rep " << rep;
    EXPECT_EQ(b.mean_temp_c, rb.mean_temp_c) << "rep " << rep;
    EXPECT_EQ(b.orbits_run, rb.orbits_run) << "rep " << rep;
  }
}

TEST(ThermalRuntimeTest, OrbitAveragePowerConservedAcrossSchemes) {
  // Permutations only move power around: every scheme's orbit-averaged
  // total power equals the base total (migration energy aside). This is
  // the invariant that makes scheme comparisons fair.
  const auto power = hot_corner_map(5, 9.0, 0.7);
  const double base_total = total_power(power);
  for (MigrationScheme s : figure1_schemes()) {
    const auto orbit = orbit_permutations(transform_of(s), GridDim{5, 5});
    std::vector<double> avg(power.size(), 0.0);
    for (const auto& perm : orbit) {
      const auto moved = apply_permutation(power, perm);
      for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += moved[i];
    }
    for (auto& v : avg) v /= static_cast<double>(orbit.size());
    EXPECT_NEAR(total_power(avg), base_total, 1e-9) << to_string(s);
  }
}

}  // namespace
}  // namespace renoc
