// Tests for the migration thermal co-simulation: consistency with steady
// state, orbit-average behaviour, ripple magnitude, and migration-energy
// accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/thermal_runtime.hpp"
#include "core/transform.hpp"
#include "floorplan/floorplan.hpp"
#include "power/power_map.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

RcNetwork make_net(int side) {
  return build_rc_network(
      make_grid_floorplan(GridDim{side, side}, date05_tile_area()),
      date05_hotspot_params());
}

std::vector<double> hot_corner_map(int side, double hot, double cool) {
  std::vector<double> p(static_cast<std::size_t>(side * side), cool);
  p[0] = hot;  // tile (0,0)
  return p;
}

TEST(ThermalRuntimeTest, StaticCaseEqualsSteadyState) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  const auto power = hot_corner_map(4, 9.0, 1.0);
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const ThermalRunResult r =
      runtime.run(power, {identity_permutation(16)}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.peak_temp_c, steady.peak_die_temperature(power), 1e-9);
  EXPECT_DOUBLE_EQ(r.ripple_c, 0.0);
}

TEST(ThermalRuntimeTest, MigrationReducesPeakForCornerHotspot) {
  // A rotating corner hotspot time-shares four corners; the peak must drop
  // substantially versus static, and approach the steady state of the
  // orbit-averaged map from above.
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  const auto power = hot_corner_map(4, 9.0, 1.0);
  const double static_peak = steady.peak_die_temperature(power);

  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const ThermalRunResult r = runtime.run(power, orbit, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.peak_temp_c, static_peak - 1.0);
  EXPECT_GE(r.peak_temp_c, r.steady_peak_of_avg_c - 1e-6);
  // The ripple at a 109 us period is small but nonzero.
  EXPECT_GT(r.ripple_c, 0.0);
  EXPECT_LT(r.ripple_c, 2.0);
}

TEST(ThermalRuntimeTest, ShorterPeriodsTrackAverageMoreTightly) {
  const RcNetwork net = make_net(4);
  const auto power = hot_corner_map(4, 8.0, 1.0);
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  auto peak_at = [&](double period) {
    ThermalRunOptions opt;
    opt.period_s = period;
    opt.dt_s = period / 50;
    MigrationThermalRuntime runtime(net, opt);
    return runtime.run(power, orbit, {});
  };
  const ThermalRunResult fast = peak_at(109.3e-6);
  const ThermalRunResult slow = peak_at(874.4e-6);
  // Longer periods let the hotspot develop further between migrations.
  EXPECT_GE(slow.peak_temp_c, fast.peak_temp_c - 1e-6);
  EXPECT_GT(slow.ripple_c, fast.ripple_c);
  // The gap stays bounded (this synthetic hotspot is far more extreme
  // than the calibrated configurations, where the paper-scale sub-0.1 C
  // behaviour is checked by the period-sweep bench).
  EXPECT_LT(slow.peak_temp_c - fast.peak_temp_c, 3.0);
}

TEST(ThermalRuntimeTest, MigrationEnergyRaisesTemperature) {
  const RcNetwork net = make_net(4);
  const auto power = hot_corner_map(4, 6.0, 1.0);
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{4, 4});
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});

  const ThermalRunResult free_run = runtime.run(power, orbit, {});
  // 200 uJ deposited per migration, uniformly.
  std::vector<std::vector<double>> energy(
      orbit.size(), std::vector<double>(16, 200e-6 / 16));
  const ThermalRunResult priced = runtime.run(power, orbit, energy);
  EXPECT_GT(priced.peak_temp_c, free_run.peak_temp_c);
  EXPECT_GT(priced.mean_temp_c, free_run.mean_temp_c);
  // Sanity: the mean rise roughly matches energy/period spread over the
  // whole chip through the package resistance (order of magnitude only).
  const double extra_w = 200e-6 / ThermalRunOptions{}.period_s;
  EXPECT_LT(priced.mean_temp_c - free_run.mean_temp_c, extra_w * 2.0);
}

TEST(ThermalRuntimeTest, RightShiftCannotFixRowImbalance) {
  // One hot row: right-shift's orbit-average equals the original map
  // row-wise, so the peak barely moves; XY-shift spreads across rows.
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  std::vector<double> power(16, 1.0);
  for (int x = 0; x < 4; ++x)
    power[static_cast<std::size_t>(coord_to_index({x, 0}, GridDim{4, 4}))] =
        5.0;
  const double static_peak = steady.peak_die_temperature(power);

  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto shift_x =
      orbit_permutations(Transform{TransformKind::kShiftX, 1}, GridDim{4, 4});
  const auto shift_xy =
      orbit_permutations(Transform{TransformKind::kShiftXY, 1}, GridDim{4, 4});
  const ThermalRunResult rx = runtime.run(power, shift_x, {});
  const ThermalRunResult rxy = runtime.run(power, shift_xy, {});

  const double dx = static_peak - rx.peak_temp_c;
  const double dxy = static_peak - rxy.peak_temp_c;
  EXPECT_LT(dx, 0.6);        // uniform hot row: nothing to gain in-row
  EXPECT_GT(dxy, 2.0 * dx);  // spreading across rows wins
}

TEST(ThermalRuntimeTest, CenterHotspotImmuneToRotation) {
  // The paper's configuration-E mechanism on a 5x5: rotation fixes the
  // center, so a central hotspot sees no benefit — and with migration
  // energy the peak goes *above* static.
  const RcNetwork net = make_net(5);
  SteadyStateSolver steady(net);
  std::vector<double> power(25, 1.0);
  power[12] = 7.0;  // center
  const double static_peak = steady.peak_die_temperature(power);

  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto rot =
      orbit_permutations(Transform{TransformKind::kRotation, 0}, GridDim{5, 5});
  const ThermalRunResult free_run = runtime.run(power, rot, {});
  EXPECT_NEAR(free_run.peak_temp_c, static_peak, 0.2);

  std::vector<std::vector<double>> energy(
      rot.size(), std::vector<double>(25, 400e-6 / 25));
  const ThermalRunResult priced = runtime.run(power, rot, energy);
  EXPECT_GT(priced.peak_temp_c, static_peak);

  // XY shift moves the center hotspot and wins despite equal energy.
  const auto sxy =
      orbit_permutations(Transform{TransformKind::kShiftXY, 1}, GridDim{5, 5});
  std::vector<std::vector<double>> energy_xy(
      sxy.size(), std::vector<double>(25, 400e-6 / 25));
  const ThermalRunResult shifted = runtime.run(power, sxy, energy_xy);
  EXPECT_LT(shifted.peak_temp_c, static_peak - 1.0);
}

TEST(ThermalRuntimeTest, InputValidation) {
  const RcNetwork net = make_net(4);
  MigrationThermalRuntime runtime(net, ThermalRunOptions{});
  const auto orbit =
      orbit_permutations(Transform{TransformKind::kMirrorX, 0}, GridDim{4, 4});
  // Wrong power size.
  EXPECT_THROW(runtime.run(std::vector<double>(9, 1.0), orbit, {}),
               CheckError);
  // Wrong number of energy maps.
  EXPECT_THROW(runtime.run(std::vector<double>(16, 1.0), orbit,
                           {std::vector<double>(16, 0.0)}),
               CheckError);
  // Bad options.
  ThermalRunOptions bad;
  bad.period_s = -1;
  EXPECT_THROW(MigrationThermalRuntime(net, bad), CheckError);
}

TEST(ThermalRuntimeTest, OrbitAveragePowerConservedAcrossSchemes) {
  // Permutations only move power around: every scheme's orbit-averaged
  // total power equals the base total (migration energy aside). This is
  // the invariant that makes scheme comparisons fair.
  const auto power = hot_corner_map(5, 9.0, 0.7);
  const double base_total = total_power(power);
  for (MigrationScheme s : figure1_schemes()) {
    const auto orbit = orbit_permutations(transform_of(s), GridDim{5, 5});
    std::vector<double> avg(power.size(), 0.0);
    for (const auto& perm : orbit) {
      const auto moved = apply_permutation(power, perm);
      for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += moved[i];
    }
    for (auto& v : avg) v /= static_cast<double>(orbit.size());
    EXPECT_NEAR(total_power(avg), base_total, 1e-9) << to_string(s);
  }
}

}  // namespace
}  // namespace renoc
