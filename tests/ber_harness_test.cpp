// Tests for the multithreaded Monte-Carlo BER harness.
//
// The harness's design center is schedule-independence: per-block RNG
// streams are derived up front from (seed, point, block), workers only pull
// jobs and sum private counters, so the reported counts must be identical
// for any thread count. This suite pins that property, the ber_block_rng
// replay contract, the serial-decode ground truth, and the config
// validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ldpc/ber_harness.hpp"
#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/encoder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

struct BerFixture {
  LdpcCode code;
  LdpcEncoder encoder;

  BerFixture()
      : code([] {
          Rng rng(3);
          return LdpcCode::make_regular(240, 3, 6, rng);
        }()),
        encoder(code) {}
};

BerConfig small_config() {
  BerConfig cfg;
  cfg.ebn0_db = {1.0, 3.0};
  cfg.blocks_per_point = 10;
  cfg.iterations = 6;
  cfg.early_exit = true;
  cfg.seed = 77;
  return cfg;
}

void expect_points_equal(const std::vector<BerPoint>& a,
                         const std::vector<BerPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].blocks, b[i].blocks);
    EXPECT_EQ(a[i].bits, b[i].bits);
    EXPECT_EQ(a[i].bit_errors, b[i].bit_errors);
    EXPECT_EQ(a[i].block_errors, b[i].block_errors);
    EXPECT_EQ(a[i].iterations_total, b[i].iterations_total);
  }
}

TEST(BerHarnessTest, CountsIndependentOfThreadCount) {
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.threads = 1;
  const auto serial = run_ber_sweep(f.code, f.encoder, cfg);
  for (int threads : {2, 4, 7}) {
    cfg.threads = threads;
    expect_points_equal(serial, run_ber_sweep(f.code, f.encoder, cfg));
  }
}

TEST(BerHarnessTest, PointBookkeepingIsExact) {
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.threads = 4;
  const auto points = run_ber_sweep(f.code, f.encoder, cfg);
  ASSERT_EQ(points.size(), cfg.ebn0_db.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_DOUBLE_EQ(points[p].ebn0_db, cfg.ebn0_db[p]);
    EXPECT_EQ(points[p].blocks, cfg.blocks_per_point);
    EXPECT_EQ(points[p].bits,
              static_cast<std::int64_t>(cfg.blocks_per_point) * f.code.n());
    EXPECT_LE(points[p].block_errors, points[p].blocks);
    EXPECT_LE(points[p].bit_errors, points[p].bits);
    EXPECT_GE(points[p].iterations_total, points[p].blocks);
    EXPECT_LE(points[p].iterations_total,
              static_cast<std::int64_t>(cfg.blocks_per_point) *
                  cfg.iterations);
  }
  // More noise cannot give fewer errors on this spread (1 dB vs 3 dB).
  EXPECT_GE(points[0].bit_errors, points[1].bit_errors);
}

TEST(BerHarnessTest, BlockRngReplaysSweepBlocks) {
  // Decoding the replayed blocks serially must reproduce the sweep's
  // counts bit for bit — this is the contract the BER-under-migration
  // example leans on to re-decode the measured blocks on the NoC.
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.threads = 3;
  const auto points = run_ber_sweep(f.code, f.encoder, cfg);

  const double rate = static_cast<double>(f.encoder.k()) /
                      static_cast<double>(f.encoder.n());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const MinSumDecoder decoder(f.code, cfg.iterations, cfg.early_exit);
    std::int64_t bit_errors = 0, iterations_total = 0;
    for (int b = 0; b < cfg.blocks_per_point; ++b) {
      Rng rng = ber_block_rng(cfg.seed, static_cast<int>(p), b);
      std::vector<std::uint8_t> data(static_cast<std::size_t>(f.encoder.k()));
      for (auto& bit : data)
        bit = static_cast<std::uint8_t>(rng.next_below(2));
      const auto cw = f.encoder.encode(data);
      AwgnChannel channel(cfg.ebn0_db[p], rate, rng.split());
      const DecodeResult result =
          decoder.decode(quantize_llrs(channel.transmit(cw)));
      for (std::size_t i = 0; i < cw.size(); ++i)
        bit_errors += result.hard_bits[i] != cw[i];
      iterations_total += result.iterations_run;
    }
    EXPECT_EQ(bit_errors, points[p].bit_errors);
    EXPECT_EQ(iterations_total, points[p].iterations_total);
  }
}

TEST(BerHarnessTest, MoreThreadsThanJobsIsFine) {
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.ebn0_db = {2.0};
  cfg.blocks_per_point = 3;
  cfg.threads = 16;  // workers are capped at the job count
  const auto many = run_ber_sweep(f.code, f.encoder, cfg);
  cfg.threads = 1;
  expect_points_equal(run_ber_sweep(f.code, f.encoder, cfg), many);
}

TEST(BerHarnessTest, CountsIndependentOfBatchWidth) {
  // Batched decoding is a pure throughput knob: every lane is bit-identical
  // to a scalar decode and the job->stream mapping ignores batching, so any
  // (batch_size, threads) combination must reproduce the serial counts —
  // including widths that do not divide the job count (tail batches) and
  // batches that straddle the Eb/N0-point boundary.
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.threads = 1;
  cfg.batch_size = 1;
  const auto serial = run_ber_sweep(f.code, f.encoder, cfg);
  for (const int batch : {3, 4, 8}) {
    for (const int threads : {1, 2, 4}) {
      cfg.batch_size = batch;
      cfg.threads = threads;
      SCOPED_TRACE("batch " + std::to_string(batch) + " threads " +
                   std::to_string(threads));
      expect_points_equal(serial, run_ber_sweep(f.code, f.encoder, cfg));
    }
  }
}

TEST(BerHarnessTest, ValidatesConfig) {
  const BerFixture f;
  BerConfig cfg = small_config();
  cfg.ebn0_db.clear();
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
  cfg = small_config();
  cfg.blocks_per_point = 0;
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
  cfg = small_config();
  cfg.threads = 0;
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
  cfg = small_config();
  cfg.iterations = 0;
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
  cfg = small_config();
  cfg.batch_size = 0;
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
  cfg = small_config();
  cfg.batch_size = 65;
  EXPECT_THROW(run_ber_sweep(f.code, f.encoder, cfg), CheckError);
}

TEST(BerHarnessTest, BlockStreamsDistinctAcrossCoordinates) {
  // The stream seed must depend on all three coordinates. (Aggregate
  // error *counts* of two sweeps can legitimately collide, so the
  // property is pinned on the streams themselves.)
  const auto first_u64 = [](std::uint64_t seed, int point, int block) {
    return ber_block_rng(seed, point, block).next_u64();
  };
  EXPECT_NE(first_u64(77, 0, 0), first_u64(78, 0, 0));
  EXPECT_NE(first_u64(77, 0, 0), first_u64(77, 1, 0));
  EXPECT_NE(first_u64(77, 0, 0), first_u64(77, 0, 1));
  EXPECT_NE(first_u64(77, 1, 0), first_u64(77, 0, 1));
}

}  // namespace
}  // namespace renoc
