// Cross-module integration properties that tie the whole pipeline
// together: activity/energy conservation from the NoC counters through
// the power model, superposition of the thermal solution under power-map
// permutation, and end-to-end invariants of the experiment driver that
// individual module tests cannot see.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/chip_config.hpp"
#include "floorplan/floorplan.hpp"
#include "core/experiment.hpp"
#include "core/migration_controller.hpp"
#include "core/transform.hpp"
#include "ldpc/decoder.hpp"
#include "ldpc/noc_decoder.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"
#include "power/power_map.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

ChipConfig tiny_config() {
  ChipConfig cfg = config_A();
  cfg.workload.code_n = 510;
  cfg.ldpc_params.iterations = 4;
  cfg.placer.iterations = 3000;
  return cfg;
}

TEST(IntegrationTest, DecodeActivityIsPlacementInvariantInTotal) {
  // Moving the workload must not change *total* compute activity — only
  // where it lands; network activity may differ (routes change).
  const BuiltChip chip = build_chip(tiny_config());
  LdpcNocParams params = tiny_config().ldpc_params;

  auto total_ops = [&](const std::vector<int>& placement) {
    Fabric fabric(tiny_config().noc);
    NocLdpcDecoder decoder(fabric, chip.code, chip.partition, placement,
                           params);
    decoder.decode_block(chip.channel_llrs);
    std::uint64_t ops = 0;
    for (int t = 0; t < fabric.node_count(); ++t)
      ops += fabric.stats().tile(t).pe_compute_ops;
    return ops;
  };

  const auto id = identity_permutation(16);
  const auto rotated =
      transform_of(MigrationScheme::kRotation).permutation(GridDim{4, 4});
  EXPECT_EQ(total_ops(id), total_ops(rotated));
}

TEST(IntegrationTest, PowerMapPermutationCommutesWithMeasurement) {
  // Measuring at a rotated placement produces (approximately) the rotated
  // compute-power map: compute ops relocate exactly; only router/link
  // terms differ. Check the per-tile compute-op counters relocate
  // exactly under the permutation.
  const BuiltChip chip = build_chip(tiny_config());
  const LdpcNocParams params = tiny_config().ldpc_params;
  const auto perm =
      transform_of(MigrationScheme::kShiftXY).permutation(GridDim{4, 4});

  Fabric f1(tiny_config().noc);
  NocLdpcDecoder d1(f1, chip.code, chip.partition,
                    identity_permutation(16), params);
  d1.decode_block(chip.channel_llrs);

  std::vector<int> placement(16);
  for (int c = 0; c < 16; ++c)
    placement[static_cast<std::size_t>(c)] =
        perm[static_cast<std::size_t>(c)];
  Fabric f2(tiny_config().noc);
  NocLdpcDecoder d2(f2, chip.code, chip.partition, placement, params);
  d2.decode_block(chip.channel_llrs);

  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(f1.stats().tile(t).pe_compute_ops,
              f2.stats()
                  .tile(perm[static_cast<std::size_t>(t)])
                  .pe_compute_ops)
        << "compute ops must relocate with the workload (tile " << t << ")";
  }
}

TEST(IntegrationTest, ThermalPeakInvariantUnderSymmetricPermutation) {
  // The thermal network of a square grid has the full dihedral symmetry,
  // so rotating a power map rotates the temperature field: peaks match.
  const Floorplan fp = make_grid_floorplan(GridDim{4, 4}, date05_tile_area());
  const RcNetwork net = build_rc_network(fp, date05_hotspot_params());
  SteadyStateSolver solver(net);
  Rng rng(5);
  std::vector<double> power(16);
  for (auto& p : power) p = 1.0 + 5.0 * rng.next_double();

  const double base_peak = solver.peak_die_temperature(power);
  for (MigrationScheme s : figure1_schemes()) {
    if (s == MigrationScheme::kShiftRight || s == MigrationScheme::kShiftXY)
      continue;  // translations wrap around: not a geometric symmetry
    const auto moved = apply_permutation(
        power, transform_of(s).permutation(GridDim{4, 4}));
    EXPECT_NEAR(solver.peak_die_temperature(moved), base_peak, 1e-6)
        << to_string(s);
  }
}

TEST(IntegrationTest, MigrationEnergyShowsUpInPowerModel) {
  // A migration on an otherwise idle fabric must produce nonzero dynamic
  // energy at exactly the tiles that sourced, routed, or received state.
  NocConfig noc;
  noc.dim = GridDim{4, 4};
  Fabric fabric(noc);
  MigrationController controller(
      fabric, transform_of(MigrationScheme::kShiftRight));
  std::vector<int> placement = identity_permutation(16);
  controller.migrate(placement, std::vector<int>(16, 20));

  const EnergyModel energy{EnergyParams{}};
  double total = 0.0;
  for (int t = 0; t < 16; ++t)
    total += energy.tile_dynamic_energy(fabric.stats().tile(t));
  EXPECT_GT(total, 0.0);
  // Right shift moves along rows; with one flit-hop per move plus the
  // wraparound, every tile participates — all tiles show activity.
  for (int t = 0; t < 16; ++t)
    EXPECT_GT(energy.tile_dynamic_energy(fabric.stats().tile(t)), 0.0)
        << "tile " << t;
}

TEST(IntegrationTest, CalibrationIsExactlyLinear) {
  // Scaling the calibrated power map by s scales the rise by s: the
  // calibration search in the driver relies on strict linearity.
  const Floorplan fp = make_grid_floorplan(GridDim{5, 5}, date05_tile_area());
  const RcNetwork net = build_rc_network(fp, date05_hotspot_params());
  SteadyStateSolver solver(net);
  Rng rng(17);
  std::vector<double> power(25);
  for (auto& p : power) p = rng.next_double() * 4.0;
  const double rise1 = solver.peak_die_temperature(power) - net.ambient();
  scale_map(power, 3.5);
  const double rise2 = solver.peak_die_temperature(power) - net.ambient();
  EXPECT_NEAR(rise2, 3.5 * rise1, 1e-9);
}

TEST(IntegrationTest, GoldenAndNocDecodersAgreeAfterMigrationRoundTrip) {
  // Decode, migrate through a full rotation orbit (4 migrations), decode
  // again: both decodes bit-identical to golden, placement home again.
  const ChipConfig cfg = tiny_config();
  const BuiltChip chip = build_chip(cfg);
  const MinSumDecoder golden(chip.code, cfg.ldpc_params.iterations);
  const DecodeResult gold = golden.decode(chip.channel_llrs);

  Fabric fabric(cfg.noc);
  NocLdpcDecoder decoder(fabric, chip.code, chip.partition,
                         identity_permutation(16), cfg.ldpc_params);
  MigrationController controller(fabric,
                                 transform_of(MigrationScheme::kRotation));
  std::vector<int> placement = identity_permutation(16);
  std::vector<int> words(16);
  for (int c = 0; c < 16; ++c)
    words[static_cast<std::size_t>(c)] = decoder.migration_state_words(c);

  EXPECT_EQ(decoder.decode_block(chip.channel_llrs).hard_bits,
            gold.hard_bits);
  for (int k = 0; k < 4; ++k) {
    controller.migrate(placement, words);
    decoder.set_placement(placement);
    EXPECT_EQ(decoder.decode_block(chip.channel_llrs).hard_bits,
              gold.hard_bits)
        << "after migration " << k + 1;
  }
  EXPECT_EQ(placement, identity_permutation(16));
}

TEST(IntegrationTest, DefaultPeriodSnapsToWholeBlocks) {
  ExperimentDriver driver(tiny_config());
  driver.prepare(1);
  const double period = driver.default_period_s();
  const double blocks = period / driver.block_seconds();
  EXPECT_NEAR(blocks, std::round(blocks), 1e-9);
  EXPECT_GE(blocks, 1.0);
}

}  // namespace
}  // namespace renoc
