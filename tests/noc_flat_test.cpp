// Tests for the flat SoA NoC fabric engine and its harnesses:
//   * bit-exactness of the flat Fabric against the preserved seed engine
//     (noc/reference_fabric) — delivery order and contents, cycle counts,
//     and every NocStats counter — across traffic patterns, mesh shapes,
//     buffer depths, and wormhole-contention scenarios;
//   * the scenario-sweep harness: thread-count invariance and single-
//     scenario replay (mirroring ber_harness_test);
//   * the new traffic patterns (bit-reverse, shuffle), fixed-point skip
//     accounting, and bursty Markov on/off modulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "noc/fabric.hpp"
#include "noc/reference_fabric.hpp"
#include "noc/sweep_harness.hpp"
#include "noc/traffic.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

NocConfig make_config(GridDim dim, int depth = 4) {
  NocConfig cfg;
  cfg.dim = dim;
  cfg.buffer_depth = depth;
  return cfg;
}

// ---------------------------------------------------------------------------
// Flat-vs-reference equivalence machinery
// ---------------------------------------------------------------------------

struct ScheduledSend {
  int cycle = 0;
  Message msg;
};

/// One delivered message with its arrival cycle: (cycle, node, src, tag,
/// payload). Sequences of these capture delivery order per node exactly.
using Delivery =
    std::tuple<std::uint64_t, int, int, std::uint64_t,
               std::vector<std::uint64_t>>;

struct Outcome {
  std::vector<Delivery> deliveries;
  bool drained = false;  ///< fabric reached idle (no max_cycles truncation)
  std::uint64_t final_cycle = 0;
  std::vector<TileActivity> tiles;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  std::size_t lat_count = 0;
  double lat_mean = 0.0;
  double lat_min = 0.0;
  double lat_max = 0.0;
};

/// Feeds the schedule (which must be sorted by cycle — sends are consumed
/// in index order) into a fresh fabric of type FabricT, stepping until
/// everything drains; records the complete observable behavior.
template <class FabricT>
Outcome drive(const NocConfig& cfg,
              const std::vector<ScheduledSend>& schedule,
              int max_cycles = 500000) {
  FabricT fabric(cfg);
  Outcome out;
  std::size_t next = 0;
  int cycle = 0;
  while (next < schedule.size() || !fabric.idle()) {
    if (cycle > max_cycles) break;  // out.drained stays false and fails
    while (next < schedule.size() && schedule[next].cycle <= cycle)
      fabric.send(schedule[next++].msg);
    fabric.step();
    ++cycle;
    for (int node = 0; node < fabric.node_count(); ++node)
      while (auto got = fabric.try_receive(node))
        out.deliveries.emplace_back(fabric.now(), node, got->src, got->tag,
                                    got->payload);
  }
  out.drained = fabric.idle();
  out.final_cycle = fabric.now();
  const NetworkStats& st = fabric.stats();
  for (int t = 0; t < fabric.node_count(); ++t)
    out.tiles.push_back(st.tile(t));
  out.packets = st.packets_delivered();
  out.flits = st.flits_delivered();
  out.lat_count = st.packet_latency().count();
  out.lat_mean = st.packet_latency().mean();
  out.lat_min = st.packet_latency().min();
  out.lat_max = st.packet_latency().max();
  return out;
}

void expect_bit_identical(const Outcome& ref, const Outcome& flat) {
  EXPECT_EQ(ref.final_cycle, flat.final_cycle) << "cycle counts diverged";
  EXPECT_EQ(ref.deliveries, flat.deliveries)
      << "delivery stream (order/cycle/contents) diverged";
  EXPECT_EQ(ref.packets, flat.packets);
  EXPECT_EQ(ref.flits, flat.flits);
  EXPECT_EQ(ref.lat_count, flat.lat_count);
  EXPECT_EQ(ref.lat_mean, flat.lat_mean);
  EXPECT_EQ(ref.lat_min, flat.lat_min);
  EXPECT_EQ(ref.lat_max, flat.lat_max);
  ASSERT_EQ(ref.tiles.size(), flat.tiles.size());
  for (std::size_t t = 0; t < ref.tiles.size(); ++t) {
    const TileActivity& a = ref.tiles[t];
    const TileActivity& b = flat.tiles[t];
    EXPECT_EQ(a.buffer_writes, b.buffer_writes) << "tile " << t;
    EXPECT_EQ(a.buffer_reads, b.buffer_reads) << "tile " << t;
    EXPECT_EQ(a.crossbar_traversals, b.crossbar_traversals) << "tile " << t;
    EXPECT_EQ(a.arbitrations, b.arbitrations) << "tile " << t;
    EXPECT_EQ(a.link_flits, b.link_flits) << "tile " << t;
    EXPECT_EQ(a.injected_flits, b.injected_flits) << "tile " << t;
    EXPECT_EQ(a.ejected_flits, b.ejected_flits) << "tile " << t;
  }
}

void expect_engines_agree(const NocConfig& cfg,
                          const std::vector<ScheduledSend>& schedule) {
  const Outcome ref = drive<ReferenceFabric>(cfg, schedule);
  const Outcome flat = drive<Fabric>(cfg, schedule);
  // Guard against a common-mode hang: identical truncated outcomes from
  // both engines would otherwise compare equal.
  EXPECT_TRUE(ref.drained);
  EXPECT_TRUE(flat.drained);
  EXPECT_EQ(flat.deliveries.size(), schedule.size())
      << "every scheduled message must be delivered";
  expect_bit_identical(ref, flat);
}

/// Bernoulli schedule under a traffic pattern. Destinations come from a
/// real TrafficGenerator (on a scratch fabric) so the schedule exercises
/// exactly the shipped pattern definitions.
std::vector<ScheduledSend> pattern_schedule(const NocConfig& cfg,
                                            TrafficPattern pattern,
                                            int cycles, double rate,
                                            int words, std::uint64_t seed) {
  Fabric scratch(cfg);
  TrafficGenerator gen(scratch, pattern, rate, words, Rng(seed));
  Rng coin(seed * 7919 + 1);
  std::vector<ScheduledSend> out;
  const double p = rate / words;
  for (int c = 0; c < cycles; ++c)
    for (int src = 0; src < cfg.dim.node_count(); ++src) {
      if (!coin.next_bool(p)) continue;
      const int dst = gen.destination(src);
      if (dst == src) continue;
      ScheduledSend s;
      s.cycle = c;
      s.msg.src = src;
      s.msg.dst = dst;
      s.msg.tag = out.size();
      s.msg.payload.assign(static_cast<std::size_t>(words),
                           static_cast<std::uint64_t>(src) * 101u +
                               static_cast<std::uint64_t>(c));
      out.push_back(std::move(s));
    }
  return out;
}

TEST(FlatVsReference, AllTrafficPatterns) {
  const NocConfig cfg = make_config({4, 4});
  for (TrafficPattern p :
       {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
        TrafficPattern::kBitComplement, TrafficPattern::kHotspot,
        TrafficPattern::kNeighbor, TrafficPattern::kBitReverse,
        TrafficPattern::kShuffle}) {
    SCOPED_TRACE(to_string(p));
    expect_engines_agree(cfg, pattern_schedule(cfg, p, 300, 0.25, 3, 17));
  }
}

TEST(FlatVsReference, MeshShapes2x2Through8x8) {
  for (GridDim dim : {GridDim{2, 2}, GridDim{3, 3}, GridDim{4, 4},
                      GridDim{5, 3}, GridDim{6, 4}, GridDim{8, 8}}) {
    SCOPED_TRACE(to_string(dim));
    const NocConfig cfg = make_config(dim);
    expect_engines_agree(
        cfg, pattern_schedule(cfg, TrafficPattern::kUniformRandom, 250, 0.30,
                              4, 23));
  }
}

TEST(FlatVsReference, BufferDepths1Through8) {
  for (int depth : {1, 2, 3, 4, 8}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    const NocConfig cfg = make_config({4, 4}, depth);
    expect_engines_agree(
        cfg, pattern_schedule(cfg, TrafficPattern::kUniformRandom, 200, 0.35,
                              5, 31));
  }
}

TEST(FlatVsReference, WormholeContentionAllToOne) {
  // Long packets (much deeper than any FIFO) from every node into one
  // sink maximize wormhole blocking, credit stalls, and round-robin churn.
  for (int depth : {1, 4}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    const NocConfig cfg = make_config({4, 4}, depth);
    std::vector<ScheduledSend> schedule;
    for (int round = 0; round < 3; ++round)
      for (int s = 1; s < 16; ++s) {
        ScheduledSend snd;
        snd.cycle = round * 5;
        snd.msg.src = s;
        snd.msg.dst = 0;
        snd.msg.tag = schedule.size();
        snd.msg.payload.assign(64, static_cast<std::uint64_t>(s));
        schedule.push_back(std::move(snd));
      }
    // Crossing long packet out of the hotspot against the incoming flood.
    ScheduledSend cross;
    cross.cycle = 2;
    cross.msg.src = 0;
    cross.msg.dst = 15;
    cross.msg.tag = 999;
    cross.msg.payload.assign(64, 7);
    schedule.push_back(std::move(cross));
    // drive() consumes sends in index order, so restore cycle order for
    // the out-of-order cross entry.
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const ScheduledSend& a, const ScheduledSend& b) {
                       return a.cycle < b.cycle;
                     });
    expect_engines_agree(cfg, schedule);
  }
}

TEST(FlatVsReference, EmptyAndLongPayloads) {
  const NocConfig cfg = make_config({4, 4});
  std::vector<ScheduledSend> schedule;
  ScheduledSend empty;  // empty payload: one flit, delivered as one zero
  empty.cycle = 0;
  empty.msg.src = 1;
  empty.msg.dst = 14;
  empty.msg.tag = 1;
  schedule.push_back(empty);
  ScheduledSend lng;  // 200 words: wormhole continuation across the mesh
  lng.cycle = 1;
  lng.msg.src = 3;
  lng.msg.dst = 12;
  lng.msg.tag = 2;
  for (std::uint64_t i = 0; i < 200; ++i) lng.msg.payload.push_back(i * i);
  schedule.push_back(lng);
  const Outcome flat = drive<Fabric>(cfg, schedule);
  expect_engines_agree(cfg, schedule);
  // Content spot-check on the flat engine's deliveries.
  ASSERT_EQ(flat.deliveries.size(), 2u);
  for (const Delivery& d : flat.deliveries) {
    if (std::get<3>(d) == 1) {
      EXPECT_EQ(std::get<4>(d), std::vector<std::uint64_t>{0});
    } else {
      ASSERT_EQ(std::get<4>(d).size(), 200u);
      EXPECT_EQ(std::get<4>(d)[9], 81u);
    }
  }
}

// ---------------------------------------------------------------------------
// Message recycling API
// ---------------------------------------------------------------------------

TEST(FabricRecycling, AcquireSendReceiveRecycleRoundTrip) {
  Fabric fabric(make_config({4, 4}));
  for (int round = 0; round < 50; ++round) {
    Message m = fabric.acquire_message();
    EXPECT_TRUE(m.payload.empty());
    m.src = round % 16;
    m.dst = (round + 5) % 16;
    m.tag = static_cast<std::uint64_t>(round);
    m.payload.assign(6, static_cast<std::uint64_t>(round) * 3u);
    fabric.send(std::move(m));
    fabric.drain();
    auto got = fabric.try_receive((round + 5) % 16);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, static_cast<std::uint64_t>(round));
    EXPECT_EQ(got->payload,
              std::vector<std::uint64_t>(6, static_cast<std::uint64_t>(round) *
                                                3u));
    fabric.recycle(std::move(*got));
  }
}

// ---------------------------------------------------------------------------
// New traffic patterns and skip accounting
// ---------------------------------------------------------------------------

TEST(TrafficPatterns, BitReverseAndShuffleOn4x4) {
  Fabric fabric(make_config({4, 4}));  // 16 nodes -> 4 address bits
  TrafficGenerator rev(fabric, TrafficPattern::kBitReverse, 0.1, 2, Rng(1));
  EXPECT_EQ(rev.destination(1), 8);    // 0001 -> 1000
  EXPECT_EQ(rev.destination(3), 12);   // 0011 -> 1100
  EXPECT_EQ(rev.destination(8), 1);
  EXPECT_EQ(rev.destination(0), 0);    // palindrome: fixed point
  EXPECT_EQ(rev.destination(6), 6);    // 0110 is a palindrome too
  TrafficGenerator shf(fabric, TrafficPattern::kShuffle, 0.1, 2, Rng(1));
  EXPECT_EQ(shf.destination(5), 10);   // 0101 -> 1010
  EXPECT_EQ(shf.destination(8), 1);    // 1000 -> 0001
  EXPECT_EQ(shf.destination(3), 6);    // 0011 -> 0110
  EXPECT_EQ(shf.destination(0), 0);    // fixed point
}

TEST(TrafficPatterns, OutOfRangeImagesAreFixedPointsOn3x3) {
  Fabric fabric(make_config({3, 3}));  // 9 nodes -> 4 address bits
  TrafficGenerator rev(fabric, TrafficPattern::kBitReverse, 0.1, 2, Rng(1));
  EXPECT_EQ(rev.destination(1), 8);    // 0001 -> 1000 = 8, in range
  EXPECT_EQ(rev.destination(3), 3);    // 0011 -> 1100 = 12, out of range
  TrafficGenerator shf(fabric, TrafficPattern::kShuffle, 0.1, 2, Rng(1));
  EXPECT_EQ(shf.destination(4), 8);    // 0100 -> 1000
  EXPECT_EQ(shf.destination(5), 5);    // 0101 -> 1010 = 10, out of range
  // Every destination stays a valid node on every pattern.
  for (TrafficPattern p :
       {TrafficPattern::kBitReverse, TrafficPattern::kShuffle}) {
    TrafficGenerator gen(fabric, p, 0.1, 2, Rng(2));
    for (int src = 0; src < 9; ++src) {
      const int dst = gen.destination(src);
      EXPECT_GE(dst, 0);
      EXPECT_LT(dst, 9);
    }
  }
}

TEST(TrafficSkips, FixedPointDrawsAreCountedNotLost) {
  // Transpose on a square mesh fixes the diagonal: skips must be counted
  // and offered load (incl. skips) must track the configured rate.
  Fabric fabric(make_config({4, 4}));
  TrafficGenerator gen(fabric, TrafficPattern::kTranspose, 0.2, 2, Rng(5));
  gen.run(2000);
  EXPECT_GT(gen.messages_skipped(), 0u);
  EXPECT_NEAR(gen.offered_flit_rate(), 0.2, 0.05);
  EXPECT_LT(gen.injected_flit_rate(), gen.offered_flit_rate());
  // ~4 of 16 sources sit on the diagonal, so ~1/4 of draws skip.
  const double skip_fraction =
      static_cast<double>(gen.messages_skipped()) /
      static_cast<double>(gen.messages_sent() + gen.messages_skipped());
  EXPECT_NEAR(skip_fraction, 0.25, 0.08);
}

TEST(TrafficSkips, UniformNeverSkips) {
  Fabric fabric(make_config({4, 4}));
  TrafficGenerator gen(fabric, TrafficPattern::kUniformRandom, 0.2, 2,
                       Rng(5));
  gen.run(1000);
  EXPECT_EQ(gen.messages_skipped(), 0u);
  EXPECT_EQ(gen.offered_flit_rate(), gen.injected_flit_rate());
}

TEST(TrafficSkips, HotspotNodeSkipsItsOwnDraws) {
  Fabric fabric(make_config({4, 4}));
  TrafficGenerator gen(fabric, TrafficPattern::kHotspot, 0.1, 2, Rng(5),
                       /*hotspot=*/3);
  gen.run(2000);
  EXPECT_GT(gen.messages_skipped(), 0u);  // node 3's draws
}

// ---------------------------------------------------------------------------
// Bursty (Markov on/off) injection
// ---------------------------------------------------------------------------

TEST(BurstyTraffic, LongRunOfferedLoadMatchesConfiguredRate) {
  Fabric fabric(make_config({4, 4}));
  BurstParams burst;
  burst.enabled = true;
  burst.p_on_to_off = 0.10;
  burst.p_off_to_on = 0.10;  // duty cycle 0.5 -> on-state rate doubles
  TrafficGenerator gen(fabric, TrafficPattern::kUniformRandom, 0.10, 2,
                       Rng(9), 0, burst);
  gen.run(8000);
  EXPECT_NEAR(gen.offered_flit_rate(), 0.10, 0.02);
  // Conservation: everything sent is eventually delivered.
  fabric.drain(2'000'000);
  for (int n = 0; n < fabric.node_count(); ++n)
    while (fabric.try_receive(n)) {
    }
  EXPECT_EQ(fabric.stats().packets_delivered(), gen.messages_sent());
}

TEST(BurstyTraffic, ValidatesParameters) {
  Fabric fabric(make_config({4, 4}));
  BurstParams bad;
  bad.enabled = true;
  bad.p_on_to_off = 0.0;  // no exit from bursts
  EXPECT_THROW(TrafficGenerator(fabric, TrafficPattern::kUniformRandom, 0.1,
                                2, Rng(1), 0, bad),
               CheckError);
  BurstParams low_duty;  // duty 1/11 -> on-state probability would exceed 1
  low_duty.enabled = true;
  low_duty.p_on_to_off = 0.5;
  low_duty.p_off_to_on = 0.05;
  EXPECT_THROW(TrafficGenerator(fabric, TrafficPattern::kUniformRandom, 0.5,
                                2, Rng(1), 0, low_duty),
               CheckError);
}

// ---------------------------------------------------------------------------
// Scenario-sweep harness
// ---------------------------------------------------------------------------

SweepConfig small_sweep() {
  SweepConfig cfg;
  cfg.patterns = {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
                  TrafficPattern::kBitReverse};
  cfg.mesh_sides = {4};
  cfg.injection_rates = {0.05, 0.20};
  cfg.message_words = {2, 4};
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 400;
  cfg.seed = 77;
  return cfg;
}

void expect_points_equal(const SweepPoint& a, const SweepPoint& b) {
  EXPECT_EQ(a.scenario_index, b.scenario_index);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_received, b.messages_received);
  EXPECT_EQ(a.messages_skipped, b.messages_skipped);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flits_delivered, b.flits_delivered);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.avg_latency_cycles, b.avg_latency_cycles);
  EXPECT_EQ(a.max_latency_cycles, b.max_latency_cycles);
  EXPECT_EQ(a.offered_flit_rate, b.offered_flit_rate);
  EXPECT_EQ(a.accepted_flit_rate, b.accepted_flit_rate);
}

TEST(SweepHarness, ResultsAreThreadCountInvariant) {
  SweepConfig cfg = small_sweep();
  cfg.threads = 1;
  const std::vector<SweepPoint> baseline = run_noc_sweep(cfg);
  ASSERT_EQ(baseline.size(), 12u);
  for (int threads : {2, 4, 7}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.threads = threads;
    const std::vector<SweepPoint> pts = run_noc_sweep(cfg);
    ASSERT_EQ(pts.size(), baseline.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
      expect_points_equal(baseline[i], pts[i]);
  }
}

TEST(SweepHarness, SingleScenarioReplayMatchesSweep) {
  SweepConfig cfg = small_sweep();
  cfg.threads = 3;
  const std::vector<SweepPoint> sweep = run_noc_sweep(cfg);
  const std::vector<SweepScenario> grid = cfg.scenarios();
  for (int i : {0, 5, 11}) {
    SCOPED_TRACE("scenario=" + std::to_string(i));
    const SweepPoint replay = run_noc_scenario(
        grid[static_cast<std::size_t>(i)], cfg, i);
    expect_points_equal(sweep[static_cast<std::size_t>(i)], replay);
  }
}

TEST(SweepHarness, ScenarioGridOrderIsStable) {
  const SweepConfig cfg = small_sweep();
  const std::vector<SweepScenario> grid = cfg.scenarios();
  ASSERT_EQ(grid.size(), 3u * 1u * 2u * 2u);
  // Pattern-major, then mesh side, rate, words.
  EXPECT_EQ(grid[0].pattern, TrafficPattern::kUniformRandom);
  EXPECT_EQ(grid[0].injection_rate, 0.05);
  EXPECT_EQ(grid[0].message_words, 2);
  EXPECT_EQ(grid[1].message_words, 4);
  EXPECT_EQ(grid[2].injection_rate, 0.20);
  EXPECT_EQ(grid[4].pattern, TrafficPattern::kTranspose);
  EXPECT_EQ(grid[8].pattern, TrafficPattern::kBitReverse);
}

TEST(SweepHarness, ReportsOfferedAndInjectedLoadSeparately) {
  SweepConfig cfg = small_sweep();
  cfg.patterns = {TrafficPattern::kTranspose};  // diagonal fixed points
  cfg.injection_rates = {0.2};
  cfg.message_words = {2};
  const std::vector<SweepPoint> pts = run_noc_sweep(cfg);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].messages_skipped, 0u);
  EXPECT_GT(pts[0].offered_flit_rate, pts[0].injected_flit_rate);
  EXPECT_NEAR(pts[0].offered_flit_rate, 0.2, 0.05);
}

TEST(SweepHarness, SaturatedHotspotShowsAcceptedBelowOffered) {
  // All-to-one at high rate: the sink ejects one flit per cycle, so the
  // per-node accepted rate must sit far below offered. (Drain-phase
  // arrivals are excluded from accepted throughput — counting them would
  // make every scenario look unsaturated.)
  SweepConfig cfg = small_sweep();
  cfg.patterns = {TrafficPattern::kHotspot};
  cfg.injection_rates = {0.5};
  cfg.message_words = {4};
  cfg.measure_cycles = 600;
  const std::vector<SweepPoint> pts = run_noc_sweep(cfg);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].offered_flit_rate, 0.4);
  EXPECT_LT(pts[0].accepted_flit_rate, 0.5 * pts[0].offered_flit_rate);
}

TEST(SweepHarness, ValidatesConfig) {
  SweepConfig cfg = small_sweep();
  cfg.injection_rates.clear();
  EXPECT_THROW(run_noc_sweep(cfg), CheckError);
  cfg = small_sweep();
  cfg.threads = 0;
  EXPECT_THROW(run_noc_sweep(cfg), CheckError);
  cfg = small_sweep();
  cfg.mesh_sides = {1};
  EXPECT_THROW(run_noc_sweep(cfg), CheckError);
  cfg = small_sweep();
  cfg.injection_rates = {1.5};
  EXPECT_THROW(run_noc_sweep(cfg), CheckError);
  // Infeasible burst/rate combination is rejected up front (not inside a
  // worker thread, where a throw would terminate the process).
  cfg = small_sweep();
  cfg.injection_rates = {0.5};
  cfg.message_words = {1};
  cfg.burst.enabled = true;
  cfg.burst.p_on_to_off = 0.5;
  cfg.burst.p_off_to_on = 0.05;  // duty 1/11 -> on-state probability > 1
  EXPECT_THROW(run_noc_sweep(cfg), CheckError);
}

TEST(SweepHarness, ScenarioRngIsStateless) {
  // Same (seed, index) -> identical stream; different index -> different.
  Rng a = sweep_scenario_rng(42, 7);
  Rng b = sweep_scenario_rng(42, 7);
  Rng c = sweep_scenario_rng(42, 8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

}  // namespace
}  // namespace renoc
