// Tests for the HotSpot-style RC network and its solvers.
//
// The key physics invariants: the conductance matrix is symmetric and
// couples to ambient; steady state matches hand-computable cases; total
// heat flow to ambient equals total injected power (energy balance); the
// transient relaxes to the steady state and is stable at large steps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "floorplan/floorplan.hpp"
#include "thermal/grid_refine.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {
namespace {

RcNetwork make_net(int side) {
  const Floorplan fp =
      make_grid_floorplan(GridDim{side, side}, date05_tile_area());
  return build_rc_network(fp, date05_hotspot_params());
}

TEST(HotSpotParamsTest, DefaultsValidate) {
  EXPECT_NO_THROW(date05_hotspot_params().validate());
  EXPECT_DOUBLE_EQ(date05_hotspot_params().ambient, 40.0);
}

TEST(HotSpotParamsTest, BadValuesRejected) {
  HotSpotParams p = date05_hotspot_params();
  p.k_die = -1;
  EXPECT_THROW(p.validate(), CheckError);
  p = date05_hotspot_params();
  p.s_sink = p.s_spreader / 2;  // sink smaller than spreader
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(RcNetworkTest, NodeCountLayout) {
  const RcNetwork net = make_net(4);
  // 16 die + 16 TIM + 16 spreader + 4 trapezoids + 5 sink + 1 convection.
  EXPECT_EQ(net.node_count(), 3 * 16 + 10);
  EXPECT_EQ(net.die_count(), 16);
}

TEST(RcNetworkTest, ConductanceSymmetric) {
  const RcNetwork net = make_net(5);
  EXPECT_TRUE(net.conductance().is_symmetric(1e-12));
}

TEST(RcNetworkTest, AllCapacitancesPositive) {
  const RcNetwork net = make_net(4);
  for (double c : net.capacitance()) EXPECT_GT(c, 0.0);
}

TEST(RcNetworkTest, RowSumsZeroExceptAmbientCoupling) {
  // Each row of G sums to the node's conductance to ambient: zero for all
  // nodes except the convection node (which carries 1/r_convec).
  const RcNetwork net = make_net(4);
  const HotSpotParams p = date05_hotspot_params();
  const Matrix& g = net.conductance();
  const int n = net.node_count();
  for (int r = 0; r < n; ++r) {
    double sum = 0.0;
    for (int c = 0; c < n; ++c)
      sum += g(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    if (r == n - 1) {
      EXPECT_NEAR(sum, 1.0 / p.r_convec, 1e-9);
    } else {
      EXPECT_NEAR(sum, 0.0, 1e-9);
    }
  }
}

TEST(RcNetworkTest, DieTooBigForSpreaderRejected) {
  HotSpotParams p = date05_hotspot_params();
  p.s_spreader = 5e-3;  // 5 mm spreader cannot hold an ~8.4 mm die
  p.s_sink = 10e-3;
  const Floorplan fp = make_grid_floorplan(GridDim{4, 4}, date05_tile_area());
  EXPECT_THROW(build_rc_network(fp, p), CheckError);
}

TEST(SteadyStateTest, ZeroPowerIsAmbient) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver solver(net);
  const std::vector<double> rise =
      solver.solve_die_power(std::vector<double>(16, 0.0));
  for (double r : rise) EXPECT_NEAR(r, 0.0, 1e-12);
  EXPECT_NEAR(solver.peak_die_temperature(std::vector<double>(16, 0.0)),
              40.0, 1e-9);
}

TEST(SteadyStateTest, EnergyBalance) {
  // In steady state, all injected power must exit through r_convec:
  // T_convec = P_total * r_convec.
  const RcNetwork net = make_net(4);
  SteadyStateSolver solver(net);
  std::vector<double> power(16, 0.0);
  power[3] = 7.0;
  power[9] = 2.5;
  const std::vector<double> rise = solver.solve_die_power(power);
  const double t_convec = rise[static_cast<std::size_t>(net.node_count() - 1)];
  EXPECT_NEAR(t_convec, 9.5 * date05_hotspot_params().r_convec, 1e-9);
}

TEST(SteadyStateTest, SuperpositionHolds) {
  // The network is linear: solve(a) + solve(b) == solve(a+b).
  const RcNetwork net = make_net(4);
  SteadyStateSolver solver(net);
  std::vector<double> a(16, 0.0), b(16, 0.0), ab(16, 0.0);
  a[0] = 3.0;
  b[15] = 4.0;
  for (int i = 0; i < 16; ++i)
    ab[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] +
                                      b[static_cast<std::size_t>(i)];
  const auto ra = solver.solve_die_power(a);
  const auto rb = solver.solve_die_power(b);
  const auto rab = solver.solve_die_power(ab);
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_NEAR(ra[i] + rb[i], rab[i], 1e-9);
}

TEST(SteadyStateTest, HeatedBlockIsHottest) {
  const RcNetwork net = make_net(5);
  SteadyStateSolver solver(net);
  std::vector<double> power(25, 0.5);
  power[12] = 6.0;  // center tile
  const std::vector<double> rise = solver.solve_die_power(power);
  int hottest = 0;
  for (int i = 1; i < 25; ++i)
    if (rise[static_cast<std::size_t>(i)] >
        rise[static_cast<std::size_t>(hottest)])
      hottest = i;
  EXPECT_EQ(hottest, 12);
  // And its neighbours are warmer than the far corner.
  EXPECT_GT(rise[7], rise[0]);
  EXPECT_GT(rise[11], rise[4]);
}

TEST(SteadyStateTest, UniformPowerSymmetricProfile) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver solver(net);
  const std::vector<double> rise =
      solver.solve_die_power(std::vector<double>(16, 2.0));
  // Four-fold symmetry: corners equal, edges equal.
  EXPECT_NEAR(rise[0], rise[3], 1e-9);
  EXPECT_NEAR(rise[0], rise[12], 1e-9);
  EXPECT_NEAR(rise[0], rise[15], 1e-9);
  EXPECT_NEAR(rise[5], rise[10], 1e-9);
  // Center hotter than corner under uniform power.
  EXPECT_GT(rise[5], rise[0]);
}

TEST(SteadyStateTest, SingleBlockAnalyticResistanceChain) {
  // One die block: vertical chain die->TIM->spreader->sink->convection,
  // where the analytic total resistance bounds the observed rise.
  std::vector<Block> blocks{{"only", 0, 0, 2e-3, 2e-3}};
  const Floorplan fp{std::move(blocks)};
  const HotSpotParams p = date05_hotspot_params();
  const RcNetwork net = build_rc_network(fp, p);
  SteadyStateSolver solver(net);
  const std::vector<double> rise = solver.solve_die_power({10.0});
  // Rise must be at least the convection-resistance contribution and no
  // more than the full series stack through the block's own area.
  const double lower = 10.0 * p.r_convec;
  const double area = 4e-6;
  const double upper =
      10.0 * (p.r_convec + p.t_die / (p.k_die * area) +
              p.t_interface / (p.k_interface * area) +
              p.t_spreader / (p.k_spreader * area) +
              p.t_sink / (p.k_sink * area));
  EXPECT_GT(rise[0], lower);
  EXPECT_LT(rise[0], upper);
}

TEST(TransientTest, RelaxesToSteadyState) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  std::vector<double> power(16, 1.0);
  power[5] = 8.0;
  const std::vector<double> target = steady.solve_die_power(power);

  TransientSolver transient(net, 1e-3);
  // Start cold; run 200 s of simulated time (sink time constant ~14 s).
  for (int i = 0; i < 200000; ++i) transient.step_die_power(power);
  for (int i = 0; i < net.node_count(); ++i)
    EXPECT_NEAR(transient.state()[static_cast<std::size_t>(i)],
                target[static_cast<std::size_t>(i)], 0.01)
        << "node " << net.node_name(i);
}

TEST(TransientTest, SteadyStateIsFixedPoint) {
  const RcNetwork net = make_net(4);
  std::vector<double> power(16, 2.0);
  power[0] = 9.0;
  TransientSolver transient(net, 5e-6);
  transient.set_state_to_steady(power);
  const std::vector<double> before = transient.state();
  for (int i = 0; i < 1000; ++i) transient.step_die_power(power);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(transient.state()[i], before[i], 1e-9);
}

TEST(TransientTest, StableAtLargeSteps) {
  // Backward Euler must not oscillate or blow up with dt far above the
  // smallest time constant.
  const RcNetwork net = make_net(4);
  std::vector<double> power(16, 0.0);
  power[7] = 20.0;
  TransientSolver transient(net, 1.0);  // 1 s steps
  double prev_peak = 0.0;
  for (int i = 0; i < 100; ++i) {
    transient.step_die_power(power);
    const double peak = net.peak_die_rise(transient.state());
    EXPECT_GE(peak, prev_peak - 1e-9);  // monotone approach from cold
    prev_peak = peak;
  }
  EXPECT_TRUE(std::isfinite(prev_peak));
}

TEST(TransientTest, DieRespondsOnMillisecondScale) {
  // Step power onto a cold die: after 5 ms the die node should have
  // covered most of its *local* (die-to-package) rise, while the package
  // nodes are still far from their final value. This pins the two-scale
  // behaviour that justifies the orbit-averaged migration analysis.
  const RcNetwork net = make_net(4);
  std::vector<double> power(16, 3.0);
  TransientSolver transient(net, 1e-5);
  for (int i = 0; i < 500; ++i) transient.step_die_power(power);  // 5 ms
  SteadyStateSolver steady(net);
  const std::vector<double> target = steady.solve_die_power(power);
  const double die_now = transient.state()[0];
  const double convec_target =
      target[static_cast<std::size_t>(net.node_count() - 1)];
  const double convec_now =
      transient.state()[static_cast<std::size_t>(net.node_count() - 1)];
  // Convection node barely moved (tau ~ 14 s).
  EXPECT_LT(convec_now, 0.01 * convec_target);
  // Die node already shows a substantial rise.
  EXPECT_GT(die_now, 1.0);
}

TEST(TransientTest, RunReturnsMaxPeak) {
  const RcNetwork net = make_net(4);
  std::vector<double> power(16, 0.0);
  power[0] = 15.0;
  TransientSolver transient(net, 1e-4);
  const double peak = transient.run_die_power(power, 1000);
  EXPECT_GT(peak, 0.0);
  EXPECT_NEAR(peak, net.peak_die_rise(transient.state()), 1e-12);
}

TEST(SolverIntoTest, SolveDiePowerIntoBitMatchesSolveDiePower) {
  // Both backends: side 4 resolves to the dense LU (58 nodes), side 5 to
  // the sparse LDL^T (85 nodes).
  for (const int side : {4, 5}) {
    const RcNetwork net = make_net(side);
    const SteadyStateSolver solver(net);
    std::vector<double> power(
        static_cast<std::size_t>(net.die_count()), 1.5);
    power[2] = 7.0;
    const std::vector<double> fresh = solver.solve_die_power(power);
    std::vector<double> reused;
    for (int rep = 0; rep < 3; ++rep) {
      solver.solve_die_power_into(power, reused);
      ASSERT_EQ(reused.size(), fresh.size());
      for (std::size_t i = 0; i < fresh.size(); ++i)
        EXPECT_EQ(reused[i], fresh[i]) << "side " << side << " rep " << rep;
    }
    // Full-node variant.
    const std::vector<double> full = net.expand_die_power(power);
    std::vector<double> rise2;
    solver.solve_into(full, rise2);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      EXPECT_EQ(rise2[i], fresh[i]);
  }
}

TEST(TransientTest, StepMultiBitMatchesScalarSteps) {
  // Both backends again; three trajectories under three different power
  // maps, advanced several steps, must match three lone solvers exactly.
  for (const int side : {4, 5}) {
    const RcNetwork net = make_net(side);
    const int n = net.node_count();
    const int die = net.die_count();
    const int k = 3;
    std::vector<std::vector<double>> die_powers;
    for (int j = 0; j < k; ++j) {
      std::vector<double> p(static_cast<std::size_t>(die), 1.0);
      p[static_cast<std::size_t>(j * 2)] = 5.0 + j;
      die_powers.push_back(p);
    }

    // Scalar references.
    std::vector<std::vector<double>> scalar_states;
    for (int j = 0; j < k; ++j) {
      TransientSolver solo(net, 2e-6);
      solo.set_state_to_steady(die_powers[0]);
      const std::vector<double> full =
          net.expand_die_power(die_powers[static_cast<std::size_t>(j)]);
      for (int s = 0; s < 5; ++s) solo.step(full);
      scalar_states.push_back(solo.state());
    }

    // Batch.
    TransientSolver batch_solver(net, 2e-6);
    batch_solver.set_state_to_steady(die_powers[0]);
    const std::vector<double> init = batch_solver.state();
    std::vector<double> powers(static_cast<std::size_t>(n * k), 0.0);
    std::vector<double> states(static_cast<std::size_t>(n * k));
    for (int j = 0; j < k; ++j) {
      const std::vector<double> full =
          net.expand_die_power(die_powers[static_cast<std::size_t>(j)]);
      for (int i = 0; i < n; ++i) {
        powers[static_cast<std::size_t>(i * k + j)] =
            full[static_cast<std::size_t>(i)];
        states[static_cast<std::size_t>(i * k + j)] =
            init[static_cast<std::size_t>(i)];
      }
    }
    for (int s = 0; s < 5; ++s) batch_solver.step_multi(powers, states, k);

    for (int j = 0; j < k; ++j)
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(states[static_cast<std::size_t>(i * k + j)],
                  scalar_states[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(i)])
            << "side " << side << " trajectory " << j << " node " << i;

    // Validation.
    std::vector<double> wrong(static_cast<std::size_t>(n));
    EXPECT_THROW(batch_solver.step_multi(wrong, states, k), CheckError);
    EXPECT_THROW(batch_solver.step_multi(powers, states, 0), CheckError);
  }
}

TEST(GridRefineTest, RefineOneMatchesBlockModel) {
  const GridDim dim{4, 4};
  const RefinedThermalModel model(dim, date05_tile_area(),
                                  date05_hotspot_params(), 1);
  const RcNetwork block = make_net(4);
  EXPECT_EQ(model.network().node_count(), block.node_count());
  std::vector<double> power(16, 2.0);
  power[5] = 7.0;
  SteadyStateSolver solver(block);
  EXPECT_NEAR(model.peak_tile_temperature(power),
              solver.peak_die_temperature(power), 1e-9);
}

TEST(GridRefineTest, SubblockBookkeeping) {
  const GridDim dim{4, 4};
  const RefinedThermalModel model(dim, date05_tile_area(),
                                  date05_hotspot_params(), 3);
  EXPECT_EQ(model.fine_dim().node_count(), 16 * 9);
  // Every fine block belongs to exactly one tile.
  std::vector<int> owner(16 * 9, -1);
  for (int tile = 0; tile < 16; ++tile) {
    const auto blocks = model.subblocks_of_tile(tile);
    EXPECT_EQ(blocks.size(), 9u);
    for (int b : blocks) {
      EXPECT_EQ(owner[static_cast<std::size_t>(b)], -1);
      owner[static_cast<std::size_t>(b)] = tile;
    }
  }
  for (int o : owner) EXPECT_GE(o, 0);
}

TEST(GridRefineTest, PowerConservedUnderRefinement) {
  const GridDim dim{4, 4};
  const RefinedThermalModel model(dim, date05_tile_area(),
                                  date05_hotspot_params(), 2);
  std::vector<double> power(16, 0.0);
  power[3] = 5.0;
  power[9] = 2.5;
  const auto fine = model.refine_power(power);
  double total = 0.0;
  for (double p : fine) total += p;
  EXPECT_NEAR(total, 7.5, 1e-12);
  // The hot tile's sub-blocks carry equal shares.
  for (int b : model.subblocks_of_tile(3))
    EXPECT_NEAR(fine[static_cast<std::size_t>(b)], 5.0 / 4, 1e-12);
}

TEST(GridRefineTest, PeaksAgreeAcrossResolutions) {
  const GridDim dim{4, 4};
  std::vector<double> power(16, 2.0);
  power[10] = 6.5;
  const RefinedThermalModel coarse(dim, date05_tile_area(),
                                   date05_hotspot_params(), 1);
  const RefinedThermalModel fine(dim, date05_tile_area(),
                                 date05_hotspot_params(), 2);
  const double pc = coarse.peak_tile_temperature(power);
  const double pf = fine.peak_tile_temperature(power);
  // Refinement lets heat spread laterally inside the tile before entering
  // the package, so the refined peak is slightly lower — but the models
  // must stay within a few degrees on a ~30 C rise.
  EXPECT_LE(pf, pc + 1e-9);
  EXPECT_NEAR(pc, pf, 3.5) << "block and grid models diverge";
}

TEST(GridRefineTest, TileTemperaturesTakeSubblockMax) {
  const GridDim dim{4, 4};
  const RefinedThermalModel model(dim, date05_tile_area(),
                                  date05_hotspot_params(), 2);
  std::vector<double> power(16, 1.0);
  power[0] = 8.0;
  SteadyStateSolver solver(model.network());
  const auto rise = solver.solve_die_power(model.refine_power(power));
  const auto temps = model.tile_temperatures(rise);
  EXPECT_EQ(temps.size(), 16u);
  // Tile 0 is hottest and its reported temperature is >= each sub-block.
  for (int b : model.subblocks_of_tile(0))
    EXPECT_GE(temps[0],
              model.network().ambient() + rise[static_cast<std::size_t>(b)]);
}

TEST(GridRefineTest, BadRefineRejected) {
  EXPECT_THROW(RefinedThermalModel(GridDim{4, 4}, date05_tile_area(),
                                   date05_hotspot_params(), 0),
               CheckError);
  EXPECT_THROW(RefinedThermalModel(GridDim{4, 4}, date05_tile_area(),
                                   date05_hotspot_params(), 9),
               CheckError);
}

TEST(GridRefineTest, RefineZeroFailsTheRefineCheckItself) {
  // Regression: refine was used (divide by refine^2, build the fine grid)
  // in the member-init list before the range check in the constructor body
  // ran, so refine=0 died on downstream floorplan checks instead of the
  // refine validation. The thrown message must now name the refine factor.
  try {
    RefinedThermalModel model(GridDim{4, 4}, date05_tile_area(),
                              date05_hotspot_params(), 0);
    FAIL() << "refine=0 must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("refine factor 0"),
              std::string::npos)
        << "unexpected failure path: " << e.what();
  }
  try {
    RefinedThermalModel model(GridDim{4, 4}, date05_tile_area(),
                              date05_hotspot_params(), -3);
    FAIL() << "refine=-3 must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("refine factor -3"),
              std::string::npos)
        << "unexpected failure path: " << e.what();
  }
}

TEST(GridRefineTest, PeakTileTemperatureReusesCachedSolver) {
  const RefinedThermalModel model(GridDim{4, 4}, date05_tile_area(),
                                  date05_hotspot_params(), 2);
  const SteadyStateSolver* first = &model.steady_solver();
  std::vector<double> power(16, 2.0);
  power[5] = 7.0;
  const double t1 = model.peak_tile_temperature(power);
  const double t2 = model.peak_tile_temperature(power);
  EXPECT_DOUBLE_EQ(t1, t2);
  // Repeated queries must hit the same factorization, not rebuild it.
  EXPECT_EQ(first, &model.steady_solver());
}

// --- Dense-vs-sparse agreement suite -----------------------------------
//
// The same network solved by both backends must agree to 1e-8 on steady
// rises and across a transient run; the dense LU is the oracle for the
// sparse LDL^T that kAuto selects at production sizes.

TEST(DenseSparseAgreementTest, BackendSelection) {
  const RcNetwork small = make_net(4);   // 58 nodes < cutoff
  const RcNetwork large = make_net(6);   // 118 nodes > cutoff
  EXPECT_FALSE(SteadyStateSolver(small).uses_sparse());
  EXPECT_TRUE(SteadyStateSolver(large).uses_sparse());
  EXPECT_TRUE(SteadyStateSolver(small, SolverBackend::kSparse).uses_sparse());
  EXPECT_FALSE(SteadyStateSolver(large, SolverBackend::kDense).uses_sparse());
  EXPECT_FALSE(TransientSolver(small, 1e-4).uses_sparse());
  EXPECT_TRUE(TransientSolver(large, 1e-4).uses_sparse());
}

TEST(DenseSparseAgreementTest, EnvVarForcesDensePath) {
  const RcNetwork large = make_net(6);
  ::setenv("RENOC_DENSE_SOLVE", "1", 1);
  EXPECT_FALSE(SteadyStateSolver(large).uses_sparse());
  EXPECT_FALSE(TransientSolver(large, 1e-4).uses_sparse());
  ::setenv("RENOC_DENSE_SOLVE", "0", 1);  // "0" and empty mean unset
  EXPECT_TRUE(SteadyStateSolver(large).uses_sparse());
  ::unsetenv("RENOC_DENSE_SOLVE");
  EXPECT_TRUE(SteadyStateSolver(large).uses_sparse());
  // An explicit backend always wins over the environment.
  ::setenv("RENOC_DENSE_SOLVE", "1", 1);
  EXPECT_TRUE(SteadyStateSolver(large, SolverBackend::kSparse).uses_sparse());
  ::unsetenv("RENOC_DENSE_SOLVE");
}

TEST(DenseSparseAgreementTest, SteadyStateMatchesOnRandomPowers) {
  const RcNetwork net = make_net(6);
  const SteadyStateSolver dense(net, SolverBackend::kDense);
  const SteadyStateSolver sparse(net, SolverBackend::kSparse);
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> power(36);
    for (auto& p : power) p = rng.next_double() * 8.0;
    const std::vector<double> rd = dense.solve_die_power(power);
    const std::vector<double> rs = sparse.solve_die_power(power);
    ASSERT_EQ(rd.size(), rs.size());
    for (std::size_t i = 0; i < rd.size(); ++i)
      EXPECT_NEAR(rd[i], rs[i], 1e-8) << "node " << i << " trial " << trial;
    EXPECT_NEAR(dense.peak_die_temperature(power),
                sparse.peak_die_temperature(power), 1e-8);
  }
}

TEST(DenseSparseAgreementTest, TransientMatchesOverManySteps) {
  const RcNetwork net = make_net(6);
  TransientSolver dense(net, 5e-6, SolverBackend::kDense);
  TransientSolver sparse(net, 5e-6, SolverBackend::kSparse);
  Rng rng(7);
  std::vector<double> power(36);
  for (auto& p : power) p = rng.next_double() * 6.0;
  for (int step = 0; step < 200; ++step) {
    dense.step_die_power(power);
    sparse.step_die_power(power);
  }
  for (int i = 0; i < net.node_count(); ++i)
    EXPECT_NEAR(dense.state()[static_cast<std::size_t>(i)],
                sparse.state()[static_cast<std::size_t>(i)], 1e-8)
        << net.node_name(i);
}

TEST(DenseSparseAgreementTest, SparseConductanceMatchesDenseView) {
  const RcNetwork net = make_net(5);
  EXPECT_TRUE(net.conductance_sparse().is_symmetric(1e-12));
  const Matrix& dense = net.conductance();
  for (int r = 0; r < net.node_count(); ++r)
    for (int c = 0; c < net.node_count(); ++c)
      EXPECT_DOUBLE_EQ(net.conductance_sparse().at(r, c),
                       dense(static_cast<std::size_t>(r),
                             static_cast<std::size_t>(c)));
}

TEST(SolverValidationTest, SizeMismatchesThrow) {
  const RcNetwork net = make_net(4);
  SteadyStateSolver steady(net);
  EXPECT_THROW(steady.solve_die_power(std::vector<double>(15, 1.0)),
               CheckError);
  TransientSolver transient(net, 1e-4);
  EXPECT_THROW(transient.step(std::vector<double>(3, 0.0)), CheckError);
  EXPECT_THROW(TransientSolver(net, 0.0), CheckError);
}

}  // namespace
}  // namespace renoc
