// Unit and property tests for the util module: matrix/LU, RNG, running
// statistics, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace renoc {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(RENOC_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    RENOC_CHECK_MSG(false, "extra " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("extra 42"), std::string::npos);
  }
}

TEST(MatrixTest, IdentityTimesVector) {
  const Matrix id = Matrix::identity(4);
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_EQ(id.mul(x), x);
}

TEST(MatrixTest, MulMatchesManualComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x{1, 0, -1};
  const std::vector<double> y = a.mul(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MatrixMatrixProduct) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.mul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AtThrowsOutOfBounds) {
  Matrix a(2, 2);
  EXPECT_THROW(a.at(2, 0), CheckError);
  EXPECT_THROW(a.at(0, 2), CheckError);
}

TEST(MatrixTest, SymmetryDetection) {
  Matrix a(2, 2);
  a(0, 1) = 3.0;
  a(1, 0) = 3.0;
  EXPECT_TRUE(a.is_symmetric(1e-12));
  a(1, 0) = 3.1;
  EXPECT_FALSE(a.is_symmetric(1e-12));
  EXPECT_TRUE(a.is_symmetric(0.2));
}

TEST(LuTest, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  const LuFactorization lu(a);
  const std::vector<double> b{4, 5, 6};
  const std::vector<double> x = lu.solve(b);
  const std::vector<double> back = a.mul(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(LuTest, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const LuFactorization lu(a);
  const std::vector<double> x = lu.solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(LuTest, SolveInPlaceMatchesSolveRepeatedly) {
  // The permutation scratch is reused across calls (the transient solver
  // calls this once per step); results must not depend on call history.
  Matrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 5; a(1, 2) = 2;
  a(2, 0) = 0; a(2, 1) = 2; a(2, 2) = 6;
  const LuFactorization lu(a);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> b{1.0 + rep, -2.0, 3.0 * rep};
    const std::vector<double> x = lu.solve(b);
    std::vector<double> y = b;
    lu.solve_in_place(y);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
  }
}

TEST(LuTest, SolveMultiBitMatchesIndependentSolves) {
  // A pivoting 4x4 so the row permutation is exercised; every column of
  // the blocked solve must be bit-identical to a lone solve (the contract
  // behind the batched adaptive lookahead on dense-backend networks).
  Matrix a(4, 4);
  a(0, 0) = 0.1; a(0, 1) = 4; a(0, 2) = 1; a(0, 3) = 0;
  a(1, 0) = 4;   a(1, 1) = 2; a(1, 2) = 0; a(1, 3) = 1;
  a(2, 0) = 1;   a(2, 1) = 0; a(2, 2) = 5; a(2, 3) = 2;
  a(3, 0) = 0;   a(3, 1) = 1; a(3, 2) = 2; a(3, 3) = 6;
  const LuFactorization lu(a);
  for (const int nrhs : {1, 3, 5}) {
    std::vector<double> block(static_cast<std::size_t>(4 * nrhs));
    for (int j = 0; j < nrhs; ++j)
      for (int i = 0; i < 4; ++i)
        block[static_cast<std::size_t>(i * nrhs + j)] = i + 10.0 * j - 2.5;
    std::vector<std::vector<double>> columns;
    for (int j = 0; j < nrhs; ++j) {
      std::vector<double> col(4);
      for (int i = 0; i < 4; ++i)
        col[static_cast<std::size_t>(i)] =
            block[static_cast<std::size_t>(i * nrhs + j)];
      columns.push_back(lu.solve(col));
    }
    lu.solve_multi(block, nrhs);
    for (int j = 0; j < nrhs; ++j)
      for (int i = 0; i < 4; ++i)
        EXPECT_EQ(block[static_cast<std::size_t>(i * nrhs + j)],
                  columns[static_cast<std::size_t>(j)]
                         [static_cast<std::size_t>(i)])
            << "nrhs=" << nrhs << " column " << j << " row " << i;
  }
  std::vector<double> wrong(7);
  EXPECT_THROW(lu.solve_multi(wrong, 2), CheckError);
}

TEST(LuTest, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, CheckError);
}

TEST(LuTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, CheckError);
}

// Property sweep: random SPD-ish systems solve to high accuracy.
class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, RandomDiagonallyDominantSystems) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (int c = 0; c < n; ++c) {
      if (r == c) continue;
      const double v = rng.next_double() - 0.5;
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      row_sum += std::fabs(v);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) =
        row_sum + 1.0;  // strict diagonal dominance -> nonsingular
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.next_double() * 10 - 5;
  const std::vector<double> b = a.mul(x_true);
  const LuFactorization lu(a);
  const std::vector<double> x = lu.solve(b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64));

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(RngTest, NextBelowApproxUniform) {
  Rng rng(11);
  int counts[5] = {0};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(5)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 5 - 600);
    EXPECT_LT(c, draws / 5 + 600);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependentlySeeded) {
  Rng parent(3);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(3);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// Exact stream pins. Every golden record and thread-invariance guarantee
// in the repo assumes mix64 / derive_stream_seed / xoshiro256** produce
// these exact bits on every platform; an innocent-looking "cleanup" of the
// mixing chain (reordered xors, a narrowed intermediate, a changed rotate)
// silently invalidates all of them. The literals were generated by this
// implementation and are frozen here as the contract.
TEST(RngTest, Mix64StreamIsPinned) {
  EXPECT_EQ(mix64(1), 0x5692161d100b05e5ULL);
  EXPECT_EQ(mix64(0xdeadbeefULL), 0x4e062702ec929eeaULL);
  // Zero is the finalizer's fixed point. Harmless for stream derivation:
  // derive_stream_seed offsets by golden * (index + 1) before mixing, so
  // no (seed, index) pair ever feeds mix64 a structural zero.
  EXPECT_EQ(mix64(0), 0ULL);
}

TEST(RngTest, DerivedStreamSeedsArePinned) {
  EXPECT_EQ(derive_stream_seed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(derive_stream_seed(42, 1), 0x28efe333b266f103ULL);
  // Chained derivation — the ber_harness (point, block) fold.
  EXPECT_EQ(derive_stream_seed(derive_stream_seed(7, 3), 11),
            0x416231b55613c1d7ULL);
}

TEST(RngTest, Xoshiro256StreamIsPinned) {
  Rng rng(12345);
  EXPECT_EQ(rng.next_u64(), 0xbe6a36374160d49bULL);
  EXPECT_EQ(rng.next_u64(), 0x214aaa0637a688c6ULL);
  EXPECT_EQ(rng.next_u64(), 0xf69d16de9954d388ULL);
  EXPECT_EQ(rng.next_u64(), 0x0c60048c4e96e033ULL);

  Rng d(999);
  EXPECT_DOUBLE_EQ(d.next_double(), 0.085850842859195087);
  EXPECT_EQ(d.next_below(1000), 412ULL);

  Rng s(2024);
  EXPECT_EQ(s.split().next_u64(), 0xcc10795b12586980ULL);
}

TEST(StatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  Rng rng(17);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 1), "-1.0");
}

}  // namespace
}  // namespace renoc
