// Integration tests: the full reconfigurable LDPC system (decode +
// migrate + resume, function preserved, deterministic overhead) and the
// experiment driver (calibration, scheme evaluation sanity).
#include <gtest/gtest.h>

#include <set>

#include "core/chip_config.hpp"
#include "core/experiment.hpp"
#include "core/reconfigurable_system.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// A scaled-down configuration so integration tests run in seconds.
ChipConfig fast_config(int side = 4) {
  ChipConfig cfg = side == 4 ? config_A() : config_C();
  cfg.workload.code_n = side == 4 ? 510 : 600;
  cfg.ldpc_params.iterations = 4;
  cfg.placer.iterations = 4000;
  return cfg;
}

TEST(ReconfigurableSystemTest, MigrationPreservesDecodeFunction) {
  ReconfigurableLdpcSystem system(fast_config(), MigrationScheme::kRotation);
  const StreamResult res = system.run_stream(/*blocks=*/6,
                                             /*blocks_per_migration=*/1);
  EXPECT_TRUE(res.all_blocks_match_golden)
      << "decode results must be bit-identical to golden across migrations";
  EXPECT_EQ(res.blocks, 6);
  EXPECT_EQ(res.migrations, 5);
  EXPECT_GT(res.migration_cycles, 0u);
}

TEST(ReconfigurableSystemTest, FourRotationsReturnHome) {
  ReconfigurableLdpcSystem system(fast_config(), MigrationScheme::kRotation);
  const StreamResult res = system.run_stream(5, 1);  // 4 migrations
  EXPECT_EQ(res.migrations, 4);
  EXPECT_EQ(res.final_placement,
            std::vector<int>(system.placement().begin(),
                             system.placement().end()));
  // Rotation^4 = identity.
  EXPECT_EQ(res.final_placement, identity_permutation(16));
  // I/O translator also back to identity.
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(system.translator().logical_to_physical(i), i);
}

TEST(ReconfigurableSystemTest, ThroughputPenaltyScalesWithPeriod) {
  // Migrating every block costs ~k times more than every k blocks.
  ReconfigurableLdpcSystem every1(fast_config(), MigrationScheme::kShiftXY);
  const StreamResult r1 = every1.run_stream(8, 1);
  ReconfigurableLdpcSystem every4(fast_config(), MigrationScheme::kShiftXY);
  const StreamResult r4 = every4.run_stream(8, 4);
  EXPECT_GT(r1.throughput_penalty, r4.throughput_penalty * 2.5);
  EXPECT_LT(r1.throughput_penalty, 0.5);  // still a small fraction
}

TEST(ReconfigurableSystemTest, NoMigrationMeansNoPenalty) {
  ReconfigurableLdpcSystem system(fast_config(), MigrationScheme::kMirrorX);
  const StreamResult res = system.run_stream(3, 0);
  EXPECT_EQ(res.migrations, 0);
  EXPECT_EQ(res.migration_cycles, 0u);
  EXPECT_DOUBLE_EQ(res.throughput_penalty, 0.0);
  EXPECT_TRUE(res.all_blocks_match_golden);
}

TEST(ReconfigurableSystemTest, WorksOnOddMesh) {
  ReconfigurableLdpcSystem system(fast_config(5), MigrationScheme::kShiftXY);
  const StreamResult res = system.run_stream(6, 1);
  EXPECT_TRUE(res.all_blocks_match_golden);
  EXPECT_EQ(res.migrations, 5);
  // Orbit length is 5 on a 5x5 XY shift; after 5 migrations we are home.
  EXPECT_EQ(res.final_placement, identity_permutation(25));
}

TEST(ExperimentDriverTest, PrepareCalibratesToPaperBaseline) {
  ExperimentDriver driver(fast_config());
  driver.prepare(/*measure_blocks=*/1);
  EXPECT_NEAR(driver.base_peak_temp_c(), 85.44, 0.01)
      << "calibration must hit the paper's base peak temperature";
  EXPECT_GT(driver.calibration_scale(), 0.0);
  EXPECT_GT(driver.block_cycles(), 0u);
  EXPECT_GT(driver.total_power_w(), 0.0);
  // The identity-placement peak is computed in (uncalibrated) model units
  // and must be a real temperature above ambient.
  EXPECT_GT(driver.identity_placement_peak_c(), 40.0);
  const auto temps = driver.baseline_die_temps();
  EXPECT_EQ(static_cast<int>(temps.size()), 16);
  double peak = 0;
  for (double t : temps) peak = std::max(peak, t);
  EXPECT_NEAR(peak, 85.44, 0.01);
}

TEST(ExperimentDriverTest, StaticSchemeHasZeroReduction) {
  ExperimentDriver driver(fast_config());
  driver.prepare(1);
  const SchemeEvaluation eval =
      driver.evaluate_scheme(MigrationScheme::kNone);
  EXPECT_DOUBLE_EQ(eval.reduction_c, 0.0);
  EXPECT_NEAR(eval.peak_temp_c, driver.base_peak_temp_c(), 1e-9);
  EXPECT_EQ(eval.orbit_length, 1);
}

TEST(ExperimentDriverTest, RotationEvaluationIsSane) {
  ExperimentDriver driver(fast_config());
  driver.prepare(1);
  const SchemeEvaluation eval =
      driver.evaluate_scheme(MigrationScheme::kRotation);
  EXPECT_EQ(eval.orbit_length, 4);
  EXPECT_TRUE(eval.thermal_converged);
  EXPECT_GT(eval.migration_s, 0.0);
  EXPECT_GT(eval.throughput_penalty, 0.0);
  EXPECT_LT(eval.throughput_penalty, 0.2);
  EXPECT_GT(eval.migration_energy_j, 0.0);
  EXPECT_GT(eval.phases, 0);
  // On an even mesh with a thermally-imbalanced map, rotation should cool
  // the chip (the Figure 1 headline).
  EXPECT_GT(eval.reduction_c, 0.0);
}

TEST(ExperimentDriverTest, SchemeStudySharesCachesConsistently) {
  // evaluate_scheme caches the per-scheme migration measurement and the
  // per-period thermal runtime; repeated and grouped evaluations must be
  // identical to the first (both underlying simulations are
  // deterministic), and a period sweep of one scheme must reuse the same
  // measured migration timing/energy at every period.
  ExperimentDriver driver(fast_config());
  driver.prepare(1);
  const double p1 = driver.default_period_s();
  const double p2 = 2 * p1;

  const SchemeEvaluation first =
      driver.evaluate_scheme(MigrationScheme::kRotation, p1);
  const SchemeEvaluation again =
      driver.evaluate_scheme(MigrationScheme::kRotation, p1);
  EXPECT_EQ(first.peak_temp_c, again.peak_temp_c);
  EXPECT_EQ(first.mean_temp_c, again.mean_temp_c);
  EXPECT_EQ(first.ripple_c, again.ripple_c);
  EXPECT_EQ(first.migration_s, again.migration_s);
  EXPECT_EQ(first.migration_energy_j, again.migration_energy_j);
  EXPECT_EQ(first.state_flits, again.state_flits);

  const auto study =
      driver.scheme_study({MigrationScheme::kNone,
                           MigrationScheme::kRotation},
                          {p1, p2});
  ASSERT_EQ(study.size(), 4u);
  EXPECT_EQ(study[0].scheme, MigrationScheme::kNone);
  EXPECT_DOUBLE_EQ(study[0].period_s, p1);
  EXPECT_EQ(study[2].scheme, MigrationScheme::kRotation);
  // The rotation row at p1 equals the standalone evaluation.
  EXPECT_EQ(study[2].peak_temp_c, first.peak_temp_c);
  EXPECT_EQ(study[2].migration_s, first.migration_s);
  // Migration timing/energy depend only on the scheme, not the period.
  EXPECT_EQ(study[3].migration_s, study[2].migration_s);
  EXPECT_EQ(study[3].migration_energy_j, study[2].migration_energy_j);
  EXPECT_EQ(study[3].phases, study[2].phases);
  // But the throughput penalty does scale with the period.
  EXPECT_LT(study[3].throughput_penalty, study[2].throughput_penalty);

  // Re-preparing invalidates both caches: the evaluation afterwards must
  // run against the fresh network/calibration (same config -> same
  // numbers), not against freed or stale cached state.
  driver.prepare(1);
  const SchemeEvaluation after =
      driver.evaluate_scheme(MigrationScheme::kRotation, p1);
  EXPECT_EQ(after.peak_temp_c, first.peak_temp_c);
  EXPECT_EQ(after.migration_s, first.migration_s);
}

TEST(ExperimentDriverTest, EvaluateBeforePrepareRejected) {
  ExperimentDriver driver(fast_config());
  EXPECT_THROW(driver.evaluate_scheme(MigrationScheme::kRotation),
               CheckError);
}

TEST(ChipConfigTest, AllFiveConfigsBuild) {
  for (const ChipConfig& cfg : all_configs()) {
    const BuiltChip built = build_chip(cfg);
    EXPECT_EQ(built.partition.cluster_count, cfg.dim.node_count());
    EXPECT_EQ(static_cast<int>(built.channel_llrs.size()),
              cfg.workload.code_n);
    // Traffic matrix has the right shape and some cross-cluster load.
    std::uint64_t total = 0;
    for (const auto& row : built.traffic)
      for (std::uint64_t v : row) total += v;
    EXPECT_GT(total, 0u);
  }
  EXPECT_EQ(config_by_name("D").name, "D");
  EXPECT_THROW(config_by_name("Z"), CheckError);
}

TEST(ChipConfigTest, CfuRowConcentratesCheckWork) {
  // The architectural CFU row (y=0 for configuration A) must do more
  // per-tile edge work than the plain BFU tiles — the paper's "one row
  // with significantly higher power output".
  const ChipConfig cfg = config_A();
  const BuiltChip built = build_chip(cfg);
  const auto& ops = built.cluster_ops;
  std::uint64_t cfu_min = ~0ull, bfu_max = 0;
  for (int x = 0; x < 4; ++x) {
    cfu_min = std::min(cfu_min,
                       ops[static_cast<std::size_t>(
                           coord_to_index({x, 0}, cfg.dim))]);
  }
  // Plain BFU tiles: not on the CFU row (y=0 -> ids 0..3) and not the
  // hybrid tiles at (1,1)=5, (2,2)=10, (3,3)=15.
  for (int id : {4, 6, 7, 8, 9, 11, 12, 13, 14}) {
    bfu_max = std::max(bfu_max, ops[static_cast<std::size_t>(id)]);
  }
  EXPECT_GT(cfu_min, bfu_max);
}

TEST(ChipConfigTest, CfuRowTalksToEveryBfuCluster) {
  // Check clusters receive variable messages from across the whole code,
  // so the CFU row exchanges traffic with essentially every BFU tile.
  const ChipConfig cfg = config_C();
  const BuiltChip built = build_chip(cfg);
  const int cfu = coord_to_index({2, 2}, cfg.dim);
  int partners = 0;
  for (int j = 0; j < 25; ++j) {
    if (j == cfu) continue;
    if (built.traffic[static_cast<std::size_t>(cfu)][
            static_cast<std::size_t>(j)] > 0)
      ++partners;
  }
  EXPECT_GE(partners, 15);
}

TEST(ChipConfigTest, PinsKeepCfuRowInPlace) {
  ExperimentDriver driver(fast_config());
  driver.prepare(1);
  const auto& placement = driver.baseline_placement();
  for (const auto& pin : config_A().workload.pins)
    EXPECT_EQ(placement[static_cast<std::size_t>(pin.cluster)], pin.tile);
}

}  // namespace
}  // namespace renoc
