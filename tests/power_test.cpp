// Tests for the power module: event-energy accounting, power maps,
// permutation algebra on maps, and the temperature-dependent leakage
// fixed point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "floorplan/floorplan.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"
#include "power/leakage_loop.hpp"
#include "power/power_map.hpp"
#include "thermal/hotspot_params.hpp"
#include "thermal/rc_network.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

TEST(EnergyModelTest, TileEnergyIsLinearInCounters) {
  EnergyParams p;
  const EnergyModel model(p);
  TileActivity a;
  a.buffer_writes = 10;
  a.crossbar_traversals = 4;
  a.pe_compute_ops = 100;
  const double e1 = model.tile_dynamic_energy(a);
  TileActivity b = a;
  b.buffer_writes *= 2;
  b.crossbar_traversals *= 2;
  b.pe_compute_ops *= 2;
  EXPECT_NEAR(model.tile_dynamic_energy(b), 2 * e1, 1e-18);
}

TEST(EnergyModelTest, EnergyMatchesHandComputation) {
  EnergyParams p;
  p.e_buffer_write = 1e-12;
  p.e_buffer_read = 2e-12;
  p.e_crossbar = 3e-12;
  p.e_arbitration = 4e-12;
  p.e_link = 5e-12;
  p.e_pe_op = 6e-12;
  p.e_state_word = 7e-12;
  const EnergyModel model(p);
  TileActivity a;
  a.buffer_writes = 1;
  a.buffer_reads = 1;
  a.crossbar_traversals = 1;
  a.arbitrations = 1;
  a.link_flits = 1;
  a.pe_compute_ops = 1;
  a.pe_state_words = 1;
  EXPECT_NEAR(model.tile_dynamic_energy(a), 28e-12, 1e-20);
}

TEST(EnergyModelTest, PowerMapDividesByWindowAndAddsLeakage) {
  EnergyParams p;
  p.p_leak_tile = 0.5;
  const EnergyModel model(p);
  NetworkStats stats(4);
  stats.tile(2).pe_compute_ops = 1000;
  const double window = 1e-6;
  const auto map = model.power_map(stats, window);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_NEAR(map[0], 0.5, 1e-12);  // leakage only
  EXPECT_NEAR(map[2], 0.5 + 1000 * p.e_pe_op / window, 1e-9);
  // Scale applies to everything.
  const auto scaled = model.power_map(stats, window, 3.0);
  EXPECT_NEAR(scaled[2], 3.0 * map[2], 1e-9);
  // Dynamic-only map has no leakage.
  const auto dyn = model.dynamic_power_map(stats, window);
  EXPECT_NEAR(dyn[0], 0.0, 1e-15);
}

TEST(EnergyModelTest, LeakageTemperatureDependence) {
  EnergyParams p;
  p.p_leak_tile = 0.1;
  p.leak_beta = 0.02;
  p.t_ref = 40.0;
  const EnergyModel model(p);
  EXPECT_NEAR(model.tile_leakage_power(40.0), 0.1, 1e-12);
  EXPECT_GT(model.tile_leakage_power(80.0), 0.2);  // e^{0.8} = 2.2x
  // Monotone in temperature.
  double prev = 0.0;
  for (double t = 20; t <= 120; t += 10) {
    const double leak = model.tile_leakage_power(t);
    EXPECT_GT(leak, prev);
    prev = leak;
  }
  // Disabled dependence returns the constant.
  p.leak_beta = 0.0;
  const EnergyModel flat(p);
  EXPECT_EQ(flat.tile_leakage_power(40.0), flat.tile_leakage_power(100.0));
}

TEST(EnergyModelTest, InvalidParamsRejected) {
  EnergyParams p;
  p.e_link = -1.0;
  EXPECT_THROW(EnergyModel{p}, CheckError);
}

TEST(PowerMapTest, PermutationMovesPower) {
  const std::vector<double> power{1.0, 2.0, 3.0, 4.0};
  const std::vector<int> perm{1, 0, 3, 2};
  const auto moved = apply_permutation(power, perm);
  EXPECT_EQ(moved, (std::vector<double>{2.0, 1.0, 4.0, 3.0}));
  EXPECT_NEAR(total_power(moved), total_power(power), 1e-12);
}

TEST(PowerMapTest, BadPermutationsRejected) {
  const std::vector<double> power{1.0, 2.0};
  EXPECT_THROW(apply_permutation(power, {0, 0}), CheckError);
  EXPECT_THROW(apply_permutation(power, {0, 2}), CheckError);
  EXPECT_THROW(apply_permutation(power, {0}), CheckError);
}

TEST(PowerMapTest, AverageAndArithmetic) {
  const std::vector<std::vector<double>> maps{{2.0, 0.0}, {0.0, 4.0}};
  EXPECT_EQ(average_maps(maps), (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(max_power({1.0, 5.0, 2.0}), 5.0);
  std::vector<double> m{1.0, 2.0};
  scale_map(m, 2.0);
  EXPECT_EQ(m, (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(add_maps({1.0, 2.0}, {3.0, 4.0}),
            (std::vector<double>{4.0, 6.0}));
  EXPECT_THROW(average_maps({}), CheckError);
  EXPECT_THROW(add_maps({1.0}, {1.0, 2.0}), CheckError);
}

// --- Temperature-dependent leakage fixed point -------------------------

struct LeakEnv {
  Floorplan fp;
  RcNetwork net;
  SteadyStateSolver solver;

  LeakEnv()
      : fp(make_grid_floorplan(GridDim{4, 4}, date05_tile_area())),
        net(build_rc_network(fp, date05_hotspot_params())),
        solver(net) {}
};

TEST(LeakageLoopTest, ZeroBetaMatchesLinearSolve) {
  LeakEnv env;
  EnergyParams p;
  p.p_leak_tile = 0.2;
  p.leak_beta = 0.0;
  const EnergyModel energy(p);
  std::vector<double> dyn(16, 2.0);
  dyn[5] = 6.0;

  const LeakageLoopResult r =
      solve_leakage_fixed_point(env.solver, energy, dyn);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);  // one solve to land, one to confirm

  std::vector<double> with_leak = dyn;
  for (auto& v : with_leak) v += 0.2;
  EXPECT_NEAR(r.peak_temp_c, env.solver.peak_die_temperature(with_leak),
              1e-3);
}

TEST(LeakageLoopTest, PositiveBetaRaisesTemperature) {
  LeakEnv env;
  EnergyParams flat;
  flat.p_leak_tile = 0.4;
  EnergyParams feedback = flat;
  feedback.leak_beta = 0.015;
  std::vector<double> dyn(16, 2.5);

  const LeakageLoopResult base =
      solve_leakage_fixed_point(env.solver, EnergyModel(flat), dyn);
  const LeakageLoopResult fb =
      solve_leakage_fixed_point(env.solver, EnergyModel(feedback), dyn);
  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(fb.converged);
  EXPECT_GT(fb.peak_temp_c, base.peak_temp_c);
  EXPECT_GT(fb.iterations, base.iterations);
  // Total power includes the amplified leakage.
  EXPECT_GT(total_power(fb.total_power), total_power(base.total_power));
}

TEST(LeakageLoopTest, ConvergedStateIsAFixedPoint) {
  LeakEnv env;
  EnergyParams p;
  p.p_leak_tile = 0.3;
  p.leak_beta = 0.01;
  const EnergyModel energy(p);
  std::vector<double> dyn(16, 3.0);
  dyn[0] = 7.0;
  const LeakageLoopResult r =
      solve_leakage_fixed_point(env.solver, energy, dyn, 1e-6);
  ASSERT_TRUE(r.converged);
  // Re-evaluate once by hand: temperatures implied by total_power must
  // reproduce die_temps.
  const auto rise = env.solver.solve_die_power(r.total_power);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(env.net.ambient() + rise[static_cast<std::size_t>(i)],
                r.die_temps[static_cast<std::size_t>(i)], 1e-4);
}

TEST(LeakageLoopTest, ThermalRunawayDetected) {
  LeakEnv env;
  EnergyParams p;
  p.p_leak_tile = 5.0;    // enormous leakage
  p.leak_beta = 0.15;     // explosive feedback
  const EnergyModel energy(p);
  const std::vector<double> dyn(16, 10.0);
  const LeakageLoopResult r =
      solve_leakage_fixed_point(env.solver, energy, dyn, 1e-4, 60);
  EXPECT_FALSE(r.converged);
}

TEST(LeakageLoopTest, WorkspaceReuseMatchesSeedLoopExactly) {
  // The loop now rebuilds total_power in place and solves through the
  // allocation-free _into API; results must be bit-identical to the seed
  // formulation (fresh vectors every iteration), re-implemented inline
  // here as the regression reference.
  LeakEnv env;
  EnergyParams p;
  p.p_leak_tile = 0.3;
  p.leak_beta = 0.012;
  const EnergyModel energy(p);
  std::vector<double> dyn(16, 2.0);
  dyn[6] = 6.5;
  const double tol_c = 1e-5;
  const int max_iterations = 100;

  LeakageLoopResult expected;
  expected.die_temps.assign(dyn.size(), env.net.ambient());
  for (int iter = 0; iter < max_iterations; ++iter) {
    expected.iterations = iter + 1;
    expected.total_power = dyn;
    for (std::size_t i = 0; i < expected.total_power.size(); ++i)
      expected.total_power[i] +=
          energy.tile_leakage_power(expected.die_temps[i]);
    const std::vector<double> rise =
        env.solver.solve_die_power(expected.total_power);
    double max_delta = 0.0;
    bool finite = true;
    for (int i = 0; i < env.net.die_count(); ++i) {
      const double t =
          env.net.ambient() + rise[static_cast<std::size_t>(i)];
      if (!std::isfinite(t) || t > 1000.0) finite = false;
      max_delta = std::max(
          max_delta,
          std::fabs(t - expected.die_temps[static_cast<std::size_t>(i)]));
      expected.die_temps[static_cast<std::size_t>(i)] = t;
    }
    if (!finite) {
      expected.converged = false;
      break;
    }
    if (max_delta < tol_c) {
      expected.converged = true;
      break;
    }
  }
  expected.peak_temp_c = *std::max_element(expected.die_temps.begin(),
                                           expected.die_temps.end());

  const LeakageLoopResult r =
      solve_leakage_fixed_point(env.solver, energy, dyn, tol_c,
                                max_iterations);
  EXPECT_EQ(r.iterations, expected.iterations);
  EXPECT_EQ(r.converged, expected.converged);
  EXPECT_EQ(r.peak_temp_c, expected.peak_temp_c);
  ASSERT_EQ(r.die_temps.size(), expected.die_temps.size());
  ASSERT_EQ(r.total_power.size(), expected.total_power.size());
  for (std::size_t i = 0; i < r.die_temps.size(); ++i) {
    EXPECT_EQ(r.die_temps[i], expected.die_temps[i]) << "tile " << i;
    EXPECT_EQ(r.total_power[i], expected.total_power[i]) << "tile " << i;
  }
}

TEST(LeakageLoopTest, InputValidation) {
  LeakEnv env;
  const EnergyModel energy{EnergyParams{}};
  EXPECT_THROW(solve_leakage_fixed_point(env.solver, energy,
                                         std::vector<double>(3, 1.0)),
               CheckError);
  EXPECT_THROW(solve_leakage_fixed_point(env.solver, energy,
                                         std::vector<double>(16, 1.0), -1.0),
               CheckError);
}

TEST(NetworkStatsTest, TotalsAndClear) {
  NetworkStats stats(3);
  stats.tile(0).link_flits = 5;
  stats.tile(2).link_flits = 7;
  stats.note_packet_delivered(4, 20);
  EXPECT_EQ(stats.total().link_flits, 12u);
  EXPECT_EQ(stats.packets_delivered(), 1u);
  EXPECT_EQ(stats.flits_delivered(), 4u);
  EXPECT_DOUBLE_EQ(stats.packet_latency().mean(), 20.0);
  stats.clear();
  EXPECT_EQ(stats.total().link_flits, 0u);
  EXPECT_EQ(stats.packets_delivered(), 0u);
}

}  // namespace
}  // namespace renoc
