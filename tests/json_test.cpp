// Tests for the shared JSON layer (util/json): the streaming writer the
// bench records are emitted with, the parser, and the golden-diff rules
// CI relies on (integer fields exact, reals within tolerance, *_ms timing
// keys skipped).
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace renoc {
namespace {

std::string write_sample() {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("bench").string("sample");
  w.key("smoke").boolean(true);
  w.key("count").integer(42);
  w.key("big").uinteger(18446744073709551615ull);
  w.key("peak_c").real(85.4375, 4);
  w.key("rows").begin_array();
  w.begin_object();
  w.key("name").string("a\"b\\c\n");
  w.key("ms").real(1.25, 3);
  w.end_object();
  w.integer(-7);
  w.end_array();
  w.key("empty").begin_array().end_array();
  w.end_object();
  return os.str();
}

TEST(JsonWriterTest, RoundTripsThroughParser) {
  const std::string text = write_sample();
  const JsonValue root = parse_json(text);
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_NE(root.find("bench"), nullptr);
  EXPECT_EQ(root.find("bench")->str_v, "sample");
  EXPECT_TRUE(root.find("smoke")->bool_v);
  EXPECT_EQ(root.find("count")->num_v, 42.0);
  EXPECT_TRUE(root.find("count")->num_is_integer);
  EXPECT_TRUE(root.find("big")->num_is_integer);
  EXPECT_NEAR(root.find("peak_c")->num_v, 85.4375, 1e-12);
  EXPECT_FALSE(root.find("peak_c")->num_is_integer);
  const JsonValue& rows = *root.find("rows");
  ASSERT_EQ(rows.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(rows.items.size(), 2u);
  EXPECT_EQ(rows.items[0].find("name")->str_v, "a\"b\\c\n");
  EXPECT_EQ(rows.items[1].num_v, -7.0);
  EXPECT_EQ(root.find("empty")->items.size(), 0u);
}

TEST(JsonWriterTest, RejectsMalformedSequences) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.integer(1), CheckError);       // object member needs key()
  w.key("k");
  EXPECT_THROW(w.key("k2"), CheckError);        // key() twice
  w.integer(1);
  EXPECT_THROW(w.end_array(), CheckError);      // wrong closer
  w.end_object();
  EXPECT_THROW(w.integer(2), CheckError);       // root already closed
}

TEST(JsonParserTest, RejectsGarbage) {
  EXPECT_THROW(parse_json("{"), CheckError);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), CheckError);
  EXPECT_THROW(parse_json("[1 2]"), CheckError);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), CheckError);
  EXPECT_THROW(parse_json("\"unterminated"), CheckError);
}

// Robustness: hostile or damaged input must always surface as a CheckError
// — never UB. These are the shapes a truncated bench artifact, a
// hand-edited golden, or a fuzzer reaches first.
TEST(JsonParserTest, TruncatedDocumentsThrow) {
  EXPECT_THROW(parse_json(""), CheckError);
  EXPECT_THROW(parse_json("   "), CheckError);
  EXPECT_THROW(parse_json("{\"a\":"), CheckError);
  EXPECT_THROW(parse_json("[1, 2"), CheckError);
  EXPECT_THROW(parse_json("{\"a\": 1"), CheckError);
  EXPECT_THROW(parse_json("\"esc\\"), CheckError);
  EXPECT_THROW(parse_json("{\"a\": tru"), CheckError);
  EXPECT_THROW(parse_json("12e"), CheckError);
  EXPECT_THROW(parse_json("-"), CheckError);
}

TEST(JsonParserTest, DeepNestingThrowsInsteadOfOverflowingTheStack) {
  // Well beyond the parser's depth cap; without the cap this would
  // recurse ~200k frames and crash instead of throwing.
  const std::size_t depth = 200000;
  std::string deep_arrays(depth, '[');
  EXPECT_THROW(parse_json(deep_arrays), CheckError);

  std::string deep_objects;
  for (std::size_t i = 0; i < depth; ++i) deep_objects += "{\"k\":";
  EXPECT_THROW(parse_json(deep_objects), CheckError);

  // A balanced document just over the cap also throws (the cap is about
  // nesting, not truncation)...
  std::string balanced = std::string(300, '[') + std::string(300, ']');
  EXPECT_THROW(parse_json(balanced), CheckError);
  // ...while realistic nesting stays comfortably legal.
  std::string legal = std::string(64, '[') + "1" + std::string(64, ']');
  EXPECT_EQ(parse_json(legal).items.size(), 1u);
}

TEST(JsonParserTest, OverflowingNumberLiteralsThrow) {
  EXPECT_THROW(parse_json("1e999"), CheckError);
  EXPECT_THROW(parse_json("-1e999"), CheckError);
  EXPECT_THROW(parse_json("{\"v\": [1e400]}"), CheckError);
  // Near-but-under the double range still parses.
  EXPECT_DOUBLE_EQ(parse_json("1e308").num_v, 1e308);
  // Underflow to zero is representable, not an error.
  EXPECT_DOUBLE_EQ(parse_json("1e-999").num_v, 0.0);
}

TEST(JsonParserTest, BadEscapesAndBadUnicodeThrow) {
  EXPECT_THROW(parse_json("\"\\q\""), CheckError);
  EXPECT_THROW(parse_json("\"\\u12\""), CheckError);
  EXPECT_THROW(parse_json("\"\\uZZZZ\""), CheckError);
  EXPECT_THROW(parse_json("\"\\u00e9\""), CheckError);  // non-ASCII
}

TEST(JsonDiffTest, IdenticalDocumentsMatch) {
  const std::string text = write_sample();
  EXPECT_TRUE(
      diff_json(parse_json(text), parse_json(text), JsonDiffOptions{})
          .empty());
}

TEST(JsonDiffTest, IntegerFieldsCompareExactly) {
  const JsonValue g = parse_json("{\"count\": 42}");
  const JsonValue c = parse_json("{\"count\": 43}");
  EXPECT_FALSE(diff_json(g, c, JsonDiffOptions{}).empty());
}

TEST(JsonDiffTest, RealsWithinToleranceMatch) {
  const JsonValue g = parse_json("{\"peak_c\": 85.440000}");
  // rel tol 5e-4 of 85.44 is ~0.043.
  EXPECT_TRUE(diff_json(g, parse_json("{\"peak_c\": 85.450000}"),
                        JsonDiffOptions{})
                  .empty());
  EXPECT_FALSE(diff_json(g, parse_json("{\"peak_c\": 85.600000}"),
                         JsonDiffOptions{})
                   .empty());
  // Small magnitudes fall back to the absolute tolerance: 1e-6.
  const JsonValue small = parse_json("{\"penalty\": 0.016000}");
  EXPECT_FALSE(diff_json(small, parse_json("{\"penalty\": 0.016100}"),
                         JsonDiffOptions{})
                   .empty());
}

TEST(JsonDiffTest, TimingKeysAreSkipped) {
  const JsonValue g =
      parse_json("{\"solve_ms\": 1.0, \"ms\": 2.0, \"peak_c\": 70.0}");
  const JsonValue c =
      parse_json("{\"solve_ms\": 99.0, \"ms\": 0.5, \"peak_c\": 70.0}");
  EXPECT_TRUE(diff_json(g, c, JsonDiffOptions{}).empty());
  // But a key merely containing "ms" is not timing.
  EXPECT_TRUE(json_key_is_timing("ms"));
  EXPECT_TRUE(json_key_is_timing("batch_ms"));
  EXPECT_FALSE(json_key_is_timing("rooms"));
  EXPECT_FALSE(json_key_is_timing("ms_total"));
}

TEST(JsonDiffTest, MissingAndExtraMembersReported) {
  const JsonValue g = parse_json("{\"a\": 1, \"b\": 2}");
  const JsonValue c = parse_json("{\"a\": 1, \"c\": 3}");
  const auto diffs = diff_json(g, c, JsonDiffOptions{});
  EXPECT_EQ(diffs.size(), 2u);  // b missing, c extra
}

TEST(JsonDiffTest, ArrayLengthMismatchReported) {
  const JsonValue g = parse_json("[1, 2, 3]");
  const JsonValue c = parse_json("[1, 2]");
  EXPECT_FALSE(diff_json(g, c, JsonDiffOptions{}).empty());
}

}  // namespace
}  // namespace renoc
