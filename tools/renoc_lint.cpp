// Repo-invariant linter CLI (rules and rationale in lint_core.hpp).
//
// Walks the given subdirectories (default: the shipped tree) and reports
// every finding as "file:line: [rule] message", optionally mirroring the
// report to a file for CI artifacts. scripts/check.sh and the lint CI job
// run it from the repository root.
//
// Usage: renoc_lint [--root <dir>] [--report <path>] [subdir]...
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <dir>] [--report <path>] [subdir]...\n"
               "  default subdirs: src bench examples tests tools\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_path;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      subdirs.emplace_back(argv[i]);
    }
  }
  if (subdirs.empty())
    subdirs = {"src", "bench", "examples", "tests", "tools"};

  std::vector<renoc::lint::Finding> findings;
  try {
    findings = renoc::lint::lint_tree(root, subdirs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "renoc_lint: %s\n", e.what());
    return 2;
  }

  std::string report;
  for (const renoc::lint::Finding& f : findings) {
    report += renoc::lint::format_finding(f);
    report += '\n';
  }
  if (findings.empty()) {
    report += "renoc_lint: clean\n";
  } else {
    report += "renoc_lint: " + std::to_string(findings.size()) +
              " finding(s)\n";
  }
  std::fputs(report.c_str(), findings.empty() ? stdout : stderr);
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "renoc_lint: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    out << report;
  }
  return findings.empty() ? 0 : 1;
}
