// renoc_lint — static enforcement of the repo's engine-pattern rules.
//
// Generic tools (compilers, sanitizers, clang-tidy) cannot know this
// repo's conventions: that a region marked as an engine hot loop must not
// grow containers or touch the allocator, that all randomness flows
// through util/rng so sweeps stay replayable, that ring-buffer cursors
// advance by conditional wrap instead of a modulo (a runtime integer
// division per ring operation — the single biggest cost the flat NoC
// engine removed), that the flat noc/ldpc engines never hash-map (the
// seed oracles preserved as reference_* files are exempt), that shipped
// code and benches publish JSON artifacts through util/json's atomic
// writer instead of a raw ofstream (a crash mid-write must never leave a
// torn artifact), and that every deferred-work marker names an issue.
// renoc_lint checks exactly those.
//
// The checker is deliberately lexical: comments and string/char literals
// are stripped before code rules run (so prose and fixtures cannot trip
// them), comment-only rules run on the extracted comment text, and the
// whole pass is a few string scans per line — the same plain-C++ CLI
// shape as renoc_golden_diff, with no parser dependency to rot.
//
// Inline suppression: a triaged exception carries a comment with the allow
// marker ("renoc-lint-" + "allow", then the rule id in parentheses, a
// colon, and a non-empty justification) — trailing the offending line, or
// on a comment-only line directly above it; a malformed or unjustified
// marker is itself a finding. Hot regions are delimited by
// comment lines carrying the begin/end markers ("renoc-hot-" + "begin" /
// "end"). All markers are spelled split in this header so its own doc
// comments neither open a region nor register a suppression.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace renoc::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;     ///< path as given to lint_source
  int line = 0;         ///< 1-based
  std::string rule;     ///< stable rule id, e.g. "hot-alloc"
  std::string message;  ///< human-readable explanation
};

/// "file:line: [rule] message" — the grep-able report line.
std::string format_finding(const Finding& f);

/// Source split into aligned views: `code` has comments and string/char
/// literals blanked to spaces, `comments` has everything *but* comment
/// text blanked. Both preserve line structure exactly, so a line number
/// in one maps to the same line in the other and in the original.
struct SplitSource {
  std::string code;
  std::string comments;
};
SplitSource split_source(std::string_view source);

/// Lints one in-memory source. `path` selects which rules apply (see the
/// rule table in lint_core.cpp); use repo-relative forward-slash paths
/// ("src/noc/fabric.cpp").
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source);

/// Recursively lints every *.cpp/*.hpp/*.h under root/<subdir> for each
/// subdir, in sorted path order. IO errors throw std::runtime_error.
std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& subdirs);

}  // namespace renoc::lint
