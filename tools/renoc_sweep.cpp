// renoc_sweep — crash-safe multi-process sweep driver.
//
// Front end of util/sweep for the command line and CI: picks one of the
// three harness adapters (ldpc/ber_harness, noc/sweep_harness,
// core/experiment_sweep), forks one worker process per shard, supervises
// them (per-attempt timeout with SIGKILL, bounded retries with
// deterministic exponential backoff), and merges the shards' checkpoint
// segments into one JSON artifact.
//
// The determinism contract this tool exists to demonstrate: for a fixed
// (harness, preset, seed), the merged artifact is byte-identical for any
// shard count and any crash/resume schedule — kill a shard at any
// checkpoint boundary, rerun the same command, and the resumed run
// converges to the same bytes. CI's sweep-resume job pins exactly that
// with renoc_golden_diff (skipping the "driver" block, which reports the
// volatile supervision history: attempts, timeouts, observed crashes).
//
// Exit codes: 0 = every scenario resolved (completed or failed-captured),
// 2 = partial results (some scenarios still skipped after retries were
// exhausted), 1 = usage or internal error.
//
// Crash injection (--inject-crash SHARD:SEGMENTS) makes that shard's
// FIRST attempt die via std::_Exit after flushing SEGMENTS checkpoint
// segments — a real process death mid-sweep, used by CI and the bench
// guards to exercise the resume path.

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment_sweep.hpp"
#include "ldpc/ber_harness.hpp"
#include "noc/sweep_harness.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/sweep.hpp"

namespace {

using renoc::JsonWriter;
namespace sweep = renoc::sweep;

struct Options {
  std::string harness;          // ber | noc | experiment (required)
  std::string preset = "smoke"; // smoke | full
  std::uint64_t seed = 1;
  int shards = 1;
  int threads_per_shard = 1;
  std::string ckpt_dir = "renoc_sweep_ckpt";
  std::string tag = "sweep";
  int checkpoint_every = 8;
  std::string out = "SWEEP_result.json";
  long long timeout_ms = 60'000;  // per attempt; 0 disables the watchdog
  int retries = 2;                // restarts after the first attempt
  long long backoff_ms = 100;     // delay before retry k is backoff << k
  int crash_shard = -1;           // --inject-crash SHARD:SEGMENTS
  int crash_segments = -1;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --harness ber|noc|experiment [options]\n"
      "  --preset smoke|full        scenario grid size (default smoke)\n"
      "  --seed N                   master seed (default 1)\n"
      "  --shards N                 worker processes (default 1)\n"
      "  --threads-per-shard N      threads inside each worker (default 1)\n"
      "  --ckpt-dir DIR             checkpoint directory (default "
      "renoc_sweep_ckpt)\n"
      "  --tag TAG                  checkpoint file tag (default sweep)\n"
      "  --checkpoint-every N       scenarios per segment (default 8)\n"
      "  --out PATH                 merged JSON artifact (default "
      "SWEEP_result.json)\n"
      "  --timeout-ms N             per-attempt watchdog, 0 = off (default "
      "60000)\n"
      "  --retries N                restarts per shard (default 2)\n"
      "  --backoff-ms N             retry k waits backoff << k ms (default "
      "100)\n"
      "  --inject-crash S:K         shard S's first attempt dies after K "
      "segments\n",
      argv0);
  return 1;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--harness" && (v = need(i))) opt.harness = v;
    else if (a == "--preset" && (v = need(i))) opt.preset = v;
    else if (a == "--seed" && (v = need(i))) opt.seed = std::strtoull(v, nullptr, 10);
    else if (a == "--shards" && (v = need(i))) opt.shards = std::atoi(v);
    else if (a == "--threads-per-shard" && (v = need(i))) opt.threads_per_shard = std::atoi(v);
    else if (a == "--ckpt-dir" && (v = need(i))) opt.ckpt_dir = v;
    else if (a == "--tag" && (v = need(i))) opt.tag = v;
    else if (a == "--checkpoint-every" && (v = need(i))) opt.checkpoint_every = std::atoi(v);
    else if (a == "--out" && (v = need(i))) opt.out = v;
    else if (a == "--timeout-ms" && (v = need(i))) opt.timeout_ms = std::atoll(v);
    else if (a == "--retries" && (v = need(i))) opt.retries = std::atoi(v);
    else if (a == "--backoff-ms" && (v = need(i))) opt.backoff_ms = std::atoll(v);
    else if (a == "--inject-crash" && (v = need(i))) {
      const char* colon = std::strchr(v, ':');
      if (!colon) return false;
      opt.crash_shard = std::atoi(std::string(v, colon).c_str());
      opt.crash_segments = std::atoi(colon + 1);
    } else {
      return false;
    }
  }
  if (opt.harness != "ber" && opt.harness != "noc" &&
      opt.harness != "experiment")
    return false;
  if (opt.preset != "smoke" && opt.preset != "full") return false;
  return opt.shards >= 1 && opt.threads_per_shard >= 1 &&
         opt.checkpoint_every >= 1 && opt.retries >= 0 &&
         opt.backoff_ms >= 0 && opt.timeout_ms >= 0 && !opt.ckpt_dir.empty();
}

// ---------------------------------------------------------------------------
// Harness contexts: the configs must outlive the SweepSpec, so each context
// owns them and knows how to render merged records into artifact rows.
// ---------------------------------------------------------------------------

struct BerContext {
  renoc::LdpcCode code;
  renoc::LdpcEncoder encoder;
  renoc::BerConfig cfg;

  static BerContext make(const Options& opt) {
    renoc::Rng code_rng(3);
    renoc::LdpcCode code = renoc::LdpcCode::make_regular(510, 3, 6, code_rng);
    renoc::LdpcEncoder encoder(code);
    renoc::BerConfig cfg;
    cfg.seed = opt.seed;
    if (opt.preset == "smoke") {
      cfg.ebn0_db = {1.0, 2.0};
      cfg.blocks_per_point = 24;
      cfg.iterations = 4;
    } else {
      cfg.ebn0_db = {1.0, 1.5, 2.0, 2.5};
      cfg.blocks_per_point = 200;
      cfg.iterations = 10;
    }
    return BerContext{std::move(code), std::move(encoder), cfg};
  }

  sweep::SweepSpec spec() const {
    return renoc::make_ber_sweep_spec(code, encoder, cfg);
  }

  void rows(JsonWriter& w, const sweep::MergeResult& merged) const {
    const std::vector<renoc::BerPoint> points =
        renoc::ber_points_from_records(cfg, merged.records);
    w.key("points").begin_array();
    for (const renoc::BerPoint& p : points) {
      w.begin_object();
      w.key("ebn0_db").real(p.ebn0_db);
      w.key("blocks").integer(p.blocks);
      w.key("bits").integer(p.bits);
      w.key("bit_errors").integer(p.bit_errors);
      w.key("block_errors").integer(p.block_errors);
      w.key("iterations_total").integer(p.iterations_total);
      w.key("ber").real(p.ber(), 9);
      w.key("bler").real(p.bler(), 9);
      w.end_object();
    }
    w.end_array();
  }
};

struct NocContext {
  renoc::SweepConfig cfg;
  std::vector<renoc::SweepScenario> grid;

  static NocContext make(const Options& opt) {
    renoc::SweepConfig cfg;
    cfg.seed = opt.seed;
    if (opt.preset == "smoke") {
      cfg.patterns = {renoc::TrafficPattern::kUniformRandom,
                      renoc::TrafficPattern::kTranspose};
      cfg.mesh_sides = {4};
      cfg.injection_rates = {0.05, 0.10, 0.15};
      cfg.message_words = {4};
      cfg.fault_counts = {0, 2};
      cfg.fault_kinds = {renoc::FaultKind::kLinkDead};
      cfg.retry_budgets = {3};
      cfg.warmup_cycles = 200;
      cfg.measure_cycles = 500;
    } else {
      cfg.patterns = {renoc::TrafficPattern::kUniformRandom,
                      renoc::TrafficPattern::kTranspose,
                      renoc::TrafficPattern::kBitComplement};
      cfg.mesh_sides = {4, 8};
      cfg.injection_rates = {0.05, 0.10, 0.15, 0.20};
      cfg.message_words = {4};
      cfg.fault_counts = {0, 2, 4};
      cfg.fault_kinds = {renoc::FaultKind::kLinkDead,
                         renoc::FaultKind::kRouterDead};
      cfg.retry_budgets = {3};
    }
    std::vector<renoc::SweepScenario> grid = cfg.scenarios();
    return NocContext{std::move(cfg), std::move(grid)};
  }

  sweep::SweepSpec spec() const { return renoc::make_noc_sweep_spec(cfg); }

  void rows(JsonWriter& w, const sweep::MergeResult& merged) const {
    w.key("rows").begin_array();
    for (const sweep::ScenarioRecord& rec : merged.records) {
      if (rec.outcome != sweep::Outcome::kCompleted) continue;
      const renoc::SweepPoint p = renoc::noc_point_from_record(
          grid[static_cast<std::size_t>(rec.scenario)], rec);
      w.begin_object();
      w.key("scenario").integer(rec.scenario);
      w.key("pattern").string(renoc::to_string(p.scenario.pattern));
      w.key("mesh_side").integer(p.scenario.dim.width);
      w.key("injection_rate").real(p.scenario.injection_rate);
      w.key("message_words").integer(p.scenario.message_words);
      w.key("fault_count").integer(p.scenario.fault_count);
      w.key("fault_kind").string(renoc::to_string(p.scenario.fault_kind));
      w.key("retry_budget").integer(p.scenario.retry_budget);
      w.key("messages_sent").uinteger(p.messages_sent);
      w.key("messages_received").uinteger(p.messages_received);
      w.key("messages_skipped").uinteger(p.messages_skipped);
      w.key("packets_delivered").uinteger(p.packets_delivered);
      w.key("flits_delivered").uinteger(p.flits_delivered);
      w.key("offered_flit_rate").real(p.offered_flit_rate);
      w.key("injected_flit_rate").real(p.injected_flit_rate);
      w.key("accepted_flit_rate").real(p.accepted_flit_rate);
      w.key("avg_latency_cycles").real(p.avg_latency_cycles);
      w.key("max_latency_cycles").real(p.max_latency_cycles);
      w.key("cycles").uinteger(p.cycles);
      w.key("packets_retried").uinteger(p.packets_retried);
      w.key("packets_dropped").uinteger(p.packets_dropped);
      w.key("packets_unreachable").uinteger(p.packets_unreachable);
      w.key("duplicates_suppressed").uinteger(p.duplicates_suppressed);
      w.key("route_epochs").integer(p.route_epochs);
      w.end_object();
    }
    w.end_array();
  }
};

struct ExperimentContext {
  renoc::ExperimentSweepConfig cfg;
  std::vector<renoc::ExperimentScenario> grid;

  static ExperimentContext make(const Options& opt) {
    renoc::ExperimentSweepConfig cfg;
    cfg.seed = opt.seed;
    if (opt.preset == "smoke") {
      cfg.schemes = {renoc::MigrationScheme::kNone,
                     renoc::MigrationScheme::kRotation};
      cfg.periods_s = {54.65e-6, 109.3e-6};
      cfg.refines = {1};
      cfg.thermal.min_orbits = 1;
      cfg.thermal.max_orbits = 3;
      cfg.thermal.tol_c = 0.5;
    } else {
      cfg.schemes = renoc::figure1_schemes();
      cfg.periods_s = {54.65e-6, 109.3e-6, 218.6e-6};
      cfg.power_scales = {0.75, 1.0, 1.25};
      cfg.refines = {1, 2};
    }
    std::vector<renoc::ExperimentScenario> grid = cfg.scenarios();
    return ExperimentContext{std::move(cfg), std::move(grid)};
  }

  sweep::SweepSpec spec() const {
    return renoc::make_experiment_sweep_spec(cfg);
  }

  void rows(JsonWriter& w, const sweep::MergeResult& merged) const {
    w.key("rows").begin_array();
    for (const sweep::ScenarioRecord& rec : merged.records) {
      if (rec.outcome != sweep::Outcome::kCompleted) continue;
      const renoc::ExperimentSweepPoint p =
          renoc::experiment_point_from_record(
              grid[static_cast<std::size_t>(rec.scenario)], rec);
      w.begin_object();
      w.key("scenario").integer(rec.scenario);
      w.key("scheme").string(renoc::to_string(p.scenario.scheme));
      w.key("period_s").real(p.scenario.period_s, 9);
      w.key("power_scale").real(p.scenario.power_scale);
      w.key("refine").integer(p.scenario.refine);
      w.key("orbit_length").integer(p.orbit_length);
      w.key("fine_nodes").integer(p.fine_nodes);
      w.key("static_peak_c").real(p.static_peak_c);
      w.key("peak_temp_c").real(p.peak_temp_c);
      w.key("reduction_c").real(p.reduction_c);
      w.key("mean_temp_c").real(p.mean_temp_c);
      w.key("ripple_c").real(p.ripple_c);
      w.key("steady_peak_of_avg_c").real(p.steady_peak_of_avg_c);
      w.key("orbits_run").integer(p.orbits_run);
      w.key("converged").boolean(p.converged);
      w.end_object();
    }
    w.end_array();
  }
};

// ---------------------------------------------------------------------------
// Shard supervision
// ---------------------------------------------------------------------------

struct ShardState {
  pid_t pid = -1;
  int attempts = 0;     ///< launches so far (first attempt counts)
  bool done = false;
  bool success = false;
  bool gave_up = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point next_launch{};
  // Supervision history, reported in the artifact's "driver" block.
  int timeouts = 0;
  int crashes = 0;      ///< exits with sweep::kCrashExitCode
  int failures = 0;     ///< exit 1 / killed by a signal
};

pid_t launch_shard(const sweep::SweepSpec& spec, const Options& opt,
                   int shard_index, bool inject_crash) {
  const pid_t pid = fork();
  RENOC_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid != 0) return pid;
  // Child. _Exit (never exit/return): the parent's stdio and atexit state
  // must not be flushed or torn down twice.
  int code = 0;
  try {
    sweep::ShardRunOptions run;
    run.shard = sweep::Shard{shard_index, opt.shards};
    run.threads = opt.threads_per_shard;
    run.checkpoint.directory = opt.ckpt_dir;
    run.checkpoint.tag = opt.tag;
    run.checkpoint.every = opt.checkpoint_every;
    run.capture_failures = true;  // scenario failures become kFailed records
    if (inject_crash) run.crash_after_segments = opt.crash_segments;
    sweep::run_sweep_shard(spec, run);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[renoc_sweep] shard %d: %s\n", shard_index,
                 e.what());
    code = 1;
  }
  std::_Exit(code);
}

void supervise(const sweep::SweepSpec& spec, const Options& opt,
               std::vector<ShardState>& shards) {
  using clock = std::chrono::steady_clock;
  const int max_attempts = opt.retries + 1;
  int open = static_cast<int>(shards.size());
  while (open > 0) {
    const clock::time_point now = clock::now();

    // Launch (or relaunch) every shard whose backoff has elapsed.
    for (int s = 0; s < static_cast<int>(shards.size()); ++s) {
      ShardState& st = shards[static_cast<std::size_t>(s)];
      if (st.done || st.pid >= 0 || now < st.next_launch) continue;
      if (st.attempts >= max_attempts) {
        st.done = true;
        st.gave_up = true;
        --open;
        continue;
      }
      const bool inject = st.attempts == 0 && s == opt.crash_shard &&
                          opt.crash_segments >= 0;
      st.pid = launch_shard(spec, opt, s, inject);
      ++st.attempts;
      st.deadline = opt.timeout_ms > 0
                        ? now + std::chrono::milliseconds(opt.timeout_ms)
                        : clock::time_point::max();
    }

    // Straggler watchdog: SIGKILL any attempt past its deadline; the death
    // is reaped below and retried like any other failure.
    for (ShardState& st : shards) {
      if (st.pid >= 0 && clock::now() > st.deadline) {
        kill(st.pid, SIGKILL);
        st.deadline = clock::time_point::max();
        ++st.timeouts;
      }
    }

    // Reap exits.
    for (;;) {
      int status = 0;
      const pid_t pid = waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      for (int s = 0; s < static_cast<int>(shards.size()); ++s) {
        ShardState& st = shards[static_cast<std::size_t>(s)];
        if (st.pid != pid) continue;
        st.pid = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          st.done = true;
          st.success = true;
          --open;
        } else {
          if (WIFEXITED(status) &&
              WEXITSTATUS(status) == sweep::kCrashExitCode)
            ++st.crashes;
          else
            ++st.failures;
          if (st.attempts >= max_attempts) {
            st.done = true;
            st.gave_up = true;
            --open;
          } else {
            // Deterministic exponential backoff: retry k waits
            // backoff_ms << k (k = completed attempts - 1 is 0 for the
            // first retry).
            const long long shift =
                std::min<long long>(st.attempts - 1, 20);
            st.next_launch = clock::now() + std::chrono::milliseconds(
                                                opt.backoff_ms << shift);
          }
        }
        break;
      }
    }

    if (open > 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ---------------------------------------------------------------------------
// Artifact
// ---------------------------------------------------------------------------

std::string hex_digest(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

template <typename Context>
int run_with(const Options& opt, const Context& ctx) {
  const sweep::SweepSpec spec = ctx.spec();
  sweep::CheckpointConfig ckpt;
  ckpt.directory = opt.ckpt_dir;
  ckpt.tag = opt.tag;
  ckpt.every = opt.checkpoint_every;

  std::vector<ShardState> shards(static_cast<std::size_t>(opt.shards));
  supervise(spec, opt, shards);

  // Everything any attempt completed reached a checkpoint segment (a
  // successful attempt's tail flush includes its final partial segment),
  // so the merge reads only the checkpoint store — never a pipe from a
  // process that may have died.
  const sweep::MergeResult merged =
      sweep::merge_checkpoints(spec, ckpt, opt.shards);
  RENOC_CHECK_MSG(merged.counts.conserved(),
                  "driver: conservation law violated");

  renoc::write_json_atomic(opt.out, [&](JsonWriter& w) {
    w.begin_object();
    w.key("schema").string("renoc-sweep-artifact");
    w.key("version").integer(1);
    w.key("harness").string(opt.harness);
    w.key("preset").string(opt.preset);
    w.key("seed").uinteger(opt.seed);
    w.key("config_digest").string(hex_digest(spec.config_digest));
    w.key("enumerated").integer(merged.counts.enumerated);
    w.key("completed").integer(merged.counts.completed);
    w.key("failed").integer(merged.counts.failed);
    w.key("skipped").integer(merged.counts.skipped);
    w.key("conserved").boolean(merged.counts.conserved());
    w.key("incomplete_scenarios").begin_array();
    for (const std::int64_t s : merged.incomplete) w.integer(s);
    w.end_array();
    ctx.rows(w, merged);
    // Volatile supervision history — excluded from byte-identity diffs
    // (renoc_golden_diff --skip driver).
    w.key("driver").begin_object();
    w.key("shards").integer(opt.shards);
    w.key("threads_per_shard").integer(opt.threads_per_shard);
    w.key("checkpoint_every").integer(opt.checkpoint_every);
    w.key("shard_attempts").begin_array();
    for (const ShardState& st : shards) w.integer(st.attempts);
    w.end_array();
    int timeouts = 0, crashes = 0, failures = 0, gave_up = 0;
    for (const ShardState& st : shards) {
      timeouts += st.timeouts;
      crashes += st.crashes;
      failures += st.failures;
      gave_up += st.gave_up ? 1 : 0;
    }
    w.key("timeouts").integer(timeouts);
    w.key("crashes_observed").integer(crashes);
    w.key("failures_observed").integer(failures);
    w.key("shards_gave_up").integer(gave_up);
    w.end_object();
    w.end_object();
  });

  std::printf(
      "renoc_sweep: %s/%s seed=%llu shards=%d: %lld/%lld completed, %lld "
      "failed, %lld skipped -> %s\n",
      opt.harness.c_str(), opt.preset.c_str(),
      static_cast<unsigned long long>(opt.seed), opt.shards,
      static_cast<long long>(merged.counts.completed),
      static_cast<long long>(merged.counts.enumerated),
      static_cast<long long>(merged.counts.failed),
      static_cast<long long>(merged.counts.skipped), opt.out.c_str());

  // Partial results are still published (graceful degradation), but the
  // exit code tells CI the sweep did not fully resolve.
  return merged.counts.skipped == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);
  try {
    if (opt.harness == "ber") {
      const BerContext ctx = BerContext::make(opt);
      return run_with(opt, ctx);
    }
    if (opt.harness == "noc") {
      const NocContext ctx = NocContext::make(opt);
      return run_with(opt, ctx);
    }
    const ExperimentContext ctx = ExperimentContext::make(opt);
    return run_with(opt, ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "renoc_sweep: %s\n", e.what());
    return 1;
  }
}
