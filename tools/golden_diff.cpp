// Golden comparison for the paper-results pipeline.
//
// CI and scripts/check.sh regenerate every PAPER_*.json figure/table from
// scratch and run this tool against the pinned copies under goldens/.
// Comparison rules live in util/json.hpp (diff_json): integer-token fields
// (counts, cycles, phases, flits) must match exactly, real-token fields
// (temperatures, penalties) within max(abs_tol, rel_tol * |golden|), and
// wall-clock keys ("ms", "*_ms") are ignored.
//
// Usage: renoc_golden_diff <golden.json> <candidate.json>
//                          [--abs-tol X] [--rel-tol Y] [--skip KEY]...
// Exit codes: 0 match, 1 diverged, 2 usage/IO/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <golden.json> <candidate.json> "
               "[--abs-tol X] [--rel-tol Y] [--skip KEY]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  renoc::JsonDiffOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--abs-tol") == 0 && i + 1 < argc) {
      opt.abs_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rel-tol") == 0 && i + 1 < argc) {
      opt.rel_tol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--skip") == 0 && i + 1 < argc) {
      opt.skip_keys.emplace_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  try {
    const renoc::JsonValue golden = renoc::parse_json_file(paths[0]);
    const renoc::JsonValue candidate = renoc::parse_json_file(paths[1]);
    const std::vector<std::string> diffs =
        renoc::diff_json(golden, candidate, opt);
    if (diffs.empty()) {
      std::printf("golden match: %s == %s (abs tol %g, rel tol %g)\n",
                  paths[1].c_str(), paths[0].c_str(), opt.abs_tol,
                  opt.rel_tol);
      return 0;
    }
    std::fprintf(stderr, "GOLDEN DIVERGENCE: %s vs %s (%zu difference%s)\n",
                 paths[1].c_str(), paths[0].c_str(), diffs.size(),
                 diffs.size() == 1 ? "" : "s");
    for (const std::string& d : diffs)
      std::fprintf(stderr, "  %s\n", d.c_str());
    std::fprintf(stderr,
                 "If the new values are intentional, refresh the golden:\n"
                 "  cp %s %s\n",
                 paths[1].c_str(), paths[0].c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "golden_diff: %s\n", e.what());
    return 2;
  }
}
