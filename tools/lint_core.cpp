#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace renoc::lint {
namespace {

constexpr std::string_view kHotBegin = "renoc-hot-begin";
constexpr std::string_view kHotEnd = "renoc-hot-end";
constexpr std::string_view kAllowMarker = "renoc-lint-allow";

/// Rule ids an inline suppression may name. The two structural rules
/// (hot-region, bad-allow) are deliberately absent: a malformed marker
/// must not be able to waive itself.
const std::set<std::string, std::less<>>& suppressible_rules() {
  static const std::set<std::string, std::less<>> rules = {
      "hot-alloc", "raw-random", "ring-modulo", "engine-unordered-map",
      "route-rebuild", "simd-intrinsics", "todo-tag",
      "atomic-artifact-write"};
  return rules;
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if [pos, pos+len) in `text` is bounded by non-word characters.
bool word_at(std::string_view text, std::size_t pos, std::size_t len) {
  const bool left_ok = pos == 0 || !is_word_char(text[pos - 1]);
  const std::size_t end = pos + len;
  const bool right_ok = end >= text.size() || !is_word_char(text[end]);
  return left_ok && right_ok;
}

bool contains_word(std::string_view text, std::string_view word) {
  for (std::size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word.size())) return true;
  }
  return false;
}

/// Occurrence of `prefix` starting at a word boundary (the right side is
/// free: intrinsic families like _mm256_ are matched as prefixes).
bool contains_word_prefix(std::string_view text, std::string_view prefix) {
  for (std::size_t pos = text.find(prefix); pos != std::string_view::npos;
       pos = text.find(prefix, pos + 1)) {
    if (pos == 0 || !is_word_char(text[pos - 1])) return true;
  }
  return false;
}

/// Word occurrence directly followed (modulo whitespace) by '('.
bool contains_call(std::string_view text, std::string_view name) {
  for (std::size_t pos = text.find(name); pos != std::string_view::npos;
       pos = text.find(name, pos + 1)) {
    if (!word_at(text, pos, name.size())) continue;
    std::size_t j = pos + name.size();
    while (j < text.size() &&
           std::isspace(static_cast<unsigned char>(text[j])) != 0)
      ++j;
    if (j < text.size() && text[j] == '(') return true;
  }
  return false;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool path_in(std::string_view path, std::string_view dir) {
  if (path.substr(0, dir.size()) == dir) return true;
  std::string needle = "/";
  needle += dir;
  return path.find(needle) != std::string_view::npos;
}

/// Which rule families apply to this path.
struct FileScope {
  bool reference = false;    ///< seed oracle kept verbatim: engine rules off
  bool in_src = false;       ///< shipped library code
  bool rng_impl = false;     ///< util/rng itself: the one home for raw bits
  bool engine_dir = false;   ///< src/noc or src/ldpc flat engines
  bool simd_home = false;    ///< util/simd*: the one home for raw intrinsics
  bool artifact_scope = false;  ///< ofstream ban: shipped code and benches
};

FileScope classify(std::string_view path) {
  FileScope s;
  s.reference = basename_of(path).substr(0, 10) == "reference_";
  s.in_src = path_in(path, "src/");
  s.rng_impl = path.find("util/rng.") != std::string_view::npos;
  s.engine_dir = path_in(path, "src/noc/") || path_in(path, "src/ldpc/");
  s.simd_home = path.find("util/simd") != std::string_view::npos;
  // Artifact writes must go through util/json's atomic publisher so a
  // crash never leaves a torn JSON file. util/json itself is the one home
  // for the raw write path; tools and tests (goldens, fixtures,
  // deliberately corrupted checkpoints) stay exempt.
  s.artifact_scope = (s.in_src || path_in(path, "bench/") ||
                      path_in(path, "examples/")) &&
                     path.find("util/json.") == std::string_view::npos;
  return s;
}

/// Allocation and container-growth tokens banned inside hot regions.
/// `call` tokens must be followed by '('; bare tokens match as words.
struct HotToken {
  std::string_view token;
  bool call;
  std::string_view why;
};
constexpr HotToken kHotTokens[] = {
    {"new", false, "operator new allocates"},
    {"make_unique", true, "allocates"},
    {"make_shared", true, "allocates"},
    {"malloc", true, "allocates"},
    {"calloc", true, "allocates"},
    {"realloc", true, "allocates"},
    {"aligned_alloc", true, "allocates"},
    {"strdup", true, "allocates"},
    {"push_back", true, "may grow the container"},
    {"emplace_back", true, "may grow the container"},
    {"emplace", true, "may grow the container"},
    {"emplace_front", true, "may grow the container"},
    {"push_front", true, "may grow the container"},
    {"resize", true, "may grow the container"},
    {"reserve", true, "may grow the container"},
    {"insert", true, "may grow the container"},
    {"assign", true, "may grow the container"},
    {"append", true, "may grow the container"},
};

/// Ring-buffer vocabulary: a '%' sharing a line with one of these words is
/// almost always a wrap-by-modulo, which costs an integer division per ring
/// operation on the hot path. Use conditional wrap instead.
constexpr std::string_view kRingWords[] = {"head", "tail", "cursor", "ring",
                                           "fifo"};

constexpr std::string_view kRawRandomCalls[] = {"rand", "srand", "time"};

/// Vector-intrinsic vocabulary. Raw intrinsics (and their headers) are
/// confined to util/simd*, which wraps them behind the fixed-width lane
/// types and the per-tier kernel tables; anywhere else they silently tie a
/// TU to one instruction set and bypass the runtime dispatch. Families are
/// matched as word-boundary prefixes (_mm256_add_epi32, __m128i, ...).
constexpr std::string_view kIntrinsicPrefixes[] = {
    "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512"};

/// Topology-change-epoch operations: O(N^2) route-table rebuilds (and the
/// packet purge that follows one). Legal in the cold fault-application
/// path, a per-cycle disaster anywhere inside a hot region.
constexpr std::string_view kRouteRebuildCalls[] = {"build_adaptive_routes",
                                                   "purge_stranded_packets"};

}  // namespace

std::string format_finding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return out.str();
}

SplitSource split_source(std::string_view source) {
  enum class State { kNormal, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  SplitSource out;
  out.code.reserve(source.size());
  out.comments.reserve(source.size());
  State state = State::kNormal;
  std::string raw_close;  // ")delim\"" terminator of the active raw string
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kNormal;
      out.code += '\n';
      out.comments += '\n';
      continue;
    }
    switch (state) {
      case State::kNormal: {
        const char next = i + 1 < source.size() ? source[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code += "  ";
          out.comments += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code += "  ";
          out.comments += "  ";
          ++i;
        } else if (c == '"' && i > 0 && source[i - 1] == 'R') {
          // R"delim( ... )delim" — scan the delimiter up to '('.
          raw_close = ")";
          std::size_t j = i + 1;
          while (j < source.size() && source[j] != '(' &&
                 source[j] != '\n' && j - i <= 17)
            raw_close += source[j++];
          raw_close += '"';
          state = State::kRawString;
          out.code += ' ';
          out.comments += ' ';
        } else if (c == '"') {
          state = State::kString;
          out.code += ' ';
          out.comments += ' ';
        } else if (c == '\'' && i > 0 &&
                   std::isalnum(static_cast<unsigned char>(source[i - 1]))) {
          // Digit separator (1'000'000): not a character literal.
          out.code += c;
          out.comments += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.code += ' ';
          out.comments += ' ';
        } else {
          out.code += c;
          out.comments += ' ';
        }
        break;
      }
      case State::kLineComment:
      case State::kBlockComment: {
        const char next = i + 1 < source.size() ? source[i + 1] : '\0';
        if (state == State::kBlockComment && c == '*' && next == '/') {
          state = State::kNormal;
          out.code += "  ";
          out.comments += "  ";
          ++i;
        } else {
          out.code += ' ';
          out.comments += c;
        }
        break;
      }
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < source.size() && source[i + 1] != '\n') {
          out.code += "  ";
          out.comments += "  ";
          ++i;
        } else {
          if (c == '"' && state == State::kString) state = State::kNormal;
          if (c == '\'' && state == State::kChar) state = State::kNormal;
          out.code += ' ';
          out.comments += ' ';
        }
        break;
      }
      case State::kRawString: {
        if (c == raw_close.front() &&
            source.substr(i, raw_close.size()) == raw_close) {
          // Blank the terminator (newlines inside it are impossible).
          for (std::size_t k = 0; k < raw_close.size(); ++k) {
            out.code += ' ';
            out.comments += ' ';
          }
          i += raw_close.size() - 1;
          state = State::kNormal;
        } else {
          out.code += ' ';
          out.comments += ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source) {
  const FileScope scope = classify(std::string_view(path));
  const SplitSource split = split_source(source);
  const std::vector<std::string> code = split_lines(split.code);
  const std::vector<std::string> comments = split_lines(split.comments);
  std::vector<Finding> findings;
  auto emit = [&](int line, std::string_view rule, std::string message) {
    findings.push_back(
        Finding{std::string(path), line, std::string(rule), std::move(message)});
  };

  // Pass 1: collect inline suppressions (and report malformed ones).
  std::map<int, std::set<std::string, std::less<>>> allowed;
  for (std::size_t li = 0; li < comments.size(); ++li) {
    const std::string& line = comments[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::size_t pos = line.find(kAllowMarker);
         pos != std::string::npos;
         pos = line.find(kAllowMarker, pos + 1)) {
      std::size_t j = pos + kAllowMarker.size();
      if (j >= line.size() || line[j] != '(') {
        emit(lineno, "bad-allow",
             "suppression marker must be followed by (<rule>)");
        continue;
      }
      const std::size_t close = line.find(')', ++j);
      if (close == std::string::npos) {
        emit(lineno, "bad-allow", "unterminated (<rule>) in suppression");
        continue;
      }
      const std::string rule(trim(std::string_view(line).substr(j, close - j)));
      if (suppressible_rules().count(rule) == 0) {
        emit(lineno, "bad-allow",
             "unknown or non-suppressible rule '" + rule + "'");
        continue;
      }
      std::size_t k = close + 1;
      while (k < line.size() &&
             std::isspace(static_cast<unsigned char>(line[k])) != 0)
        ++k;
      if (k >= line.size() || line[k] != ':' ||
          trim(std::string_view(line).substr(k + 1)).empty()) {
        emit(lineno, "bad-allow",
             "suppression of '" + rule +
                 "' needs a justification: \": <why this line is exempt>\"");
        continue;
      }
      allowed[lineno].insert(rule);
      // A suppression on a comment-only line (no code survives stripping)
      // covers the following line, so 80-column code need not cram the
      // justification onto the statement itself.
      if (li < code.size() && trim(code[li]).empty())
        allowed[lineno + 1].insert(rule);
    }
  }
  auto is_allowed = [&](int lineno, std::string_view rule) {
    const auto it = allowed.find(lineno);
    return it != allowed.end() && it->second.count(std::string(rule)) != 0;
  };

  // Pass 2: hot-region tracking + per-line rules, in line order.
  bool in_hot = false;
  int hot_begin_line = 0;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const int lineno = static_cast<int>(li) + 1;
    const std::string& code_line = code[li];
    const std::string& comment_line =
        li < comments.size() ? comments[li] : code_line;

    const bool has_begin = comment_line.find(kHotBegin) != std::string::npos;
    // A line carrying both markers is treated as a begin: regions are
    // expected to be multi-line, markers on lines of their own.
    const bool has_end =
        !has_begin && comment_line.find(kHotEnd) != std::string::npos;
    if (has_end) {
      if (!in_hot)
        emit(lineno, "hot-region", "hot-region end marker without a begin");
      in_hot = false;
    }

    // hot-alloc: marker lines themselves are exempt; the region spans the
    // lines strictly between begin and end.
    if (in_hot && !is_allowed(lineno, "hot-alloc")) {
      for (const HotToken& t : kHotTokens) {
        const bool hit = t.call ? contains_call(code_line, t.token)
                                : contains_word(code_line, t.token);
        if (hit) {
          emit(lineno, "hot-alloc",
               "'" + std::string(t.token) + "' in a hot region (" +
                   std::string(t.why) +
                   "); hoist it to setup or suppress with a justification");
          break;
        }
      }
    }

    if (in_hot && !is_allowed(lineno, "route-rebuild")) {
      for (const std::string_view call : kRouteRebuildCalls) {
        if (contains_call(code_line, call)) {
          emit(lineno, "route-rebuild",
               "'" + std::string(call) +
                   "' in a hot region: table rebuilds are O(node_count^2) "
                   "and belong in the per-epoch fault-application path");
          break;
        }
      }
    }

    if (scope.in_src && !scope.rng_impl &&
        !is_allowed(lineno, "raw-random")) {
      std::string token;
      for (const std::string_view call : kRawRandomCalls)
        if (contains_call(code_line, call)) token = std::string(call);
      if (contains_word(code_line, "random_device")) token = "random_device";
      if (!token.empty())
        emit(lineno, "raw-random",
             "'" + token +
                 "' bypasses util/rng; all randomness must flow through "
                 "seeded SplitMix64 streams so sweeps replay bit-exactly");
    }

    if (!scope.simd_home && !is_allowed(lineno, "simd-intrinsics")) {
      std::string token;
      if (code_line.find("intrin.h>") != std::string::npos)
        token = "an <*intrin.h> include";
      for (const std::string_view p : kIntrinsicPrefixes)
        if (token.empty() && contains_word_prefix(code_line, p))
          token = "'" + std::string(p) + "...'";
      if (!token.empty())
        emit(lineno, "simd-intrinsics",
             token +
                 " outside util/simd: raw vector intrinsics bypass the lane "
                 "abstraction and runtime tier dispatch; add a kernel to the "
                 "util/simd tables instead");
    }

    if (scope.in_src && !scope.reference &&
        !is_allowed(lineno, "ring-modulo") &&
        code_line.find('%') != std::string::npos) {
      for (const std::string_view w : kRingWords) {
        if (contains_word(code_line, w)) {
          emit(lineno, "ring-modulo",
               "'%' next to ring-buffer cursor '" + std::string(w) +
                   "': wrap with a conditional instead of an integer "
                   "division per operation");
          break;
        }
      }
    }

    if (scope.artifact_scope && !is_allowed(lineno, "atomic-artifact-write") &&
        contains_word(code_line, "ofstream")) {
      emit(lineno, "atomic-artifact-write",
           "'ofstream' publishes bytes in place — a crash mid-write leaves "
           "a torn artifact; write through util/json's AtomicFile / "
           "write_json_atomic (temp + fsync + rename) instead");
    }

    if (scope.engine_dir && !scope.reference &&
        !is_allowed(lineno, "engine-unordered-map") &&
        contains_word(code_line, "unordered_map")) {
      emit(lineno, "engine-unordered-map",
           "flat noc/ldpc engines index dense arrays, never hash maps "
           "(reference_* seed oracles are exempt)");
    }

    if (!is_allowed(lineno, "todo-tag")) {
      for (const std::string_view marker : {std::string_view("TODO"),
                                            std::string_view("FIXME")}) {
        for (std::size_t pos = comment_line.find(marker);
             pos != std::string::npos;
             pos = comment_line.find(marker, pos + 1)) {
          if (!word_at(comment_line, pos, marker.size())) continue;
          const std::size_t j = pos + marker.size();
          bool tagged = j + 2 < comment_line.size() &&
                        comment_line[j] == '(' && comment_line[j + 1] == '#';
          if (tagged) {
            std::size_t k = j + 2;
            while (k < comment_line.size() &&
                   std::isdigit(static_cast<unsigned char>(comment_line[k])))
              ++k;
            tagged = k > j + 2 && k < comment_line.size() &&
                     comment_line[k] == ')';
          }
          if (!tagged) {
            emit(lineno, "todo-tag",
                 std::string(marker) +
                     " without an issue tag; write " + std::string(marker) +
                     "(#<issue>) so deferred work stays trackable");
            break;
          }
        }
      }
    }

    if (has_begin) {
      if (in_hot) {
        emit(lineno, "hot-region",
             "nested hot-region begin (previous begin at line " +
                 std::to_string(hot_begin_line) + ")");
      }
      in_hot = true;
      hot_begin_line = lineno;
    }
  }
  if (in_hot)
    emit(hot_begin_line, "hot-region",
         "hot region opened here is never closed");

  return findings;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      files.push_back(
          fs::relative(entry.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(fs::path(root) / file, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + file);
    std::ostringstream content;
    content << in.rdbuf();
    const std::vector<Finding> f = lint_source(file, content.str());
    findings.insert(findings.end(), f.begin(), f.end());
  }
  return findings;
}

}  // namespace renoc::lint
