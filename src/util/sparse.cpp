#include "util/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace renoc {
namespace {

std::size_t uz(int i) { return static_cast<std::size_t>(i); }

}  // namespace

SparseMatrix SparseMatrix::from_triplets(
    int rows, int cols, const std::vector<Triplet>& triplets) {
  RENOC_CHECK_MSG(rows >= 0 && cols >= 0,
                  "bad sparse shape " << rows << "x" << cols);
  for (const Triplet& t : triplets)
    RENOC_CHECK_MSG(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                    "triplet (" << t.row << "," << t.col << ") out of "
                                << rows << "x" << cols);

  std::vector<Triplet> sorted = triplets;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(uz(rows) + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.vals_.reserve(sorted.size());

  // Merge duplicates in one sorted pass.
  for (std::size_t i = 0; i < sorted.size();) {
    const int r = sorted[i].row;
    const int c = sorted[i].col;
    double sum = 0.0;
    for (; i < sorted.size() && sorted[i].row == r && sorted[i].col == c; ++i)
      sum += sorted[i].value;
    m.col_idx_.push_back(c);
    m.vals_.push_back(sum);
    m.row_ptr_[uz(r) + 1] = static_cast<int>(m.col_idx_.size());
  }
  // Rows with no entries inherit the previous row's end pointer.
  for (std::size_t r = 1; r < m.row_ptr_.size(); ++r)
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  return m;
}

double SparseMatrix::at(int r, int c) const {
  RENOC_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "index (" << r << "," << c << ") out of " << rows_ << "x"
                            << cols_);
  const auto begin = col_idx_.begin() + row_ptr_[uz(r)];
  const auto end = col_idx_.begin() + row_ptr_[uz(r) + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::vector<double> SparseMatrix::mul(const std::vector<double>& x) const {
  std::vector<double> y(uz(rows_), 0.0);
  mul_into(x, y);
  return y;
}

void SparseMatrix::mul_into(const std::vector<double>& x,
                            std::vector<double>& y) const {
  RENOC_CHECK(static_cast<int>(x.size()) == cols_);
  y.assign(uz(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int p = row_ptr_[uz(r)]; p < row_ptr_[uz(r) + 1]; ++p)
      acc += vals_[uz(p)] * x[uz(col_idx_[uz(p)])];
    y[uz(r)] = acc;
  }
}

SparseMatrix SparseMatrix::plus_diagonal(const std::vector<double>& d) const {
  RENOC_CHECK(rows_ == cols_);
  RENOC_CHECK(static_cast<int>(d.size()) == rows_);
  SparseMatrix out = *this;
  for (int r = 0; r < rows_; ++r) {
    bool found = false;
    for (int p = row_ptr_[uz(r)]; p < row_ptr_[uz(r) + 1]; ++p) {
      if (col_idx_[uz(p)] == r) {
        out.vals_[uz(p)] += d[uz(r)];
        found = true;
        break;
      }
    }
    RENOC_CHECK_MSG(found, "row " << r << " has no stored diagonal entry");
  }
  return out;
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(uz(rows_), uz(cols_));
  for (int r = 0; r < rows_; ++r)
    for (int p = row_ptr_[uz(r)]; p < row_ptr_[uz(r) + 1]; ++p)
      m(uz(r), uz(col_idx_[uz(p)])) += vals_[uz(p)];
  return m;
}

bool SparseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r)
    for (int p = row_ptr_[uz(r)]; p < row_ptr_[uz(r) + 1]; ++p)
      if (std::fabs(vals_[uz(p)] - at(col_idx_[uz(p)], r)) > tol)
        return false;
  return true;
}

std::vector<int> bandwidth_reducing_ordering(const SparseMatrix& a,
                                             int hub_degree) {
  RENOC_CHECK(a.rows() == a.cols());
  RENOC_CHECK(hub_degree >= 0);
  const int n = a.rows();
  std::vector<int> degree(uz(n), 0);
  for (int r = 0; r < n; ++r) {
    for (int p = a.row_ptr()[uz(r)]; p < a.row_ptr()[uz(r) + 1]; ++p)
      if (a.col_idx()[uz(p)] != r) ++degree[uz(r)];
  }

  std::vector<int> perm;
  perm.reserve(uz(n));
  std::vector<char> placed(uz(n), 0);
  const auto is_hub = [&](int v) { return degree[uz(v)] > hub_degree; };

  // Cuthill-McKee over the non-hub subgraph: BFS from a minimum-degree
  // unvisited node, expanding neighbours in ascending-degree order. Hubs
  // are skipped here (they would collapse the level structure — every grid
  // node is within a couple of hops of the sink center).
  std::vector<int> frontier;
  std::vector<int> nbrs;
  for (;;) {
    int start = -1;
    for (int v = 0; v < n; ++v)
      if (!placed[uz(v)] && !is_hub(v) &&
          (start == -1 || degree[uz(v)] < degree[uz(start)]))
        start = v;
    if (start == -1) break;
    placed[uz(start)] = 1;
    frontier.assign(1, start);
    std::size_t head = 0;
    while (head < frontier.size()) {
      const int v = frontier[head++];
      perm.push_back(v);
      nbrs.clear();
      for (int p = a.row_ptr()[uz(v)]; p < a.row_ptr()[uz(v) + 1]; ++p) {
        const int w = a.col_idx()[uz(p)];
        if (w == v || placed[uz(w)] || is_hub(w)) continue;
        placed[uz(w)] = 1;
        nbrs.push_back(w);
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](int x, int y) {
        return degree[uz(x)] != degree[uz(y)] ? degree[uz(x)] < degree[uz(y)]
                                              : x < y;
      });
      frontier.insert(frontier.end(), nbrs.begin(), nbrs.end());
    }
  }
  std::reverse(perm.begin(), perm.end());  // Cuthill-McKee -> reverse CM

  // Hubs last, smallest degree first, so the densest row is eliminated at
  // the very end where its fill is already confined.
  std::vector<int> hubs;
  for (int v = 0; v < n; ++v)
    if (!placed[uz(v)]) hubs.push_back(v);
  std::sort(hubs.begin(), hubs.end(), [&](int x, int y) {
    return degree[uz(x)] != degree[uz(y)] ? degree[uz(x)] < degree[uz(y)]
                                          : x < y;
  });
  perm.insert(perm.end(), hubs.begin(), hubs.end());
  RENOC_CHECK(static_cast<int>(perm.size()) == n);
  return perm;
}

std::vector<int> minimum_degree_ordering(const SparseMatrix& a) {
  RENOC_CHECK(a.rows() == a.cols());
  const int n = a.rows();

  // Quotient-graph minimum degree (Davis, "Direct Methods", ch. 7, without
  // supervariable detection): each uneliminated variable v keeps a list of
  // adjacent uneliminated variables (vadj) and of elements — eliminated
  // pivots standing in for the clique of their boundary (belem). At each
  // step the minimum-degree variable (smallest index on ties, for
  // deterministic orderings) is eliminated: its boundary becomes a new
  // element, the elements it touched are absorbed, and only the boundary's
  // degrees are recomputed.
  std::vector<std::vector<int>> vadj(uz(n));
  std::vector<std::vector<int>> eadj(uz(n));   // element ids per variable
  std::vector<std::vector<int>> belem;         // boundary per element
  std::vector<char> absorbed;                  // per element
  for (int r = 0; r < n; ++r)
    for (int p = a.row_ptr()[uz(r)]; p < a.row_ptr()[uz(r) + 1]; ++p) {
      const int c = a.col_idx()[uz(p)];
      if (c != r) vadj[uz(r)].push_back(c);
    }

  std::vector<char> alive(uz(n), 1);
  std::vector<int> degree(uz(n), 0);
  for (int v = 0; v < n; ++v)
    degree[uz(v)] = static_cast<int>(vadj[uz(v)].size());

  std::vector<int> mark(uz(n), -1);  // epoch marks for set unions
  int epoch = 0;
  std::vector<int> boundary;
  boundary.reserve(uz(n));

  // Gathers the distinct alive neighbours of v (variables plus element
  // boundaries) under the current epoch mark; returns the count.
  const auto scan_neighbours = [&](int v) {
    int count = 0;
    ++epoch;
    mark[uz(v)] = epoch;
    for (const int w : vadj[uz(v)]) {
      if (!alive[uz(w)] || mark[uz(w)] == epoch) continue;
      mark[uz(w)] = epoch;
      ++count;
    }
    for (const int e : eadj[uz(v)]) {
      if (absorbed[uz(e)]) continue;
      for (const int w : belem[uz(e)]) {
        if (!alive[uz(w)] || mark[uz(w)] == epoch) continue;
        mark[uz(w)] = epoch;
        ++count;
      }
    }
    return count;
  };

  std::vector<int> perm;
  perm.reserve(uz(n));
  for (int step = 0; step < n; ++step) {
    int pivot = -1;
    for (int v = 0; v < n; ++v)
      if (alive[uz(v)] &&
          (pivot == -1 || degree[uz(v)] < degree[uz(pivot)]))
        pivot = v;
    perm.push_back(pivot);
    alive[uz(pivot)] = 0;

    // Boundary of the new element: distinct alive neighbours of the pivot.
    boundary.clear();
    ++epoch;
    mark[uz(pivot)] = epoch;
    for (const int w : vadj[uz(pivot)]) {
      if (!alive[uz(w)] || mark[uz(w)] == epoch) continue;
      mark[uz(w)] = epoch;
      boundary.push_back(w);
    }
    for (const int e : eadj[uz(pivot)]) {
      if (absorbed[uz(e)]) continue;
      absorbed[uz(e)] = 1;  // the new element covers this one's clique
      for (const int w : belem[uz(e)]) {
        if (!alive[uz(w)] || mark[uz(w)] == epoch) continue;
        mark[uz(w)] = epoch;
        boundary.push_back(w);
      }
    }
    const int e_new = static_cast<int>(belem.size());
    belem.push_back(boundary);
    absorbed.push_back(0);

    // Update each boundary variable: prune its variable list to alive
    // non-boundary entries (boundary coverage moves to the new element),
    // drop absorbed elements, attach e_new, and recompute its degree.
    for (const int u : boundary) {
      auto& va = vadj[uz(u)];
      std::size_t keep = 0;
      for (const int w : va)
        if (alive[uz(w)] && mark[uz(w)] != epoch) va[keep++] = w;
      va.resize(keep);
      auto& ea = eadj[uz(u)];
      keep = 0;
      for (const int e : ea)
        if (!absorbed[uz(e)]) ea[keep++] = e;
      ea.resize(keep);
      ea.push_back(e_new);
    }
    for (const int u : boundary) degree[uz(u)] = scan_neighbours(u);
  }
  RENOC_CHECK(static_cast<int>(perm.size()) == n);
  return perm;
}

SparseLdlt::SparseLdlt(const SparseMatrix& a, std::vector<int> perm)
    : n_(a.rows()) {
  RENOC_CHECK_MSG(a.rows() == a.cols(), "LDL^T requires a square matrix");
  if (perm.empty()) perm = bandwidth_reducing_ordering(a);
  RENOC_CHECK_MSG(static_cast<int>(perm.size()) == n_,
                  "permutation size " << perm.size() << " != n " << n_);
  perm_ = std::move(perm);
  iperm_.assign(uz(n_), -1);
  for (int k = 0; k < n_; ++k) {
    const int v = perm_[uz(k)];
    RENOC_CHECK_MSG(v >= 0 && v < n_ && iperm_[uz(v)] == -1,
                    "perm is not a permutation of 0.." << n_ - 1);
    iperm_[uz(v)] = k;
  }

  // --- Symbolic pass: elimination tree and per-column fill counts --------
  // Up-looking LDL^T (Davis, "Direct Methods for Sparse Linear Systems",
  // the LDL kernel): the pattern of row k of L is found by walking each
  // upper-triangular entry of row k of PAP^T up the elimination tree.
  const std::vector<int>& ap = a.row_ptr();
  const std::vector<int>& ai = a.col_idx();
  const std::vector<double>& ax = a.values();

  std::vector<int> parent(uz(n_), -1);
  std::vector<int> lnz(uz(n_), 0);
  std::vector<int> flag(uz(n_), -1);
  for (int k = 0; k < n_; ++k) {
    flag[uz(k)] = k;
    const int orig = perm_[uz(k)];
    for (int p = ap[uz(orig)]; p < ap[uz(orig) + 1]; ++p) {
      int i = iperm_[uz(ai[uz(p)])];
      if (i >= k) continue;  // strictly upper entries of the permuted row
      for (; flag[uz(i)] != k; i = parent[uz(i)]) {
        if (parent[uz(i)] == -1) parent[uz(i)] = k;
        ++lnz[uz(i)];
        flag[uz(i)] = k;
      }
    }
  }

  lp_.assign(uz(n_) + 1, 0);
  for (int k = 0; k < n_; ++k) lp_[uz(k) + 1] = lp_[uz(k)] + lnz[uz(k)];
  li_.assign(uz(lp_[uz(n_)]), 0);
  lx_.assign(uz(lp_[uz(n_)]), 0.0);
  d_.assign(uz(n_), 0.0);

  // --- Numeric pass ------------------------------------------------------
  std::vector<double> y(uz(n_), 0.0);
  std::vector<int> pattern(uz(n_), 0);
  std::vector<int> path(uz(n_), 0);
  std::vector<int> lfill(uz(n_), 0);  // entries written into each column
  std::fill(flag.begin(), flag.end(), -1);
  for (int k = 0; k < n_; ++k) {
    int top = n_;
    flag[uz(k)] = k;
    const int orig = perm_[uz(k)];
    for (int p = ap[uz(orig)]; p < ap[uz(orig) + 1]; ++p) {
      const int j = iperm_[uz(ai[uz(p)])];
      if (j > k) continue;
      y[uz(j)] += ax[uz(p)];
      int len = 0;
      for (int i = j; flag[uz(i)] != k; i = parent[uz(i)]) {
        path[uz(len++)] = i;
        flag[uz(i)] = k;
      }
      while (len > 0) pattern[uz(--top)] = path[uz(--len)];
    }
    d_[uz(k)] = y[uz(k)];
    y[uz(k)] = 0.0;
    for (int p = top; p < n_; ++p) {
      const int i = pattern[uz(p)];
      const double yi = y[uz(i)];
      y[uz(i)] = 0.0;
      const int pstart = lp_[uz(i)];
      for (int q = pstart; q < pstart + lfill[uz(i)]; ++q)
        y[uz(li_[uz(q)])] -= lx_[uz(q)] * yi;
      const double l_ki = yi / d_[uz(i)];
      d_[uz(k)] -= l_ki * yi;
      li_[uz(pstart + lfill[uz(i)])] = k;
      lx_[uz(pstart + lfill[uz(i)])] = l_ki;
      ++lfill[uz(i)];
    }
    RENOC_CHECK_MSG(d_[uz(k)] > 0.0,
                    "matrix is singular or not positive definite (pivot "
                        << d_[uz(k)] << " at step " << k << ")");
  }

  inv_d_.assign(uz(n_), 0.0);
  for (int k = 0; k < n_; ++k) inv_d_[uz(k)] = 1.0 / d_[uz(k)];
}

std::vector<double> SparseLdlt::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solve_in_place(x);
  return x;
}

void SparseLdlt::solve_in_place(std::vector<double>& x) const {
  RENOC_CHECK(static_cast<int>(x.size()) == n_);
  scratch_.resize(uz(n_));
  std::vector<double>& y = scratch_;
  for (int k = 0; k < n_; ++k) y[uz(k)] = x[uz(perm_[uz(k)])];
  // L z = y (unit-diagonal, by columns).
  for (int k = 0; k < n_; ++k) {
    const double yk = y[uz(k)];
    for (int p = lp_[uz(k)]; p < lp_[uz(k) + 1]; ++p)
      y[uz(li_[uz(p)])] -= lx_[uz(p)] * yk;
  }
  for (int k = 0; k < n_; ++k) y[uz(k)] /= d_[uz(k)];
  // L^T w = z (by columns of L, i.e. rows of L^T, in reverse).
  for (int k = n_ - 1; k >= 0; --k) {
    double acc = y[uz(k)];
    for (int p = lp_[uz(k)]; p < lp_[uz(k) + 1]; ++p)
      acc -= lx_[uz(p)] * y[uz(li_[uz(p)])];
    y[uz(k)] = acc;
  }
  for (int k = 0; k < n_; ++k) x[uz(perm_[uz(k)])] = y[uz(k)];
}

void SparseLdlt::solve_multi(std::vector<double>& x, int nrhs) const {
  solve_multi_with(simd::kernels(), x, nrhs);
}

void SparseLdlt::solve_multi_with(const simd::KernelTable& kernels,
                                  std::vector<double>& x, int nrhs) const {
  RENOC_CHECK_MSG(nrhs >= 1, "need at least one right-hand side");
  RENOC_CHECK_MSG(
      x.size() == uz(n_) * static_cast<std::size_t>(nrhs),
      "multi-RHS block size " << x.size() << " != n*nrhs = " << n_ * nrhs);
  const std::size_t w = static_cast<std::size_t>(nrhs);
  scratch_multi_.resize(uz(n_) * w);
  double* y = scratch_multi_.data();
  // Permute in: whole rows move, so each gather copies nrhs contiguous
  // values. The triangular/diagonal sweeps run through the SIMD kernel
  // table with RHS columns blocked into lanes; every tier replicates
  // solve_in_place's per-column arithmetic in the same order (see
  // util/sparse_kernels.hpp), keeping columns bit-identical to lone
  // solves across tiers.
  for (int k = 0; k < n_; ++k)
    std::copy_n(&x[uz(perm_[uz(k)]) * w], w, y + uz(k) * w);
  kernels.ldlt_solve_multi(lp_.data(), li_.data(), lx_.data(), d_.data(), y,
                           n_, nrhs);
  for (int k = 0; k < n_; ++k)
    std::copy_n(y + uz(k) * w, w, &x[uz(perm_[uz(k)]) * w]);
}

void SparseLdlt::solve_permuted_in_place(double* y) const {
  solve_permuted_in_place_with(simd::kernels(), y);
}

void SparseLdlt::solve_permuted_in_place_with(const simd::KernelTable& kernels,
                                              double* y) const {
  // Forward sweep, then a backward sweep with D^{-1} fused and four
  // accumulators: the plain per-column dot is a serial chain whose
  // latency, not throughput, bounds the sweep; splitting it breaks the
  // chain. Lives in util/sparse_kernels.hpp (per-tier bit-identical).
  kernels.ldlt_permuted_solve(lp_.data(), li_.data(), lx_.data(),
                              inv_d_.data(), y, n_);
}

}  // namespace renoc
