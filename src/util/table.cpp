#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace renoc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RENOC_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RENOC_CHECK_MSG(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title_.empty()) os << title_ << "\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace renoc
