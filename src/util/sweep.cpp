#include "util/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace renoc::sweep {

// ---------------------------------------------------------------------------
// Scenario indexing
// ---------------------------------------------------------------------------

std::int64_t axis_product(const std::vector<std::int64_t>& shape) {
  RENOC_CHECK_MSG(!shape.empty(), "axis shape must have at least one axis");
  std::int64_t total = 1;
  for (const std::int64_t n : shape) {
    RENOC_CHECK_MSG(n >= 1, "axis size must be >= 1, got " << n);
    RENOC_CHECK_MSG(total <= INT64_MAX / n, "axis product overflows int64");
    total *= n;
  }
  return total;
}

void decode_scenario_index(std::int64_t index,
                           const std::vector<std::int64_t>& shape,
                           std::vector<std::int64_t>& digits) {
  RENOC_CHECK_MSG(index >= 0, "scenario index must be >= 0, got " << index);
  digits.resize(shape.size());
  std::int64_t rest = index;
  // Last axis fastest: peel digits from the innermost loop outward, the
  // same order the harnesses' nested loops enumerate.
  for (std::size_t k = shape.size(); k-- > 0;) {
    RENOC_CHECK_MSG(shape[k] >= 1, "axis size must be >= 1, got " << shape[k]);
    digits[k] = rest % shape[k];
    rest /= shape[k];
  }
  RENOC_CHECK_MSG(rest == 0, "scenario index " << index
                                               << " outside the axis shape");
}

std::int64_t encode_scenario_index(const std::vector<std::int64_t>& digits,
                                   const std::vector<std::int64_t>& shape) {
  RENOC_CHECK_MSG(digits.size() == shape.size(),
                  "digit count " << digits.size() << " != axis count "
                                 << shape.size());
  std::int64_t index = 0;
  for (std::size_t k = 0; k < shape.size(); ++k) {
    RENOC_CHECK_MSG(digits[k] >= 0 && digits[k] < shape[k],
                    "digit " << digits[k] << " outside axis " << k
                             << " of size " << shape[k]);
    index = index * shape[k] + digits[k];
  }
  return index;
}

// ---------------------------------------------------------------------------
// RNG, validation, worker boilerplate
// ---------------------------------------------------------------------------

Rng scenario_rng(std::uint64_t seed, std::int64_t scenario_index) {
  RENOC_CHECK(scenario_index >= 0);
  return Rng(derive_stream_seed(seed,
                                static_cast<std::uint64_t>(scenario_index)));
}

void require_axis(bool non_empty, const char* axis) {
  RENOC_CHECK_MSG(non_empty, "sweep needs at least one " << axis);
}

void require_threads(int threads) {
  RENOC_CHECK_MSG(threads >= 1,
                  "sweep threads must be >= 1, got " << threads);
}

int clamp_workers(int threads, std::int64_t jobs) {
  require_threads(threads);
  return static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(threads, jobs)));
}

void run_workers(int workers, const std::function<void(int)>& body) {
  RENOC_CHECK(workers >= 1);
  if (workers == 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back([&body, w] { body(w); });
  for (std::thread& t : pool) t.join();
}

void parallel_for_scenarios(std::int64_t count, int threads,
                            const std::function<void(std::int64_t)>& body) {
  RENOC_CHECK(count >= 0);
  std::atomic<std::int64_t> cursor{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&](int) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      const std::int64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };
  run_workers(clamp_workers(threads, count), worker);
  if (first_error) std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------------------
// Shards, records, digests
// ---------------------------------------------------------------------------

void Shard::validate() const {
  RENOC_CHECK_MSG(count >= 1, "shard count must be >= 1, got " << count);
  RENOC_CHECK_MSG(index >= 0 && index < count,
                  "shard index " << index << " outside 0.." << count - 1);
}

std::int64_t Shard::owned_count(std::int64_t enumerated) const {
  RENOC_CHECK(enumerated >= 0);
  if (enumerated <= index) return 0;
  return (enumerated - index + count - 1) / count;
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kFailed: return "failed";
    case Outcome::kSkipped: return "skipped";
  }
  return "?";
}

std::uint64_t pack_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double unpack_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

DigestBuilder& DigestBuilder::fold(std::uint64_t v) {
  h_ = mix64(h_ ^ v);
  return *this;
}

DigestBuilder& DigestBuilder::fold_string(std::string_view s) {
  fold(s.size());
  for (const char c : s) fold(static_cast<unsigned char>(c));
  return *this;
}

void SweepSpec::validate() const {
  RENOC_CHECK_MSG(enumerated >= 0, "sweep enumerates a negative count");
  RENOC_CHECK_MSG(record_words >= 1,
                  "sweep records need at least one word, got " << record_words);
  RENOC_CHECK_MSG(static_cast<bool>(make_runner),
                  "sweep spec has no runner factory");
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kSchemaName = "renoc-sweep-checkpoint";
constexpr long long kSchemaVersion = 1;

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool parse_hex_u64(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

/// The checksum chains every semantic field of a segment through mix64, so
/// a single flipped payload bit (or a reordered record) changes it.
std::uint64_t segment_checksum(const SweepSpec& spec, const Shard& shard,
                               std::int64_t scenario_min,
                               std::int64_t scenario_max,
                               const std::vector<ScenarioRecord>& records) {
  std::uint64_t h = 0;
  const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  fold(static_cast<std::uint64_t>(kSchemaVersion));
  fold(spec.config_digest);
  fold(static_cast<std::uint64_t>(shard.index));
  fold(static_cast<std::uint64_t>(shard.count));
  fold(static_cast<std::uint64_t>(spec.enumerated));
  fold(static_cast<std::uint64_t>(spec.record_words));
  fold(static_cast<std::uint64_t>(scenario_min));
  fold(static_cast<std::uint64_t>(scenario_max));
  fold(records.size());
  for (const ScenarioRecord& rec : records) {
    fold(static_cast<std::uint64_t>(rec.scenario));
    fold(static_cast<std::uint64_t>(rec.outcome));
    for (const std::uint64_t w : rec.words) fold(w);
  }
  return h;
}

void write_checkpoint_segment(const SweepSpec& spec,
                              const CheckpointConfig& ckpt, const Shard& shard,
                              int segment,
                              const std::vector<ScenarioRecord>& records) {
  RENOC_CHECK(!records.empty());
  std::filesystem::create_directories(ckpt.directory);
  const std::int64_t scenario_min = records.front().scenario;
  const std::int64_t scenario_max = records.back().scenario;
  write_json_atomic(
      checkpoint_segment_path(ckpt, shard, segment), [&](JsonWriter& w) {
        w.begin_object();
        w.key("schema").string(kSchemaName);
        w.key("version").integer(kSchemaVersion);
        w.key("config_digest").string(hex_u64(spec.config_digest));
        w.key("shard_index").integer(shard.index);
        w.key("shard_count").integer(shard.count);
        w.key("enumerated").integer(spec.enumerated);
        w.key("record_words").integer(spec.record_words);
        // Scenario-range manifest: what this segment claims to cover.
        w.key("scenario_min").integer(scenario_min);
        w.key("scenario_max").integer(scenario_max);
        w.key("records").begin_array();
        for (const ScenarioRecord& rec : records) {
          w.begin_object();
          w.key("scenario").integer(rec.scenario);
          w.key("outcome").string(to_string(rec.outcome));
          // Payload words as hex, never JSON numbers: the parser holds
          // numbers as double, which would round 64-bit payloads.
          std::string words;
          words.reserve(rec.words.size() * 16);
          for (const std::uint64_t word : rec.words) words += hex_u64(word);
          w.key("words").string(words);
          w.end_object();
        }
        w.end_array();
        w.key("checksum")
            .string(hex_u64(segment_checksum(spec, shard, scenario_min,
                                             scenario_max, records)));
        w.end_object();
      });
}

long long integer_member(const JsonValue& doc, const char* key,
                         const std::string& path) {
  const JsonValue* v = doc.find(key);
  RENOC_CHECK_MSG(v != nullptr && v->kind == JsonValue::Kind::kNumber &&
                      v->num_is_integer,
                  "checkpoint " << path << ": unsupported checkpoint schema "
                                << "or version (missing integer '" << key
                                << "')");
  return static_cast<long long>(v->num_v);
}

std::string string_member(const JsonValue& doc, const char* key,
                          const std::string& path) {
  const JsonValue* v = doc.find(key);
  RENOC_CHECK_MSG(v != nullptr && v->kind == JsonValue::Kind::kString,
                  "checkpoint " << path << ": unsupported checkpoint schema "
                                << "or version (missing string '" << key
                                << "')");
  return v->str_v;
}

/// Loads one segment, enforcing the validation ladder described in the
/// header. `prev_scenario` carries the last scenario recovered from
/// earlier segments, for the cross-segment overlap check.
std::vector<ScenarioRecord> load_checkpoint_segment(
    const SweepSpec& spec, const Shard& shard, const std::string& path,
    std::int64_t* prev_scenario) {
  JsonValue doc;
  try {
    doc = parse_json_file(path);
  } catch (const CheckError& e) {
    RENOC_FAIL("checkpoint " << path << ": truncated or malformed ("
                             << e.what() << ")");
  }
  RENOC_CHECK_MSG(doc.kind == JsonValue::Kind::kObject,
                  "checkpoint " << path
                                << ": unsupported checkpoint schema or "
                                << "version (root is not an object)");
  const JsonValue* schema = doc.find("schema");
  RENOC_CHECK_MSG(schema != nullptr &&
                      schema->kind == JsonValue::Kind::kString &&
                      schema->str_v == kSchemaName,
                  "checkpoint " << path << ": unsupported checkpoint schema "
                                << "or version (schema tag mismatch)");
  const long long version = integer_member(doc, "version", path);
  RENOC_CHECK_MSG(version == kSchemaVersion,
                  "checkpoint " << path << ": unsupported checkpoint schema "
                                << "or version (version " << version
                                << " != " << kSchemaVersion << ")");

  RENOC_CHECK_MSG(
      integer_member(doc, "shard_index", path) == shard.index &&
          integer_member(doc, "shard_count", path) == shard.count &&
          integer_member(doc, "enumerated", path) == spec.enumerated &&
          integer_member(doc, "record_words", path) == spec.record_words,
      "checkpoint " << path
                    << ": shard geometry or record shape mismatch (expected "
                    << "shard " << shard.index << "/" << shard.count << ", "
                    << spec.enumerated << " scenarios, " << spec.record_words
                    << " words)");

  std::uint64_t digest = 0;
  RENOC_CHECK_MSG(parse_hex_u64(string_member(doc, "config_digest", path),
                                &digest) &&
                      digest == spec.config_digest,
                  "checkpoint " << path << ": config digest mismatch — the "
                                << "checkpoint was written under a different "
                                << "(stale) sweep config");

  const long long scenario_min = integer_member(doc, "scenario_min", path);
  const long long scenario_max = integer_member(doc, "scenario_max", path);
  const JsonValue* records_v = doc.find("records");
  RENOC_CHECK_MSG(records_v != nullptr &&
                      records_v->kind == JsonValue::Kind::kArray &&
                      !records_v->items.empty(),
                  "checkpoint " << path << ": malformed checkpoint record "
                                << "(missing or empty records array)");

  std::vector<ScenarioRecord> records;
  records.reserve(records_v->items.size());
  std::int64_t prev = *prev_scenario;
  for (const JsonValue& item : records_v->items) {
    RENOC_CHECK_MSG(item.kind == JsonValue::Kind::kObject,
                    "checkpoint " << path << ": malformed checkpoint record "
                                  << "(entry is not an object)");
    ScenarioRecord rec;
    rec.scenario = integer_member(item, "scenario", path);
    const std::string outcome = string_member(item, "outcome", path);
    const std::string words = string_member(item, "words", path);
    RENOC_CHECK_MSG(rec.scenario >= 0 && rec.scenario < spec.enumerated &&
                        shard.owns(rec.scenario) &&
                        rec.scenario >= scenario_min &&
                        rec.scenario <= scenario_max,
                    "checkpoint " << path << ": malformed checkpoint record "
                                  << "(scenario " << rec.scenario
                                  << " outside the shard or the declared "
                                  << "range)");
    RENOC_CHECK_MSG(rec.scenario > prev,
                    "checkpoint " << path << ": overlapping scenario ranges "
                                  << "(scenario " << rec.scenario
                                  << " already covered by an earlier "
                                  << "segment or record)");
    prev = rec.scenario;
    if (outcome == "completed") {
      rec.outcome = Outcome::kCompleted;
      RENOC_CHECK_MSG(
          words.size() ==
              static_cast<std::size_t>(spec.record_words) * 16,
          "checkpoint " << path << ": malformed checkpoint record (payload "
                        << "length " << words.size() << " != "
                        << spec.record_words * 16 << " hex chars)");
      rec.words.resize(static_cast<std::size_t>(spec.record_words));
      for (int k = 0; k < spec.record_words; ++k) {
        RENOC_CHECK_MSG(
            parse_hex_u64(
                std::string_view(words).substr(
                    static_cast<std::size_t>(k) * 16, 16),
                &rec.words[static_cast<std::size_t>(k)]),
            "checkpoint " << path << ": malformed checkpoint record "
                          << "(non-hex payload)");
      }
    } else if (outcome == "failed") {
      rec.outcome = Outcome::kFailed;
      RENOC_CHECK_MSG(words.empty(),
                      "checkpoint " << path << ": malformed checkpoint "
                                    << "record (failed record with payload)");
    } else {
      RENOC_FAIL("checkpoint " << path << ": malformed checkpoint record "
                               << "(outcome '" << outcome << "')");
    }
    records.push_back(std::move(rec));
  }
  RENOC_CHECK_MSG(records.front().scenario == scenario_min &&
                      records.back().scenario == scenario_max,
                  "checkpoint " << path << ": malformed checkpoint record "
                                << "(range manifest does not match the "
                                << "records)");

  std::uint64_t checksum = 0;
  RENOC_CHECK_MSG(
      parse_hex_u64(string_member(doc, "checksum", path), &checksum) &&
          checksum == segment_checksum(spec, shard, scenario_min,
                                       scenario_max, records),
      "checkpoint " << path << ": payload checksum mismatch — the file is "
                    << "corrupt (bit flip or partial write)");

  *prev_scenario = prev;
  return records;
}

}  // namespace

std::string checkpoint_segment_path(const CheckpointConfig& ckpt,
                                    const Shard& shard, int segment) {
  return ckpt.directory + "/" + ckpt.tag + ".shard" +
         std::to_string(shard.index) + "of" + std::to_string(shard.count) +
         ".seg" + std::to_string(segment) + ".json";
}

std::vector<ScenarioRecord> load_shard_checkpoints(
    const SweepSpec& spec, const CheckpointConfig& ckpt, const Shard& shard,
    int* segments_seen) {
  spec.validate();
  shard.validate();
  std::vector<ScenarioRecord> out;
  std::int64_t prev = -1;
  int segment = 0;
  // Segments are dense from 0 (seg k is written only after seg k-1), so
  // the first missing file ends the scan — a crash cannot leave a gap.
  for (;; ++segment) {
    const std::string path = checkpoint_segment_path(ckpt, shard, segment);
    if (!std::filesystem::exists(path)) break;
    std::vector<ScenarioRecord> records =
        load_checkpoint_segment(spec, shard, path, &prev);
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  if (segments_seen != nullptr) *segments_seen = segment;
  return out;
}

// ---------------------------------------------------------------------------
// Shard runner
// ---------------------------------------------------------------------------

ShardRunResult run_sweep_shard(const SweepSpec& spec,
                               const ShardRunOptions& opts) {
  spec.validate();
  opts.shard.validate();
  require_threads(opts.threads);
  RENOC_CHECK_MSG(opts.checkpoint.every >= 1,
                  "checkpoint period must be >= 1, got "
                      << opts.checkpoint.every);

  const Shard shard = opts.shard;
  const std::int64_t owned = shard.owned_count(spec.enumerated);

  ShardRunResult out;
  std::vector<ScenarioRecord> slots(static_cast<std::size_t>(owned));
  std::vector<char> have(static_cast<std::size_t>(owned), 0);
  if (opts.checkpoint.enabled()) {
    std::vector<ScenarioRecord> prior =
        load_shard_checkpoints(spec, opts.checkpoint, shard,
                               &out.segments_loaded);
    out.resumed = static_cast<std::int64_t>(prior.size());
    for (ScenarioRecord& rec : prior) {
      const std::int64_t pos = (rec.scenario - shard.index) / shard.count;
      have[static_cast<std::size_t>(pos)] = 1;
      slots[static_cast<std::size_t>(pos)] = std::move(rec);
    }
  }

  // Resume re-enumerates only the missing scenarios.
  std::vector<std::int64_t> todo;
  todo.reserve(static_cast<std::size_t>(owned));
  for (std::int64_t pos = 0; pos < owned; ++pos)
    if (!have[static_cast<std::size_t>(pos)]) todo.push_back(pos);
  const std::int64_t jobs = static_cast<std::int64_t>(todo.size());

  std::atomic<std::int64_t> cursor{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> stopped{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  // done[j] flips (release) after slots[todo[j]] is fully written, so the
  // flusher's acquire loads see complete records.
  std::vector<std::atomic<char>> done(static_cast<std::size_t>(jobs));

  // Checkpoint flushing: under flush_mutex, advance the frontier over the
  // contiguous prefix of completed todo positions and emit one segment per
  // `every` scenarios. Runs from the worker loop but outside any hot
  // region — per-scenario work dwarfs a cold file write every `every`
  // completions.
  std::mutex flush_mutex;
  std::int64_t flushed = 0;
  std::int64_t frontier = 0;
  int next_segment = out.segments_loaded;
  const auto flush_ready = [&](bool final) {
    while (frontier < jobs &&
           done[static_cast<std::size_t>(frontier)].load(
               std::memory_order_acquire))
      ++frontier;
    while (frontier - flushed >= opts.checkpoint.every ||
           (final && frontier > flushed)) {
      const std::int64_t upto =
          std::min(flushed + opts.checkpoint.every, frontier);
      std::vector<ScenarioRecord> batch;
      batch.reserve(static_cast<std::size_t>(upto - flushed));
      for (std::int64_t j = flushed; j < upto; ++j)
        batch.push_back(
            slots[static_cast<std::size_t>(todo[static_cast<std::size_t>(j)])]);
      write_checkpoint_segment(spec, opts.checkpoint, shard, next_segment,
                               batch);
      ++next_segment;
      ++out.segments_written;
      flushed = upto;
      if (opts.crash_after_segments >= 1 &&
          out.segments_written >= opts.crash_after_segments) {
        // Injected process death: no unwinding, no tail flush — exactly
        // what a SIGKILL leaves behind, plus a recognizable exit code.
        std::_Exit(kCrashExitCode);
      }
    }
  };

  const auto worker = [&](int) {
    // Per-worker setup hoisting: the runner factory builds decoders,
    // fabrics, and scratch buffers once, outside the per-scenario path.
    const auto runner = spec.make_runner();
    std::vector<std::uint64_t> words(
        static_cast<std::size_t>(spec.record_words));
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      const std::int64_t j = cursor.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs) break;
      if (opts.stop_after >= 0 && j >= opts.stop_after) {
        stopped.store(true, std::memory_order_relaxed);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      const std::int64_t pos = todo[static_cast<std::size_t>(j)];
      ScenarioRecord rec;
      rec.scenario = shard.owned_at(pos);
      rec.outcome = Outcome::kCompleted;
      try {
        runner(rec.scenario, words.data());
        rec.words.assign(words.begin(), words.end());
      } catch (...) {
        if (!opts.capture_failures) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
          break;
        }
        rec.outcome = Outcome::kFailed;
        rec.words.clear();
      }
      slots[static_cast<std::size_t>(pos)] = std::move(rec);
      done[static_cast<std::size_t>(j)].store(1, std::memory_order_release);
      if (opts.checkpoint.enabled()) {
        const std::lock_guard<std::mutex> lock(flush_mutex);
        flush_ready(/*final=*/false);
      }
    }
  };
  run_workers(clamp_workers(opts.threads, std::max<std::int64_t>(jobs, 1)),
              worker);
  if (first_error) std::rethrow_exception(first_error);

  // Tail flush on normal completion only: a stop_after run abandons its
  // un-flushed tail, like the SIGKILL it stands in for.
  if (opts.checkpoint.enabled() &&
      !stopped.load(std::memory_order_relaxed)) {
    const std::lock_guard<std::mutex> lock(flush_mutex);
    flush_ready(/*final=*/true);
  }

  for (std::int64_t j = 0; j < jobs; ++j)
    if (done[static_cast<std::size_t>(j)].load(std::memory_order_acquire))
      have[static_cast<std::size_t>(
          todo[static_cast<std::size_t>(j)])] = 1;
  out.records.reserve(static_cast<std::size_t>(owned));
  for (std::int64_t pos = 0; pos < owned; ++pos)
    if (have[static_cast<std::size_t>(pos)])
      out.records.push_back(std::move(slots[static_cast<std::size_t>(pos)]));
  return out;
}

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

MergeResult merge_shard_records(
    std::int64_t enumerated,
    const std::vector<std::vector<ScenarioRecord>>& shards) {
  RENOC_CHECK(enumerated >= 0);
  MergeResult out;
  out.counts.enumerated = enumerated;
  // Identity merge: records land in their scenario's slot, so neither
  // shard order nor arrival order can influence the result.
  out.records.resize(static_cast<std::size_t>(enumerated));
  std::vector<char> seen(static_cast<std::size_t>(enumerated), 0);
  for (const std::vector<ScenarioRecord>& shard : shards)
    for (const ScenarioRecord& rec : shard) {
      RENOC_CHECK_MSG(rec.scenario >= 0 && rec.scenario < enumerated,
                      "merge: scenario " << rec.scenario
                                         << " outside 0.." << enumerated - 1);
      RENOC_CHECK_MSG(!seen[static_cast<std::size_t>(rec.scenario)],
                      "merge: overlapping scenario ranges (scenario "
                          << rec.scenario << " reported twice)");
      seen[static_cast<std::size_t>(rec.scenario)] = 1;
      out.records[static_cast<std::size_t>(rec.scenario)] = rec;
    }
  for (std::int64_t s = 0; s < enumerated; ++s) {
    ScenarioRecord& rec = out.records[static_cast<std::size_t>(s)];
    if (!seen[static_cast<std::size_t>(s)]) {
      rec.scenario = s;
      rec.outcome = Outcome::kSkipped;
      rec.words.clear();
    }
    switch (rec.outcome) {
      case Outcome::kCompleted: ++out.counts.completed; break;
      case Outcome::kFailed: ++out.counts.failed; break;
      case Outcome::kSkipped: ++out.counts.skipped; break;
    }
    if (rec.outcome != Outcome::kCompleted) out.incomplete.push_back(s);
  }
  RENOC_CHECK_MSG(out.counts.conserved(),
                  "merge: conservation law violated (completed "
                      << out.counts.completed << " + failed "
                      << out.counts.failed << " + skipped "
                      << out.counts.skipped << " != enumerated "
                      << out.counts.enumerated << ")");
  return out;
}

MergeResult merge_checkpoints(const SweepSpec& spec,
                              const CheckpointConfig& ckpt, int shard_count) {
  RENOC_CHECK_MSG(shard_count >= 1,
                  "shard count must be >= 1, got " << shard_count);
  std::vector<std::vector<ScenarioRecord>> shards;
  shards.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i)
    shards.push_back(load_shard_checkpoints(
        spec, ckpt, Shard{i, shard_count}, nullptr));
  return merge_shard_records(spec.enumerated, shards);
}

}  // namespace renoc::sweep
