// Scalar-tier kernel table: the portable unrolled-array backend. Always
// compiled, in every build mode — it is both the -Werror portability pin
// for the kernel templates and the oracle the vector tiers are tested
// against.
#include "util/simd_tables.hpp"

namespace renoc::simd::detail {

const KernelTable* scalar_table() {
  static const KernelTable table =
      make_table<lanes::ScalarI32<8>, lanes::ScalarF64<4>>(Tier::kScalar);
  return &table;
}

}  // namespace renoc::simd::detail
