#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace renoc::simd {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_tier(const char* name, Tier& out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    out = Tier::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    out = Tier::kSse2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    out = Tier::kAvx2;
    return true;
  }
  return false;
}

namespace detail {

bool cpu_supports(Tier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
  return false;
#else
  return tier == Tier::kScalar;
#endif
}

}  // namespace detail

const KernelTable* kernel_table(Tier tier) {
  if (!detail::cpu_supports(tier)) return nullptr;
  switch (tier) {
    case Tier::kScalar:
      return detail::scalar_table();
    case Tier::kSse2:
      return detail::sse2_table();
    case Tier::kAvx2:
      return detail::avx2_table();
  }
  return nullptr;
}

namespace {

const KernelTable* resolve_active() {
  Tier best = Tier::kScalar;
  if (kernel_table(Tier::kSse2) != nullptr) best = Tier::kSse2;
  if (kernel_table(Tier::kAvx2) != nullptr) best = Tier::kAvx2;
  // The env override only clamps downward: asking for a tier the binary or
  // CPU cannot run falls back to the best available, and unparsable values
  // are ignored, so a stale RENOC_SIMD_TIER can never break a run.
  if (const char* env = std::getenv("RENOC_SIMD_TIER")) {
    Tier requested = Tier::kScalar;
    if (parse_tier(env, requested) &&
        static_cast<int>(requested) < static_cast<int>(best)) {
      best = requested;
    }
  }
  for (int t = static_cast<int>(best); t > 0; --t) {
    if (const KernelTable* table = kernel_table(static_cast<Tier>(t))) {
      return table;
    }
  }
  return detail::scalar_table();
}

}  // namespace

const KernelTable& kernels() {
  static const KernelTable* const table = resolve_active();
  return *table;
}

Tier active_tier() { return kernels().tier; }

const char* active_tier_name() { return tier_name(active_tier()); }

}  // namespace renoc::simd
