#include "util/alloc_guard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "util/check.hpp"

namespace {

// Relaxed ordering is sufficient: scopes only ever read a snapshot delta
// on the thread that owns the guard, and cross-thread counts are summed
// commutatively. Keeping the counters lock-free also keeps the interposed
// operators safe under ThreadSanitizer.
std::atomic<std::int64_t> g_alloc_count{0};
std::atomic<std::int64_t> g_alloc_bytes{0};

}  // namespace

#ifdef RENOC_ALLOC_GUARD_HOOKS

// Replacement global allocation functions. These live in the same TU as
// the accessors below on purpose: linking any alloc_guard API pulls this
// object file from the archive, and with it the interposition — binaries
// that never mention the guard keep the default operators.
namespace {

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                          std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow forms must be replaced alongside the throwing ones: libstdc++
// reaches them directly (e.g. std::stable_sort's temporary buffer), and
// under ASan a default-operator-new allocation freed by our replacement
// delete would report as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // RENOC_ALLOC_GUARD_HOOKS

namespace renoc {
namespace alloc_guard {

bool instrumented() {
#ifdef RENOC_ALLOC_GUARD_HOOKS
  return true;
#else
  return false;
#endif
}

AllocTotals totals() {
  return AllocTotals{g_alloc_count.load(std::memory_order_relaxed),
                     g_alloc_bytes.load(std::memory_order_relaxed)};
}

}  // namespace alloc_guard

AllocGuard::AllocGuard() : start_(alloc_guard::totals()) {}

std::int64_t AllocGuard::count() const {
  return alloc_guard::totals().count - start_.count;
}

std::int64_t AllocGuard::bytes() const {
  return alloc_guard::totals().bytes - start_.bytes;
}

void AllocGuard::check_zero(const char* what) const {
  if (!alloc_guard::instrumented()) return;
  const std::int64_t n = count();
  RENOC_CHECK_MSG(n == 0, what << ": " << n << " heap allocation(s) ("
                                << bytes()
                                << " bytes) inside an AllocGuard scope "
                                   "pinned to zero");
}

}  // namespace renoc
