// AVX2-tier kernel table. CMake compiles this one TU with -mavx2 (when
// the compiler supports the flag and RENOC_SIMD is ON); no other TU may
// carry wide-vector flags, so AVX2 code cannot leak into paths executed
// before the runtime CPUID check in util/simd.cpp. Deliberately no -mfma:
// contraction would break the cross-tier bit-exactness contract.
#include "util/simd.hpp"

#if defined(__AVX2__) && !defined(RENOC_SIMD_DISABLED)

#include "util/simd_tables.hpp"

namespace renoc::simd::detail {

const KernelTable* avx2_table() {
  static const KernelTable table =
      make_table<lanes::Avx2I32, lanes::Avx2F64>(Tier::kAvx2);
  return &table;
}

}  // namespace renoc::simd::detail

#else

namespace renoc::simd::detail {

const KernelTable* avx2_table() { return nullptr; }

}  // namespace renoc::simd::detail

#endif
