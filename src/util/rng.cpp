#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace renoc {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += kGolden;
  return mix64(x);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index) {
  return mix64(seed + kGolden * (index + 1));
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RENOC_CHECK(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::size_t Rng::next_index(std::size_t size) {
  return static_cast<std::size_t>(next_below(size));
}

double Rng::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller on two uniforms; u1 is kept away from zero for the log.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace renoc
