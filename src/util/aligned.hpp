// Lane-width-aligned storage for the SIMD SoA workspaces.
//
// The vector kernels in util/simd read whole lane groups at a time, so the
// arrays they touch (decoder message SoA, multi-RHS blocks, the NoC
// head-flit mirrors) must extend past their logical size to a full lane
// boundary, with the tail defined (zero) so remainder lanes need no branch.
// AlignedVec provides exactly that: data() is 64-byte aligned (one cache
// line, the widest lane group any tier uses) and elements
// [size(), padded_size()) are always zero-filled.
//
// Storage is a plain std::vector with manual alignment slack rather than an
// over-aligned operator new: the alloc_guard interposition only counts the
// plain new/delete pair, so workspaces built from AlignedVec stay visible
// to the steady-state allocation pins in the benches and alloc_guard_test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace renoc {

template <typename T>
class AlignedVec {
 public:
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kPadElems = kAlignBytes / sizeof(T);
  static_assert(kPadElems * sizeof(T) == kAlignBytes,
                "element size must divide the alignment");

  AlignedVec() = default;

  /// Sets the logical size to `n` with every element equal to `value`;
  /// the padding tail [n, padded_size()) is zero-filled. Re-assigning a
  /// size that fits the current capacity performs no allocation.
  void assign(std::size_t n, T value) {
    resize_storage(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  /// Value-initializes to size `n` (all elements zero, like a freshly
  /// grown std::vector), padding tail included.
  void resize(std::size_t n) { resize_storage(n); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Logical size rounded up to a full alignment block — the element count
  /// a vector kernel may safely touch (tail elements read as zero).
  std::size_t padded_size() const { return padded_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void resize_storage(std::size_t n) {
    size_ = n;
    padded_ = (n + kPadElems - 1) / kPadElems * kPadElems;
    // Zero everything (tail included), plus one block of slack so the data
    // pointer can be bumped up to the next 64-byte boundary.
    storage_.assign(padded_ + kPadElems, T{});
    const std::uintptr_t addr =
        reinterpret_cast<std::uintptr_t>(storage_.data());
    const std::uintptr_t aligned =
        (addr + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
    data_ = storage_.data() + (aligned - addr) / sizeof(T);
  }

  std::vector<T> storage_;
  std::size_t size_ = 0;
  std::size_t padded_ = 0;
  T* data_ = nullptr;
};

}  // namespace renoc
