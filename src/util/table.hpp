// Plain-text table rendering for the benchmark/experiment harnesses.
//
// The bench binaries regenerate the paper's tables and figures as aligned
// text tables on stdout (plus optional CSV), so runs are easy to diff
// against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace renoc {

/// Column-aligned text table with an optional title, e.g.
///
///   Table t({"Scheme", "dT (C)"});
///   t.add_row({"Rot", "4.15"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Renders with padded columns, a header rule, and the title if set.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, header first, no quoting of commas —
  /// callers must not put commas in cells).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace renoc
