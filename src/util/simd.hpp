// Fixed-width SIMD lane abstraction with compile-time backends and
// one-time runtime dispatch.
//
// Layout of the layer:
//
//   - Lane wrappers (`lanes::*`, below): value types holding one SIMD
//     register (or a plain array for the portable fallback) with a uniform
//     static-function API. Three backends:
//       * ScalarI32<W> / ScalarF64<W> — unrolled scalar arrays, compile
//         everywhere under -Werror, no intrinsics. Always available.
//       * Sse2I32 / Sse2F64 — strict SSE2 (the x86-64 baseline, so the TU
//         needs no extra flags).
//       * Avx2I32 / Avx2F64 — AVX2, compiled only into simd_avx2.cpp which
//         gets -mavx2 as a per-source-file option.
//   - Engine kernels (ldpc/batch_kernels.hpp, util/sparse_kernels.hpp,
//     noc/arb_kernels.hpp): templates over a lane backend, instantiated
//     once per tier in the three tier TUs (simd_scalar/sse2/avx2.cpp).
//   - KernelTable: per-tier function-pointer table. `kernels()` resolves
//     the active table once (CPUID + RENOC_SIMD_TIER env override, see
//     simd.cpp); engines call through it so one binary picks the best
//     tier at startup.
//
// Numerical contract: no tier TU enables FMA contraction (no -mfma, and
// the x86-64 baseline scalar build cannot contract either), and every
// vector kernel replicates the scalar engine's per-element op order
// exactly. Integer kernels are therefore bit-exact across tiers; the f64
// solve kernels are bit-exact too (IEEE ops per lane in the same order),
// which the batched-policy-score guards in micro_runtime rely on.
//
// Raw intrinsics are confined to this header's lane wrappers and the
// util/simd* TUs — `renoc_lint` enforces that (rule `simd-intrinsics`).
#pragma once

#include <cstdint>

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>  // renoc-lint-allow(simd-intrinsics): this is the one sanctioned home
#endif

namespace renoc::simd {

// ---------------------------------------------------------------------------
// Tiers and dispatch
// ---------------------------------------------------------------------------

enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };
inline constexpr int kTierCount = 3;

const char* tier_name(Tier tier);

/// Parses "scalar" / "sse2" / "avx2" (exact, lowercase). Returns false and
/// leaves `out` untouched on anything else.
bool parse_tier(const char* name, Tier& out);

/// Per-tier kernel table. Signatures are plain C-style so tier TUs can be
/// compiled with different instruction-set flags without ODR hazards.
///
/// LDPC batch kernels operate on a lane-per-codeword int32 SoA: logical
/// element i of codeword b lives at `soa[i * stride + b]`, with `stride` a
/// multiple of 8 and tail lanes zero-filled (see AlignedVec).
struct KernelTable {
  Tier tier = Tier::kScalar;

  /// Variable-node sweep: q[e] = saturate(llr[v] + sum_r - r[e]) for every
  /// edge e of every variable v (var-major edge order, CSR var_offsets).
  void (*ldpc_batch_vn)(const std::int32_t* llr, const std::int32_t* r,
                        std::int32_t* q, const int* var_offsets, int n,
                        int stride);
  /// Check-node sweep: normalized two-min update over check-major
  /// positions; `slots` maps check-major position -> var-major edge slot.
  void (*ldpc_batch_cn)(const std::int32_t* q, std::int32_t* r,
                        const int* check_offsets, const int* slots, int m,
                        int stride);
  /// Posterior hard decision: bits[v] = (llr[v] + sum_e r[e]) < 0.
  void (*ldpc_batch_hard)(const std::int32_t* llr, const std::int32_t* r,
                          const int* var_offsets, int n, int stride,
                          std::int32_t* bits);
  /// Per-lane syndrome: violated[b] != 0 iff some check has odd parity.
  /// `check_vars` maps check-major position -> variable index.
  void (*ldpc_batch_syndrome)(const std::int32_t* bits,
                              const int* check_offsets, const int* check_vars,
                              int m, int stride, std::int32_t* violated);

  /// Multi-RHS LDL^T solve on the permuted row-major block y (n x w):
  /// forward L, diagonal D, backward L^T — per-column op order identical
  /// to SparseLdlt::solve_in_place, so columns stay bit-identical to lone
  /// solves.
  void (*ldlt_solve_multi)(const int* lp, const int* li, const double* lx,
                           const double* d, double* y, int n, int w);
  /// Single-RHS permuted solve with the fused backward D^-1 + L^T sweep
  /// (4 accumulators); replicates SparseLdlt::solve_permuted_in_place.
  void (*ldlt_permuted_solve)(const int* lp, const int* li, const double* lx,
                              const double* inv_d, double* y, int n);

  /// NoC arbitration want[]-prepass over the head-flit mirrors: for each
  /// port f, want[f] = route_table[route_base[f] + head_dst[f]] when the
  /// FIFO is non-empty, the front flit is a head, and the route is not
  /// 0xFF (unreachable); otherwise -1. `ports` must be a multiple of 8;
  /// the route table must carry 4 bytes of tail padding (gather overread).
  void (*noc_want_scan)(const int* fifo_size, const std::uint8_t* head_is_head,
                        const int* head_dst, const int* route_base,
                        const std::uint8_t* route_table, int ports, int* want);
};

/// The table for `tier`, or nullptr when that tier is not compiled in
/// (RENOC_SIMD=OFF, non-x86, missing -mavx2 support) or the CPU lacks it.
/// kScalar is never null.
const KernelTable* kernel_table(Tier tier);

/// The active table: best compiled-and-CPU-supported tier, clamped down by
/// the RENOC_SIMD_TIER environment variable ("scalar"/"sse2"/"avx2") when
/// set. Resolved once on first call; cheap afterwards.
const KernelTable& kernels();

Tier active_tier();
const char* active_tier_name();

namespace detail {
// Defined in the tier TUs; null when the tier is compiled out.
const KernelTable* scalar_table();
const KernelTable* sse2_table();
const KernelTable* avx2_table();
bool cpu_supports(Tier tier);
}  // namespace detail

// ---------------------------------------------------------------------------
// Lane wrappers
// ---------------------------------------------------------------------------
//
// Uniform backend API (W = kLanes):
//   I32 ops: load/store (unaligned), set1, zero, add, sub, min_, max_,
//            cmplt/cmpeq/cmpgt (all-ones / all-zero lane masks), and_, or_,
//            xor_, andnot (~a & b), srai<N> (arithmetic shift),
//            widen_u8 (load W bytes, zero-extend), gather_u8 (byte table
//            lookup at int32 indices; may read up to 4 bytes at each
//            base+idx, so tables need 4 tail-padding bytes).
//   F64 ops: loadu/storeu, set1, zero, add, sub, mul, div,
//            gather (base[idx[0..W-1]] from a contiguous int index array).

namespace lanes {

/// Portable fallback: W-lane vectors as plain arrays. The loops are
/// trivially unrollable; semantics exactly match the intrinsic wrappers.
template <int W>
struct ScalarI32 {
  static constexpr int kLanes = W;
  std::int32_t v[W];

  static ScalarI32 load(const std::int32_t* p) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(std::int32_t* p, ScalarI32 a) {
    for (int i = 0; i < W; ++i) p[i] = a.v[i];
  }
  static ScalarI32 set1(std::int32_t x) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static ScalarI32 zero() { return set1(0); }
  static ScalarI32 add(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) {
      // Wrapping add, matching _mm_add_epi32 (lanes stay far from the
      // int32 edge in every kernel, but keep the fallback well-defined).
      r.v[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a.v[i]) +
          static_cast<std::uint32_t>(b.v[i]));
    }
    return r;
  }
  static ScalarI32 sub(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) {
      r.v[i] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(a.v[i]) -
          static_cast<std::uint32_t>(b.v[i]));
    }
    return r;
  }
  static ScalarI32 min_(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static ScalarI32 max_(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static ScalarI32 cmplt(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
  }
  static ScalarI32 cmpeq(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
  }
  static ScalarI32 cmpgt(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? -1 : 0;
    return r;
  }
  static ScalarI32 and_(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  static ScalarI32 or_(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
  }
  static ScalarI32 xor_(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] ^ b.v[i];
    return r;
  }
  static ScalarI32 andnot(ScalarI32 a, ScalarI32 b) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = ~a.v[i] & b.v[i];
    return r;
  }
  template <int N>
  static ScalarI32 srai(ScalarI32 a) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] >> N;
    return r;
  }
  static ScalarI32 widen_u8(const std::uint8_t* p) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) r.v[i] = static_cast<std::int32_t>(p[i]);
    return r;
  }
  static ScalarI32 gather_u8(const std::uint8_t* base, ScalarI32 idx) {
    ScalarI32 r;
    for (int i = 0; i < W; ++i) {
      r.v[i] = static_cast<std::int32_t>(base[idx.v[i]]);
    }
    return r;
  }
};

template <int W>
struct ScalarF64 {
  static constexpr int kLanes = W;
  double v[W];

  static ScalarF64 loadu(const double* p) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void storeu(double* p, ScalarF64 a) {
    for (int i = 0; i < W; ++i) p[i] = a.v[i];
  }
  static ScalarF64 set1(double x) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static ScalarF64 zero() { return set1(0.0); }
  static ScalarF64 add(ScalarF64 a, ScalarF64 b) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static ScalarF64 sub(ScalarF64 a, ScalarF64 b) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static ScalarF64 mul(ScalarF64 a, ScalarF64 b) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static ScalarF64 div(ScalarF64 a, ScalarF64 b) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  static ScalarF64 gather(const double* base, const int* idx) {
    ScalarF64 r;
    for (int i = 0; i < W; ++i) r.v[i] = base[idx[i]];
    return r;
  }
};

#if defined(__SSE2__)

/// Strict SSE2 (no SSE4.1): epi32 min/max are emulated with a compare and
/// mask blend, which keeps the TU compilable at the x86-64 baseline.
struct Sse2I32 {
  static constexpr int kLanes = 4;
  __m128i v;

  static Sse2I32 load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void store(std::int32_t* p, Sse2I32 a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
  }
  static Sse2I32 set1(std::int32_t x) { return {_mm_set1_epi32(x)}; }
  static Sse2I32 zero() { return {_mm_setzero_si128()}; }
  static Sse2I32 add(Sse2I32 a, Sse2I32 b) { return {_mm_add_epi32(a.v, b.v)}; }
  static Sse2I32 sub(Sse2I32 a, Sse2I32 b) { return {_mm_sub_epi32(a.v, b.v)}; }
  static Sse2I32 cmplt(Sse2I32 a, Sse2I32 b) {
    return {_mm_cmplt_epi32(a.v, b.v)};
  }
  static Sse2I32 cmpeq(Sse2I32 a, Sse2I32 b) {
    return {_mm_cmpeq_epi32(a.v, b.v)};
  }
  static Sse2I32 cmpgt(Sse2I32 a, Sse2I32 b) {
    return {_mm_cmpgt_epi32(a.v, b.v)};
  }
  static Sse2I32 and_(Sse2I32 a, Sse2I32 b) { return {_mm_and_si128(a.v, b.v)}; }
  static Sse2I32 or_(Sse2I32 a, Sse2I32 b) { return {_mm_or_si128(a.v, b.v)}; }
  static Sse2I32 xor_(Sse2I32 a, Sse2I32 b) { return {_mm_xor_si128(a.v, b.v)}; }
  static Sse2I32 andnot(Sse2I32 a, Sse2I32 b) {
    return {_mm_andnot_si128(a.v, b.v)};
  }
  static Sse2I32 min_(Sse2I32 a, Sse2I32 b) {
    const Sse2I32 m = cmplt(a, b);
    return or_(and_(m, a), andnot(m, b));
  }
  static Sse2I32 max_(Sse2I32 a, Sse2I32 b) {
    const Sse2I32 m = cmpgt(a, b);
    return or_(and_(m, a), andnot(m, b));
  }
  template <int N>
  static Sse2I32 srai(Sse2I32 a) {
    return {_mm_srai_epi32(a.v, N)};
  }
  static Sse2I32 widen_u8(const std::uint8_t* p) {
    std::int32_t packed = 0;
    __builtin_memcpy(&packed, p, 4);
    const __m128i z = _mm_setzero_si128();
    const __m128i b = _mm_cvtsi32_si128(packed);
    return {_mm_unpacklo_epi16(_mm_unpacklo_epi8(b, z), z)};
  }
  static Sse2I32 gather_u8(const std::uint8_t* base, Sse2I32 idx) {
    alignas(16) std::int32_t i[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(i), idx.v);
    return {_mm_set_epi32(base[i[3]], base[i[2]], base[i[1]], base[i[0]])};
  }
};

struct Sse2F64 {
  static constexpr int kLanes = 2;
  __m128d v;

  static Sse2F64 loadu(const double* p) { return {_mm_loadu_pd(p)}; }
  static void storeu(double* p, Sse2F64 a) { _mm_storeu_pd(p, a.v); }
  static Sse2F64 set1(double x) { return {_mm_set1_pd(x)}; }
  static Sse2F64 zero() { return {_mm_setzero_pd()}; }
  static Sse2F64 add(Sse2F64 a, Sse2F64 b) { return {_mm_add_pd(a.v, b.v)}; }
  static Sse2F64 sub(Sse2F64 a, Sse2F64 b) { return {_mm_sub_pd(a.v, b.v)}; }
  static Sse2F64 mul(Sse2F64 a, Sse2F64 b) { return {_mm_mul_pd(a.v, b.v)}; }
  static Sse2F64 div(Sse2F64 a, Sse2F64 b) { return {_mm_div_pd(a.v, b.v)}; }
  static Sse2F64 gather(const double* base, const int* idx) {
    return {_mm_set_pd(base[idx[1]], base[idx[0]])};
  }
};

#endif  // __SSE2__

#if defined(__AVX2__)

struct Avx2I32 {
  static constexpr int kLanes = 8;
  __m256i v;

  static Avx2I32 load(const std::int32_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(std::int32_t* p, Avx2I32 a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
  }
  static Avx2I32 set1(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
  static Avx2I32 zero() { return {_mm256_setzero_si256()}; }
  static Avx2I32 add(Avx2I32 a, Avx2I32 b) {
    return {_mm256_add_epi32(a.v, b.v)};
  }
  static Avx2I32 sub(Avx2I32 a, Avx2I32 b) {
    return {_mm256_sub_epi32(a.v, b.v)};
  }
  static Avx2I32 min_(Avx2I32 a, Avx2I32 b) {
    return {_mm256_min_epi32(a.v, b.v)};
  }
  static Avx2I32 max_(Avx2I32 a, Avx2I32 b) {
    return {_mm256_max_epi32(a.v, b.v)};
  }
  static Avx2I32 cmplt(Avx2I32 a, Avx2I32 b) {
    return {_mm256_cmpgt_epi32(b.v, a.v)};
  }
  static Avx2I32 cmpeq(Avx2I32 a, Avx2I32 b) {
    return {_mm256_cmpeq_epi32(a.v, b.v)};
  }
  static Avx2I32 cmpgt(Avx2I32 a, Avx2I32 b) {
    return {_mm256_cmpgt_epi32(a.v, b.v)};
  }
  static Avx2I32 and_(Avx2I32 a, Avx2I32 b) {
    return {_mm256_and_si256(a.v, b.v)};
  }
  static Avx2I32 or_(Avx2I32 a, Avx2I32 b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  static Avx2I32 xor_(Avx2I32 a, Avx2I32 b) {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  static Avx2I32 andnot(Avx2I32 a, Avx2I32 b) {
    return {_mm256_andnot_si256(a.v, b.v)};
  }
  template <int N>
  static Avx2I32 srai(Avx2I32 a) {
    return {_mm256_srai_epi32(a.v, N)};
  }
  static Avx2I32 widen_u8(const std::uint8_t* p) {
    return {_mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)))};
  }
  static Avx2I32 gather_u8(const std::uint8_t* base, Avx2I32 idx) {
    // Scale-1 dword gather reads 4 bytes at each base+idx (hence the
    // 4-byte table padding contract); keep only the addressed byte. The
    // masked form avoids gcc's uninitialized pass-through source warning.
    const __m256i g = _mm256_mask_i32gather_epi32(
        _mm256_setzero_si256(), reinterpret_cast<const int*>(base), idx.v,
        _mm256_set1_epi32(-1), 1);
    return {_mm256_and_si256(g, _mm256_set1_epi32(0xFF))};
  }
};

struct Avx2F64 {
  static constexpr int kLanes = 4;
  __m256d v;

  static Avx2F64 loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void storeu(double* p, Avx2F64 a) { _mm256_storeu_pd(p, a.v); }
  static Avx2F64 set1(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2F64 zero() { return {_mm256_setzero_pd()}; }
  static Avx2F64 add(Avx2F64 a, Avx2F64 b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  static Avx2F64 sub(Avx2F64 a, Avx2F64 b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  static Avx2F64 mul(Avx2F64 a, Avx2F64 b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  static Avx2F64 div(Avx2F64 a, Avx2F64 b) {
    return {_mm256_div_pd(a.v, b.v)};
  }
  static Avx2F64 gather(const double* base, const int* idx) {
    return {_mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)),
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8)};
  }
};

#endif  // __AVX2__

}  // namespace lanes

}  // namespace renoc::simd
