// SSE2-tier kernel table. SSE2 is the x86-64 baseline, so this TU needs
// no extra compile flags; on non-x86 targets (or with RENOC_SIMD=OFF) it
// compiles to a null table and dispatch falls back to the scalar tier.
#include "util/simd.hpp"

#if defined(__SSE2__) && !defined(RENOC_SIMD_DISABLED)

#include "util/simd_tables.hpp"

namespace renoc::simd::detail {

const KernelTable* sse2_table() {
  static const KernelTable table =
      make_table<lanes::Sse2I32, lanes::Sse2F64>(Tier::kSse2);
  return &table;
}

}  // namespace renoc::simd::detail

#else

namespace renoc::simd::detail {

const KernelTable* sse2_table() { return nullptr; }

}  // namespace renoc::simd::detail

#endif
