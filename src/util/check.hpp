// Error-checking macros used across ReNoC.
//
// RENOC_CHECK is always active (also in release builds): the library is a
// simulation/measurement tool, so silently continuing past a violated
// precondition would corrupt results. Violations throw renoc::CheckError
// so that tests can assert on them and tools can report cleanly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace renoc {

/// Thrown when a RENOC_CHECK precondition or invariant is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RENOC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace renoc

/// Check a condition; throws renoc::CheckError with location info on failure.
#define RENOC_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond))                                                        \
      ::renoc::detail::check_failed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

/// Unconditional failure with a streamed message. Unlike
/// RENOC_CHECK_MSG(false, ...), the compiler sees the [[noreturn]] call
/// directly, so this can terminate a non-void function.
#define RENOC_FAIL(msg)                                                 \
  do {                                                                  \
    std::ostringstream renoc_check_os_;                                 \
    renoc_check_os_ << msg;                                             \
    ::renoc::detail::check_failed("RENOC_FAIL", __FILE__, __LINE__,     \
                                  renoc_check_os_.str());               \
  } while (0)

/// Check with an extra streamed message: RENOC_CHECK_MSG(x > 0, "x=" << x).
#define RENOC_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream renoc_check_os_;                               \
      renoc_check_os_ << msg;                                           \
      ::renoc::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                    renoc_check_os_.str());             \
    }                                                                   \
  } while (0)
