// Streaming summary statistics (Welford) used by the NoC latency/throughput
// counters and the experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>

namespace renoc {

/// Accumulates count/mean/variance/min/max of a stream of doubles.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace renoc
