// Machine-readable JSON artifacts: one writer, one parser, one comparator.
//
// Every bench in this repo publishes a JSON record (BENCH_*.json for the
// micro benches, PAPER_*.json for the paper figure/table benches), and CI
// diffs the paper records against pinned goldens. Before this module each
// bench hand-formatted its JSON with fprintf; now they all share:
//
//   * JsonWriter   — a streaming pretty-printer with deterministic number
//                    formatting (fixed precision, no locale), so identical
//                    results produce byte-identical files;
//   * parse_json   — a strict recursive-descent parser for the subset the
//                    writer emits (all of standard JSON except \u escapes
//                    beyond ASCII), used by tools/golden_diff and tests;
//   * diff_json    — the golden comparison: integer-token fields compare
//                    exactly (counts, cycles, phases must not drift at
//                    all), real-token fields within max(abs_tol, rel_tol *
//                    |golden|) (temperatures may wobble with libm), and
//                    keys named "ms" or ending in "_ms" are skipped
//                    entirely (wall-clock timing is not a result).
//
// Artifacts are also *published* through this module: write_file_atomic /
// AtomicFile / write_json_atomic stage the bytes in a temp file, fsync,
// and rename over the target, so a reader (or a crashed writer) never
// observes a half-written JSON file. The renoc_lint rule
// atomic-artifact-write bans direct ofstream writes of artifacts outside
// these helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace renoc {

/// Streaming JSON emitter with 2-space pretty printing. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("bench").string("fig1");
///   w.key("rows").begin_array();
///   ...
///   w.end_array();
///   w.end_object();   // every begin must be closed; dtor checks
///
/// Values are typed explicitly (real/integer/boolean/string) so the fixed
/// float precision is always a deliberate choice and integer fields stay
/// integer tokens (which diff_json compares exactly).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key; must be inside an object and followed by exactly one
  /// value (or begin_object/begin_array).
  JsonWriter& key(std::string_view k);

  /// Fixed-precision real ("%.*f"). The value must be finite.
  JsonWriter& real(double v, int precision = 6);
  JsonWriter& integer(long long v);
  JsonWriter& uinteger(unsigned long long v);
  JsonWriter& boolean(bool v);
  JsonWriter& string(std::string_view v);

 private:
  enum class Scope { kRoot, kObject, kArray };
  void begin_value();
  void write_escaped(std::string_view v);

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;   ///< no comma before the next value
  bool after_key_ = false;       ///< value continues the current line
  bool done_ = false;            ///< one complete root value written
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  bool num_is_integer = false;  ///< token had no '.', 'e', or 'E'
  std::string str_v;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject, ordered

  /// Object lookup; returns nullptr when absent (or not an object).
  const JsonValue* find(std::string_view k) const;
};

/// Atomically replaces `path` with `content`: the bytes go to a
/// pid-suffixed temp file in the same directory, are fsync'd, and the temp
/// is renamed over the target (then the directory entry is fsync'd). A
/// concurrent reader sees either the old file or the complete new one —
/// never a prefix — and a crash mid-write leaves the old file intact.
/// Throws CheckError on any IO failure.
void write_file_atomic(const std::string& path, std::string_view content);

/// Streaming front end to write_file_atomic: bytes written to stream()
/// are buffered in memory and published atomically by commit(). Without a
/// commit() the destructor discards the buffer and the target is
/// untouched — a bench that dies mid-record leaves no torn artifact.
///
///   AtomicFile out("BENCH_x.json");
///   JsonWriter json(out.stream());
///   ... stream the document ...
///   out.commit();
class AtomicFile {
 public:
  explicit AtomicFile(std::string path) : path_(std::move(path)) {}

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::ostream& stream() { return buffer_; }

  /// Publishes the buffered bytes (write_file_atomic). Call exactly once.
  void commit();

 private:
  std::string path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// Convenience wrapper for whole-document writers: runs `body` against a
/// JsonWriter over an in-memory buffer, then publishes atomically.
void write_json_atomic(const std::string& path,
                       const std::function<void(JsonWriter&)>& body);

/// Parses a complete JSON document. Throws CheckError on malformed input
/// or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file. Throws CheckError on IO or parse errors.
JsonValue parse_json_file(const std::string& path);

struct JsonDiffOptions {
  double abs_tol = 1e-6;   ///< real fields: |a-b| <= max(abs_tol, ...)
  double rel_tol = 5e-4;   ///< ... rel_tol * |golden|
  /// Keys whose subtree is ignored (in addition to the built-in rule that
  /// "ms" and "*_ms" keys are timing and never compared).
  std::vector<std::string> skip_keys;
};

/// True for keys the golden comparison always ignores ("ms", "*_ms").
bool json_key_is_timing(std::string_view key);

/// Structural comparison of `candidate` against `golden`. Returns one
/// human-readable line per difference (empty = match): kind mismatches,
/// missing/extra members, array length mismatches, exact integer-token
/// mismatches, and real-token values outside tolerance.
std::vector<std::string> diff_json(const JsonValue& golden,
                                   const JsonValue& candidate,
                                   const JsonDiffOptions& opt = {});

}  // namespace renoc
