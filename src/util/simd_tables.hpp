// Shared assembly of a per-tier KernelTable from the engine kernel
// templates. Included only by the tier TUs (util/simd_scalar.cpp,
// util/simd_sse2.cpp, util/simd_avx2.cpp) — each instantiates the full
// kernel set for its lane backend under its own instruction-set flags.
#pragma once

#include "ldpc/batch_kernels.hpp"
#include "noc/arb_kernels.hpp"
#include "util/simd.hpp"
#include "util/sparse_kernels.hpp"

namespace renoc::simd::detail {

template <typename I32, typename F64>
KernelTable make_table(Tier tier) {
  KernelTable t{};
  t.tier = tier;
  t.ldpc_batch_vn = &renoc::ldpc_kernels::batch_vn<I32>;
  t.ldpc_batch_cn = &renoc::ldpc_kernels::batch_cn<I32>;
  t.ldpc_batch_hard = &renoc::ldpc_kernels::batch_hard<I32>;
  t.ldpc_batch_syndrome = &renoc::ldpc_kernels::batch_syndrome<I32>;
  t.ldlt_solve_multi = &renoc::sparse_kernels::ldlt_solve_multi<F64>;
  t.ldlt_permuted_solve = &renoc::sparse_kernels::ldlt_permuted_solve<F64>;
  t.noc_want_scan = &renoc::noc_kernels::want_scan<I32>;
  return t;
}

}  // namespace renoc::simd::detail
