// Physical-unit conventions used throughout ReNoC.
//
// The library standardizes on SI base units internally:
//   time        seconds        (cycle counts are separate integer types)
//   length      meters
//   area        square meters
//   power       watts
//   energy      joules
//   temperature degrees Celsius (thermal RC math is affine, so C vs K only
//                                matters for the ambient offset)
//
// Helper constants below convert from the unit scales the DATE'05 paper and
// the HotSpot configuration files use.
#pragma once

#include <cstdint>

namespace renoc {

/// Simulation cycle index (one NoC clock).
using Cycle = std::uint64_t;

namespace units {

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;

/// Seconds per microsecond etc., for readable literals.
inline constexpr double us(double v) { return v * kMicro; }
inline constexpr double ms(double v) { return v * kMilli; }
inline constexpr double ns(double v) { return v * kNano; }

/// Meters per millimeter / micrometer.
inline constexpr double mm(double v) { return v * kMilli; }
inline constexpr double um(double v) { return v * kMicro; }

/// Square meters per square millimeter.
inline constexpr double mm2(double v) { return v * kMilli * kMilli; }

/// Joules per picojoule / nanojoule.
inline constexpr double pJ(double v) { return v * kPico; }
inline constexpr double nJ(double v) { return v * kNano; }

}  // namespace units
}  // namespace renoc
