// Small dense linear-algebra kernel for the thermal RC solver.
//
// The thermal networks in this project are tiny (tens of nodes: one per
// floorplan block per layer plus a handful of package nodes), so a simple
// dense row-major matrix with LU factorization is both adequate and easy to
// verify. No attempt is made at cache blocking or SIMD; correctness and
// clarity win at this size.
#pragma once

#include <cstddef>
#include <vector>

namespace renoc {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access (bounds-checked via RENOC_CHECK in debug-style builds).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = this * x. Requires x.size() == cols().
  std::vector<double> mul(const std::vector<double>& x) const;

  /// C = this * B.
  Matrix mul(const Matrix& b) const;

  /// this += s * B (same shape).
  void add_scaled(const Matrix& b, double s);

  /// Maximum absolute element.
  double max_abs() const;

  /// True if the matrix equals its transpose to within tol.
  bool is_symmetric(double tol) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Factor once, solve many times — the transient thermal solver reuses one
/// factorization of (C/dt + G) for every backward-Euler step.
class LuFactorization {
 public:
  /// Factors `a`. Throws renoc::CheckError if `a` is not square or is
  /// numerically singular.
  explicit LuFactorization(const Matrix& a);

  /// Solves A x = b. Requires b.size() == n().
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves in place (x is b on entry, solution on exit). Reuses an
  /// internal scratch buffer for the row permutation, so no allocation
  /// happens after the first call; not thread-safe, like the rest of the
  /// library.
  void solve_in_place(std::vector<double>& x) const;

  /// Blocked multi-RHS solve: `x` holds `nrhs` right-hand sides as a
  /// row-major n x nrhs block (RHS j's component i at x[i * nrhs + j]) and
  /// holds the solutions on exit. One traversal of the factor serves all
  /// columns; each column performs exactly the arithmetic of
  /// solve_in_place in the same order, so column j is bit-identical to a
  /// lone solve of that column (the property AdaptivePolicy's batched
  /// lookahead relies on for sub-64-node networks, where the thermal
  /// solvers keep the dense backend).
  void solve_multi(std::vector<double>& x, int nrhs) const;

  std::size_t n() const { return n_; }

  /// Sign-adjusted product of U's diagonal (the determinant).
  double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;                  // combined L (unit diagonal) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  mutable std::vector<double> scratch_;        // permuted rhs, reused per solve
  mutable std::vector<double> scratch_multi_;  // multi-RHS workspace
};

}  // namespace renoc
