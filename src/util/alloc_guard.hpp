// Steady-state allocation guard.
//
// The engine contract established by PRs 3–5 is that every warmed hot path
// (Fabric::step, MinSumDecoder::decode_into, MigrationThermalRuntime::run,
// the SparseLdlt solves) performs ZERO heap allocations. The four micro
// benches used to prove this with four private copies of a counting
// operator new; this header is that counter promoted to a subsystem, so
// unit tests can pin the invariant in every CI configuration (Debug,
// Release, and all sanitizer builds) instead of only at bench time.
//
// How interposition works: alloc_guard.cpp defines replacement
// operator new/delete — guarded by the RENOC_ALLOC_GUARD build option —
// in the SAME translation unit as totals()/instrumented(). A binary that
// references the guard API therefore pulls the replacement operators out
// of the static library, and a binary that does not is left completely
// untouched. Scalar and array forms are counted; over-aligned forms fall
// through to the default operators and go uncounted (none of the guarded
// paths are over-aligned).
//
// Usage:
//
//   warmed_path();                     // warm caches / high-water marks
//   AllocGuard guard;
//   warmed_path();
//   guard.check_zero("warmed_path");   // throws CheckError on any alloc
//
// When the build option is off, instrumented() returns false, counters
// stay zero, and check_zero() is a no-op — callers that require a real
// measurement should skip (tests) or report "uninstrumented" (benches).
#pragma once

#include <cstdint>

namespace renoc {

/// Cumulative interposition counters since process start.
struct AllocTotals {
  std::int64_t count = 0;  ///< operator new / new[] calls
  std::int64_t bytes = 0;  ///< bytes requested by those calls
};

namespace alloc_guard {

/// True when the replacement operator new/delete are compiled in
/// (RENOC_ALLOC_GUARD build option) and linked into this binary.
bool instrumented();

/// Current cumulative counters (zero when not instrumented).
AllocTotals totals();

}  // namespace alloc_guard

/// RAII scope recorder: snapshots the counters at construction and reports
/// the allocation count/bytes observed since.
class AllocGuard {
 public:
  AllocGuard();

  /// Allocations observed since construction.
  std::int64_t count() const;
  /// Bytes requested by those allocations.
  std::int64_t bytes() const;

  /// Throws CheckError when the scope allocated and the binary is
  /// instrumented; silently passes otherwise. `what` names the guarded
  /// path in the failure message.
  void check_zero(const char* what) const;

 private:
  AllocTotals start_;
};

}  // namespace renoc
