#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace renoc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace renoc
