// Crash-safe sweep service: the one orchestration layer behind the repo's
// three Monte-Carlo/scenario harnesses (ldpc/ber_harness, noc/sweep_harness,
// core/experiment_sweep).
//
// Before this module each harness hand-rolled the same contract — nested
// axis loops, a stateless per-scenario RNG from (seed, scenario index), an
// atomic job cursor, per-worker state, an identity (or commutative-sum)
// merge — and none of them could survive a crash, split across processes,
// or resume a partial run. util/sweep factors that contract out once and
// layers the robustness on top:
//
//   * scenario indexing — decode_scenario_index maps a flat index to
//     row-major axis digits (outermost axis first, last axis fastest), the
//     exact order every harness's nested loops enumerate; any cell is
//     reachable in O(1) without walking the grid before it;
//   * stateless RNG — scenario_rng(seed, i) is the shared
//     derive_stream_seed idiom, so a scenario's stream never depends on
//     which worker, shard, process, or resume attempt runs it;
//   * sharding — shard i of n owns scenario indices {s : s % n == i}. A
//     stride (not a block split) keeps every shard's workload statistically
//     identical, and because records are keyed by scenario index the merge
//     of any N-way split is byte-identical to a 1-shard run;
//   * checkpointing — run_sweep_shard periodically flushes the completed
//     contiguous prefix of its scenarios to an append-only segment file
//     (schema/version header, scenario-range manifest, payload checksum),
//     published with util/json's atomic temp+fsync+rename writer, so a
//     SIGKILL at any instant leaves only whole, valid segments;
//   * resume — a restarted shard loads its segments, validates them
//     (truncated, bit-flipped, wrong-schema, overlapping-range, and
//     stale-config files are rejected with a CheckError naming the defect,
//     never silently merged), and re-enumerates only the missing
//     scenarios;
//   * conservation — every merge resolves each enumerated scenario as
//     exactly one of completed/failed/skipped and pins
//     completed + failed + skipped == enumerated (the same discipline the
//     degraded NoC applies to packet delivery).
//
// Results travel as fixed-width std::uint64_t records (doubles bit-packed
// via pack_double), so "byte-identical" is meaningful across processes and
// JSON round trips: the checkpoint files store the words as hex strings,
// never as JSON numbers, because the parser holds numbers as double and
// would silently round a 64-bit payload.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace renoc::sweep {

// ---------------------------------------------------------------------------
// Scenario indexing
// ---------------------------------------------------------------------------

/// Number of scenarios a row-major axis shape enumerates (product of the
/// axis sizes). Every axis must be >= 1; the product must fit int64.
std::int64_t axis_product(const std::vector<std::int64_t>& shape);

/// Decodes flat `index` into per-axis digits, row-major with the LAST axis
/// fastest — the order of every harness's nested loops (outermost loop =
/// first axis). `digits` is caller-owned and resized to shape.size(), so a
/// worker loop decodes with zero allocations after the first call.
void decode_scenario_index(std::int64_t index,
                           const std::vector<std::int64_t>& shape,
                           std::vector<std::int64_t>& digits);

/// Inverse of decode_scenario_index. digits[k] must be in [0, shape[k]).
std::int64_t encode_scenario_index(const std::vector<std::int64_t>& digits,
                                   const std::vector<std::int64_t>& shape);

// ---------------------------------------------------------------------------
// Stateless per-scenario RNG
// ---------------------------------------------------------------------------

/// The RNG stream scenario `scenario_index` uses: a stateless SplitMix64
/// derivation from (seed, index), shared by all three harnesses. O(1), so
/// any scenario replays in isolation and shards never exchange RNG state.
/// Chain derive_stream_seed to fold more coordinates (ber_block_rng folds
/// point then block).
Rng scenario_rng(std::uint64_t seed, std::int64_t scenario_index);

// ---------------------------------------------------------------------------
// Config-validation and worker boilerplate (hoisted from the harnesses)
// ---------------------------------------------------------------------------

/// Axis non-emptiness check with the pinned shared message
/// "sweep needs at least one <axis>".
void require_axis(bool non_empty, const char* axis);

/// Thread-count check with the pinned shared message
/// "sweep threads must be >= 1, got <threads>".
void require_threads(int threads);

/// Workers actually spawned for `jobs` jobs: min(threads, jobs), at least 1.
int clamp_workers(int threads, std::int64_t jobs);

/// Runs body(0..workers-1) on `workers` threads (inline when workers == 1,
/// so single-threaded sweeps stay debuggable and allocation-free).
void run_workers(int workers, const std::function<void(int)>& body);

/// The scenario-per-worker loop shared by noc/sweep_harness and
/// core/experiment_sweep: workers pull indices from an atomic cursor and
/// run body(i) for each; the first exception aborts the remaining work and
/// is rethrown after the join (an exception escaping a worker thread would
/// std::terminate the process).
void parallel_for_scenarios(std::int64_t count, int threads,
                            const std::function<void(std::int64_t)>& body);

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// Shard `index` of `count`: owns scenario indices {s : s % count == index}.
struct Shard {
  int index = 0;
  int count = 1;

  void validate() const;
  bool owns(std::int64_t scenario) const {
    return scenario % count == index;
  }
  /// Scenarios this shard owns out of `enumerated`.
  std::int64_t owned_count(std::int64_t enumerated) const;
  /// The pos-th owned scenario (ascending): index + pos * count.
  std::int64_t owned_at(std::int64_t pos) const {
    return static_cast<std::int64_t>(index) + pos * count;
  }
};

// ---------------------------------------------------------------------------
// Records and specs
// ---------------------------------------------------------------------------

/// How an enumerated scenario resolved. Every merge classifies every
/// scenario as exactly one of these (the conservation law).
enum class Outcome { kCompleted = 0, kFailed = 1, kSkipped = 2 };

const char* to_string(Outcome o);

/// One scenario's result: `record_words` raw 64-bit words for kCompleted,
/// empty for kFailed/kSkipped. Doubles ride as pack_double bit patterns so
/// equality is bitwise, not approximate.
struct ScenarioRecord {
  std::int64_t scenario = 0;
  Outcome outcome = Outcome::kSkipped;
  std::vector<std::uint64_t> words;
};

/// Bit-exact double <-> uint64 transport (memcpy of the IEEE-754 pattern).
std::uint64_t pack_double(double v);
double unpack_double(std::uint64_t bits);

/// mix64-chained config fingerprint. Harness adapters fold every field
/// that determines scenario results (axes, seed, methodology knobs —
/// never thread/shard counts, which must not change results) so a resumed
/// checkpoint written under a different config is rejected, not merged.
class DigestBuilder {
 public:
  DigestBuilder& fold(std::uint64_t v);
  DigestBuilder& fold_int(long long v) {
    return fold(static_cast<std::uint64_t>(v));
  }
  DigestBuilder& fold_real(double v) { return fold(pack_double(v)); }
  DigestBuilder& fold_string(std::string_view s);
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0x243f6a8885a308d3ULL;  // pi fraction: fixed origin
};

/// A generic sweep: how many scenarios exist, the record shape, the config
/// fingerprint, and a runner factory. make_runner() is called once per
/// worker (the setup-hoisting point: decoders, fabrics, scratch buffers
/// live here, outside the per-scenario path); the returned closure runs
/// one scenario into a caller-provided word buffer of record_words words.
struct SweepSpec {
  std::int64_t enumerated = 0;
  int record_words = 0;
  std::uint64_t config_digest = 0;
  std::function<std::function<void(std::int64_t, std::uint64_t*)>()>
      make_runner;

  void validate() const;
};

/// Conservation counters for one merged sweep.
struct SweepCounts {
  std::int64_t enumerated = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t skipped = 0;

  bool conserved() const {
    return completed + failed + skipped == enumerated;
  }
};

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

/// Where a shard's checkpoint segments live. An empty directory disables
/// checkpointing. Segments are
///   <directory>/<tag>.shard<i>of<n>.seg<k>.json
/// with k dense from 0: a shard writes seg k only after seg k-1 exists, so
/// discovery probes sequentially and a crash can never leave a gap.
struct CheckpointConfig {
  std::string directory;
  std::string tag = "sweep";
  /// Completed scenarios per flushed segment (the checkpoint period).
  int every = 16;

  bool enabled() const { return !directory.empty(); }
};

/// Exit code of a crash injected via ShardRunOptions::crash_after_segments
/// (distinct from 0/1 so the driver can tell an injected crash from an
/// honest failure in tests).
inline constexpr int kCrashExitCode = 86;

struct ShardRunOptions {
  Shard shard{};
  int threads = 1;
  CheckpointConfig checkpoint{};
  /// true: a throwing scenario becomes a kFailed record and the sweep
  /// continues (service mode). false: first exception aborts and rethrows
  /// (the legacy harness contract).
  bool capture_failures = false;
  /// >= 0: abandon the run (no tail flush — as a SIGKILL would) after this
  /// many not-yet-checkpointed scenarios have been claimed. Test hook for
  /// kill-at-every-boundary resume sweeps; deterministic with threads == 1.
  std::int64_t stop_after = -1;
  /// >= 0: std::_Exit(kCrashExitCode) right after this run flushes its
  /// n-th segment — a real process death with its checkpoint files left
  /// behind. Used by tools/renoc_sweep --inject-crash and the CI
  /// sweep-resume job.
  int crash_after_segments = -1;
};

struct ShardRunResult {
  /// Owned scenarios that resolved, ascending by scenario index. Complete
  /// runs have owned_count(enumerated) records; a stop_after run returns
  /// only what finished.
  std::vector<ScenarioRecord> records;
  std::int64_t resumed = 0;     ///< records recovered from checkpoints
  int segments_loaded = 0;      ///< valid segments found on disk
  int segments_written = 0;     ///< segments flushed by this run
};

/// Path of segment `segment` of `shard` under `ckpt` (exposed for tests
/// that corrupt specific files).
std::string checkpoint_segment_path(const CheckpointConfig& ckpt,
                                    const Shard& shard, int segment);

/// Loads and validates every existing segment of `shard`, in segment
/// order. Throws CheckError naming the defect for: unreadable/truncated/
/// malformed files, wrong schema or version, shard-geometry or
/// record-shape mismatches, config-digest mismatches (stale config),
/// checksum mismatches (bit flips), malformed records, and overlapping
/// scenario ranges across segments. Returns the recovered records,
/// ascending; *segments_seen gets the number of segments consumed.
std::vector<ScenarioRecord> load_shard_checkpoints(
    const SweepSpec& spec, const CheckpointConfig& ckpt, const Shard& shard,
    int* segments_seen);

/// Runs (or resumes) one shard. With checkpointing enabled, previously
/// flushed scenarios are validated and skipped, new completions are
/// flushed every `checkpoint.every` scenarios from the worker loop, and a
/// final partial segment is flushed on normal completion.
ShardRunResult run_sweep_shard(const SweepSpec& spec,
                               const ShardRunOptions& opts);

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

/// One record per enumerated scenario (missing ones materialized as
/// kSkipped), the conservation counters, and the explicit list of
/// scenarios that did not complete or fail (the incomplete_scenarios
/// record every artifact carries).
struct MergeResult {
  std::vector<ScenarioRecord> records;
  SweepCounts counts;
  std::vector<std::int64_t> incomplete;
};

/// Identity merge of per-shard record sets: records are keyed by scenario
/// index, so shard order cannot matter. A scenario reported twice is an
/// overlap error (shards own disjoint stride classes).
MergeResult merge_shard_records(
    std::int64_t enumerated,
    const std::vector<std::vector<ScenarioRecord>>& shards);

/// Loads and validates all shards' checkpoint segments under `ckpt` for a
/// `shard_count`-way split and merges them. Shards with no segments
/// contribute nothing (their scenarios resolve as kSkipped).
MergeResult merge_checkpoints(const SweepSpec& spec,
                              const CheckpointConfig& ckpt, int shard_count);

}  // namespace renoc::sweep
