// Deterministic pseudo-random number generation.
//
// Every stochastic component in ReNoC (channel noise, simulated annealing,
// traffic jitter) takes an explicit Rng so experiments are reproducible and
// tests can pin seeds. The generator is xoshiro256**, which is small, fast,
// and has no measurable bias for the quantities we draw.
#pragma once

#include <cstddef>
#include <cstdint>

namespace renoc {

/// SplitMix64 finalizer — the avalanche mixer behind Rng's own seeding,
/// exposed so harnesses can hash/mix deterministically with one shared
/// definition.
std::uint64_t mix64(std::uint64_t z);

/// Seed for an independent stream keyed by (seed, index):
/// mix64(seed + golden_ratio * (index + 1)). Chain it to fold more
/// coordinates (ldpc/ber_harness folds point then block). Stateless and
/// O(1), so sweeps never materialize seed tables and any element can be
/// replayed in isolation.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index);

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform container index in [0, size): next_below() typed for the
  /// ubiquitous `vec[rng.next_index(vec.size())]` pattern.
  std::size_t next_index(std::size_t size);

  /// Standard normal variate (Box–Muller; caches the second value).
  double next_gaussian();

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p);

  /// Derives an independent stream for a named subcomponent.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace renoc
