#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace renoc {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  RENOC_CHECK_MSG(r < rows_ && c < cols_,
                  "index (" << r << "," << c << ") out of " << rows_ << "x"
                            << cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  RENOC_CHECK_MSG(r < rows_ && c < cols_,
                  "index (" << r << "," << c << ") out of " << rows_ << "x"
                            << cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::mul(const std::vector<double>& x) const {
  RENOC_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::mul(const Matrix& b) const {
  RENOC_CHECK(cols_ == b.rows_);
  Matrix out(rows_, b.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < b.cols_; ++c) out(r, c) += a * b(k, c);
    }
  }
  return out;
}

void Matrix::add_scaled(const Matrix& b, double s) {
  RENOC_CHECK(rows_ == b.rows_ && cols_ == b.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * b.data_[i];
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

LuFactorization::LuFactorization(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  RENOC_CHECK_MSG(a.rows() == a.cols(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: find the largest magnitude in column k at/below row k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    RENOC_CHECK_MSG(best > 0.0, "singular matrix in LU at column " << k);
    if (pivot != k) {
      for (std::size_t c = 0; c < n_; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double f = lu_(r, k) * inv_piv;
      lu_(r, k) = f;  // store L factor in place
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solve_in_place(x);
  return x;
}

void LuFactorization::solve_in_place(std::vector<double>& x) const {
  RENOC_CHECK(x.size() == n_);
  // Apply the row permutation into the reusable scratch buffer.
  scratch_.resize(n_);
  std::vector<double>& y = scratch_;
  for (std::size_t i = 0; i < n_; ++i) y[i] = x[perm_[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * y[j];
    y[ii] = acc / lu_(ii, ii);
  }
  std::copy(y.begin(), y.end(), x.begin());
}

void LuFactorization::solve_multi(std::vector<double>& x, int nrhs) const {
  RENOC_CHECK_MSG(nrhs >= 1, "need at least one right-hand side");
  RENOC_CHECK_MSG(x.size() == n_ * static_cast<std::size_t>(nrhs),
                  "multi-RHS block size " << x.size() << " != n*nrhs = "
                                          << n_ * static_cast<std::size_t>(
                                                 nrhs));
  const std::size_t w = static_cast<std::size_t>(nrhs);
  scratch_multi_.resize(n_ * w);
  std::vector<double>& y = scratch_multi_;
  // Row permutation moves whole rows (nrhs contiguous values per gather).
  // Each per-column operation below replicates solve_in_place's arithmetic
  // in the same order, keeping columns bit-identical to lone solves.
  for (std::size_t i = 0; i < n_; ++i)
    std::copy_n(&x[perm_[i] * w], w, &y[i * w]);
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 0; i < n_; ++i) {
    double* yi = &y[i * w];
    for (std::size_t j = 0; j < i; ++j) {
      const double l = lu_(i, j);
      const double* yj = &y[j * w];
      for (std::size_t c = 0; c < w; ++c) yi[c] -= l * yj[c];
    }
  }
  // Back substitution with U.
  for (std::size_t ii = n_; ii-- > 0;) {
    double* yi = &y[ii * w];
    for (std::size_t j = ii + 1; j < n_; ++j) {
      const double u = lu_(ii, j);
      const double* yj = &y[j * w];
      for (std::size_t c = 0; c < w; ++c) yi[c] -= u * yj[c];
    }
    const double piv = lu_(ii, ii);
    for (std::size_t c = 0; c < w; ++c) yi[c] /= piv;
  }
  std::copy(y.begin(), y.end(), x.begin());
}

double LuFactorization::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

}  // namespace renoc
