#include "util/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace renoc {

// ---------------------------------------------------------------------------
// Atomic publication
// ---------------------------------------------------------------------------

namespace {

/// POSIX close that never masks the primary error path.
void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  // Same directory as the target, so the final rename cannot cross a
  // filesystem boundary; pid-suffixed so concurrent writers (e.g. sweep
  // shards flushing into one checkpoint directory) never share a temp.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  RENOC_CHECK_MSG(fd >= 0, "atomic write: cannot create " << tmp << ": "
                                                          << std::strerror(errno));
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close_quietly(fd);
      ::unlink(tmp.c_str());
      RENOC_FAIL("atomic write: write to " << tmp << " failed: "
                                           << std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  // Data must be durable *before* the rename publishes the name — rename
  // first and a crash could legally expose an empty file under `path`.
  if (::fsync(fd) != 0) {
    const int err = errno;
    close_quietly(fd);
    ::unlink(tmp.c_str());
    RENOC_FAIL("atomic write: fsync " << tmp << " failed: "
                                      << std::strerror(err));
  }
  close_quietly(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    RENOC_FAIL("atomic write: rename to " << path << " failed: "
                                          << std::strerror(err));
  }
  // Durable directory entry (best effort: some filesystems refuse
  // directory fsync; the rename itself is already atomic for readers).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    close_quietly(dfd);
  }
}

void AtomicFile::commit() {
  RENOC_CHECK_MSG(!committed_, "AtomicFile: double commit of " << path_);
  committed_ = true;
  write_file_atomic(path_, buffer_.str());
}

void write_json_atomic(const std::string& path,
                       const std::function<void(JsonWriter&)>& body) {
  std::ostringstream buffer;
  {
    JsonWriter w(buffer);
    body(w);
  }
  write_file_atomic(path, buffer.str());
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() {
  // A half-written artifact is a bug in the bench, not a recoverable
  // condition — but throwing from a destructor terminates, so just flag
  // the file itself as malformed.
  if (!stack_.empty()) os_ << "\n<unterminated json>\n";
}

void JsonWriter::begin_value() {
  RENOC_CHECK_MSG(!done_, "json: value after the root value closed");
  if (after_key_) {
    after_key_ = false;
    return;  // continue the "key": line
  }
  RENOC_CHECK_MSG(stack_.empty() || stack_.back() != Scope::kObject,
                  "json: object member needs key() first");
  if (!stack_.empty()) {
    if (!first_in_scope_) os_ << ",";
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  RENOC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                  "json: key() outside an object");
  RENOC_CHECK_MSG(!after_key_, "json: key() twice without a value");
  if (!first_in_scope_) os_ << ",";
  os_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  first_in_scope_ = false;
  write_escaped(k);  // keys share the string escaping
  os_ << ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  os_ << "{";
  stack_.push_back(Scope::kObject);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RENOC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject &&
                      !after_key_,
                  "json: unbalanced end_object()");
  stack_.pop_back();
  if (!first_in_scope_) {
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << "}";
  first_in_scope_ = false;
  if (stack_.empty()) {
    os_ << "\n";
    done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  os_ << "[";
  stack_.push_back(Scope::kArray);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RENOC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                  "json: unbalanced end_array()");
  stack_.pop_back();
  if (!first_in_scope_) {
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << "]";
  first_in_scope_ = false;
  if (stack_.empty()) {
    os_ << "\n";
    done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::real(double v, int precision) {
  RENOC_CHECK_MSG(std::isfinite(v), "json: non-finite real");
  RENOC_CHECK(precision >= 0 && precision <= 17);
  begin_value();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::integer(long long v) {
  begin_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::uinteger(unsigned long long v) {
  begin_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::boolean(bool v) {
  begin_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::string(std::string_view v) {
  begin_value();
  write_escaped(v);
  return *this;
}

void JsonWriter::write_escaped(std::string_view v) {
  os_ << '"';
  for (char c : v) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      case '\r': os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    RENOC_CHECK_MSG(pos_ == text_.size(), "json parse: trailing garbage");
    return v;
  }

 private:
  // Containers nest by recursion, so un-bounded depth turns a hostile (or
  // merely truncated-and-repaired) document into a stack overflow — which
  // no CheckError can catch. 256 is far beyond any record the repo writes
  // (benches nest 4-5 deep) while keeping worst-case stack use trivial.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth_(depth) {
      RENOC_CHECK_MSG(++depth_ <= kMaxDepth,
                      "json parse: nesting deeper than " << kMaxDepth);
    }
    ~DepthGuard() { --depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    int& depth_;
  };

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    RENOC_CHECK_MSG(pos_ < text_.size(), "json parse: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    RENOC_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                    "json parse: expected '" + std::string(1, c) + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str_v = parse_string();
        return v;
      }
      case 't': {
        RENOC_CHECK_MSG(consume_literal("true"), "json parse: bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = true;
        return v;
      }
      case 'f': {
        RENOC_CHECK_MSG(consume_literal("false"), "json parse: bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = false;
        return v;
      }
      case 'n': {
        RENOC_CHECK_MSG(consume_literal("null"), "json parse: bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard guard(depth_);
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(depth_);
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      RENOC_CHECK_MSG(pos_ < text_.size(), "json parse: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      RENOC_CHECK_MSG(pos_ < text_.size(), "json parse: bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          RENOC_CHECK_MSG(pos_ + 4 <= text_.size(), "json parse: bad \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              RENOC_FAIL("json parse: bad \\u digit");
          }
          RENOC_CHECK_MSG(code < 0x80,
                          "json parse: non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: RENOC_FAIL("json parse: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        fractional = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
          ++pos_;
      } else {
        break;
      }
    }
    RENOC_CHECK_MSG(pos_ > start && text_[start] != '.',
                    "json parse: bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num_is_integer = !fractional;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.num_v = std::strtod(token.c_str(), &end);
    RENOC_CHECK_MSG(end != nullptr && *end == '\0',
                    "json parse: bad number token '" + token + "'");
    // strtod turns out-of-range literals (1e999) into ±inf without
    // failing; every consumer assumes finite numbers, so reject here.
    RENOC_CHECK_MSG(std::isfinite(v.num_v),
                    "json parse: number token '" + token +
                        "' overflows double");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : members)
    if (key == k) return &value;
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RENOC_CHECK_MSG(in.good(), "cannot read json file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

// ---------------------------------------------------------------------------
// Golden comparison
// ---------------------------------------------------------------------------

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

bool key_skipped(std::string_view key, const JsonDiffOptions& opt) {
  if (json_key_is_timing(key)) return true;
  for (const std::string& s : opt.skip_keys)
    if (key == s) return true;
  return false;
}

void diff_rec(const JsonValue& golden, const JsonValue& candidate,
              const JsonDiffOptions& opt, const std::string& path,
              std::vector<std::string>& out) {
  if (golden.kind != candidate.kind) {
    out.push_back(path + ": kind " + kind_name(candidate.kind) +
                  " != golden " + kind_name(golden.kind));
    return;
  }
  switch (golden.kind) {
    case JsonValue::Kind::kNull:
      return;
    case JsonValue::Kind::kBool:
      if (golden.bool_v != candidate.bool_v)
        out.push_back(path + ": " + (candidate.bool_v ? "true" : "false") +
                      " != golden " + (golden.bool_v ? "true" : "false"));
      return;
    case JsonValue::Kind::kString:
      if (golden.str_v != candidate.str_v)
        out.push_back(path + ": \"" + candidate.str_v + "\" != golden \"" +
                      golden.str_v + "\"");
      return;
    case JsonValue::Kind::kNumber: {
      if (golden.num_is_integer && candidate.num_is_integer) {
        if (golden.num_v != candidate.num_v) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "%s: %.0f != golden %.0f (integer fields compare "
                        "exactly)",
                        path.c_str(), candidate.num_v, golden.num_v);
          out.push_back(buf);
        }
        return;
      }
      const double tol = std::max(opt.abs_tol,
                                  opt.rel_tol * std::fabs(golden.num_v));
      if (!(std::fabs(golden.num_v - candidate.num_v) <= tol)) {
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "%s: %.9g != golden %.9g (|diff| %.3g > tol %.3g)",
                      path.c_str(), candidate.num_v, golden.num_v,
                      std::fabs(golden.num_v - candidate.num_v), tol);
        out.push_back(buf);
      }
      return;
    }
    case JsonValue::Kind::kArray: {
      if (golden.items.size() != candidate.items.size()) {
        out.push_back(path + ": length " +
                      std::to_string(candidate.items.size()) + " != golden " +
                      std::to_string(golden.items.size()));
        return;
      }
      for (std::size_t i = 0; i < golden.items.size(); ++i)
        diff_rec(golden.items[i], candidate.items[i], opt,
                 path + "[" + std::to_string(i) + "]", out);
      return;
    }
    case JsonValue::Kind::kObject: {
      for (const auto& [key, gv] : golden.members) {
        if (key_skipped(key, opt)) continue;
        const JsonValue* cv = candidate.find(key);
        if (cv == nullptr) {
          out.push_back(path + "." + key + ": missing from candidate");
          continue;
        }
        diff_rec(gv, *cv, opt, path + "." + key, out);
      }
      for (const auto& [key, cv] : candidate.members) {
        if (key_skipped(key, opt)) continue;
        if (golden.find(key) == nullptr)
          out.push_back(path + "." + key + ": not in golden");
      }
      return;
    }
  }
}

}  // namespace

bool json_key_is_timing(std::string_view key) {
  if (key == "ms") return true;
  return key.size() > 3 && key.substr(key.size() - 3) == "_ms";
}

std::vector<std::string> diff_json(const JsonValue& golden,
                                   const JsonValue& candidate,
                                   const JsonDiffOptions& opt) {
  std::vector<std::string> out;
  diff_rec(golden, candidate, opt, "$", out);
  return out;
}

}  // namespace renoc
