// LDL^T triangular-sweep kernels, templated over a util/simd f64 lane
// backend and instantiated once per tier in the util/simd_*.cpp TUs.
//
// Both kernels replicate the scalar loops of SparseLdlt exactly:
//
//   - ldlt_solve_multi vectorizes *across RHS columns* (the lanes are
//     columns of the row-major n x w block), so each column performs the
//     scalar solve_in_place arithmetic in the same order and stays
//     bit-identical to a lone solve — the contract AdaptivePolicy's
//     batched-vs-lone score guard in micro_runtime depends on.
//   - ldlt_permuted_solve vectorizes the backward sweep's four independent
//     accumulators; per accumulator the operand order matches the scalar
//     4-way unrolled loop, and no tier enables FMA contraction, so the
//     result is bit-identical across tiers.
#pragma once

#include <cstddef>

namespace renoc::sparse_kernels {

// renoc-hot-begin (multi-RHS and permuted triangular sweeps)

template <typename F>
void ldlt_solve_multi(const int* lp, const int* li, const double* lx,
                      const double* d, double* y, int n, int w) {
  constexpr int W = F::kLanes;
  // Forward: y <- L^-1 y, row k scattered into its strictly-lower rows.
  for (int k = 0; k < n; ++k) {
    const double* yk = y + static_cast<std::ptrdiff_t>(k) * w;
    for (int p = lp[k]; p < lp[k + 1]; ++p) {
      const double l = lx[p];
      double* yi = y + static_cast<std::ptrdiff_t>(li[p]) * w;
      const F lv = F::set1(l);
      int j = 0;
      for (; j + W <= w; j += W) {
        F::storeu(yi + j,
                  F::sub(F::loadu(yi + j), F::mul(lv, F::loadu(yk + j))));
      }
      for (; j < w; ++j) yi[j] -= l * yk[j];
    }
  }
  // Diagonal: y <- D^-1 y.
  for (int k = 0; k < n; ++k) {
    const double dk = d[k];
    double* yk = y + static_cast<std::ptrdiff_t>(k) * w;
    const F dv = F::set1(dk);
    int j = 0;
    for (; j + W <= w; j += W) F::storeu(yk + j, F::div(F::loadu(yk + j), dv));
    for (; j < w; ++j) yk[j] /= dk;
  }
  // Backward: y <- L^-T y.
  for (int k = n - 1; k >= 0; --k) {
    double* yk = y + static_cast<std::ptrdiff_t>(k) * w;
    for (int p = lp[k]; p < lp[k + 1]; ++p) {
      const double l = lx[p];
      const double* yi = y + static_cast<std::ptrdiff_t>(li[p]) * w;
      const F lv = F::set1(l);
      int j = 0;
      for (; j + W <= w; j += W) {
        F::storeu(yk + j,
                  F::sub(F::loadu(yk + j), F::mul(lv, F::loadu(yi + j))));
      }
      for (; j < w; ++j) yk[j] -= l * yi[j];
    }
  }
}

template <typename F>
void ldlt_permuted_solve(const int* lp, const int* li, const double* lx,
                         const double* inv_d, double* y, int n) {
  constexpr int W = F::kLanes;
  static_assert(W >= 1 && W <= 4 && 4 % W == 0,
                "backward sweep packs 4 accumulators into 4/W registers");
  constexpr int K = 4 / W;
  // Forward: y <- L^-1 y.
  for (int k = 0; k < n; ++k) {
    const double yk = y[k];
    for (int p = lp[k]; p < lp[k + 1]; ++p) y[li[p]] -= lx[p] * yk;
  }
  // Fused D^-1 + backward L^T sweep: the scalar loop's four independent
  // accumulators a0..a3 become K vectors of W lanes; lane j of vector r is
  // exactly the scalar accumulator a[r*W + j], fed by the same operands in
  // the same order. Remainder entries fold into accumulator 0, and the
  // final reduction keeps the scalar's (a0+a1)+(a2+a3) association.
  for (int k = n - 1; k >= 0; --k) {
    const int p1 = lp[k + 1];
    F acc[K];
    for (int reg = 0; reg < K; ++reg) acc[reg] = F::zero();
    int p = lp[k];
    for (; p + 3 < p1; p += 4) {
      for (int reg = 0; reg < K; ++reg) {
        acc[reg] = F::add(acc[reg], F::mul(F::loadu(lx + p + reg * W),
                                           F::gather(y, li + p + reg * W)));
      }
    }
    double a[4];
    for (int reg = 0; reg < K; ++reg) F::storeu(a + reg * W, acc[reg]);
    for (; p < p1; ++p) a[0] += lx[p] * y[li[p]];
    y[k] = y[k] * inv_d[k] - ((a[0] + a[1]) + (a[2] + a[3]));
  }
}

// renoc-hot-end

}  // namespace renoc::sparse_kernels
