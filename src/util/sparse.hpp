// Sparse linear algebra for the thermal RC solver.
//
// The HotSpot-style networks built by build_rc_network() are structurally
// sparse: every grid node couples to at most seven neighbours (four lateral,
// up to two vertical, one periphery), and only a handful of package nodes
// (sink center, trapezoids, convection) act as high-degree hubs. A dense LU
// over such a matrix is O(n^3) and dominates wall-clock from a few hundred
// nodes on; the CSR + sparse-LDL^T pair below brings factor and solve down
// to roughly O(n * b^2) and O(nnz(L)) where b is the reordered bandwidth of
// the grid part (a few grid rows), independent of how the hubs fan out.
//
// Assembly is triplet-based (duplicate entries sum, matching the stamping
// idiom of circuit assembly), the factorization is an up-looking LDL^T with
// an exact elimination-tree symbolic pass, and the default ordering is a
// reverse Cuthill-McKee pass over the low-degree grid nodes with the hub
// nodes pushed last so their dense rows cannot poison the band.
#pragma once

#include <cstddef>
#include <vector>

#include "util/aligned.hpp"
#include "util/matrix.hpp"
#include "util/simd.hpp"

namespace renoc {

/// One (row, col, value) contribution to a sparse matrix. Duplicate
/// coordinates are summed during assembly, so callers can stamp element
/// contributions independently.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Immutable sparse matrix in compressed sparse row (CSR) form.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Assembles a rows x cols matrix from triplets, summing duplicates.
  /// Entries that sum to zero are kept (they are structural nonzeros).
  static SparseMatrix from_triplets(int rows, int cols,
                                    const std::vector<Triplet>& triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Number of stored entries.
  int nnz() const { return static_cast<int>(col_idx_.size()); }

  /// Value at (r, c); zero when no entry is stored there.
  double at(int r, int c) const;

  /// y = this * x. Requires x.size() == cols().
  std::vector<double> mul(const std::vector<double>& x) const;

  /// y = this * x into a caller-provided buffer (no allocation).
  void mul_into(const std::vector<double>& x, std::vector<double>& y) const;

  /// Returns a copy with d[i] added to diagonal entry (i, i). Every
  /// diagonal entry must already be stored (true for any conductance or
  /// step matrix assembled by stamping).
  SparseMatrix plus_diagonal(const std::vector<double>& d) const;

  /// Densifies (tests and the dense cross-check path).
  Matrix to_dense() const;

  /// True if the sparsity pattern and values are symmetric to within tol.
  bool is_symmetric(double tol) const;

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return vals_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_;   // size rows_ + 1
  std::vector<int> col_idx_;   // size nnz, ascending within each row
  std::vector<double> vals_;   // size nnz
};

/// Fill-reducing ordering for stack-structured RC networks: reverse
/// Cuthill-McKee over the nodes of degree <= `hub_degree`, then the hub
/// nodes (degree > hub_degree) appended last in ascending-degree order.
/// Returns perm with perm[k] = original index eliminated at step k.
///
/// Grid nodes in the HotSpot stack have degree <= 8, while the sink center
/// couples to every under-die spreader node; eliminating such hubs last
/// keeps the factor's fill confined to the (small) trailing rows.
std::vector<int> bandwidth_reducing_ordering(const SparseMatrix& a,
                                             int hub_degree = 8);

/// Minimum-degree ordering on the elimination graph (quotient-graph form
/// with element absorption, deterministic smallest-index tie-breaking).
/// On the refined HotSpot stacks this roughly halves nnz(L) versus the
/// RCM ordering above — the difference between a band-shaped factor and a
/// nested-bisection-like one — which directly halves triangular-solve
/// work. Ordering cost is higher than RCM's, so it is worth paying when a
/// factorization is reused for many solves (the orbit co-simulation
/// engine of core/thermal_runtime factors once and solves tens of
/// thousands of times); bandwidth_reducing_ordering remains the default
/// for factor-dominated uses.
std::vector<int> minimum_degree_ordering(const SparseMatrix& a);

/// Sparse LDL^T factorization of a symmetric positive-definite matrix:
/// P A P^T = L D L^T with unit-diagonal L. Factor once, solve many times.
class SparseLdlt {
 public:
  /// Factors `a` using `perm` (empty = bandwidth_reducing_ordering(a)).
  /// Throws renoc::CheckError if `a` is not square, `perm` is not a valid
  /// permutation, or a pivot is not strictly positive (matrix singular or
  /// not positive definite). Only the upper triangle of `a` in the
  /// permuted order is read; `a` is assumed symmetric.
  explicit SparseLdlt(const SparseMatrix& a, std::vector<int> perm = {});

  /// Solves A x = b. Requires b.size() == n().
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves in place (x is b on entry, the solution on exit). Uses an
  /// internal scratch buffer, so it performs no allocation after the first
  /// call; like the rest of the library this is not thread-safe.
  void solve_in_place(std::vector<double>& x) const;

  /// Blocked multi-RHS solve: `x` holds `nrhs` right-hand sides as a
  /// row-major n x nrhs block (RHS j's component i at x[i * nrhs + j]) and
  /// holds the solutions on exit. One traversal of the factor serves all
  /// nrhs columns, amortizing the L/L^T index walk; each column performs
  /// exactly the arithmetic of solve_in_place in the same order, so column
  /// j of the result is bit-identical to a lone solve of that column (the
  /// property AdaptivePolicy's batched lookahead relies on).
  void solve_multi(std::vector<double>& x, int nrhs) const;

  /// solve_multi through an explicit SIMD kernel table instead of the
  /// active one — the test/bench hook that lets one binary exercise every
  /// compiled tier (see util/simd). Tiers are bit-identical by contract.
  void solve_multi_with(const simd::KernelTable& kernels,
                        std::vector<double>& x, int nrhs) const;

  /// Streamed solve in permuted coordinates for hot loops that keep their
  /// state in elimination order (see the co-sim engine in
  /// core/thermal_runtime): y[k] holds component permutation()[k] of the
  /// right-hand side on entry and of the solution on exit. Skips both
  /// permutation passes and fuses D^{-1} (as a precomputed reciprocal)
  /// into an unrolled backward sweep, so results drift from solve() only
  /// in the last bits (~1e-15 relative; the engine's reference-agreement
  /// test pins the accumulated effect).
  void solve_permuted_in_place(double* y) const;

  /// solve_permuted_in_place through an explicit SIMD kernel table (same
  /// test/bench hook as solve_multi_with).
  void solve_permuted_in_place_with(const simd::KernelTable& kernels,
                                    double* y) const;

  /// The fill-reducing permutation in use: permutation()[k] = original
  /// index eliminated at step k.
  const std::vector<int>& permutation() const { return perm_; }

  int n() const { return n_; }
  /// Stored entries of L strictly below the diagonal (the fill).
  int factor_nnz() const { return static_cast<int>(li_.size()); }

 private:
  int n_ = 0;
  std::vector<int> lp_;      // column pointers of L (size n_ + 1)
  std::vector<int> li_;      // row indices of L (strictly lower part)
  std::vector<double> lx_;   // values of L
  std::vector<double> d_;    // diagonal of D
  std::vector<double> inv_d_;  // 1/d_, for the streamed permuted solve
  std::vector<int> perm_;    // perm_[k] = original index at position k
  std::vector<int> iperm_;   // inverse permutation
  mutable std::vector<double> scratch_;      // permuted rhs workspace
  mutable AlignedVec<double> scratch_multi_;  // multi-RHS workspace (SoA,
                                              // lane-aligned for util/simd)
};

}  // namespace renoc
