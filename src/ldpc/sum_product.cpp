#include "ldpc/sum_product.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace renoc {
namespace {

// Numerical guards for the tanh rule: tanh saturates at |x| ~ 19 in
// double precision; clamping keeps atanh finite.
constexpr double kLlrClamp = 30.0;
constexpr double kTanhClamp = 0.999999999999;

double clamp_llr(double v) { return std::clamp(v, -kLlrClamp, kLlrClamp); }

}  // namespace

SumProductDecoder::SumProductDecoder(const LdpcCode& code, int iterations,
                                     bool early_exit)
    : code_(&code), iterations_(iterations), early_exit_(early_exit) {
  RENOC_CHECK(iterations_ >= 1);
  r_.resize(static_cast<std::size_t>(code.edge_count()));
  q_.resize(static_cast<std::size_t>(code.edge_count()));
  int max_deg = 0;
  for (int c = 0; c < code.m(); ++c)
    max_deg = std::max(max_deg, code.check_degree(c));
  tanh_q_.resize(static_cast<std::size_t>(max_deg));
  prefix_.resize(static_cast<std::size_t>(max_deg) + 1);
  suffix_.resize(static_cast<std::size_t>(max_deg) + 1);
}

DecodeResult SumProductDecoder::decode(
    const std::vector<double>& channel_llrs) const {
  DecodeResult result;
  decode_into(channel_llrs, result);
  return result;
}

void SumProductDecoder::decode_into(const std::vector<double>& channel_llrs,
                                    DecodeResult& result) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  // Only r_ needs clearing: the variable update writes every q_ slot
  // (each edge belongs to exactly one variable) before the check update
  // reads any.
  std::fill(r_.begin(), r_.end(), 0.0);
  result.hard_bits.resize(static_cast<std::size_t>(code.n()));

  const int* var_off = code.var_offsets().data();
  const int* var_ids = code.var_edge_ids().data();
  const int* check_off = code.check_offsets().data();
  const int* check_ids = code.check_edge_ids().data();

  auto hard_decide = [&] {
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (int s = var_off[v]; s < var_off[v + 1]; ++s)
        total += r_[static_cast<std::size_t>(var_ids[s])];
      result.hard_bits[static_cast<std::size_t>(v)] = total < 0 ? 1 : 0;
    }
  };

  for (int iter = 0; iter < iterations_; ++iter) {
    // Variable update: q_e = llr + sum r - r_e.
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (int s = var_off[v]; s < var_off[v + 1]; ++s)
        total += r_[static_cast<std::size_t>(var_ids[s])];
      for (int s = var_off[v]; s < var_off[v + 1]; ++s)
        q_[static_cast<std::size_t>(var_ids[s])] =
            clamp_llr(total - r_[static_cast<std::size_t>(var_ids[s])]);
    }
    // Check update: tanh(r_e/2) = prod_{e' != e} tanh(q_{e'}/2).
    for (int c = 0; c < code.m(); ++c) {
      // Full product with exclusion by division is numerically fragile
      // near zero; use prefix/suffix products in the per-decoder scratch.
      const int begin = check_off[c];
      const std::size_t deg = static_cast<std::size_t>(check_off[c + 1] -
                                                       begin);
      for (std::size_t i = 0; i < deg; ++i)
        tanh_q_[i] = std::tanh(
            q_[static_cast<std::size_t>(check_ids[begin +
                                                  static_cast<int>(i)])] /
            2.0);
      prefix_[0] = 1.0;
      suffix_[deg] = 1.0;
      for (std::size_t i = 0; i < deg; ++i)
        prefix_[i + 1] = prefix_[i] * tanh_q_[i];
      for (std::size_t i = deg; i-- > 0;)
        suffix_[i] = suffix_[i + 1] * tanh_q_[i];
      for (std::size_t i = 0; i < deg; ++i) {
        const double prod = std::clamp(prefix_[i] * suffix_[i + 1],
                                       -kTanhClamp, kTanhClamp);
        r_[static_cast<std::size_t>(check_ids[begin + static_cast<int>(i)])] =
            clamp_llr(2.0 * std::atanh(prod));
      }
    }
    if (early_exit_) {
      hard_decide();
      if (code.is_codeword(result.hard_bits)) {
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return;
      }
    }
  }
  hard_decide();
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iterations_;
}

}  // namespace renoc
