#include "ldpc/sum_product.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace renoc {
namespace {

// Numerical guards for the tanh rule: tanh saturates at |x| ~ 19 in
// double precision; clamping keeps atanh finite.
constexpr double kLlrClamp = 30.0;
constexpr double kTanhClamp = 0.999999999999;

double clamp_llr(double v) { return std::clamp(v, -kLlrClamp, kLlrClamp); }

}  // namespace

SumProductDecoder::SumProductDecoder(const LdpcCode& code, int iterations,
                                     bool early_exit)
    : code_(&code), iterations_(iterations), early_exit_(early_exit) {
  RENOC_CHECK(iterations_ >= 1);
}

DecodeResult SumProductDecoder::decode(
    const std::vector<double>& channel_llrs) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  std::vector<double> r(static_cast<std::size_t>(code.edge_count()), 0.0);
  std::vector<double> q(static_cast<std::size_t>(code.edge_count()), 0.0);

  auto hard_decide = [&](std::vector<std::uint8_t>& bits) {
    bits.resize(static_cast<std::size_t>(code.n()));
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (const TannerEdge& e : code.var_edges(v))
        total += r[static_cast<std::size_t>(e.edge)];
      bits[static_cast<std::size_t>(v)] = total < 0 ? 1 : 0;
    }
  };

  DecodeResult result;
  for (int iter = 0; iter < iterations_; ++iter) {
    // Variable update: q_e = llr + sum r - r_e.
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (const TannerEdge& e : code.var_edges(v))
        total += r[static_cast<std::size_t>(e.edge)];
      for (const TannerEdge& e : code.var_edges(v))
        q[static_cast<std::size_t>(e.edge)] =
            clamp_llr(total - r[static_cast<std::size_t>(e.edge)]);
    }
    // Check update: tanh(r_e/2) = prod_{e' != e} tanh(q_{e'}/2).
    for (int c = 0; c < code.m(); ++c) {
      const auto& edges = code.check_edges(c);
      // Full product with exclusion by division is numerically fragile
      // near zero; use prefix/suffix products instead.
      const std::size_t deg = edges.size();
      std::vector<double> tanh_q(deg);
      for (std::size_t i = 0; i < deg; ++i)
        tanh_q[i] = std::tanh(
            q[static_cast<std::size_t>(edges[i].edge)] / 2.0);
      std::vector<double> prefix(deg + 1, 1.0), suffix(deg + 1, 1.0);
      for (std::size_t i = 0; i < deg; ++i)
        prefix[i + 1] = prefix[i] * tanh_q[i];
      for (std::size_t i = deg; i-- > 0;)
        suffix[i] = suffix[i + 1] * tanh_q[i];
      for (std::size_t i = 0; i < deg; ++i) {
        const double prod = std::clamp(prefix[i] * suffix[i + 1],
                                       -kTanhClamp, kTanhClamp);
        r[static_cast<std::size_t>(edges[i].edge)] =
            clamp_llr(2.0 * std::atanh(prod));
      }
    }
    if (early_exit_) {
      std::vector<std::uint8_t> bits;
      hard_decide(bits);
      if (code.is_codeword(bits)) {
        result.hard_bits = std::move(bits);
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return result;
      }
    }
  }
  hard_decide(result.hard_bits);
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iterations_;
  return result;
}

}  // namespace renoc
