// Systematic LDPC encoding via GF(2) Gaussian elimination.
//
// Gallager constructions do not come in systematic form, so the encoder
// reduces H to reduced row-echelon form once at construction. Pivot columns
// become parity positions; the remaining (free) columns carry data. Each
// pivot row then reads "parity bit = XOR of the data bits present in the
// row", which is exactly how encode() fills a codeword.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"

namespace renoc {

class LdpcEncoder {
 public:
  /// Performs the one-time elimination. O(m * n * m / 64).
  explicit LdpcEncoder(const LdpcCode& code);

  /// Data bits per codeword (n - rank(H); >= n - m).
  int k() const { return static_cast<int>(free_cols_.size()); }
  int n() const { return n_; }
  /// rank(H); the number of independent parity constraints.
  int rank() const { return static_cast<int>(pivot_cols_.size()); }

  /// Encodes `data` (size k, 0/1 values) into a codeword (size n) that
  /// satisfies every check of the original code.
  std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& data) const;

  /// Extracts the data bits back out of a codeword (inverse of the
  /// systematic placement).
  std::vector<std::uint8_t> extract_data(
      const std::vector<std::uint8_t>& codeword) const;

 private:
  using Row = std::vector<std::uint64_t>;  // bitset over n columns

  bool get(const Row& r, int col) const {
    return (r[static_cast<std::size_t>(col / 64)] >>
            (static_cast<unsigned>(col) % 64)) & 1ULL;
  }

  int n_ = 0;
  std::vector<Row> rref_rows_;   // one per pivot, in pivot order
  std::vector<int> pivot_cols_;  // pivot column of each rref row
  std::vector<int> free_cols_;   // data positions, ascending
};

}  // namespace renoc
