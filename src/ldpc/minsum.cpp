#include "ldpc/minsum.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace renoc::minsum {
namespace {

std::int16_t saturate(std::int32_t v) {
  return static_cast<std::int16_t>(
      std::clamp<std::int32_t>(v, -kMsgMax, kMsgMax));
}

}  // namespace

std::int16_t sat_add(std::int16_t a, std::int16_t b) {
  return saturate(static_cast<std::int32_t>(a) + b);
}

std::int16_t normalize(std::int16_t magnitude) {
  const bool neg = magnitude < 0;
  const std::int32_t mag = std::abs(static_cast<std::int32_t>(magnitude));
  const std::int32_t scaled = (3 * mag) >> 2;
  return static_cast<std::int16_t>(neg ? -scaled : scaled);
}

void var_update(std::int16_t channel_llr,
                const std::vector<std::int16_t>& incoming_r,
                std::vector<std::int16_t>& out_q) {
  out_q.resize(incoming_r.size());
  // Wide accumulation first (order-independent), then per-edge extrinsic
  // subtraction with a single saturation — the canonical ordering.
  std::int32_t total = channel_llr;
  for (std::int16_t r : incoming_r) total += r;
  for (std::size_t i = 0; i < incoming_r.size(); ++i)
    out_q[i] = saturate(total - incoming_r[i]);
}

std::int32_t var_posterior(std::int16_t channel_llr,
                           const std::vector<std::int16_t>& incoming_r) {
  std::int32_t total = channel_llr;
  for (std::int16_t r : incoming_r) total += r;
  return total;
}

void check_update(const std::vector<std::int16_t>& incoming_q,
                  std::vector<std::int16_t>& out_r) {
  const std::size_t deg = incoming_q.size();
  out_r.resize(deg);
  if (deg == 0) return;
  if (deg == 1) {
    // Degenerate check: the extrinsic min over an empty set saturates.
    out_r[0] = normalize(kMsgMax);
    return;
  }
  // Two smallest magnitudes + product of signs in one pass.
  std::int32_t min1 = kMsgMax + 1, min2 = kMsgMax + 1;
  std::size_t min1_pos = 0;
  int sign_product = 1;
  for (std::size_t i = 0; i < deg; ++i) {
    const std::int32_t v = incoming_q[i];
    const std::int32_t mag = std::abs(v);
    if (v < 0) sign_product = -sign_product;
    if (mag < min1) {
      min2 = min1;
      min1 = mag;
      min1_pos = i;
    } else if (mag < min2) {
      min2 = mag;
    }
  }
  for (std::size_t i = 0; i < deg; ++i) {
    const std::int32_t extrinsic_min = (i == min1_pos) ? min2 : min1;
    // Sign excluding edge i: total sign product divided by this edge's sign
    // (zero treated as positive).
    const int self_sign = (incoming_q[i] < 0) ? -1 : 1;
    const int sign = sign_product * self_sign;
    const std::int16_t mag16 =
        static_cast<std::int16_t>(std::min<std::int32_t>(extrinsic_min,
                                                         kMsgMax));
    out_r[i] = normalize(static_cast<std::int16_t>(sign < 0 ? -mag16 : mag16));
  }
}

}  // namespace renoc::minsum
