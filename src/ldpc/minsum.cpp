#include "ldpc/minsum.hpp"

namespace renoc::minsum {

void var_update(std::int16_t channel_llr,
                const std::vector<std::int16_t>& incoming_r,
                std::vector<std::int16_t>& out_q) {
  out_q.resize(incoming_r.size());
  var_update(channel_llr, incoming_r.data(), out_q.data(),
             static_cast<int>(incoming_r.size()));
}

std::int32_t var_posterior(std::int16_t channel_llr,
                           const std::vector<std::int16_t>& incoming_r) {
  return var_posterior(channel_llr, incoming_r.data(),
                       static_cast<int>(incoming_r.size()));
}

void check_update(const std::vector<std::int16_t>& incoming_q,
                  std::vector<std::int16_t>& out_r) {
  out_r.resize(incoming_q.size());
  check_update(incoming_q.data(), out_r.data(),
               static_cast<int>(incoming_q.size()));
}

}  // namespace renoc::minsum
