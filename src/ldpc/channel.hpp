// BPSK modulation over an AWGN channel, producing channel LLRs.
//
// The paper's simulator is "run with an encoded message"; we transmit real
// encoded blocks through a noisy channel so the decoder does genuine work
// (message values, iteration dynamics, and switching activity all depend on
// the noise realization).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace renoc {

/// BPSK + AWGN: bit b maps to symbol 1-2b; noise has variance sigma^2 per
/// dimension with sigma^2 = 1 / (2 * rate * 10^(EbN0_dB/10)).
class AwgnChannel {
 public:
  /// `rate` is the code rate used for Eb/N0 normalization.
  AwgnChannel(double ebn0_db, double rate, Rng rng);

  /// Transmits a codeword; returns per-bit channel LLRs
  /// (LLR = 2 y / sigma^2, positive = bit 0 more likely).
  std::vector<double> transmit(const std::vector<std::uint8_t>& bits);

  double sigma() const { return sigma_; }

 private:
  double sigma_;
  Rng rng_;
};

/// Quantizes channel LLRs into the fixed-point domain used by the hardware
/// decoders: Qm.f with `frac_bits` fractional bits, saturating to
/// [-max_q, max_q]. Both the golden and the NoC decoders operate on these
/// values, which is what makes them bit-identical.
std::vector<std::int16_t> quantize_llrs(const std::vector<double>& llrs,
                                        int frac_bits = 3, int max_q = 127);

}  // namespace renoc
