#include "ldpc/encoder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {

LdpcEncoder::LdpcEncoder(const LdpcCode& code) : n_(code.n()) {
  const int m = code.m();
  const std::size_t words = static_cast<std::size_t>((n_ + 63) / 64);

  // Dense bitset copy of H.
  std::vector<Row> rows(static_cast<std::size_t>(m), Row(words, 0));
  for (int c = 0; c < m; ++c)
    for (const TannerEdge& e : code.check_edges(c))
      rows[static_cast<std::size_t>(c)][static_cast<std::size_t>(e.other / 64)] ^=
          1ULL << (static_cast<unsigned>(e.other) % 64);

  // Gauss–Jordan to reduced row-echelon form.
  std::vector<char> is_pivot_col(static_cast<std::size_t>(n_), 0);
  int next_row = 0;
  for (int col = 0; col < n_ && next_row < m; ++col) {
    int pivot = -1;
    for (int r = next_row; r < m; ++r) {
      if (get(rows[static_cast<std::size_t>(r)], col)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[static_cast<std::size_t>(pivot)],
              rows[static_cast<std::size_t>(next_row)]);
    // Eliminate the column from every other row (full Jordan reduction so
    // each pivot row ends up referencing only free columns).
    for (int r = 0; r < m; ++r) {
      if (r == next_row) continue;
      if (!get(rows[static_cast<std::size_t>(r)], col)) continue;
      for (std::size_t w = 0; w < words; ++w)
        rows[static_cast<std::size_t>(r)][w] ^=
            rows[static_cast<std::size_t>(next_row)][w];
    }
    pivot_cols_.push_back(col);
    is_pivot_col[static_cast<std::size_t>(col)] = 1;
    ++next_row;
  }
  // Copy the pivot rows only after elimination has fully finished — rows
  // keep changing as later pivot columns are cleared out of them.
  rref_rows_.reserve(pivot_cols_.size());
  for (std::size_t r = 0; r < pivot_cols_.size(); ++r)
    rref_rows_.push_back(rows[r]);
  for (int col = 0; col < n_; ++col)
    if (!is_pivot_col[static_cast<std::size_t>(col)])
      free_cols_.push_back(col);
  RENOC_CHECK(static_cast<int>(pivot_cols_.size() + free_cols_.size()) == n_);
}

std::vector<std::uint8_t> LdpcEncoder::encode(
    const std::vector<std::uint8_t>& data) const {
  RENOC_CHECK_MSG(static_cast<int>(data.size()) == k(),
                  "data size " << data.size() << " != k " << k());
  std::vector<std::uint8_t> cw(static_cast<std::size_t>(n_), 0);
  for (std::size_t i = 0; i < free_cols_.size(); ++i)
    cw[static_cast<std::size_t>(free_cols_[i])] = data[i] & 1;
  // Each pivot row: pivot bit = XOR of the (free-column) bits in the row.
  for (std::size_t r = 0; r < rref_rows_.size(); ++r) {
    int acc = 0;
    for (std::size_t i = 0; i < free_cols_.size(); ++i) {
      if (get(rref_rows_[r], free_cols_[i]))
        acc ^= cw[static_cast<std::size_t>(free_cols_[i])];
    }
    cw[static_cast<std::size_t>(pivot_cols_[r])] =
        static_cast<std::uint8_t>(acc);
  }
  return cw;
}

std::vector<std::uint8_t> LdpcEncoder::extract_data(
    const std::vector<std::uint8_t>& codeword) const {
  RENOC_CHECK(static_cast<int>(codeword.size()) == n_);
  std::vector<std::uint8_t> data;
  data.reserve(free_cols_.size());
  for (int col : free_cols_)
    data.push_back(codeword[static_cast<std::size_t>(col)] & 1);
  return data;
}

}  // namespace renoc
