// Partitioning of the Tanner graph onto PE clusters.
//
// Each PE of the test chip hosts one cluster of variable nodes and one
// cluster of check nodes (the "amount of computation mapped to a single PE"
// that the paper says differs between configurations A..E). Partitions are
// weighted: a cluster's share of nodes is proportional to its weight, which
// is how the chip configurations create deliberately non-uniform power
// (hot rows, center-heavy patterns) before thermally-aware placement.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"

namespace renoc {

struct Partition {
  int cluster_count = 0;
  std::vector<int> vn_owner;  ///< size n: cluster owning each variable
  std::vector<int> cn_owner;  ///< size m: cluster owning each check

  void validate(const LdpcCode& code) const;
};

/// Contiguous striping with per-cluster weights (largest-remainder
/// apportionment; weights must be positive and of size cluster_count).
/// Equal weights give the uniform striped partition.
Partition make_weighted_partition(const LdpcCode& code,
                                  const std::vector<double>& vn_weights,
                                  const std::vector<double>& cn_weights);

/// Uniform striping across `clusters`.
Partition make_striped_partition(const LdpcCode& code, int clusters);

/// Round-robin interleaving across `clusters` (maximally scattered; high
/// traffic, flat compute).
Partition make_interleaved_partition(const LdpcCode& code, int clusters);

/// Compute work per cluster per full iteration: one op per incident edge in
/// each of the VN and CN phases.
std::vector<std::uint64_t> cluster_edge_ops(const LdpcCode& code,
                                            const Partition& p);

/// traffic[s][d] = number of message values sent from cluster s to cluster
/// d in one full iteration (VN->CN plus CN->VN directions).
std::vector<std::vector<std::uint64_t>> cluster_traffic(const LdpcCode& code,
                                                        const Partition& p);

/// Apportions `total` items over positive weights, summing exactly to
/// `total` (largest remainder). Exposed for tests.
std::vector<int> apportion(int total, const std::vector<double>& weights);

}  // namespace renoc
