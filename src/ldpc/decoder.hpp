// Golden (non-distributed) min-sum decoder.
//
// Flooding schedule with a fixed iteration count, matching the hardware:
// the NoC implementation runs a fixed number of iterations so every block
// takes the same time, which is what lets the paper align migration
// periods with block boundaries. Early termination on zero syndrome is
// available as an option for BER studies.
//
// The decode loops stream through LdpcCode's flat CSR arrays: messages
// live in two global edge arrays owned by the decoder, laid out var-major
// (variable v owns the contiguous slots [var_offsets[v], var_offsets[v+1]))
// and updated in place. The variable phase and the posterior hard decision
// are therefore pure sequential sweeps with no index loads at all; only the
// check phase gathers, through LdpcCode::check_var_slots(). Codes with
// uniform degrees (every regular Gallager code) additionally take
// fixed-stride loops whose inner kernels unroll completely. The message
// arrays are a per-decoder workspace sized at construction, so repeated
// decode_into() calls allocate nothing after the first — the property the
// Monte-Carlo BER harness leans on. A decoder instance is consequently NOT
// shareable across threads; give each worker its own (construction is
// cheap: two edge-count arrays).
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "util/aligned.hpp"
#include "util/simd.hpp"

namespace renoc {

struct DecodeResult {
  std::vector<std::uint8_t> hard_bits;
  bool syndrome_ok = false;
  int iterations_run = 0;
};

class MinSumDecoder {
 public:
  /// `iterations` full (VN+CN) iterations; if `early_exit`, stops when the
  /// syndrome becomes zero (checked after each CN phase).
  MinSumDecoder(const LdpcCode& code, int iterations, bool early_exit = false);

  /// Decodes quantized channel LLRs (size n).
  DecodeResult decode(const std::vector<std::int16_t>& channel_llrs) const;

  /// Allocation-free variant: writes into `result`, reusing its buffers.
  /// Steady state (same decoder, reused result) performs zero heap
  /// allocations per block.
  void decode_into(const std::vector<std::int16_t>& channel_llrs,
                   DecodeResult& result) const;

  int iterations() const { return iterations_; }

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
  // Workspace: global edge-indexed message arrays, reused across calls
  // (mutable so decode() stays const like every other solver in the repo).
  mutable std::vector<std::int16_t> r_;
  mutable std::vector<std::int16_t> q_;
};

/// Batched multi-codeword min-sum decoder: streams up to `max_batch`
/// codewords through one kernel pass in a lane-per-codeword LLR-SoA
/// layout (logical element i of codeword b at soa[i * stride + b]), the
/// throughput shape real basestations use. The sweeps run through the
/// util/simd kernel table, so on an AVX2 tier eight codewords advance per
/// vector op; every lane executes exactly the scalar decoder's op
/// sequence, making each lane's DecodeResult — hard bits, syndrome_ok,
/// iterations_run — bit-identical to MinSumDecoder::decode_into on that
/// codeword, on every tier.
///
/// With early_exit, converged lanes have their results recorded at the
/// iteration of first zero syndrome and are frozen (the lane keeps
/// computing harmlessly until all lanes finish, matching the scalar
/// decoder's per-codeword iteration counts).
///
/// Workspaces are sized at construction (lane-aligned, zero-padded tails),
/// so repeated decode_batch_into() calls allocate nothing after the first
/// besides result buffers, which reused results keep. Not shareable across
/// threads; give each worker its own.
class MinSumBatchDecoder {
 public:
  /// `kernels` overrides the active SIMD kernel table (test/bench hook for
  /// exercising every compiled tier); nullptr selects simd::kernels().
  MinSumBatchDecoder(const LdpcCode& code, int iterations,
                     bool early_exit = false, int max_batch = 8,
                     const simd::KernelTable* kernels = nullptr);

  /// Decodes `batch` (1..max_batch()) codewords: llrs[b] points at the n
  /// quantized channel LLRs of codeword b, results[b] receives its result.
  void decode_batch_into(const std::int16_t* const* llrs, int batch,
                         DecodeResult* results) const;

  int iterations() const { return iterations_; }
  int max_batch() const { return max_batch_; }
  simd::Tier tier() const { return kernels_->tier; }

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
  int max_batch_;
  int stride_;  // max_batch_ rounded up to a full lane group
  const simd::KernelTable* kernels_;
  // Lane-SoA workspaces (see util/aligned.hpp): channel LLRs, the two
  // message halves, posterior hard bits, and the per-lane syndrome flags.
  mutable AlignedVec<std::int32_t> llr_;
  mutable AlignedVec<std::int32_t> r_;
  mutable AlignedVec<std::int32_t> q_;
  mutable AlignedVec<std::int32_t> bits_;
  mutable AlignedVec<std::int32_t> violated_;
  mutable std::vector<std::uint8_t> active_;
};

}  // namespace renoc
