// Golden (non-distributed) min-sum decoder.
//
// Flooding schedule with a fixed iteration count, matching the hardware:
// the NoC implementation runs a fixed number of iterations so every block
// takes the same time, which is what lets the paper align migration
// periods with block boundaries. Early termination on zero syndrome is
// available as an option for BER studies.
//
// The decode loops stream through LdpcCode's flat CSR arrays: messages
// live in two global edge arrays owned by the decoder, laid out var-major
// (variable v owns the contiguous slots [var_offsets[v], var_offsets[v+1]))
// and updated in place. The variable phase and the posterior hard decision
// are therefore pure sequential sweeps with no index loads at all; only the
// check phase gathers, through LdpcCode::check_var_slots(). Codes with
// uniform degrees (every regular Gallager code) additionally take
// fixed-stride loops whose inner kernels unroll completely. The message
// arrays are a per-decoder workspace sized at construction, so repeated
// decode_into() calls allocate nothing after the first — the property the
// Monte-Carlo BER harness leans on. A decoder instance is consequently NOT
// shareable across threads; give each worker its own (construction is
// cheap: two edge-count arrays).
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"

namespace renoc {

struct DecodeResult {
  std::vector<std::uint8_t> hard_bits;
  bool syndrome_ok = false;
  int iterations_run = 0;
};

class MinSumDecoder {
 public:
  /// `iterations` full (VN+CN) iterations; if `early_exit`, stops when the
  /// syndrome becomes zero (checked after each CN phase).
  MinSumDecoder(const LdpcCode& code, int iterations, bool early_exit = false);

  /// Decodes quantized channel LLRs (size n).
  DecodeResult decode(const std::vector<std::int16_t>& channel_llrs) const;

  /// Allocation-free variant: writes into `result`, reusing its buffers.
  /// Steady state (same decoder, reused result) performs zero heap
  /// allocations per block.
  void decode_into(const std::vector<std::int16_t>& channel_llrs,
                   DecodeResult& result) const;

  int iterations() const { return iterations_; }

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
  // Workspace: global edge-indexed message arrays, reused across calls
  // (mutable so decode() stays const like every other solver in the repo).
  mutable std::vector<std::int16_t> r_;
  mutable std::vector<std::int16_t> q_;
};

}  // namespace renoc
