// Golden (non-distributed) min-sum decoder.
//
// Flooding schedule with a fixed iteration count, matching the hardware:
// the NoC implementation runs a fixed number of iterations so every block
// takes the same time, which is what lets the paper align migration
// periods with block boundaries. Early termination on zero syndrome is
// available as an option for BER studies.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"

namespace renoc {

struct DecodeResult {
  std::vector<std::uint8_t> hard_bits;
  bool syndrome_ok = false;
  int iterations_run = 0;
};

class MinSumDecoder {
 public:
  /// `iterations` full (VN+CN) iterations; if `early_exit`, stops when the
  /// syndrome becomes zero (checked after each CN phase).
  MinSumDecoder(const LdpcCode& code, int iterations, bool early_exit = false);

  /// Decodes quantized channel LLRs (size n).
  DecodeResult decode(const std::vector<std::int16_t>& channel_llrs) const;

  int iterations() const { return iterations_; }

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
};

}  // namespace renoc
