#include "ldpc/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace renoc {

void Partition::validate(const LdpcCode& code) const {
  RENOC_CHECK(cluster_count > 0);
  RENOC_CHECK(static_cast<int>(vn_owner.size()) == code.n());
  RENOC_CHECK(static_cast<int>(cn_owner.size()) == code.m());
  for (int o : vn_owner) RENOC_CHECK(o >= 0 && o < cluster_count);
  for (int o : cn_owner) RENOC_CHECK(o >= 0 && o < cluster_count);
}

std::vector<int> apportion(int total, const std::vector<double>& weights) {
  RENOC_CHECK(total >= 0 && !weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    RENOC_CHECK_MSG(w >= 0.0, "negative weight " << w);
    sum += w;
  }
  RENOC_CHECK_MSG(sum > 0.0, "weights sum to zero");

  const std::size_t k = weights.size();
  std::vector<int> counts(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double exact = total * weights[i] / sum;
    counts[i] = static_cast<int>(exact);  // floor for non-negative
    assigned += counts[i];
    remainders.push_back({exact - counts[i], i});
  }
  // Distribute the leftover to the largest fractional parts (stable
  // tie-break by index for determinism).
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  const int leftover = total - assigned;
  RENOC_CHECK(leftover >= 0 && leftover <= static_cast<int>(k));
  for (int i = 0; i < leftover; ++i)
    ++counts[remainders[static_cast<std::size_t>(i)].second];
  RENOC_CHECK(std::accumulate(counts.begin(), counts.end(), 0) == total);
  return counts;
}

namespace {

std::vector<int> striped_owners(int total, const std::vector<int>& counts) {
  std::vector<int> owner(static_cast<std::size_t>(total));
  int pos = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    for (int i = 0; i < counts[c]; ++i)
      owner[static_cast<std::size_t>(pos++)] = static_cast<int>(c);
  }
  RENOC_CHECK(pos == total);
  return owner;
}

}  // namespace

Partition make_weighted_partition(const LdpcCode& code,
                                  const std::vector<double>& vn_weights,
                                  const std::vector<double>& cn_weights) {
  RENOC_CHECK(vn_weights.size() == cn_weights.size());
  Partition p;
  p.cluster_count = static_cast<int>(vn_weights.size());
  p.vn_owner = striped_owners(code.n(), apportion(code.n(), vn_weights));
  p.cn_owner = striped_owners(code.m(), apportion(code.m(), cn_weights));
  p.validate(code);
  return p;
}

Partition make_striped_partition(const LdpcCode& code, int clusters) {
  RENOC_CHECK(clusters > 0);
  const std::vector<double> w(static_cast<std::size_t>(clusters), 1.0);
  return make_weighted_partition(code, w, w);
}

Partition make_interleaved_partition(const LdpcCode& code, int clusters) {
  RENOC_CHECK(clusters > 0);
  Partition p;
  p.cluster_count = clusters;
  p.vn_owner.resize(static_cast<std::size_t>(code.n()));
  p.cn_owner.resize(static_cast<std::size_t>(code.m()));
  for (int v = 0; v < code.n(); ++v)
    p.vn_owner[static_cast<std::size_t>(v)] = v % clusters;
  for (int c = 0; c < code.m(); ++c)
    p.cn_owner[static_cast<std::size_t>(c)] = c % clusters;
  p.validate(code);
  return p;
}

std::vector<std::uint64_t> cluster_edge_ops(const LdpcCode& code,
                                            const Partition& p) {
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(p.cluster_count), 0);
  for (int v = 0; v < code.n(); ++v)
    ops[static_cast<std::size_t>(p.vn_owner[static_cast<std::size_t>(v)])] +=
        static_cast<std::uint64_t>(code.var_degree(v));
  for (int c = 0; c < code.m(); ++c)
    ops[static_cast<std::size_t>(p.cn_owner[static_cast<std::size_t>(c)])] +=
        static_cast<std::uint64_t>(code.check_degree(c));
  return ops;
}

std::vector<std::vector<std::uint64_t>> cluster_traffic(const LdpcCode& code,
                                                        const Partition& p) {
  std::vector<std::vector<std::uint64_t>> traffic(
      static_cast<std::size_t>(p.cluster_count),
      std::vector<std::uint64_t>(static_cast<std::size_t>(p.cluster_count),
                                 0));
  for (int c = 0; c < code.m(); ++c) {
    const int co = p.cn_owner[static_cast<std::size_t>(c)];
    for (const TannerEdge& e : code.check_edges(c)) {
      const int vo = p.vn_owner[static_cast<std::size_t>(e.other)];
      if (vo == co) continue;
      // One value VN->CN and one CN->VN per edge per iteration.
      ++traffic[static_cast<std::size_t>(vo)][static_cast<std::size_t>(co)];
      ++traffic[static_cast<std::size_t>(co)][static_cast<std::size_t>(vo)];
    }
  }
  return traffic;
}

}  // namespace renoc
