// Regular LDPC code construction (Gallager ensemble).
//
// The DATE'05 test chips implement the NoC LDPC decoder of Theocharides et
// al. (ISVLSI'05). We build regular (wc, wr) Gallager codes: the parity
// matrix consists of wc row-bands; the first band has row i covering
// columns [i*wr, (i+1)*wr); the remaining bands are random column
// permutations of the first. This yields exactly wr ones per row and wc
// per column, the structure the hardware decoders of that generation used.
//
// The Tanner graph is stored flat in CSR form: four contiguous arrays per
// side (offsets, neighbor node ids, global edge ids), built once at
// construction. Decode kernels stream through these arrays with zero
// pointer chasing; the classic per-node view survives as EdgeView, a
// lightweight span over the CSR slices, so callers keep the familiar
// `for (const TannerEdge& e : code.var_edges(v))` idiom.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace renoc {

/// One edge of the Tanner graph, identified by its global index.
struct TannerEdge {
  int other = 0;  ///< the node on the far side (var or check index)
  int edge = 0;   ///< global edge id, shared by both endpoints
};

/// Non-owning view of one node's adjacency inside the flat CSR arrays.
/// Iteration materializes TannerEdge values on the fly, preserving the
/// pre-CSR API without duplicating the graph in memory.
class EdgeView {
 public:
  class Iterator {
   public:
    Iterator(const int* neighbors, const int* edge_ids)
        : neighbors_(neighbors), edge_ids_(edge_ids) {}
    TannerEdge operator*() const { return {*neighbors_, *edge_ids_}; }
    Iterator& operator++() {
      ++neighbors_;
      ++edge_ids_;
      return *this;
    }
    bool operator!=(const Iterator& o) const {
      return neighbors_ != o.neighbors_;
    }
    bool operator==(const Iterator& o) const {
      return neighbors_ == o.neighbors_;
    }

   private:
    const int* neighbors_;
    const int* edge_ids_;
  };

  EdgeView(const int* neighbors, const int* edge_ids, int count)
      : neighbors_(neighbors), edge_ids_(edge_ids), count_(count) {}

  std::size_t size() const { return static_cast<std::size_t>(count_); }
  bool empty() const { return count_ == 0; }
  TannerEdge operator[](std::size_t i) const {
    return {neighbors_[i], edge_ids_[i]};
  }
  Iterator begin() const { return Iterator(neighbors_, edge_ids_); }
  Iterator end() const { return Iterator(neighbors_ + count_, edge_ids_ + count_); }

 private:
  const int* neighbors_;
  const int* edge_ids_;
  int count_;
};

/// Sparse parity-check matrix with flat CSR adjacency and edge ids.
class LdpcCode {
 public:
  /// Builds a regular Gallager code: n variable nodes, wc ones per column,
  /// wr ones per row; the check count is m = n*wc/wr. Requires n % wr == 0
  /// and (n*wc) % wr == 0.
  static LdpcCode make_regular(int n, int wc, int wr, Rng& rng);

  /// Builds an irregular code by socket matching: variable v gets
  /// var_degrees[v] edge sockets, checks get up to wr sockets each
  /// (m = ceil(total/wr) checks), and a random matching pairs them.
  /// Duplicate pairings are repaired by socket swaps; requires every
  /// degree >= 1 and wr >= 2.
  static LdpcCode make_irregular(const std::vector<int>& var_degrees,
                                 int wr, Rng& rng);

  int n() const { return n_; }                 ///< variable nodes
  int m() const { return m_; }                 ///< check nodes
  int edge_count() const { return edges_; }

  /// Adjacency of check c: (variable, edge id) pairs in construction order.
  EdgeView check_edges(int c) const {
    RENOC_CHECK(c >= 0 && c < m_);
    const int begin = check_offsets_[static_cast<std::size_t>(c)];
    return EdgeView(check_neighbors_.data() + begin,
                    check_edge_ids_.data() + begin,
                    check_offsets_[static_cast<std::size_t>(c) + 1] - begin);
  }
  /// Adjacency of variable v: (check, edge id) pairs in construction order.
  EdgeView var_edges(int v) const {
    RENOC_CHECK(v >= 0 && v < n_);
    const int begin = var_offsets_[static_cast<std::size_t>(v)];
    return EdgeView(var_neighbors_.data() + begin,
                    var_edge_ids_.data() + begin,
                    var_offsets_[static_cast<std::size_t>(v) + 1] - begin);
  }

  int check_degree(int c) const {
    RENOC_CHECK(c >= 0 && c < m_);
    return check_offsets_[static_cast<std::size_t>(c) + 1] -
           check_offsets_[static_cast<std::size_t>(c)];
  }
  int var_degree(int v) const {
    RENOC_CHECK(v >= 0 && v < n_);
    return var_offsets_[static_cast<std::size_t>(v) + 1] -
           var_offsets_[static_cast<std::size_t>(v)];
  }

  // Raw CSR arrays for the flat decode kernels. Variable v owns slots
  // [var_offsets()[v], var_offsets()[v+1]) of var_edge_ids()/var_neighbors(),
  // in construction order; the check side is symmetric. Edge ids index the
  // global q/r message arrays shared by every decoder.
  const std::vector<int>& var_offsets() const { return var_offsets_; }
  const std::vector<int>& var_edge_ids() const { return var_edge_ids_; }
  const std::vector<int>& var_neighbors() const { return var_neighbors_; }
  const std::vector<int>& check_offsets() const { return check_offsets_; }
  const std::vector<int>& check_edge_ids() const { return check_edge_ids_; }
  const std::vector<int>& check_neighbors() const { return check_neighbors_; }

  /// Check-side positions mapped into var-major message storage: entry p of
  /// the check-major traversal (check c owns [check_offsets()[c],
  /// check_offsets()[c+1])) names the slot of that edge in a message array
  /// laid out variable-by-variable. The golden decoders store q/r var-major
  /// (variable phase and posteriors stream contiguously) and let the check
  /// phase gather through this map.
  const std::vector<int>& check_var_slots() const { return check_var_slots_; }

  /// check_var_slots() narrowed to uint16_t when every slot fits (any code
  /// with at most 65536 edges — all hardware-scale codes here). Half the
  /// index bytes keeps the check-phase gather streams L1-resident roughly
  /// twice as long; empty for larger graphs, so callers must fall back to
  /// check_var_slots().
  const std::vector<std::uint16_t>& check_var_slots16() const {
    return check_var_slots16_;
  }

  /// Uniform variable degree, or 0 if degrees differ (regular codes report
  /// wc). Lets decode loops pick fixed-stride fast paths.
  int uniform_var_degree() const { return uniform_var_degree_; }
  /// Uniform check degree, or 0 if degrees differ.
  int uniform_check_degree() const { return uniform_check_degree_; }

  /// True if `bits` (size n, 0/1) satisfies every parity check.
  bool is_codeword(const std::vector<std::uint8_t>& bits) const;

  /// Syndrome weight: number of violated checks.
  int syndrome_weight(const std::vector<std::uint8_t>& bits) const;

 private:
  LdpcCode() = default;
  void add_edge(int check, int var);
  /// Flattens the edge list accumulated by add_edge() into the CSR arrays
  /// and releases the construction scratch.
  void finalize();

  int n_ = 0;
  int m_ = 0;
  int edges_ = 0;

  // Construction scratch: endpoint per edge in add order (edge id = index).
  std::vector<int> edge_check_;
  std::vector<int> edge_var_;

  // CSR adjacency (see the raw accessors above).
  std::vector<int> var_offsets_;    // size n+1
  std::vector<int> var_edge_ids_;   // size E
  std::vector<int> var_neighbors_;  // size E (check ids)
  std::vector<int> check_offsets_;    // size m+1
  std::vector<int> check_edge_ids_;   // size E
  std::vector<int> check_neighbors_;  // size E (variable ids)
  std::vector<int> check_var_slots_;  // size E (see check_var_slots())
  std::vector<std::uint16_t> check_var_slots16_;  // size E or empty
  int uniform_var_degree_ = 0;
  int uniform_check_degree_ = 0;
};

}  // namespace renoc
