// Regular LDPC code construction (Gallager ensemble).
//
// The DATE'05 test chips implement the NoC LDPC decoder of Theocharides et
// al. (ISVLSI'05). We build regular (wc, wr) Gallager codes: the parity
// matrix consists of wc row-bands; the first band has row i covering
// columns [i*wr, (i+1)*wr); the remaining bands are random column
// permutations of the first. This yields exactly wr ones per row and wc
// per column, the structure the hardware decoders of that generation used.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace renoc {

/// One edge of the Tanner graph, identified by its global index.
struct TannerEdge {
  int other = 0;  ///< the node on the far side (var or check index)
  int edge = 0;   ///< global edge id, shared by both endpoints
};

/// Sparse parity-check matrix with precomputed adjacency and edge ids.
class LdpcCode {
 public:
  /// Builds a regular Gallager code: n variable nodes, wc ones per column,
  /// wr ones per row; the check count is m = n*wc/wr. Requires n % wr == 0
  /// and (n*wc) % wr == 0.
  static LdpcCode make_regular(int n, int wc, int wr, Rng& rng);

  /// Builds an irregular code by socket matching: variable v gets
  /// var_degrees[v] edge sockets, checks get up to wr sockets each
  /// (m = ceil(total/wr) checks), and a random matching pairs them.
  /// Duplicate pairings are repaired by socket swaps; requires every
  /// degree >= 1 and wr >= 2.
  static LdpcCode make_irregular(const std::vector<int>& var_degrees,
                                 int wr, Rng& rng);

  int n() const { return n_; }                 ///< variable nodes
  int m() const { return m_; }                 ///< check nodes
  int edge_count() const { return edges_; }

  /// Adjacency of check c: (variable, edge id) pairs in construction order.
  const std::vector<TannerEdge>& check_edges(int c) const;
  /// Adjacency of variable v: (check, edge id) pairs in construction order.
  const std::vector<TannerEdge>& var_edges(int v) const;

  int check_degree(int c) const {
    return static_cast<int>(check_edges(c).size());
  }
  int var_degree(int v) const {
    return static_cast<int>(var_edges(v).size());
  }

  /// True if `bits` (size n, 0/1) satisfies every parity check.
  bool is_codeword(const std::vector<std::uint8_t>& bits) const;

  /// Syndrome weight: number of violated checks.
  int syndrome_weight(const std::vector<std::uint8_t>& bits) const;

 private:
  LdpcCode() = default;
  void add_edge(int check, int var);

  int n_ = 0;
  int m_ = 0;
  int edges_ = 0;
  std::vector<std::vector<TannerEdge>> check_adj_;
  std::vector<std::vector<TannerEdge>> var_adj_;
};

}  // namespace renoc
