// Seed-semantics reference decoders.
//
// These are the original (pre-flattening) decode loops, preserved verbatim
// as oracles: per-node in_buf/out_buf copies through the std::vector kernel
// API and per-call message allocation. They are deliberately slow — their
// job is to pin the message-passing semantics so the flat CSR engine can be
// proven bit-identical, the same role the dense LU factorization plays for
// the sparse thermal path. Tests and the bench_micro_ldpc regression guard
// compare every DecodeResult field against these.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"

namespace renoc {

/// The seed MinSumDecoder::decode loop: flooding min-sum over quantized
/// LLRs with per-variable copy-in/copy-out scratch.
DecodeResult reference_minsum_decode(
    const LdpcCode& code, int iterations, bool early_exit,
    const std::vector<std::int16_t>& channel_llrs);

/// The seed SumProductDecoder::decode loop: tanh-rule belief propagation
/// with per-check prefix/suffix scratch allocated per call.
DecodeResult reference_sum_product_decode(
    const LdpcCode& code, int iterations, bool early_exit,
    const std::vector<double>& channel_llrs);

}  // namespace renoc
