#include "ldpc/ber_harness.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "ldpc/channel.hpp"
#include "ldpc/decoder.hpp"
#include "util/check.hpp"

namespace renoc {

void BerConfig::validate() const {
  // Axis and thread checks come from util/sweep so all three harnesses
  // fail with the same pinned messages (sweep_test asserts on them).
  sweep::require_axis(!ebn0_db.empty(), "Eb/N0");
  RENOC_CHECK(blocks_per_point >= 1);
  RENOC_CHECK(iterations >= 1);
  sweep::require_threads(threads);
  RENOC_CHECK_MSG(batch_size >= 1 && batch_size <= 64,
                  "batch_size " << batch_size << " outside 1..64");
}

Rng ber_block_rng(std::uint64_t seed, int point, int block) {
  RENOC_CHECK(point >= 0 && block >= 0);
  // Stateless derivation — two chained SplitMix64 steps fold the sweep
  // coordinates into the master seed, so any block of any point is
  // reachable in O(1): the sweep never materializes a seed table, replaying
  // a whole point is linear, and the job space is not bounded by memory.
  return Rng(derive_stream_seed(
      derive_stream_seed(seed, static_cast<std::uint64_t>(point)),
      static_cast<std::uint64_t>(block)));
}

std::vector<BerPoint> run_ber_sweep(const LdpcCode& code,
                                    const LdpcEncoder& encoder,
                                    const BerConfig& cfg) {
  cfg.validate();
  RENOC_CHECK_MSG(encoder.n() == code.n(), "encoder does not match code");

  const int points = static_cast<int>(cfg.ebn0_db.size());
  const int blocks = cfg.blocks_per_point;
  const double rate =
      static_cast<double>(encoder.k()) / static_cast<double>(encoder.n());

  const std::int64_t total_jobs =
      static_cast<std::int64_t>(points) * static_cast<std::int64_t>(blocks);
  std::atomic<std::int64_t> cursor{0};

  const auto accumulate = [&code](BerPoint& pt,
                                  const std::vector<std::uint8_t>& cw,
                                  const DecodeResult& result) {
    std::int64_t errs = 0;
    for (std::size_t i = 0; i < cw.size(); ++i)
      errs += result.hard_bits[i] != cw[i];
    ++pt.blocks;
    pt.bits += code.n();
    pt.bit_errors += errs;
    pt.block_errors += errs > 0;
    pt.iterations_total += result.iterations_run;
  };

  // The job space is the row-major {points, blocks} grid; the shared
  // decoder maps a flat job index back to its (point, block) tuple. Each
  // worker owns a digits buffer, so decoding allocates nothing per job.
  const std::vector<std::int64_t> shape = {points, blocks};

  // Regenerates job `job`'s block: data bits, codeword, and quantized
  // channel LLRs, all from the job's own stateless stream.
  const auto prepare_block = [&](std::int64_t job,
                                 std::vector<std::int64_t>& digits,
                                 std::vector<std::uint8_t>& data,
                                 std::vector<std::uint8_t>& cw,
                                 std::vector<std::int16_t>& llrs) {
    // The stream a block sees depends only on its (point, block)
    // coordinates — never on which worker (or batch lane) runs it.
    sweep::decode_scenario_index(job, shape, digits);
    const int p = static_cast<int>(digits[0]);
    const int b = static_cast<int>(digits[1]);
    Rng rng = ber_block_rng(cfg.seed, p, b);
    for (auto& bit : data)
      bit = static_cast<std::uint8_t>(rng.next_below(2));
    cw = encoder.encode(data);
    AwgnChannel channel(cfg.ebn0_db[static_cast<std::size_t>(p)], rate,
                        rng.split());
    llrs = quantize_llrs(channel.transmit(cw));
    return p;
  };

  // Each worker decodes with a private decoder/result (decoder workspaces
  // are single-threaded) and counts into a private accumulator; the merge
  // below is a plain sum, so any schedule yields identical totals.
  auto worker = [&](std::vector<BerPoint>& acc) {
    acc.assign(static_cast<std::size_t>(points), BerPoint{});
    const MinSumDecoder decoder(code, cfg.iterations, cfg.early_exit);
    DecodeResult result;
    std::vector<std::int64_t> digits;
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    std::vector<std::uint8_t> cw;
    std::vector<std::int16_t> llrs;
    for (;;) {
      const std::int64_t job = cursor.fetch_add(1, std::memory_order_relaxed);
      if (job >= total_jobs) break;
      const int p = prepare_block(job, digits, data, cw, llrs);
      decoder.decode_into(llrs, result);
      accumulate(acc[static_cast<std::size_t>(p)], cw, result);
    }
  };

  // Batched worker: grabs batch_size consecutive jobs per cursor bump and
  // streams them lane-per-codeword through the batch decoder. Lanes are
  // fully independent (a batch may even straddle an Eb/N0-point boundary)
  // and each is bit-identical to a scalar decode, so the merged counts
  // match the batch_size=1 path exactly at any thread count.
  auto batch_worker = [&](std::vector<BerPoint>& acc) {
    acc.assign(static_cast<std::size_t>(points), BerPoint{});
    const int cap = cfg.batch_size;
    const MinSumBatchDecoder decoder(code, cfg.iterations, cfg.early_exit,
                                     cap);
    const std::size_t capz = static_cast<std::size_t>(cap);
    std::vector<DecodeResult> results(capz);
    std::vector<std::int64_t> digits;
    std::vector<std::uint8_t> data(static_cast<std::size_t>(encoder.k()));
    std::vector<std::vector<std::uint8_t>> cws(capz);
    std::vector<std::vector<std::int16_t>> llrs(capz);
    std::vector<const std::int16_t*> llr_ptrs(capz);
    std::vector<int> lane_point(capz);
    for (;;) {
      const std::int64_t first =
          cursor.fetch_add(cap, std::memory_order_relaxed);
      if (first >= total_jobs) break;
      const int run = static_cast<int>(
          std::min<std::int64_t>(cap, total_jobs - first));
      for (int b = 0; b < run; ++b) {
        const std::size_t bz = static_cast<std::size_t>(b);
        lane_point[bz] =
            prepare_block(first + b, digits, data, cws[bz], llrs[bz]);
        llr_ptrs[bz] = llrs[bz].data();
      }
      decoder.decode_batch_into(llr_ptrs.data(), run, results.data());
      for (int b = 0; b < run; ++b) {
        const std::size_t bz = static_cast<std::size_t>(b);
        accumulate(acc[static_cast<std::size_t>(lane_point[bz])], cws[bz],
                   results[bz]);
      }
    }
  };

  const auto run_one = [&](std::vector<BerPoint>& acc) {
    if (cfg.batch_size > 1) {
      batch_worker(acc);
    } else {
      worker(acc);
    }
  };

  const int workers = sweep::clamp_workers(cfg.threads, total_jobs);
  std::vector<std::vector<BerPoint>> partial(
      static_cast<std::size_t>(workers));
  sweep::run_workers(workers, [&run_one, &partial](int w) {
    run_one(partial[static_cast<std::size_t>(w)]);
  });

  std::vector<BerPoint> out(static_cast<std::size_t>(points));
  for (int p = 0; p < points; ++p)
    out[static_cast<std::size_t>(p)].ebn0_db =
        cfg.ebn0_db[static_cast<std::size_t>(p)];
  for (const std::vector<BerPoint>& acc : partial)
    for (int p = 0; p < points; ++p) {
      BerPoint& dst = out[static_cast<std::size_t>(p)];
      const BerPoint& src = acc[static_cast<std::size_t>(p)];
      dst.blocks += src.blocks;
      dst.bits += src.bits;
      dst.bit_errors += src.bit_errors;
      dst.block_errors += src.block_errors;
      dst.iterations_total += src.iterations_total;
    }
  return out;
}

namespace {

// Service-record layout: one record per (point, block) job.
enum BerWord { kBits = 0, kBitErrors, kBlockError, kIterationsRun };
constexpr int kBerRecordWords = 4;

}  // namespace

sweep::SweepSpec make_ber_sweep_spec(const LdpcCode& code,
                                     const LdpcEncoder& encoder,
                                     const BerConfig& cfg) {
  cfg.validate();
  RENOC_CHECK_MSG(encoder.n() == code.n(), "encoder does not match code");

  sweep::SweepSpec spec;
  spec.enumerated = static_cast<std::int64_t>(cfg.ebn0_db.size()) *
                    static_cast<std::int64_t>(cfg.blocks_per_point);
  spec.record_words = kBerRecordWords;
  // Everything that determines a block's decode result goes into the
  // fingerprint; thread and batch counts are excluded because the counts
  // are invariant in both (pinned by ber_harness_test and the bench).
  sweep::DigestBuilder digest;
  digest.fold_string("ber")
      .fold(cfg.seed)
      .fold_int(cfg.blocks_per_point)
      .fold_int(cfg.iterations)
      .fold_int(cfg.early_exit ? 1 : 0)
      .fold_int(code.n())
      .fold_int(code.m());
  for (const double ebn0 : cfg.ebn0_db) digest.fold_real(ebn0);
  spec.config_digest = digest.digest();

  spec.make_runner = [&code, &encoder, &cfg]() {
    // Per-worker setup hoisting: decoder workspace and block buffers are
    // built once per worker, exactly like run_ber_sweep's workers.
    struct WorkerState {
      MinSumDecoder decoder;
      DecodeResult result;
      std::vector<std::int64_t> digits;
      std::vector<std::int64_t> shape;
      std::vector<std::uint8_t> data;
      std::vector<std::uint8_t> cw;
      std::vector<std::int16_t> llrs;
      double rate = 0.0;

      WorkerState(const LdpcCode& c, const LdpcEncoder& e,
                  const BerConfig& b)
          : decoder(c, b.iterations, b.early_exit),
            shape{static_cast<std::int64_t>(b.ebn0_db.size()),
                  b.blocks_per_point},
            data(static_cast<std::size_t>(e.k())),
            rate(static_cast<double>(e.k()) / static_cast<double>(e.n())) {}
    };
    auto state = std::make_shared<WorkerState>(code, encoder, cfg);
    return [state, &code, &encoder, &cfg](std::int64_t scenario,
                                          std::uint64_t* words) {
      WorkerState& ws = *state;
      sweep::decode_scenario_index(scenario, ws.shape, ws.digits);
      const int p = static_cast<int>(ws.digits[0]);
      const int b = static_cast<int>(ws.digits[1]);
      Rng rng = ber_block_rng(cfg.seed, p, b);
      for (auto& bit : ws.data)
        bit = static_cast<std::uint8_t>(rng.next_below(2));
      ws.cw = encoder.encode(ws.data);
      AwgnChannel channel(cfg.ebn0_db[static_cast<std::size_t>(p)], ws.rate,
                          rng.split());
      ws.llrs = quantize_llrs(channel.transmit(ws.cw));
      ws.decoder.decode_into(ws.llrs, ws.result);
      std::int64_t errs = 0;
      for (std::size_t i = 0; i < ws.cw.size(); ++i)
        errs += ws.result.hard_bits[i] != ws.cw[i];
      words[kBits] = static_cast<std::uint64_t>(code.n());
      words[kBitErrors] = static_cast<std::uint64_t>(errs);
      words[kBlockError] = errs > 0 ? 1 : 0;
      words[kIterationsRun] =
          static_cast<std::uint64_t>(ws.result.iterations_run);
    };
  };
  return spec;
}

std::vector<BerPoint> ber_points_from_records(
    const BerConfig& cfg,
    const std::vector<sweep::ScenarioRecord>& records) {
  const std::int64_t points = static_cast<std::int64_t>(cfg.ebn0_db.size());
  const std::vector<std::int64_t> shape = {points, cfg.blocks_per_point};
  std::vector<BerPoint> out(static_cast<std::size_t>(points));
  for (std::int64_t p = 0; p < points; ++p)
    out[static_cast<std::size_t>(p)].ebn0_db =
        cfg.ebn0_db[static_cast<std::size_t>(p)];
  std::vector<std::int64_t> digits;
  for (const sweep::ScenarioRecord& rec : records) {
    if (rec.outcome != sweep::Outcome::kCompleted) continue;
    RENOC_CHECK_MSG(rec.words.size() == kBerRecordWords,
                    "BER record has " << rec.words.size() << " words");
    sweep::decode_scenario_index(rec.scenario, shape, digits);
    BerPoint& pt = out[static_cast<std::size_t>(digits[0])];
    ++pt.blocks;
    pt.bits += static_cast<std::int64_t>(rec.words[kBits]);
    pt.bit_errors += static_cast<std::int64_t>(rec.words[kBitErrors]);
    pt.block_errors += static_cast<std::int64_t>(rec.words[kBlockError]);
    pt.iterations_total +=
        static_cast<std::int64_t>(rec.words[kIterationsRun]);
  }
  return out;
}

}  // namespace renoc
