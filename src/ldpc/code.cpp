#include "ldpc/code.hpp"

#include <numeric>

#include "util/check.hpp"

namespace renoc {

void LdpcCode::add_edge(int check, int var) {
  check_adj_[static_cast<std::size_t>(check)].push_back({var, edges_});
  var_adj_[static_cast<std::size_t>(var)].push_back({check, edges_});
  ++edges_;
}

LdpcCode LdpcCode::make_regular(int n, int wc, int wr, Rng& rng) {
  RENOC_CHECK_MSG(n > 0 && wc >= 2 && wr > wc,
                  "need n>0, wc>=2, wr>wc; got n=" << n << " wc=" << wc
                                                   << " wr=" << wr);
  RENOC_CHECK_MSG(n % wr == 0, "n=" << n << " must be divisible by wr=" << wr);
  const int band_rows = n / wr;
  const int m = band_rows * wc;

  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.check_adj_.resize(static_cast<std::size_t>(m));
  code.var_adj_.resize(static_cast<std::size_t>(n));

  // Band 0: row i covers a contiguous stripe of columns.
  for (int r = 0; r < band_rows; ++r)
    for (int k = 0; k < wr; ++k) code.add_edge(r, r * wr + k);

  // Bands 1..wc-1: random column permutations of band 0.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int band = 1; band < wc; ++band) {
    // Fisher–Yates with the experiment RNG for reproducibility.
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    for (int r = 0; r < band_rows; ++r) {
      const int check = band * band_rows + r;
      for (int k = 0; k < wr; ++k)
        code.add_edge(check, perm[static_cast<std::size_t>(r * wr + k)]);
    }
  }
  RENOC_CHECK(code.edges_ == n * wc);
  return code;
}

LdpcCode LdpcCode::make_irregular(const std::vector<int>& var_degrees,
                                  int wr, Rng& rng) {
  const int n = static_cast<int>(var_degrees.size());
  RENOC_CHECK_MSG(n > 0 && wr >= 2, "need variables and wr >= 2");
  int total = 0;
  for (int d : var_degrees) {
    RENOC_CHECK_MSG(d >= 1, "every variable needs degree >= 1");
    total += d;
  }
  const int m = (total + wr - 1) / wr;

  // Socket lists: variable sockets in node order, check sockets striped.
  std::vector<int> var_socket;
  var_socket.reserve(static_cast<std::size_t>(total));
  for (int v = 0; v < n; ++v)
    for (int k = 0; k < var_degrees[static_cast<std::size_t>(v)]; ++k)
      var_socket.push_back(v);
  std::vector<int> check_socket;
  check_socket.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < total; ++s) check_socket.push_back(s % m);

  // Random matching (Fisher–Yates on the variable side).
  for (int i = total - 1; i > 0; --i) {
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(var_socket[static_cast<std::size_t>(i)],
              var_socket[static_cast<std::size_t>(j)]);
  }

  // Repair duplicate (check, var) pairings by swapping with a random other
  // socket; a handful of passes suffices for sparse graphs.
  auto has_pair = [&](int c, int v) {
    for (int s = 0; s < total; ++s)
      if (check_socket[static_cast<std::size_t>(s)] == c &&
          var_socket[static_cast<std::size_t>(s)] == v)
        return true;
    return false;
  };
  for (int pass = 0; pass < 32; ++pass) {
    bool clean = true;
    std::vector<std::vector<char>> seen(
        static_cast<std::size_t>(m), std::vector<char>(
                                         static_cast<std::size_t>(n), 0));
    for (int s = 0; s < total; ++s) {
      const int c = check_socket[static_cast<std::size_t>(s)];
      const int v = var_socket[static_cast<std::size_t>(s)];
      if (!seen[static_cast<std::size_t>(c)][static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(c)][static_cast<std::size_t>(v)] = 1;
        continue;
      }
      clean = false;
      // Swap this socket's variable with a random other socket whose swap
      // creates no new duplicate (best effort; retried next pass).
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int o = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(total)));
        const int oc = check_socket[static_cast<std::size_t>(o)];
        const int ov = var_socket[static_cast<std::size_t>(o)];
        if (oc == c || ov == v) continue;
        if (has_pair(c, ov) || has_pair(oc, v)) continue;
        std::swap(var_socket[static_cast<std::size_t>(s)],
                  var_socket[static_cast<std::size_t>(o)]);
        break;
      }
    }
    if (clean) break;
  }

  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.check_adj_.resize(static_cast<std::size_t>(m));
  code.var_adj_.resize(static_cast<std::size_t>(n));
  for (int s = 0; s < total; ++s)
    code.add_edge(check_socket[static_cast<std::size_t>(s)],
                  var_socket[static_cast<std::size_t>(s)]);
  return code;
}

const std::vector<TannerEdge>& LdpcCode::check_edges(int c) const {
  RENOC_CHECK(c >= 0 && c < m_);
  return check_adj_[static_cast<std::size_t>(c)];
}

const std::vector<TannerEdge>& LdpcCode::var_edges(int v) const {
  RENOC_CHECK(v >= 0 && v < n_);
  return var_adj_[static_cast<std::size_t>(v)];
}

bool LdpcCode::is_codeword(const std::vector<std::uint8_t>& bits) const {
  return syndrome_weight(bits) == 0;
}

int LdpcCode::syndrome_weight(const std::vector<std::uint8_t>& bits) const {
  RENOC_CHECK(static_cast<int>(bits.size()) == n_);
  int violated = 0;
  for (int c = 0; c < m_; ++c) {
    int parity = 0;
    for (const TannerEdge& e : check_edges(c))
      parity ^= bits[static_cast<std::size_t>(e.other)] & 1;
    violated += parity;
  }
  return violated;
}

}  // namespace renoc
