#include "ldpc/code.hpp"

#include <numeric>

#include "util/check.hpp"

namespace renoc {

void LdpcCode::add_edge(int check, int var) {
  edge_check_.push_back(check);
  edge_var_.push_back(var);
  ++edges_;
}

void LdpcCode::finalize() {
  RENOC_CHECK(static_cast<int>(edge_check_.size()) == edges_);

  // Degree counts -> exclusive prefix sums.
  var_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  check_offsets_.assign(static_cast<std::size_t>(m_) + 1, 0);
  for (int e = 0; e < edges_; ++e) {
    ++var_offsets_[static_cast<std::size_t>(edge_var_[
        static_cast<std::size_t>(e)]) + 1];
    ++check_offsets_[static_cast<std::size_t>(edge_check_[
        static_cast<std::size_t>(e)]) + 1];
  }
  for (int v = 0; v < n_; ++v)
    var_offsets_[static_cast<std::size_t>(v) + 1] +=
        var_offsets_[static_cast<std::size_t>(v)];
  for (int c = 0; c < m_; ++c)
    check_offsets_[static_cast<std::size_t>(c) + 1] +=
        check_offsets_[static_cast<std::size_t>(c)];

  // Fill slices in global edge-id order, which reproduces each node's
  // add_edge() construction order — the order every message-passing kernel
  // and the NoC packing contract depend on.
  var_edge_ids_.resize(static_cast<std::size_t>(edges_));
  var_neighbors_.resize(static_cast<std::size_t>(edges_));
  check_edge_ids_.resize(static_cast<std::size_t>(edges_));
  check_neighbors_.resize(static_cast<std::size_t>(edges_));
  std::vector<int> var_cursor(var_offsets_.begin(), var_offsets_.end() - 1);
  std::vector<int> check_cursor(check_offsets_.begin(),
                                check_offsets_.end() - 1);
  for (int e = 0; e < edges_; ++e) {
    const int c = edge_check_[static_cast<std::size_t>(e)];
    const int v = edge_var_[static_cast<std::size_t>(e)];
    const int vs = var_cursor[static_cast<std::size_t>(v)]++;
    var_edge_ids_[static_cast<std::size_t>(vs)] = e;
    var_neighbors_[static_cast<std::size_t>(vs)] = c;
    const int cs = check_cursor[static_cast<std::size_t>(c)]++;
    check_edge_ids_[static_cast<std::size_t>(cs)] = e;
    check_neighbors_[static_cast<std::size_t>(cs)] = v;
  }

  // Check-side gather map into var-major message storage: invert
  // var_edge_ids_ (slot -> edge) then compose with check_edge_ids_.
  std::vector<int> slot_of_edge(static_cast<std::size_t>(edges_));
  for (int s = 0; s < edges_; ++s)
    slot_of_edge[static_cast<std::size_t>(
        var_edge_ids_[static_cast<std::size_t>(s)])] = s;
  check_var_slots_.resize(static_cast<std::size_t>(edges_));
  for (int p = 0; p < edges_; ++p)
    check_var_slots_[static_cast<std::size_t>(p)] =
        slot_of_edge[static_cast<std::size_t>(
            check_edge_ids_[static_cast<std::size_t>(p)])];

  if (edges_ <= 65536) {
    check_var_slots16_.resize(static_cast<std::size_t>(edges_));
    for (int p = 0; p < edges_; ++p)
      check_var_slots16_[static_cast<std::size_t>(p)] =
          static_cast<std::uint16_t>(check_var_slots_[
              static_cast<std::size_t>(p)]);
  }

  uniform_var_degree_ = n_ > 0 ? var_degree(0) : 0;
  for (int v = 1; v < n_ && uniform_var_degree_ != 0; ++v)
    if (var_degree(v) != uniform_var_degree_) uniform_var_degree_ = 0;
  uniform_check_degree_ = m_ > 0 ? check_degree(0) : 0;
  for (int c = 1; c < m_ && uniform_check_degree_ != 0; ++c)
    if (check_degree(c) != uniform_check_degree_) uniform_check_degree_ = 0;

  edge_check_.clear();
  edge_check_.shrink_to_fit();
  edge_var_.clear();
  edge_var_.shrink_to_fit();
}

LdpcCode LdpcCode::make_regular(int n, int wc, int wr, Rng& rng) {
  RENOC_CHECK_MSG(n > 0 && wc >= 2 && wr > wc,
                  "need n>0, wc>=2, wr>wc; got n=" << n << " wc=" << wc
                                                   << " wr=" << wr);
  RENOC_CHECK_MSG(n % wr == 0, "n=" << n << " must be divisible by wr=" << wr);
  const int band_rows = n / wr;
  const int m = band_rows * wc;

  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.edge_check_.reserve(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(wc));
  code.edge_var_.reserve(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(wc));

  // Band 0: row i covers a contiguous stripe of columns.
  for (int r = 0; r < band_rows; ++r)
    for (int k = 0; k < wr; ++k) code.add_edge(r, r * wr + k);

  // Bands 1..wc-1: random column permutations of band 0.
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int band = 1; band < wc; ++band) {
    // Fisher–Yates with the experiment RNG for reproducibility.
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(i + 1)));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
    for (int r = 0; r < band_rows; ++r) {
      const int check = band * band_rows + r;
      for (int k = 0; k < wr; ++k)
        code.add_edge(check, perm[static_cast<std::size_t>(r * wr + k)]);
    }
  }
  RENOC_CHECK(code.edges_ == n * wc);
  code.finalize();
  return code;
}

LdpcCode LdpcCode::make_irregular(const std::vector<int>& var_degrees,
                                  int wr, Rng& rng) {
  const int n = static_cast<int>(var_degrees.size());
  RENOC_CHECK_MSG(n > 0 && wr >= 2, "need variables and wr >= 2");
  int total = 0;
  for (int d : var_degrees) {
    RENOC_CHECK_MSG(d >= 1, "every variable needs degree >= 1");
    total += d;
  }
  const int m = (total + wr - 1) / wr;

  // Socket lists: variable sockets in node order, check sockets striped.
  std::vector<int> var_socket;
  var_socket.reserve(static_cast<std::size_t>(total));
  for (int v = 0; v < n; ++v)
    for (int k = 0; k < var_degrees[static_cast<std::size_t>(v)]; ++k)
      var_socket.push_back(v);
  std::vector<int> check_socket;
  check_socket.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < total; ++s) check_socket.push_back(s % m);

  // Random matching (Fisher–Yates on the variable side).
  for (int i = total - 1; i > 0; --i) {
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(var_socket[static_cast<std::size_t>(i)],
              var_socket[static_cast<std::size_t>(j)]);
  }

  // Repair duplicate (check, var) pairings by swapping with a random other
  // socket; a handful of passes suffices for sparse graphs.
  auto has_pair = [&](int c, int v) {
    for (int s = 0; s < total; ++s)
      if (check_socket[static_cast<std::size_t>(s)] == c &&
          var_socket[static_cast<std::size_t>(s)] == v)
        return true;
    return false;
  };
  for (int pass = 0; pass < 32; ++pass) {
    bool clean = true;
    std::vector<std::vector<char>> seen(
        static_cast<std::size_t>(m), std::vector<char>(
                                         static_cast<std::size_t>(n), 0));
    for (int s = 0; s < total; ++s) {
      const int c = check_socket[static_cast<std::size_t>(s)];
      const int v = var_socket[static_cast<std::size_t>(s)];
      if (!seen[static_cast<std::size_t>(c)][static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(c)][static_cast<std::size_t>(v)] = 1;
        continue;
      }
      clean = false;
      // Swap this socket's variable with a random other socket whose swap
      // creates no new duplicate (best effort; retried next pass).
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int o = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(total)));
        const int oc = check_socket[static_cast<std::size_t>(o)];
        const int ov = var_socket[static_cast<std::size_t>(o)];
        if (oc == c || ov == v) continue;
        if (has_pair(c, ov) || has_pair(oc, v)) continue;
        std::swap(var_socket[static_cast<std::size_t>(s)],
                  var_socket[static_cast<std::size_t>(o)]);
        break;
      }
    }
    if (clean) break;
  }

  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.edge_check_.reserve(static_cast<std::size_t>(total));
  code.edge_var_.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < total; ++s)
    code.add_edge(check_socket[static_cast<std::size_t>(s)],
                  var_socket[static_cast<std::size_t>(s)]);
  code.finalize();
  return code;
}

bool LdpcCode::is_codeword(const std::vector<std::uint8_t>& bits) const {
  return syndrome_weight(bits) == 0;
}

int LdpcCode::syndrome_weight(const std::vector<std::uint8_t>& bits) const {
  RENOC_CHECK(static_cast<int>(bits.size()) == n_);
  int violated = 0;
  const int* neighbors = check_neighbors_.data();
  for (int c = 0; c < m_; ++c) {
    const int end = check_offsets_[static_cast<std::size_t>(c) + 1];
    int parity = 0;
    for (int s = check_offsets_[static_cast<std::size_t>(c)]; s < end; ++s)
      parity ^= bits[static_cast<std::size_t>(neighbors[s])] & 1;
    violated += parity;
  }
  return violated;
}

}  // namespace renoc
