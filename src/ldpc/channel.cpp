#include "ldpc/channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace renoc {

AwgnChannel::AwgnChannel(double ebn0_db, double rate, Rng rng)
    : sigma_(0.0), rng_(rng) {
  RENOC_CHECK(rate > 0.0 && rate <= 1.0);
  const double ebn0 = std::pow(10.0, ebn0_db / 10.0);
  sigma_ = std::sqrt(1.0 / (2.0 * rate * ebn0));
}

std::vector<double> AwgnChannel::transmit(
    const std::vector<std::uint8_t>& bits) {
  std::vector<double> llrs;
  llrs.reserve(bits.size());
  const double llr_scale = 2.0 / (sigma_ * sigma_);
  for (std::uint8_t b : bits) {
    const double symbol = (b & 1) ? -1.0 : 1.0;
    const double y = symbol + sigma_ * rng_.next_gaussian();
    llrs.push_back(llr_scale * y);
  }
  return llrs;
}

std::vector<std::int16_t> quantize_llrs(const std::vector<double>& llrs,
                                        int frac_bits, int max_q) {
  RENOC_CHECK(frac_bits >= 0 && frac_bits < 12);
  RENOC_CHECK(max_q > 0 && max_q <= 32767);
  const double scale = static_cast<double>(1 << frac_bits);
  std::vector<std::int16_t> q;
  q.reserve(llrs.size());
  for (double v : llrs) {
    double s = std::round(v * scale);
    s = std::clamp(s, static_cast<double>(-max_q), static_cast<double>(max_q));
    q.push_back(static_cast<std::int16_t>(s));
  }
  return q;
}

}  // namespace renoc
