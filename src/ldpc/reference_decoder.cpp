#include "ldpc/reference_decoder.hpp"

#include <algorithm>
#include <cmath>

#include "ldpc/minsum.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// Numerical guards matching sum_product.cpp.
constexpr double kLlrClamp = 30.0;
constexpr double kTanhClamp = 0.999999999999;

double clamp_llr(double v) { return std::clamp(v, -kLlrClamp, kLlrClamp); }

// --- Seed min-sum kernels, preserved verbatim ------------------------------
// These are the pre-flattening minsum.cpp kernels (std::vector API, branchy
// two-min tracking, per-edge normalize). The reference decoder must pay the
// seed's true cost, so it does not borrow the optimized shared kernels in
// minsum.hpp — those are the "after" side of the comparison.

std::int16_t seed_saturate(std::int32_t v) {
  return static_cast<std::int16_t>(
      std::clamp<std::int32_t>(v, -minsum::kMsgMax, minsum::kMsgMax));
}

std::int16_t seed_normalize(std::int16_t magnitude) {
  const bool neg = magnitude < 0;
  const std::int32_t mag = std::abs(static_cast<std::int32_t>(magnitude));
  const std::int32_t scaled = (3 * mag) >> 2;
  return static_cast<std::int16_t>(neg ? -scaled : scaled);
}

void seed_var_update(std::int16_t channel_llr,
                     const std::vector<std::int16_t>& incoming_r,
                     std::vector<std::int16_t>& out_q) {
  out_q.resize(incoming_r.size());
  std::int32_t total = channel_llr;
  for (std::int16_t r : incoming_r) total += r;
  for (std::size_t i = 0; i < incoming_r.size(); ++i)
    out_q[i] = seed_saturate(total - incoming_r[i]);
}

std::int32_t seed_var_posterior(std::int16_t channel_llr,
                                const std::vector<std::int16_t>& incoming_r) {
  std::int32_t total = channel_llr;
  for (std::int16_t r : incoming_r) total += r;
  return total;
}

void seed_check_update(const std::vector<std::int16_t>& incoming_q,
                       std::vector<std::int16_t>& out_r) {
  const std::size_t deg = incoming_q.size();
  out_r.resize(deg);
  if (deg == 0) return;
  if (deg == 1) {
    out_r[0] = seed_normalize(minsum::kMsgMax);
    return;
  }
  std::int32_t min1 = minsum::kMsgMax + 1, min2 = minsum::kMsgMax + 1;
  std::size_t min1_pos = 0;
  int sign_product = 1;
  for (std::size_t i = 0; i < deg; ++i) {
    const std::int32_t v = incoming_q[i];
    const std::int32_t mag = std::abs(v);
    if (v < 0) sign_product = -sign_product;
    if (mag < min1) {
      min2 = min1;
      min1 = mag;
      min1_pos = i;
    } else if (mag < min2) {
      min2 = mag;
    }
  }
  for (std::size_t i = 0; i < deg; ++i) {
    const std::int32_t extrinsic_min = (i == min1_pos) ? min2 : min1;
    const int self_sign = (incoming_q[i] < 0) ? -1 : 1;
    const int sign = sign_product * self_sign;
    const std::int16_t mag16 = static_cast<std::int16_t>(
        std::min<std::int32_t>(extrinsic_min, minsum::kMsgMax));
    out_r[i] =
        seed_normalize(static_cast<std::int16_t>(sign < 0 ? -mag16 : mag16));
  }
}

}  // namespace

DecodeResult reference_minsum_decode(
    const LdpcCode& code, int iterations, bool early_exit,
    const std::vector<std::int16_t>& channel_llrs) {
  RENOC_CHECK(iterations >= 1);
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  // Edge-indexed message arrays, allocated per call like the seed did.
  std::vector<std::int16_t> r(static_cast<std::size_t>(code.edge_count()), 0);
  std::vector<std::int16_t> q(static_cast<std::size_t>(code.edge_count()), 0);
  std::vector<std::int16_t> in_buf, out_buf;

  DecodeResult result;
  int iter = 0;
  for (; iter < iterations; ++iter) {
    // --- Variable-node phase (uses r of previous iteration) -------------
    for (int v = 0; v < code.n(); ++v) {
      const auto edges = code.var_edges(v);
      in_buf.clear();
      for (const TannerEdge& e : edges)
        in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
      seed_var_update(channel_llrs[static_cast<std::size_t>(v)], in_buf,
                      out_buf);
      for (std::size_t i = 0; i < edges.size(); ++i)
        q[static_cast<std::size_t>(edges[i].edge)] = out_buf[i];
    }
    // --- Check-node phase ------------------------------------------------
    for (int c = 0; c < code.m(); ++c) {
      const auto edges = code.check_edges(c);
      in_buf.clear();
      for (const TannerEdge& e : edges)
        in_buf.push_back(q[static_cast<std::size_t>(e.edge)]);
      seed_check_update(in_buf, out_buf);
      for (std::size_t i = 0; i < edges.size(); ++i)
        r[static_cast<std::size_t>(edges[i].edge)] = out_buf[i];
    }
    if (early_exit) {
      // Tentative hard decision to test the syndrome.
      std::vector<std::uint8_t> bits(static_cast<std::size_t>(code.n()));
      for (int v = 0; v < code.n(); ++v) {
        in_buf.clear();
        for (const TannerEdge& e : code.var_edges(v))
          in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
        bits[static_cast<std::size_t>(v)] =
            seed_var_posterior(channel_llrs[static_cast<std::size_t>(v)],
                               in_buf) < 0
                ? 1
                : 0;
      }
      if (code.is_codeword(bits)) {
        result.hard_bits = std::move(bits);
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return result;
      }
    }
  }

  // Final hard decision from posteriors.
  result.hard_bits.resize(static_cast<std::size_t>(code.n()));
  for (int v = 0; v < code.n(); ++v) {
    in_buf.clear();
    for (const TannerEdge& e : code.var_edges(v))
      in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
    result.hard_bits[static_cast<std::size_t>(v)] =
        seed_var_posterior(channel_llrs[static_cast<std::size_t>(v)],
                           in_buf) < 0
            ? 1
            : 0;
  }
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iter;
  return result;
}

DecodeResult reference_sum_product_decode(
    const LdpcCode& code, int iterations, bool early_exit,
    const std::vector<double>& channel_llrs) {
  RENOC_CHECK(iterations >= 1);
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  std::vector<double> r(static_cast<std::size_t>(code.edge_count()), 0.0);
  std::vector<double> q(static_cast<std::size_t>(code.edge_count()), 0.0);

  auto hard_decide = [&](std::vector<std::uint8_t>& bits) {
    bits.resize(static_cast<std::size_t>(code.n()));
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (const TannerEdge& e : code.var_edges(v))
        total += r[static_cast<std::size_t>(e.edge)];
      bits[static_cast<std::size_t>(v)] = total < 0 ? 1 : 0;
    }
  };

  DecodeResult result;
  for (int iter = 0; iter < iterations; ++iter) {
    // Variable update: q_e = llr + sum r - r_e.
    for (int v = 0; v < code.n(); ++v) {
      double total = channel_llrs[static_cast<std::size_t>(v)];
      for (const TannerEdge& e : code.var_edges(v))
        total += r[static_cast<std::size_t>(e.edge)];
      for (const TannerEdge& e : code.var_edges(v))
        q[static_cast<std::size_t>(e.edge)] =
            clamp_llr(total - r[static_cast<std::size_t>(e.edge)]);
    }
    // Check update: tanh(r_e/2) = prod_{e' != e} tanh(q_{e'}/2).
    for (int c = 0; c < code.m(); ++c) {
      const auto edges = code.check_edges(c);
      // Full product with exclusion by division is numerically fragile
      // near zero; use prefix/suffix products instead.
      const std::size_t deg = edges.size();
      std::vector<double> tanh_q(deg);
      for (std::size_t i = 0; i < deg; ++i)
        tanh_q[i] = std::tanh(
            q[static_cast<std::size_t>(edges[i].edge)] / 2.0);
      std::vector<double> prefix(deg + 1, 1.0), suffix(deg + 1, 1.0);
      for (std::size_t i = 0; i < deg; ++i)
        prefix[i + 1] = prefix[i] * tanh_q[i];
      for (std::size_t i = deg; i-- > 0;)
        suffix[i] = suffix[i + 1] * tanh_q[i];
      for (std::size_t i = 0; i < deg; ++i) {
        const double prod = std::clamp(prefix[i] * suffix[i + 1],
                                       -kTanhClamp, kTanhClamp);
        r[static_cast<std::size_t>(edges[i].edge)] =
            clamp_llr(2.0 * std::atanh(prod));
      }
    }
    if (early_exit) {
      std::vector<std::uint8_t> bits;
      hard_decide(bits);
      if (code.is_codeword(bits)) {
        result.hard_bits = std::move(bits);
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return result;
      }
    }
  }
  hard_decide(result.hard_bits);
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iterations;
  return result;
}

}  // namespace renoc
