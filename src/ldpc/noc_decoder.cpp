#include "ldpc/noc_decoder.hpp"

#include <algorithm>

#include "ldpc/minsum.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// Tag layout: [63:16] global phase, [15:0] source cluster.
std::uint64_t make_tag(int phase, int src_cluster) {
  return (static_cast<std::uint64_t>(phase) << 16) |
         static_cast<std::uint64_t>(src_cluster);
}
int tag_phase(std::uint64_t tag) { return static_cast<int>(tag >> 16); }
int tag_src(std::uint64_t tag) {
  return static_cast<int>(tag & 0xffffULL);
}

}  // namespace

void LdpcNocParams::validate() const {
  RENOC_CHECK(iterations >= 1);
  RENOC_CHECK(values_per_word >= 1 && values_per_word <= 4);
  RENOC_CHECK(vn_cycles_per_edge >= 0 && cn_cycles_per_edge >= 0);
  RENOC_CHECK(phase_overhead_cycles >= 0);
  RENOC_CHECK(max_cycles_per_block > 0);
}

NocLdpcDecoder::NocLdpcDecoder(Fabric& fabric, const LdpcCode& code,
                               Partition partition,
                               std::vector<int> placement,
                               LdpcNocParams params)
    : fabric_(&fabric),
      code_(&code),
      partition_(std::move(partition)),
      placement_(std::move(placement)),
      params_(params) {
  params_.validate();
  partition_.validate(code);
  RENOC_CHECK_MSG(partition_.cluster_count <= fabric.node_count(),
                  "more clusters than tiles");
  set_placement(placement_);
  build_static_tables();
  r_.resize(static_cast<std::size_t>(code.edge_count()), 0);
  q_.resize(static_cast<std::size_t>(code.edge_count()), 0);
}

void NocLdpcDecoder::set_placement(const std::vector<int>& placement) {
  RENOC_CHECK_MSG(static_cast<int>(placement.size()) ==
                      partition_.cluster_count,
                  "placement size mismatch");
  std::vector<int> tile_cluster(
      static_cast<std::size_t>(fabric_->node_count()), -1);
  for (int c = 0; c < partition_.cluster_count; ++c) {
    const int tile = placement[static_cast<std::size_t>(c)];
    RENOC_CHECK_MSG(tile >= 0 && tile < fabric_->node_count(),
                    "tile " << tile << " out of range");
    RENOC_CHECK_MSG(tile_cluster[static_cast<std::size_t>(tile)] < 0,
                    "two clusters placed on tile " << tile);
    tile_cluster[static_cast<std::size_t>(tile)] = c;
  }
  placement_ = placement;
  tile_cluster_ = std::move(tile_cluster);
}

void NocLdpcDecoder::build_static_tables() {
  const LdpcCode& code = *code_;
  const int k = partition_.cluster_count;

  cluster_vns_.assign(static_cast<std::size_t>(k), {});
  cluster_cns_.assign(static_cast<std::size_t>(k), {});
  for (int v = 0; v < code.n(); ++v)
    cluster_vns_[static_cast<std::size_t>(
                     partition_.vn_owner[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (int c = 0; c < code.m(); ++c)
    cluster_cns_[static_cast<std::size_t>(
                     partition_.cn_owner[static_cast<std::size_t>(c)])]
        .push_back(c);

  cluster_ops_ = cluster_edge_ops(code, partition_);

  // Cross-cluster edge lists, canonical ascending-edge-id order. Walking
  // checks in index order and their edges in construction order gives
  // ascending global edge ids within each (src, dst) bucket because edge
  // ids were assigned in exactly that traversal order.
  std::vector<std::vector<std::vector<int>>> vn_to_cn(
      static_cast<std::size_t>(k),
      std::vector<std::vector<int>>(static_cast<std::size_t>(k)));
  for (int c = 0; c < code.m(); ++c) {
    const int co = partition_.cn_owner[static_cast<std::size_t>(c)];
    for (const TannerEdge& e : code.check_edges(c)) {
      const int vo = partition_.vn_owner[static_cast<std::size_t>(e.other)];
      if (vo == co) continue;
      vn_to_cn[static_cast<std::size_t>(vo)][static_cast<std::size_t>(co)]
          .push_back(e.edge);
    }
  }

  vn_pairs_.assign(static_cast<std::size_t>(k), {});
  cn_pairs_.assign(static_cast<std::size_t>(k), {});
  expected_vn_inputs_.assign(static_cast<std::size_t>(k), 0);
  expected_cn_inputs_.assign(static_cast<std::size_t>(k), 0);
  for (int s = 0; s < k; ++s) {
    for (int d = 0; d < k; ++d) {
      auto& edges = vn_to_cn[static_cast<std::size_t>(s)][
          static_cast<std::size_t>(d)];
      if (edges.empty()) continue;
      std::sort(edges.begin(), edges.end());
      // q values flow VN-cluster s -> CN-cluster d...
      vn_pairs_[static_cast<std::size_t>(s)].push_back(
          PairTraffic{s, d, edges});
      ++expected_cn_inputs_[static_cast<std::size_t>(d)];
      // ...and r values flow back CN-cluster d -> VN-cluster s.
      cn_pairs_[static_cast<std::size_t>(d)].push_back(
          PairTraffic{d, s, edges});
      ++expected_vn_inputs_[static_cast<std::size_t>(s)];
    }
  }
}

int NocLdpcDecoder::migration_state_words(int cluster) const {
  RENOC_CHECK(cluster >= 0 && cluster < cluster_count());
  // Channel LLRs for owned variables plus live r messages on their edges,
  // packed like network traffic, plus a fixed configuration block
  // (routing tables, partition descriptors, quantizer setup — what the
  // conversion unit rewrites; Section 2.1).
  constexpr int kConfigWords = 32;
  std::int64_t values = 0;
  for (int v : cluster_vns_[static_cast<std::size_t>(cluster)])
    values += 1 + code_->var_degree(v);
  const int vpw = params_.values_per_word;
  return static_cast<int>((values + vpw - 1) / vpw) + kConfigWords;
}

bool NocLdpcDecoder::inputs_ready(int cluster, int phase) const {
  const auto& rt = runtime_[static_cast<std::size_t>(cluster)];
  const bool is_cn_phase = (phase < 2 * params_.iterations) && (phase % 2 == 1);
  const int expected =
      is_cn_phase ? expected_cn_inputs_[static_cast<std::size_t>(cluster)]
                  : (phase == 0
                         ? 0  // first VN phase needs no r messages
                         : expected_vn_inputs_[static_cast<std::size_t>(
                               cluster)]);
  return rt.received[static_cast<std::size_t>(phase)] >= expected;
}

Cycle NocLdpcDecoder::phase_cost(int cluster, int phase) const {
  const bool is_cn_phase = (phase < 2 * params_.iterations) && (phase % 2 == 1);
  std::uint64_t edge_ops = 0;
  if (is_cn_phase) {
    for (int c : cluster_cns_[static_cast<std::size_t>(cluster)])
      edge_ops += static_cast<std::uint64_t>(code_->check_degree(c));
    return params_.phase_overhead_cycles +
           edge_ops * static_cast<std::uint64_t>(params_.cn_cycles_per_edge);
  }
  for (int v : cluster_vns_[static_cast<std::size_t>(cluster)])
    edge_ops += static_cast<std::uint64_t>(code_->var_degree(v));
  return params_.phase_overhead_cycles +
         edge_ops * static_cast<std::uint64_t>(params_.vn_cycles_per_edge);
}

std::uint64_t NocLdpcDecoder::phase_ops(int cluster, int phase) const {
  const bool is_cn_phase = (phase < 2 * params_.iterations) && (phase % 2 == 1);
  std::uint64_t ops = 0;
  if (is_cn_phase) {
    for (int c : cluster_cns_[static_cast<std::size_t>(cluster)])
      ops += static_cast<std::uint64_t>(code_->check_degree(c));
  } else {
    for (int v : cluster_vns_[static_cast<std::size_t>(cluster)])
      ops += static_cast<std::uint64_t>(code_->var_degree(v));
  }
  return ops;
}

void NocLdpcDecoder::unpack_message(const Message& msg) {
  const int dst_cluster = tile_cluster_[static_cast<std::size_t>(msg.dst)];
  RENOC_CHECK_MSG(dst_cluster >= 0, "message delivered to unmapped tile");
  const int phase = tag_phase(msg.tag);
  const int src_cluster = tag_src(msg.tag);
  RENOC_CHECK(phase >= 0 && phase <= phase_count());

  // Locate the canonical edge list for this (src, dst) pair. A CN-phase
  // message (odd phase) carries r values written from cn_pairs_ of the
  // source; its edges land in r_. VN-phase messages carry q values.
  const bool carries_q = (phase % 2 == 0) && phase < 2 * params_.iterations;
  const auto& pair_lists =
      carries_q ? vn_pairs_[static_cast<std::size_t>(src_cluster)]
                : cn_pairs_[static_cast<std::size_t>(src_cluster)];
  const PairTraffic* pair = nullptr;
  for (const PairTraffic& pt : pair_lists) {
    if (pt.dst == dst_cluster) {
      pair = &pt;
      break;
    }
  }
  RENOC_CHECK_MSG(pair != nullptr, "no traffic entry for received message");

  auto& target = carries_q ? q_ : r_;
  const int vpw = params_.values_per_word;
  for (std::size_t i = 0; i < pair->edges.size(); ++i) {
    const std::uint64_t word = msg.payload[i / static_cast<std::size_t>(vpw)];
    const unsigned shift = 16u * static_cast<unsigned>(i % vpw);
    target[static_cast<std::size_t>(pair->edges[i])] =
        static_cast<std::int16_t>((word >> shift) & 0xffffULL);
  }

  // A message sent during source phase p is consumed by the destination's
  // *next* phase: q of VN phase 2i feeds CN phase 2i+1; r of CN phase 2i+1
  // feeds VN (or final) phase 2i+2.
  const int consumer_phase = phase + 1;
  RENOC_CHECK(consumer_phase < phase_count() + 1);
  auto& rt = runtime_[static_cast<std::size_t>(dst_cluster)];
  ++rt.received[static_cast<std::size_t>(consumer_phase)];
}

void NocLdpcDecoder::send_phase_messages(int cluster, int phase) {
  const bool is_cn_phase = (phase % 2 == 1);
  const auto& pairs = is_cn_phase
                          ? cn_pairs_[static_cast<std::size_t>(cluster)]
                          : vn_pairs_[static_cast<std::size_t>(cluster)];
  const auto& source = is_cn_phase ? r_ : q_;
  const int vpw = params_.values_per_word;
  for (const PairTraffic& pt : pairs) {
    // Pool-backed message: the payload buffer circulates through the
    // fabric's recycling pool, so per-phase messaging stops allocating
    // once every buffer size has been seen.
    Message msg = fabric_->acquire_message();
    msg.src = placement_[static_cast<std::size_t>(cluster)];
    msg.dst = placement_[static_cast<std::size_t>(pt.dst)];
    msg.tag = make_tag(phase, cluster);
    const std::size_t words =
        (pt.edges.size() + static_cast<std::size_t>(vpw) - 1) /
        static_cast<std::size_t>(vpw);
    msg.payload.assign(words, 0);
    for (std::size_t i = 0; i < pt.edges.size(); ++i) {
      const std::uint64_t value = static_cast<std::uint16_t>(
          source[static_cast<std::size_t>(pt.edges[i])]);
      msg.payload[i / static_cast<std::size_t>(vpw)] |=
          value << (16u * static_cast<unsigned>(i % vpw));
    }
    fabric_->send(std::move(msg));
  }
}

void NocLdpcDecoder::start_phase_if_ready(int cluster) {
  auto& rt = runtime_[static_cast<std::size_t>(cluster)];
  if (rt.state != PeState::kWaiting) return;
  if (!inputs_ready(cluster, rt.phase)) return;
  rt.state = PeState::kComputing;
  rt.busy_until = fabric_->now() + phase_cost(cluster, rt.phase);
}

void NocLdpcDecoder::finish_compute(int cluster) {
  auto& rt = runtime_[static_cast<std::size_t>(cluster)];
  const int phase = rt.phase;
  const LdpcCode& code = *code_;

  // Account the compute activity on the hosting tile.
  fabric_->stats()
      .tile(placement_[static_cast<std::size_t>(cluster)])
      .pe_compute_ops += phase_ops(cluster, phase);

  // The PE compute loops stream straight through the flat CSR arrays and
  // the global edge-indexed q_/r_ state with the edge-indexed kernels — the
  // same kernels (and operand order) the golden decoder uses, so the
  // distributed result stays bit-identical with zero per-node scratch.
  const int* var_off = code.var_offsets().data();
  const int* var_ids = code.var_edge_ids().data();

  if (phase == 2 * params_.iterations) {
    // Final hard-decision phase.
    for (int v : cluster_vns_[static_cast<std::size_t>(cluster)])
      hard_bits_[static_cast<std::size_t>(v)] =
          minsum::var_posterior_edges(llr_[static_cast<std::size_t>(v)],
                                      r_.data(), var_ids + var_off[v],
                                      var_off[v + 1] - var_off[v]) < 0
              ? 1
              : 0;
    rt.state = PeState::kDone;
    return;
  }

  if (phase % 2 == 0) {
    // VN phase: q = f(llr, r) for every owned variable.
    for (int v : cluster_vns_[static_cast<std::size_t>(cluster)])
      minsum::var_update_edges(llr_[static_cast<std::size_t>(v)], r_.data(),
                               q_.data(), var_ids + var_off[v],
                               var_off[v + 1] - var_off[v]);
  } else {
    // CN phase: r = g(q) for every owned check.
    const int* check_off = code.check_offsets().data();
    const int* check_ids = code.check_edge_ids().data();
    for (int c : cluster_cns_[static_cast<std::size_t>(cluster)])
      minsum::check_update_edges(q_.data(), r_.data(),
                                 check_ids + check_off[c],
                                 check_off[c + 1] - check_off[c]);
  }

  send_phase_messages(cluster, phase);
  // Same-cluster values were written directly into q_/r_ above, so the
  // only bookkeeping needed is advancing to the next phase.
  rt.phase = phase + 1;
  rt.state = PeState::kWaiting;
}

NocDecodeResult NocLdpcDecoder::decode_block(
    const std::vector<std::int16_t>& channel_llrs) {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());
  RENOC_CHECK_MSG(fabric_->idle(), "fabric must be idle at block start");

  llr_ = channel_llrs;
  std::fill(r_.begin(), r_.end(), static_cast<std::int16_t>(0));
  std::fill(q_.begin(), q_.end(), static_cast<std::int16_t>(0));
  hard_bits_.assign(static_cast<std::size_t>(code.n()), 0);

  runtime_.assign(static_cast<std::size_t>(cluster_count()), ClusterRuntime{});
  for (auto& rt : runtime_)
    rt.received.assign(static_cast<std::size_t>(phase_count() + 1), 0);

  const Cycle start = fabric_->now();
  Cycle done_at = start;
  const std::uint64_t deadline = start + params_.max_cycles_per_block;

  for (;;) {
    // Deliver any completed packets to their clusters.
    for (int tile = 0; tile < fabric_->node_count(); ++tile) {
      while (auto msg = fabric_->try_receive(tile)) {
        unpack_message(*msg);
        fabric_->recycle(std::move(*msg));
      }
    }

    // Advance every PE's state machine.
    bool all_done = true;
    for (int cl = 0; cl < cluster_count(); ++cl) {
      auto& rt = runtime_[static_cast<std::size_t>(cl)];
      if (rt.state == PeState::kWaiting) start_phase_if_ready(cl);
      if (rt.state == PeState::kComputing &&
          fabric_->now() >= rt.busy_until) {
        finish_compute(cl);
        // A cluster whose next phase needs no further input (e.g. all its
        // edges are internal) can begin immediately next cycle.
        if (rt.state == PeState::kDone) done_at = fabric_->now();
      }
      if (rt.state != PeState::kDone) all_done = false;
    }
    if (all_done) break;

    fabric_->step();
    RENOC_CHECK_MSG(fabric_->now() < deadline,
                    "block exceeded max_cycles_per_block — decoder deadlock?");
  }

  NocDecodeResult result;
  result.hard_bits = hard_bits_;
  result.syndrome_ok = code.is_codeword(hard_bits_);
  result.cycles = done_at - start;
  return result;
}

}  // namespace renoc
