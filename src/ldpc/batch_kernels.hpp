// Batched lane-per-codeword min-sum kernels, templated over a util/simd
// lane backend and instantiated once per tier in the util/simd_*.cpp TUs.
//
// Layout: int32 SoA with codewords in lanes — logical element i of
// codeword b lives at soa[i * stride + b], stride a multiple of the lane
// width with zero-filled tail lanes (AlignedVec). Variable-major edge
// slots are contiguous per variable (CSR var_offsets), so the VN sweep
// loads are contiguous; the CN sweep addresses whole lane groups through
// the check-major -> var-major slot map, so no per-lane gathers appear
// anywhere in the iteration loop.
//
// Every lane executes exactly the scalar op sequence of ldpc/minsum.hpp
// (same saturate order, same branch-free two-min tracking, same
// normalize-by-3/4 shift), so each lane's decode — including hard bits,
// syndrome_ok, and iterations_run — is bit-identical to
// MinSumDecoder::decode_into on that codeword. The agreement suite in
// tests/simd_test.cpp and the micro_ldpc CI guard both pin this.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ldpc/minsum.hpp"

namespace renoc::ldpc_kernels {

inline constexpr std::int32_t kMsgMax = minsum::kMsgMax;

// renoc-hot-begin (batched min-sum sweeps: the batch-BER innermost code)

template <typename V>
void batch_vn(const std::int32_t* llr, const std::int32_t* r, std::int32_t* q,
              const int* var_offsets, int n, int stride) {
  constexpr int W = V::kLanes;
  const V lo = V::set1(-kMsgMax);
  const V hi = V::set1(kMsgMax);
  for (int var = 0; var < n; ++var) {
    const int base = var_offsets[var];
    const int degree = var_offsets[var + 1] - base;
    const std::int32_t* llr_row =
        llr + static_cast<std::ptrdiff_t>(var) * stride;
    for (int g = 0; g < stride; g += W) {
      // Wide accumulation first, then per-edge extrinsic subtraction with
      // a single max-then-min saturation — the scalar kernel's order.
      V total = V::load(llr_row + g);
      for (int i = 0; i < degree; ++i) {
        total = V::add(
            total,
            V::load(r + static_cast<std::ptrdiff_t>(base + i) * stride + g));
      }
      for (int i = 0; i < degree; ++i) {
        const std::ptrdiff_t e =
            static_cast<std::ptrdiff_t>(base + i) * stride + g;
        V qv = V::sub(total, V::load(r + e));
        qv = V::min_(V::max_(qv, lo), hi);
        V::store(q + e, qv);
      }
    }
  }
}

template <typename V>
void batch_cn(const std::int32_t* q, std::int32_t* r, const int* check_offsets,
              const int* slots, int m, int stride) {
  constexpr int W = V::kLanes;
  const V kmax = V::set1(kMsgMax);
  const V sentinel = V::set1(kMsgMax + 1);
  const V one = V::set1(1);
  const V deg1_out = V::set1((3 * kMsgMax) >> 2);
  for (int c = 0; c < m; ++c) {
    const int base = check_offsets[c];
    const int degree = check_offsets[c + 1] - base;
    if (degree == 0) continue;
    if (degree == 1) {
      // Degenerate check: the extrinsic min over an empty set saturates.
      std::int32_t* out =
          r + static_cast<std::ptrdiff_t>(slots[base]) * stride;
      for (int g = 0; g < stride; g += W) V::store(out + g, deg1_out);
      continue;
    }
    for (int g = 0; g < stride; g += W) {
      // Branch-free two-min tracking, per lane the exact op sequence of
      // minsum::detail::check_update_impl.
      V min1 = sentinel;
      V min2 = sentinel;
      V min1_pos = V::zero();
      V neg_parity = V::zero();
      for (int i = 0; i < degree; ++i) {
        const V v = V::load(
            q + static_cast<std::ptrdiff_t>(slots[base + i]) * stride + g);
        const V is_neg = V::cmplt(v, V::zero());
        const V mag = V::sub(V::xor_(v, is_neg), is_neg);
        neg_parity = V::xor_(neg_parity, V::and_(is_neg, one));
        const V high = V::max_(mag, min1);
        const V take = V::cmplt(mag, min1);
        min1_pos = V::or_(V::andnot(take, min1_pos), V::and_(take, V::set1(i)));
        min1 = V::min_(mag, min1);
        min2 = V::min_(high, min2);
      }
      // saturate to kMsgMax then normalize by 3/4 (3*x as x+x+x, then an
      // arithmetic shift — magnitudes are non-negative).
      const V m1 = V::min_(min1, kmax);
      const V norm1 = V::template srai<2>(V::add(V::add(m1, m1), m1));
      const V m2 = V::min_(min2, kmax);
      const V norm2 = V::template srai<2>(V::add(V::add(m2, m2), m2));
      for (int i = 0; i < degree; ++i) {
        const std::ptrdiff_t e =
            static_cast<std::ptrdiff_t>(slots[base + i]) * stride + g;
        const V v = V::load(q + e);
        const V sign_bit = V::and_(V::cmplt(v, V::zero()), one);
        const V neg = V::sub(V::zero(), V::xor_(neg_parity, sign_bit));
        const V sel = V::cmpeq(V::set1(i), min1_pos);
        const V mag = V::or_(V::andnot(sel, norm1), V::and_(sel, norm2));
        V::store(r + e, V::sub(V::xor_(mag, neg), neg));
      }
    }
  }
}

template <typename V>
void batch_hard(const std::int32_t* llr, const std::int32_t* r,
                const int* var_offsets, int n, int stride,
                std::int32_t* bits) {
  constexpr int W = V::kLanes;
  const V one = V::set1(1);
  for (int var = 0; var < n; ++var) {
    const int base = var_offsets[var];
    const int degree = var_offsets[var + 1] - base;
    const std::int32_t* llr_row =
        llr + static_cast<std::ptrdiff_t>(var) * stride;
    for (int g = 0; g < stride; g += W) {
      V total = V::load(llr_row + g);
      for (int i = 0; i < degree; ++i) {
        total = V::add(
            total,
            V::load(r + static_cast<std::ptrdiff_t>(base + i) * stride + g));
      }
      V::store(bits + static_cast<std::ptrdiff_t>(var) * stride + g,
               V::and_(V::cmplt(total, V::zero()), one));
    }
  }
}

template <typename V>
void batch_syndrome(const std::int32_t* bits, const int* check_offsets,
                    const int* check_vars, int m, int stride,
                    std::int32_t* violated) {
  constexpr int W = V::kLanes;
  for (int g = 0; g < stride; g += W) V::store(violated + g, V::zero());
  for (int c = 0; c < m; ++c) {
    const int base = check_offsets[c];
    const int end = check_offsets[c + 1];
    for (int g = 0; g < stride; g += W) {
      V parity = V::zero();
      for (int s = base; s < end; ++s) {
        parity = V::xor_(
            parity,
            V::load(bits +
                    static_cast<std::ptrdiff_t>(check_vars[s]) * stride + g));
      }
      V::store(violated + g, V::or_(V::load(violated + g), parity));
    }
  }
}

// renoc-hot-end

}  // namespace renoc::ldpc_kernels
