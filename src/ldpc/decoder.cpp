#include "ldpc/decoder.hpp"

#include "ldpc/minsum.hpp"
#include "util/check.hpp"

namespace renoc {

MinSumDecoder::MinSumDecoder(const LdpcCode& code, int iterations,
                             bool early_exit)
    : code_(&code), iterations_(iterations), early_exit_(early_exit) {
  RENOC_CHECK(iterations_ >= 1);
}

DecodeResult MinSumDecoder::decode(
    const std::vector<std::int16_t>& channel_llrs) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  // Edge-indexed message arrays.
  std::vector<std::int16_t> r(static_cast<std::size_t>(code.edge_count()), 0);
  std::vector<std::int16_t> q(static_cast<std::size_t>(code.edge_count()), 0);
  std::vector<std::int16_t> in_buf, out_buf;

  DecodeResult result;
  int iter = 0;
  for (; iter < iterations_; ++iter) {
    // --- Variable-node phase (uses r of previous iteration) -------------
    for (int v = 0; v < code.n(); ++v) {
      const auto& edges = code.var_edges(v);
      in_buf.clear();
      for (const TannerEdge& e : edges)
        in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
      minsum::var_update(channel_llrs[static_cast<std::size_t>(v)], in_buf,
                         out_buf);
      for (std::size_t i = 0; i < edges.size(); ++i)
        q[static_cast<std::size_t>(edges[i].edge)] = out_buf[i];
    }
    // --- Check-node phase -------------------------------------------------
    for (int c = 0; c < code.m(); ++c) {
      const auto& edges = code.check_edges(c);
      in_buf.clear();
      for (const TannerEdge& e : edges)
        in_buf.push_back(q[static_cast<std::size_t>(e.edge)]);
      minsum::check_update(in_buf, out_buf);
      for (std::size_t i = 0; i < edges.size(); ++i)
        r[static_cast<std::size_t>(edges[i].edge)] = out_buf[i];
    }
    if (early_exit_) {
      // Tentative hard decision to test the syndrome.
      std::vector<std::uint8_t> bits(static_cast<std::size_t>(code.n()));
      for (int v = 0; v < code.n(); ++v) {
        in_buf.clear();
        for (const TannerEdge& e : code.var_edges(v))
          in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
        bits[static_cast<std::size_t>(v)] =
            minsum::var_posterior(channel_llrs[static_cast<std::size_t>(v)],
                                  in_buf) < 0
                ? 1
                : 0;
      }
      if (code.is_codeword(bits)) {
        result.hard_bits = std::move(bits);
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return result;
      }
    }
  }

  // Final hard decision from posteriors.
  result.hard_bits.resize(static_cast<std::size_t>(code.n()));
  for (int v = 0; v < code.n(); ++v) {
    in_buf.clear();
    for (const TannerEdge& e : code.var_edges(v))
      in_buf.push_back(r[static_cast<std::size_t>(e.edge)]);
    result.hard_bits[static_cast<std::size_t>(v)] =
        minsum::var_posterior(channel_llrs[static_cast<std::size_t>(v)],
                              in_buf) < 0
            ? 1
            : 0;
  }
  result.syndrome_ok = code_->is_codeword(result.hard_bits);
  result.iterations_run = iter;
  return result;
}

}  // namespace renoc
