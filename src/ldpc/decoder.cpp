#include "ldpc/decoder.hpp"

#include <algorithm>

#include "ldpc/minsum.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// Fixed-degree sweeps: with DEG a compile-time constant the inlined kernels
// unroll completely and the offset array is never touched. The generic
// fallbacks read per-node offsets instead; both produce identical messages.

template <int DEG>
void vn_phase_fixed(int n, const std::int16_t* llr, const std::int16_t* r,
                    std::int16_t* q) {
  for (int v = 0; v < n; ++v)
    minsum::var_update(llr[v], r + static_cast<std::ptrdiff_t>(v) * DEG,
                       q + static_cast<std::ptrdiff_t>(v) * DEG, DEG);
}

template <int DEG, typename SlotT>
void cn_phase_fixed(int m, const std::int16_t* q, std::int16_t* r,
                    const SlotT* slots) {
  for (int c = 0; c < m; ++c)
    minsum::check_update_edges_fixed<DEG>(
        q, r, slots + static_cast<std::ptrdiff_t>(c) * DEG);
}

template <int DEG>
void hard_decide_fixed(int n, const std::int16_t* llr, const std::int16_t* r,
                       std::uint8_t* bits) {
  for (int v = 0; v < n; ++v)
    bits[v] = minsum::var_posterior(
                  llr[v], r + static_cast<std::ptrdiff_t>(v) * DEG, DEG) < 0
                  ? 1
                  : 0;
}

void vn_phase(const LdpcCode& code, const std::int16_t* llr,
              const std::int16_t* r, std::int16_t* q) {
  const int n = code.n();
  switch (code.uniform_var_degree()) {
    case 2: return vn_phase_fixed<2>(n, llr, r, q);
    case 3: return vn_phase_fixed<3>(n, llr, r, q);
    case 4: return vn_phase_fixed<4>(n, llr, r, q);
    case 5: return vn_phase_fixed<5>(n, llr, r, q);
    case 6: return vn_phase_fixed<6>(n, llr, r, q);
    default: break;
  }
  const int* off = code.var_offsets().data();
  for (int v = 0; v < n; ++v)
    minsum::var_update(llr[v], r + off[v], q + off[v], off[v + 1] - off[v]);
}

/// Runs the fixed-degree check sweep if `deg` has a specialization;
/// returns false to send the caller to the generic loop. One ladder for
/// both slot-index widths so a new degree cannot be added to one and
/// silently miss the other.
template <typename SlotT>
bool cn_phase_fixed_dispatch(int deg, int m, const std::int16_t* q,
                             std::int16_t* r, const SlotT* slots) {
  switch (deg) {
    case 4: cn_phase_fixed<4>(m, q, r, slots); return true;
    case 5: cn_phase_fixed<5>(m, q, r, slots); return true;
    case 6: cn_phase_fixed<6>(m, q, r, slots); return true;
    case 7: cn_phase_fixed<7>(m, q, r, slots); return true;
    case 8: cn_phase_fixed<8>(m, q, r, slots); return true;
    default: return false;
  }
}

void cn_phase(const LdpcCode& code, const std::int16_t* q, std::int16_t* r) {
  const int m = code.m();
  const int deg = code.uniform_check_degree();
  if (!code.check_var_slots16().empty() &&
      cn_phase_fixed_dispatch(deg, m, q, r, code.check_var_slots16().data()))
    return;
  const int* slots = code.check_var_slots().data();
  if (cn_phase_fixed_dispatch(deg, m, q, r, slots)) return;
  const int* off = code.check_offsets().data();
  for (int c = 0; c < m; ++c)
    minsum::check_update_edges(q, r, slots + off[c], off[c + 1] - off[c]);
}

void hard_decide(const LdpcCode& code, const std::int16_t* llr,
                 const std::int16_t* r, std::uint8_t* bits) {
  const int n = code.n();
  switch (code.uniform_var_degree()) {
    case 2: return hard_decide_fixed<2>(n, llr, r, bits);
    case 3: return hard_decide_fixed<3>(n, llr, r, bits);
    case 4: return hard_decide_fixed<4>(n, llr, r, bits);
    case 5: return hard_decide_fixed<5>(n, llr, r, bits);
    case 6: return hard_decide_fixed<6>(n, llr, r, bits);
    default: break;
  }
  const int* off = code.var_offsets().data();
  for (int v = 0; v < n; ++v)
    bits[v] = minsum::var_posterior(llr[v], r + off[v],
                                    off[v + 1] - off[v]) < 0
                  ? 1
                  : 0;
}

}  // namespace

MinSumDecoder::MinSumDecoder(const LdpcCode& code, int iterations,
                             bool early_exit)
    : code_(&code), iterations_(iterations), early_exit_(early_exit) {
  RENOC_CHECK(iterations_ >= 1);
  r_.resize(static_cast<std::size_t>(code.edge_count()));
  q_.resize(static_cast<std::size_t>(code.edge_count()));
}

DecodeResult MinSumDecoder::decode(
    const std::vector<std::int16_t>& channel_llrs) const {
  DecodeResult result;
  decode_into(channel_llrs, result);
  return result;
}

void MinSumDecoder::decode_into(const std::vector<std::int16_t>& channel_llrs,
                                DecodeResult& result) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  // Messages are stored var-major (see the class comment); r_ and q_ are
  // the check->var and var->check halves of the per-decoder workspace.
  // Only r_ needs clearing: the first VN phase reads it, while every q_
  // slot is written by vn_phase (each edge belongs to exactly one
  // variable) before cn_phase reads any.
  std::fill(r_.begin(), r_.end(), static_cast<std::int16_t>(0));
  // renoc-lint-allow(hot-alloc): sizes once; reused results keep capacity
  result.hard_bits.resize(static_cast<std::size_t>(code.n()));

  const std::int16_t* llr = channel_llrs.data();

  // renoc-hot-begin (flooding iteration loop: the BER-sweep inner kernel)
  int iter = 0;
  for (; iter < iterations_; ++iter) {
    // Variable-node phase (uses r of the previous iteration), then
    // check-node phase — the flooding schedule of the hardware.
    vn_phase(code, llr, r_.data(), q_.data());
    cn_phase(code, q_.data(), r_.data());
    if (early_exit_) {
      // Tentative hard decision to test the syndrome.
      hard_decide(code, llr, r_.data(), result.hard_bits.data());
      if (code.is_codeword(result.hard_bits)) {
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return;
      }
    }
  }

  // Final hard decision from posteriors.
  hard_decide(code, llr, r_.data(), result.hard_bits.data());
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iter;
  // renoc-hot-end
}

}  // namespace renoc
