#include "ldpc/decoder.hpp"

#include <algorithm>

#include "ldpc/minsum.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

// Fixed-degree sweeps: with DEG a compile-time constant the inlined kernels
// unroll completely and the offset array is never touched. The generic
// fallbacks read per-node offsets instead; both produce identical messages.

template <int DEG>
void vn_phase_fixed(int n, const std::int16_t* llr, const std::int16_t* r,
                    std::int16_t* q) {
  for (int v = 0; v < n; ++v)
    minsum::var_update(llr[v], r + static_cast<std::ptrdiff_t>(v) * DEG,
                       q + static_cast<std::ptrdiff_t>(v) * DEG, DEG);
}

template <int DEG, typename SlotT>
void cn_phase_fixed(int m, const std::int16_t* q, std::int16_t* r,
                    const SlotT* slots) {
  for (int c = 0; c < m; ++c)
    minsum::check_update_edges_fixed<DEG>(
        q, r, slots + static_cast<std::ptrdiff_t>(c) * DEG);
}

template <int DEG>
void hard_decide_fixed(int n, const std::int16_t* llr, const std::int16_t* r,
                       std::uint8_t* bits) {
  for (int v = 0; v < n; ++v)
    bits[v] = minsum::var_posterior(
                  llr[v], r + static_cast<std::ptrdiff_t>(v) * DEG, DEG) < 0
                  ? 1
                  : 0;
}

void vn_phase(const LdpcCode& code, const std::int16_t* llr,
              const std::int16_t* r, std::int16_t* q) {
  const int n = code.n();
  switch (code.uniform_var_degree()) {
    case 2: return vn_phase_fixed<2>(n, llr, r, q);
    case 3: return vn_phase_fixed<3>(n, llr, r, q);
    case 4: return vn_phase_fixed<4>(n, llr, r, q);
    case 5: return vn_phase_fixed<5>(n, llr, r, q);
    case 6: return vn_phase_fixed<6>(n, llr, r, q);
    default: break;
  }
  const int* off = code.var_offsets().data();
  for (int v = 0; v < n; ++v)
    minsum::var_update(llr[v], r + off[v], q + off[v], off[v + 1] - off[v]);
}

/// Runs the fixed-degree check sweep if `deg` has a specialization;
/// returns false to send the caller to the generic loop. One ladder for
/// both slot-index widths so a new degree cannot be added to one and
/// silently miss the other.
template <typename SlotT>
bool cn_phase_fixed_dispatch(int deg, int m, const std::int16_t* q,
                             std::int16_t* r, const SlotT* slots) {
  switch (deg) {
    case 4: cn_phase_fixed<4>(m, q, r, slots); return true;
    case 5: cn_phase_fixed<5>(m, q, r, slots); return true;
    case 6: cn_phase_fixed<6>(m, q, r, slots); return true;
    case 7: cn_phase_fixed<7>(m, q, r, slots); return true;
    case 8: cn_phase_fixed<8>(m, q, r, slots); return true;
    default: return false;
  }
}

void cn_phase(const LdpcCode& code, const std::int16_t* q, std::int16_t* r) {
  const int m = code.m();
  const int deg = code.uniform_check_degree();
  if (!code.check_var_slots16().empty() &&
      cn_phase_fixed_dispatch(deg, m, q, r, code.check_var_slots16().data()))
    return;
  const int* slots = code.check_var_slots().data();
  if (cn_phase_fixed_dispatch(deg, m, q, r, slots)) return;
  const int* off = code.check_offsets().data();
  for (int c = 0; c < m; ++c)
    minsum::check_update_edges(q, r, slots + off[c], off[c + 1] - off[c]);
}

void hard_decide(const LdpcCode& code, const std::int16_t* llr,
                 const std::int16_t* r, std::uint8_t* bits) {
  const int n = code.n();
  switch (code.uniform_var_degree()) {
    case 2: return hard_decide_fixed<2>(n, llr, r, bits);
    case 3: return hard_decide_fixed<3>(n, llr, r, bits);
    case 4: return hard_decide_fixed<4>(n, llr, r, bits);
    case 5: return hard_decide_fixed<5>(n, llr, r, bits);
    case 6: return hard_decide_fixed<6>(n, llr, r, bits);
    default: break;
  }
  const int* off = code.var_offsets().data();
  for (int v = 0; v < n; ++v)
    bits[v] = minsum::var_posterior(llr[v], r + off[v],
                                    off[v + 1] - off[v]) < 0
                  ? 1
                  : 0;
}

}  // namespace

MinSumDecoder::MinSumDecoder(const LdpcCode& code, int iterations,
                             bool early_exit)
    : code_(&code), iterations_(iterations), early_exit_(early_exit) {
  RENOC_CHECK(iterations_ >= 1);
  r_.resize(static_cast<std::size_t>(code.edge_count()));
  q_.resize(static_cast<std::size_t>(code.edge_count()));
}

DecodeResult MinSumDecoder::decode(
    const std::vector<std::int16_t>& channel_llrs) const {
  DecodeResult result;
  decode_into(channel_llrs, result);
  return result;
}

void MinSumDecoder::decode_into(const std::vector<std::int16_t>& channel_llrs,
                                DecodeResult& result) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK(static_cast<int>(channel_llrs.size()) == code.n());

  // Messages are stored var-major (see the class comment); r_ and q_ are
  // the check->var and var->check halves of the per-decoder workspace.
  // Only r_ needs clearing: the first VN phase reads it, while every q_
  // slot is written by vn_phase (each edge belongs to exactly one
  // variable) before cn_phase reads any.
  std::fill(r_.begin(), r_.end(), static_cast<std::int16_t>(0));
  // renoc-lint-allow(hot-alloc): sizes once; reused results keep capacity
  result.hard_bits.resize(static_cast<std::size_t>(code.n()));

  const std::int16_t* llr = channel_llrs.data();

  // renoc-hot-begin (flooding iteration loop: the BER-sweep inner kernel)
  int iter = 0;
  for (; iter < iterations_; ++iter) {
    // Variable-node phase (uses r of the previous iteration), then
    // check-node phase — the flooding schedule of the hardware.
    vn_phase(code, llr, r_.data(), q_.data());
    cn_phase(code, q_.data(), r_.data());
    if (early_exit_) {
      // Tentative hard decision to test the syndrome.
      hard_decide(code, llr, r_.data(), result.hard_bits.data());
      if (code.is_codeword(result.hard_bits)) {
        result.syndrome_ok = true;
        result.iterations_run = iter + 1;
        return;
      }
    }
  }

  // Final hard decision from posteriors.
  hard_decide(code, llr, r_.data(), result.hard_bits.data());
  result.syndrome_ok = code.is_codeword(result.hard_bits);
  result.iterations_run = iter;
  // renoc-hot-end
}

MinSumBatchDecoder::MinSumBatchDecoder(const LdpcCode& code, int iterations,
                                       bool early_exit, int max_batch,
                                       const simd::KernelTable* kernels)
    : code_(&code),
      iterations_(iterations),
      early_exit_(early_exit),
      max_batch_(max_batch),
      stride_(0),
      kernels_(kernels != nullptr ? kernels : &simd::kernels()) {
  RENOC_CHECK(iterations_ >= 1);
  RENOC_CHECK_MSG(max_batch_ >= 1, "batch capacity must be positive");
  // One lane group is 8 int32 lanes at the widest tier; a full-group
  // stride keeps every kernel's lane loop remainder-free (tail lanes are
  // zero-filled and decode a phantom all-zero-LLR codeword harmlessly).
  stride_ = (max_batch_ + 7) / 8 * 8;
  const std::size_t edges =
      static_cast<std::size_t>(code.edge_count()) *
      static_cast<std::size_t>(stride_);
  llr_.resize(static_cast<std::size_t>(code.n()) *
              static_cast<std::size_t>(stride_));
  r_.resize(edges);
  q_.resize(edges);
  bits_.resize(static_cast<std::size_t>(code.n()) *
               static_cast<std::size_t>(stride_));
  violated_.resize(static_cast<std::size_t>(stride_));
  active_.assign(static_cast<std::size_t>(stride_), 0);
}

void MinSumBatchDecoder::decode_batch_into(const std::int16_t* const* llrs,
                                           int batch,
                                           DecodeResult* results) const {
  const LdpcCode& code = *code_;
  RENOC_CHECK_MSG(batch >= 1 && batch <= max_batch_,
                  "batch " << batch << " outside 1.." << max_batch_);
  const int n = code.n();
  const int m = code.m();
  const int stride = stride_;
  const int* voff = code.var_offsets().data();
  const int* coff = code.check_offsets().data();
  const int* slots = code.check_var_slots().data();
  const int* cvars = code.check_neighbors().data();
  const simd::KernelTable& k = *kernels_;

  // Widen + transpose the channel LLRs into the lane SoA; unused lanes
  // stay zero so they cannot produce spurious saturation or sign traffic.
  std::int32_t* llr32 = llr_.data();
  for (int v = 0; v < n; ++v) {
    std::int32_t* row = llr32 + static_cast<std::ptrdiff_t>(v) * stride;
    int b = 0;
    for (; b < batch; ++b) row[b] = llrs[b][v];
    for (; b < stride; ++b) row[b] = 0;
  }
  std::fill(r_.data(),
            r_.data() + static_cast<std::ptrdiff_t>(code.edge_count()) * stride,
            0);
  for (int b = 0; b < batch; ++b) {
    // renoc-lint-allow(hot-alloc): sizes once; reused results keep capacity
    results[b].hard_bits.resize(static_cast<std::size_t>(n));
    results[b].syndrome_ok = false;
    results[b].iterations_run = 0;
    active_[static_cast<std::size_t>(b)] = 1;
  }
  for (int b = batch; b < stride; ++b) active_[static_cast<std::size_t>(b)] = 0;
  int live = batch;

  const auto record_lane = [&](int b, bool ok, int iterations_run) {
    DecodeResult& out = results[b];
    const std::int32_t* bits = bits_.data();
    std::uint8_t* hard = out.hard_bits.data();
    for (int v = 0; v < n; ++v) {
      hard[v] = static_cast<std::uint8_t>(
          bits[static_cast<std::ptrdiff_t>(v) * stride + b]);
    }
    out.syndrome_ok = ok;
    out.iterations_run = iterations_run;
  };

  // renoc-hot-begin (batched flooding loop: the batch-BER inner kernel)
  for (int iter = 0; iter < iterations_; ++iter) {
    k.ldpc_batch_vn(llr32, r_.data(), q_.data(), voff, n, stride);
    k.ldpc_batch_cn(q_.data(), r_.data(), coff, slots, m, stride);
    if (early_exit_) {
      k.ldpc_batch_hard(llr32, r_.data(), voff, n, stride, bits_.data());
      k.ldpc_batch_syndrome(bits_.data(), coff, cvars, m, stride,
                            violated_.data());
      for (int b = 0; b < batch; ++b) {
        if (active_[static_cast<std::size_t>(b)] == 0 || violated_[b] != 0)
          continue;
        record_lane(b, true, iter + 1);
        active_[static_cast<std::size_t>(b)] = 0;
        --live;
      }
      if (live == 0) return;
    }
  }
  // Lanes that never converged (or all lanes, without early_exit): final
  // posterior hard decision + syndrome, exactly like the scalar epilogue.
  k.ldpc_batch_hard(llr32, r_.data(), voff, n, stride, bits_.data());
  k.ldpc_batch_syndrome(bits_.data(), coff, cvars, m, stride,
                        violated_.data());
  for (int b = 0; b < batch; ++b) {
    if (active_[static_cast<std::size_t>(b)] == 0) continue;
    record_lane(b, violated_[b] == 0, iterations_);
  }
  // renoc-hot-end
}

}  // namespace renoc
