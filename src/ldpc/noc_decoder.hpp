// The LDPC decoder distributed over the NoC fabric.
//
// Each cluster of the Partition runs on one PE (tile). Decoding follows the
// flooding schedule of the golden MinSumDecoder, but inter-cluster message
// values physically traverse the mesh as wormhole packets:
//
//   per iteration:
//     VN phase: every PE, once it holds all check-to-variable (r) values
//               for its variables, computes q values for all incident
//               edges (busy for cycles proportional to its edge count)
//               and sends one aggregated packet per destination PE;
//     CN phase: symmetric, computing r values;
//   final:      after the last CN phase, PEs compute hard decisions.
//
// Values are int16 fixed-point, packed four per 64-bit flit word in a
// canonical per-(source,destination,phase) edge order precomputed at
// construction, so sender and receiver agree without per-value headers.
// All arithmetic goes through ldpc/minsum.hpp with the same operand
// ordering as the golden decoder, making the distributed result
// bit-identical — the key functional invariant under test.
//
// Timing is value-independent (fixed iterations, static message sets), so
// every block takes the same number of cycles: the deterministic block time
// the paper aligns migration periods with.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "ldpc/partition.hpp"
#include "noc/fabric.hpp"

namespace renoc {

struct LdpcNocParams {
  int iterations = 10;
  int values_per_word = 4;       ///< int16 values packed per flit word
  int vn_cycles_per_edge = 1;    ///< PE cycles per edge in a VN update
  int cn_cycles_per_edge = 1;    ///< PE cycles per edge in a CN update
  int phase_overhead_cycles = 8; ///< fixed sequencing cost per phase
  std::uint64_t max_cycles_per_block = 5'000'000;  ///< deadlock guard

  void validate() const;
};

struct NocDecodeResult {
  std::vector<std::uint8_t> hard_bits;
  bool syndrome_ok = false;
  Cycle cycles = 0;  ///< block latency in fabric cycles
};

class NocLdpcDecoder {
 public:
  /// `placement[cluster]` is the tile hosting that cluster; it must be an
  /// injective map into the fabric's nodes. Cluster count must not exceed
  /// the node count.
  NocLdpcDecoder(Fabric& fabric, const LdpcCode& code, Partition partition,
                 std::vector<int> placement, LdpcNocParams params = {});

  /// Re-homes clusters onto new tiles (runtime reconfiguration). Must not
  /// be called mid-block.
  void set_placement(const std::vector<int>& placement);
  const std::vector<int>& placement() const { return placement_; }

  /// Decodes one block, driving the fabric until completion.
  NocDecodeResult decode_block(const std::vector<std::int16_t>& channel_llrs);

  int cluster_count() const { return partition_.cluster_count; }
  const Partition& partition() const { return partition_; }

  /// Edge-ops per cluster per full iteration (compute-power proxy).
  const std::vector<std::uint64_t>& cluster_ops() const {
    return cluster_ops_;
  }

  /// Words of configuration+state a PE must ship when its cluster migrates:
  /// channel LLRs + live r messages (packed 4/word) + a fixed config block.
  int migration_state_words(int cluster) const;

 private:
  // Phase indices: iteration i contributes phases 2i (VN) and 2i+1 (CN);
  // phase 2*iterations is the final hard-decision phase.
  int phase_count() const { return 2 * params_.iterations + 1; }

  enum class PeState { kWaiting, kComputing, kDone };

  struct ClusterRuntime {
    PeState state = PeState::kWaiting;
    int phase = 0;
    Cycle busy_until = 0;
    std::vector<int> received;  // per phase, messages received so far
  };

  // Static per-(src,dst) edge lists, canonical order (ascending edge id).
  struct PairTraffic {
    int src = 0;
    int dst = 0;
    std::vector<int> edges;
  };

  void build_static_tables();
  void unpack_message(const Message& msg);
  void start_phase_if_ready(int cluster);
  void finish_compute(int cluster);
  void send_phase_messages(int cluster, int phase);
  bool inputs_ready(int cluster, int phase) const;
  Cycle phase_cost(int cluster, int phase) const;
  std::uint64_t phase_ops(int cluster, int phase) const;

  Fabric* fabric_;
  const LdpcCode* code_;
  Partition partition_;
  std::vector<int> placement_;      // cluster -> tile
  std::vector<int> tile_cluster_;   // tile -> cluster (-1 none)
  LdpcNocParams params_;

  // Static structure.
  std::vector<std::vector<int>> cluster_vns_;
  std::vector<std::vector<int>> cluster_cns_;
  std::vector<std::uint64_t> cluster_ops_;
  // vn_pairs_[s]: traffic sent by cluster s during VN phases (q values,
  // keyed by destination CN cluster). cn_pairs_ symmetric for r values.
  std::vector<std::vector<PairTraffic>> vn_pairs_;
  std::vector<std::vector<PairTraffic>> cn_pairs_;
  // Expected distinct incoming messages per cluster for each phase kind.
  std::vector<int> expected_vn_inputs_;  // r-messages needed before VN/final
  std::vector<int> expected_cn_inputs_;  // q-messages needed before CN

  // Per-block dynamic state.
  std::vector<std::int16_t> r_;  // edge-indexed check->var messages
  std::vector<std::int16_t> q_;  // edge-indexed var->check messages
  std::vector<std::int16_t> llr_;
  std::vector<std::uint8_t> hard_bits_;
  std::vector<ClusterRuntime> runtime_;
};

}  // namespace renoc
