// Shared fixed-point min-sum arithmetic.
//
// Both the golden (software) decoder and the NoC-mapped decoder call these
// kernels with identical operand ordering, which guarantees bit-identical
// results — the property the tests use to prove that distributing the
// decoder over the network does not change its function.
//
// Messages are int16 fixed-point LLRs saturated to [-kMsgMax, kMsgMax].
// Check updates use normalized min-sum with factor 3/4 (exact in fixed
// point: (3*m) >> 2), the standard hardware-friendly normalization.
//
// Two kernel flavors share one implementation:
//   - contiguous: operate on a dense span of `degree` messages (the
//     pre-flattening std::vector API wraps these for tests);
//   - edge-indexed: gather/scatter through `edge_ids` into the global
//     edge-indexed q/r arrays in place — no copy-in/out, no allocation.
// The edge-indexed flavor is what the flat decoders stream through: a
// node's slice of LdpcCode's CSR arrays names exactly the slots to touch,
// in construction order, so results stay bit-identical to the seed loops.
// Kernels are defined inline here so the per-node calls in the decode loops
// melt into the loops themselves; the check kernel tracks its two minima
// branchlessly and normalizes once per magnitude instead of once per edge
// (a check emits only two distinct output magnitudes).
#pragma once

#include <cstdint>
#include <vector>

namespace renoc::minsum {

inline constexpr std::int16_t kMsgMax = 127;

/// Saturation to the message domain.
inline std::int16_t saturate(std::int32_t v) {
  const std::int32_t lo = v < -kMsgMax ? -kMsgMax : v;
  return static_cast<std::int16_t>(lo > kMsgMax ? kMsgMax : lo);
}

/// Saturating addition in the message domain.
inline std::int16_t sat_add(std::int16_t a, std::int16_t b) {
  return saturate(static_cast<std::int32_t>(a) + b);
}

/// Normalization by 3/4, preserving sign, exact in integer arithmetic.
inline std::int16_t normalize(std::int16_t magnitude) {
  const bool neg = magnitude < 0;
  const std::int32_t mag = neg ? -static_cast<std::int32_t>(magnitude)
                               : static_cast<std::int32_t>(magnitude);
  const std::int32_t scaled = (3 * mag) >> 2;
  return static_cast<std::int16_t>(neg ? -scaled : scaled);
}

namespace detail {

// One implementation per kernel, parameterized over the slot map: the
// contiguous flavor uses the identity, the edge-indexed flavor maps
// position i to edge_ids[i]. Both therefore share arithmetic and operand
// order exactly, which is what keeps every decoder bit-identical.
struct IdentitySlots {
  std::size_t operator()(int i) const { return static_cast<std::size_t>(i); }
};
struct EdgeSlots {
  const int* edge_ids;
  std::size_t operator()(int i) const {
    return static_cast<std::size_t>(edge_ids[i]);
  }
};

// renoc-hot-begin (per-node message kernels: the BER-sweep innermost code)
template <typename Slots>
void var_update_impl(std::int16_t channel_llr, const std::int16_t* r_in,
                     std::int16_t* q_out, int degree, Slots slots) {
  // Wide accumulation first (order-independent), then per-edge extrinsic
  // subtraction with a single saturation — the canonical ordering.
  std::int32_t total = channel_llr;
  for (int i = 0; i < degree; ++i) total += r_in[slots(i)];
  for (int i = 0; i < degree; ++i)
    q_out[slots(i)] = saturate(total - r_in[slots(i)]);
}

template <typename Slots>
std::int32_t var_posterior_impl(std::int16_t channel_llr,
                                const std::int16_t* r_in, int degree,
                                Slots slots) {
  std::int32_t total = channel_llr;
  for (int i = 0; i < degree; ++i) total += r_in[slots(i)];
  return total;
}

template <typename Slots>
void check_update_impl(const std::int16_t* q_in, std::int16_t* r_out,
                       int degree, Slots slots) {
  if (degree == 0) return;
  if (degree == 1) {
    // Degenerate check: the extrinsic min over an empty set saturates.
    r_out[slots(0)] = normalize(kMsgMax);
    return;
  }
  // Two smallest magnitudes + parity of negative signs in one branch-free
  // pass: `hi = max(mag, min1)` is the value min2 must absorb whichever way
  // the min1 update goes, so no select nests inside another (nested
  // ternaries come out as real branches under gcc -O3, and min-sum inputs
  // are noise — see check_update_edges_fixed for the full story).
  std::int32_t min1 = kMsgMax + 1, min2 = kMsgMax + 1;
  std::int32_t min1_pos = 0;
  std::uint32_t neg_parity = 0;
  for (int i = 0; i < degree; ++i) {
    const std::int32_t v = q_in[slots(i)];
    const std::int32_t mag = v < 0 ? -v : v;
    neg_parity ^= static_cast<std::uint32_t>(v < 0);
    const std::int32_t hi = mag > min1 ? mag : min1;
    const std::int32_t take = -static_cast<std::int32_t>(mag < min1);
    min1_pos = (min1_pos & ~take) | (i & take);
    min1 = mag < min1 ? mag : min1;
    min2 = hi < min2 ? hi : min2;
  }
  // Every edge sees magnitude min1 except min1_pos, which sees min2; both
  // saturate to kMsgMax then normalize by 3/4 — hoisted out of the loop.
  const std::int32_t norm1 =
      (3 * (min1 > kMsgMax ? static_cast<std::int32_t>(kMsgMax) : min1)) >> 2;
  const std::int32_t norm2 =
      (3 * (min2 > kMsgMax ? static_cast<std::int32_t>(kMsgMax) : min2)) >> 2;
  for (int i = 0; i < degree; ++i) {
    // Sign excluding edge i: parity of all negative inputs minus this
    // edge's sign (zero treated as positive).
    const std::int32_t neg = -static_cast<std::int32_t>(
        neg_parity ^ static_cast<std::uint32_t>(q_in[slots(i)] < 0));
    const std::int32_t sel = -static_cast<std::int32_t>(i == min1_pos);
    const std::int32_t mag = (norm1 & ~sel) | (norm2 & sel);
    r_out[slots(i)] = static_cast<std::int16_t>((mag ^ neg) - neg);
  }
}
// renoc-hot-end

}  // namespace detail

// --- Contiguous kernels ----------------------------------------------------

/// Variable-node update for one variable:
/// q_e = sat( llr + sum_{e'} r_{e'} - r_e ) for each incident edge e.
/// `r_in` holds the r values in the variable's edge order; the q values are
/// written to `q_out` in the same order (in-place r_in == q_out is fine).
inline void var_update(std::int16_t channel_llr, const std::int16_t* r_in,
                       std::int16_t* q_out, int degree) {
  detail::var_update_impl(channel_llr, r_in, q_out, degree,
                          detail::IdentitySlots{});
}

/// Posterior (APP) value for hard decision: llr + sum of all incoming r.
inline std::int32_t var_posterior(std::int16_t channel_llr,
                                  const std::int16_t* r_in, int degree) {
  return detail::var_posterior_impl(channel_llr, r_in, degree,
                                    detail::IdentitySlots{});
}

/// Check-node update for one check:
/// r_e = norm( prod_{e'!=e} sign(q_{e'}) * min_{e'!=e} |q_{e'}| ).
/// Zero inputs are treated as positive sign with magnitude 0 (hardware
/// convention). Input and output share the check's edge order; `q_in` and
/// `r_out` must not alias (the output pass re-reads the inputs).
inline void check_update(const std::int16_t* q_in, std::int16_t* r_out,
                         int degree) {
  detail::check_update_impl(q_in, r_out, degree, detail::IdentitySlots{});
}

// --- Edge-indexed kernels --------------------------------------------------
// `r`/`q` are the global edge-indexed message arrays; `edge_ids` is the
// node's CSR slice (degree entries). Reads r[edge_ids[i]], writes
// q[edge_ids[i]] — same arithmetic and order as the contiguous kernels.

inline void var_update_edges(std::int16_t channel_llr, const std::int16_t* r,
                             std::int16_t* q, const int* edge_ids,
                             int degree) {
  detail::var_update_impl(channel_llr, r, q, degree,
                          detail::EdgeSlots{edge_ids});
}

inline std::int32_t var_posterior_edges(std::int16_t channel_llr,
                                        const std::int16_t* r,
                                        const int* edge_ids, int degree) {
  return detail::var_posterior_impl(channel_llr, r, degree,
                                    detail::EdgeSlots{edge_ids});
}

/// `q` and `r` must be distinct arrays (see check_update).
inline void check_update_edges(const std::int16_t* q, std::int16_t* r,
                               const int* edge_ids, int degree) {
  detail::check_update_impl(q, r, degree, detail::EdgeSlots{edge_ids});
}

/// Fixed-degree check update: gathers the DEG inputs (and their slots) into
/// locals once, so each edge costs one indirect load and one indirect store
/// per iteration instead of two loads and a store — the compiler cannot do
/// this itself because it must assume `q` and `r` may alias. SlotT is the
/// slot-index type (int, or uint16_t via LdpcCode::check_var_slots16() to
/// halve the index-stream bytes). Bit-identical to check_update_edges for
/// degree == DEG >= 2.
// renoc-hot-begin (fixed-degree check kernel: dominant decode cost)
template <int DEG, typename SlotT>
inline void check_update_edges_fixed(const std::int16_t* q, std::int16_t* r,
                                     const SlotT* edge_ids) {
  static_assert(DEG >= 2, "degenerate degrees take the generic kernel");
  int slots[DEG];
  std::int32_t vals[DEG];
  for (int i = 0; i < DEG; ++i) slots[i] = edge_ids[i];
  for (int i = 0; i < DEG; ++i) vals[i] = q[slots[i]];
  // Two-min tracking without nested selects: `hi = max(mag, min1)` is the
  // value min2 must absorb whichever way the min1 update goes (it equals
  // the displaced min1 when mag takes over, and mag itself otherwise).
  // Min-sum inputs are noise, so every select here MUST compile to a
  // conditional move — a branch on message data mispredicts until the
  // block converges, which once cost ~3x on large blocks. The nested
  // ternary this replaces, and a plain `(i == min1_pos)` select in the
  // output loop, both came out as branches under gcc -O3; the min/max
  // idioms and the mask arithmetic below reliably stay branch-free.
  std::int32_t min1 = kMsgMax + 1, min2 = kMsgMax + 1;
  std::int32_t min1_pos = 0;
  std::uint32_t neg_parity = 0;
  for (int i = 0; i < DEG; ++i) {
    const std::int32_t v = vals[i];
    const std::int32_t mag = v < 0 ? -v : v;
    neg_parity ^= static_cast<std::uint32_t>(v < 0);
    const std::int32_t hi = mag > min1 ? mag : min1;
    const std::int32_t take = -static_cast<std::int32_t>(mag < min1);
    min1_pos = (min1_pos & ~take) | (i & take);
    min1 = mag < min1 ? mag : min1;
    min2 = hi < min2 ? hi : min2;
  }
  const std::int32_t norm1 =
      (3 * (min1 > kMsgMax ? static_cast<std::int32_t>(kMsgMax) : min1)) >> 2;
  const std::int32_t norm2 =
      (3 * (min2 > kMsgMax ? static_cast<std::int32_t>(kMsgMax) : min2)) >> 2;
  for (int i = 0; i < DEG; ++i) {
    const std::int32_t neg =
        -static_cast<std::int32_t>(
            neg_parity ^ static_cast<std::uint32_t>(vals[i] < 0));
    const std::int32_t sel = -static_cast<std::int32_t>(i == min1_pos);
    const std::int32_t mag = (norm1 & ~sel) | (norm2 & sel);
    r[slots[i]] = static_cast<std::int16_t>((mag ^ neg) - neg);
  }
}
// renoc-hot-end

// --- std::vector wrappers (pre-flattening API, kept for tests/oracles) ----

/// Resizes `out_q` and forwards to the contiguous var_update.
void var_update(std::int16_t channel_llr,
                const std::vector<std::int16_t>& incoming_r,
                std::vector<std::int16_t>& out_q);

std::int32_t var_posterior(std::int16_t channel_llr,
                           const std::vector<std::int16_t>& incoming_r);

/// Resizes `out_r` and forwards to the contiguous check_update.
void check_update(const std::vector<std::int16_t>& incoming_q,
                  std::vector<std::int16_t>& out_r);

}  // namespace renoc::minsum
