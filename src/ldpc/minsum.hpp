// Shared fixed-point min-sum arithmetic.
//
// Both the golden (software) decoder and the NoC-mapped decoder call these
// kernels with identical operand ordering, which guarantees bit-identical
// results — the property the tests use to prove that distributing the
// decoder over the network does not change its function.
//
// Messages are int16 fixed-point LLRs saturated to [-kMsgMax, kMsgMax].
// Check updates use normalized min-sum with factor 3/4 (exact in fixed
// point: (3*m) >> 2), the standard hardware-friendly normalization.
#pragma once

#include <cstdint>
#include <vector>

namespace renoc::minsum {

inline constexpr std::int16_t kMsgMax = 127;

/// Saturating addition in the message domain.
std::int16_t sat_add(std::int16_t a, std::int16_t b);

/// Normalization by 3/4, preserving sign, exact in integer arithmetic.
std::int16_t normalize(std::int16_t magnitude);

/// Variable-node update for one variable:
/// q_e = sat( llr + sum_{e'} r_{e'} - r_e ) for each incident edge e.
/// `incoming_r` holds the r values in the variable's edge order; the output
/// q values are written in the same order. The total sum is accumulated in
/// 32-bit then each extrinsic term saturates, with a canonical
/// left-to-right order shared by both decoders.
void var_update(std::int16_t channel_llr,
                const std::vector<std::int16_t>& incoming_r,
                std::vector<std::int16_t>& out_q);

/// Posterior (APP) value for hard decision: llr + sum of all incoming r.
std::int32_t var_posterior(std::int16_t channel_llr,
                           const std::vector<std::int16_t>& incoming_r);

/// Check-node update for one check:
/// r_e = norm( prod_{e'!=e} sign(q_{e'}) * min_{e'!=e} |q_{e'}| ).
/// Zero inputs are treated as positive sign with magnitude 0 (hardware
/// convention). Input and output share the check's edge order.
void check_update(const std::vector<std::int16_t>& incoming_q,
                  std::vector<std::int16_t>& out_r);

}  // namespace renoc::minsum
