// Multithreaded Monte-Carlo BER harness.
//
// Sweeps Eb/N0 points, transmitting encoded random blocks through the AWGN
// channel and decoding them with the flat min-sum engine, spread over
// std::thread workers. Determinism is the design center:
//
//   - every block of every sweep point gets its own RNG stream, derived
//     statelessly from (config seed, point index, block index) by a
//     SplitMix64 chain — never from the worker that happens to run it;
//   - workers pull (point, block) jobs from a shared atomic cursor and
//     accumulate counts into private accumulators;
//   - the merge is a plain sum of per-worker counts, which is order- and
//     schedule-independent.
//
// Result: run_ber_sweep() returns bit-identical counts for any thread
// count, so a 4-thread sweep is a drop-in replacement for the serial one —
// the property the determinism test and the bench guard pin.
//
// Each worker owns a private MinSumDecoder (decoder workspaces are not
// shareable across threads) and a reused DecodeResult, so the steady-state
// decode path performs no heap allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "ldpc/encoder.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"

namespace renoc {

struct BerConfig {
  std::vector<double> ebn0_db;  ///< sweep points (one BerPoint per entry)
  int blocks_per_point = 100;
  int iterations = 10;       ///< decoder iterations per block
  bool early_exit = true;    ///< stop a block on zero syndrome
  int threads = 1;           ///< worker thread count (>= 1)
  std::uint64_t seed = 1;    ///< master seed for all per-block streams
  /// Codewords decoded per kernel pass (1..64). 1 keeps the scalar
  /// MinSumDecoder path; >1 routes workers through MinSumBatchDecoder,
  /// grabbing `batch_size` consecutive jobs per cursor bump. Because each
  /// block's stream still derives statelessly from (seed, point, block)
  /// and every lane is bit-identical to a scalar decode, the returned
  /// counts are invariant in batch_size as well as in threads.
  int batch_size = 1;

  void validate() const;
};

struct BerPoint {
  double ebn0_db = 0.0;
  std::int64_t blocks = 0;
  std::int64_t bits = 0;              ///< total codeword bits transmitted
  std::int64_t bit_errors = 0;
  std::int64_t block_errors = 0;      ///< blocks with any bit error
  std::int64_t iterations_total = 0;  ///< sum of iterations_run

  double ber() const {
    return bits > 0 ? static_cast<double>(bit_errors) /
                          static_cast<double>(bits)
                    : 0.0;
  }
  double bler() const {
    return blocks > 0 ? static_cast<double>(block_errors) /
                            static_cast<double>(blocks)
                      : 0.0;
  }
  double avg_iterations() const {
    return blocks > 0 ? static_cast<double>(iterations_total) /
                            static_cast<double>(blocks)
                      : 0.0;
  }
};

/// Runs the sweep; returns one BerPoint per cfg.ebn0_db entry, independent
/// of cfg.threads. The encoder must belong to `code`.
std::vector<BerPoint> run_ber_sweep(const LdpcCode& code,
                                    const LdpcEncoder& encoder,
                                    const BerConfig& cfg);

/// The RNG stream the sweep uses for block `block` of sweep point `point`
/// — exposed so examples/tests can regenerate the exact blocks a sweep
/// measured (e.g. to re-decode them on the NoC decoder and compare).
/// O(1): the stream seed is a stateless mix of the three coordinates.
Rng ber_block_rng(std::uint64_t seed, int point, int block);

/// Sweep-service spec for the same sweep: one scenario per (point, block)
/// job (scenario = point * blocks_per_point + block — the exact job index
/// run_ber_sweep enumerates), 4-word records {bits, bit_errors,
/// block_error, iterations_run}. Scenario streams and decode results are
/// bit-identical to run_ber_sweep's, so ber_points_from_records() of a
/// service run equals run_ber_sweep() exactly, for any shard split or
/// resume schedule. `code`, `encoder`, and `cfg` must outlive the spec.
sweep::SweepSpec make_ber_sweep_spec(const LdpcCode& code,
                                     const LdpcEncoder& encoder,
                                     const BerConfig& cfg);

/// Folds a merged service run back into run_ber_sweep()'s result shape.
/// Only kCompleted records contribute (a partial run yields partial
/// counts; the caller sees what is missing in MergeResult::incomplete).
std::vector<BerPoint> ber_points_from_records(
    const BerConfig& cfg,
    const std::vector<sweep::ScenarioRecord>& records);

}  // namespace renoc
