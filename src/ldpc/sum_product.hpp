// Floating-point sum-product (belief propagation) reference decoder.
//
// The hardware decoders use quantized normalized min-sum; sum-product with
// the exact tanh rule is the information-theoretic reference they
// approximate. Having both lets tests pin the approximation quality
// (min-sum must track sum-product within a fraction of a dB) and gives
// users a golden yardstick for new code constructions.
//
// Like MinSumDecoder, the message arrays and per-check tanh/prefix/suffix
// scratch are a per-decoder workspace sized at construction: decode_into()
// allocates nothing in steady state, and a decoder instance must not be
// shared across threads.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"

namespace renoc {

class SumProductDecoder {
 public:
  /// `iterations` full flooding iterations; stops early on a zero
  /// syndrome if `early_exit`.
  SumProductDecoder(const LdpcCode& code, int iterations,
                    bool early_exit = true);

  /// Decodes unquantized channel LLRs (size n).
  DecodeResult decode(const std::vector<double>& channel_llrs) const;

  /// Allocation-free variant: writes into `result`, reusing its buffers.
  void decode_into(const std::vector<double>& channel_llrs,
                   DecodeResult& result) const;

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
  // Workspace (mutable so decode() stays const): global edge-indexed
  // message arrays plus per-check scratch sized to the maximum check degree.
  mutable std::vector<double> r_;
  mutable std::vector<double> q_;
  mutable std::vector<double> tanh_q_;
  mutable std::vector<double> prefix_;
  mutable std::vector<double> suffix_;
};

}  // namespace renoc
