// Floating-point sum-product (belief propagation) reference decoder.
//
// The hardware decoders use quantized normalized min-sum; sum-product with
// the exact tanh rule is the information-theoretic reference they
// approximate. Having both lets tests pin the approximation quality
// (min-sum must track sum-product within a fraction of a dB) and gives
// users a golden yardstick for new code constructions.
#pragma once

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"
#include "ldpc/decoder.hpp"

namespace renoc {

class SumProductDecoder {
 public:
  /// `iterations` full flooding iterations; stops early on a zero
  /// syndrome if `early_exit`.
  SumProductDecoder(const LdpcCode& code, int iterations,
                    bool early_exit = true);

  /// Decodes unquantized channel LLRs (size n).
  DecodeResult decode(const std::vector<double>& channel_llrs) const;

 private:
  const LdpcCode* code_;
  int iterations_;
  bool early_exit_;
};

}  // namespace renoc
