#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/units.hpp"

namespace renoc {
namespace {

// Two edges "touch" if their separation is below this (meters). Block
// dimensions are ~2 mm, so 1 nm is far below any real gap.
constexpr double kTouchTol = 1e-9;

// Overlap length of 1-D intervals [a0,a1] and [b0,b1].
double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

Floorplan::Floorplan(std::vector<Block> blocks) : blocks_(std::move(blocks)) {
  RENOC_CHECK_MSG(!blocks_.empty(), "floorplan needs at least one block");
  for (const Block& b : blocks_) {
    RENOC_CHECK_MSG(b.width > 0 && b.height > 0,
                    "block '" << b.name << "' has non-positive size");
    die_width_ = std::max(die_width_, b.x + b.width);
    die_height_ = std::max(die_height_, b.y + b.height);
  }
  compute_adjacencies();
}

const Block& Floorplan::block(int i) const {
  RENOC_CHECK_MSG(i >= 0 && i < block_count(), "block index " << i);
  return blocks_[static_cast<std::size_t>(i)];
}

double Floorplan::total_block_area() const {
  double a = 0.0;
  for (const Block& b : blocks_) a += b.area();
  return a;
}

void Floorplan::compute_adjacencies() {
  const int n = block_count();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Block& a = blocks_[static_cast<std::size_t>(i)];
      const Block& b = blocks_[static_cast<std::size_t>(j)];
      // Vertical shared edge: a's right against b's left or vice versa.
      if (std::fabs((a.x + a.width) - b.x) < kTouchTol ||
          std::fabs((b.x + b.width) - a.x) < kTouchTol) {
        const double len =
            interval_overlap(a.y, a.y + a.height, b.y, b.y + b.height);
        if (len > kTouchTol)
          adjacencies_.push_back({i, j, len, /*horizontal=*/true});
      }
      // Horizontal shared edge: a's top against b's bottom or vice versa.
      if (std::fabs((a.y + a.height) - b.y) < kTouchTol ||
          std::fabs((b.y + b.height) - a.y) < kTouchTol) {
        const double len =
            interval_overlap(a.x, a.x + a.width, b.x, b.x + b.width);
        if (len > kTouchTol)
          adjacencies_.push_back({i, j, len, /*horizontal=*/false});
      }
    }
  }
}

Floorplan make_grid_floorplan(const GridDim& dim, double tile_area) {
  RENOC_CHECK(dim.width > 0 && dim.height > 0);
  RENOC_CHECK(tile_area > 0);
  const double side = std::sqrt(tile_area);
  std::vector<Block> blocks;
  blocks.reserve(static_cast<std::size_t>(dim.node_count()));
  for (int y = 0; y < dim.height; ++y) {
    for (int x = 0; x < dim.width; ++x) {
      std::ostringstream name;
      name << "pe_" << x << "_" << y;
      blocks.push_back(Block{name.str(), x * side, y * side, side, side});
    }
  }
  return Floorplan(std::move(blocks));
}

double date05_tile_area() { return units::mm2(4.36); }

}  // namespace renoc
