// Physical floorplan: rectangular blocks on the die.
//
// The DATE'05 test chips are meshes of identical functional units
// ("each functional unit has an area of 4.36 sq. mm"), so the floorplans
// here are uniform grids of square PE tiles; the class nevertheless keeps
// full rectangle geometry (as HotSpot floorplan files do) so the thermal
// model computes lateral conduction from actual shared edge lengths.
#pragma once

#include <string>
#include <vector>

#include "floorplan/grid.hpp"

namespace renoc {

/// A placed rectangular block. Units: meters. (x, y) is the lower-left
/// corner; the die's lower-left corner is the origin.
struct Block {
  std::string name;
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  double area() const { return width * height; }
  double center_x() const { return x + width / 2.0; }
  double center_y() const { return y + height / 2.0; }
};

/// Lateral adjacency between two blocks: the length of their shared edge.
struct Adjacency {
  int a = 0;           ///< block index
  int b = 0;           ///< block index, a < b
  double shared_len = 0.0;  ///< meters of common boundary
  bool horizontal = false;  ///< true if blocks abut left/right of each other
};

/// An immutable set of placed blocks plus derived geometry.
class Floorplan {
 public:
  explicit Floorplan(std::vector<Block> blocks);

  int block_count() const { return static_cast<int>(blocks_.size()); }
  const Block& block(int i) const;
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Pairs of blocks that share a boundary segment (> tolerance).
  const std::vector<Adjacency>& adjacencies() const { return adjacencies_; }

  /// Bounding box of all blocks (the die outline).
  double die_width() const { return die_width_; }
  double die_height() const { return die_height_; }
  double die_area() const { return die_width_ * die_height_; }

  /// Sum of block areas; equals die_area() for gap-free floorplans.
  double total_block_area() const;

 private:
  void compute_adjacencies();

  std::vector<Block> blocks_;
  std::vector<Adjacency> adjacencies_;
  double die_width_ = 0.0;
  double die_height_ = 0.0;
};

/// Builds the uniform PE-grid floorplan of the paper's test chips:
/// `dim` tiles, each of `tile_area` square meters (square tiles).
/// Block i corresponds to mesh node index i (see grid.hpp).
Floorplan make_grid_floorplan(const GridDim& dim, double tile_area);

/// The DATE'05 per-PE area: 4.36 mm^2.
double date05_tile_area();

}  // namespace renoc
