// Logical mesh coordinates.
//
// A PE's logical position on the NoC mesh is a (x, y) pair with
// 0 <= x < width, 0 <= y < height. x grows to the "east" (right),
// y to the "north" (up); node index = y * width + x, which is also the
// router address used by the NoC and the block index used by the floorplan
// and thermal model. Keeping one indexing convention across all modules is
// what lets the migration transforms act uniformly on network addresses,
// power maps, and thermal nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace renoc {

/// Dimensions of a rectangular PE mesh.
struct GridDim {
  int width = 0;
  int height = 0;

  int node_count() const { return width * height; }
  bool operator==(const GridDim&) const = default;
};

/// A logical (x, y) position on the mesh.
struct GridCoord {
  int x = 0;
  int y = 0;

  bool operator==(const GridCoord&) const = default;
};

/// Flattened node index for a coordinate (row-major, y * width + x).
int coord_to_index(const GridCoord& c, const GridDim& dim);

/// Inverse of coord_to_index.
GridCoord index_to_coord(int index, const GridDim& dim);

/// True if c lies inside the dim rectangle.
bool in_bounds(const GridCoord& c, const GridDim& dim);

/// Manhattan distance between two coordinates (the XY-routing hop count).
int manhattan(const GridCoord& a, const GridCoord& b);

/// "(x,y)" rendering for logs and test failure messages.
std::string to_string(const GridCoord& c);
std::string to_string(const GridDim& d);

}  // namespace renoc
