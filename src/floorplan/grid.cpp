#include "floorplan/grid.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace renoc {

int coord_to_index(const GridCoord& c, const GridDim& dim) {
  RENOC_CHECK_MSG(in_bounds(c, dim),
                  to_string(c) << " out of bounds " << to_string(dim));
  return c.y * dim.width + c.x;
}

GridCoord index_to_coord(int index, const GridDim& dim) {
  RENOC_CHECK_MSG(index >= 0 && index < dim.node_count(),
                  "index " << index << " out of " << to_string(dim));
  return GridCoord{index % dim.width, index / dim.width};
}

bool in_bounds(const GridCoord& c, const GridDim& dim) {
  return c.x >= 0 && c.x < dim.width && c.y >= 0 && c.y < dim.height;
}

int manhattan(const GridCoord& a, const GridCoord& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::string to_string(const GridCoord& c) {
  std::ostringstream os;
  os << "(" << c.x << "," << c.y << ")";
  return os.str();
}

std::string to_string(const GridDim& d) {
  std::ostringstream os;
  os << d.width << "x" << d.height;
  return os.str();
}

}  // namespace renoc
