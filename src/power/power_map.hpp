// Power-map algebra: permutation, averaging, summaries.
//
// A power map is a vector of watts indexed by physical tile. Migration
// moves workloads between tiles, which acts on the map as a permutation;
// the thermal behaviour of a migrating system at short periods is governed
// by the orbit-average of the map under the accumulated transforms (see
// core/thermal_runtime).
#pragma once

#include <vector>

namespace renoc {

/// Returns q with q[perm[i]] = power[i]; perm must be a bijection on
/// [0, size). "perm[i] is where the workload of tile i moves to."
std::vector<double> apply_permutation(const std::vector<double>& power,
                                      const std::vector<int>& perm);

/// apply_permutation() into a caller-provided buffer (`out` is resized and
/// overwritten; must not alias `power`), so reused buffers make repeated
/// permutations allocation-free. Results are bit-identical to
/// apply_permutation().
void apply_permutation_into(const std::vector<double>& power,
                            const std::vector<int>& perm,
                            std::vector<double>& out);

/// Verifies that perm is a bijection on [0, perm.size()); throws otherwise.
void check_permutation(const std::vector<int>& perm);

/// Element-wise mean of equally-weighted maps (all same size, >= 1 map).
std::vector<double> average_maps(const std::vector<std::vector<double>>& maps);

/// Sum of entries (total watts).
double total_power(const std::vector<double>& map);

/// Largest entry.
double max_power(const std::vector<double>& map);

/// In-place multiply by s.
void scale_map(std::vector<double>& map, double s);

/// a + b element-wise (same size).
std::vector<double> add_maps(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace renoc
