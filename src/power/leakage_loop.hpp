// Temperature-dependent leakage via fixed-point iteration.
//
// Leakage grows (roughly exponentially) with temperature, and temperature
// grows with power — a feedback loop the base experiments linearize away
// (leak_beta = 0, as the paper's era of tools commonly did). This solver
// closes the loop for studies that want it:
//
//   T_0 = solve(P_dyn + P_leak(T_ref))
//   T_{k+1} = solve(P_dyn + P_leak(T_k))     until max |dT| < tol
//
// The iteration converges whenever the loop gain (dP_leak/dT times the
// network's thermal resistance) stays below one; beyond that the chip is
// in genuine thermal runaway, which the solver reports rather than hides.
#pragma once

#include <vector>

#include "power/energy_model.hpp"
#include "thermal/solver.hpp"

namespace renoc {

struct LeakageLoopResult {
  std::vector<double> die_temps;    ///< converged absolute temperatures (C)
  std::vector<double> total_power;  ///< dynamic + converged leakage, W/tile
  double peak_temp_c = 0.0;
  int iterations = 0;
  bool converged = false;  ///< false = thermal runaway (or max_iters hit)
};

/// Solves the coupled leakage/temperature fixed point for a per-tile
/// dynamic power map. `energy.params().leak_beta == 0` reduces to a single
/// linear solve.
LeakageLoopResult solve_leakage_fixed_point(
    const SteadyStateSolver& solver, const EnergyModel& energy,
    const std::vector<double>& dynamic_power, double tol_c = 1e-4,
    int max_iterations = 100);

}  // namespace renoc
