#include "power/leakage_loop.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace renoc {

LeakageLoopResult solve_leakage_fixed_point(
    const SteadyStateSolver& solver, const EnergyModel& energy,
    const std::vector<double>& dynamic_power, double tol_c,
    int max_iterations) {
  const RcNetwork& net = solver.network();
  RENOC_CHECK(static_cast<int>(dynamic_power.size()) == net.die_count());
  RENOC_CHECK(tol_c > 0 && max_iterations >= 1);

  LeakageLoopResult result;
  result.die_temps.assign(dynamic_power.size(), net.ambient());
  result.total_power.resize(dynamic_power.size());

  // One rise workspace reused across iterations: the loop body rebuilds
  // total_power in place and solves into `rise` via the _into API, so no
  // iteration allocates (the original path returned a fresh rise vector
  // and copy-assigned total_power every pass).
  std::vector<double> rise;
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Power at the current temperature estimate.
    std::copy(dynamic_power.begin(), dynamic_power.end(),
              result.total_power.begin());
    for (std::size_t i = 0; i < result.total_power.size(); ++i)
      result.total_power[i] +=
          energy.tile_leakage_power(result.die_temps[i]);

    solver.solve_die_power_into(result.total_power, rise);
    double max_delta = 0.0;
    bool finite = true;
    for (int i = 0; i < net.die_count(); ++i) {
      const double t = net.ambient() + rise[static_cast<std::size_t>(i)];
      if (!std::isfinite(t) || t > 1000.0) finite = false;
      max_delta = std::max(
          max_delta, std::fabs(t - result.die_temps[static_cast<std::size_t>(
                                       i)]));
      result.die_temps[static_cast<std::size_t>(i)] = t;
    }
    if (!finite) {
      // Thermal runaway: the loop gain exceeds one and temperatures are
      // diverging. Report the last state without claiming convergence.
      result.converged = false;
      break;
    }
    if (max_delta < tol_c) {
      result.converged = true;
      break;
    }
  }
  result.peak_temp_c =
      *std::max_element(result.die_temps.begin(), result.die_temps.end());
  return result;
}

}  // namespace renoc
