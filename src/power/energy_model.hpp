// Activity-to-energy conversion (the Synopsys Power Compiler stand-in).
//
// The DATE'05 flow obtains per-unit power from Power Compiler runs over
// switching activity extracted by the NoC simulator. We use per-event
// energies in the style of Orion/bit-energy models, with magnitudes chosen
// for a 64-bit-flit router in a 160 nm standard-cell process. Absolute
// accuracy is not required: every chip configuration is calibrated so its
// baseline peak temperature matches the paper (see core/configs), and the
// experiments measure *differences* produced by migration. What must be
// right is the split between router, link, PE-compute, and migration
// energy, because that split decides how much the migration itself heats
// the chip (the paper's rotation penalty of ~0.3 C average).
#pragma once

#include <vector>

#include "noc/stats.hpp"

namespace renoc {

/// Per-event energies (joules) and leakage parameters.
struct EnergyParams {
  // Router events, per flit.
  double e_buffer_write = 30e-12;
  double e_buffer_read = 25e-12;
  double e_crossbar = 50e-12;
  double e_arbitration = 4e-12;
  // Inter-tile link traversal, per flit (~2.1 mm wire at 160 nm).
  double e_link = 80e-12;
  // One PE compute operation (an LDPC node-update equivalent).
  double e_pe_op = 220e-12;
  // Conversion-unit energy per migrated state word (Section 2.1's
  // transformation of configuration/state during migration).
  double e_state_word = 45e-12;
  // Leakage per tile at t_ref, watts; optional exponential T dependence.
  double p_leak_tile = 15e-3;
  double leak_beta = 0.0;  ///< 1/K; 0 disables temperature dependence
  double t_ref = 40.0;     ///< C

  void validate() const;
};

/// Converts tile activity counters into energy and power.
class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params);

  const EnergyParams& params() const { return params_; }

  /// Dynamic energy (J) implied by one tile's counters.
  double tile_dynamic_energy(const TileActivity& activity) const;

  /// Leakage power (W) of one tile at temperature `temp_c`.
  double tile_leakage_power(double temp_c) const;

  /// Per-tile power map (W) over an observation window: dynamic energy
  /// divided by window length, plus leakage at t_ref, all multiplied by
  /// `scale` (the per-configuration calibration factor).
  std::vector<double> power_map(const NetworkStats& stats,
                                double window_seconds,
                                double scale = 1.0) const;

  /// Same split out: dynamic-only map (no leakage), for energy-accounting
  /// tests.
  std::vector<double> dynamic_power_map(const NetworkStats& stats,
                                        double window_seconds,
                                        double scale = 1.0) const;

 private:
  EnergyParams params_;
};

}  // namespace renoc
