#include "power/energy_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace renoc {

void EnergyParams::validate() const {
  RENOC_CHECK(e_buffer_write >= 0 && e_buffer_read >= 0 && e_crossbar >= 0);
  RENOC_CHECK(e_arbitration >= 0 && e_link >= 0 && e_pe_op >= 0);
  RENOC_CHECK(e_state_word >= 0 && p_leak_tile >= 0);
  RENOC_CHECK(leak_beta >= 0);
}

EnergyModel::EnergyModel(const EnergyParams& params) : params_(params) {
  params_.validate();
}

double EnergyModel::tile_dynamic_energy(const TileActivity& a) const {
  const EnergyParams& p = params_;
  double e = 0.0;
  e += p.e_buffer_write * static_cast<double>(a.buffer_writes);
  e += p.e_buffer_read * static_cast<double>(a.buffer_reads);
  e += p.e_crossbar * static_cast<double>(a.crossbar_traversals);
  e += p.e_arbitration * static_cast<double>(a.arbitrations);
  e += p.e_link * static_cast<double>(a.link_flits);
  e += p.e_pe_op * static_cast<double>(a.pe_compute_ops);
  e += p.e_state_word * static_cast<double>(a.pe_state_words);
  return e;
}

double EnergyModel::tile_leakage_power(double temp_c) const {
  if (params_.leak_beta == 0.0) return params_.p_leak_tile;
  return params_.p_leak_tile *
         std::exp(params_.leak_beta * (temp_c - params_.t_ref));
}

std::vector<double> EnergyModel::power_map(const NetworkStats& stats,
                                           double window_seconds,
                                           double scale) const {
  RENOC_CHECK(window_seconds > 0 && scale > 0);
  std::vector<double> map(static_cast<std::size_t>(stats.node_count()));
  const double leak = tile_leakage_power(params_.t_ref);
  for (int i = 0; i < stats.node_count(); ++i) {
    map[static_cast<std::size_t>(i)] =
        scale *
        (tile_dynamic_energy(stats.tile(i)) / window_seconds + leak);
  }
  return map;
}

std::vector<double> EnergyModel::dynamic_power_map(const NetworkStats& stats,
                                                   double window_seconds,
                                                   double scale) const {
  RENOC_CHECK(window_seconds > 0 && scale > 0);
  std::vector<double> map(static_cast<std::size_t>(stats.node_count()));
  for (int i = 0; i < stats.node_count(); ++i) {
    map[static_cast<std::size_t>(i)] =
        scale * tile_dynamic_energy(stats.tile(i)) / window_seconds;
  }
  return map;
}

}  // namespace renoc
