#include "power/power_map.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {

void check_permutation(const std::vector<int>& perm) {
  std::vector<char> seen(perm.size(), 0);
  for (int p : perm) {
    RENOC_CHECK_MSG(p >= 0 && p < static_cast<int>(perm.size()),
                    "permutation entry " << p << " out of range");
    RENOC_CHECK_MSG(!seen[static_cast<std::size_t>(p)],
                    "permutation repeats entry " << p);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

std::vector<double> apply_permutation(const std::vector<double>& power,
                                      const std::vector<int>& perm) {
  std::vector<double> out;
  apply_permutation_into(power, perm, out);
  return out;
}

void apply_permutation_into(const std::vector<double>& power,
                            const std::vector<int>& perm,
                            std::vector<double>& out) {
  RENOC_CHECK(power.size() == perm.size());
  RENOC_CHECK_MSG(&power != &out, "power and output must be distinct");
  check_permutation(perm);
  out.resize(power.size());
  for (std::size_t i = 0; i < power.size(); ++i)
    out[static_cast<std::size_t>(perm[i])] = power[i];
}

std::vector<double> average_maps(
    const std::vector<std::vector<double>>& maps) {
  RENOC_CHECK(!maps.empty());
  std::vector<double> avg(maps.front().size(), 0.0);
  for (const auto& m : maps) {
    RENOC_CHECK(m.size() == avg.size());
    for (std::size_t i = 0; i < m.size(); ++i) avg[i] += m[i];
  }
  const double inv = 1.0 / static_cast<double>(maps.size());
  for (double& v : avg) v *= inv;
  return avg;
}

double total_power(const std::vector<double>& map) {
  double s = 0.0;
  for (double v : map) s += v;
  return s;
}

double max_power(const std::vector<double>& map) {
  RENOC_CHECK(!map.empty());
  return *std::max_element(map.begin(), map.end());
}

void scale_map(std::vector<double>& map, double s) {
  for (double& v : map) v *= s;
}

std::vector<double> add_maps(const std::vector<double>& a,
                             const std::vector<double>& b) {
  RENOC_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace renoc
