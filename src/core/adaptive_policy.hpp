// Adaptive migration-function selection (the paper's closing remark).
//
// Section 2.3: "the same migration unit can perform all migration
// functions presented with only minor changes to the mathematical
// operations, allowing dynamic alteration of the migration function at
// runtime." This module implements that extension: before each migration
// period a policy evaluates every candidate transform and commits the
// best one.
//
// A subtlety this module had to learn the hard way: comparing candidates
// by the *steady-state* peak of the post-move power map always chooses
// "don't move" — a thermally-aware baseline placement is already
// steady-state optimal, and migration only wins through time-averaging.
// The useful objectives are therefore dynamic:
//
//   * kPredictivePeak  — one-period model-predictive lookahead: integrate
//                        the thermal RC network through the next period
//                        for each candidate, starting from the *current*
//                        transient state, and pick the lowest predicted
//                        peak. The currently hot tile keeps heating under
//                        "stay", so moving wins exactly when it should.
//   * kCoolestHistory  — sensor heuristic needing no thermal model: pick
//                        the transform minimizing sum_i P_moved[i]*T[i]
//                        (hot tiles receive cool workloads), with a small
//                        hysteresis in favor of not moving.
//   * kOrbitAverage    — long-run analytic score: the steady-state peak
//                        of the orbit-averaged power map under repeated
//                        application of the candidate. For a stationary
//                        workload this converges onto the best fixed
//                        scheme of Figure 1 for that chip — automatic
//                        per-configuration scheme selection with no
//                        offline analysis. (Identity scores the static
//                        peak, so this objective always migrates.)
//
// The bench (bench/adaptive_policy) compares both against the five fixed
// schemes of Figure 1.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/transform.hpp"
#include "floorplan/grid.hpp"
#include "thermal/solver.hpp"

namespace renoc {

enum class AdaptiveObjective {
  kPredictivePeak,
  kCoolestHistory,
  kOrbitAverage,
};

const char* to_string(AdaptiveObjective objective);

/// Chooses a migration function per period.
class AdaptivePolicy {
 public:
  /// `net` must outlive the policy. `period_s` is the migration period the
  /// predictive lookahead integrates over (`lookahead_steps` backward-Euler
  /// steps). Candidates default to identity plus the paper's five schemes;
  /// rotation is dropped automatically on non-square meshes.
  AdaptivePolicy(const RcNetwork& net, const GridDim& dim,
                 AdaptiveObjective objective, double period_s,
                 int lookahead_steps = 10);
  ~AdaptivePolicy();

  /// Overrides the candidate set (must be non-empty).
  void set_candidates(std::vector<Transform> candidates);

  /// Picks the next transform. `current_power` is the physical per-tile
  /// power map of the running placement; `state_rise` the current
  /// temperature-rise state of the full RC network (as maintained by a
  /// TransientSolver). Returns the chosen transform (possibly identity).
  Transform choose(const std::vector<double>& current_power,
                   const std::vector<double>& state_rise);

  /// Per-candidate scores (lower is better), aligned with candidates().
  /// choose() returns the first minimum of this vector. Under
  /// kPredictivePeak the candidates' lookahead trajectories advance
  /// together as one multi-RHS batch — one factor traversal per lookahead
  /// step instead of candidates() independent integrations — and the
  /// blocked solves replicate the scalar arithmetic exactly, so every
  /// entry bit-matches predicted_peak() on that candidate.
  std::vector<double> candidate_scores(
      const std::vector<double>& current_power,
      const std::vector<double>& state_rise);

  /// Predicted end-of-period peak (C) if `t` were applied now (exposed
  /// for tests; the scalar path the batched scores must bit-match).
  double predicted_peak(const Transform& t,
                        const std::vector<double>& current_power,
                        const std::vector<double>& state_rise);

  const std::vector<Transform>& candidates() const { return candidates_; }

 private:
  double history_score(const std::vector<int>& perm,
                       const Transform& t,
                       const std::vector<double>& current_power,
                       const std::vector<double>& state_rise);
  double orbit_average_score(const Transform& t,
                             const std::vector<double>& current_power) const;
  void predictive_scores_batch(const std::vector<double>& current_power,
                               const std::vector<double>& state_rise,
                               std::vector<double>& scores);

  const RcNetwork* net_;
  std::unique_ptr<SteadyStateSolver> steady_;
  GridDim dim_;
  AdaptiveObjective objective_;
  int lookahead_steps_;
  std::unique_ptr<TransientSolver> lookahead_;
  std::vector<Transform> candidates_;
  std::vector<std::vector<int>> candidate_perms_;  // cached permutations
  // Batched-lookahead workspaces (row-major node x candidate blocks).
  std::vector<double> moved_;
  std::vector<double> power_block_;
  std::vector<double> state_block_;
};

/// Closed-loop adaptive run parameters. `period_s` must be positive;
/// `periods` is the run length; each period integrates in
/// `steps_per_period` backward-Euler steps.
struct AdaptiveSimConfig {
  double period_s = 0.0;
  int periods = 150;
  int steps_per_period = 50;
};

struct AdaptiveSimResult {
  double settled_peak_c = 0.0;          ///< max peak over the last fifth
  std::map<TransformKind, int> choices;  ///< per-kind selection counts
  int migrations = 0;                   ///< non-identity choices
};

/// Simulates `cfg.periods` migration periods under `policy`: per period
/// the policy picks a transform from the current power map and thermal
/// state, the placement permutation accumulates, and the RC network
/// integrates through the period with the chosen transform's migration
/// energy (from `energy_maps`, keyed by kind — every non-identity
/// candidate of `policy` must have an entry) deposited in the first step.
/// The run starts from the static steady state of `base_power`, so the
/// settled peak is taken over the last fifth of the run (the hot-tile
/// excess needs several die time constants to decay).
AdaptiveSimResult run_adaptive_simulation(
    const RcNetwork& net, const GridDim& dim, AdaptivePolicy& policy,
    const std::vector<double>& base_power,
    const std::map<TransformKind, std::vector<double>>& energy_maps,
    const AdaptiveSimConfig& cfg);

}  // namespace renoc
