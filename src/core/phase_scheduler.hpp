// Congestion-free phased migration (Section 2.2).
//
// "During the migration operation, it is possible to ensure congestion-
// free packet movement by transforming groups of PEs in phases. This
// congestion-free operation allows for deterministic migration times,
// making our technique applicable to real-time systems."
//
// A migration is a set of state-transfer moves (one per PE), each of which
// becomes one wormhole packet routed XY. Two moves can share a phase only
// if their XY paths use disjoint directed mesh links — then no packet ever
// waits on another, every phase's duration is exactly computable from the
// path length and packet size, and the total migration time is
// deterministic. The scheduler packs moves greedily into phases and the
// tests verify the disjointness and coverage invariants.
#pragma once

#include <vector>

#include "floorplan/grid.hpp"

namespace renoc {

/// One PE's state transfer.
struct MigrationMove {
  int src_tile = 0;
  int dst_tile = 0;
  int state_words = 0;  ///< payload words of configuration+state
};

/// A group of moves whose XY paths are pairwise link-disjoint.
struct MigrationPhase {
  std::vector<MigrationMove> moves;
};

/// Packs `moves` into congestion-free phases (greedy first-fit in input
/// order; deterministic). Self-moves (src == dst, fixed points of the
/// transform) are dropped — no state needs to travel.
std::vector<MigrationPhase> schedule_phases(
    const std::vector<MigrationMove>& moves, const GridDim& dim);

/// True if every pair of moves in the phase uses disjoint directed links.
bool phase_is_link_disjoint(const MigrationPhase& phase, const GridDim& dim);

/// Analytic duration bound of one phase in cycles on an uncontended mesh
/// with 1-cycle links and one-flit-per-cycle injection: the slowest move
/// needs its head to cover `hops` links plus its remaining flits to stream
/// behind. Link-disjointness makes this a valid per-phase bound, which is
/// what makes the total migration time deterministic; tests verify the
/// simulated duration never exceeds it and is run-to-run identical.
int phase_duration_cycles(const MigrationPhase& phase, const GridDim& dim,
                          int pipeline_constant = 4);

}  // namespace renoc
