#include "core/migration_controller.hpp"

#include "util/check.hpp"

namespace renoc {
namespace {

// Distinct from any workload tag: high bit set.
constexpr std::uint64_t kMigrationTag = 0x8000000000000000ULL;

}  // namespace

MigrationController::MigrationController(Fabric& fabric, Transform transform,
                                         MigrationTiming timing)
    : fabric_(&fabric),
      transform_(transform),
      timing_(timing),
      translator_(fabric.config().dim) {
  RENOC_CHECK(timing_.phase_barrier_cycles >= 0);
  RENOC_CHECK(timing_.resume_sync_cycles >= 0);
}

MigrationReport MigrationController::migrate(
    std::vector<int>& placement, const std::vector<int>& state_words) {
  RENOC_CHECK(placement.size() == state_words.size());
  const GridDim dim = fabric_->config().dim;
  const std::vector<int> perm = transform_.permutation(dim);

  MigrationReport report;
  const Cycle start = fabric_->now();

  // 1. Halt: stop injection everywhere and let in-flight traffic land.
  for (int n = 0; n < fabric_->node_count(); ++n)
    fabric_->set_injection_enabled(n, false);
  while (!fabric_->idle()) {
    fabric_->step();
    // Drain any messages the workload has not collected; the workload is
    // halted, so deliveries just wait in the NI — idle() tolerates that.
    RENOC_CHECK_MSG(fabric_->now() - start < 10'000'000,
                    "fabric failed to drain before migration");
  }

  // 2. Build the move set: every cluster's state goes from its tile to the
  //    transformed tile.
  std::vector<MigrationMove> moves;
  for (std::size_t c = 0; c < placement.size(); ++c) {
    MigrationMove mv;
    mv.src_tile = placement[c];
    mv.dst_tile = perm[static_cast<std::size_t>(placement[c])];
    mv.state_words = state_words[c];
    moves.push_back(mv);
  }
  const std::vector<MigrationPhase> phases = schedule_phases(moves, dim);

  // 3. Execute each phase: conversion (counted at the source), one state
  //    packet per move, run to empty. Phase boundaries are barriers —
  //    that is what keeps every phase congestion-free.
  Cycle pure_transfer = 0;
  int phase_index = 0;
  for (const MigrationPhase& phase : phases) {
    const Cycle phase_start = fabric_->now();
    for (const MigrationMove& mv : phase.moves) {
      // Conversion unit: transforms config/state before transmission.
      fabric_->stats().tile(mv.src_tile).pe_state_words +=
          static_cast<std::uint64_t>(mv.state_words);
      Message msg = fabric_->acquire_message();
      msg.src = mv.src_tile;
      msg.dst = mv.dst_tile;
      msg.tag = kMigrationTag;
      msg.payload.assign(static_cast<std::size_t>(
                             std::max(1, mv.state_words)),
                         0xdead57a7eULL);
      fabric_->send(std::move(msg));
      ++report.moves;
      report.state_flits +=
          static_cast<std::uint64_t>(std::max(1, mv.state_words));
    }
    // Migration packets must be injectable: re-enable only source tiles.
    for (const MigrationMove& mv : phase.moves)
      fabric_->set_injection_enabled(mv.src_tile, true);
    while (!fabric_->idle()) {
      fabric_->step();
      RENOC_CHECK_MSG(fabric_->now() - phase_start < 10'000'000,
                      "migration phase failed to complete");
    }
    for (const MigrationMove& mv : phase.moves)
      fabric_->set_injection_enabled(mv.src_tile, false);
    // Consume the state packets at their destinations. On a degraded
    // fabric a packet may have resolved dropped or unreachable instead of
    // delivering (the fabric still drained to idle — the delivery guard's
    // timeouts are bounded, so a lost packet cannot wedge this loop).
    bool phase_lost_state = false;
    for (const MigrationMove& mv : phase.moves) {
      auto msg = fabric_->try_receive(mv.dst_tile);
      if (!msg.has_value()) {
        RENOC_CHECK_MSG(fabric_->degraded(),
                        "state packet missing at destination");
        phase_lost_state = true;
        continue;
      }
      RENOC_CHECK_MSG(msg->tag == kMigrationTag,
                      "unexpected traffic during migration");
      fabric_->recycle(std::move(*msg));
    }
    pure_transfer += fabric_->now() - phase_start;
    if (phase_lost_state) {
      // Abort gracefully: no transform commit, no re-homing. The caller
      // sees aborted=true and reschedules at the next decision point.
      report.aborted = true;
      report.aborted_phase = phase_index;
      break;
    }
    // Phase barrier: quiesce detection for this group before the next one
    // starts (control time, no traffic). No configuration is committed
    // here — the transform and re-homing are applied all-or-nothing in
    // step 4, which is what lets an abort in a later phase leave the
    // translator and placement untouched.
    fabric_->run(timing_.phase_barrier_cycles);
    ++phase_index;
  }
  report.transfer_cycles = pure_transfer;
  report.phases = static_cast<int>(phases.size());

  if (!report.aborted) {
    // 4. Compose the transform into the I/O translator and re-home
    //    clusters. An aborted migration leaves both untouched: the PEs
    //    restart where they were and the translator keeps the old map.
    translator_.apply(transform_);
    for (std::size_t c = 0; c < placement.size(); ++c)
      placement[c] = perm[static_cast<std::size_t>(placement[c])];
  }

  // 5. Resume: global restart handshake, then re-enable injection.
  fabric_->run(timing_.resume_sync_cycles);
  for (int n = 0; n < fabric_->node_count(); ++n)
    fabric_->set_injection_enabled(n, true);

  report.total_cycles = fabric_->now() - start;
  return report;
}

}  // namespace renoc
