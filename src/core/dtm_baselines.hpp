// Conventional dynamic-thermal-management baselines (the paper's foil).
//
// Introduction: "Thermal solutions employed in current commercial
// processors such as dynamic clock disabling and dynamic frequency scaling
// stop or shut down the entire chip for brief periods of time. Instead of
// shutting down or slowing down the entire chip, recent proposals have
// focused on migration..."
//
// To quantify that motivation we implement the two classic chip-wide
// mechanisms as closed-loop controllers over the same thermal RC network
// the migration experiments use:
//
//   * StopGoController  — dynamic clock disabling: when the hottest die
//     node exceeds `trip_c`, the whole chip halts (dynamic power off,
//     leakage floor remains) until it cools below `trip_c - hysteresis_c`;
//     throughput = duty cycle of the "go" state.
//   * DvfsController    — dynamic frequency scaling: a proportional
//     governor picks a frequency multiplier d in [d_min, 1]; dynamic
//     power scales with d (clock-gating-style linear model, conservative
//     toward DVFS which scales super-linearly); throughput = average d.
//
// Both slow the *entire chip* to cool one hotspot — which is exactly why
// migration wins: it attacks the spatial non-uniformity instead. The bench
// (bench/dtm_comparison) targets each baseline at the peak temperature a
// migration scheme achieves and compares throughput costs.
//
// run() used to rebuild its factorizations per call — one transient
// (C/dt + G) factorization plus one steady G factorization, the same
// refactorize-per-call pattern PR 2 evicted from the experiment driver —
// which a 400-period equal-peak sweep over five configurations multiplies
// into dozens of redundant factorizations. Both controllers now keep a
// DtmIntegrator cache: the steady solver is factored once per controller
// and the transient solver once per distinct period; repeated (and
// mixed-period) run() calls are bit-identical to a fresh controller's
// (tests/dtm_test pins this).
#pragma once

#include <memory>
#include <vector>

#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {

struct DtmRunResult {
  double peak_temp_c = 0.0;       ///< settled peak (max over last quarter)
  double mean_temp_c = 0.0;
  double throughput_fraction = 1.0;  ///< delivered work / full-speed work
  int throttle_events = 0;           ///< halts (stop-go) / slowdowns (dvfs)
};

namespace detail {

/// Shared factorization cache + scratch for the two controllers: one
/// steady-state solver per controller lifetime, one transient solver per
/// distinct control period, and a reusable scaled-power buffer so the
/// control loop stops allocating per period.
class DtmIntegrator {
 public:
  explicit DtmIntegrator(const RcNetwork& net) : net_(&net) {}

  /// The transient solver for `dt`, factored on first use (and refactored
  /// only when the period changes), with its state initialized to the
  /// steady state of `power` — the same arithmetic as
  /// TransientSolver::set_state_to_steady, through a cached factorization.
  TransientSolver& prepared_transient(double dt,
                                      const std::vector<double>& power);

  /// power * (leakage_floor + (1 - leakage_floor) * duty) into a reused
  /// buffer (valid until the next call).
  const std::vector<double>& scaled_power(const std::vector<double>& power,
                                          double duty, double leakage_floor);

 private:
  const RcNetwork* net_;
  std::unique_ptr<SteadyStateSolver> steady_;
  std::unique_ptr<TransientSolver> transient_;
  double transient_dt_ = 0.0;
  std::vector<double> state_;   // steady-init scratch
  std::vector<double> scaled_;
};

}  // namespace detail

/// Chip-wide stop-go (clock disabling) under a thermal trip point.
class StopGoController {
 public:
  /// `leakage_floor` is the per-tile power that remains when the clock is
  /// gated (leakage + always-on logic), as a fraction of each tile's
  /// nominal power.
  StopGoController(const RcNetwork& net, double trip_c, double hysteresis_c,
                   double leakage_floor = 0.1);

  /// Runs `periods` control periods of `period_s` each, starting from the
  /// steady state of `power` (worst case: the chip arrives hot).
  DtmRunResult run(const std::vector<double>& power, double period_s,
                   int periods) const;

 private:
  const RcNetwork* net_;
  double trip_c_;
  double hysteresis_c_;
  double leakage_floor_;
  mutable detail::DtmIntegrator integrator_;  // lazy factorization cache
};

/// Chip-wide proportional frequency scaling under a thermal setpoint.
class DvfsController {
 public:
  /// Frequency multiplier d = clamp(1 - gain * (peak - setpoint), d_min, 1)
  /// re-evaluated every control period; dynamic power scales linearly
  /// with d above the leakage floor.
  DvfsController(const RcNetwork& net, double setpoint_c, double gain,
                 double d_min = 0.1, double leakage_floor = 0.1);

  DtmRunResult run(const std::vector<double>& power, double period_s,
                   int periods) const;

 private:
  const RcNetwork* net_;
  double setpoint_c_;
  double gain_;
  double d_min_;
  double leakage_floor_;
  mutable detail::DtmIntegrator integrator_;  // lazy factorization cache
};

}  // namespace renoc
