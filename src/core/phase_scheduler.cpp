#include "core/phase_scheduler.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "noc/routing.hpp"
#include "util/check.hpp"

namespace renoc {
namespace {

/// Directed links (from-node, to-node) traversed by the XY path of a move.
std::vector<std::pair<int, int>> move_links(const MigrationMove& mv,
                                            const GridDim& dim) {
  const std::vector<int> path = xy_path(index_to_coord(mv.src_tile, dim),
                                        index_to_coord(mv.dst_tile, dim), dim);
  std::vector<std::pair<int, int>> links;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    links.emplace_back(path[i], path[i + 1]);
  return links;
}

}  // namespace

std::vector<MigrationPhase> schedule_phases(
    const std::vector<MigrationMove>& moves, const GridDim& dim) {
  std::vector<MigrationMove> remaining;
  for (const MigrationMove& mv : moves) {
    RENOC_CHECK(mv.src_tile >= 0 && mv.src_tile < dim.node_count());
    RENOC_CHECK(mv.dst_tile >= 0 && mv.dst_tile < dim.node_count());
    if (mv.src_tile != mv.dst_tile) remaining.push_back(mv);
  }

  std::vector<MigrationPhase> phases;
  while (!remaining.empty()) {
    MigrationPhase phase;
    std::set<std::pair<int, int>> used;
    std::vector<MigrationMove> deferred;
    for (const MigrationMove& mv : remaining) {
      const auto links = move_links(mv, dim);
      const bool clash = std::any_of(
          links.begin(), links.end(),
          [&used](const auto& l) { return used.count(l) > 0; });
      if (clash) {
        deferred.push_back(mv);
        continue;
      }
      used.insert(links.begin(), links.end());
      phase.moves.push_back(mv);
    }
    RENOC_CHECK_MSG(!phase.moves.empty(),
                    "phase scheduler made no progress");  // unreachable
    phases.push_back(std::move(phase));
    remaining = std::move(deferred);
  }
  return phases;
}

bool phase_is_link_disjoint(const MigrationPhase& phase, const GridDim& dim) {
  std::set<std::pair<int, int>> used;
  for (const MigrationMove& mv : phase.moves) {
    for (const auto& link : move_links(mv, dim)) {
      if (!used.insert(link).second) return false;
    }
  }
  return true;
}

int phase_duration_cycles(const MigrationPhase& phase, const GridDim& dim,
                          int pipeline_constant) {
  int worst = 0;
  for (const MigrationMove& mv : phase.moves) {
    const int hops = manhattan(index_to_coord(mv.src_tile, dim),
                               index_to_coord(mv.dst_tile, dim));
    // Head needs `hops` link traversals plus per-hop switch allocation;
    // the remaining flits stream behind at one per cycle.
    const int flits = std::max(1, mv.state_words);
    worst = std::max(worst, 2 * hops + flits + pipeline_constant);
  }
  return worst;
}

}  // namespace renoc
