#include "core/migration_unit.hpp"

#include "util/check.hpp"

namespace renoc {

AddressTranslator::AddressTranslator(const GridDim& dim)
    : dim_(dim),
      logical_to_physical_(identity_permutation(dim.node_count())),
      physical_to_logical_(identity_permutation(dim.node_count())) {}

void AddressTranslator::apply(const Transform& t) {
  // A workload at physical tile p moves to perm[p]; the logical map is the
  // old map followed by the migration permutation.
  logical_to_physical_ =
      compose_permutations(logical_to_physical_, t.permutation(dim_));
  physical_to_logical_ = invert_permutation(logical_to_physical_);
  ++migrations_applied_;
}

void AddressTranslator::reset() {
  logical_to_physical_ = identity_permutation(dim_.node_count());
  physical_to_logical_ = logical_to_physical_;
  migrations_applied_ = 0;
}

int AddressTranslator::logical_to_physical(int logical) const {
  RENOC_CHECK(logical >= 0 && logical < dim_.node_count());
  return logical_to_physical_[static_cast<std::size_t>(logical)];
}

int AddressTranslator::physical_to_logical(int physical) const {
  RENOC_CHECK(physical >= 0 && physical < dim_.node_count());
  return physical_to_logical_[static_cast<std::size_t>(physical)];
}

void AddressTranslator::rewrite_ingress(Message& msg) const {
  msg.dst = logical_to_physical(msg.dst);
}

void AddressTranslator::rewrite_egress(Message& msg) const {
  msg.src = physical_to_logical(msg.src);
}

}  // namespace renoc
