// The migration unit at the chip I/O interface (Section 2.3).
//
// "...a simplified I/O interface to the outside of the chip, by
// transforming the destination address assigned to all incoming packets
// and transforming the source address of all packets leaving the chip. By
// including a migration unit at the I/O interface, the migration operation
// is totally transparent to the outside world."
//
// The AddressTranslator keeps the accumulated logical->physical map. The
// outside world always addresses *logical* PEs (their positions before any
// migration); ingress packets get their destination rewritten to the
// current physical tile, egress packets get their source rewritten back to
// the logical address. Because every migration function is a bijection
// with a 3-bit-operand arithmetic implementation (Table 1), the hardware
// cost is a pair of small adders — here we model the function, and the
// bench measures its software cost.
#pragma once

#include <vector>

#include "core/transform.hpp"
#include "floorplan/grid.hpp"
#include "noc/flit.hpp"

namespace renoc {

class AddressTranslator {
 public:
  explicit AddressTranslator(const GridDim& dim);

  /// Composes one more migration into the accumulated map (called once per
  /// migration event, after the workloads have moved).
  void apply(const Transform& t);

  /// Drops back to the identity map.
  void reset();

  /// Physical tile currently hosting `logical` (ingress rewrite).
  int logical_to_physical(int logical) const;

  /// Logical address of the workload on `physical` (egress rewrite).
  int physical_to_logical(int physical) const;

  /// Rewrites an ingress message in place: dst is interpreted as a logical
  /// PE and replaced by its physical tile.
  void rewrite_ingress(Message& msg) const;

  /// Rewrites an egress message in place: src is a physical tile and is
  /// replaced by the logical PE address the outside world knows.
  void rewrite_egress(Message& msg) const;

  const std::vector<int>& map() const { return logical_to_physical_; }
  const GridDim& dim() const { return dim_; }
  int migrations_applied() const { return migrations_applied_; }

 private:
  GridDim dim_;
  std::vector<int> logical_to_physical_;
  std::vector<int> physical_to_logical_;
  int migrations_applied_ = 0;
};

}  // namespace renoc
