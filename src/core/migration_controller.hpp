// Runtime migration execution over the NoC (Sections 2.1-2.3).
//
// One migration event, exactly as the paper describes it:
//   1. the PEs are halted (injection disabled; in-flight traffic drains),
//   2. each PE's configuration+state is passed through the conversion unit
//      (counted as pe_state_words activity on the source tile),
//   3. the state travels to its destination tile as one wormhole packet,
//      in congestion-free phases (schedule_phases),
//   4. the I/O address translator composes the transform so the outside
//      world keeps using logical addresses,
//   5. the PEs resume at their new homes.
//
// The controller drives a real Fabric so migration traffic shows up in the
// activity counters (and therefore in the power/thermal results — the
// paper explicitly includes migration energy in its simulations).
#pragma once

#include <cstdint>
#include <vector>

#include "core/migration_unit.hpp"
#include "core/phase_scheduler.hpp"
#include "core/transform.hpp"
#include "noc/fabric.hpp"

namespace renoc {

struct MigrationReport {
  Cycle total_cycles = 0;       ///< full halt: drain + phases + handshakes
  Cycle transfer_cycles = 0;    ///< state-transfer portion (incl. barriers)
  int phases = 0;
  std::uint64_t state_flits = 0;  ///< flits of state moved
  int moves = 0;                   ///< PEs whose state traveled
  /// On a degraded fabric a state packet can exhaust its retry budget (the
  /// delivery guard counts it dropped or unreachable). The migration is
  /// then aborted: the transform is NOT applied, placement is unchanged,
  /// and the PEs resume at their old homes so the caller can reschedule.
  bool aborted = false;
  int aborted_phase = -1;  ///< phase index that lost a state packet
};

/// Control-overhead model for one migration, in cycles. These are halt
/// time without switching energy: quiescing the phase group, committing
/// the transformed configuration, and the global restart handshake.
struct MigrationTiming {
  int phase_barrier_cycles = 70;  ///< per phase: quiesce + commit
  int resume_sync_cycles = 100;    ///< once: global resume handshake
};

class MigrationController {
 public:
  /// The controller owns the address translator for its fabric.
  MigrationController(Fabric& fabric, Transform transform,
                      MigrationTiming timing = {});

  const Transform& transform() const { return transform_; }
  const AddressTranslator& translator() const { return translator_; }

  /// Executes one migration. `placement` maps cluster -> tile and is
  /// updated in place; `state_words[cluster]` sizes each cluster's state
  /// packet. The fabric must contain no application traffic (callers halt
  /// the workload at a block boundary first); any residual traffic is
  /// drained and counted into total_cycles.
  MigrationReport migrate(std::vector<int>& placement,
                          const std::vector<int>& state_words);

  /// Number of migrations performed so far.
  int migrations() const { return translator_.migrations_applied(); }

 private:
  Fabric* fabric_;
  Transform transform_;
  MigrationTiming timing_;
  AddressTranslator translator_;
};

}  // namespace renoc
