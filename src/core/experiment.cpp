#include "core/experiment.hpp"

#include <cmath>

#include "core/migration_controller.hpp"
#include "ldpc/noc_decoder.hpp"
#include "power/power_map.hpp"
#include "thermal/solver.hpp"
#include "util/check.hpp"

namespace renoc {

ExperimentDriver::ExperimentDriver(const ChipConfig& cfg) : cfg_(cfg) {}
ExperimentDriver::~ExperimentDriver() = default;

double ExperimentDriver::block_seconds() const {
  return static_cast<double>(block_cycles_) / cfg_.noc.clock_hz;
}

double ExperimentDriver::total_power_w() const {
  return total_power(base_power_);
}

double ExperimentDriver::default_period_s() const {
  RENOC_CHECK(prepared_);
  const double target = 109.3e-6;
  const double blocks =
      std::max(1.0, std::round(target / block_seconds()));
  return blocks * block_seconds();
}

std::vector<double> ExperimentDriver::measure_power_map(
    const std::vector<int>& placement, int blocks, double scale) {
  Fabric fabric(cfg_.noc);
  NocLdpcDecoder decoder(fabric, built_->code, built_->partition, placement,
                         cfg_.ldpc_params);
  fabric.stats().clear();
  const Cycle start = fabric.now();
  Cycle cycles_per_block = 0;
  for (int b = 0; b < blocks; ++b) {
    const NocDecodeResult res = decoder.decode_block(built_->channel_llrs);
    cycles_per_block = res.cycles;
  }
  block_cycles_ = cycles_per_block;
  const double window =
      static_cast<double>(fabric.now() - start) / cfg_.noc.clock_hz;
  const EnergyModel energy(cfg_.energy);
  return energy.power_map(fabric.stats(), window, scale);
}

void ExperimentDriver::prepare(int measure_blocks) {
  RENOC_CHECK(measure_blocks >= 1);
  // Re-preparing rebuilds the network and recalibrates, so every cached
  // runtime (which points at the old RcNetwork) and migration measurement
  // (scaled by the old calibration) must go first.
  runtime_cache_.clear();
  migration_cache_.clear();
  built_ = std::make_unique<BuiltChip>(build_chip(cfg_));
  net_ = std::make_unique<RcNetwork>(
      build_rc_network(built_->floorplan, cfg_.hotspot));
  steady_ = std::make_unique<SteadyStateSolver>(*net_);
  SteadyStateSolver& steady = *steady_;

  // --- Thermally-aware placement over design-time compute power --------
  ThermalAwarePlacer placer(steady, cfg_.dim, cfg_.placer);
  const PlacementResult placed =
      placer.place(built_->compute_power_estimate, built_->traffic,
                   cfg_.workload.pins);
  placement_ = placed.placement;
  identity_peak_c_ = placer.peak_temperature_of(
      identity_permutation(cfg_.dim.node_count()),
      built_->compute_power_estimate);

  // --- Cycle-accurate measurement at the chosen placement --------------
  const std::vector<double> raw =
      measure_power_map(placement_, measure_blocks, 1.0);

  // --- Calibration: scale so the steady peak equals the paper ----------
  steady.solve_die_power_into(raw, rise_scratch_);
  const double peak_rise = net_->peak_die_rise(rise_scratch_);
  RENOC_CHECK_MSG(peak_rise > 0, "non-positive peak rise — no power?");
  calibration_scale_ =
      (cfg_.paper_base_peak_c - cfg_.hotspot.ambient) / peak_rise;
  base_power_ = raw;
  scale_map(base_power_, calibration_scale_);

  steady.solve_die_power_into(base_power_, rise_scratch_);
  base_peak_temp_c_ = net_->ambient() + net_->peak_die_rise(rise_scratch_);
  base_mean_temp_c_ = net_->ambient() + net_->mean_die_rise(rise_scratch_);
  prepared_ = true;
}

std::vector<double> ExperimentDriver::baseline_die_temps() const {
  RENOC_CHECK(prepared_);
  steady_->solve_die_power_into(base_power_, rise_scratch_);
  std::vector<double> temps(static_cast<std::size_t>(net_->die_count()));
  for (int i = 0; i < net_->die_count(); ++i)
    temps[static_cast<std::size_t>(i)] =
        net_->ambient() + rise_scratch_[static_cast<std::size_t>(i)];
  return temps;
}

MigrationThermalRuntime& ExperimentDriver::runtime_for(double period_s) {
  auto it = runtime_cache_.find(period_s);
  if (it == runtime_cache_.end()) {
    ThermalRunOptions topt;
    topt.period_s = period_s;
    it = runtime_cache_
             .emplace(period_s,
                      std::make_unique<MigrationThermalRuntime>(*net_, topt))
             .first;
  }
  return *it->second;
}

const ExperimentDriver::MigrationMeasurement&
ExperimentDriver::measure_migration(MigrationScheme scheme) {
  const auto cached = migration_cache_.find(scheme);
  if (cached != migration_cache_.end()) return cached->second;

  const Transform transform = transform_of(scheme);
  MigrationMeasurement m;
  m.orbit = orbit_permutations(transform, cfg_.dim);
  const std::size_t L = m.orbit.size();

  // --- Simulate the real migrations to get timing and energy -----------
  // A fresh fabric carries only migration traffic; per-step stats deltas
  // become per-step energy maps (calibrated like the workload power).
  // Everything below depends only on the scheme (never on the migration
  // period), which is what makes this cacheable across a period sweep.
  Fabric fabric(cfg_.noc);
  NocLdpcDecoder decoder(fabric, built_->code, built_->partition, placement_,
                         cfg_.ldpc_params);
  std::vector<int> state_words(
      static_cast<std::size_t>(decoder.cluster_count()));
  for (int c = 0; c < decoder.cluster_count(); ++c)
    state_words[static_cast<std::size_t>(c)] =
        decoder.migration_state_words(c);

  MigrationController controller(fabric, transform);
  const EnergyModel energy(cfg_.energy);
  std::vector<int> placement = placement_;

  // measured_step[k]: energy map + timing of the migration taking the
  // system from orbit[k] to orbit[k+1 mod L].
  std::vector<std::vector<double>> step_energy(L);
  double halt_seconds_sum = 0.0;
  double energy_sum = 0.0;
  for (std::size_t k = 0; k < L; ++k) {
    fabric.stats().clear();
    const MigrationReport rep = controller.migrate(placement, state_words);
    // Energy of this migration event per tile: dynamic events only (the
    // spike adds to the leakage already inside the base map), calibrated.
    std::vector<double> e_map(
        static_cast<std::size_t>(fabric.node_count()));
    for (int t = 0; t < fabric.node_count(); ++t)
      e_map[static_cast<std::size_t>(t)] =
          calibration_scale_ *
          energy.tile_dynamic_energy(fabric.stats().tile(t));
    energy_sum += total_power(e_map);  // joules (map holds J here)
    step_energy[k] = std::move(e_map);
    halt_seconds_sum +=
        static_cast<double>(rep.total_cycles) / cfg_.noc.clock_hz;
    if (k == 0) {
      m.phases = rep.phases;
      m.state_flits = rep.state_flits;
    }
  }
  // Orbit closure: after L migrations the placement must return home.
  RENOC_CHECK_MSG(placement == placement_,
                  "orbit did not close after L migrations");

  m.halt_mean_s = halt_seconds_sum / static_cast<double>(L);
  m.energy_mean_j = energy_sum / static_cast<double>(L);

  // Segment seg runs under orbit[seg]; the migration that starts segment
  // seg is measured step (seg-1+L) mod L.
  m.migration_energy.resize(L);
  for (std::size_t seg = 0; seg < L; ++seg)
    m.migration_energy[seg] = step_energy[(seg + L - 1) % L];

  return migration_cache_.emplace(scheme, std::move(m)).first->second;
}

const std::vector<double>& ExperimentDriver::migration_energy_map(
    MigrationScheme scheme) {
  RENOC_CHECK_MSG(prepared_, "call prepare() first");
  RENOC_CHECK_MSG(scheme != MigrationScheme::kNone,
                  "kNone has no migration energy");
  const MigrationMeasurement& m = measure_migration(scheme);
  // The first measured step (baseline -> orbit[1]) lands, after the
  // segment rotation above, at migration_energy[1 % L].
  return m.migration_energy[1 % m.migration_energy.size()];
}

SchemeEvaluation ExperimentDriver::evaluate_scheme(
    MigrationScheme scheme, std::optional<double> period_opt) {
  RENOC_CHECK_MSG(prepared_, "call prepare() first");
  const double period_s = period_opt.value_or(default_period_s());
  RENOC_CHECK(period_s > 0);

  SchemeEvaluation eval;
  eval.scheme = scheme;
  eval.period_s = period_s;

  MigrationThermalRuntime& runtime = runtime_for(period_s);

  if (scheme == MigrationScheme::kNone) {
    const auto orbit = std::vector<std::vector<int>>{
        identity_permutation(cfg_.dim.node_count())};
    const ThermalRunResult r = runtime.run(base_power_, orbit, {});
    eval.orbit_length = 1;
    eval.peak_temp_c = r.peak_temp_c;
    eval.reduction_c = 0.0;
    eval.mean_temp_c = r.mean_temp_c;
    eval.thermal_converged = r.converged;
    return eval;
  }

  const MigrationMeasurement& m = measure_migration(scheme);
  eval.orbit_length = static_cast<int>(m.orbit.size());
  eval.phases = m.phases;
  eval.state_flits = m.state_flits;
  eval.migration_s = m.halt_mean_s;
  eval.migration_energy_j = m.energy_mean_j;
  eval.throughput_penalty =
      eval.migration_s / (period_s + eval.migration_s);

  // --- Thermal co-simulation --------------------------------------------
  const ThermalRunResult r =
      runtime.run(base_power_, m.orbit, m.migration_energy);
  eval.peak_temp_c = r.peak_temp_c;
  eval.reduction_c = base_peak_temp_c_ - r.peak_temp_c;
  eval.mean_temp_c = r.mean_temp_c;
  eval.ripple_c = r.ripple_c;
  eval.thermal_converged = r.converged;
  return eval;
}

std::vector<SchemeEvaluation> ExperimentDriver::scheme_study(
    const std::vector<MigrationScheme>& schemes,
    const std::vector<double>& periods) {
  RENOC_CHECK_MSG(prepared_, "call prepare() first");
  RENOC_CHECK_MSG(!schemes.empty(), "scheme study needs at least one scheme");
  std::vector<double> study_periods = periods;
  if (study_periods.empty()) study_periods.push_back(default_period_s());

  std::vector<SchemeEvaluation> evals;
  evals.reserve(schemes.size() * study_periods.size());
  for (const MigrationScheme scheme : schemes)
    for (const double period : study_periods)
      evals.push_back(evaluate_scheme(scheme, period));
  return evals;
}

}  // namespace renoc
