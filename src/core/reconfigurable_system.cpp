#include "core/reconfigurable_system.hpp"

#include "util/check.hpp"

namespace renoc {

ReconfigurableLdpcSystem::ReconfigurableLdpcSystem(const ChipConfig& cfg,
                                                   MigrationScheme scheme)
    : cfg_(cfg) {
  built_ = std::make_unique<BuiltChip>(build_chip(cfg_));
  fabric_ = std::make_unique<Fabric>(cfg_.noc);
  placement_ = identity_permutation(cfg_.dim.node_count());
  placement_.resize(
      static_cast<std::size_t>(built_->partition.cluster_count));
  decoder_ = std::make_unique<NocLdpcDecoder>(
      *fabric_, built_->code, built_->partition, placement_,
      cfg_.ldpc_params);
  controller_ =
      std::make_unique<MigrationController>(*fabric_, transform_of(scheme));
  golden_ = std::make_unique<MinSumDecoder>(built_->code,
                                            cfg_.ldpc_params.iterations);
  state_words_.resize(static_cast<std::size_t>(decoder_->cluster_count()));
  for (int c = 0; c < decoder_->cluster_count(); ++c)
    state_words_[static_cast<std::size_t>(c)] =
        decoder_->migration_state_words(c);
}

ReconfigurableLdpcSystem::~ReconfigurableLdpcSystem() = default;

StreamResult ReconfigurableLdpcSystem::run_stream(int blocks,
                                                  int blocks_per_migration) {
  RENOC_CHECK(blocks >= 1);
  RENOC_CHECK(blocks_per_migration >= 0);

  const DecodeResult golden = golden_->decode(built_->channel_llrs);

  StreamResult result;
  const Cycle start = fabric_->now();
  bool all_match = true;
  for (int b = 0; b < blocks; ++b) {
    const NocDecodeResult res =
        decoder_->decode_block(built_->channel_llrs);
    block_cycles_ = res.cycles;
    if (res.hard_bits != golden.hard_bits) all_match = false;
    ++result.blocks;
    const bool migrate_now = blocks_per_migration > 0 &&
                             ((b + 1) % blocks_per_migration == 0) &&
                             (b + 1) < blocks;
    if (migrate_now) {
      const MigrationReport rep =
          controller_->migrate(placement_, state_words_);
      decoder_->set_placement(placement_);
      result.migration_cycles += rep.total_cycles;
      ++result.migrations;
    }
  }
  result.total_cycles = fabric_->now() - start;
  result.throughput_penalty =
      result.total_cycles
          ? static_cast<double>(result.migration_cycles) /
                static_cast<double>(result.total_cycles)
          : 0.0;
  result.all_blocks_match_golden = all_match;
  result.final_placement = placement_;
  return result;
}

}  // namespace renoc
