// Thermal co-simulation of a migrating system.
//
// Migration periods (~100 us) are far below the die's thermal time
// constant (~1.3 ms with the HotSpot package), so the temperature field of
// a migrating chip is the steady state of the orbit-averaged power map
// plus a small periodic ripple. Rather than assuming that, this runtime
// *computes the exact periodic steady state*: it integrates the RC network
// with backward Euler through whole migration super-cycles (orbit length x
// period), feeding it the piecewise-constant power maps
//
//   segment k:  P_k = permute(base_power, orbit[k]) + spike_k
//
// where spike_k deposits that step's measured migration energy during the
// first integration step of the segment (energy-conserving; the migration
// window of ~1.75 us is shorter than one dt). Integration starts from the
// steady state of the averaged map and continues until the per-orbit peak
// temperature drifts by less than `tol` — typically a handful of orbits.
//
// For the static baseline pass an orbit of {identity} and zero migration
// energy: the result collapses to the steady-state solution.
#pragma once

#include <memory>
#include <vector>

#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {

struct ThermalRunOptions {
  double period_s = 109.3e-6;   ///< time between migrations
  double dt_s = 2.0e-6;         ///< nominal transient step (snapped so an
                                ///< integer number of steps covers a period)
  int min_orbits = 3;
  int max_orbits = 400;
  double tol_c = 1e-3;          ///< per-orbit peak drift convergence bound

  void validate() const;
};

struct ThermalRunResult {
  double peak_temp_c = 0.0;   ///< max die temperature over the final orbit
  double mean_temp_c = 0.0;   ///< time-average of the mean die temperature
  double ripple_c = 0.0;      ///< peak-node max-min within the final orbit
  double steady_peak_of_avg_c = 0.0;  ///< diagnostic: steady state of the
                                      ///< orbit-averaged power map
  int orbits_run = 0;
  bool converged = false;
};

class MigrationThermalRuntime {
 public:
  MigrationThermalRuntime(const RcNetwork& net, ThermalRunOptions options);

  /// `base_power`: per-tile watts of the workload in its baseline
  /// placement. `orbit`: accumulated permutations [id, T, T^2, ...].
  /// `migration_energy`: per orbit-step, per-tile joules deposited by the
  /// migration that *starts* that segment (size must equal orbit size, or
  /// be empty for no migration energy). Step 0's entry represents the
  /// migration that wraps the orbit around (orbit[L-1] -> identity).
  ThermalRunResult run(
      const std::vector<double>& base_power,
      const std::vector<std::vector<int>>& orbit,
      const std::vector<std::vector<double>>& migration_energy) const;

  const RcNetwork& network() const { return *net_; }

 private:
  /// Number of transient steps covering one period (options_.dt_s rounded
  /// so an integer count fits; the snapped dt is period_s / this).
  int steps_per_period() const;

  // Both factorizations depend only on net_ and options_, so they are
  // built on the first run() and reused by every later one (the transient
  // state is re-seeded from the steady solution each run). Mutable lazy
  // caches; not thread-safe, like the rest of the library.
  const RcNetwork* net_;
  ThermalRunOptions options_;
  mutable std::unique_ptr<SteadyStateSolver> steady_;
  mutable std::unique_ptr<TransientSolver> transient_;
};

}  // namespace renoc
