// Thermal co-simulation of a migrating system.
//
// Migration periods (~100 us) are far below the die's thermal time
// constant (~1.3 ms with the HotSpot package), so the temperature field of
// a migrating chip is the steady state of the orbit-averaged power map
// plus a small periodic ripple. Rather than assuming that, this runtime
// *computes the exact periodic steady state*: it integrates the RC network
// with backward Euler through whole migration super-cycles (orbit length x
// period), feeding it the piecewise-constant power maps
//
//   segment k:  P_k = permute(base_power, orbit[k]) + spike_k
//
// where spike_k deposits that step's measured migration energy during the
// first integration step of the segment (energy-conserving; the migration
// window of ~1.75 us is shorter than one dt). Integration starts from the
// steady state of the averaged map and continues until the per-orbit peak
// temperature drifts by less than `tol` — typically a handful of orbits.
//
// For the static baseline pass an orbit of {identity} and zero migration
// energy: the result collapses to the steady-state solution.
//
// Implementation: this is the *engine* flavour of the orbit integration —
// the hot loop streams entirely in the factor's elimination order through
// persistent per-instance workspaces. Per run() it precomputes every
// segment's expanded + permuted power map and migration-spike vector once;
// per step it fuses the C/dt * state + P right-hand-side build, calls the
// permutation-free SparseLdlt::solve_permuted_in_place on a
// minimum-degree-ordered factor (about half the fill of the default RCM
// ordering), and folds the peak/mean die scans into one gather. After the
// first run() with a given problem shape, run() performs zero heap
// allocations. Sub-cutoff networks (and RENOC_DENSE_SOLVE=1) keep the
// dense LU backend with the same persistent-workspace streaming in
// natural order.
//
// The pre-engine scalar path is preserved verbatim as the semantics
// oracle in core/reference_runtime; the engine agrees with it to <= 1e-10
// on every ThermalRunResult field (tests/thermal_runtime_test pins this,
// bench/micro_runtime re-checks it and measures the speedup).
#pragma once

#include <memory>
#include <vector>

#include "thermal/rc_network.hpp"
#include "thermal/solver.hpp"

namespace renoc {

struct ThermalRunOptions {
  double period_s = 109.3e-6;   ///< time between migrations
  double dt_s = 2.0e-6;         ///< nominal transient step (snapped so an
                                ///< integer number of steps covers a period)
  int min_orbits = 3;
  int max_orbits = 400;
  double tol_c = 1e-3;          ///< per-orbit peak drift convergence bound

  void validate() const;
};

struct ThermalRunResult {
  double peak_temp_c = 0.0;   ///< max die temperature over the final orbit
  double mean_temp_c = 0.0;   ///< time-average of the mean die temperature
  double ripple_c = 0.0;      ///< peak-node max-min within the final orbit
  double steady_peak_of_avg_c = 0.0;  ///< diagnostic: steady state of the
                                      ///< orbit-averaged power map
  int orbits_run = 0;
  bool converged = false;
};

class MigrationThermalRuntime {
 public:
  MigrationThermalRuntime(const RcNetwork& net, ThermalRunOptions options);
  ~MigrationThermalRuntime();

  /// `base_power`: per-tile watts of the workload in its baseline
  /// placement. `orbit`: accumulated permutations [id, T, T^2, ...].
  /// `migration_energy`: per orbit-step, per-tile joules deposited by the
  /// migration that *starts* that segment (size must equal orbit size, or
  /// be empty for no migration energy). Step 0's entry represents the
  /// migration that wraps the orbit around (orbit[L-1] -> identity).
  ThermalRunResult run(
      const std::vector<double>& base_power,
      const std::vector<std::vector<int>>& orbit,
      const std::vector<std::vector<double>>& migration_energy) const;

  const RcNetwork& network() const { return *net_; }

 private:
  /// Number of transient steps covering one period (options_.dt_s rounded
  /// so an integer count fits; the snapped dt is period_s / this).
  int steps_per_period() const;

  // Factorizations and workspaces depend only on net_ and options_ (plus
  // problem shape, which only grows buffers), so they are built on the
  // first run() and reused by every later one. Mutable lazy state; not
  // thread-safe, like the rest of the library.
  struct Engine;
  const RcNetwork* net_;
  ThermalRunOptions options_;
  mutable std::unique_ptr<Engine> engine_;
};

}  // namespace renoc
