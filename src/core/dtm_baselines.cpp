#include "core/dtm_baselines.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace renoc {
namespace {

constexpr int kStepsPerPeriod = 20;

}  // namespace

namespace detail {

TransientSolver& DtmIntegrator::prepared_transient(
    double dt, const std::vector<double>& power) {
  if (transient_ == nullptr || transient_dt_ != dt) {
    transient_ = std::make_unique<TransientSolver>(*net_, dt);
    transient_dt_ = dt;
  }
  if (steady_ == nullptr) steady_ = std::make_unique<SteadyStateSolver>(*net_);
  steady_->solve_die_power_into(power, state_);
  transient_->set_state(state_);
  return *transient_;
}

const std::vector<double>& DtmIntegrator::scaled_power(
    const std::vector<double>& power, double duty, double leakage_floor) {
  scaled_.resize(power.size());
  const double factor = leakage_floor + (1.0 - leakage_floor) * duty;
  for (std::size_t i = 0; i < power.size(); ++i)
    scaled_[i] = power[i] * factor;
  return scaled_;
}

}  // namespace detail

StopGoController::StopGoController(const RcNetwork& net, double trip_c,
                                   double hysteresis_c, double leakage_floor)
    : net_(&net),
      trip_c_(trip_c),
      hysteresis_c_(hysteresis_c),
      leakage_floor_(leakage_floor),
      integrator_(net) {
  RENOC_CHECK(hysteresis_c > 0);
  RENOC_CHECK(leakage_floor >= 0 && leakage_floor < 1);
  RENOC_CHECK(trip_c > net.ambient());
}

DtmRunResult StopGoController::run(const std::vector<double>& power,
                                   double period_s, int periods) const {
  RENOC_CHECK(period_s > 0 && periods >= 4);
  TransientSolver& transient =
      integrator_.prepared_transient(period_s / kStepsPerPeriod, power);

  const std::vector<double> halted =
      integrator_.scaled_power(power, 0.0, leakage_floor_);
  DtmRunResult result;
  bool running = true;
  double uptime = 0.0;
  double mean_accum = 0.0;
  std::uint64_t samples = 0;
  double settled_peak = 0.0;

  for (int p = 0; p < periods; ++p) {
    const double peak =
        net_->ambient() + net_->peak_die_rise(transient.state());
    if (running && peak > trip_c_) {
      running = false;
      ++result.throttle_events;
    } else if (!running && peak < trip_c_ - hysteresis_c_) {
      running = true;
    }
    const std::vector<double>& p_now = running ? power : halted;
    for (int s = 0; s < kStepsPerPeriod; ++s) {
      transient.step_die_power(p_now);
      const double t =
          net_->ambient() + net_->peak_die_rise(transient.state());
      if (p >= periods - periods / 4)
        settled_peak = std::max(settled_peak, t);
      mean_accum += net_->ambient() + net_->mean_die_rise(transient.state());
      ++samples;
    }
    if (running) uptime += 1.0;
  }
  result.peak_temp_c = settled_peak;
  result.mean_temp_c = mean_accum / static_cast<double>(samples);
  result.throughput_fraction = uptime / periods;
  return result;
}

DvfsController::DvfsController(const RcNetwork& net, double setpoint_c,
                               double gain, double d_min,
                               double leakage_floor)
    : net_(&net),
      setpoint_c_(setpoint_c),
      gain_(gain),
      d_min_(d_min),
      leakage_floor_(leakage_floor),
      integrator_(net) {
  RENOC_CHECK(gain > 0);
  RENOC_CHECK(d_min > 0 && d_min <= 1);
  RENOC_CHECK(leakage_floor >= 0 && leakage_floor < 1);
  RENOC_CHECK(setpoint_c > net.ambient());
}

DtmRunResult DvfsController::run(const std::vector<double>& power,
                                 double period_s, int periods) const {
  RENOC_CHECK(period_s > 0 && periods >= 4);
  TransientSolver& transient =
      integrator_.prepared_transient(period_s / kStepsPerPeriod, power);

  DtmRunResult result;
  double duty_sum = 0.0;
  double mean_accum = 0.0;
  std::uint64_t samples = 0;
  double settled_peak = 0.0;

  for (int p = 0; p < periods; ++p) {
    const double peak =
        net_->ambient() + net_->peak_die_rise(transient.state());
    const double duty =
        std::clamp(1.0 - gain_ * (peak - setpoint_c_), d_min_, 1.0);
    if (duty < 1.0) ++result.throttle_events;
    const std::vector<double>& p_now =
        integrator_.scaled_power(power, duty, leakage_floor_);
    for (int s = 0; s < kStepsPerPeriod; ++s) {
      transient.step_die_power(p_now);
      const double t =
          net_->ambient() + net_->peak_die_rise(transient.state());
      if (p >= periods - periods / 4)
        settled_peak = std::max(settled_peak, t);
      mean_accum += net_->ambient() + net_->mean_die_rise(transient.state());
      ++samples;
    }
    duty_sum += duty;
  }
  result.peak_temp_c = settled_peak;
  result.mean_temp_c = mean_accum / static_cast<double>(samples);
  result.throughput_fraction = duty_sum / periods;
  return result;
}

}  // namespace renoc
